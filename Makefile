.PHONY: build test race verify fuzz bench

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

# Tier-1 gate: build + vet + race tests + fuzz smoke (FUZZTIME=5s default).
verify:
	./scripts/verify.sh

fuzz:
	FUZZTIME=$${FUZZTIME:-30s} ./scripts/verify.sh

# Kernel + train-step microbenchmarks -> BENCH_kernels.json;
# striping/coalescing transfer benchmarks -> BENCH_transfer.json;
# obs overhead -> BENCH_obs.json; all-reduce ablation -> BENCH_allreduce.json;
# scale story -> BENCH_scale.json; serving plane -> BENCH_serve.json.
bench:
	./scripts/bench.sh
