package metrics

import (
	"sync"
	"testing"
)

func TestCountersAccumulate(t *testing.T) {
	var c Comm
	c.AddSent(100)
	c.AddSent(50)
	c.AddRecv(30)
	c.AddCopy(10)
	c.AddCopy(5)
	c.AddSerialized(7)
	c.AddZeroCopy()
	c.AddDynTransfer()
	s := c.Snapshot()
	if s.BytesSent != 150 || s.Messages != 2 {
		t.Errorf("sent: %+v", s)
	}
	if s.BytesRecv != 30 {
		t.Errorf("recv: %+v", s)
	}
	if s.MemCopies != 2 || s.CopiedBytes != 15 {
		t.Errorf("copies: %+v", s)
	}
	if s.SerializedBytes != 7 || s.ZeroCopyOps != 1 || s.DynTransfers != 1 {
		t.Errorf("misc: %+v", s)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	var c Comm
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.AddSent(1)
				c.AddCopy(2)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.BytesSent != 8000 || s.MemCopies != 8000 || s.CopiedBytes != 16000 {
		t.Errorf("lost updates: %+v", s)
	}
}
