package metrics

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Lock-cheap power-of-two-bucket histograms. Record is a handful of atomic
// adds — no locks, no allocations — so a histogram can sit on the hottest
// paths in the system (per-operator execution latency, per-edge transfer
// bytes, scheduler poll-wait) without perturbing what it measures. Buckets
// are powers of two: bucket i counts values v with 2^(i-1) <= v < 2^i
// (bucket 0 takes v <= 0), so 64 buckets cover the full int64 range whether
// the unit is nanoseconds or bytes, and merging is element-wise addition —
// associative and commutative by construction, which is what lets per-task
// snapshots roll up into cluster totals in any order.

// NumBuckets is the fixed bucket count; it covers all of int64.
const NumBuckets = 64

// bucketOf maps a value to its bucket index: 0 for v <= 0, else
// min(bits.Len64(v), NumBuckets-1). The upper bound of bucket i is 2^i - 1.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b > NumBuckets-1 {
		return NumBuckets - 1
	}
	return b
}

// BucketUpper returns bucket i's inclusive upper bound (2^i - 1), with the
// last bucket unbounded (MaxInt64).
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= NumBuckets-1 {
		return math.MaxInt64
	}
	return int64(1)<<uint(i) - 1
}

// Histogram is a concurrent power-of-two-bucket histogram. The zero value
// is ready to use. Record never allocates.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [NumBuckets]atomic.Int64
}

// Record adds one observation. Safe for concurrent use; zero allocations.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// Snapshot returns the current state. Under concurrent recording the
// count/sum/bucket loads are individually atomic but not mutually consistent;
// quiescent reads (end of step, end of run) are exact.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is an immutable view of a Histogram.
type HistogramSnapshot struct {
	Count   int64
	Sum     int64
	Buckets [NumBuckets]int64
}

// Merge returns the element-wise sum of two snapshots. Merging is
// associative and commutative (it is plain addition per field).
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	out := s
	out.Count += o.Count
	out.Sum += o.Sum
	for i := range out.Buckets {
		out.Buckets[i] += o.Buckets[i]
	}
	return out
}

// Mean returns the exact mean of recorded values (Sum/Count), 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1): the
// inclusive upper bound of the first bucket whose cumulative count reaches
// rank ceil(q*Count). The error is at most 2x (one power-of-two bucket).
// Monotone in q; returns 0 for an empty histogram.
//
// The rank is clamped to the bucket total, not Count: Record bumps the
// count before the bucket, so a snapshot taken mid-record can carry
// Count > ΣBuckets, and an unclamped rank would walk off the end of the
// bucket array and report MaxInt64 for a histogram whose every observation
// was tiny. Under the clamp a torn snapshot answers from the observations
// actually present.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	var total int64
	for i := range s.Buckets {
		total += s.Buckets[i]
	}
	if s.Count <= 0 || total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := range s.Buckets {
		cum += s.Buckets[i]
		if cum >= rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(NumBuckets - 1)
}

// Family is a labeled group of histograms (e.g. one per edge or per
// operator kind). With returns a stable *Histogram per label, so hot paths
// resolve their histogram once at setup and Record with zero allocations.
type Family struct {
	m sync.Map // string -> *Histogram
}

// With returns the histogram for label, creating it on first use.
func (f *Family) With(label string) *Histogram {
	if f == nil {
		return nil
	}
	if h, ok := f.m.Load(label); ok {
		return h.(*Histogram)
	}
	h, _ := f.m.LoadOrStore(label, &Histogram{})
	return h.(*Histogram)
}

// Snapshot returns every label's snapshot.
func (f *Family) Snapshot() map[string]HistogramSnapshot {
	out := make(map[string]HistogramSnapshot)
	if f == nil {
		return out
	}
	f.m.Range(func(k, v any) bool {
		out[k.(string)] = v.(*Histogram).Snapshot()
		return true
	})
	return out
}

// Set is a named registry of histograms and families — one per server task,
// so observability state lives beside the task's Comm counters and survives
// whatever happens to individual executors (recovery rebuilds them; the Set
// is carried across).
type Set struct {
	hists sync.Map // string -> *Histogram
	fams  sync.Map // string -> *Family
}

// Hist returns the named histogram, creating it on first use.
func (s *Set) Hist(name string) *Histogram {
	if s == nil {
		return nil
	}
	if h, ok := s.hists.Load(name); ok {
		return h.(*Histogram)
	}
	h, _ := s.hists.LoadOrStore(name, &Histogram{})
	return h.(*Histogram)
}

// Family returns the named family, creating it on first use.
func (s *Set) Family(name string) *Family {
	if s == nil {
		return nil
	}
	if f, ok := s.fams.Load(name); ok {
		return f.(*Family)
	}
	f, _ := s.fams.LoadOrStore(name, &Family{})
	return f.(*Family)
}

// SetSnapshot is an immutable view of a Set.
type SetSnapshot struct {
	Hists    map[string]HistogramSnapshot
	Families map[string]map[string]HistogramSnapshot
}

// Snapshot captures every histogram and family in the set.
func (s *Set) Snapshot() SetSnapshot {
	out := SetSnapshot{
		Hists:    make(map[string]HistogramSnapshot),
		Families: make(map[string]map[string]HistogramSnapshot),
	}
	if s == nil {
		return out
	}
	s.hists.Range(func(k, v any) bool {
		out.Hists[k.(string)] = v.(*Histogram).Snapshot()
		return true
	})
	s.fams.Range(func(k, v any) bool {
		out.Families[k.(string)] = v.(*Family).Snapshot()
		return true
	})
	return out
}

// FamilyTotal merges every label of a family snapshot into one histogram —
// e.g. all edges' sent-bytes into the task's total, whose Sum must then
// equal the task's Comm BytesSent counter (the consistency suite asserts
// exactly that).
func FamilyTotal(fam map[string]HistogramSnapshot) HistogramSnapshot {
	labels := make([]string, 0, len(fam))
	for l := range fam {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	var total HistogramSnapshot
	for _, l := range labels {
		total = total.Merge(fam[l])
	}
	return total
}

// MergeFamilies merges two label-keyed family snapshots label by label,
// keeping the union of labels: a label present on only one side carries
// over unchanged rather than silently dropping. This is the rollup shape
// cluster aggregation needs — per-task families rarely have identical
// label sets (each task only records the edges it owns), and intersecting
// would erase every edge the two tasks don't share.
func MergeFamilies(a, b map[string]HistogramSnapshot) map[string]HistogramSnapshot {
	out := make(map[string]HistogramSnapshot, len(a)+len(b))
	for l, s := range a {
		out[l] = s
	}
	for l, s := range b {
		out[l] = out[l].Merge(s)
	}
	return out
}

// Canonical histogram names used across the stack. Keeping them in one
// place ties the recorder sites, the Prometheus encoder, and the
// consistency tests to the same vocabulary.
const (
	// HistExecOpNs: family, per-op-kind operator execution latency (ns).
	HistExecOpNs = "exec_op_ns"
	// HistPollWaitNs: scheduler poll backoff sleeps (ns per sleep).
	HistPollWaitNs = "exec_poll_wait_ns"
	// HistEdgeSentBytes / HistEdgeRecvBytes: families, per-edge transfer
	// sizes recorded at exactly the sites that bump Comm.BytesSent/Recv.
	HistEdgeSentBytes = "edge_sent_bytes"
	HistEdgeRecvBytes = "edge_recv_bytes"
	// HistEdgeXferNs: family, per-edge blocking-transfer latency (ns),
	// recorded by the rdma retry layer via TransferOpts.OnComplete.
	HistEdgeXferNs = "edge_xfer_ns"
	// HistRingSendNs: ring-transport send latency (ns) of the task's
	// outbound RPC messages, for the gRPC-over-RDMA mechanisms.
	HistRingSendNs = "ring_send_ns"
	// HistStepNs: per-task wall step time (ns), fed by the cluster step
	// loop; the straggler detector reads it.
	HistStepNs = "step_ns"
	// HistPolledBatch: how many pending polling ops the scheduler scanned
	// per batched-poll pass (count, not ns). A distribution leaning above
	// 1 means the batch scan is amortizing per-op poll overhead.
	HistPolledBatch = "exec_polled_batch_size"
)
