package metrics

import "testing"

// FuzzHistogramRecord: arbitrary values never panic, never mis-bucket
// (every value lands in a bucket whose bounds contain it), and count/sum
// stay exact under any input, including MinInt64/MaxInt64 edge cases.
func FuzzHistogramRecord(f *testing.F) {
	f.Add(int64(0), int64(1), int64(-1))
	f.Add(int64(1<<62), int64(-1<<62), int64(255))
	f.Add(int64(9223372036854775807), int64(-9223372036854775808), int64(256))
	f.Fuzz(func(t *testing.T, a, b, c int64) {
		var h Histogram
		for _, v := range []int64{a, b, c} {
			i := bucketOf(v)
			if i < 0 || i >= NumBuckets {
				t.Fatalf("bucketOf(%d) = %d out of range", v, i)
			}
			if v > BucketUpper(i) {
				t.Fatalf("value %d mis-bucketed: bucket %d upper %d", v, i, BucketUpper(i))
			}
			if i > 0 && i < NumBuckets-1 && v <= BucketUpper(i-1) {
				t.Fatalf("value %d mis-bucketed low: bucket %d, prev upper %d", v, i, BucketUpper(i-1))
			}
			h.Record(v)
		}
		s := h.Snapshot()
		if s.Count != 3 {
			t.Fatalf("count %d, want 3", s.Count)
		}
		if want := a + b + c; s.Sum != want {
			t.Fatalf("sum %d, want %d (wrap-around is defined behavior)", s.Sum, want)
		}
		var total int64
		for _, n := range s.Buckets {
			total += n
		}
		if total != 3 {
			t.Fatalf("bucket total %d, want 3", total)
		}
		// Quantiles stay monotone on any distribution.
		prev := int64(-1 << 62)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.99, 1} {
			v := s.Quantile(q)
			if v < prev {
				t.Fatalf("quantile regressed at q=%v: %d after %d", q, v, prev)
			}
			prev = v
		}
	})
}
