// Package metrics provides the lightweight counters the communication
// mechanisms and the benchmark harness report: bytes moved, message counts,
// and — central to the paper's argument — how many bytes were memcpy'd or
// (de)serialized on the way.
package metrics

import "sync/atomic"

// Comm counts one server's communication activity.
type Comm struct {
	bytesSent    atomic.Int64
	bytesRecv    atomic.Int64
	messages     atomic.Int64
	memCopies    atomic.Int64
	copiedBytes  atomic.Int64
	serializedB  atomic.Int64
	zeroCopyOps  atomic.Int64
	dynTransfers atomic.Int64
	retries      atomic.Int64
	timeouts     atomic.Int64
	faults       atomic.Int64
}

// CommSnapshot is an immutable view of a Comm.
type CommSnapshot struct {
	BytesSent       int64
	BytesRecv       int64
	Messages        int64
	MemCopies       int64
	CopiedBytes     int64
	SerializedBytes int64
	ZeroCopyOps     int64
	DynTransfers    int64
	Retries         int64
	Timeouts        int64
	FaultsInjected  int64
}

// AddSent records an outbound transfer.
func (c *Comm) AddSent(n int) {
	c.bytesSent.Add(int64(n))
	c.messages.Add(1)
}

// AddRecv records an inbound transfer.
func (c *Comm) AddRecv(n int) { c.bytesRecv.Add(int64(n)) }

// AddCopy records an extra memory copy of n bytes (the overhead zero-copy
// transfer eliminates).
func (c *Comm) AddCopy(n int) {
	c.memCopies.Add(1)
	c.copiedBytes.Add(int64(n))
}

// AddSerialized records n bytes of (de)serialization work.
func (c *Comm) AddSerialized(n int) { c.serializedB.Add(int64(n)) }

// AddZeroCopy records a transfer that required no copy at all.
func (c *Comm) AddZeroCopy() { c.zeroCopyOps.Add(1) }

// AddDynTransfer records a dynamic-allocation-protocol transfer.
func (c *Comm) AddDynTransfer() { c.dynTransfers.Add(1) }

// AddRetry records one retry of a transiently failed transfer or RPC.
func (c *Comm) AddRetry() { c.retries.Add(1) }

// AddTimeout records one transfer or edge that exhausted its deadline.
func (c *Comm) AddTimeout() { c.timeouts.Add(1) }

// AddFaultInjected records one fault introduced by a chaos injector.
func (c *Comm) AddFaultInjected() { c.faults.Add(1) }

// Snapshot returns the current counter values.
func (c *Comm) Snapshot() CommSnapshot {
	return CommSnapshot{
		BytesSent:       c.bytesSent.Load(),
		BytesRecv:       c.bytesRecv.Load(),
		Messages:        c.messages.Load(),
		MemCopies:       c.memCopies.Load(),
		CopiedBytes:     c.copiedBytes.Load(),
		SerializedBytes: c.serializedB.Load(),
		ZeroCopyOps:     c.zeroCopyOps.Load(),
		DynTransfers:    c.dynTransfers.Load(),
		Retries:         c.retries.Load(),
		Timeouts:        c.timeouts.Load(),
		FaultsInjected:  c.faults.Load(),
	}
}
