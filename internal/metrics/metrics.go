// Package metrics provides the lightweight counters the communication
// mechanisms and the benchmark harness report: bytes moved, message counts,
// and — central to the paper's argument — how many bytes were memcpy'd or
// (de)serialized on the way.
package metrics

import "sync/atomic"

// MaxLanes bounds the per-lane byte accounting; it matches the transfer
// layer's stripe-count ceiling (rdma.MaxStripes).
const MaxLanes = 16

// Comm counts one server's communication activity.
type Comm struct {
	bytesSent    atomic.Int64
	bytesRecv    atomic.Int64
	messages     atomic.Int64
	memCopies    atomic.Int64
	copiedBytes  atomic.Int64
	serializedB  atomic.Int64
	zeroCopyOps  atomic.Int64
	dynTransfers atomic.Int64
	retries      atomic.Int64
	timeouts     atomic.Int64
	faults       atomic.Int64

	stripeSegs      atomic.Int64
	stripedOps      atomic.Int64
	laneBytes       [MaxLanes]atomic.Int64
	coalesceFlushes atomic.Int64
	coalesceMsgs    atomic.Int64
	doorbellFlushes atomic.Int64

	retransmitChunks atomic.Int64
	nacksSent        atomic.Int64

	qpSlotsActive atomic.Int64
	qpLeases      atomic.Int64
	qpEvictions   atomic.Int64
	qpBusy        atomic.Int64
}

// CommSnapshot is an immutable view of a Comm.
type CommSnapshot struct {
	BytesSent       int64
	BytesRecv       int64
	Messages        int64
	MemCopies       int64
	CopiedBytes     int64
	SerializedBytes int64
	ZeroCopyOps     int64
	DynTransfers    int64
	Retries         int64
	Timeouts        int64
	FaultsInjected  int64

	// StripeSegments counts per-lane stripe writes/reads; StripedTransfers
	// counts transfers that went out over more than one lane.
	StripeSegments   int64
	StripedTransfers int64
	// LaneBytes is bytes moved per QP lane (index = lane % MaxLanes).
	LaneBytes [MaxLanes]int64
	// CoalesceFlushes / CoalescedMessages count batch flushes and the
	// sub-messages they carried; their ratio is the coalescing hit rate.
	CoalesceFlushes   int64
	CoalescedMessages int64
	// DoorbellFlushes counts doorbell-batched posts: a lane's stripe
	// chunks entering the send queue as one flush instead of one post
	// per chunk. StripeSegments / DoorbellFlushes is the chunks-per-
	// doorbell batching factor.
	DoorbellFlushes int64
	// RetransmitChunks counts chunks the lossy protocol selectively
	// re-sent; NacksSent counts the receiver-side NACKs that asked for
	// them. Under chunk loss these grow while Retries stays flat — the
	// signature of per-tensor recovery without connection-level replay.
	RetransmitChunks int64
	NacksSent        int64
	// QPSlotsActive / QPLeases are mux gauges (bound slots, outstanding
	// leases); QPEvictions and QPBusy count LRU rebinds and lease-
	// exhaustion rejections since start.
	QPSlotsActive int64
	QPLeases      int64
	QPEvictions   int64
	QPBusy        int64
}

// AddSent records an outbound transfer.
func (c *Comm) AddSent(n int) {
	c.bytesSent.Add(int64(n))
	c.messages.Add(1)
}

// AddRecv records an inbound transfer.
func (c *Comm) AddRecv(n int) { c.bytesRecv.Add(int64(n)) }

// AddCopy records an extra memory copy of n bytes (the overhead zero-copy
// transfer eliminates).
func (c *Comm) AddCopy(n int) {
	c.memCopies.Add(1)
	c.copiedBytes.Add(int64(n))
}

// AddSerialized records n bytes of (de)serialization work.
func (c *Comm) AddSerialized(n int) { c.serializedB.Add(int64(n)) }

// AddZeroCopy records a transfer that required no copy at all.
func (c *Comm) AddZeroCopy() { c.zeroCopyOps.Add(1) }

// AddDynTransfer records a dynamic-allocation-protocol transfer.
func (c *Comm) AddDynTransfer() { c.dynTransfers.Add(1) }

// AddRetry records one retry of a transiently failed transfer or RPC.
func (c *Comm) AddRetry() { c.retries.Add(1) }

// AddTimeout records one transfer or edge that exhausted its deadline.
func (c *Comm) AddTimeout() { c.timeouts.Add(1) }

// AddFaultInjected records one fault introduced by a chaos injector.
func (c *Comm) AddFaultInjected() { c.faults.Add(1) }

// AddStripe records one stripe segment of n bytes on the given QP lane.
func (c *Comm) AddStripe(lane, n int) {
	c.stripeSegs.Add(1)
	if lane < 0 {
		lane = 0
	}
	c.laneBytes[lane%MaxLanes].Add(int64(n))
}

// AddStripedTransfer records a transfer that was split across >1 lanes.
func (c *Comm) AddStripedTransfer() { c.stripedOps.Add(1) }

// AddDoorbellFlush records one doorbell-batched post of a lane's chunks.
func (c *Comm) AddDoorbellFlush() { c.doorbellFlushes.Add(1) }

// AddCoalesced records one batch flush carrying msgs coalesced sub-messages.
func (c *Comm) AddCoalesced(msgs int) {
	c.coalesceFlushes.Add(1)
	c.coalesceMsgs.Add(int64(msgs))
}

// AddRetransmit records one served NACK that selectively re-sent n chunks.
func (c *Comm) AddRetransmit(n int) { c.retransmitChunks.Add(int64(n)) }

// AddNack records one NACK posted by a lossy receiver.
func (c *Comm) AddNack() { c.nacksSent.Add(1) }

// SetQPStats publishes the QP mux state: current bound slots and
// outstanding leases (gauges), cumulative evictions and busy rejections.
func (c *Comm) SetQPStats(slotsActive, leases int, evictions, busy int64) {
	c.qpSlotsActive.Store(int64(slotsActive))
	c.qpLeases.Store(int64(leases))
	c.qpEvictions.Store(evictions)
	c.qpBusy.Store(busy)
}

// Snapshot returns the current counter values.
func (c *Comm) Snapshot() CommSnapshot {
	s := CommSnapshot{
		BytesSent:         c.bytesSent.Load(),
		BytesRecv:         c.bytesRecv.Load(),
		Messages:          c.messages.Load(),
		MemCopies:         c.memCopies.Load(),
		CopiedBytes:       c.copiedBytes.Load(),
		SerializedBytes:   c.serializedB.Load(),
		ZeroCopyOps:       c.zeroCopyOps.Load(),
		DynTransfers:      c.dynTransfers.Load(),
		Retries:           c.retries.Load(),
		Timeouts:          c.timeouts.Load(),
		FaultsInjected:    c.faults.Load(),
		StripeSegments:    c.stripeSegs.Load(),
		StripedTransfers:  c.stripedOps.Load(),
		CoalesceFlushes:   c.coalesceFlushes.Load(),
		CoalescedMessages: c.coalesceMsgs.Load(),
		DoorbellFlushes:   c.doorbellFlushes.Load(),
		RetransmitChunks:  c.retransmitChunks.Load(),
		NacksSent:         c.nacksSent.Load(),
		QPSlotsActive:     c.qpSlotsActive.Load(),
		QPLeases:          c.qpLeases.Load(),
		QPEvictions:       c.qpEvictions.Load(),
		QPBusy:            c.qpBusy.Load(),
	}
	for i := range c.laneBytes {
		s.LaneBytes[i] = c.laneBytes[i].Load()
	}
	return s
}

// ActiveLanes reports how many QP lanes saw any bytes.
func (s CommSnapshot) ActiveLanes() int {
	n := 0
	for _, b := range s.LaneBytes {
		if b > 0 {
			n++
		}
	}
	return n
}
