package metrics

import "sync/atomic"

// Serve counts one process's serving-plane activity: weight publication on
// the trainer side, bank swaps on the replica side, and query admission at
// the frontend. Like Comm, it is a bag of atomics safe for concurrent use
// from every hot path.
type Serve struct {
	publishes      atomic.Int64
	publishedBytes atomic.Int64
	republishes    atomic.Int64
	bankSwaps      atomic.Int64
	served         atomic.Int64
	shed           atomic.Int64
	batches        atomic.Int64
	rejects        atomic.Int64

	stalenessMax   atomic.Int64
	activeReplicas atomic.Int64
}

// ServeSnapshot is an immutable view of a Serve.
type ServeSnapshot struct {
	// WeightPublishes counts completed publications across all replicas;
	// PublishedBytes the payload bytes they moved. Republishes counts
	// catch-up publications to readmitted replicas.
	WeightPublishes int64
	PublishedBytes  int64
	Republishes     int64
	// BankSwaps counts replica-side atomic switches to a new version.
	BankSwaps int64
	// QueriesServed / QueriesShed split admitted traffic from the bounded
	// queue's typed ErrOverloaded rejections; ServeBatches counts the
	// inference batches the admitted queries rode in. RoutingRejects
	// counts batches that found no routable replica.
	QueriesServed int64
	QueriesShed   int64
	ServeBatches  int64
	RoutingRejects int64
	// StalenessVersionsMax is the largest trainer-minus-served version gap
	// any response observed (the staleness gate asserts ≤ 1).
	StalenessVersionsMax int64
	// ActiveReplicas is the routing table's current live replica count.
	ActiveReplicas int64
}

// AddPublish records one completed publication of n payload bytes.
func (s *Serve) AddPublish(n int) {
	s.publishes.Add(1)
	s.publishedBytes.Add(int64(n))
}

// AddRepublish records a catch-up publication to a readmitted replica.
func (s *Serve) AddRepublish(n int) {
	s.republishes.Add(1)
	s.publishedBytes.Add(int64(n))
}

// AddBankSwap records one replica-side version swap.
func (s *Serve) AddBankSwap() { s.bankSwaps.Add(1) }

// AddServed records n queries answered from one inference batch.
func (s *Serve) AddServed(n int) {
	s.served.Add(int64(n))
	s.batches.Add(1)
}

// AddShed records one query rejected by admission control.
func (s *Serve) AddShed() { s.shed.Add(1) }

// AddRoutingReject records a batch that found no routable replica.
func (s *Serve) AddRoutingReject() { s.rejects.Add(1) }

// ObserveStaleness folds one response's version gap into the running max.
func (s *Serve) ObserveStaleness(gap int64) {
	for {
		cur := s.stalenessMax.Load()
		if gap <= cur || s.stalenessMax.CompareAndSwap(cur, gap) {
			return
		}
	}
}

// SetActiveReplicas publishes the routing table's live replica count.
func (s *Serve) SetActiveReplicas(n int) { s.activeReplicas.Store(int64(n)) }

// Snapshot returns the current counter values.
func (s *Serve) Snapshot() ServeSnapshot {
	return ServeSnapshot{
		WeightPublishes:      s.publishes.Load(),
		PublishedBytes:       s.publishedBytes.Load(),
		Republishes:          s.republishes.Load(),
		BankSwaps:            s.bankSwaps.Load(),
		QueriesServed:        s.served.Load(),
		QueriesShed:          s.shed.Load(),
		ServeBatches:         s.batches.Load(),
		RoutingRejects:       s.rejects.Load(),
		StalenessVersionsMax: s.stalenessMax.Load(),
		ActiveReplicas:       s.activeReplicas.Load(),
	}
}

// Serving-plane histogram names (see the canonical list in histogram.go).
const (
	// HistServeBatchNs: end-to-end inference latency per served batch (ns).
	HistServeBatchNs = "serve_batch_ns"
	// HistServeQueueNs: per-query admission-to-dispatch queue wait (ns).
	HistServeQueueNs = "serve_queue_wait_ns"
	// HistServeBatchSize: queries per dispatched batch (count).
	HistServeBatchSize = "serve_batch_size"
	// HistServePublishNs: per-version publication latency across the
	// replica fleet (ns).
	HistServePublishNs = "serve_publish_ns"
)
