package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Compute-side counters: where kernel time goes and how well the two memory
// reuse layers (the size-bucketed scratch pool and the executor's
// output-tensor recycler) are hitting. Together with the Comm counters they
// answer the paper's §2 question end to end: is an iteration bound by
// communication or by operator execution?

// ComputeSnapshot is an immutable view of the process-wide compute counters.
type ComputeSnapshot struct {
	// ScratchHits/ScratchMisses count scratch-pool Get calls served from a
	// bucket vs freshly allocated.
	ScratchHits   int64
	ScratchMisses int64
	// ScratchDiscards counts Put calls dropped because the bucket was full.
	ScratchDiscards int64
	// RecycleHits/RecycleMisses count executor output allocations served by
	// reusing the previous iteration's tensor vs routed to the AllocPolicy.
	RecycleHits   int64
	RecycleMisses int64
}

var compute struct {
	scratchHits     atomic.Int64
	scratchMisses   atomic.Int64
	scratchDiscards atomic.Int64
	recycleHits     atomic.Int64
	recycleMisses   atomic.Int64
}

// AddScratchHit records a scratch-pool Get served from a bucket.
func AddScratchHit() { compute.scratchHits.Add(1) }

// AddScratchMiss records a scratch-pool Get that had to allocate.
func AddScratchMiss() { compute.scratchMisses.Add(1) }

// AddScratchDiscard records a scratch-pool Put dropped by a full bucket.
func AddScratchDiscard() { compute.scratchDiscards.Add(1) }

// AddRecycleHit records an executor output allocation served by reuse.
func AddRecycleHit() { compute.recycleHits.Add(1) }

// AddRecycleMiss records an executor output allocation that went to the
// alloc policy.
func AddRecycleMiss() { compute.recycleMisses.Add(1) }

// Compute returns the current process-wide compute counter values.
func Compute() ComputeSnapshot {
	return ComputeSnapshot{
		ScratchHits:     compute.scratchHits.Load(),
		ScratchMisses:   compute.scratchMisses.Load(),
		ScratchDiscards: compute.scratchDiscards.Load(),
		RecycleHits:     compute.recycleHits.Load(),
		RecycleMisses:   compute.recycleMisses.Load(),
	}
}

// KernelStat aggregates one operator type's kernel executions process-wide.
type KernelStat struct {
	Op    string
	Count int64
	Total time.Duration
}

// Mean returns the average kernel duration.
func (s KernelStat) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Count)
}

var kernels struct {
	mu sync.Mutex
	m  map[string]*KernelStat
}

// AddKernelTime records one kernel execution of operator op.
func AddKernelTime(op string, d time.Duration) {
	kernels.mu.Lock()
	defer kernels.mu.Unlock()
	if kernels.m == nil {
		kernels.m = make(map[string]*KernelStat)
	}
	s, ok := kernels.m[op]
	if !ok {
		s = &KernelStat{Op: op}
		kernels.m[op] = s
	}
	s.Count++
	s.Total += d
}

// KernelSnapshot returns per-operator kernel time, sorted by total time
// descending.
func KernelSnapshot() []KernelStat {
	kernels.mu.Lock()
	defer kernels.mu.Unlock()
	out := make([]KernelStat, 0, len(kernels.m))
	for _, s := range kernels.m {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Op < out[j].Op
	})
	return out
}
