package metrics

import "sync/atomic"

// Recovery counts one cluster's failure-detection and crash-recovery
// activity: heartbeat traffic, lease expiries, checkpoint/rollback rounds,
// and task rejoins. Tests assert on these to prove a crash was detected by
// the lease detector (not just by a failing transfer) and that recovery
// actually rolled state back.
type Recovery struct {
	heartbeats  atomic.Int64
	missedBeats atomic.Int64
	expiries    atomic.Int64
	checkpoints atomic.Int64
	rollbacks   atomic.Int64
	recoveries  atomic.Int64
	rejoins     atomic.Int64
}

// RecoverySnapshot is an immutable view of a Recovery.
type RecoverySnapshot struct {
	// Heartbeats counts acknowledged lease pings; MissedBeats counts pings
	// that failed or timed out (several misses precede one expiry).
	Heartbeats  int64
	MissedBeats int64
	// LeaseExpiries counts tasks the detector declared dead.
	LeaseExpiries int64
	// Checkpoints counts completed cluster-wide snapshot rounds; Rollbacks
	// counts restores back to one.
	Checkpoints int64
	Rollbacks   int64
	// Recoveries counts recovery rounds driven to completion; Rejoins counts
	// restarted tasks re-registered on the fabric.
	Recoveries int64
	Rejoins    int64
}

// AddHeartbeat records one acknowledged lease ping.
func (r *Recovery) AddHeartbeat() { r.heartbeats.Add(1) }

// AddMissedBeat records one failed or timed-out lease ping.
func (r *Recovery) AddMissedBeat() { r.missedBeats.Add(1) }

// AddLeaseExpiry records one task declared dead by the detector.
func (r *Recovery) AddLeaseExpiry() { r.expiries.Add(1) }

// AddCheckpoint records one completed cluster-wide checkpoint.
func (r *Recovery) AddCheckpoint() { r.checkpoints.Add(1) }

// AddRollback records one cluster-wide restore to a checkpoint.
func (r *Recovery) AddRollback() { r.rollbacks.Add(1) }

// AddRecovery records one recovery round driven to completion.
func (r *Recovery) AddRecovery() { r.recoveries.Add(1) }

// AddRejoin records one restarted task re-registered on the fabric.
func (r *Recovery) AddRejoin() { r.rejoins.Add(1) }

// Snapshot returns the current counter values.
func (r *Recovery) Snapshot() RecoverySnapshot {
	return RecoverySnapshot{
		Heartbeats:    r.heartbeats.Load(),
		MissedBeats:   r.missedBeats.Load(),
		LeaseExpiries: r.expiries.Load(),
		Checkpoints:   r.checkpoints.Load(),
		Rollbacks:     r.rollbacks.Load(),
		Recoveries:    r.recoveries.Load(),
		Rejoins:       r.rejoins.Load(),
	}
}
