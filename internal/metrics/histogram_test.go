package metrics

import (
	"math"
	"math/bits"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// recordAll builds a snapshot from a value slice via a fresh histogram.
func recordAll(vals []int64) HistogramSnapshot {
	var h Histogram
	for _, v := range vals {
		h.Record(v)
	}
	return h.Snapshot()
}

// TestHistogramCountSumExact: count and sum are exact regardless of
// bucketing (they are tracked independently of the buckets).
func TestHistogramCountSumExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		vals := make([]int64, n)
		var wantSum int64
		for i := range vals {
			vals[i] = rng.Int63n(1<<40) - 1000 // include negatives
			wantSum += vals[i]
		}
		s := recordAll(vals)
		if s.Count != int64(n) {
			t.Fatalf("trial %d: count %d, want %d", trial, s.Count, n)
		}
		if s.Sum != wantSum {
			t.Fatalf("trial %d: sum %d, want %d", trial, s.Sum, wantSum)
		}
		var bucketTotal int64
		for _, b := range s.Buckets {
			bucketTotal += b
		}
		if bucketTotal != int64(n) {
			t.Fatalf("trial %d: bucket total %d, want %d", trial, bucketTotal, n)
		}
	}
}

// TestHistogramMergeProperties: merge is commutative and associative, and
// merging partitions of a value set equals recording the whole set.
func TestHistogramMergeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		mk := func() []int64 {
			vals := make([]int64, rng.Intn(100))
			for i := range vals {
				vals[i] = rng.Int63n(1 << 50)
			}
			return vals
		}
		va, vb, vc := mk(), mk(), mk()
		a, b, c := recordAll(va), recordAll(vb), recordAll(vc)

		if a.Merge(b) != b.Merge(a) {
			t.Fatal("merge not commutative")
		}
		if a.Merge(b).Merge(c) != a.Merge(b.Merge(c)) {
			t.Fatal("merge not associative")
		}
		all := recordAll(append(append(append([]int64(nil), va...), vb...), vc...))
		if got := a.Merge(b).Merge(c); got != all {
			t.Fatalf("merge of partitions != whole: %+v vs %+v", got, all)
		}
	}
}

// TestHistogramQuantileMonotone: quantiles never decrease as q grows, and
// the bucket bound brackets the true value within one power of two.
func TestHistogramQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		vals := make([]int64, 1+rng.Intn(300))
		for i := range vals {
			vals[i] = rng.Int63n(1 << 30)
		}
		s := recordAll(vals)
		prev := int64(-1)
		for q := 0.0; q <= 1.0; q += 0.01 {
			v := s.Quantile(q)
			if v < prev {
				t.Fatalf("quantile not monotone: q=%.2f gave %d after %d", q, v, prev)
			}
			prev = v
		}
		// The p100 bound must be >= the true max; p0 <= 2x the true min bound.
		max := vals[0]
		for _, v := range vals {
			if v > max {
				max = v
			}
		}
		if s.Quantile(1) < max {
			t.Fatalf("p100 %d below true max %d", s.Quantile(1), max)
		}
	}
	// Empty histogram: all quantiles are 0.
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
}

// TestHistogramBucketBounds: every value lands in the bucket whose bounds
// contain it.
func TestHistogramBucketBounds(t *testing.T) {
	cases := []int64{-5, 0, 1, 2, 3, 4, 7, 8, 255, 256, 1 << 20, math.MaxInt64}
	for _, v := range cases {
		i := bucketOf(v)
		upper := BucketUpper(i)
		if v > upper {
			t.Fatalf("value %d above bucket %d upper %d", v, i, upper)
		}
		if i > 0 {
			lower := BucketUpper(i-1) + 1
			if i < NumBuckets-1 && v < lower {
				t.Fatalf("value %d below bucket %d lower %d", v, i, lower)
			}
		}
	}
	if bucketOf(1) != bits.Len64(1) {
		t.Fatal("bucketOf(1) mismatch")
	}
}

// TestHistogramConcurrentRecord: hammer one histogram from many goroutines
// under -race; totals must be exact.
func TestHistogramConcurrentRecord(t *testing.T) {
	const goroutines, per = 8, 5000
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Record(rng.Int63n(1 << 32))
			}
		}(int64(g))
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count %d, want %d", s.Count, goroutines*per)
	}
	var bucketTotal int64
	for _, b := range s.Buckets {
		bucketTotal += b
	}
	if bucketTotal != s.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, s.Count)
	}
}

// TestHistogramRecordZeroAlloc: the hot path — Record on a resolved
// histogram, including one fetched from a warm Family/Set — allocates
// nothing. The obs overhead budget (DESIGN.md §12) depends on this.
func TestHistogramRecordZeroAlloc(t *testing.T) {
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { h.Record(12345) }); n != 0 {
		t.Fatalf("Histogram.Record allocates %.1f times per call", n)
	}
	var set Set
	edge := set.Family(HistEdgeSentBytes).With("w0->ps0")
	if n := testing.AllocsPerRun(1000, func() { edge.Record(4096) }); n != 0 {
		t.Fatalf("family histogram Record allocates %.1f times per call", n)
	}
	// Re-resolving an existing label must not allocate either (sync.Map
	// read path), so even un-cached call sites stay allocation-free.
	if n := testing.AllocsPerRun(1000, func() {
		set.Family(HistEdgeSentBytes).With("w0->ps0").Record(1)
	}); n != 0 {
		t.Fatalf("warm Family.With+Record allocates %.1f times per call", n)
	}
}

// TestNilHistogramSafe: nil receivers are no-ops so call sites need no
// guards when observability is off.
func TestNilHistogramSafe(t *testing.T) {
	var h *Histogram
	h.Record(1)
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil snapshot not empty")
	}
	var f *Family
	f.With("x").Record(1)
	var set *Set
	set.Hist("x").Record(1)
	set.Family("y").With("z").Record(1)
	if got := set.Snapshot(); len(got.Hists) != 0 || len(got.Families) != 0 {
		t.Fatal("nil set snapshot not empty")
	}
}

// TestStepStatAccumulates: Observe folds breakdowns, Summary reports them,
// and the wall-time histogram sees every step.
func TestStepStatAccumulates(t *testing.T) {
	var st StepStat
	for i := 0; i < 10; i++ {
		st.Observe(StepBreakdown{
			Wall: 10 * time.Millisecond, Workers: 2,
			Compute: 8 * time.Millisecond, Comm: 4 * time.Millisecond,
			PollWait: 2 * time.Millisecond, Idle: 6 * time.Millisecond,
			Ops: 30,
		})
	}
	s := st.Summary()
	if s.Steps != 10 || s.Totals.Wall != 100*time.Millisecond || s.Totals.Ops != 300 {
		t.Fatalf("bad summary: %+v", s)
	}
	if s.MeanWall() != 10*time.Millisecond {
		t.Fatalf("mean wall %v", s.MeanWall())
	}
	if s.WallNs.Count != 10 {
		t.Fatalf("wall hist count %d", s.WallNs.Count)
	}
	if got, want := s.Totals.Accounted(), 200*time.Millisecond; got != want {
		t.Fatalf("accounted %v, want %v", got, want)
	}
}

// TestStragglers: a task materially slower than the median is flagged;
// small clusters and tight clusters are not.
func TestStragglers(t *testing.T) {
	mk := func(wall time.Duration) StepSummary {
		return StepSummary{Steps: 10, Totals: StepBreakdown{Wall: wall * 10}}
	}
	sums := map[string]StepSummary{
		"worker0": mk(10 * time.Millisecond),
		"worker1": mk(11 * time.Millisecond),
		"worker2": mk(40 * time.Millisecond),
		"ps0":     mk(9 * time.Millisecond),
	}
	got := Stragglers(sums, 1.5)
	if len(got) != 1 || got[0] != "worker2" {
		t.Fatalf("stragglers = %v, want [worker2]", got)
	}
	delete(sums, "worker2")
	if got := Stragglers(sums, 1.5); len(got) != 0 {
		t.Fatalf("tight cluster flagged %v", got)
	}
	two := map[string]StepSummary{"a": mk(1 * time.Millisecond), "b": mk(100 * time.Millisecond)}
	if got := Stragglers(two, 1.5); got != nil {
		t.Fatalf("two-task cluster flagged %v", got)
	}
}

// TestQuantileTornSnapshot pins the fix for mid-record snapshots: Record
// bumps Count before the bucket, so a concurrent Snapshot can observe
// Count > ΣBuckets. The quantile must answer from the buckets actually
// present, never fall off the array and report MaxInt64.
func TestQuantileTornSnapshot(t *testing.T) {
	var s HistogramSnapshot
	s.Count = 5 // three observations still in flight
	s.Buckets[bucketOf(100)] = 2
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != BucketUpper(bucketOf(100)) {
			t.Fatalf("torn snapshot Quantile(%v) = %d, want bucket upper %d",
				q, got, BucketUpper(bucketOf(100)))
		}
	}
	// Fully torn: count ahead, no bucket landed yet. Empty answer, not max.
	var empty HistogramSnapshot
	empty.Count = 3
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("all-torn snapshot Quantile = %d, want 0", got)
	}
}

// TestQuantileEdgeCases pins empty and single-bucket behavior.
func TestQuantileEdgeCases(t *testing.T) {
	var empty HistogramSnapshot
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := empty.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
	var h Histogram
	h.Record(7)
	s := h.Snapshot()
	want := BucketUpper(bucketOf(7))
	for _, q := range []float64{-0.5, 0, 0.25, 1, 1.5} {
		if got := s.Quantile(q); got != want {
			t.Fatalf("single-bucket Quantile(%v) = %d, want %d", q, got, want)
		}
	}
}

// TestQuantileProperty: for random fills, every quantile is an upper bound
// of some recorded value's bucket, monotone in q, and never exceeds the
// max recorded value's bucket upper bound.
func TestQuantileProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		var h Histogram
		n := rng.Intn(40) + 1
		maxV := int64(0)
		for i := 0; i < n; i++ {
			v := rng.Int63n(1 << uint(rng.Intn(40)))
			if v > maxV {
				maxV = v
			}
			h.Record(v)
		}
		s := h.Snapshot()
		prev := int64(-1)
		for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
			got := s.Quantile(q)
			if got < prev {
				t.Fatalf("trial %d: Quantile not monotone: q=%v got %d < prev %d", trial, q, got, prev)
			}
			prev = got
			if got > BucketUpper(bucketOf(maxV)) {
				t.Fatalf("trial %d: Quantile(%v)=%d exceeds max bucket %d",
					trial, q, got, BucketUpper(bucketOf(maxV)))
			}
		}
	}
}

// TestMergeFamiliesUnion pins the label-preservation contract: merging
// family snapshots with mismatched label sets keeps the union, and shared
// labels merge element-wise.
func TestMergeFamiliesUnion(t *testing.T) {
	var ha, hb, hshared1, hshared2 Histogram
	ha.Record(10)
	hb.Record(20)
	hb.Record(30)
	hshared1.Record(5)
	hshared2.Record(6)
	a := map[string]HistogramSnapshot{
		"only-a": ha.Snapshot(),
		"shared": hshared1.Snapshot(),
	}
	b := map[string]HistogramSnapshot{
		"only-b": hb.Snapshot(),
		"shared": hshared2.Snapshot(),
	}
	out := MergeFamilies(a, b)
	if len(out) != 3 {
		t.Fatalf("merged %d labels, want 3 (union): %v", len(out), out)
	}
	if out["only-a"].Count != 1 || out["only-a"].Sum != 10 {
		t.Fatalf("only-a dropped or mangled: %+v", out["only-a"])
	}
	if out["only-b"].Count != 2 || out["only-b"].Sum != 50 {
		t.Fatalf("only-b dropped or mangled: %+v", out["only-b"])
	}
	if out["shared"].Count != 2 || out["shared"].Sum != 11 {
		t.Fatalf("shared not merged element-wise: %+v", out["shared"])
	}
	// Inputs untouched.
	if a["shared"].Count != 1 || b["shared"].Count != 1 {
		t.Fatal("MergeFamilies mutated an input")
	}
	// Commutative on every label, including one-sided ones.
	out2 := MergeFamilies(b, a)
	for l := range out {
		if out[l] != out2[l] {
			t.Fatalf("MergeFamilies not commutative at %q", l)
		}
	}
	// Total count is conserved.
	if got := FamilyTotal(out).Count; got != 5 {
		t.Fatalf("merged total count %d, want 5", got)
	}
}
