package metrics

import (
	"sort"
	"sync"
	"time"
)

// Step-time accounting: where a training step's wall clock goes, per task.
// The executor attributes every moment of every scheduler worker's loop to
// exactly one category, so the categories sum back to Workers x Wall — the
// books balance, and the consistency suite checks that they do. The cluster
// accumulates one StepStat per task (outside the executor, so the numbers
// survive recovery rebuilding executors) and the obs reporter turns the
// summaries into the per-task breakdown + straggler report.

// StepBreakdown is one executed iteration's time attribution on one task.
type StepBreakdown struct {
	// Wall is the scheduler phase of the iteration: workers launched to
	// workers drained.
	Wall time.Duration
	// Workers is the scheduler worker count; accounted worker time sums to
	// about Workers * Wall.
	Workers int
	// Compute is worker time inside synchronous non-communication kernels.
	Compute time.Duration
	// Comm is worker time occupied by communication operators: synchronous
	// edge kernels plus the dispatch portion of asynchronous sends.
	Comm time.Duration
	// CommInflight is the summed latency of asynchronous edge operations
	// (dispatch to completion callback). It overlaps other categories —
	// transfers fly while workers compute — so it is reported for edge
	// attribution but excluded from the balance equation.
	CommInflight time.Duration
	// PollWait is worker time spent polling not-ready receive operators:
	// Poll calls plus the pure-polling backoff sleeps.
	PollWait time.Duration
	// Idle is worker time blocked in the scheduler with nothing ready —
	// waiting on in-flight transfers or on other workers' outputs — plus
	// scheduler bookkeeping and the launch/drain tails where a worker slot
	// exists but its loop is not running yet (goroutine start queueing) or
	// already exited (waiting for the slowest sibling).
	Idle time.Duration
	// Ops is the number of operator executions completed.
	Ops int64
}

// Accounted returns the worker time attributed to a category; compare
// against Workers x Wall to check the books.
func (b StepBreakdown) Accounted() time.Duration {
	return b.Compute + b.Comm + b.PollWait + b.Idle
}

// add accumulates o's categories (not Wall/Workers) into b.
func (b *StepBreakdown) add(o StepBreakdown) {
	b.Compute += o.Compute
	b.Comm += o.Comm
	b.CommInflight += o.CommInflight
	b.PollWait += o.PollWait
	b.Idle += o.Idle
	b.Ops += o.Ops
}

// StepStat accumulates one task's step breakdowns across a run. Safe for
// concurrent Observe/Summary.
type StepStat struct {
	mu     sync.Mutex
	steps  int64
	totals StepBreakdown
	last   StepBreakdown
	wallNs Histogram
}

// Observe folds one completed step into the accumulator.
func (s *StepStat) Observe(b StepBreakdown) {
	s.wallNs.Record(b.Wall.Nanoseconds())
	s.mu.Lock()
	defer s.mu.Unlock()
	s.steps++
	s.totals.add(b)
	s.totals.Wall += b.Wall
	s.totals.Workers = b.Workers
	s.last = b
}

// Summary returns the accumulated view.
func (s *StepStat) Summary() StepSummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StepSummary{
		Steps:  s.steps,
		Totals: s.totals,
		Last:   s.last,
		WallNs: s.wallNs.Snapshot(),
	}
}

// StepSummary is one task's accumulated step-time report.
type StepSummary struct {
	// Steps is how many completed steps were observed.
	Steps int64
	// Totals sums every observed breakdown (Wall included).
	Totals StepBreakdown
	// Last is the most recent step's breakdown.
	Last StepBreakdown
	// WallNs is the distribution of per-step wall times in nanoseconds.
	WallNs HistogramSnapshot
}

// MeanWall returns the average step wall time.
func (s StepSummary) MeanWall() time.Duration {
	if s.Steps == 0 {
		return 0
	}
	return s.Totals.Wall / time.Duration(s.Steps)
}

// Stragglers returns the tasks whose mean step time exceeds factor times
// the median of all tasks' means (factor <= 1 selects 1.5), sorted. With
// fewer than three tasks no task is flagged — an outlier needs a quorum to
// be an outlier of.
func Stragglers(sums map[string]StepSummary, factor float64) []string {
	if factor <= 1 {
		factor = 1.5
	}
	if len(sums) < 3 {
		return nil
	}
	type tm struct {
		task string
		mean time.Duration
	}
	means := make([]tm, 0, len(sums))
	for task, s := range sums {
		if s.Steps == 0 {
			continue
		}
		means = append(means, tm{task, s.MeanWall()})
	}
	if len(means) < 3 {
		return nil
	}
	sort.Slice(means, func(i, j int) bool { return means[i].mean < means[j].mean })
	median := means[len(means)/2].mean
	cut := time.Duration(float64(median) * factor)
	var out []string
	for _, m := range means {
		if m.mean > cut {
			out = append(out, m.task)
		}
	}
	sort.Strings(out)
	return out
}
