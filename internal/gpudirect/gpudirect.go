// Package gpudirect emulates GPUDirect RDMA (§3.5): tensors whose payload
// lives in GPU device memory transferred without bouncing through host
// memory. The paper's design point is that polling belongs on the CPU —
// launching GPU kernels to poll a flag is too expensive — so GPU transfers
// always use the dynamic-allocation protocol with the metadata block (and
// its flag) in *host* memory while the payload travels directly between
// device memories with a one-sided RDMA read.
//
// Without GPUDirect the same transfer pays two extra copies: device→host at
// the sender and host→device at the receiver. Both paths are implemented so
// Table 3's comparison has a functional analogue; the copies are real
// memcpys through a host bounce buffer and are counted in metrics.
package gpudirect

import (
	"errors"
	"fmt"

	"repro/internal/alloc"
	"repro/internal/metrics"
	"repro/internal/rdma"
)

// ErrGPU wraps GPU-memory failures.
var ErrGPU = errors.New("gpudirect: error")

// Memory emulates one GPU's device memory, registered with the NIC when
// GPUDirect is enabled.
type Memory struct {
	dev       *rdma.Device
	mr        *rdma.MemRegion
	arena     *alloc.Arena
	gpuDirect bool
	host      *rdma.MemRegion // bounce buffer when gpuDirect is off
	metrics   *metrics.Comm
}

// NewMemory allocates an emulated GPU memory of the given size. With
// gpuDirect enabled the device memory itself is registered to the NIC
// ("allocate a GPU memory space in a mapped pinned mode ... and register to
// the RDMA NIC"); otherwise transfers stage through a host bounce region.
func NewMemory(dev *rdma.Device, size int, gpuDirect bool, m *metrics.Comm) (*Memory, error) {
	mr, err := dev.AllocateMemRegion(size)
	if err != nil {
		return nil, err
	}
	g := &Memory{
		dev: dev, mr: mr,
		arena:     alloc.NewArena(mr.Bytes()),
		gpuDirect: gpuDirect,
		metrics:   m,
	}
	if !gpuDirect {
		if g.host, err = dev.AllocateMemRegion(size); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Alloc carves a device-memory buffer.
func (g *Memory) Alloc(size int) (*alloc.Buffer, error) {
	return g.arena.Allocate(size)
}

// Free releases a device-memory buffer.
func (g *Memory) Free(b *alloc.Buffer) error { return g.arena.Free(b) }

// GPUDirect reports whether device memory is NIC-registered.
func (g *Memory) GPUDirect() bool { return g.gpuDirect }

// Sender pushes GPU-resident tensors over one edge using the dynamic
// protocol with host-resident metadata.
type Sender struct {
	gpu  *Memory
	dyn  *rdma.DynSender
	meta *rdma.MemRegion
}

// NewSender builds the sending end; metaSlot addresses the receiver's
// host-memory metadata block.
func NewSender(gpu *Memory, ch *rdma.Channel, metaSlot rdma.DynSlotDesc) (*Sender, error) {
	meta, err := gpu.dev.AllocateMemRegion(rdma.DynMetaSize)
	if err != nil {
		return nil, err
	}
	dyn, err := rdma.NewDynSender(ch, meta, 0, metaSlot)
	if err != nil {
		return nil, err
	}
	return &Sender{gpu: gpu, dyn: dyn, meta: meta}, nil
}

// ScratchDesc exposes the sender scratch block for the receiver's acks.
func (s *Sender) ScratchDesc() rdma.DynSlotDesc { return s.dyn.ScratchDesc() }

// Send transfers buf (device memory). With GPUDirect the payload region is
// the GPU memory itself; without it the payload is first copied into the
// host bounce buffer (the copy Table 3 eliminates).
func (s *Sender) Send(buf *alloc.Buffer, dims []uint64, cb func(error)) error {
	payloadMR := s.gpu.mr
	payloadOff := buf.Off
	if !s.gpu.gpuDirect {
		if len(buf.Data) > s.gpu.host.Size() {
			return fmt.Errorf("%w: payload %d exceeds host bounce buffer %d",
				ErrGPU, len(buf.Data), s.gpu.host.Size())
		}
		copy(s.gpu.host.Bytes(), buf.Data) // device -> host staging
		if s.gpu.metrics != nil {
			s.gpu.metrics.AddCopy(len(buf.Data))
		}
		payloadMR, payloadOff = s.gpu.host, 0
	} else if s.gpu.metrics != nil {
		s.gpu.metrics.AddZeroCopy()
	}
	if s.gpu.metrics != nil {
		s.gpu.metrics.AddSent(len(buf.Data) + rdma.DynMetaSize)
	}
	return s.dyn.Send(payloadMR, payloadOff, len(buf.Data), 1, dims, cb)
}

// PollReusable reports whether the previous send was acked.
func (s *Sender) PollReusable() bool { return s.dyn.PollReusable() }

// Receiver pulls GPU-destined tensors: the CPU polls host-memory metadata,
// then issues the one-sided read into device memory (GPUDirect) or into a
// host bounce region followed by a host→device copy.
type Receiver struct {
	gpu  *Memory
	recv *rdma.DynReceiver
	meta *rdma.MemRegion
}

// NewReceiver allocates the host-memory metadata slot for one edge whose
// sender is reached via ch.
func NewReceiver(gpu *Memory, ch *rdma.Channel) (*Receiver, error) {
	meta, err := gpu.dev.AllocateMemRegion(rdma.DynMetaSize)
	if err != nil {
		return nil, err
	}
	recv, err := rdma.NewDynReceiver(ch, meta, 0)
	if err != nil {
		return nil, err
	}
	return &Receiver{gpu: gpu, recv: recv, meta: meta}, nil
}

// Desc exposes the metadata slot address for the sender.
func (r *Receiver) Desc() rdma.DynSlotDesc { return r.recv.Desc() }

// Poll checks the host-resident metadata flag (CPU-side polling, §3.5).
func (r *Receiver) Poll() (rdma.DynMeta, bool) { return r.recv.Poll() }

// Fetch pulls the payload into a fresh device buffer and returns it via
// the callback. Without GPUDirect the read lands in the host bounce region
// and is copied into device memory.
func (r *Receiver) Fetch(meta rdma.DynMeta, senderScratch rdma.DynSlotDesc,
	cb func(*alloc.Buffer, error)) error {
	buf, err := r.gpu.Alloc(int(meta.PayloadSize))
	if err != nil {
		return err
	}
	if r.gpu.gpuDirect {
		return r.recv.Fetch(meta, senderScratch, r.gpu.mr, buf.Off, func(err error) {
			if r.gpu.metrics != nil && err == nil {
				r.gpu.metrics.AddRecv(int(meta.PayloadSize))
			}
			cb(buf, err)
		})
	}
	if int(meta.PayloadSize) > r.gpu.host.Size() {
		return fmt.Errorf("%w: payload %d exceeds host bounce buffer %d",
			ErrGPU, meta.PayloadSize, r.gpu.host.Size())
	}
	return r.recv.Fetch(meta, senderScratch, r.gpu.host, 0, func(err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		copy(buf.Data, r.gpu.host.Bytes()[:meta.PayloadSize]) // host -> device
		if r.gpu.metrics != nil {
			r.gpu.metrics.AddCopy(int(meta.PayloadSize))
			r.gpu.metrics.AddRecv(int(meta.PayloadSize))
		}
		cb(buf, nil)
	})
}
