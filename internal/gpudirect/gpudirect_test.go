package gpudirect

import (
	"testing"
	"time"

	"repro/internal/alloc"
	"repro/internal/metrics"
	"repro/internal/rdma"
)

func setup(t *testing.T, gdr bool) (sGPU *Memory, sM, rM *metrics.Comm,
	send *Sender, recv *Receiver) {
	t.Helper()
	f := rdma.NewFabric()
	a, err := rdma.CreateDevice(f, rdma.Config{Endpoint: "gpuA:1"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := rdma.CreateDevice(f, rdma.Config{Endpoint: "gpuB:1"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	sM, rM = &metrics.Comm{}, &metrics.Comm{}
	sGPU, err = NewMemory(a, 1<<16, gdr, sM)
	if err != nil {
		t.Fatal(err)
	}
	rGPU, err := NewMemory(b, 1<<16, gdr, rM)
	if err != nil {
		t.Fatal(err)
	}
	chBA, err := b.GetChannel("gpuA:1", 0)
	if err != nil {
		t.Fatal(err)
	}
	recv, err = NewReceiver(rGPU, chBA)
	if err != nil {
		t.Fatal(err)
	}
	chAB, err := a.GetChannel("gpuB:1", 0)
	if err != nil {
		t.Fatal(err)
	}
	send, err = NewSender(sGPU, chAB, recv.Desc())
	if err != nil {
		t.Fatal(err)
	}
	return
}

// runTransfer performs one send/poll/fetch round trip and returns the
// received device buffer's bytes.
func runTransfer(t *testing.T, send *Sender, recv *Receiver, sGPU *Memory, size int, fill byte) []byte {
	t.Helper()
	buf, err := sGPU.Alloc(size)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := sGPU.Free(buf); err != nil {
			t.Error(err)
		}
	}()
	for i := range buf.Data {
		buf.Data[i] = fill
	}
	done := make(chan error, 1)
	if err := send.Send(buf, []uint64{uint64(size)}, func(err error) { done <- err }); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	var meta rdma.DynMeta
	deadline := time.Now().Add(5 * time.Second)
	for {
		m, ok := recv.Poll()
		if ok {
			meta = m
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("metadata never arrived")
		}
		time.Sleep(50 * time.Microsecond)
	}
	if meta.PayloadSize != uint64(size) {
		t.Fatalf("meta payload = %d, want %d", meta.PayloadSize, size)
	}
	type res struct {
		buf *alloc.Buffer
		err error
	}
	ch := make(chan res, 1)
	if err := recv.Fetch(meta, send.ScratchDesc(), func(b *alloc.Buffer, err error) {
		ch <- res{buf: b, err: err}
	}); err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	return r.buf.Data
}

func TestGPUDirectTransfer(t *testing.T) {
	sGPU, sM, rM, send, recv := setup(t, true)
	got := runTransfer(t, send, recv, sGPU, 4096, 0xAB)
	for i, v := range got {
		if v != 0xAB {
			t.Fatalf("byte %d = %#x", i, v)
		}
	}
	if sM.Snapshot().MemCopies != 0 || rM.Snapshot().MemCopies != 0 {
		t.Error("GPUDirect path must not copy through host")
	}
	if sM.Snapshot().ZeroCopyOps != 1 {
		t.Error("zero-copy op not recorded")
	}
	if rM.Snapshot().BytesRecv != 4096 {
		t.Errorf("bytes received = %d", rM.Snapshot().BytesRecv)
	}
}

func TestStagedTransfer(t *testing.T) {
	sGPU, sM, rM, send, recv := setup(t, false)
	got := runTransfer(t, send, recv, sGPU, 4096, 0x5C)
	for i, v := range got {
		if v != 0x5C {
			t.Fatalf("byte %d = %#x", i, v)
		}
	}
	if sM.Snapshot().MemCopies != 1 {
		t.Errorf("sender staged copies = %d, want 1", sM.Snapshot().MemCopies)
	}
	if rM.Snapshot().MemCopies != 1 {
		t.Errorf("receiver staged copies = %d, want 1", rM.Snapshot().MemCopies)
	}
	if sM.Snapshot().ZeroCopyOps != 0 {
		t.Error("staged path must not report zero-copy")
	}
}

func TestMultipleIterationsWithAck(t *testing.T) {
	for _, gdr := range []bool{true, false} {
		sGPU, _, _, send, recv := setup(t, gdr)
		for iter := 0; iter < 5; iter++ {
			deadline := time.Now().Add(5 * time.Second)
			for !send.PollReusable() {
				if time.Now().After(deadline) {
					t.Fatal("ack never arrived")
				}
				time.Sleep(20 * time.Microsecond)
			}
			// Vary the size across iterations: the dynamic protocol's
			// defining property.
			size := 256 * (iter + 1)
			got := runTransfer(t, send, recv, sGPU, size, byte(iter+1))
			if len(got) != size {
				t.Fatalf("iter %d: got %d bytes", iter, len(got))
			}
			for i, v := range got {
				if v != byte(iter+1) {
					t.Fatalf("iter %d byte %d = %d", iter, i, v)
				}
			}
		}
	}
}

func TestMemoryBasics(t *testing.T) {
	f := rdma.NewFabric()
	a, err := rdma.CreateDevice(f, rdma.Config{Endpoint: "ga:1"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	g, err := NewMemory(a, 1<<12, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Alloc(1 << 13); err == nil {
		t.Error("oversized device alloc accepted")
	}
	if g.GPUDirect() {
		t.Error("GPUDirect should be off")
	}
	b, err := g.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Free(b); err != nil {
		t.Fatal(err)
	}
}
