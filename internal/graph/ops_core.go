package graph

import (
	"fmt"

	"repro/internal/tensor"
)

// Core plumbing operators: inputs, state, elementwise arithmetic, shape
// manipulation, and the SGD update. Neural-network math lives in ops_nn.go.

// Differentiable is implemented by operators that can contribute to
// reverse-mode differentiation: given the gradient flowing into the node's
// output, BuildGrad emits nodes computing the gradient for each input
// (nil entries mark inputs that need no gradient, e.g. integer labels).
type Differentiable interface {
	BuildGrad(gb *GradBuilder, node *Node, outGrad *Node) ([]*Node, error)
}

// mergeElementwise reconciles two signatures that must be equal shape.
func mergeElementwise(opName string, a, b Sig) (Sig, error) {
	if a.DType != b.DType {
		return Sig{}, fmt.Errorf("%s: dtype %v vs %v: %w", opName, a.DType, b.DType, ErrBadGraph)
	}
	if a.Shape.Rank() != b.Shape.Rank() {
		return Sig{}, fmt.Errorf("%s: rank %v vs %v: %w", opName, a.Shape, b.Shape, ErrBadGraph)
	}
	out := Sig{DType: a.DType}
	out.Shape = make(tensor.Shape, a.Shape.Rank())
	for i := range out.Shape {
		da, db := a.Shape[i], b.Shape[i]
		switch {
		case da >= 0 && db >= 0 && da != db:
			return Sig{}, fmt.Errorf("%s: dim %d is %d vs %d: %w", opName, i, da, db, ErrBadGraph)
		case da >= 0:
			out.Shape[i] = da
		default:
			out.Shape[i] = db
		}
	}
	// The merge is static exactly when every dimension is pinned: a static
	// operand forces the matching dims of a dynamic one.
	out.Static = true
	for _, d := range out.Shape {
		if d < 0 {
			out.Static = false
			break
		}
	}
	return out, nil
}

func wantInputs(opName string, sigs []Sig, n int) error {
	if len(sigs) != n {
		return fmt.Errorf("%s: %d inputs, want %d: %w", opName, len(sigs), n, ErrBadGraph)
	}
	return nil
}

// --- Placeholder ---

type placeholderOp struct{ sig Sig }

// Placeholder adds an input node fed per iteration via Context.Feeds.
func (b *Builder) Placeholder(name string, sig Sig) *Node {
	return b.AddNode(name, &placeholderOp{sig: sig})
}

func (op *placeholderOp) Name() string { return "Placeholder" }

func (op *placeholderOp) InferSig(in []Sig) (Sig, error) {
	if err := wantInputs("Placeholder", in, 0); err != nil {
		return Sig{}, err
	}
	return op.sig, nil
}

func (op *placeholderOp) Compute(ctx *Context) error {
	t, ok := ctx.Feeds[ctx.Node.Name()]
	if !ok {
		return fmt.Errorf("graph: no feed for placeholder %q", ctx.Node.Name())
	}
	ctx.Output = t
	return nil
}

// --- Variable ---

type variableOp struct{ sig Sig }

// Variable adds a persistent model-parameter node. Its storage lives in the
// executor's variable store; the paper's analysis classifies variables as
// statically placed tensors (§3.2).
func (b *Builder) Variable(name string, sig Sig) *Node {
	return b.AddNode(name, &variableOp{sig: sig})
}

// IsVariable reports whether a node is a Variable.
func IsVariable(n *Node) bool {
	_, ok := n.Op().(*variableOp)
	return ok
}

func (op *variableOp) Name() string { return "Variable" }

func (op *variableOp) InferSig(in []Sig) (Sig, error) {
	if err := wantInputs("Variable", in, 0); err != nil {
		return Sig{}, err
	}
	if !op.sig.Static {
		return Sig{}, fmt.Errorf("Variable: shape must be static: %w", ErrBadGraph)
	}
	return op.sig, nil
}

func (op *variableOp) Compute(ctx *Context) error {
	t, err := ctx.Vars.VarTensor(ctx.Node.Name())
	if err != nil {
		return err
	}
	ctx.Output = t
	return nil
}

// --- Const ---

type constOp struct{ value *tensor.Tensor }

// Const adds a node producing a fixed tensor. The tensor is shared across
// iterations; kernels must not mutate their inputs.
func (b *Builder) Const(name string, value *tensor.Tensor) *Node {
	return b.AddNode(name, &constOp{value: value})
}

func (op *constOp) Name() string { return "Const" }

func (op *constOp) InferSig(in []Sig) (Sig, error) {
	if err := wantInputs("Const", in, 0); err != nil {
		return Sig{}, err
	}
	return Sig{DType: op.value.DType(), Shape: op.value.Shape().Clone(), Static: true}, nil
}

func (op *constOp) Compute(ctx *Context) error {
	ctx.Output = op.value
	return nil
}

// --- Identity ---

type identityOp struct{}

// Identity adds a passthrough node (useful as a named fetch point).
func (b *Builder) Identity(name string, x *Node) *Node {
	return b.AddNode(name, identityOp{}, x)
}

func (identityOp) Name() string { return "Identity" }

func (identityOp) InferSig(in []Sig) (Sig, error) {
	if err := wantInputs("Identity", in, 1); err != nil {
		return Sig{}, err
	}
	return in[0], nil
}

func (identityOp) Compute(ctx *Context) error {
	ctx.Output = ctx.Inputs[0]
	return nil
}

func (identityOp) BuildGrad(gb *GradBuilder, node *Node, outGrad *Node) ([]*Node, error) {
	return []*Node{outGrad}, nil
}

// --- Add / Sub / Mul ---

type addOp struct{}

// Add adds an elementwise-sum node.
func (b *Builder) Add(name string, x, y *Node) *Node { return b.AddNode(name, addOp{}, x, y) }

func (addOp) Name() string { return "Add" }

func (addOp) InferSig(in []Sig) (Sig, error) {
	if err := wantInputs("Add", in, 2); err != nil {
		return Sig{}, err
	}
	return mergeElementwise("Add", in[0], in[1])
}

func (addOp) Compute(ctx *Context) error {
	out, err := ctx.Alloc(ctx.Inputs[0].DType(), ctx.Inputs[0].Shape())
	if err != nil {
		return err
	}
	if err := tensor.Add(out, ctx.Inputs[0], ctx.Inputs[1]); err != nil {
		return err
	}
	ctx.Output = out
	return nil
}

func (addOp) BuildGrad(gb *GradBuilder, node *Node, outGrad *Node) ([]*Node, error) {
	return []*Node{outGrad, outGrad}, nil
}

type subOp struct{}

// Sub adds an elementwise-difference node.
func (b *Builder) Sub(name string, x, y *Node) *Node { return b.AddNode(name, subOp{}, x, y) }

func (subOp) Name() string { return "Sub" }

func (subOp) InferSig(in []Sig) (Sig, error) {
	if err := wantInputs("Sub", in, 2); err != nil {
		return Sig{}, err
	}
	return mergeElementwise("Sub", in[0], in[1])
}

func (subOp) Compute(ctx *Context) error {
	out, err := ctx.Alloc(ctx.Inputs[0].DType(), ctx.Inputs[0].Shape())
	if err != nil {
		return err
	}
	if err := tensor.Sub(out, ctx.Inputs[0], ctx.Inputs[1]); err != nil {
		return err
	}
	ctx.Output = out
	return nil
}

func (subOp) BuildGrad(gb *GradBuilder, node *Node, outGrad *Node) ([]*Node, error) {
	neg := gb.Add("neg", &scaleOp{Alpha: -1}, outGrad)
	return []*Node{outGrad, neg}, nil
}

type mulOp struct{}

// Mul adds an elementwise (Hadamard) product node.
func (b *Builder) Mul(name string, x, y *Node) *Node { return b.AddNode(name, mulOp{}, x, y) }

func (mulOp) Name() string { return "Mul" }

func (mulOp) InferSig(in []Sig) (Sig, error) {
	if err := wantInputs("Mul", in, 2); err != nil {
		return Sig{}, err
	}
	return mergeElementwise("Mul", in[0], in[1])
}

func (mulOp) Compute(ctx *Context) error {
	out, err := ctx.Alloc(ctx.Inputs[0].DType(), ctx.Inputs[0].Shape())
	if err != nil {
		return err
	}
	if err := tensor.Mul(out, ctx.Inputs[0], ctx.Inputs[1]); err != nil {
		return err
	}
	ctx.Output = out
	return nil
}

func (mulOp) BuildGrad(gb *GradBuilder, node *Node, outGrad *Node) ([]*Node, error) {
	dx := gb.Add("mulgrad_x", mulOp{}, outGrad, node.Inputs()[1])
	dy := gb.Add("mulgrad_y", mulOp{}, outGrad, node.Inputs()[0])
	return []*Node{dx, dy}, nil
}

// --- Scale ---

type scaleOp struct{ Alpha float32 }

// Scale adds a node multiplying its input by a constant.
func (b *Builder) Scale(name string, x *Node, alpha float32) *Node {
	return b.AddNode(name, &scaleOp{Alpha: alpha}, x)
}

func (op *scaleOp) Name() string { return "Scale" }

func (op *scaleOp) InferSig(in []Sig) (Sig, error) {
	if err := wantInputs("Scale", in, 1); err != nil {
		return Sig{}, err
	}
	return in[0], nil
}

func (op *scaleOp) Compute(ctx *Context) error {
	out, err := ctx.Alloc(ctx.Inputs[0].DType(), ctx.Inputs[0].Shape())
	if err != nil {
		return err
	}
	if err := out.CopyFrom(ctx.Inputs[0]); err != nil {
		return err
	}
	tensor.Scale(op.Alpha, out)
	ctx.Output = out
	return nil
}

func (op *scaleOp) BuildGrad(gb *GradBuilder, node *Node, outGrad *Node) ([]*Node, error) {
	return []*Node{gb.Add("scalegrad", &scaleOp{Alpha: op.Alpha}, outGrad)}, nil
}

// --- Reshape ---

type reshapeOp struct{ shape tensor.Shape }

// Reshape adds a node viewing its input with a new static shape.
func (b *Builder) Reshape(name string, x *Node, dims ...int) *Node {
	return b.AddNode(name, &reshapeOp{shape: tensor.Shape(dims).Clone()}, x)
}

func (op *reshapeOp) Name() string { return "Reshape" }

func (op *reshapeOp) InferSig(in []Sig) (Sig, error) {
	if err := wantInputs("Reshape", in, 1); err != nil {
		return Sig{}, err
	}
	if !in[0].Static {
		return Sig{}, fmt.Errorf("Reshape: dynamic input unsupported: %w", ErrBadGraph)
	}
	if op.shape.NumElements() != in[0].Shape.NumElements() {
		return Sig{}, fmt.Errorf("Reshape: %v to %v: %w", in[0].Shape, op.shape, ErrBadGraph)
	}
	return Sig{DType: in[0].DType, Shape: op.shape.Clone(), Static: true}, nil
}

func (op *reshapeOp) Compute(ctx *Context) error {
	out, err := ctx.Inputs[0].Reshape(op.shape...)
	if err != nil {
		return err
	}
	ctx.Output = out
	return nil
}

func (op *reshapeOp) BuildGrad(gb *GradBuilder, node *Node, outGrad *Node) ([]*Node, error) {
	back := gb.Add("reshapegrad", &reshapeOp{shape: node.Inputs()[0].Sig().Shape.Clone()}, outGrad)
	return []*Node{back}, nil
}

// --- ReduceMax ---

type reduceMaxOp struct{}

// ReduceMax adds a node reducing its input to a scalar maximum; the paper's
// micro-benchmark uses it as the lightweight consumer of received tensors.
func (b *Builder) ReduceMax(name string, x *Node) *Node {
	return b.AddNode(name, reduceMaxOp{}, x)
}

func (reduceMaxOp) Name() string { return "ReduceMax" }

func (reduceMaxOp) InferSig(in []Sig) (Sig, error) {
	if err := wantInputs("ReduceMax", in, 1); err != nil {
		return Sig{}, err
	}
	return Static(tensor.Float32), nil
}

func (reduceMaxOp) Compute(ctx *Context) error {
	out, err := ctx.Alloc(tensor.Float32, nil)
	if err != nil {
		return err
	}
	out.Float32s()[0] = tensor.ReduceMax(ctx.Inputs[0])
	ctx.Output = out
	return nil
}

// --- ApplySGD ---

type applySGDOp struct {
	varName string
	lr      float32
}

// ApplySGD adds a node performing the SGD update var -= lr*grad in place on
// the variable's persistent storage. Its output is the updated variable
// tensor, so downstream sends (weights back to workers) chain off it.
// Because the update mutates storage other nodes read, the node takes
// control dependencies on every existing reader of the variable
// (read-before-update ordering).
func (b *Builder) ApplySGD(name string, variable *Node, grad *Node, lr float32) *Node {
	if b.Err() == nil && variable != nil && !IsVariable(variable) {
		b.fail(fmt.Errorf("ApplySGD: %q is not a Variable: %w", variable.Name(), ErrBadGraph))
		return nil
	}
	if variable == nil {
		return b.fail(fmt.Errorf("ApplySGD: nil variable: %w", ErrBadGraph))
	}
	n := b.AddNode(name, &applySGDOp{varName: variable.Name(), lr: lr}, grad)
	b.orderAfterReaders(n, variable)
	return n
}

// orderAfterReaders adds control edges so update runs after every current
// reader of the variable in the same task partition — including gradient
// nodes whose outputs are otherwise unused (reverse-mode differentiation
// legitimately produces some), which would otherwise race the in-place
// mutation.
func (b *Builder) orderAfterReaders(update, variable *Node) {
	if update == nil || variable == nil || b.err != nil {
		return
	}
	for _, n := range b.g.nodes {
		if n == update || n.Task() != update.Task() {
			continue
		}
		for _, in := range n.inputs {
			if in == variable {
				b.controlDepWeak(update, n)
				break
			}
		}
	}
}

func (op *applySGDOp) Name() string { return "ApplySGD" }

// VarName returns the updated variable's name (used by the PS runtime).
func (op *applySGDOp) VarName() string { return op.varName }

// ApplySGDVar reports the variable an ApplySGD op updates; ok is false for
// other operators. The distributed runtime uses it to order weight sends
// before in-place updates.
func ApplySGDVar(op Op) (string, bool) {
	a, ok := op.(*applySGDOp)
	if !ok {
		return "", false
	}
	return a.varName, true
}

// UpdatedVariable reports the variable an in-place optimizer op (ApplySGD,
// ApplyMomentum) mutates; ok is false for every other operator.
func UpdatedVariable(op Op) (string, bool) {
	switch a := op.(type) {
	case *applySGDOp:
		return a.varName, true
	case *applyMomentumOp:
		return a.varName, true
	case *applyAdamOp:
		return a.varName, true
	default:
		return "", false
	}
}

func (op *applySGDOp) InferSig(in []Sig) (Sig, error) {
	if err := wantInputs("ApplySGD", in, 1); err != nil {
		return Sig{}, err
	}
	return in[0], nil
}

func (op *applySGDOp) Compute(ctx *Context) error {
	v, err := ctx.Vars.VarTensor(op.varName)
	if err != nil {
		return err
	}
	if err := tensor.Axpy(-op.lr, ctx.Inputs[0], v); err != nil {
		return err
	}
	ctx.Output = v
	return nil
}

// --- ApplyMomentum ---

type applyMomentumOp struct {
	varName  string
	lr       float32
	momentum float32
}

// ApplyMomentum adds a node performing the classical momentum update
//
//	v = momentum*v + grad;  var -= lr*v
//
// in place on the variable's persistent storage. The velocity slot is a
// hidden variable named "<var>/velocity", created lazily on first use (so
// checkpoints taken before the first step simply omit it).
func (b *Builder) ApplyMomentum(name string, variable *Node, grad *Node, lr, momentum float32) *Node {
	if variable == nil {
		return b.fail(fmt.Errorf("ApplyMomentum: nil variable: %w", ErrBadGraph))
	}
	if b.Err() == nil && !IsVariable(variable) {
		b.fail(fmt.Errorf("ApplyMomentum: %q is not a Variable: %w", variable.Name(), ErrBadGraph))
		return nil
	}
	n := b.AddNode(name, &applyMomentumOp{varName: variable.Name(), lr: lr, momentum: momentum}, grad)
	b.orderAfterReaders(n, variable)
	return n
}

func (op *applyMomentumOp) Name() string { return "ApplyMomentum" }

func (op *applyMomentumOp) InferSig(in []Sig) (Sig, error) {
	if err := wantInputs("ApplyMomentum", in, 1); err != nil {
		return Sig{}, err
	}
	return in[0], nil
}

func (op *applyMomentumOp) Compute(ctx *Context) error {
	v, err := ctx.Vars.VarTensor(op.varName)
	if err != nil {
		return err
	}
	slotName := op.varName + "/velocity"
	vel, err := ctx.Vars.VarTensor(slotName)
	if err != nil {
		creator, ok := ctx.Vars.(interface {
			Create(string, *tensor.Tensor) error
		})
		if !ok {
			return fmt.Errorf("graph: variable store cannot create momentum slot %q", slotName)
		}
		vel = tensor.New(v.DType(), v.Shape()...)
		if err := creator.Create(slotName, vel); err != nil {
			return err
		}
	}
	// v = momentum*v + grad
	tensor.Scale(op.momentum, vel)
	if err := tensor.Axpy(1, ctx.Inputs[0], vel); err != nil {
		return err
	}
	// var -= lr*v
	if err := tensor.Axpy(-op.lr, vel, v); err != nil {
		return err
	}
	ctx.Output = v
	return nil
}

// --- NoOp / Group ---

type noOp struct{}

// Group adds a synchronization node depending on all deps via control
// edges; its output is an empty scalar. Use it as the per-iteration sink.
func (b *Builder) Group(name string, deps ...*Node) *Node {
	n := b.AddNode(name, noOp{})
	for _, d := range deps {
		b.ControlDep(n, d)
	}
	return n
}

func (noOp) Name() string { return "NoOp" }

func (noOp) InferSig(in []Sig) (Sig, error) {
	if err := wantInputs("NoOp", in, 0); err != nil {
		return Sig{}, err
	}
	return Static(tensor.Float32), nil
}

func (noOp) Compute(ctx *Context) error {
	out, err := ctx.Alloc(tensor.Float32, nil)
	if err != nil {
		return err
	}
	ctx.Output = out
	return nil
}
