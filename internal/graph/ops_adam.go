package graph

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// applyAdamOp performs the Adam update in place:
//
//	m = β₁m + (1-β₁)g;  v = β₂v + (1-β₂)g²
//	var -= lr · m̂ / (√v̂ + ε)   with bias-corrected m̂, v̂
//
// The moment slots ("<var>/adam_m", "<var>/adam_v") and the step counter
// ("<var>/adam_t") are hidden variables created lazily on first use.
type applyAdamOp struct {
	varName              string
	lr, beta1, beta2, ep float32
}

// ApplyAdam adds an in-place Adam update node for the variable. Like the
// other optimizer ops it orders itself after every current reader of the
// variable.
func (b *Builder) ApplyAdam(name string, variable *Node, grad *Node, lr float32) *Node {
	if variable == nil {
		return b.fail(fmt.Errorf("ApplyAdam: nil variable: %w", ErrBadGraph))
	}
	if b.Err() == nil && !IsVariable(variable) {
		b.fail(fmt.Errorf("ApplyAdam: %q is not a Variable: %w", variable.Name(), ErrBadGraph))
		return nil
	}
	op := &applyAdamOp{varName: variable.Name(), lr: lr, beta1: 0.9, beta2: 0.999, ep: 1e-8}
	n := b.AddNode(name, op, grad)
	b.orderAfterReaders(n, variable)
	return n
}

func (op *applyAdamOp) Name() string { return "ApplyAdam" }

func (op *applyAdamOp) InferSig(in []Sig) (Sig, error) {
	if err := wantInputs("ApplyAdam", in, 1); err != nil {
		return Sig{}, err
	}
	return in[0], nil
}

// varCreator is the optional slot-creating capability of a variable store.
type varCreator interface {
	Create(string, *tensor.Tensor) error
}

func (op *applyAdamOp) slot(ctx *Context, suffix string, like *tensor.Tensor) (*tensor.Tensor, error) {
	name := op.varName + suffix
	t, err := ctx.Vars.VarTensor(name)
	if err == nil {
		return t, nil
	}
	creator, ok := ctx.Vars.(varCreator)
	if !ok {
		return nil, fmt.Errorf("graph: variable store cannot create Adam slot %q", name)
	}
	t = tensor.New(like.DType(), like.Shape()...)
	if err := creator.Create(name, t); err != nil {
		return nil, err
	}
	return t, nil
}

func (op *applyAdamOp) Compute(ctx *Context) error {
	v, err := ctx.Vars.VarTensor(op.varName)
	if err != nil {
		return err
	}
	g := ctx.Inputs[0]
	if g.NumElements() != v.NumElements() {
		return fmt.Errorf("graph: adam gradient %v for variable %v: %w",
			g.Shape(), v.Shape(), ErrBadGraph)
	}
	m, err := op.slot(ctx, "/adam_m", v)
	if err != nil {
		return err
	}
	vv, err := op.slot(ctx, "/adam_v", v)
	if err != nil {
		return err
	}
	step, err := op.slot(ctx, "/adam_t", tensor.New(tensor.Float32))
	if err != nil {
		return err
	}
	step.Float32s()[0]++
	t := float64(step.Float32s()[0])
	corr1 := float32(1 - math.Pow(float64(op.beta1), t))
	corr2 := float32(1 - math.Pow(float64(op.beta2), t))

	vw, gw, mw, vvw := v.Float32s(), g.Float32s(), m.Float32s(), vv.Float32s()
	for i := range vw {
		mw[i] = op.beta1*mw[i] + (1-op.beta1)*gw[i]
		vvw[i] = op.beta2*vvw[i] + (1-op.beta2)*gw[i]*gw[i]
		mhat := mw[i] / corr1
		vhat := vvw[i] / corr2
		vw[i] -= op.lr * mhat / (float32(math.Sqrt(float64(vhat))) + op.ep)
	}
	ctx.Output = v
	return nil
}
