package graph

import (
	"testing"

	"repro/internal/tensor"
)

// TestOptimizerOrderedAfterReaders is the regression test for the in-place
// update race: reverse-mode differentiation can emit gradient nodes whose
// outputs are never consumed (e.g. the gradient toward a constant initial
// RNN state); they still read the variable, so the optimizer node must be
// control-ordered after every reader.
func TestOptimizerOrderedAfterReaders(t *testing.T) {
	b := NewBuilder()
	w := b.Variable("w", Static(tensor.Float32, 4, 4))
	x := b.Placeholder("x", Static(tensor.Float32, 2, 4))
	// Two readers: one on the loss path, one dangling.
	used := b.MatMul("used", x, w)
	dangling := b.MatMul("dangling", x, w)
	_ = dangling
	labels := b.Placeholder("labels", Static(tensor.Int32, 2))
	loss := b.SoftmaxXent("loss", used, labels)
	grads, err := Gradients(b, loss, []*Node{w})
	if err != nil {
		t.Fatal(err)
	}
	apply := b.ApplySGD("apply", w, grads[w], 0.1)
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}

	deps := make(map[string]bool)
	for _, c := range apply.Controls() {
		deps[c.Name()] = true
	}
	for _, reader := range []string{"used", "dangling"} {
		if !deps[reader] {
			t.Errorf("apply lacks control dep on reader %q (got %v)", reader, deps)
		}
	}
}

// TestOptimizerOrderingSkipsOtherTasks: cross-server readers are rewired to
// Recv nodes by the partitioner, so the optimizer must not take cross-task
// control deps (the partitioner rejects them).
func TestOptimizerOrderingSkipsOtherTasks(t *testing.T) {
	b := NewBuilder()
	b.OnTask("ps0")
	w := b.Variable("w", Static(tensor.Float32, 2))
	b.OnTask("worker0")
	reader := b.Identity("reader", w)
	_ = reader
	b.OnTask("ps0")
	g := b.Placeholder("g", Static(tensor.Float32, 2))
	apply := b.ApplySGD("apply", w, g, 0.1)
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
	for _, c := range apply.Controls() {
		if c.Task() != "ps0" {
			t.Errorf("cross-task control dep on %s@%s", c.Name(), c.Task())
		}
	}
}
