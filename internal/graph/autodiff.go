package graph

import (
	"fmt"

	"repro/internal/tensor"
)

// Reverse-mode automatic differentiation: Gradients walks the forward graph
// backwards from a scalar loss and emits gradient nodes for the requested
// targets. This builds the GenGrad sub-graphs of the paper's Figure 3.

// GradBuilder names and appends gradient nodes on behalf of operator
// BuildGrad implementations.
type GradBuilder struct {
	b       *Builder
	counter int
}

// Add appends a gradient node with a unique generated name on the current
// builder task.
func (gb *GradBuilder) Add(hint string, op Op, inputs ...*Node) *Node {
	gb.counter++
	name := fmt.Sprintf("grad%d/%s", gb.counter, hint)
	return gb.b.AddNode(name, op, inputs...)
}

// Builder exposes the underlying graph builder for grad rules needing
// constants.
func (gb *GradBuilder) Builder() *Builder { return gb.b }

// Gradients extends the graph with back-propagation nodes computing
// d(loss)/d(target) for every target, returning the mapping. The loss node
// must be a static scalar. Gradients may be called once per builder.
func Gradients(b *Builder, loss *Node, targets []*Node) (map[*Node]*Node, error) {
	if b.Err() != nil {
		return nil, b.Err()
	}
	if loss == nil {
		return nil, fmt.Errorf("graph: nil loss: %w", ErrBadGraph)
	}
	if sig := loss.Sig(); !sig.Static || sig.Shape.NumElements() != 1 {
		return nil, fmt.Errorf("graph: loss %s must be a static scalar: %w", loss, ErrBadGraph)
	}

	// needsGrad: nodes on a path from some target to the loss.
	reachesLoss := backwardReachable(loss)
	needsGrad := make(map[*Node]bool)
	for _, t := range targets {
		if t == nil {
			return nil, fmt.Errorf("graph: nil gradient target: %w", ErrBadGraph)
		}
		if !reachesLoss[t] {
			return nil, fmt.Errorf("graph: target %q does not reach the loss: %w", t.Name(), ErrBadGraph)
		}
	}
	markForward(targets, reachesLoss, needsGrad)

	// Seed the name counter past the current node count so repeated
	// Gradients calls on one builder (one per worker replica) never
	// collide.
	gb := &GradBuilder{b: b, counter: len(b.g.nodes)}

	// Seed: d(loss)/d(loss) = 1, placed with the loss.
	seedTask := b.Task()
	b.OnTask(loss.Task())
	one := tensor.New(tensor.Float32)
	one.Fill(1)
	seed := gb.Add("ones_like_"+loss.Name(), &constOp{value: one})
	b.OnTask(seedTask)

	// Accumulated gradients per node.
	grads := map[*Node]*Node{loss: seed}

	// Walk nodes in reverse topological (= reverse insertion) order. Only
	// nodes that both reach the loss and are reachable from a target carry
	// gradient. Each node's gradient sub-graph is placed on the node's own
	// task, mirroring the forward placement — this is what makes
	// model-parallel partitions work: activations flow forward across the
	// cut and their gradients flow back across it.
	prevTask := b.Task()
	defer b.OnTask(prevTask)
	nodes := b.g.nodes
	for i := len(nodes) - 1; i >= 0; i-- {
		n := nodes[i]
		g, ok := grads[n]
		if !ok || !needsGrad[n] {
			continue
		}
		if isTarget(n, targets) {
			continue // targets are leaves of the backward walk
		}
		diff, ok := n.op.(Differentiable)
		if !ok {
			return nil, fmt.Errorf("graph: %s (%s): %w", n.name, n.op.Name(), ErrNoGrad)
		}
		b.OnTask(n.task)
		inGrads, err := diff.BuildGrad(gb, n, g)
		if err != nil {
			return nil, fmt.Errorf("graph: grad of %s: %w", n.name, err)
		}
		if len(inGrads) != len(n.inputs) {
			return nil, fmt.Errorf("graph: grad of %s returned %d gradients for %d inputs: %w",
				n.name, len(inGrads), len(n.inputs), ErrBadGraph)
		}
		for j, ig := range inGrads {
			if ig == nil {
				continue
			}
			in := n.inputs[j]
			if !needsGrad[in] {
				continue
			}
			if prev, ok := grads[in]; ok {
				// Accumulate where the new partial gradient was produced,
				// keeping replica-internal fan-out (e.g. shared RNN
				// weights) on the worker instead of manufacturing one
				// cross-server edge per partial.
				b.OnTask(ig.Task())
				grads[in] = gb.Add("accum_"+in.Name(), addOp{}, prev, ig)
			} else {
				grads[in] = ig
			}
		}
	}
	if b.Err() != nil {
		return nil, b.Err()
	}

	out := make(map[*Node]*Node, len(targets))
	for _, t := range targets {
		g, ok := grads[t]
		if !ok {
			return nil, fmt.Errorf("graph: no gradient reached target %q: %w", t.Name(), ErrBadGraph)
		}
		out[t] = g
	}
	return out, nil
}

func isTarget(n *Node, targets []*Node) bool {
	for _, t := range targets {
		if t == n {
			return true
		}
	}
	return false
}

// backwardReachable returns the set of nodes the loss depends on
// (transitively, data edges only), including the loss.
func backwardReachable(loss *Node) map[*Node]bool {
	seen := make(map[*Node]bool)
	var visit func(n *Node)
	visit = func(n *Node) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, in := range n.inputs {
			visit(in)
		}
	}
	visit(loss)
	return seen
}

// markForward marks every node reachable from a target that also reaches
// the loss: exactly the nodes gradient must flow through.
func markForward(targets []*Node, reachesLoss, out map[*Node]bool) {
	// Build a consumer index over nodes that reach the loss.
	consumers := make(map[*Node][]*Node)
	for n := range reachesLoss {
		for _, in := range n.inputs {
			consumers[in] = append(consumers[in], n)
		}
	}
	var visit func(n *Node)
	visit = func(n *Node) {
		if out[n] || !reachesLoss[n] {
			return
		}
		out[n] = true
		for _, c := range consumers[n] {
			visit(c)
		}
	}
	for _, t := range targets {
		visit(t)
	}
}
