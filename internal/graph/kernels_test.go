package graph

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"repro/internal/tensor"
)

// A minimal sequential evaluator: builder order is topological, so walking
// the node list and invoking each kernel directly exercises every Compute
// path without the concurrent scheduler.

type seqVars map[string]*tensor.Tensor

func (v seqVars) VarTensor(name string) (*tensor.Tensor, error) {
	t, ok := v[name]
	if !ok {
		return nil, fmt.Errorf("seqVars: %q missing", name)
	}
	return t, nil
}

func (v seqVars) Create(name string, t *tensor.Tensor) error {
	if _, ok := v[name]; ok {
		return fmt.Errorf("seqVars: %q exists", name)
	}
	v[name] = t
	return nil
}

func evalSeq(t *testing.T, g *Graph, vars seqVars, feeds map[string]*tensor.Tensor) map[string]*tensor.Tensor {
	t.Helper()
	out := make(map[string]*tensor.Tensor)
	values := make([]*tensor.Tensor, len(g.Nodes()))
	for _, n := range g.Nodes() {
		ctx := &Context{
			Node:  n,
			Feeds: feeds,
			Vars:  vars,
			Alloc: func(dt tensor.DType, shape tensor.Shape) (*tensor.Tensor, error) {
				return tensor.New(dt, shape...), nil
			},
		}
		for _, in := range n.Inputs() {
			ctx.Inputs = append(ctx.Inputs, values[in.ID()])
		}
		k, ok := n.Op().(Kernel)
		if !ok {
			t.Fatalf("%s has no synchronous kernel", n.Name())
		}
		if err := k.Compute(ctx); err != nil {
			t.Fatalf("%s: %v", n.Name(), err)
		}
		values[n.ID()] = ctx.Output
		out[n.Name()] = ctx.Output
	}
	return out
}

func scalarConst(t *testing.T, b *Builder, name string, vals ...float32) *Node {
	t.Helper()
	c, err := tensor.FromFloat32(tensor.Shape{len(vals)}, vals)
	if err != nil {
		t.Fatal(err)
	}
	return b.Const(name, c)
}

func TestKernelsArithmetic(t *testing.T) {
	b := NewBuilder()
	x := scalarConst(t, b, "x", 1, 2, 3, 4)
	y := scalarConst(t, b, "y", 10, 20, 30, 40)
	b.Add("add", x, y)
	b.Sub("sub", y, x)
	b.Mul("mul", x, y)
	b.Scale("scale", x, -2)
	b.Identity("id", x)
	b.ReduceMax("max", y)
	b.Group("grp")
	b.Reshape("rs", x, 2, 2)
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	out := evalSeq(t, g, seqVars{}, nil)
	if out["add"].Float32s()[2] != 33 {
		t.Errorf("add = %v", out["add"].Float32s())
	}
	if out["sub"].Float32s()[0] != 9 {
		t.Errorf("sub = %v", out["sub"].Float32s())
	}
	if out["mul"].Float32s()[3] != 160 {
		t.Errorf("mul = %v", out["mul"].Float32s())
	}
	if out["scale"].Float32s()[1] != -4 {
		t.Errorf("scale = %v", out["scale"].Float32s())
	}
	if out["max"].Float32s()[0] != 40 {
		t.Errorf("max = %v", out["max"].Float32s())
	}
	if !out["rs"].Shape().Equal(tensor.Shape{2, 2}) {
		t.Errorf("reshape shape = %v", out["rs"].Shape())
	}
	if out["id"] != out["x"] {
		t.Error("identity should pass the tensor through")
	}
}

func TestKernelsNN(t *testing.T) {
	b := NewBuilder()
	x := scalarConst(t, b, "xf", 0.5, -0.5)
	xm := b.Reshape("x", x, 1, 2)
	w, err := tensor.FromFloat32(tensor.Shape{2, 2}, []float32{1, 0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	wn := b.Const("w", w)
	mm := b.MatMul("mm", xm, wn)
	bias := scalarConst(t, b, "bias", 1, 1)
	ba := b.BiasAdd("ba", mm, bias)
	b.Sigmoid("sig", ba)
	b.ReLU("relu", ba)
	b.Tanh("tanh", ba)
	b.Softmax("softmax", ba)
	labels := tensor.New(tensor.Int32, 1)
	ln := b.Const("labels", labels)
	b.SoftmaxXent("loss", ba, ln)
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	out := evalSeq(t, g, seqVars{}, nil)
	if out["ba"].Float32s()[0] != 1.5 || out["ba"].Float32s()[1] != 0.5 {
		t.Errorf("biasadd = %v", out["ba"].Float32s())
	}
	if out["relu"].Float32s()[1] != 0.5 {
		t.Errorf("relu = %v", out["relu"].Float32s())
	}
	p := out["softmax"].Float32s()
	if math.Abs(float64(p[0]+p[1]-1)) > 1e-5 {
		t.Errorf("softmax = %v", p)
	}
	if out["loss"].NumElements() != 1 {
		t.Error("loss not scalar")
	}
}

func TestKernelsConvAndPool(t *testing.T) {
	b := NewBuilder()
	img := tensor.New(tensor.Float32, 1, 4, 4, 1)
	for i := range img.Float32s() {
		img.Float32s()[i] = float32(i)
	}
	in := b.Const("in", img)
	k := tensor.New(tensor.Float32, 1, 1, 1, 1)
	k.Float32s()[0] = 2
	kn := b.Const("k", k)
	b.Conv2D("conv", in, kn, 1, 0)
	b.MaxPool("pool", in)
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	out := evalSeq(t, g, seqVars{}, nil)
	if out["conv"].Float32s()[5] != 10 {
		t.Errorf("conv = %v", out["conv"].Float32s()[5])
	}
	if out["pool"].Float32s()[0] != 5 {
		t.Errorf("pool = %v", out["pool"].Float32s())
	}
}

func TestKernelsGradOpsViaAutodiff(t *testing.T) {
	// Building gradients for a conv+pool+activation pipeline and running
	// it sequentially exercises every backward kernel's Compute.
	b := NewBuilder()
	x := b.Placeholder("x", Static(tensor.Float32, 1, 4, 4, 1))
	w := b.Variable("w", Static(tensor.Float32, 2, 3, 3, 1))
	conv := b.ReLU("relu", b.Conv2D("conv", x, w, 1, 1))
	pool := b.MaxPool("pool", conv)
	rs := b.Reshape("flatten", pool, 1, 2*2*2)
	w2 := b.Variable("w2", Static(tensor.Float32, 8, 3))
	labels := b.Placeholder("labels", Static(tensor.Int32, 1))
	loss := b.SoftmaxXent("loss", b.MatMul("mm", rs, w2), labels)
	grads, err := Gradients(b, loss, []*Node{w, w2})
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	vars := seqVars{}
	wt := tensor.New(tensor.Float32, 2, 3, 3, 1)
	wt.Fill(0.1)
	w2t := tensor.New(tensor.Float32, 8, 3)
	w2t.Fill(0.1)
	vars["w"] = wt
	vars["w2"] = w2t
	xt := tensor.New(tensor.Float32, 1, 4, 4, 1)
	xt.Fill(1)
	lt := tensor.New(tensor.Int32, 1)
	out := evalSeq(t, g, vars, map[string]*tensor.Tensor{"x": xt, "labels": lt})
	for _, v := range []*Node{w, w2} {
		gt := out[grads[v].Name()]
		if gt == nil || !gt.Shape().Equal(v.Sig().Shape) {
			t.Errorf("gradient of %s missing or misshapen", v.Name())
		}
		if tensor.L2Norm(gt) == 0 {
			t.Errorf("gradient of %s is zero", v.Name())
		}
	}
}

func TestPlaceholderMissingFeed(t *testing.T) {
	b := NewBuilder()
	x := b.Placeholder("x", Static(tensor.Float32, 1))
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	n := g.Nodes()[0]
	ctx := &Context{Node: n, Feeds: nil}
	if err := x.Op().(Kernel).Compute(ctx); err == nil {
		t.Error("missing feed accepted")
	}
}

func TestInferSigErrorBranches(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *Builder, v2, v3, m *Node)
	}{
		{"add-rank", func(b *Builder, v2, v3, m *Node) { b.Add("e", v2, v3) }},
		{"matmul-rank", func(b *Builder, v2, v3, m *Node) { b.MatMul("e", v2, v3) }},
		{"bias-rank", func(b *Builder, v2, v3, m *Node) { b.BiasAdd("e", m, m) }},
		{"pool-rank", func(b *Builder, v2, v3, m *Node) { b.MaxPool("e", v2) }},
		{"conv-rank", func(b *Builder, v2, v3, m *Node) { b.Conv2D("e", v2, v3, 1, 0) }},
		{"xent-labels", func(b *Builder, v2, v3, m *Node) { b.SoftmaxXent("e", m, m) }},
		{"reshape-count", func(b *Builder, v2, v3, m *Node) { b.Reshape("e", v2, 5) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := NewBuilder()
			v2 := scalarConst(t, b, "v2", 1, 2)
			v3 := scalarConst(t, b, "v3", 1, 2, 3)
			m := b.Reshape("m", v3, 1, 3)
			c.build(b, v2, v3, m)
			// Shape failures surface as ErrBadGraph or, for ops that defer
			// to the tensor package's shape functions, tensor.ErrShape.
			if _, err := b.Finish(); !errors.Is(err, ErrBadGraph) && !errors.Is(err, tensor.ErrShape) {
				t.Errorf("err = %v, want a shape-class error", err)
			}
		})
	}
}
