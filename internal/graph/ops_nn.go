package graph

import (
	"fmt"

	"repro/internal/tensor"
)

// Neural-network operators with their gradients.

// --- MatMul family ---

type matMulOp struct{}

// MatMul adds c = a @ b for a:[m,k], b:[k,n].
func (b *Builder) MatMul(name string, x, y *Node) *Node { return b.AddNode(name, matMulOp{}, x, y) }

func (matMulOp) Name() string { return "MatMul" }

func (matMulOp) InferSig(in []Sig) (Sig, error) {
	if err := wantInputs("MatMul", in, 2); err != nil {
		return Sig{}, err
	}
	a, bb := in[0], in[1]
	if a.Shape.Rank() != 2 || bb.Shape.Rank() != 2 {
		return Sig{}, fmt.Errorf("MatMul: ranks %v, %v: %w", a.Shape, bb.Shape, ErrBadGraph)
	}
	if a.Shape[1] >= 0 && bb.Shape[0] >= 0 && a.Shape[1] != bb.Shape[0] {
		return Sig{}, fmt.Errorf("MatMul: inner dims %d vs %d: %w", a.Shape[1], bb.Shape[0], ErrBadGraph)
	}
	out := Sig{DType: a.DType, Shape: tensor.Shape{a.Shape[0], bb.Shape[1]}}
	out.Static = a.Static && bb.Static
	return out, nil
}

func (matMulOp) Compute(ctx *Context) error {
	a, b := ctx.Inputs[0], ctx.Inputs[1]
	out, err := ctx.Alloc(a.DType(), tensor.Shape{a.Shape()[0], b.Shape()[1]})
	if err != nil {
		return err
	}
	if err := tensor.MatMul(out, a, b); err != nil {
		return err
	}
	ctx.Output = out
	return nil
}

func (matMulOp) BuildGrad(gb *GradBuilder, node *Node, outGrad *Node) ([]*Node, error) {
	a, b := node.Inputs()[0], node.Inputs()[1]
	da := gb.Add("matmulgrad_a", matMulTBOp{}, outGrad, b) // g @ bᵀ
	db := gb.Add("matmulgrad_b", matMulTAOp{}, a, outGrad) // aᵀ @ g
	return []*Node{da, db}, nil
}

type matMulTAOp struct{}

func (matMulTAOp) Name() string { return "MatMulTransA" }

func (matMulTAOp) InferSig(in []Sig) (Sig, error) {
	if err := wantInputs("MatMulTransA", in, 2); err != nil {
		return Sig{}, err
	}
	a, b := in[0], in[1]
	if a.Shape.Rank() != 2 || b.Shape.Rank() != 2 {
		return Sig{}, fmt.Errorf("MatMulTransA: ranks %v, %v: %w", a.Shape, b.Shape, ErrBadGraph)
	}
	out := Sig{DType: a.DType, Shape: tensor.Shape{a.Shape[1], b.Shape[1]}}
	out.Static = a.Shape[1] >= 0 && b.Shape[1] >= 0
	return out, nil
}

func (matMulTAOp) Compute(ctx *Context) error {
	a, b := ctx.Inputs[0], ctx.Inputs[1]
	out, err := ctx.Alloc(a.DType(), tensor.Shape{a.Shape()[1], b.Shape()[1]})
	if err != nil {
		return err
	}
	if err := tensor.MatMulTransA(out, a, b); err != nil {
		return err
	}
	ctx.Output = out
	return nil
}

type matMulTBOp struct{}

func (matMulTBOp) Name() string { return "MatMulTransB" }

func (matMulTBOp) InferSig(in []Sig) (Sig, error) {
	if err := wantInputs("MatMulTransB", in, 2); err != nil {
		return Sig{}, err
	}
	a, b := in[0], in[1]
	if a.Shape.Rank() != 2 || b.Shape.Rank() != 2 {
		return Sig{}, fmt.Errorf("MatMulTransB: ranks %v, %v: %w", a.Shape, b.Shape, ErrBadGraph)
	}
	out := Sig{DType: a.DType, Shape: tensor.Shape{a.Shape[0], b.Shape[0]}}
	out.Static = a.Shape[0] >= 0 && b.Shape[0] >= 0
	return out, nil
}

func (matMulTBOp) Compute(ctx *Context) error {
	a, b := ctx.Inputs[0], ctx.Inputs[1]
	out, err := ctx.Alloc(a.DType(), tensor.Shape{a.Shape()[0], b.Shape()[0]})
	if err != nil {
		return err
	}
	if err := tensor.MatMulTransB(out, a, b); err != nil {
		return err
	}
	ctx.Output = out
	return nil
}

// --- BiasAdd ---

type biasAddOp struct{}

// BiasAdd adds y = x + broadcast(b) where b spans the last dimension.
func (b *Builder) BiasAdd(name string, x, bias *Node) *Node {
	return b.AddNode(name, biasAddOp{}, x, bias)
}

func (biasAddOp) Name() string { return "BiasAdd" }

func (biasAddOp) InferSig(in []Sig) (Sig, error) {
	if err := wantInputs("BiasAdd", in, 2); err != nil {
		return Sig{}, err
	}
	x, bias := in[0], in[1]
	if bias.Shape.Rank() != 1 {
		return Sig{}, fmt.Errorf("BiasAdd: bias rank %v: %w", bias.Shape, ErrBadGraph)
	}
	if x.Shape.Inner() >= 0 && bias.Shape[0] >= 0 && x.Shape.Inner() != bias.Shape[0] {
		return Sig{}, fmt.Errorf("BiasAdd: widths %d vs %d: %w", x.Shape.Inner(), bias.Shape[0], ErrBadGraph)
	}
	return x, nil
}

func (biasAddOp) Compute(ctx *Context) error {
	x, bias := ctx.Inputs[0], ctx.Inputs[1]
	out, err := ctx.Alloc(x.DType(), x.Shape())
	if err != nil {
		return err
	}
	if err := out.CopyFrom(x); err != nil {
		return err
	}
	if err := tensor.AddBias(out, bias); err != nil {
		return err
	}
	ctx.Output = out
	return nil
}

func (biasAddOp) BuildGrad(gb *GradBuilder, node *Node, outGrad *Node) ([]*Node, error) {
	db := gb.Add("biasgrad", biasGradOp{width: node.Inputs()[1].Sig().Shape[0]}, outGrad)
	return []*Node{outGrad, db}, nil
}

type biasGradOp struct{ width int }

func (op biasGradOp) Name() string { return "BiasGrad" }

func (op biasGradOp) InferSig(in []Sig) (Sig, error) {
	if err := wantInputs("BiasGrad", in, 1); err != nil {
		return Sig{}, err
	}
	return Static(in[0].DType, op.width), nil
}

func (op biasGradOp) Compute(ctx *Context) error {
	out, err := ctx.Alloc(ctx.Inputs[0].DType(), tensor.Shape{op.width})
	if err != nil {
		return err
	}
	if err := tensor.BiasGrad(out, ctx.Inputs[0]); err != nil {
		return err
	}
	ctx.Output = out
	return nil
}

// --- Activations ---

// activationOp shares the unary forward/backward plumbing.
type activationOp struct {
	name string
	fwd  func(dst, src *tensor.Tensor) error
	bwd  func(dx, dy, y *tensor.Tensor) error
}

// Sigmoid adds y = σ(x).
func (b *Builder) Sigmoid(name string, x *Node) *Node {
	return b.AddNode(name, &activationOp{name: "Sigmoid", fwd: tensor.Sigmoid, bwd: tensor.SigmoidGrad}, x)
}

// ReLU adds y = max(x, 0).
func (b *Builder) ReLU(name string, x *Node) *Node {
	return b.AddNode(name, &activationOp{name: "ReLU", fwd: tensor.ReLU, bwd: tensor.ReLUGrad}, x)
}

// Tanh adds y = tanh(x).
func (b *Builder) Tanh(name string, x *Node) *Node {
	return b.AddNode(name, &activationOp{name: "Tanh", fwd: tensor.Tanh, bwd: tensor.TanhGrad}, x)
}

func (op *activationOp) Name() string { return op.name }

func (op *activationOp) InferSig(in []Sig) (Sig, error) {
	if err := wantInputs(op.name, in, 1); err != nil {
		return Sig{}, err
	}
	return in[0], nil
}

func (op *activationOp) Compute(ctx *Context) error {
	out, err := ctx.Alloc(ctx.Inputs[0].DType(), ctx.Inputs[0].Shape())
	if err != nil {
		return err
	}
	if err := op.fwd(out, ctx.Inputs[0]); err != nil {
		return err
	}
	ctx.Output = out
	return nil
}

func (op *activationOp) BuildGrad(gb *GradBuilder, node *Node, outGrad *Node) ([]*Node, error) {
	// The backward form consumes the forward *output* y, so the grad node
	// takes the forward node itself as a second input.
	dx := gb.Add("actgrad", &activationGradOp{name: op.name + "Grad", bwd: op.bwd}, outGrad, node)
	return []*Node{dx}, nil
}

type activationGradOp struct {
	name string
	bwd  func(dx, dy, y *tensor.Tensor) error
}

func (op *activationGradOp) Name() string { return op.name }

func (op *activationGradOp) InferSig(in []Sig) (Sig, error) {
	if err := wantInputs(op.name, in, 2); err != nil {
		return Sig{}, err
	}
	return mergeElementwise(op.name, in[0], in[1])
}

func (op *activationGradOp) Compute(ctx *Context) error {
	dy, y := ctx.Inputs[0], ctx.Inputs[1]
	out, err := ctx.Alloc(dy.DType(), dy.Shape())
	if err != nil {
		return err
	}
	if err := op.bwd(out, dy, y); err != nil {
		return err
	}
	ctx.Output = out
	return nil
}

// --- Softmax cross-entropy loss ---

type softmaxOp struct{}

// Softmax adds a row-wise softmax node.
func (b *Builder) Softmax(name string, logits *Node) *Node {
	return b.AddNode(name, softmaxOp{}, logits)
}

func (softmaxOp) Name() string { return "Softmax" }

func (softmaxOp) InferSig(in []Sig) (Sig, error) {
	if err := wantInputs("Softmax", in, 1); err != nil {
		return Sig{}, err
	}
	return in[0], nil
}

func (softmaxOp) Compute(ctx *Context) error {
	out, err := ctx.Alloc(ctx.Inputs[0].DType(), ctx.Inputs[0].Shape())
	if err != nil {
		return err
	}
	if err := tensor.Softmax(out, ctx.Inputs[0]); err != nil {
		return err
	}
	ctx.Output = out
	return nil
}

type xentLossOp struct{}

// SoftmaxXent adds the scalar mean cross-entropy loss of logits:[m,n]
// against int32 labels:[m].
func (b *Builder) SoftmaxXent(name string, logits, labels *Node) *Node {
	return b.AddNode(name, xentLossOp{}, logits, labels)
}

func (xentLossOp) Name() string { return "SoftmaxXent" }

func (xentLossOp) InferSig(in []Sig) (Sig, error) {
	if err := wantInputs("SoftmaxXent", in, 2); err != nil {
		return Sig{}, err
	}
	if in[1].DType != tensor.Int32 {
		return Sig{}, fmt.Errorf("SoftmaxXent: labels must be int32, got %v: %w", in[1].DType, ErrBadGraph)
	}
	return Static(tensor.Float32), nil
}

func (xentLossOp) Compute(ctx *Context) error {
	logits, labels := ctx.Inputs[0], ctx.Inputs[1]
	probs, err := ctx.Alloc(logits.DType(), logits.Shape())
	if err != nil {
		return err
	}
	loss, err := tensor.SoftmaxCrossEntropy(probs, logits, labels)
	if err != nil {
		return err
	}
	out, err := ctx.Alloc(tensor.Float32, nil)
	if err != nil {
		return err
	}
	out.Float32s()[0] = loss
	ctx.Output = out
	return nil
}

func (xentLossOp) BuildGrad(gb *GradBuilder, node *Node, outGrad *Node) ([]*Node, error) {
	logits, labels := node.Inputs()[0], node.Inputs()[1]
	// Recompute softmax in the backward pass, then scale by the incoming
	// scalar gradient (1 when the loss is the optimization root).
	probs := gb.Add("xent_probs", softmaxOp{}, logits)
	dlogits := gb.Add("xentgrad", xentGradOp{}, probs, labels, outGrad)
	return []*Node{dlogits, nil}, nil
}

type xentGradOp struct{}

func (xentGradOp) Name() string { return "SoftmaxXentGrad" }

func (xentGradOp) InferSig(in []Sig) (Sig, error) {
	if err := wantInputs("SoftmaxXentGrad", in, 3); err != nil {
		return Sig{}, err
	}
	return in[0], nil
}

func (xentGradOp) Compute(ctx *Context) error {
	probs, labels, scale := ctx.Inputs[0], ctx.Inputs[1], ctx.Inputs[2]
	out, err := ctx.Alloc(probs.DType(), probs.Shape())
	if err != nil {
		return err
	}
	if err := tensor.SoftmaxCrossEntropyGrad(out, probs, labels); err != nil {
		return err
	}
	if s := scale.Float32s()[0]; s != 1 {
		tensor.Scale(s, out)
	}
	ctx.Output = out
	return nil
}

// --- Conv2D ---

type conv2DOp struct{ stride, pad int }

// Conv2D adds out = in ⊛ filter (NHWC input, OHWI filter).
func (b *Builder) Conv2D(name string, in, filter *Node, stride, pad int) *Node {
	return b.AddNode(name, &conv2DOp{stride: stride, pad: pad}, in, filter)
}

func (op *conv2DOp) Name() string { return "Conv2D" }

func (op *conv2DOp) InferSig(in []Sig) (Sig, error) {
	if err := wantInputs("Conv2D", in, 2); err != nil {
		return Sig{}, err
	}
	if !in[0].Static || !in[1].Static {
		return Sig{}, fmt.Errorf("Conv2D: dynamic shapes unsupported: %w", ErrBadGraph)
	}
	shape, err := tensor.Conv2DShape(in[0].Shape, in[1].Shape, op.stride, op.pad)
	if err != nil {
		return Sig{}, err
	}
	return Sig{DType: in[0].DType, Shape: shape, Static: true}, nil
}

func (op *conv2DOp) Compute(ctx *Context) error {
	in, filter := ctx.Inputs[0], ctx.Inputs[1]
	shape, err := tensor.Conv2DShape(in.Shape(), filter.Shape(), op.stride, op.pad)
	if err != nil {
		return err
	}
	out, err := ctx.Alloc(in.DType(), shape)
	if err != nil {
		return err
	}
	if err := tensor.Conv2D(out, in, filter, op.stride, op.pad); err != nil {
		return err
	}
	ctx.Output = out
	return nil
}

func (op *conv2DOp) BuildGrad(gb *GradBuilder, node *Node, outGrad *Node) ([]*Node, error) {
	in, filter := node.Inputs()[0], node.Inputs()[1]
	din := gb.Add("convgrad_in", &conv2DGradOp{stride: op.stride, pad: op.pad, wantInput: true}, outGrad, in, filter)
	dfl := gb.Add("convgrad_f", &conv2DGradOp{stride: op.stride, pad: op.pad, wantInput: false}, outGrad, in, filter)
	return []*Node{din, dfl}, nil
}

type conv2DGradOp struct {
	stride, pad int
	wantInput   bool // true: d(input); false: d(filter)
}

func (op *conv2DGradOp) Name() string {
	if op.wantInput {
		return "Conv2DGradInput"
	}
	return "Conv2DGradFilter"
}

func (op *conv2DGradOp) InferSig(in []Sig) (Sig, error) {
	if err := wantInputs(op.Name(), in, 3); err != nil {
		return Sig{}, err
	}
	if op.wantInput {
		return in[1], nil
	}
	return in[2], nil
}

func (op *conv2DGradOp) Compute(ctx *Context) error {
	dout, in, filter := ctx.Inputs[0], ctx.Inputs[1], ctx.Inputs[2]
	if op.wantInput {
		din, err := ctx.Alloc(in.DType(), in.Shape())
		if err != nil {
			return err
		}
		if err := tensor.Conv2DGrad(din, nil, dout, in, filter, op.stride, op.pad); err != nil {
			return err
		}
		ctx.Output = din
		return nil
	}
	dfl, err := ctx.Alloc(filter.DType(), filter.Shape())
	if err != nil {
		return err
	}
	if err := tensor.Conv2DGrad(nil, dfl, dout, in, filter, op.stride, op.pad); err != nil {
		return err
	}
	ctx.Output = dfl
	return nil
}

// --- MaxPool (2x2 stride 2) ---

type maxPoolOp struct{}

// MaxPool adds 2×2 stride-2 max pooling over NHWC input.
func (b *Builder) MaxPool(name string, in *Node) *Node {
	return b.AddNode(name, maxPoolOp{}, in)
}

func (maxPoolOp) Name() string { return "MaxPool" }

func (maxPoolOp) InferSig(in []Sig) (Sig, error) {
	if err := wantInputs("MaxPool", in, 1); err != nil {
		return Sig{}, err
	}
	s := in[0]
	if s.Shape.Rank() != 4 || !s.Static {
		return Sig{}, fmt.Errorf("MaxPool: want static NHWC, got %v: %w", s, ErrBadGraph)
	}
	return Sig{DType: s.DType,
		Shape:  tensor.Shape{s.Shape[0], s.Shape[1] / 2, s.Shape[2] / 2, s.Shape[3]},
		Static: true}, nil
}

func (maxPoolOp) Compute(ctx *Context) error {
	in := ctx.Inputs[0]
	s := in.Shape()
	shape := tensor.Shape{s[0], s[1] / 2, s[2] / 2, s[3]}
	out, err := ctx.Alloc(in.DType(), shape)
	if err != nil {
		return err
	}
	idx := tensor.New(tensor.Int32, shape...)
	if err := tensor.MaxPool2D(out, idx, in); err != nil {
		return err
	}
	ctx.Output = out
	return nil
}

func (maxPoolOp) BuildGrad(gb *GradBuilder, node *Node, outGrad *Node) ([]*Node, error) {
	din := gb.Add("poolgrad", maxPoolGradOp{}, outGrad, node.Inputs()[0])
	return []*Node{din}, nil
}

type maxPoolGradOp struct{}

func (maxPoolGradOp) Name() string { return "MaxPoolGrad" }

func (maxPoolGradOp) InferSig(in []Sig) (Sig, error) {
	if err := wantInputs("MaxPoolGrad", in, 2); err != nil {
		return Sig{}, err
	}
	return in[1], nil
}

func (maxPoolGradOp) Compute(ctx *Context) error {
	dout, in := ctx.Inputs[0], ctx.Inputs[1]
	// Recompute the argmax indices from the forward input.
	out := tensor.New(in.DType(), dout.Shape()...)
	idx := tensor.New(tensor.Int32, dout.Shape()...)
	if err := tensor.MaxPool2D(out, idx, in); err != nil {
		return err
	}
	din, err := ctx.Alloc(in.DType(), in.Shape())
	if err != nil {
		return err
	}
	if err := tensor.MaxPool2DGrad(din, dout, idx); err != nil {
		return err
	}
	ctx.Output = din
	return nil
}
