package graph

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteDot renders the graph in Graphviz DOT format, clustering nodes by
// server task — partitioned graphs show their Send/Recv pairs on the
// cluster boundaries, which makes the analyzer's edge cuts easy to audit.
func (g *Graph) WriteDot(w io.Writer, title string) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", title)
	b.WriteString("  rankdir=TB;\n  node [shape=box, fontsize=10];\n")

	byTask := make(map[string][]*Node)
	for _, n := range g.nodes {
		byTask[n.Task()] = append(byTask[n.Task()], n)
	}
	tasks := make([]string, 0, len(byTask))
	for t := range byTask {
		tasks = append(tasks, t)
	}
	sort.Strings(tasks)

	for i, task := range tasks {
		label := task
		if label == "" {
			label = "(unassigned)"
		}
		fmt.Fprintf(&b, "  subgraph cluster_%d {\n    label=%q;\n    style=dashed;\n", i, label)
		for _, n := range byTask[task] {
			fmt.Fprintf(&b, "    n%d [label=%q%s];\n", n.ID(), nodeLabel(n), nodeStyle(n))
		}
		b.WriteString("  }\n")
	}
	for _, n := range g.nodes {
		for _, in := range n.Inputs() {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", in.ID(), n.ID())
		}
		for _, c := range n.Controls() {
			fmt.Fprintf(&b, "  n%d -> n%d [style=dotted, label=\"ctrl\"];\n", c.ID(), n.ID())
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func nodeLabel(n *Node) string {
	sig := n.Sig()
	kind := "dyn"
	if sig.Static {
		kind = "static"
	}
	return fmt.Sprintf("%s\n%s %v %s", n.Name(), n.Op().Name(), sig.Shape, kind)
}

func nodeStyle(n *Node) string {
	op := n.Op().Name()
	switch {
	case op == "Variable":
		return ", style=filled, fillcolor=lightyellow"
	case op == "Placeholder":
		return ", style=filled, fillcolor=lightblue"
	case strings.HasPrefix(op, "Rdma") || strings.HasPrefix(op, "RPC"):
		return ", style=filled, fillcolor=lightsalmon"
	default:
		return ""
	}
}
