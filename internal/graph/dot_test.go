package graph

import (
	"strings"
	"testing"

	"repro/internal/tensor"
)

func TestWriteDot(t *testing.T) {
	b := NewBuilder()
	b.OnTask("ps0")
	w := b.Variable("w", Static(tensor.Float32, 4, 2))
	b.OnTask("worker0")
	x := b.Placeholder("x", Static(tensor.Float32, 1, 4))
	y := b.MatMul("y", x, w)
	grp := b.Group("step", y)
	_ = grp
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := g.WriteDot(&sb, "test"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"digraph \"test\"",
		"cluster_0", "cluster_1", // two tasks
		"ps0", "worker0",
		"MatMul",
		"style=dotted", // the control edge
		"lightyellow",  // variable fill
		"lightblue",    // placeholder fill
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	// Edge from x (n-id) to y must exist; count arrows: 2 data + 1 ctrl.
	if got := strings.Count(out, "->"); got != 3 {
		t.Errorf("edge count = %d, want 3", got)
	}
}
