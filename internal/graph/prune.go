package graph

import "fmt"

// Prune removes every node not needed to compute the keep set: reverse-mode
// differentiation legitimately produces gradient nodes whose outputs have
// no consumer (gradients toward constants and inputs), and without pruning
// the executor would evaluate them every iteration. Keep must include every
// node whose value or side effect matters — losses and fetch targets,
// optimizer updates, anything with state.
//
// Prune must run before Finish (and before partitioning, which adds its own
// Send/Recv nodes and keeps them alive by construction). Node IDs are
// reassigned; node pointers remain valid.
func (b *Builder) Prune(keep ...*Node) {
	if b.err != nil {
		return
	}
	marked := make(map[*Node]bool)
	var visit func(n *Node)
	visit = func(n *Node) {
		if n == nil || marked[n] {
			return
		}
		marked[n] = true
		for _, in := range n.inputs {
			visit(in)
		}
		for _, c := range n.controls {
			if b.weak[n][c] {
				continue // ordering-only: does not retain its target
			}
			visit(c)
		}
	}
	for _, k := range keep {
		if k == nil {
			b.fail(fmt.Errorf("graph: nil keep node in Prune: %w", ErrBadGraph))
			return
		}
		visit(k)
	}
	kept := b.g.nodes[:0]
	for _, n := range b.g.nodes {
		if marked[n] {
			n.id = len(kept)
			kept = append(kept, n)
		} else {
			delete(b.g.byName, n.name)
		}
	}
	b.g.nodes = kept
	// Survivors may hold weak control edges to pruned readers: drop them
	// (the read-after-update hazard died with the reader).
	for _, n := range b.g.nodes {
		filtered := n.controls[:0]
		for _, c := range n.controls {
			if marked[c] {
				filtered = append(filtered, c)
			} else if !b.weak[n][c] {
				b.fail(fmt.Errorf("graph: strong control dep of %q on pruned %q: %w",
					n.name, c.name, ErrBadGraph))
				return
			}
		}
		n.controls = filtered
	}
}

// StatefulNodes returns the nodes whose execution has side effects beyond
// their output (optimizer updates); they are the canonical extra keep set
// for Prune.
func (g *Graph) StatefulNodes() []*Node {
	var out []*Node
	for _, n := range g.nodes {
		if _, ok := UpdatedVariable(n.op); ok {
			out = append(out, n)
		}
	}
	return out
}

// StatefulNodes is also available during construction.
func (b *Builder) StatefulNodes() []*Node {
	var out []*Node
	for _, n := range b.g.nodes {
		if _, ok := UpdatedVariable(n.op); ok {
			out = append(out, n)
		}
	}
	return out
}

// ForwardOnly verifies the graph is pure inference: no node updates a
// variable. Serving replicas run executors whose stores alias read-only
// published weight banks, so a stateful node there would scribble on memory
// the publisher owns; this check turns that into a construction error.
func ForwardOnly(g *Graph) error {
	for _, n := range g.StatefulNodes() {
		name, _ := UpdatedVariable(n.op)
		return fmt.Errorf("graph: %q updates variable %q in a forward-only graph: %w",
			n.name, name, ErrBadGraph)
	}
	return nil
}
