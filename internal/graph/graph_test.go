package graph

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/tensor"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder().OnTask("worker0")
	x := b.Placeholder("x", Static(tensor.Float32, 4, 8))
	w := b.Variable("w", Static(tensor.Float32, 8, 2))
	y := b.MatMul("y", x, w)
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes()) != 3 {
		t.Errorf("nodes = %d", len(g.Nodes()))
	}
	if !y.Sig().Static || !y.Sig().Shape.Equal(tensor.Shape{4, 2}) {
		t.Errorf("y sig = %v", y.Sig())
	}
	if y.Task() != "worker0" {
		t.Errorf("task = %q", y.Task())
	}
	n, err := g.Node("y")
	if err != nil || n != y {
		t.Errorf("lookup: %v", err)
	}
	if _, err := g.Node("zzz"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing lookup: %v", err)
	}
	if !strings.Contains(y.String(), "MatMul") {
		t.Errorf("String = %q", y.String())
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	b.Placeholder("x", Static(tensor.Float32, 2))
	b.Placeholder("x", Static(tensor.Float32, 2)) // duplicate
	if _, err := b.Finish(); !errors.Is(err, ErrBadGraph) {
		t.Errorf("duplicate name: %v", err)
	}

	b2 := NewBuilder()
	b2.AddNode("", identityOp{})
	if _, err := b2.Finish(); !errors.Is(err, ErrBadGraph) {
		t.Errorf("empty name: %v", err)
	}

	b3 := NewBuilder()
	b3.Identity("id", nil)
	if _, err := b3.Finish(); !errors.Is(err, ErrBadGraph) {
		t.Errorf("nil input: %v", err)
	}

	// After a failure the builder keeps failing but never panics.
	b4 := NewBuilder()
	a := b4.Placeholder("a", Static(tensor.Float32, 2, 3))
	bad := b4.MatMul("bad", a, a) // 2x3 @ 2x3 mismatch
	if bad != nil {
		t.Error("failed AddNode should return nil")
	}
	c := b4.Identity("c", a)
	if c != nil {
		t.Error("builder should stay failed")
	}
	if _, err := b4.Finish(); !errors.Is(err, ErrBadGraph) {
		t.Errorf("matmul mismatch: %v", err)
	}
}

func TestControlCycleDetected(t *testing.T) {
	b := NewBuilder()
	a := b.Placeholder("a", Static(tensor.Float32, 1))
	c := b.Identity("c", a)
	d := b.Identity("d", c)
	b.ControlDep(c, d) // c -> d -> c
	if _, err := b.Finish(); !errors.Is(err, ErrCycle) {
		t.Errorf("cycle: %v", err)
	}
}

func TestShapeInference(t *testing.T) {
	b := NewBuilder()
	x := b.Placeholder("x", Dyn(tensor.Float32, -1, 16))
	w := b.Variable("w", Static(tensor.Float32, 16, 4))
	h := b.MatMul("h", x, w)
	if h.Sig().Static {
		t.Error("dynamic batch should stay dynamic")
	}
	if h.Sig().Shape[1] != 4 || h.Sig().Shape[0] != -1 {
		t.Errorf("h shape = %v", h.Sig().Shape)
	}
	bias := b.Variable("b", Static(tensor.Float32, 4))
	y := b.BiasAdd("y", h, bias)
	if y.Sig().Static {
		t.Error("biasadd of dynamic should stay dynamic")
	}
	act := b.Sigmoid("act", y)
	if act.Sig().Shape.Rank() != 2 {
		t.Errorf("act shape = %v", act.Sig().Shape)
	}
	labels := b.Placeholder("labels", Dyn(tensor.Int32, -1))
	loss := b.SoftmaxXent("loss", act, labels)
	if !loss.Sig().Static || loss.Sig().Shape.NumElements() != 1 {
		t.Errorf("loss sig = %v", loss.Sig())
	}
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestStaticMergePinsDynamicDims(t *testing.T) {
	b := NewBuilder()
	x := b.Placeholder("x", Dyn(tensor.Float32, -1, 8))
	y := b.Placeholder("y", Static(tensor.Float32, 4, 8))
	s := b.Add("s", x, y)
	if !s.Sig().Static || !s.Sig().Shape.Equal(tensor.Shape{4, 8}) {
		t.Errorf("merged sig = %v", s.Sig())
	}
	// Conflicting known dims must fail.
	b.Add("bad", y, b.Placeholder("z", Static(tensor.Float32, 5, 8)))
	if _, err := b.Finish(); !errors.Is(err, ErrBadGraph) {
		t.Errorf("dim conflict: %v", err)
	}
}

func TestVariableChecks(t *testing.T) {
	b := NewBuilder()
	v := b.Variable("v", Static(tensor.Float32, 3))
	if !IsVariable(v) {
		t.Error("IsVariable(v) = false")
	}
	x := b.Placeholder("x", Static(tensor.Float32, 3))
	if IsVariable(x) {
		t.Error("IsVariable(placeholder) = true")
	}
	b.ApplySGD("upd", x, v, 0.1) // x is not a variable
	if _, err := b.Finish(); !errors.Is(err, ErrBadGraph) {
		t.Errorf("ApplySGD on non-variable: %v", err)
	}

	b2 := NewBuilder()
	b2.Variable("dyn", Dyn(tensor.Float32, -1))
	if _, err := b2.Finish(); !errors.Is(err, ErrBadGraph) {
		t.Errorf("dynamic variable: %v", err)
	}
}

func TestGradientsStructure(t *testing.T) {
	b := NewBuilder()
	x := b.Placeholder("x", Static(tensor.Float32, 2, 4))
	w := b.Variable("w", Static(tensor.Float32, 4, 3))
	h := b.MatMul("h", x, w)
	labels := b.Placeholder("labels", Static(tensor.Int32, 2))
	loss := b.SoftmaxXent("loss", h, labels)
	grads, err := Gradients(b, loss, []*Node{w})
	if err != nil {
		t.Fatal(err)
	}
	gw := grads[w]
	if gw == nil {
		t.Fatal("no gradient for w")
	}
	if !gw.Sig().Shape.Equal(w.Sig().Shape) {
		t.Errorf("grad shape %v, want %v", gw.Sig().Shape, w.Sig().Shape)
	}
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestGradientsFanoutAccumulates(t *testing.T) {
	// loss = xent(h + h) — h has two consumers, so its gradient must be the
	// sum of both paths.
	b := NewBuilder()
	x := b.Placeholder("x", Static(tensor.Float32, 1, 2))
	w := b.Variable("w", Static(tensor.Float32, 2, 2))
	h := b.MatMul("h", x, w)
	twice := b.Add("twice", h, h)
	labels := b.Placeholder("labels", Static(tensor.Int32, 1))
	loss := b.SoftmaxXent("loss", twice, labels)
	grads, err := Gradients(b, loss, []*Node{w})
	if err != nil {
		t.Fatal(err)
	}
	// Expect at least one accumulation node on the path.
	found := false
	for _, n := range b.g.nodes {
		if strings.Contains(n.Name(), "accum_") {
			found = true
		}
	}
	if !found {
		t.Error("no accumulation node emitted for fan-out")
	}
	if grads[w] == nil {
		t.Fatal("missing gradient")
	}
}

func TestGradientsErrors(t *testing.T) {
	b := NewBuilder()
	x := b.Placeholder("x", Static(tensor.Float32, 2, 2))
	v := b.Variable("v", Static(tensor.Float32, 2, 2))
	if _, err := Gradients(b, x, []*Node{v}); !errors.Is(err, ErrBadGraph) {
		t.Errorf("non-scalar loss: %v", err)
	}
	// Target not connected to loss.
	labels := b.Placeholder("l", Static(tensor.Int32, 2))
	loss := b.SoftmaxXent("loss", x, labels)
	if _, err := Gradients(b, loss, []*Node{v}); !errors.Is(err, ErrBadGraph) {
		t.Errorf("disconnected target: %v", err)
	}
	if _, err := Gradients(b, loss, []*Node{nil}); !errors.Is(err, ErrBadGraph) {
		t.Errorf("nil target: %v", err)
	}
	if _, err := Gradients(b, nil, nil); !errors.Is(err, ErrBadGraph) {
		t.Errorf("nil loss: %v", err)
	}
}

func TestNonDifferentiableOpRejected(t *testing.T) {
	b := NewBuilder()
	v := b.Variable("v", Static(tensor.Float32, 2, 2))
	m := b.ReduceMax("m", v) // ReduceMax has no gradient
	// Make a scalar "loss" downstream of m.
	loss := b.Identity("loss", m)
	if _, err := Gradients(b, loss, []*Node{v}); !errors.Is(err, ErrNoGrad) {
		t.Errorf("err = %v, want ErrNoGrad", err)
	}
}

func TestSigHelpers(t *testing.T) {
	s := Static(tensor.Float32, 3, 4)
	if s.NumElements() != 12 || s.ByteSize() != 48 {
		t.Errorf("static sig: %d elems, %d bytes", s.NumElements(), s.ByteSize())
	}
	d := Dyn(tensor.Float32, -1, 4)
	if d.NumElements() != 0 || d.ByteSize() != 0 {
		t.Error("dyn sig should report zero size")
	}
	if !strings.Contains(s.String(), "static") || !strings.Contains(d.String(), "dyn") {
		t.Errorf("sig strings: %q, %q", s, d)
	}
}

func TestGroupAndControlDeps(t *testing.T) {
	b := NewBuilder()
	a := b.Placeholder("a", Static(tensor.Float32, 1))
	c := b.Identity("c", a)
	d := b.Identity("d", a)
	grp := b.Group("step", c, d)
	if len(grp.Controls()) != 2 {
		t.Errorf("controls = %d", len(grp.Controls()))
	}
	if _, err := b.Finish(); err != nil {
		t.Fatal(err)
	}
}
