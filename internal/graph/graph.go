// Package graph implements the deep-learning data-flow graph: nodes holding
// operators, edges carrying tensors, a builder API, static shape inference
// (the first half of §3.4's analysis), and reverse-mode automatic
// differentiation over the operator set. Execution lives in
// internal/exec; partitioning and the RDMA-aware analysis in
// internal/analyzer.
package graph

import (
	"errors"
	"fmt"

	"repro/internal/tensor"
)

// Common graph errors.
var (
	ErrCycle    = errors.New("graph: cycle detected")
	ErrBadGraph = errors.New("graph: invalid construction")
	ErrNoGrad   = errors.New("graph: operator is not differentiable")
	ErrNotFound = errors.New("graph: node not found")
)

// Sig describes a node output: element type, shape, and whether the shape
// is statically known (fixed for the entire computation). Dynamic shapes
// use -1 for unknown dimensions; their rank is still fixed, the property
// §3.3's metadata block relies on.
type Sig struct {
	DType  tensor.DType
	Shape  tensor.Shape
	Static bool
}

func (s Sig) String() string {
	kind := "static"
	if !s.Static {
		kind = "dyn"
	}
	return fmt.Sprintf("%v%v(%s)", s.DType, s.Shape, kind)
}

// NumElements returns the element count for static sigs, 0 otherwise.
func (s Sig) NumElements() int {
	if !s.Static {
		return 0
	}
	return s.Shape.NumElements()
}

// ByteSize returns the payload size for static sigs, 0 otherwise.
func (s Sig) ByteSize() int { return s.NumElements() * s.DType.Size() }

// Static builds a static signature.
func Static(dt tensor.DType, dims ...int) Sig {
	return Sig{DType: dt, Shape: tensor.Shape(dims).Clone(), Static: true}
}

// Dyn builds a dynamic signature; dims may use -1 for unknown extents. The
// rank must still be exact.
func Dyn(dt tensor.DType, dims ...int) Sig {
	return Sig{DType: dt, Shape: tensor.Shape(dims).Clone(), Static: false}
}

// Op is a graph operator: a name for diagnostics plus shape inference.
// Concrete ops usually also implement Kernel (and possibly AsyncKernel or
// PollingKernel) for execution, and Differentiable for training.
type Op interface {
	Name() string
	// InferSig derives the output signature from input signatures,
	// propagating staticness: an output is static only when the operator
	// can fix its shape for the whole computation.
	InferSig(inputs []Sig) (Sig, error)
}

// Kernel computes a node's output synchronously.
type Kernel interface {
	Compute(ctx *Context) error
}

// AsyncKernel computes a node's output asynchronously; done must be called
// exactly once.
type AsyncKernel interface {
	ComputeAsync(ctx *Context, done func(error))
}

// EdgeKernel marks communication operators — the send/recv halves of a
// partitioned cross-server edge. EdgeKey names the edge in transfer
// direction (e.g. "worker0->ps0"). The scheduler uses the marker to
// attribute worker time to communication rather than compute, and the
// observability layer keys per-edge byte/latency histograms by EdgeKey.
type EdgeKernel interface {
	EdgeKey() string
}

// PollingKernel is the paper's polling-async mode (§4): the scheduler calls
// Poll; while it returns false the node is re-enqueued at the tail of the
// ready queue, keeping the poll from blocking other ready work. Once Poll
// returns true the scheduler runs the node's Kernel or AsyncKernel.
type PollingKernel interface {
	Poll(ctx *Context) (ready bool, err error)
}

// VarAccess lets kernels reach the executor's variable storage.
type VarAccess interface {
	// VarTensor returns the persistent tensor backing a variable.
	VarTensor(name string) (*tensor.Tensor, error)
}

// AllocFn allocates an output tensor; the executor routes it to the normal
// or the RDMA-registered allocator based on the analyzer's decisions
// (§3.4's allocation-site tracing).
type AllocFn func(dt tensor.DType, shape tensor.Shape) (*tensor.Tensor, error)

// Context carries everything a kernel needs for one node execution.
type Context struct {
	// Node is the executing node.
	Node *Node
	// Iter is the mini-batch iteration number, starting at 0.
	Iter int
	// Inputs holds the input tensors in edge order.
	Inputs []*tensor.Tensor
	// Output receives the node's result; kernels must set it (possibly to
	// an input tensor for in-place ops).
	Output *tensor.Tensor
	// Alloc allocates output storage through the executor.
	Alloc AllocFn
	// Vars accesses persistent variable state.
	Vars VarAccess
	// Feeds holds this iteration's placeholder bindings.
	Feeds map[string]*tensor.Tensor
	// Env is an executor-scoped environment for communication kernels
	// (e.g. the distributed runtime's transfer endpoints); kernels
	// type-assert it.
	Env any
	// Canceled, when non-nil, reports whether the iteration that owns this
	// context has failed or been aborted. Long-running kernels — retried
	// transfers especially — must poll it and give up promptly: work that
	// finishes after an abort would touch memory the next iteration already
	// owns.
	Canceled func() bool
}

// AllocOutput allocates storage for the node's inferred static signature.
func (ctx *Context) AllocOutput() (*tensor.Tensor, error) {
	sig := ctx.Node.Sig()
	if !sig.Static {
		return nil, fmt.Errorf("graph: node %s has dynamic shape; kernel must size output itself", ctx.Node.Name())
	}
	return ctx.Alloc(sig.DType, sig.Shape)
}

// Node is one vertex of the data-flow graph.
type Node struct {
	id       int
	name     string
	op       Op
	inputs   []*Node
	controls []*Node
	sig      Sig
	task     string // server assignment ("worker0", "ps1", ...)
}

// ID returns the node's graph-unique id.
func (n *Node) ID() int { return n.id }

// Name returns the node's unique name.
func (n *Node) Name() string { return n.name }

// Op returns the node's operator.
func (n *Node) Op() Op { return n.op }

// Inputs returns the data dependencies in order. Callers must not mutate.
func (n *Node) Inputs() []*Node { return n.inputs }

// Controls returns the control dependencies. Callers must not mutate.
func (n *Node) Controls() []*Node { return n.controls }

// Sig returns the node's inferred output signature.
func (n *Node) Sig() Sig { return n.sig }

// Task returns the server this node is assigned to.
func (n *Node) Task() string { return n.task }

func (n *Node) String() string {
	return fmt.Sprintf("%s(%s)@%s %v", n.name, n.op.Name(), n.task, n.sig)
}

// Graph is an immutable-after-build data-flow graph.
type Graph struct {
	nodes  []*Node
	byName map[string]*Node
}

// Nodes returns all nodes in insertion (topological) order.
func (g *Graph) Nodes() []*Node { return g.nodes }

// Node looks a node up by name.
func (g *Graph) Node(name string) (*Node, error) {
	n, ok := g.byName[name]
	if !ok {
		return nil, fmt.Errorf("graph: %q: %w", name, ErrNotFound)
	}
	return n, nil
}

// Builder constructs graphs. Nodes are appended in dependency order, so the
// node list is already topologically sorted (inputs must exist before use).
type Builder struct {
	g    *Graph
	task string
	err  error
	// weak control edges (update-after-read ordering): they order
	// execution but do not keep their target alive through Prune.
	weak map[*Node]map[*Node]bool
}

// NewBuilder returns an empty graph builder.
func NewBuilder() *Builder {
	return &Builder{
		g:    &Graph{byName: make(map[string]*Node)},
		weak: make(map[*Node]map[*Node]bool),
	}
}

// OnTask sets the server assignment for subsequently added nodes.
func (b *Builder) OnTask(task string) *Builder {
	b.task = task
	return b
}

// Task returns the current task assignment.
func (b *Builder) Task() string { return b.task }

// Err returns the first construction error, if any.
func (b *Builder) Err() error { return b.err }

// Nodes returns a snapshot of the nodes added so far (the partitioner
// iterates it while appending Send/Recv nodes).
func (b *Builder) Nodes() []*Node {
	return append([]*Node(nil), b.g.nodes...)
}

func (b *Builder) fail(err error) *Node {
	if b.err == nil {
		b.err = err
	}
	return nil
}

// AddNode appends a node computing op over the inputs. The name must be
// unique; the output signature is inferred immediately.
func (b *Builder) AddNode(name string, op Op, inputs ...*Node) *Node {
	if b.err != nil {
		return nil
	}
	if name == "" {
		return b.fail(fmt.Errorf("graph: empty node name: %w", ErrBadGraph))
	}
	if _, dup := b.g.byName[name]; dup {
		return b.fail(fmt.Errorf("graph: duplicate node %q: %w", name, ErrBadGraph))
	}
	sigs := make([]Sig, len(inputs))
	for i, in := range inputs {
		if in == nil {
			return b.fail(fmt.Errorf("graph: nil input %d of %q: %w", i, name, ErrBadGraph))
		}
		sigs[i] = in.sig
	}
	sig, err := op.InferSig(sigs)
	if err != nil {
		return b.fail(fmt.Errorf("graph: %q: %w", name, err))
	}
	n := &Node{
		id:     len(b.g.nodes),
		name:   name,
		op:     op,
		inputs: append([]*Node(nil), inputs...),
		sig:    sig,
		task:   b.task,
	}
	b.g.nodes = append(b.g.nodes, n)
	b.g.byName[name] = n
	return n
}

// ControlDep adds a control edge: n will not run before dep in the same
// iteration.
func (b *Builder) ControlDep(n, dep *Node) {
	if b.err != nil || n == nil || dep == nil {
		return
	}
	n.controls = append(n.controls, dep)
}

// controlDepWeak adds an ordering-only control edge that does not keep dep
// alive through Prune (used for update-after-read ordering: if the reader
// is dead, the hazard is gone with it).
func (b *Builder) controlDepWeak(n, dep *Node) {
	if b.err != nil || n == nil || dep == nil {
		return
	}
	n.controls = append(n.controls, dep)
	m := b.weak[n]
	if m == nil {
		m = make(map[*Node]bool)
		b.weak[n] = m
	}
	m[dep] = true
}

// RewireInput redirects input idx of n to newIn. The partitioner uses it to
// splice Send/Recv pairs into cross-server edges; the replacement must carry
// a compatible signature (same dtype and rank, dimensions equal where both
// are known). Signatures downstream are not re-inferred.
func (b *Builder) RewireInput(n *Node, idx int, newIn *Node) error {
	if n == nil || newIn == nil {
		return fmt.Errorf("graph: rewire nil node: %w", ErrBadGraph)
	}
	if idx < 0 || idx >= len(n.inputs) {
		return fmt.Errorf("graph: rewire input %d of %q (has %d): %w", idx, n.name, len(n.inputs), ErrBadGraph)
	}
	old, repl := n.inputs[idx].sig, newIn.sig
	if old.DType != repl.DType || old.Shape.Rank() != repl.Shape.Rank() {
		return fmt.Errorf("graph: rewire %q input %d: %v incompatible with %v: %w",
			n.name, idx, repl, old, ErrBadGraph)
	}
	for i := range old.Shape {
		if old.Shape[i] >= 0 && repl.Shape[i] >= 0 && old.Shape[i] != repl.Shape[i] {
			return fmt.Errorf("graph: rewire %q input %d: %v incompatible with %v: %w",
				n.name, idx, repl, old, ErrBadGraph)
		}
	}
	n.inputs[idx] = newIn
	return nil
}

// Finish validates and returns the graph.
func (b *Builder) Finish() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	// Construction order guarantees acyclicity for data edges; control
	// edges could introduce cycles, so verify.
	if err := checkAcyclic(b.g); err != nil {
		return nil, err
	}
	return b.g, nil
}

func checkAcyclic(g *Graph) error {
	state := make([]int, len(g.nodes)) // 0 unvisited, 1 in-stack, 2 done
	var visit func(n *Node) error
	visit = func(n *Node) error {
		switch state[n.id] {
		case 1:
			return fmt.Errorf("graph: through %q: %w", n.name, ErrCycle)
		case 2:
			return nil
		}
		state[n.id] = 1
		for _, in := range n.inputs {
			if err := visit(in); err != nil {
				return err
			}
		}
		for _, c := range n.controls {
			if err := visit(c); err != nil {
				return err
			}
		}
		state[n.id] = 2
		return nil
	}
	for _, n := range g.nodes {
		if err := visit(n); err != nil {
			return err
		}
	}
	return nil
}
