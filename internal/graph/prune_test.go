package graph

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/tensor"
)

func TestPruneDropsDanglingGradients(t *testing.T) {
	b := NewBuilder()
	w := b.Variable("w", Static(tensor.Float32, 3, 3))
	x := b.Placeholder("x", Static(tensor.Float32, 2, 3))
	labels := b.Placeholder("labels", Static(tensor.Int32, 2))
	h := b.Tanh("h", b.MatMul("mm", x, w))
	loss := b.SoftmaxXent("loss", h, labels)
	grads, err := Gradients(b, loss, []*Node{w})
	if err != nil {
		t.Fatal(err)
	}
	apply := b.ApplySGD("apply", w, grads[w], 0.1)
	before := len(b.Nodes())

	// The backward pass emitted a gradient toward x (matmulgrad_a) that
	// nothing consumes; it must disappear.
	b.Prune(loss, apply)
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	after := len(g.Nodes())
	if after >= before {
		t.Fatalf("prune removed nothing (%d -> %d)", before, after)
	}
	for _, n := range g.Nodes() {
		if n.Op().Name() == "MatMulTransB" {
			// dx = g @ wT is the dangling gradient here.
			for _, in := range n.Inputs() {
				if in == w {
					t.Errorf("dangling gradient reader %s survived", n.Name())
				}
			}
		}
	}
	// IDs must be dense and consistent.
	for i, n := range g.Nodes() {
		if n.ID() != i {
			t.Fatalf("node %s has id %d at position %d", n.Name(), n.ID(), i)
		}
	}
	// The kept graph still resolves names.
	if _, err := g.Node("loss"); err != nil {
		t.Error("loss lookup failed after prune")
	}
	if _, err := g.Node("apply"); err != nil {
		t.Error("apply lookup failed after prune")
	}
}

func TestPruneKeepsControlDependencies(t *testing.T) {
	b := NewBuilder()
	a := b.Placeholder("a", Static(tensor.Float32, 1))
	side := b.Identity("side", a)
	sink := b.Group("sink", side) // control edge sink -> side
	b.Identity("dead", a)
	b.Prune(sink)
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Node("side"); err != nil {
		t.Error("control dependency target pruned")
	}
	if _, err := g.Node("dead"); !errors.Is(err, ErrNotFound) {
		t.Error("dead node survived")
	}
}

func TestPruneNilKeep(t *testing.T) {
	b := NewBuilder()
	b.Placeholder("a", Static(tensor.Float32, 1))
	b.Prune(nil)
	if _, err := b.Finish(); !errors.Is(err, ErrBadGraph) {
		t.Errorf("nil keep: %v", err)
	}
}

func TestStatefulNodes(t *testing.T) {
	b := NewBuilder()
	v := b.Variable("v", Static(tensor.Float32, 2))
	g := b.Placeholder("g", Static(tensor.Float32, 2))
	b.ApplySGD("a1", v, g, 0.1)
	v2 := b.Variable("v2", Static(tensor.Float32, 2))
	b.ApplyMomentum("a2", v2, g, 0.1, 0.9)
	if got := len(b.StatefulNodes()); got != 2 {
		t.Errorf("stateful nodes = %d, want 2", got)
	}
	gr, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(gr.StatefulNodes()); got != 2 {
		t.Errorf("graph stateful nodes = %d, want 2", got)
	}
}

// TestPrunedTrainingStillConverges: pruning must not change the math.
func TestPrunedTrainingStillConverges(t *testing.T) {
	build := func(prune bool) (*Graph, *Node, *Node) {
		b := NewBuilder()
		w := b.Variable("w", Static(tensor.Float32, 4, 3))
		x := b.Placeholder("x", Static(tensor.Float32, 4, 4))
		labels := b.Placeholder("labels", Static(tensor.Int32, 4))
		loss := b.SoftmaxXent("loss", b.MatMul("mm", x, w), labels)
		grads, err := Gradients(b, loss, []*Node{w})
		if err != nil {
			t.Fatal(err)
		}
		apply := b.ApplySGD("apply", w, grads[w], 0.5)
		if prune {
			b.Prune(loss, apply)
		}
		g, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return g, loss, apply
	}
	g1, _, _ := build(false)
	g2, _, _ := build(true)
	if len(g2.Nodes()) >= len(g1.Nodes()) {
		t.Fatalf("pruned graph not smaller: %d vs %d", len(g2.Nodes()), len(g1.Nodes()))
	}
}

// TestForwardOnly pins the serving guard: stateful graphs are rejected
// with ErrBadGraph naming the offending update; pure forward graphs pass.
func TestForwardOnly(t *testing.T) {
	b := NewBuilder()
	x := b.Placeholder("x", Static(tensor.Float32, 2, 2))
	w := b.Variable("w", Static(tensor.Float32, 2, 2))
	b.MatMul("y", x, w)
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := ForwardOnly(g); err != nil {
		t.Fatalf("forward graph rejected: %v", err)
	}

	b2 := NewBuilder()
	x2 := b2.Placeholder("x", Static(tensor.Float32, 2, 2))
	w2 := b2.Variable("w", Static(tensor.Float32, 2, 2))
	y2 := b2.MatMul("y", x2, w2)
	b2.ApplySGD("apply_w", w2, y2, 0.1)
	g2, err := b2.Finish()
	if err != nil {
		t.Fatal(err)
	}
	err = ForwardOnly(g2)
	if !errors.Is(err, ErrBadGraph) {
		t.Fatalf("stateful graph passed ForwardOnly: %v", err)
	}
	if !strings.Contains(err.Error(), "apply_w") || !strings.Contains(err.Error(), `"w"`) {
		t.Fatalf("error does not name the offending update: %v", err)
	}
}
