// Package rpc is a compact gRPC-like remote procedure call library: unary
// calls multiplexed over one connection, a method registry on the server,
// and the structural costs of the RPC abstraction the paper argues against —
// every request and response is serialized into a fresh buffer, travels
// through the transport's in-library buffers, and is copied out on arrival.
// It runs over any transport.Network, which is how the gRPC.TCP and
// gRPC.RDMA baselines are formed.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/transport"
)

// Errors returned by the client and server.
var (
	ErrClosed   = errors.New("rpc: closed")
	ErrRemote   = errors.New("rpc: remote handler error")
	ErrNoMethod = errors.New("rpc: no such method")
	errBadFrame = errors.New("rpc: malformed frame")
)

const (
	kindRequest  byte = 1
	kindResponse byte = 2
)

// Handler serves one method. req is owned by the handler; the returned
// response is copied onto the wire.
type Handler func(req []byte) ([]byte, error)

// Server dispatches inbound calls to registered handlers.
type Server struct {
	listener transport.Listener

	mu       sync.Mutex
	handlers map[string]Handler
	conns    map[transport.Conn]struct{}
	closed   bool

	wg sync.WaitGroup
}

// NewServer wraps a listener. Call Register then Start.
func NewServer(l transport.Listener) *Server {
	return &Server{
		listener: l,
		handlers: make(map[string]Handler),
		conns:    make(map[transport.Conn]struct{}),
	}
}

// Register installs a handler for method. Registration after Start is safe.
func (s *Server) Register(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// Start accepts connections on a background goroutine until Close.
func (s *Server) Start() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := s.listener.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			if s.closed {
				s.mu.Unlock()
				conn.Close()
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.serveConn(conn)
			}()
		}
	}()
}

func (s *Server) serveConn(conn transport.Conn) {
	defer conn.Close()
	var sendMu sync.Mutex
	for {
		frame, err := conn.Recv()
		if err != nil {
			return
		}
		id, method, body, err := decodeRequest(frame)
		if err != nil {
			return // protocol violation: drop the connection
		}
		s.mu.Lock()
		h := s.handlers[method]
		s.mu.Unlock()
		// Serve concurrently: deep-learning workloads push many tensors in
		// flight on one channel.
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			var resp []byte
			var herr error
			if h == nil {
				herr = fmt.Errorf("%w: %q", ErrNoMethod, method)
			} else {
				resp, herr = safeCall(h, body)
			}
			out := encodeResponse(id, resp, herr)
			sendMu.Lock()
			err := conn.Send(out)
			sendMu.Unlock()
			_ = err // peer gone: nothing to do
		}()
	}
}

// Addr returns the listener's dialable address.
func (s *Server) Addr() string { return s.listener.Addr() }

// Close stops accepting, tears down live connections, and waits for
// handlers to finish.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]transport.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.listener.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

// Client is a multiplexing RPC client over one connection.
type Client struct {
	conn transport.Conn

	sendMu sync.Mutex

	mu      sync.Mutex
	pending map[uint64]chan result
	nextID  uint64
	err     error

	wg sync.WaitGroup
}

type result struct {
	payload []byte
	err     error
}

// Dial connects to a server address on the given network.
func Dial(net transport.Network, addr string) (*Client, error) {
	conn, err := net.Dial(addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, pending: make(map[uint64]chan result)}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.recvLoop()
	}()
	return c, nil
}

func (c *Client) recvLoop() {
	for {
		frame, err := c.conn.Recv()
		if err != nil {
			c.failAll(ErrClosed)
			return
		}
		id, body, rerr, err := decodeResponse(frame)
		if err != nil {
			c.failAll(err)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if ok {
			ch <- result{payload: body, err: rerr}
		}
	}
}

func (c *Client) failAll(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
	}
	for id, ch := range c.pending {
		ch <- result{err: err}
		delete(c.pending, id)
	}
}

// Call performs a unary RPC and blocks for the response.
func (c *Client) Call(method string, req []byte) ([]byte, error) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	id := c.nextID
	ch := make(chan result, 1)
	c.pending[id] = ch
	c.mu.Unlock()

	frame := encodeRequest(id, method, req)
	c.sendMu.Lock()
	err := c.conn.Send(frame)
	c.sendMu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, err
	}
	res := <-ch
	return res.payload, res.err
}

// Close tears the connection down; in-flight calls fail with ErrClosed.
func (c *Client) Close() {
	c.conn.Close()
	c.failAll(ErrClosed)
	c.wg.Wait()
}

// safeCall shields the server from a panicking handler: the panic becomes
// an error response instead of tearing the whole process down (a server
// must outlive one bad request).
func safeCall(h Handler, body []byte) (resp []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			resp, err = nil, fmt.Errorf("%w: handler panic: %v", ErrRemote, r)
		}
	}()
	return h(body)
}

func encodeRequest(id uint64, method string, body []byte) []byte {
	buf := make([]byte, 0, 1+8+2+len(method)+len(body))
	buf = append(buf, kindRequest)
	buf = binary.LittleEndian.AppendUint64(buf, id)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(method)))
	buf = append(buf, method...)
	return append(buf, body...)
}

func decodeRequest(frame []byte) (id uint64, method string, body []byte, err error) {
	if len(frame) < 11 || frame[0] != kindRequest {
		return 0, "", nil, errBadFrame
	}
	id = binary.LittleEndian.Uint64(frame[1:])
	mlen := int(binary.LittleEndian.Uint16(frame[9:]))
	if len(frame) < 11+mlen {
		return 0, "", nil, errBadFrame
	}
	return id, string(frame[11 : 11+mlen]), frame[11+mlen:], nil
}

func encodeResponse(id uint64, body []byte, herr error) []byte {
	status := byte(0)
	if herr != nil {
		status = 1
		body = []byte(herr.Error())
	}
	buf := make([]byte, 0, 1+8+1+len(body))
	buf = append(buf, kindResponse)
	buf = binary.LittleEndian.AppendUint64(buf, id)
	buf = append(buf, status)
	return append(buf, body...)
}

func decodeResponse(frame []byte) (id uint64, body []byte, rerr error, err error) {
	if len(frame) < 10 || frame[0] != kindResponse {
		return 0, nil, nil, errBadFrame
	}
	id = binary.LittleEndian.Uint64(frame[1:])
	if frame[9] != 0 {
		return id, nil, fmt.Errorf("%w: %s", ErrRemote, string(frame[10:])), nil
	}
	body = frame[10:]
	if body == nil {
		body = []byte{}
	}
	return id, body, nil, nil
}
