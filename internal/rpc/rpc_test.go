package rpc

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/rdma"
	"repro/internal/transport"
	"repro/internal/wire"
)

func pipeServer(t *testing.T) (*Server, transport.Network) {
	t.Helper()
	net := transport.NewPipeNetwork().Network()
	l, err := net.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(l)
	s.Start()
	t.Cleanup(s.Close)
	return s, net
}

func TestCallBasic(t *testing.T) {
	s, net := pipeServer(t)
	s.Register("add1", func(req []byte) ([]byte, error) {
		out := make([]byte, len(req))
		for i, b := range req {
			out[i] = b + 1
		}
		return out, nil
	})
	c, err := Dial(net, s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call("add1", []byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, []byte{2, 3, 4}) {
		t.Errorf("resp = %v", resp)
	}
}

func TestCallNoMethod(t *testing.T) {
	s, net := pipeServer(t)
	c, _ := Dial(net, s.Addr())
	defer c.Close()
	_, err := c.Call("missing", nil)
	if !errors.Is(err, ErrRemote) || !strings.Contains(err.Error(), "missing") {
		t.Errorf("err = %v", err)
	}
}

func TestCallHandlerError(t *testing.T) {
	s, net := pipeServer(t)
	s.Register("boom", func(req []byte) ([]byte, error) {
		return nil, fmt.Errorf("kaboom %s", req)
	})
	c, _ := Dial(net, s.Addr())
	defer c.Close()
	_, err := c.Call("boom", []byte("now"))
	if !errors.Is(err, ErrRemote) || !strings.Contains(err.Error(), "kaboom now") {
		t.Errorf("err = %v", err)
	}
}

func TestEmptyRequestAndResponse(t *testing.T) {
	s, net := pipeServer(t)
	s.Register("nop", func(req []byte) ([]byte, error) { return nil, nil })
	c, _ := Dial(net, s.Addr())
	defer c.Close()
	resp, err := c.Call("nop", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != 0 {
		t.Errorf("resp = %v", resp)
	}
}

func TestConcurrentCallsMultiplexed(t *testing.T) {
	s, net := pipeServer(t)
	s.Register("echo", func(req []byte) ([]byte, error) { return req, nil })
	c, _ := Dial(net, s.Addr())
	defer c.Close()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				msg := []byte(fmt.Sprintf("g%d-i%d", g, i))
				resp, err := c.Call("echo", msg)
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(resp, msg) {
					t.Errorf("got %q want %q", resp, msg)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestClientCloseFailsInflight(t *testing.T) {
	s, net := pipeServer(t)
	block := make(chan struct{})
	s.Register("hang", func(req []byte) ([]byte, error) {
		<-block
		return nil, nil
	})
	defer close(block)
	c, _ := Dial(net, s.Addr())
	done := make(chan error, 1)
	go func() {
		_, err := c.Call("hang", nil)
		done <- err
	}()
	// Let the call get onto the wire, then close.
	c.Close()
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Errorf("in-flight call after close: %v", err)
	}
	if _, err := c.Call("hang", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("call after close: %v", err)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	s, _ := pipeServer(t)
	s.Close()
	s.Close()
}

func TestTensorMessageOverRPC(t *testing.T) {
	// The actual baseline usage: serialize a tensor, call, deserialize.
	s, net := pipeServer(t)
	s.Register("tensor.push", func(req []byte) ([]byte, error) {
		var msg wire.TensorMessage
		if err := msg.Unmarshal(req); err != nil {
			return nil, err
		}
		if msg.Name != "grad/w0" || len(msg.Payload) != 4096 {
			return nil, fmt.Errorf("unexpected message %q/%d", msg.Name, len(msg.Payload))
		}
		ack := wire.TensorMessage{Name: msg.Name, Seq: msg.Seq}
		return ack.Marshal(), nil
	})
	c, _ := Dial(net, s.Addr())
	defer c.Close()
	msg := wire.TensorMessage{
		Name: "grad/w0", DType: 1, Shape: []int64{32, 32},
		Payload: make([]byte, 4096), Seq: 3,
	}
	resp, err := c.Call("tensor.push", msg.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	var ack wire.TensorMessage
	if err := ack.Unmarshal(resp); err != nil {
		t.Fatal(err)
	}
	if ack.Name != "grad/w0" || ack.Seq != 3 {
		t.Errorf("ack = %+v", ack)
	}
}

func TestRPCOverAllTransports(t *testing.T) {
	// The same RPC layer must run over pipe, TCP, and the RDMA ring —
	// that is what makes gRPC.TCP and gRPC.RDMA the same code path with
	// different substrates.
	fabric := rdma.NewFabric()
	devA, err := rdma.CreateDevice(fabric, rdma.Config{Endpoint: "cli:1"})
	if err != nil {
		t.Fatal(err)
	}
	devB, err := rdma.CreateDevice(fabric, rdma.Config{Endpoint: "srv:1"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { devA.Close(); devB.Close() })
	ringCfg := transport.RingConfig{Slots: 8, SlotSize: 8192}
	nets := map[string]struct {
		listen transport.Network
		dial   transport.Network
	}{
		"pipe": func() struct{ listen, dial transport.Network } {
			n := transport.NewPipeNetwork().Network()
			return struct{ listen, dial transport.Network }{n, n}
		}(),
		"tcp": {transport.TCPNetwork(), transport.TCPNetwork()},
		"ring": {
			transport.RingNetwork(devB, ringCfg),
			transport.RingNetwork(devA, ringCfg),
		},
	}
	for name, pair := range nets {
		t.Run(name, func(t *testing.T) {
			l, err := pair.listen.Listen("")
			if err != nil {
				t.Fatal(err)
			}
			s := NewServer(l)
			s.Register("sum", func(req []byte) ([]byte, error) {
				var total byte
				for _, b := range req {
					total += b
				}
				return []byte{total}, nil
			})
			s.Start()
			defer s.Close()
			c, err := Dial(pair.dial, s.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			resp, err := c.Call("sum", []byte{1, 2, 3, 4})
			if err != nil {
				t.Fatal(err)
			}
			if len(resp) != 1 || resp[0] != 10 {
				t.Errorf("resp = %v", resp)
			}
			// A payload large enough to fragment on the ring.
			big := make([]byte, 100_000)
			var want byte
			for i := range big {
				big[i] = byte(i)
				want += byte(i)
			}
			resp, err = c.Call("sum", big)
			if err != nil {
				t.Fatal(err)
			}
			if resp[0] != want {
				t.Errorf("big sum = %d, want %d", resp[0], want)
			}
		})
	}
}

func BenchmarkRPCCall(b *testing.B) {
	net := transport.NewPipeNetwork().Network()
	l, _ := net.Listen("")
	s := NewServer(l)
	s.Register("echo", func(req []byte) ([]byte, error) { return req, nil })
	s.Start()
	defer s.Close()
	c, _ := Dial(net, s.Addr())
	defer c.Close()
	payload := make([]byte, 64<<10)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call("echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}

func TestHandlerPanicBecomesError(t *testing.T) {
	s, net := pipeServer(t)
	s.Register("explode", func(req []byte) ([]byte, error) {
		panic("boom")
	})
	s.Register("fine", func(req []byte) ([]byte, error) { return []byte("ok"), nil })
	c, _ := Dial(net, s.Addr())
	defer c.Close()
	_, err := c.Call("explode", nil)
	if !errors.Is(err, ErrRemote) || !strings.Contains(err.Error(), "panic") {
		t.Errorf("panic response = %v", err)
	}
	// The server survives and keeps serving.
	resp, err := c.Call("fine", nil)
	if err != nil || string(resp) != "ok" {
		t.Errorf("after panic: %q, %v", resp, err)
	}
}
