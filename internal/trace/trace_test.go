package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestSpanAndJSON(t *testing.T) {
	r := NewRecorder(0)
	end := r.Span("worker0", "exec", "op", "MatMul", map[string]any{"iter": 3})
	time.Sleep(200 * time.Microsecond)
	end()
	r.Instant("worker0", "exec", "marker", "flag-set", nil)
	if r.Len() != 2 {
		t.Fatalf("events = %d", r.Len())
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []Event
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("decoded %d events", len(events))
	}
	span := events[0]
	if span.Name != "MatMul" || span.Phase != "X" || span.PID != "worker0" {
		t.Errorf("span = %+v", span)
	}
	if span.Dur < 100 { // at least the sleep, in microseconds
		t.Errorf("span duration = %v us", span.Dur)
	}
	if events[1].Phase != "i" {
		t.Errorf("instant phase = %q", events[1].Phase)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Span("a", "b", "c", "d", nil)()
	r.Instant("a", "b", "c", "d", nil)
	if r.Len() != 0 || r.Events() != nil {
		t.Error("nil recorder should be inert")
	}
	if err := r.WriteJSON(&bytes.Buffer{}); err == nil {
		t.Error("nil recorder WriteJSON should fail")
	}
}

func TestEventCap(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 10; i++ {
		r.Instant("p", "t", "c", "e", nil)
	}
	// 3 real events plus the one reserved cap-reached marker.
	if r.Len() != 4 {
		t.Errorf("events = %d, want 3 + drop marker", r.Len())
	}
	if r.Dropped() != 7 {
		t.Errorf("dropped = %d, want 7", r.Dropped())
	}
}

// TestRecorderOverflowIsVisible is the regression test for the recorder
// silently dropping events past the cap: overflowing a small-cap recorder
// must (a) count every dropped event, (b) leave exactly one instant marker
// in the timeline at the moment of first drop, and (c) still emit valid
// trace JSON.
func TestRecorderOverflowIsVisible(t *testing.T) {
	const cap, total = 5, 50
	r := NewRecorder(cap)
	for i := 0; i < total/2; i++ {
		r.Span("p", "t", "op", "e", nil)()
		r.Instant("p", "t", "m", "i", nil)
	}
	if got, want := r.Dropped(), int64(total-cap); got != want {
		t.Errorf("Dropped() = %d, want %d", got, want)
	}
	events := r.Events()
	if len(events) != cap+1 {
		t.Fatalf("len(events) = %d, want cap+marker = %d", len(events), cap+1)
	}
	var markers int
	for _, e := range events {
		if e.Category == "trace" && e.Phase == "i" {
			markers++
		}
	}
	if markers != 1 {
		t.Errorf("drop markers = %d, want exactly 1", markers)
	}
	if events[cap].Category != "trace" {
		t.Errorf("marker not at first-drop position: %+v", events[cap])
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded []Event
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("overflowed trace is not valid JSON: %v", err)
	}
	if len(decoded) != cap+1 {
		t.Errorf("decoded %d events, want %d", len(decoded), cap+1)
	}

	// A recorder that never overflowed reports zero and leaves no marker.
	clean := NewRecorder(100)
	clean.Instant("p", "t", "c", "e", nil)
	if clean.Dropped() != 0 || clean.Len() != 1 {
		t.Errorf("clean recorder: dropped=%d len=%d", clean.Dropped(), clean.Len())
	}
}

func TestConcurrentSpans(t *testing.T) {
	r := NewRecorder(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				end := r.Span("p", "t", "c", "e", nil)
				end()
			}
		}()
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Errorf("events = %d, want 800", r.Len())
	}
}
