package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestSpanAndJSON(t *testing.T) {
	r := NewRecorder(0)
	end := r.Span("worker0", "exec", "op", "MatMul", map[string]any{"iter": 3})
	time.Sleep(200 * time.Microsecond)
	end()
	r.Instant("worker0", "exec", "marker", "flag-set", nil)
	if r.Len() != 2 {
		t.Fatalf("events = %d", r.Len())
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []Event
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("decoded %d events", len(events))
	}
	span := events[0]
	if span.Name != "MatMul" || span.Phase != "X" || span.PID != "worker0" {
		t.Errorf("span = %+v", span)
	}
	if span.Dur < 100 { // at least the sleep, in microseconds
		t.Errorf("span duration = %v us", span.Dur)
	}
	if events[1].Phase != "i" {
		t.Errorf("instant phase = %q", events[1].Phase)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Span("a", "b", "c", "d", nil)()
	r.Instant("a", "b", "c", "d", nil)
	if r.Len() != 0 || r.Events() != nil {
		t.Error("nil recorder should be inert")
	}
	if err := r.WriteJSON(&bytes.Buffer{}); err == nil {
		t.Error("nil recorder WriteJSON should fail")
	}
}

func TestEventCap(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 10; i++ {
		r.Instant("p", "t", "c", "e", nil)
	}
	if r.Len() != 3 {
		t.Errorf("events = %d, want capped at 3", r.Len())
	}
}

func TestConcurrentSpans(t *testing.T) {
	r := NewRecorder(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				end := r.Span("p", "t", "c", "e", nil)
				end()
			}
		}()
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Errorf("events = %d, want 800", r.Len())
	}
}
