// Package trace records execution timelines in the Chrome trace-event
// format (chrome://tracing, Perfetto): one process lane per server task,
// one duration event per operator execution or tensor transfer. Attach a
// Recorder to an executor (exec.Config.Trace) or a cluster
// (distributed.Config.Trace) and dump the JSON after a run to see where
// iterations spend their time — which receive operators poll, how sends
// overlap compute, where the PS serializes.
package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// ErrTrace wraps recorder failures.
var ErrTrace = errors.New("trace: error")

// Event is one trace-event-format record (the "X" complete-event form).
type Event struct {
	Name     string  `json:"name"`
	Category string  `json:"cat"`
	Phase    string  `json:"ph"`
	TS       float64 `json:"ts"`  // microseconds since recorder start
	Dur      float64 `json:"dur"` // microseconds
	PID      string  `json:"pid"` // server task
	TID      string  `json:"tid"` // lane within the task
	Args     any     `json:"args,omitempty"`
}

// Recorder accumulates events; it is safe for concurrent use and cheap
// enough to leave attached during tests.
type Recorder struct {
	mu      sync.Mutex
	start   time.Time
	events  []Event
	limit   int
	dropped int64
}

// NewRecorder returns a recorder with the given event cap (0 = 1<<20).
// Beyond the cap new events are dropped, keeping memory bounded on long
// runs; drops are counted (Dropped) and the first one leaves an instant
// marker event in the timeline.
func NewRecorder(limit int) *Recorder {
	if limit <= 0 {
		limit = 1 << 20
	}
	return &Recorder{start: time.Now(), limit: limit}
}

// Span starts a duration event; the returned func ends it. pid should be
// the server task, tid the lane (e.g. "exec", "comm"), and args may carry
// small metadata (iteration, bytes).
func (r *Recorder) Span(pid, tid, category, name string, args any) func() {
	if r == nil {
		return func() {}
	}
	begin := time.Now()
	return func() {
		end := time.Now()
		r.mu.Lock()
		defer r.mu.Unlock()
		if len(r.events) >= r.limit {
			r.dropLocked()
			return
		}
		r.events = append(r.events, Event{
			Name: name, Category: category, Phase: "X",
			TS:  float64(begin.Sub(r.start).Nanoseconds()) / 1e3,
			Dur: float64(end.Sub(begin).Nanoseconds()) / 1e3,
			PID: pid, TID: tid, Args: args,
		})
	}
}

// Instant records a zero-duration marker.
func (r *Recorder) Instant(pid, tid, category, name string, args any) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.events) >= r.limit {
		r.dropLocked()
		return
	}
	r.events = append(r.events, Event{
		Name: name, Category: category, Phase: "i",
		TS:  float64(time.Since(r.start).Nanoseconds()) / 1e3,
		PID: pid, TID: tid, Args: args,
	})
}

// dropLocked counts one event lost to the cap. The first drop leaves a
// visible scar in the timeline — an instant marker event, using the one
// slot reserved past the cap — so a truncated trace announces itself in
// the viewer instead of silently looking complete. r.mu must be held.
func (r *Recorder) dropLocked() {
	if r.dropped == 0 {
		r.events = append(r.events, Event{
			Name: "trace: event cap reached, later events dropped", Category: "trace",
			Phase: "i",
			TS:    float64(time.Since(r.start).Nanoseconds()) / 1e3,
			PID:   "trace", TID: "recorder",
			Args: map[string]any{"limit": r.limit},
		})
	}
	r.dropped++
}

// Dropped reports how many events were lost to the cap (the cap-reached
// marker itself is not counted).
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Len reports the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Events returns a snapshot of the recorded events.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// WriteJSON emits the trace as a Chrome trace-event JSON array, loadable in
// chrome://tracing or https://ui.perfetto.dev.
func (r *Recorder) WriteJSON(w io.Writer) error {
	if r == nil {
		return fmt.Errorf("%w: nil recorder", ErrTrace)
	}
	enc := json.NewEncoder(w)
	r.mu.Lock()
	events := append([]Event(nil), r.events...)
	r.mu.Unlock()
	return enc.Encode(events)
}
