package chaos

import (
	"errors"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/rdma"
)

func newPair(t *testing.T) (*rdma.Fabric, *rdma.Device, *rdma.Device) {
	t.Helper()
	f := rdma.NewFabric()
	a, err := rdma.CreateDevice(f, rdma.Config{Endpoint: "a:1"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := rdma.CreateDevice(f, rdma.Config{Endpoint: "b:1"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return f, a, b
}

// Same seed must make the same decision sequence; a different seed should
// diverge somewhere.
func TestDecisionsDeterministic(t *testing.T) {
	sample := func(seed int64) []bool {
		inj := New(Plan{Seed: seed, DropRate: 0.3})
		hooks := inj.Hooks()
		out := make([]bool, 200)
		for k := range out {
			out[k] = hooks.TransferFault(rdma.OpWrite, 64) != nil
		}
		return out
	}
	a, b := sample(42), sample(42)
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("decision %d differs across runs with the same seed", k)
		}
	}
	c := sample(43)
	same := true
	for k := range a {
		if a[k] != c[k] {
			same = false
			break
		}
	}
	if same {
		t.Error("200 decisions identical across different seeds")
	}
}

func TestDropRateRoughlyHonored(t *testing.T) {
	inj := New(Plan{Seed: 7, DropRate: 0.25})
	hooks := inj.Hooks()
	const n = 4000
	drops := 0
	for k := 0; k < n; k++ {
		if err := hooks.TransferFault(rdma.OpWrite, 8); err != nil {
			drops++
			if !errors.Is(err, rdma.ErrInjected) {
				t.Fatalf("drop error %v does not wrap ErrInjected", err)
			}
			if !rdma.Retryable(err) {
				t.Fatalf("drop error %v not classified retryable", err)
			}
		}
	}
	got := float64(drops) / n
	if got < 0.20 || got > 0.30 {
		t.Errorf("drop rate %.3f, want ~0.25", got)
	}
	c := inj.Counters()
	if c.Injected[Drop] != int64(drops) || c.Checked[Drop] != n {
		t.Errorf("counters = %+v, want %d/%d drops", c, drops, n)
	}
}

func TestUnavailableWrapsUnreachable(t *testing.T) {
	inj := New(Plan{Seed: 1, UnavailableRate: 1})
	err := inj.Hooks().TransferFault(rdma.OpRead, 8)
	if !errors.Is(err, rdma.ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}

func TestInjectedFaultsFailTransfers(t *testing.T) {
	f, a, b := newPair(t)
	m := &metrics.Comm{}
	inj := New(Plan{Seed: 3, DropRate: 1, Metrics: m})
	inj.Install(f)
	defer inj.Stop()

	src, _ := a.AllocateMemRegion(64)
	dst, _ := b.AllocateMemRegion(64)
	ch, _ := a.GetChannel("b:1", 0)
	err := ch.MemcpySync(0, src, 0, dst.Descriptor(), 64, rdma.OpWrite)
	if !errors.Is(err, rdma.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if m.Snapshot().FaultsInjected == 0 {
		t.Error("metrics sink saw no injected faults")
	}
	// Stop clears the hooks: transfers work again.
	inj.Stop()
	if err := ch.MemcpySync(0, src, 0, dst.Descriptor(), 64, rdma.OpWrite); err != nil {
		t.Fatalf("after Stop: %v", err)
	}
}

func TestPartitionScriptAppliesAndHeals(t *testing.T) {
	f, a, b := newPair(t)
	inj := New(Plan{Seed: 1, Script: []Event{
		{At: 0, A: "a:1", B: "b:1", Heal: 60 * time.Millisecond},
	}})
	inj.Install(f)
	inj.Start()
	defer inj.Stop()

	src, _ := a.AllocateMemRegion(8)
	dst, _ := b.AllocateMemRegion(8)
	ch, _ := a.GetChannel("b:1", 0)

	// Wait for the partition to apply, then observe unreachability.
	deadline := time.Now().Add(2 * time.Second)
	for {
		err := ch.MemcpySync(0, src, 0, dst.Descriptor(), 8, rdma.OpWrite)
		if errors.Is(err, rdma.ErrUnreachable) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("partition never applied")
		}
		time.Sleep(time.Millisecond)
	}
	// And the heal.
	deadline = time.Now().Add(2 * time.Second)
	for {
		err := ch.MemcpySync(0, src, 0, dst.Descriptor(), 8, rdma.OpWrite)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("partition never healed: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	if inj.Counters().Injected[PartitionEvent] == 0 {
		t.Error("no partition events counted")
	}
}

func TestStopHealsStandingPartition(t *testing.T) {
	f, a, b := newPair(t)
	inj := New(Plan{Script: []Event{{At: 0, A: "a:1", B: "b:1"}}}) // never heals
	inj.Install(f)
	inj.Start()

	src, _ := a.AllocateMemRegion(8)
	dst, _ := b.AllocateMemRegion(8)
	ch, _ := a.GetChannel("b:1", 0)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := ch.MemcpySync(0, src, 0, dst.Descriptor(), 8, rdma.OpWrite); errors.Is(err, rdma.ErrUnreachable) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("partition never applied")
		}
		time.Sleep(time.Millisecond)
	}
	inj.Stop()
	if err := ch.MemcpySync(0, src, 0, dst.Descriptor(), 8, rdma.OpWrite); err != nil {
		t.Fatalf("after Stop: %v", err)
	}
}

// Reordered writes expose the hazard the ordered-DMA guarantee prevents:
// the flag word lands before the payload. The emulator must inject it on
// demand (consumers are tested against it elsewhere).
func TestReorderMakesFlagFirstWrites(t *testing.T) {
	f, a, b := newPair(t)
	inj := New(Plan{Seed: 9, ReorderRate: 1})
	inj.Install(f)
	defer inj.Stop()

	const payload = 1 << 16
	recvMR, _ := b.AllocateMemRegion(rdma.StaticSlotSize(payload))
	recv, _ := rdma.NewStaticReceiver(recvMR, 0, payload)
	sendMR, _ := a.AllocateMemRegion(rdma.StaticSlotSize(payload))
	ch, _ := a.GetChannel("b:1", 0)
	send, _ := rdma.NewStaticSender(ch, sendMR, 0, recv.Desc())

	sawStale := false
	for iter := 0; iter < 50 && !sawStale; iter++ {
		fill := byte(iter + 1)
		var want uint64
		for k := 0; k < 8; k++ {
			want = want<<8 | uint64(fill)
		}
		buf := send.Buffer()
		for k := range buf {
			buf[k] = fill
		}
		done := make(chan error, 1)
		if err := send.Send(func(err error) { done <- err }); err != nil {
			t.Fatal(err)
		}
		// Poll concurrently with the write: under reordering the flag can
		// be visible while the payload still holds the previous iteration.
		// The payload word is read atomically (reorderedCopy stores the
		// body with word stores) so the stale window is observable without
		// a Go-level data race.
		deadline := time.Now().Add(5 * time.Second)
		for !recv.Poll() {
			if time.Now().After(deadline) {
				t.Fatal("flag never arrived")
			}
		}
		if recvMR.LoadWord(0) != want {
			sawStale = true
		}
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		// After the completion callback the full payload is in place.
		if got := recv.Payload()[0]; got != fill {
			t.Fatalf("payload[0] = %d after completion, want %d", got, fill)
		}
		recv.Consume()
	}
	if !sawStale {
		t.Log("no stale payload observed (scheduling-dependent); reorder decisions:",
			inj.Counters().Injected[Reorder])
	}
	if inj.Counters().Injected[Reorder] == 0 {
		t.Error("no reorder faults injected at rate 1")
	}
}

// TestCrashScriptFiresAndRestarts: a Crash event must invoke the plan's
// Crash callback at its scheduled time and, when Heal is set, the Restart
// callback after the restart delay — both counted as CrashEvents.
func TestCrashScriptFiresAndRestarts(t *testing.T) {
	f, _, _ := newPair(t)
	crashed := make(chan string, 1)
	restarted := make(chan string, 1)
	inj := New(Plan{
		Script:  []Event{{At: 5 * time.Millisecond, Crash: "b:1", Heal: 20 * time.Millisecond}},
		Crash:   func(task string) { crashed <- task },
		Restart: func(task string) { restarted <- task },
	})
	inj.Install(f)
	inj.Start()
	defer inj.Stop()

	select {
	case task := <-crashed:
		if task != "b:1" {
			t.Fatalf("crashed %q, want b:1", task)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("crash callback never fired")
	}
	select {
	case task := <-restarted:
		if task != "b:1" {
			t.Fatalf("restarted %q, want b:1", task)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("restart callback never fired")
	}
	if n := inj.Counters().Injected[CrashEvent]; n != 2 {
		t.Errorf("CrashEvent count = %d, want 2 (crash + restart)", n)
	}
}

// TestCrashScriptStopCancelsPending: Stop before the event's time must
// suppress both callbacks.
func TestCrashScriptStopCancelsPending(t *testing.T) {
	f, _, _ := newPair(t)
	fired := make(chan string, 2)
	inj := New(Plan{
		Script:  []Event{{At: 50 * time.Millisecond, Crash: "b:1", Heal: time.Millisecond}},
		Crash:   func(task string) { fired <- task },
		Restart: func(task string) { fired <- task },
	})
	inj.Install(f)
	inj.Start()
	inj.Stop()
	select {
	case task := <-fired:
		t.Fatalf("callback for %q fired after Stop", task)
	case <-time.After(120 * time.Millisecond):
	}
	if n := inj.Counters().Injected[CrashEvent]; n != 0 {
		t.Errorf("CrashEvent count = %d after Stop, want 0", n)
	}
}
