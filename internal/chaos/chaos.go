// Package chaos is the fault-injection subsystem for the emulated RDMA
// fabric. It turns the rdma.Hooks seam into a seeded, deterministic fault
// schedule: transfer drops, transient peer unavailability, artificial
// latency, duplicated and delayed completions, flag-write reordering, and
// two-sided message drops, plus a timed partition/heal script driven
// against the fabric itself.
//
// Determinism: every probabilistic decision is a pure function of
// (plan seed, fault kind, decision index). The i-th decision of a given
// kind is therefore the same across runs regardless of goroutine
// interleaving; what varies is only which work request draws which index.
// That is enough to make chaos test failures reproducible from a seed
// while the fabric stays fully concurrent.
package chaos

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/rdma"
)

// Fault enumerates the injectable fault kinds (the taxonomy DESIGN.md §8
// documents).
type Fault int

// The injectable fault taxonomy.
const (
	// Drop fails a one-sided transfer before it touches memory (a
	// dropped/NAKed work request). Wraps rdma.ErrInjected: retryable.
	Drop Fault = iota
	// Unavailable fails a one-sided transfer with rdma.ErrUnreachable, a
	// transient flap of the peer rather than a standing partition.
	Unavailable
	// Delay stalls a one-sided transfer for a bounded random latency.
	Delay
	// Reorder makes a write's final word (the flag) visible before its
	// payload, violating the in-order DMA guarantee.
	Reorder
	// DupCompletion posts a transfer's completion twice.
	DupCompletion
	// DelayCompletion holds a transfer's completion back.
	DelayCompletion
	// MsgDrop fails a two-sided message send (RPC traffic).
	MsgDrop
	// ChunkDrop silently loses a semantically tagged chunk write on a lossy
	// fabric — no error, no NAK; recovery is the lossy protocol's per-tensor
	// selective retransmit (rdma.LossySender).
	ChunkDrop
	// ChunkStale counts tagged chunks the receiver's epoch guard discarded
	// (a retransmit straggling past its iteration).
	ChunkStale
	// PartitionEvent counts script-driven Partition/Heal transitions.
	PartitionEvent
	// CrashEvent counts script-driven task crashes and restarts.
	CrashEvent

	numFaults
)

func (f Fault) String() string {
	switch f {
	case Drop:
		return "drop"
	case Unavailable:
		return "unavailable"
	case Delay:
		return "delay"
	case Reorder:
		return "reorder"
	case DupCompletion:
		return "dup-completion"
	case DelayCompletion:
		return "delay-completion"
	case MsgDrop:
		return "msg-drop"
	case ChunkDrop:
		return "chunk-drop"
	case ChunkStale:
		return "chunk-stale"
	case PartitionEvent:
		return "partition-event"
	case CrashEvent:
		return "crash-event"
	default:
		return "unknown"
	}
}

// Event is one entry of a timed fault script. Two shapes:
//
//   - Partition: At after Start the pair (A, B) is partitioned; if Heal > 0
//     the partition heals that much later, otherwise it stands until Stop.
//   - Crash: At after Start the task named by Crash is killed via the
//     plan's Crash callback; if Heal > 0 the plan's Restart callback runs
//     that much later (a process-restart delay), otherwise the task stays
//     down until something external restarts it.
type Event struct {
	At    time.Duration
	A, B  string
	Heal  time.Duration
	Crash string
}

// Plan is a seeded fault schedule. Rates are per-decision probabilities in
// [0, 1]; zero disables that fault. The zero Plan injects nothing.
type Plan struct {
	// Seed makes the schedule reproducible. Plans with the same seed and
	// rates make identical decision sequences per fault kind.
	Seed int64

	// DropRate drops one-sided transfers (retryable rdma.ErrInjected).
	DropRate float64
	// UnavailableRate fails one-sided transfers with rdma.ErrUnreachable.
	UnavailableRate float64
	// DelayRate stalls one-sided transfers for up to MaxDelay.
	DelayRate float64
	// MaxDelay bounds injected latency (default 1ms when a delay rate is
	// set but no bound given).
	MaxDelay time.Duration
	// ReorderRate makes writes flag-first (payload visible after flag).
	ReorderRate float64
	// DupCompletionRate duplicates transfer completions.
	DupCompletionRate float64
	// DelayCompletionRate delays transfer completions by up to MaxDelay.
	DelayCompletionRate float64
	// MsgDropRate drops two-sided messages (RPC requests and responses).
	MsgDropRate float64
	// ChunkDropRate silently loses semantically tagged chunk writes (the
	// lossy-fabric model): the sender sees a successful completion, the
	// bytes never land, and recovery is the per-tensor selective-retransmit
	// protocol. A non-zero rate switches the hook set's Lossy mode on.
	ChunkDropRate float64
	// TargetTensor, when non-zero, restricts chunk loss to the one tensor
	// with that id — the blackhole scenario (with ChunkDropRate 1.0, every
	// chunk of exactly that tensor is lost and its edge must fail typed and
	// bounded). Filtering happens before the deterministic decision draw,
	// so the decision stream for the targeted tensor is unchanged by other
	// tensors' traffic volume.
	TargetTensor uint64

	// Script is the timed partition/heal and crash/restart sequence,
	// applied from Start.
	Script []Event

	// Crash kills the named task when a Crash event fires. The injector
	// knows fabric wiring, not cluster membership, so killing a task (close
	// its device and RPC server mid-step) is delegated to the harness —
	// typically Cluster.KillTask.
	Crash func(task string)
	// Restart restores a crashed task when its Heal delay elapses. Optional:
	// recovery-driven harnesses usually leave restart to the recovery
	// protocol and only script the kill.
	Restart func(task string)

	// Metrics, when non-nil, receives AddFaultInjected for every injected
	// fault (the aggregate counter the test harness asserts on).
	Metrics *metrics.Comm
}

// Injector owns one installed plan: it builds the rdma.Hooks, runs the
// partition script, and counts what it injected.
type Injector struct {
	plan   Plan
	fabric *rdma.Fabric

	seq      [numFaults]atomic.Uint64 // decision index per fault kind
	injected [numFaults]atomic.Int64

	mu      sync.Mutex
	timers  []*time.Timer
	parted  map[[2]string]int // active partitions, refcounted
	started bool
	stopped bool
}

// New builds an injector for the plan. Install it on a fabric, then Start
// the script.
func New(plan Plan) *Injector {
	if plan.MaxDelay <= 0 {
		plan.MaxDelay = time.Millisecond
	}
	return &Injector{plan: plan, parted: make(map[[2]string]int)}
}

// decide makes the next deterministic decision for the fault kind; draw is
// the unit-interval sample it was made from (for derived magnitudes).
func (i *Injector) decide(f Fault, rate float64) (hit bool, draw float64) {
	if rate <= 0 {
		return false, 0
	}
	n := i.seq[f].Add(1)
	draw = unitFloat(splitmix64(uint64(i.plan.Seed) ^ faultSalt(f) ^ n))
	if draw >= rate {
		return false, draw
	}
	i.injected[f].Add(1)
	if i.plan.Metrics != nil {
		i.plan.Metrics.AddFaultInjected()
	}
	return true, draw
}

// delayFor scales the draw into (0, MaxDelay].
func (i *Injector) delayFor(draw float64) time.Duration {
	d := time.Duration(draw * float64(i.plan.MaxDelay))
	if d <= 0 {
		d = time.Microsecond
	}
	return d
}

// Hooks returns the fault-injecting hook set for this plan. Install wires
// it into a fabric; tests may also compose it manually.
func (i *Injector) Hooks() rdma.Hooks {
	return rdma.Hooks{
		TransferFault: func(op rdma.Op, size int) error {
			if hit, _ := i.decide(Drop, i.plan.DropRate); hit {
				return fmt.Errorf("chaos: dropped %s of %d bytes: %w", op, size, rdma.ErrInjected)
			}
			if hit, _ := i.decide(Unavailable, i.plan.UnavailableRate); hit {
				return fmt.Errorf("chaos: peer flap on %s of %d bytes: %w", op, size, rdma.ErrUnreachable)
			}
			return nil
		},
		TransferDelay: func(op rdma.Op, size int) time.Duration {
			if hit, draw := i.decide(Delay, i.plan.DelayRate); hit {
				return i.delayFor(draw)
			}
			return 0
		},
		WriteReorder: func(op rdma.Op, size int) bool {
			hit, _ := i.decide(Reorder, i.plan.ReorderRate)
			return hit
		},
		CompletionFault: func(op rdma.Op, size int) rdma.CompletionFault {
			var cf rdma.CompletionFault
			if hit, _ := i.decide(DupCompletion, i.plan.DupCompletionRate); hit {
				cf.Duplicate = true
			}
			if hit, draw := i.decide(DelayCompletion, i.plan.DelayCompletionRate); hit {
				cf.Delay = i.delayFor(draw)
			}
			return cf
		},
		MessageFault: func(size int) error {
			if hit, _ := i.decide(MsgDrop, i.plan.MsgDropRate); hit {
				return fmt.Errorf("chaos: dropped %d-byte message: %w", size, rdma.ErrInjected)
			}
			return nil
		},
		Lossy: i.plan.ChunkDropRate > 0,
		ChunkDrop: func(tag rdma.ChunkTag, size int) bool {
			if i.plan.TargetTensor != 0 && tag.TensorID != i.plan.TargetTensor {
				return false
			}
			hit, _ := i.decide(ChunkDrop, i.plan.ChunkDropRate)
			return hit
		},
		OnChunkStale: func(tag rdma.ChunkTag) {
			i.injected[ChunkStale].Add(1)
		},
	}
}

// Install sets the injector's hooks on the fabric and binds the partition
// script to it. Safe while transfers are in flight.
func (i *Injector) Install(f *rdma.Fabric) {
	i.mu.Lock()
	i.fabric = f
	i.mu.Unlock()
	f.SetHooks(i.Hooks())
}

// Start launches the timed partition script. Call after Install.
func (i *Injector) Start() {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.started || i.fabric == nil {
		return
	}
	i.started = true
	for _, ev := range i.plan.Script {
		ev := ev
		apply := func() { i.applyPartition(ev) }
		if ev.Crash != "" {
			apply = func() { i.applyCrash(ev) }
		}
		i.timers = append(i.timers, time.AfterFunc(ev.At, apply))
	}
}

func (i *Injector) applyCrash(ev Event) {
	i.mu.Lock()
	if i.stopped {
		i.mu.Unlock()
		return
	}
	crash := i.plan.Crash
	if ev.Heal > 0 && i.plan.Restart != nil {
		restart := i.plan.Restart
		i.timers = append(i.timers, time.AfterFunc(ev.Heal, func() {
			i.mu.Lock()
			stopped := i.stopped
			i.mu.Unlock()
			if stopped {
				return
			}
			restart(ev.Crash)
			i.injected[CrashEvent].Add(1)
		}))
	}
	i.mu.Unlock()
	if crash != nil {
		crash(ev.Crash)
	}
	i.injected[CrashEvent].Add(1)
	if i.plan.Metrics != nil {
		i.plan.Metrics.AddFaultInjected()
	}
}

func (i *Injector) applyPartition(ev Event) {
	i.mu.Lock()
	if i.stopped {
		i.mu.Unlock()
		return
	}
	key := pairKey(ev.A, ev.B)
	i.parted[key]++
	f := i.fabric
	if ev.Heal > 0 {
		i.timers = append(i.timers, time.AfterFunc(ev.Heal, func() { i.healPartition(key) }))
	}
	i.mu.Unlock()
	f.Partition(ev.A, ev.B)
	i.injected[PartitionEvent].Add(1)
	if i.plan.Metrics != nil {
		i.plan.Metrics.AddFaultInjected()
	}
}

func (i *Injector) healPartition(key [2]string) {
	i.mu.Lock()
	if i.stopped || i.parted[key] == 0 {
		i.mu.Unlock()
		return
	}
	i.parted[key]--
	heal := i.parted[key] == 0
	f := i.fabric
	i.mu.Unlock()
	if heal {
		f.Heal(key[0], key[1])
	}
	i.injected[PartitionEvent].Add(1)
}

// Stop cancels pending script events, heals every partition the script
// applied, and clears the fabric's hooks so teardown runs fault-free.
func (i *Injector) Stop() {
	i.mu.Lock()
	if i.stopped {
		i.mu.Unlock()
		return
	}
	i.stopped = true
	timers := i.timers
	i.timers = nil
	f := i.fabric
	var pairs [][2]string
	for key, n := range i.parted {
		if n > 0 {
			pairs = append(pairs, key)
		}
	}
	i.parted = make(map[[2]string]int)
	i.mu.Unlock()
	for _, t := range timers {
		t.Stop()
	}
	if f != nil {
		for _, p := range pairs {
			f.Heal(p[0], p[1])
		}
		f.SetHooks(rdma.Hooks{})
	}
}

// Counters is a snapshot of injection activity per fault kind.
type Counters struct {
	// Checked counts decisions consulted; Injected counts faults fired.
	Checked, Injected map[Fault]int64
}

// Total sums injected faults across kinds.
func (c Counters) Total() int64 {
	var n int64
	for _, v := range c.Injected {
		n += v
	}
	return n
}

// Counters snapshots the per-kind decision and injection counts.
func (i *Injector) Counters() Counters {
	c := Counters{Checked: make(map[Fault]int64), Injected: make(map[Fault]int64)}
	for f := Fault(0); f < numFaults; f++ {
		if n := int64(i.seq[f].Load()); n != 0 {
			c.Checked[f] = n
		}
		if n := i.injected[f].Load(); n != 0 {
			c.Injected[f] = n
		}
	}
	return c
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// splitmix64 is the SplitMix64 mixing function: a bijective avalanche hash
// used to derive independent per-decision randomness from (seed, kind, n).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// faultSalt decorrelates the decision streams of different fault kinds.
func faultSalt(f Fault) uint64 {
	return splitmix64(0xc4a05f17 + uint64(f)*0x9e3779b97f4a7c15)
}

// unitFloat maps a hash to [0, 1).
func unitFloat(x uint64) float64 {
	return float64(x>>11) / float64(1<<53)
}
