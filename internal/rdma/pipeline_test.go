package rdma

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Tests for the pipelined send path (SendRetryFrom: staging copy overlapped
// with posted writes, lane by lane) and the doorbell-batched posting
// underneath it (MemcpyBatch).

// TestSendRetryFromParity: the pipelined copy-and-send must deliver bytes
// bit-identical to the staged single-copy path for every stripe count and
// payload size, and the doorbell accounting must cover every chunk exactly
// once.
func TestSendRetryFromParity(t *testing.T) {
	_, a, b := newStripedPair(t)
	laneChans := lanesTo(t, a, "hostB:1", 8)
	for _, size := range paritySizes {
		recvMR, err := b.AllocateMemRegion(StaticSlotSize(size))
		if err != nil {
			t.Fatal(err)
		}
		recv, err := NewStaticReceiver(recvMR, 0, size)
		if err != nil {
			t.Fatal(err)
		}
		sendMR, err := a.AllocateMemRegion(StaticSlotSize(size))
		if err != nil {
			t.Fatal(err)
		}
		sender, err := NewStaticSender(laneChans[0], sendMR, 0, recv.Desc())
		if err != nil {
			t.Fatal(err)
		}
		for _, ch := range laneChans[1:] {
			if err := sender.AddLane(ch); err != nil {
				t.Fatal(err)
			}
		}
		for stripes := 1; stripes <= 8; stripes++ {
			payload := make([]byte, size)
			fillStripePattern(payload, byte(0x50+stripes))
			var flushes, flushedChunks atomic.Int64
			opts := TransferOpts{
				Deadline: 10 * time.Second,
				Stripes:  stripes,
				OnDoorbell: func(lane, chunks int) {
					flushes.Add(1)
					flushedChunks.Add(int64(chunks))
				},
			}
			if err := sender.SendRetryFrom(payload, opts); err != nil {
				t.Fatalf("size %d stripes %d: send: %v", size, stripes, err)
			}
			if err := recv.Wait(opts); err != nil {
				t.Fatalf("size %d stripes %d: wait: %v", size, stripes, err)
			}
			if !bytes.Equal(recv.Payload(), payload) {
				t.Fatalf("size %d stripes %d: pipelined payload diverged", size, stripes)
			}
			eff := EffectiveStripes(size, stripes)
			if eff > 1 {
				// Every chunk enters the send queue through exactly one
				// doorbell flush (the pipelined path posts round by round,
				// so flushes carry one chunk each).
				if flushedChunks.Load() != int64(eff) {
					t.Fatalf("size %d stripes %d: %d chunks flushed, want %d",
						size, stripes, flushedChunks.Load(), eff)
				}
				if flushes.Load() > int64(eff) {
					t.Fatalf("size %d stripes %d: %d flushes for %d chunks",
						size, stripes, flushes.Load(), eff)
				}
			} else if flushes.Load() != 0 {
				t.Fatalf("size %d stripes %d: degenerate path rang %d doorbells",
					size, stripes, flushes.Load())
			}
			recv.Consume()
		}
		b.FreeMemRegion(recvMR)
		a.FreeMemRegion(sendMR)
	}
}

// TestSendRetryDoorbellBatchesPerLane: on the staged path (payload already
// in registered memory) every chunk is ready before the first post, so each
// lane's whole chunk group must ride one doorbell flush.
func TestSendRetryDoorbellBatchesPerLane(t *testing.T) {
	_, a, b := newStripedPair(t)
	laneChans := lanesTo(t, a, "hostB:1", 4)
	const size = 16384
	recvMR, err := b.AllocateMemRegion(StaticSlotSize(size))
	if err != nil {
		t.Fatal(err)
	}
	recv, err := NewStaticReceiver(recvMR, 0, size)
	if err != nil {
		t.Fatal(err)
	}
	sendMR, err := a.AllocateMemRegion(StaticSlotSize(size))
	if err != nil {
		t.Fatal(err)
	}
	sender, err := NewStaticSender(laneChans[0], sendMR, 0, recv.Desc())
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range laneChans[1:] {
		if err := sender.AddLane(ch); err != nil {
			t.Fatal(err)
		}
	}
	fillStripePattern(sender.Buffer(), 0x33)
	want := append([]byte(nil), sender.Buffer()...)
	var flushes atomic.Int64
	perFlush := make([]int, 0, 4)
	var mu sync.Mutex
	opts := TransferOpts{
		Deadline: 10 * time.Second,
		Stripes:  8, // 8 chunks over 4 lanes -> 2 chunks per flush
		OnDoorbell: func(lane, chunks int) {
			flushes.Add(1)
			mu.Lock()
			perFlush = append(perFlush, chunks)
			mu.Unlock()
		},
	}
	if err := sender.SendRetry(opts); err != nil {
		t.Fatal(err)
	}
	if err := recv.Wait(opts); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(recv.Payload(), want) {
		t.Fatal("staged doorbell-batched payload diverged")
	}
	if flushes.Load() != 4 {
		t.Fatalf("flushes = %d, want one per lane (4)", flushes.Load())
	}
	for _, n := range perFlush {
		if n != 2 {
			t.Fatalf("per-flush chunk counts %v, want 2 each", perFlush)
		}
	}
}

// TestSendRetryFromValidatesLength: a payload that does not match the slot
// must be rejected before anything is staged or posted.
func TestSendRetryFromValidatesLength(t *testing.T) {
	_, a, b := newStripedPair(t)
	laneChans := lanesTo(t, a, "hostB:1", 2)
	recvMR, err := b.AllocateMemRegion(StaticSlotSize(64))
	if err != nil {
		t.Fatal(err)
	}
	recv, err := NewStaticReceiver(recvMR, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	sendMR, err := a.AllocateMemRegion(StaticSlotSize(64))
	if err != nil {
		t.Fatal(err)
	}
	sender, err := NewStaticSender(laneChans[0], sendMR, 0, recv.Desc())
	if err != nil {
		t.Fatal(err)
	}
	if err := sender.SendRetryFrom(make([]byte, 63), TransferOpts{}); !errors.Is(err, ErrBounds) {
		t.Fatalf("short payload: err = %v, want ErrBounds", err)
	}
	if recv.Poll() {
		t.Fatal("rejected payload still set the flag")
	}
}

// TestSendRetryFromRecoversFromDrops: a retry re-copies the payload into
// staging and re-sends; transient faults must heal to the exact bytes, and
// the flag must never be visible before the full payload (Wait implies it).
func TestSendRetryFromRecoversFromDrops(t *testing.T) {
	f, a, b := newStripedPair(t)
	laneChans := lanesTo(t, a, "hostB:1", 4)
	const size = 4096
	recvMR, err := b.AllocateMemRegion(StaticSlotSize(size))
	if err != nil {
		t.Fatal(err)
	}
	recv, err := NewStaticReceiver(recvMR, 0, size)
	if err != nil {
		t.Fatal(err)
	}
	sendMR, err := a.AllocateMemRegion(StaticSlotSize(size))
	if err != nil {
		t.Fatal(err)
	}
	sender, err := NewStaticSender(laneChans[0], sendMR, 0, recv.Desc())
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range laneChans[1:] {
		if err := sender.AddLane(ch); err != nil {
			t.Fatal(err)
		}
	}
	var attempts atomic.Int64
	f.SetHooks(Hooks{TransferFault: func(op Op, n int) error {
		if attempts.Add(1) <= 3 {
			return fmt.Errorf("test drop: %w", ErrInjected)
		}
		return nil
	}})
	defer f.SetHooks(Hooks{})
	payload := make([]byte, size)
	fillStripePattern(payload, 0xEE)
	var retries atomic.Int64
	opts := TransferOpts{
		Deadline: 10 * time.Second,
		Backoff:  10 * time.Microsecond,
		Stripes:  4,
		OnRetry:  func(error) { retries.Add(1) },
	}
	if err := sender.SendRetryFrom(payload, opts); err != nil {
		t.Fatal(err)
	}
	if err := recv.Wait(opts); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(recv.Payload(), payload) {
		t.Fatal("payload diverged after retried pipelined send")
	}
	if retries.Load() == 0 {
		t.Fatal("injected drops triggered no retries")
	}
}

// TestMemcpyBatchValidatesBeforePosting: one bad request must fail the whole
// batch synchronously with nothing posted — all-or-none, like a verbs
// doorbell list whose WRs are checked before the MMIO write.
func TestMemcpyBatchValidatesBeforePosting(t *testing.T) {
	_, a, b := newPair(t)
	src, err := a.AllocateMemRegion(64)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := b.AllocateMemRegion(64)
	if err != nil {
		t.Fatal(err)
	}
	fillStripePattern(src.Bytes(), 0x11)
	before := append([]byte(nil), dst.Bytes()...)
	ch, err := a.GetChannel("hostB:1", 0)
	if err != nil {
		t.Fatal(err)
	}
	cb := func(error) { t.Error("callback fired for a rejected batch") }
	err = ch.MemcpyBatch([]MemcpyReq{
		{Local: src, Remote: dst.Descriptor(), Size: 32, Dir: OpWrite, CB: cb},
		{Local: src, RemoteOff: 48, Remote: dst.Descriptor(), Size: 32, Dir: OpWrite, CB: cb}, // out of bounds
	})
	if !errors.Is(err, ErrBounds) {
		t.Fatalf("err = %v, want ErrBounds", err)
	}
	// Give a wrongly posted first request time to land, then check nothing
	// moved.
	time.Sleep(20 * time.Millisecond)
	if !bytes.Equal(dst.Bytes(), before) {
		t.Fatal("rejected batch still wrote remote memory")
	}
}

// TestMemcpyBatchCompletesInOrder: a batch's completions arrive once per
// request with the payloads placed correctly.
func TestMemcpyBatchCompletesInOrder(t *testing.T) {
	_, a, b := newPair(t)
	src, err := a.AllocateMemRegion(64)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := b.AllocateMemRegion(64)
	if err != nil {
		t.Fatal(err)
	}
	fillStripePattern(src.Bytes(), 0x22)
	ch, err := a.GetChannel("hostB:1", 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	reqs := []MemcpyReq{
		{Local: src, Remote: dst.Descriptor(), Size: 32, Dir: OpWrite},
		{LocalOff: 32, Local: src, RemoteOff: 32, Remote: dst.Descriptor(), Size: 32, Dir: OpWrite},
	}
	for i := range reqs {
		reqs[i].CB = func(err error) {
			if err != nil {
				t.Errorf("batched transfer failed: %v", err)
			}
			wg.Done()
		}
	}
	if err := ch.MemcpyBatch(reqs); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if !bytes.Equal(dst.Bytes(), src.Bytes()) {
		t.Fatal("batched transfers placed wrong bytes")
	}
}
