package rdma

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Op identifies the direction of a one-sided transfer relative to the
// issuing device.
type Op uint8

const (
	// OpWrite pushes local bytes into the remote region (RDMA write).
	OpWrite Op = iota
	// OpRead pulls remote bytes into the local region (RDMA read).
	OpRead
)

func (o Op) String() string {
	if o == OpWrite {
		return "write"
	}
	return "read"
}

// Config parameterizes CreateDevice. Zero values select the defaults the
// paper's evaluation uses (4 CQs per device, 4 QPs per peer, following the
// guidelines in Kalia et al.).
type Config struct {
	// Endpoint is the device's address on the fabric ("host:port").
	Endpoint string
	// NumCQs is the number of completion queues (poller threads).
	NumCQs int
	// QPsPerPeer is the number of queue pairs created per connected peer.
	QPsPerPeer int
	// SendQueueDepth is the per-QP work queue capacity.
	SendQueueDepth int
	// MaxRegions bounds the number of registered memory regions, emulating
	// the hardware registration limit that motivates arena registration in
	// §3.4. Zero means 4096.
	MaxRegions int
}

func (c *Config) setDefaults() error {
	if c.Endpoint == "" {
		return fmt.Errorf("rdma: empty endpoint: %w", ErrBadConfig)
	}
	if c.NumCQs == 0 {
		c.NumCQs = 4
	}
	if c.QPsPerPeer == 0 {
		c.QPsPerPeer = 4
	}
	if c.SendQueueDepth == 0 {
		c.SendQueueDepth = 128
	}
	if c.MaxRegions == 0 {
		c.MaxRegions = 4096
	}
	if c.NumCQs < 0 || c.QPsPerPeer < 0 || c.SendQueueDepth < 0 || c.MaxRegions < 0 {
		return fmt.Errorf("rdma: negative config value: %w", ErrBadConfig)
	}
	return nil
}

// Device emulates one RDMA NIC attached to an endpoint on a fabric.
// It is the CreateRdmaDevice object of Table 1.
type Device struct {
	fabric   *Fabric
	endpoint string
	cfg      Config

	closed atomic.Bool

	mu      sync.Mutex
	regions map[uint32]*MemRegion
	peers   map[string]*peerConn
	nextCQ  int

	cqs []*completionQueue

	msgMu      sync.Mutex
	msgHandler func(from string, payload []byte)
	msgQueue   *guardedQueue[inboundMsg]
	rpc        rpcState

	qpWG     sync.WaitGroup // queue-pair goroutines
	pollerWG sync.WaitGroup // CQ pollers and the message dispatcher
}

// guardedQueue is a channel whose senders and closer are synchronized, so a
// shutdown never races with in-flight posts: post blocks holding a read
// lock, close takes the write lock after all posts drain into the buffer.
type guardedQueue[T any] struct {
	mu     sync.RWMutex
	closed bool
	ch     chan T
}

func newGuardedQueue[T any](depth int) *guardedQueue[T] {
	return &guardedQueue[T]{ch: make(chan T, depth)}
}

// post enqueues v, reporting false if the queue is closed.
func (q *guardedQueue[T]) post(v T) bool {
	q.mu.RLock()
	defer q.mu.RUnlock()
	if q.closed {
		return false
	}
	q.ch <- v
	return true
}

// postAll enqueues every value under one lock acquisition — the doorbell
// batch. All-or-none with respect to shutdown: close takes the write lock,
// so either the whole batch lands in the buffer before the queue closes or
// none of it does.
func (q *guardedQueue[T]) postAll(vs []T) bool {
	q.mu.RLock()
	defer q.mu.RUnlock()
	if q.closed {
		return false
	}
	for _, v := range vs {
		q.ch <- v
	}
	return true
}

func (q *guardedQueue[T]) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.closed {
		q.closed = true
		close(q.ch)
	}
}

type inboundMsg struct {
	from    string
	payload []byte
}

type peerConn struct {
	qps []*queuePair
}

// CreateDevice creates and registers a device on the fabric
// (CreateRdmaDevice in Table 1).
func CreateDevice(f *Fabric, cfg Config) (*Device, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	d := &Device{
		fabric:   f,
		endpoint: cfg.Endpoint,
		cfg:      cfg,
		regions:  make(map[uint32]*MemRegion),
		peers:    make(map[string]*peerConn),
		msgQueue: newGuardedQueue[inboundMsg](256),
	}
	d.rpc.init()
	if err := f.register(d); err != nil {
		return nil, err
	}
	d.cqs = make([]*completionQueue, cfg.NumCQs)
	for i := range d.cqs {
		d.cqs[i] = newCompletionQueue(256)
		d.pollerWG.Add(1)
		go func(cq *completionQueue) {
			defer d.pollerWG.Done()
			cq.pollLoop()
		}(d.cqs[i])
	}
	d.pollerWG.Add(1)
	go func() {
		defer d.pollerWG.Done()
		d.dispatchMessages()
	}()
	return d, nil
}

// Endpoint returns the device's fabric address.
func (d *Device) Endpoint() string { return d.endpoint }

// Closed reports whether Close has begun. Failure detectors use it to tell a
// deliberately (or crash-) closed local device from a remote fault.
func (d *Device) Closed() bool { return d.closed.Load() }

// AllocateMemRegion registers a new RDMA-accessible memory region of the
// given size (rounded up to a multiple of 8 bytes so every tail flag word is
// aligned). It corresponds to RdmaDev::AllocateMemRegion in Table 1.
func (d *Device) AllocateMemRegion(size int) (*MemRegion, error) {
	if size <= 0 {
		return nil, fmt.Errorf("rdma: region size %d: %w", size, ErrBadConfig)
	}
	if d.closed.Load() {
		return nil, ErrClosed
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.regions) >= d.cfg.MaxRegions {
		return nil, fmt.Errorf("rdma: registration limit %d reached: %w", d.cfg.MaxRegions, ErrBadConfig)
	}
	rounded := (size + 7) / 8 * 8
	// Region ids come from a fabric-wide sequence, not a per-device counter:
	// a restarted endpoint must never mint ids that alias regions a dead
	// incarnation advertised, or a stale queued work request could land in
	// the new incarnation's memory instead of failing with ErrBounds.
	mr := &MemRegion{dev: d, id: d.fabric.nextRegionID(), data: newAlignedBytes(rounded)}
	d.regions[mr.id] = mr
	return mr, nil
}

// FreeMemRegion deregisters a region. Outstanding transfers targeting it
// fail with ErrBounds.
func (d *Device) FreeMemRegion(mr *MemRegion) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.regions, mr.id)
}

// RegionCount reports the number of registered regions (for tests asserting
// the arena design keeps registrations low).
func (d *Device) RegionCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.regions)
}

// PeerCount reports the number of peers with live QP groups.
func (d *Device) PeerCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.peers)
}

// QPCount reports the number of live queue pairs on this device (scale
// tests assert the mux keeps it at O(slots·lanes), not O(peers)).
func (d *Device) QPCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.peers) * d.cfg.QPsPerPeer
}

func (d *Device) lookupRegion(id uint32) (*MemRegion, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	mr, ok := d.regions[id]
	if !ok {
		return nil, fmt.Errorf("rdma: region %d not registered on %s: %w", id, d.endpoint, ErrBounds)
	}
	return mr, nil
}

// GetChannel returns a communication channel to the remote endpoint bound
// to the specified QP index (RdmaDev::GetChannel in Table 1). QPs for a
// peer are created lazily on first use and associated with the device's
// CQs in round-robin order (Figure 4). Multi-threaded callers spread load
// by using distinct qpIdx values.
func (d *Device) GetChannel(remote string, qpIdx int) (*Channel, error) {
	if d.closed.Load() {
		return nil, ErrClosed
	}
	if remote == d.endpoint {
		return nil, fmt.Errorf("rdma: channel to self %q: %w", remote, ErrBadConfig)
	}
	if qpIdx < 0 || qpIdx >= d.cfg.QPsPerPeer {
		return nil, fmt.Errorf("rdma: qp index %d outside [0,%d): %w", qpIdx, d.cfg.QPsPerPeer, ErrBadConfig)
	}
	d.mu.Lock()
	pc, ok := d.peers[remote]
	if !ok {
		pc = &peerConn{qps: make([]*queuePair, d.cfg.QPsPerPeer)}
		for i := range pc.qps {
			cq := d.cqs[d.nextCQ%len(d.cqs)]
			d.nextCQ++
			qp := newQueuePair(d, remote, cq, d.cfg.SendQueueDepth)
			pc.qps[i] = qp
			d.qpWG.Add(1)
			go func() {
				defer d.qpWG.Done()
				qp.run()
			}()
		}
		d.peers[remote] = pc
	}
	qp := pc.qps[qpIdx]
	d.mu.Unlock()
	return &Channel{dev: d, remote: remote, qp: qp}, nil
}

// ClosePeer tears down the local QPs connecting this device to one remote
// endpoint: queued and future work on them fails with ErrClosed, and a later
// GetChannel to the same endpoint builds fresh QPs. Recovery drivers call it
// on every survivor to sever the fabric paths to a crashed peer before its
// replacement re-registers under the same endpoint name, so no stale work
// request can reach the new incarnation.
func (d *Device) ClosePeer(remote string) {
	d.mu.Lock()
	pc, ok := d.peers[remote]
	if ok {
		delete(d.peers, remote)
	}
	d.mu.Unlock()
	if !ok {
		return
	}
	for _, qp := range pc.qps {
		qp.close()
	}
}

// SetMessageHandler installs the two-sided receive handler. Messages are
// delivered on the device's dispatcher goroutine in arrival order.
func (d *Device) SetMessageHandler(h func(from string, payload []byte)) {
	d.msgMu.Lock()
	d.msgHandler = h
	d.msgMu.Unlock()
}

func (d *Device) dispatchMessages() {
	for m := range d.msgQueue.ch {
		if len(m.payload) > 0 && m.payload[0] == rpcMagic {
			d.handleRPCMessage(m.from, m.payload)
			continue
		}
		d.msgMu.Lock()
		h := d.msgHandler
		d.msgMu.Unlock()
		if h != nil {
			h(m.from, m.payload)
		}
	}
}

// deliver enqueues an inbound two-sided message (called from the sender's
// QP goroutine; the copy into the queue models the receive-buffer copy of
// messaging verbs).
func (d *Device) deliver(from string, payload []byte) error {
	if d.closed.Load() {
		return ErrClosed
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	if !d.msgQueue.post(inboundMsg{from: from, payload: cp}) {
		return ErrClosed
	}
	return nil
}

// Close shuts the device down in dependency order: the endpoint leaves the
// fabric, QPs stop accepting work and drain, the message dispatcher stops,
// and finally the CQ pollers drain outstanding completions.
func (d *Device) Close() {
	if !d.closed.CompareAndSwap(false, true) {
		return
	}
	d.fabric.unregister(d.endpoint)
	d.mu.Lock()
	for _, pc := range d.peers {
		for _, qp := range pc.qps {
			qp.close()
		}
	}
	d.mu.Unlock()
	d.qpWG.Wait() // all completions posted to CQs by now
	d.msgQueue.close()
	for _, cq := range d.cqs {
		cq.close()
	}
	d.rpc.failAll(ErrClosed)
	d.pollerWG.Wait()
}

// completionQueue carries work completions to a dedicated poller goroutine,
// which invokes the user callbacks (the library's "thread pool with each
// thread polling a specific CQ").
type completionQueue struct {
	q *guardedQueue[completion]
}

type completion struct {
	cb  func(error)
	err error
}

func newCompletionQueue(depth int) *completionQueue {
	return &completionQueue{q: newGuardedQueue[completion](depth)}
}

func (cq *completionQueue) post(c completion) {
	if !cq.q.post(c) && c.cb != nil {
		// Shutdown raced with the final completions: still inform the
		// caller rather than dropping the callback.
		c.cb(ErrClosed)
	}
}

func (cq *completionQueue) pollLoop() {
	for c := range cq.q.ch {
		if c.cb != nil {
			c.cb(c.err)
		}
	}
}

func (cq *completionQueue) close() {
	cq.q.close()
}

// queuePair processes posted work requests in order, the way a reliable
// connected QP does.
type queuePair struct {
	dev  *Device
	peer string
	cq   *completionQueue
	wq   *guardedQueue[workRequest]
	down atomic.Bool // set by close: buffered work fails instead of executing
}

type wrKind uint8

const (
	wrTransfer wrKind = iota
	wrMessage
	wrAtomic
)

type workRequest struct {
	kind wrKind

	// one-sided transfer fields
	op        Op
	local     *MemRegion
	localOff  int
	remote    RemoteRegion
	remoteOff int
	size      int

	// two-sided message payload
	payload []byte

	// one-sided atomic operation
	atomic atomicRequest

	// tag, when non-nil, marks this write as part of the lossy selective-
	// retransmit protocol (see retransmit.go): chunk writes become silently
	// droppable and land via epoch-guarded placement; arm writes publish a
	// slot's live epoch.
	tag *writeTag

	cb func(error)
}

func newQueuePair(d *Device, peer string, cq *completionQueue, depth int) *queuePair {
	return &queuePair{dev: d, peer: peer, cq: cq, wq: newGuardedQueue[workRequest](depth)}
}

func (qp *queuePair) post(wr workRequest) error {
	if !qp.wq.post(wr) {
		return ErrClosed
	}
	return nil
}

// postBatch rings the doorbell once for a group of work requests: they enter
// the send queue contiguously under one lock acquisition, or — if the QP is
// already closed — none of them do.
func (qp *queuePair) postBatch(wrs []workRequest) error {
	if !qp.wq.postAll(wrs) {
		return ErrClosed
	}
	return nil
}

func (qp *queuePair) run() {
	for wr := range qp.wq.ch {
		if qp.down.Load() || qp.dev.closed.Load() {
			// Fail fast: work buffered before Close must not execute against
			// live peers afterwards — callers get ErrClosed, not a transfer
			// that silently lands while the device is tearing down.
			qp.cq.post(completion{cb: wr.cb, err: ErrClosed})
			continue
		}
		var err error
		switch wr.kind {
		case wrTransfer:
			err = qp.dev.executeTransfer(qp.peer, wr)
		case wrMessage:
			err = qp.dev.executeMessage(qp.peer, wr.payload)
		case wrAtomic:
			err = qp.dev.executeAtomic(qp.peer, wr.atomic)
		}
		if wr.kind == wrTransfer {
			hooks := qp.dev.fabric.hooksSnapshot()
			if hooks.CompletionFault != nil {
				cf := hooks.CompletionFault(wr.op, wr.size)
				if cf.Delay > 0 {
					// Completion moderation: later WRs on this QP stall too,
					// the way a backed-up CQ behaves.
					sleep(cf.Delay)
				}
				if cf.Duplicate {
					qp.cq.post(completion{cb: wr.cb, err: err})
				}
			}
		}
		qp.cq.post(completion{cb: wr.cb, err: err})
	}
}

func (qp *queuePair) close() {
	qp.down.Store(true)
	qp.wq.close()
}

// executeTransfer performs a one-sided read or write: it runs entirely on
// the requester's QP goroutine, touching the remote region's memory directly
// without involving any goroutine of the remote device.
func (d *Device) executeTransfer(peer string, wr workRequest) error {
	hooks := d.fabric.hooksSnapshot()
	if hooks.TransferDelay != nil {
		if delay := hooks.TransferDelay(wr.op, wr.size); delay > 0 {
			sleep(delay)
		}
	}
	if hooks.PathDelay != nil {
		if delay := hooks.PathDelay(wr.op, wr.size, d.endpoint, peer); delay > 0 {
			sleep(delay)
		}
	}
	if hooks.TransferFault != nil {
		if err := hooks.TransferFault(wr.op, wr.size); err != nil {
			return err
		}
	}
	remoteDev, err := d.fabric.lookup(d.endpoint, peer)
	if err != nil {
		return err
	}
	if wr.remote.Endpoint != peer {
		return fmt.Errorf("rdma: remote region on %s used over channel to %s: %w",
			wr.remote.Endpoint, peer, ErrBadConfig)
	}
	remoteMR, err := remoteDev.lookupRegion(wr.remote.RegionID)
	if err != nil {
		return err
	}
	if wr.tag != nil {
		return d.executeTagged(remoteMR, wr, hooks)
	}
	local, err := wr.local.Slice(wr.localOff, wr.size)
	if err != nil {
		return err
	}
	remote, err := remoteMR.Slice(wr.remoteOff, wr.size)
	if err != nil {
		return err
	}
	reorder := hooks.WriteReorder != nil && hooks.WriteReorder(wr.op, wr.size)
	switch wr.op {
	case OpWrite:
		if reorder {
			reorderedCopy(remote, wr.remoteOff, local, wr.localOff)
		} else {
			orderedCopy(remote, wr.remoteOff, local, wr.localOff)
		}
	case OpRead:
		orderedCopy(local, wr.localOff, remote, wr.remoteOff)
	}
	if hooks.OnTransfer != nil {
		hooks.OnTransfer(wr.op, wr.size)
	}
	return nil
}

// executeTagged performs a semantically tagged write of the lossy
// protocol. Arm writes publish the slot's live epoch; chunk writes carry a
// (tensor-id, chunk-seq, epoch) header, may be silently dropped by the
// lossy hooks (the completion still succeeds — the emulator's rendering of
// a packet lost on an unreliable fabric), and otherwise land through the
// region's epoch-guarded placement, which discards stale-epoch chunks and
// stamps the per-chunk arrival word the receiver's NACK scan reads.
func (d *Device) executeTagged(remoteMR *MemRegion, wr workRequest, hooks Hooks) error {
	t := wr.tag
	if t.kind == tagArm {
		return remoteMR.armEpoch(t.guardOff, t.tag.Epoch)
	}
	if hooks.Lossy && hooks.ChunkDrop != nil && hooks.ChunkDrop(t.tag, wr.size) {
		return nil // lost on the wire: memory untouched, completion succeeds
	}
	local, err := wr.local.Slice(wr.localOff, wr.size)
	if err != nil {
		return err
	}
	placed, err := remoteMR.placeChunk(t, wr.remoteOff, local)
	if err != nil {
		return err
	}
	if !placed && hooks.OnChunkStale != nil {
		hooks.OnChunkStale(t.tag)
	}
	if hooks.OnTransfer != nil {
		hooks.OnTransfer(wr.op, wr.size)
	}
	return nil
}

func (d *Device) executeMessage(peer string, payload []byte) error {
	if hooks := d.fabric.hooksSnapshot(); hooks.MessageFault != nil {
		if err := hooks.MessageFault(len(payload)); err != nil {
			return err
		}
	}
	remoteDev, err := d.fabric.lookup(d.endpoint, peer)
	if err != nil {
		return err
	}
	return remoteDev.deliver(d.endpoint, payload)
}

// orderedCopy copies src into dst (the slices start at absolute offsets
// dstOff/srcOff in their regions) in ascending address order. If the
// transfer ends on an 8-byte-aligned boundary at both ends and spans at
// least one word, the final word is moved with an atomic load/store pair so
// a tail flag (or credit counter) becomes visible only after the payload —
// the emulator's rendering of the NIC's in-order DMA guarantee the §3.2
// protocol depends on. Using an atomic load on the source side lets
// protocols update single-word sources (e.g. ring-transport credit words)
// with StoreWord without racing the in-flight transfer.
func orderedCopy(dst []byte, dstOff int, src []byte, srcOff int) {
	n := len(src)
	if n >= 8 && (dstOff+n)%8 == 0 && (srcOff+n)%8 == 0 {
		copy(dst[:n-8], src[:n-8])
		atomicStore64(dst, n-8, atomicLoad64(src, n-8))
		return
	}
	copy(dst, src)
}

// reorderedCopy is orderedCopy with the guarantee deliberately broken: the
// final word (where protocols keep their flag) is stored before the payload,
// with a scheduling point in between so a concurrent poller can observe the
// flag set while the payload is still stale. Only fault-injection hooks
// select this path. The payload body is moved word-by-word with atomic
// stores: the hazard being modelled is stale data visible after the flag,
// not a Go-level data race, and the word stores let chaos tests observe the
// stale window (via LoadWord) while staying clean under the race detector.
func reorderedCopy(dst []byte, dstOff int, src []byte, srcOff int) {
	n := len(src)
	if n < 8 || (dstOff+n)%8 != 0 || (srcOff+n)%8 != 0 {
		copy(dst, src)
		return
	}
	atomicStore64(dst, n-8, atomicLoad64(src, n-8))
	runtime.Gosched()
	// Both offsets share the same misalignment (their sum with n is a
	// multiple of 8), so one ragged head covers both sides.
	head := (8 - dstOff%8) % 8
	if head > n-8 {
		head = n - 8
	}
	copy(dst[:head], src[:head])
	for off := head; off+8 <= n-8; off += 8 {
		atomicStore64(dst, off, atomicLoad64(src, off))
	}
}

// Channel connects the local device to one remote endpoint over one QP
// (RdmaChannel in Table 1).
type Channel struct {
	dev    *Device
	remote string
	qp     *queuePair
}

// Remote returns the peer endpoint this channel targets.
func (c *Channel) Remote() string { return c.remote }

// Down reports whether the channel's QP has been closed (ClosePeer or
// device shutdown): posted work on a down channel fails with ErrClosed.
// Pool layers use it to detect a binding whose QPs died underneath it.
func (c *Channel) Down() bool { return c.qp.down.Load() }

// Memcpy asynchronously copies size bytes between the local region (at
// localOff) and the remote region (at remoteOff); dir selects RDMA write or
// read. The callback runs on a CQ poller goroutine when the transfer
// completes. Validation errors are returned synchronously.
func (c *Channel) Memcpy(localOff int, local *MemRegion, remoteOff int, remote RemoteRegion,
	size int, dir Op, cb func(error)) error {
	wr, err := transferWR(localOff, local, remoteOff, remote, size, dir, cb)
	if err != nil {
		return err
	}
	return c.qp.post(wr)
}

// transferWR validates one transfer's bounds and builds its work request.
func transferWR(localOff int, local *MemRegion, remoteOff int, remote RemoteRegion,
	size int, dir Op, cb func(error)) (workRequest, error) {
	if local == nil {
		return workRequest{}, fmt.Errorf("rdma: nil local region: %w", ErrBadConfig)
	}
	if size < 0 {
		return workRequest{}, fmt.Errorf("rdma: negative size %d: %w", size, ErrBadConfig)
	}
	if localOff < 0 || localOff+size > local.Size() {
		return workRequest{}, fmt.Errorf("rdma: local [%d,+%d) of %d: %w", localOff, size, local.Size(), ErrBounds)
	}
	if remoteOff < 0 || uint64(remoteOff)+uint64(size) > remote.Size {
		return workRequest{}, fmt.Errorf("rdma: remote [%d,+%d) of %d: %w", remoteOff, size, remote.Size, ErrBounds)
	}
	return workRequest{
		kind: wrTransfer, op: dir,
		local: local, localOff: localOff,
		remote: remote, remoteOff: remoteOff,
		size: size, cb: cb,
	}, nil
}

// MemcpyReq describes one transfer of a doorbell batch (see MemcpyBatch).
type MemcpyReq struct {
	LocalOff  int
	Local     *MemRegion
	RemoteOff int
	Remote    RemoteRegion
	Size      int
	Dir       Op
	CB        func(error)
}

// MemcpyBatch posts several transfers with one doorbell ring: every request
// is validated up front, then the whole group enters the QP's send queue
// under a single lock acquisition — the emulator's rendering of a verbs
// doorbell batch, where a linked list of work requests costs one MMIO write
// instead of one per WR. On a validation error nothing is posted and the
// error is returned synchronously; on a closed QP nothing is posted either
// (all-or-none). Completion callbacks fire individually per request, in
// queue order, exactly as with Memcpy.
func (c *Channel) MemcpyBatch(reqs []MemcpyReq) error {
	wrs := make([]workRequest, len(reqs))
	for i, r := range reqs {
		wr, err := transferWR(r.LocalOff, r.Local, r.RemoteOff, r.Remote, r.Size, r.Dir, r.CB)
		if err != nil {
			return err
		}
		wrs[i] = wr
	}
	return c.qp.postBatch(wrs)
}

// MemcpySync is Memcpy that blocks until completion, for callers without an
// event loop (tests, examples, the address-distribution path). It tolerates
// duplicated completions: only the first is consumed, extras are dropped
// without blocking the CQ poller.
func (c *Channel) MemcpySync(localOff int, local *MemRegion, remoteOff int, remote RemoteRegion,
	size int, dir Op) error {
	done := make(chan error, 1)
	if err := c.Memcpy(localOff, local, remoteOff, remote, size, dir, func(err error) {
		select {
		case done <- err:
		default: // duplicated completion
		}
	}); err != nil {
		return err
	}
	return <-done
}

// SendMsg posts a two-sided message to the peer (messaging verbs). The
// callback fires when the message has been accepted by the remote receive
// queue.
func (c *Channel) SendMsg(payload []byte, cb func(error)) error {
	return c.qp.post(workRequest{kind: wrMessage, payload: payload, cb: cb})
}
