package rdma

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// FlagWordSize is the size of the completion flag appended to a transfer
// target (§3.2). The paper uses a single flag byte; the emulator widens it
// to one 8-byte word so the flag can be committed with an atomic store (the
// software analogue of the NIC's ordered DMA — see atomicword.go). Regions
// intended for flagged transfers should reserve FlagWordSize bytes at the
// tail of each slot.
const FlagWordSize = 8

// FlagSet is the value the sender writes into the flag word.
const FlagSet uint64 = 1

// MemRegion is a block of RDMA-registered memory on a local device.
// Addresses within a region are byte offsets from its start.
type MemRegion struct {
	dev  *Device
	id   uint32
	data []byte

	// tagMu serializes epoch arming against tagged-chunk placement for the
	// lossy selective-retransmit protocol (retransmit.go): a chunk's
	// guard-epoch check and its placement must be atomic with respect to
	// re-arming, or a stale retransmit could pass the check and then land
	// in memory a newer iteration already owns.
	tagMu sync.Mutex
}

// ID returns the region's registration id (the emulator's rkey).
func (m *MemRegion) ID() uint32 { return m.id }

// Size returns the registered size in bytes.
func (m *MemRegion) Size() int { return len(m.data) }

// Bytes returns the region's storage. Slicing it is how tensors are placed
// in registered memory without copies.
func (m *MemRegion) Bytes() []byte { return m.data }

// Slice returns the sub-range [off, off+size) of the region's storage.
func (m *MemRegion) Slice(off, size int) ([]byte, error) {
	if off < 0 || size < 0 || off+size > len(m.data) {
		return nil, fmt.Errorf("rdma: slice [%d,%d+%d) of %d-byte region: %w",
			off, off, size, len(m.data), ErrBounds)
	}
	return m.data[off : off+size], nil
}

// Descriptor returns the remotely shareable handle for this region.
// Distributing descriptors to peers (over the vanilla RPC) is the §3.1
// address-distribution step.
func (m *MemRegion) Descriptor() RemoteRegion {
	return RemoteRegion{Endpoint: m.dev.endpoint, RegionID: m.id, Size: uint64(len(m.data))}
}

// PollFlag checks the flag word at the given offset with acquire semantics
// and reports whether it equals FlagSet. Once true, all payload bytes the
// sender wrote before the flag are visible.
func (m *MemRegion) PollFlag(off int) bool {
	return atomicLoad64(m.data, off) == FlagSet
}

// ClearFlag resets the flag word at the given offset for reuse.
func (m *MemRegion) ClearFlag(off int) {
	atomicStore64(m.data, off, 0)
}

// SetFlagLocal sets the flag word locally (used by loopback paths in tests).
func (m *MemRegion) SetFlagLocal(off int) {
	atomicStore64(m.data, off, FlagSet)
}

// LoadWord atomically reads the 8-byte word at the aligned offset with
// acquire semantics. Higher-level protocols (e.g. the ring transport's
// credit counters) poll remotely written words through it.
func (m *MemRegion) LoadWord(off int) uint64 {
	return atomicLoad64(m.data, off)
}

// StoreWord atomically writes the 8-byte word at the aligned offset with
// release semantics.
func (m *MemRegion) StoreWord(off int, v uint64) {
	atomicStore64(m.data, off, v)
}

// RemoteRegion identifies a registered memory region on a (possibly remote)
// device: it is the pair the paper's Memcpy takes as "remote_region".
type RemoteRegion struct {
	Endpoint string
	RegionID uint32
	Size     uint64
}

// remoteRegionWireSize bounds the encoded size (2+len(ep)+4+8).
func (r RemoteRegion) wireSize() int { return 2 + len(r.Endpoint) + 4 + 8 }

// Marshal encodes the descriptor for address distribution.
func (r RemoteRegion) Marshal() []byte {
	buf := make([]byte, r.wireSize())
	binary.LittleEndian.PutUint16(buf, uint16(len(r.Endpoint)))
	copy(buf[2:], r.Endpoint)
	off := 2 + len(r.Endpoint)
	binary.LittleEndian.PutUint32(buf[off:], r.RegionID)
	binary.LittleEndian.PutUint64(buf[off+4:], r.Size)
	return buf
}

// UnmarshalRemoteRegion decodes a descriptor produced by Marshal.
func UnmarshalRemoteRegion(buf []byte) (RemoteRegion, error) {
	var r RemoteRegion
	if len(buf) < 2 {
		return r, fmt.Errorf("rdma: short region descriptor (%d bytes)", len(buf))
	}
	n := int(binary.LittleEndian.Uint16(buf))
	if len(buf) < 2+n+12 {
		return r, fmt.Errorf("rdma: truncated region descriptor (%d bytes, endpoint %d)", len(buf), n)
	}
	r.Endpoint = string(buf[2 : 2+n])
	r.RegionID = binary.LittleEndian.Uint32(buf[2+n:])
	r.Size = binary.LittleEndian.Uint64(buf[2+n+4:])
	return r, nil
}
