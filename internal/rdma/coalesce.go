package rdma

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// Small-message coalescing: tensors below a size threshold bound for the
// same peer share one slot instead of paying a full slot + flag round-trip
// each. The sender stages sub-messages with the wire batch framing
// (count-prefixed, length-delimited — see wire.BatchWriter), then flushes
// payload and tail flag to the receiver's slot in one ascending write, so
// the §3.2 flag contract is unchanged: a set flag means the whole batch
// landed. Slot reuse is gated by a one-word ack the receiver posts after it
// consumed the batch, like the dynamic protocol's reuse ack.

// CoalescedSlotDesc addresses a receiver-side coalesced slot.
type CoalescedSlotDesc struct {
	Region RemoteRegion
	// Off is the slot's offset in the region.
	Off int
	// Capacity is the batch payload capacity in bytes (framing included,
	// tail flag excluded).
	Capacity int
}

// Marshal encodes the descriptor for address distribution.
func (d CoalescedSlotDesc) Marshal() []byte {
	buf := make([]byte, 0, 16+d.Region.wireSize())
	buf = binary.LittleEndian.AppendUint64(buf, uint64(d.Off))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(d.Capacity))
	return append(buf, d.Region.Marshal()...)
}

// UnmarshalCoalescedSlotDesc decodes a descriptor produced by Marshal.
func UnmarshalCoalescedSlotDesc(buf []byte) (CoalescedSlotDesc, error) {
	var d CoalescedSlotDesc
	if len(buf) < 16 {
		return d, fmt.Errorf("rdma: short coalesced slot descriptor (%d bytes)", len(buf))
	}
	d.Off = int(binary.LittleEndian.Uint64(buf))
	d.Capacity = int(binary.LittleEndian.Uint64(buf[8:]))
	region, err := UnmarshalRemoteRegion(buf[16:])
	if err != nil {
		return d, err
	}
	d.Region = region
	return d, nil
}

// CoalescedReceiver owns one batch slot fed by a single peer's
// CoalescedSender.
type CoalescedReceiver struct {
	mr       *MemRegion
	off      int
	capacity int
	ch       *Channel   // channel to the sender, for ack writes
	ackSrc   *MemRegion // one word containing FlagSet
	// source, when set, supplies AckRetry's channel per attempt (QP mux).
	source LaneSource
}

// SetLaneSource routes AckRetry through a per-attempt lane source.
func (r *CoalescedReceiver) SetLaneSource(src LaneSource) { r.source = src }

// NewCoalescedReceiver claims [off, off+StaticSlotSize(capacity)) of mr as
// the batch slot for a sender reached via ch, and clears its flag.
func NewCoalescedReceiver(ch *Channel, mr *MemRegion, off, capacity int) (*CoalescedReceiver, error) {
	if off%8 != 0 {
		return nil, fmt.Errorf("rdma: coalesced slot offset %d not 8-aligned: %w", off, ErrBadConfig)
	}
	if capacity < wire.BatchHeaderSize {
		return nil, fmt.Errorf("rdma: coalesced slot capacity %d below batch header %d: %w",
			capacity, wire.BatchHeaderSize, ErrBadConfig)
	}
	if _, err := mr.Slice(off, StaticSlotSize(capacity)); err != nil {
		return nil, err
	}
	ackSrc, err := mr.dev.AllocateMemRegion(FlagWordSize)
	if err != nil {
		return nil, err
	}
	ackSrc.SetFlagLocal(0)
	r := &CoalescedReceiver{mr: mr, off: off, capacity: capacity, ch: ch, ackSrc: ackSrc}
	mr.ClearFlag(r.flagOff())
	return r, nil
}

func (r *CoalescedReceiver) flagOff() int { return r.off + alignUp(r.capacity) }

// Desc returns the remotely shareable slot address.
func (r *CoalescedReceiver) Desc() CoalescedSlotDesc {
	return CoalescedSlotDesc{Region: r.mr.Descriptor(), Off: r.off, Capacity: r.capacity}
}

// Poll reports whether a complete batch has arrived (acquire semantics).
func (r *CoalescedReceiver) Poll() bool { return r.mr.PollFlag(r.flagOff()) }

// Messages decodes the arrived batch. Valid only after Poll returned true
// and before Consume; payloads alias the slot, so callers keeping them past
// Consume must copy.
func (r *CoalescedReceiver) Messages() ([]wire.SubMsg, error) {
	return wire.DecodeBatch(r.mr.Bytes()[r.off : r.off+r.capacity])
}

// Consume clears the flag for the next batch. The sender still cannot
// overwrite the slot until AckRetry posted the reuse ack.
func (r *CoalescedReceiver) Consume() { r.mr.ClearFlag(r.flagOff()) }

// AckRetry posts the reuse ack into the sender's ack word, unblocking its
// next Flush. Call after Consume (and after copying any payloads out); the
// ack is a constant one-word write, so retrying it is idempotent.
func (r *CoalescedReceiver) AckRetry(senderAck DynSlotDesc, opts TransferOpts) error {
	return retryLoop(opts, fmt.Sprintf("coalesced ack to %s", r.ch.Remote()), func() error {
		ch, release, err := laneFor(r.source, r.ch.Remote(), r.ch)
		if err != nil {
			return err
		}
		defer release()
		return ch.memcpyAttempt(0, r.ackSrc, senderAck.Off, senderAck.Region,
			FlagWordSize, OpWrite)
	})
}

// CoalescedSender stages sub-messages for one peer's batch slot and flushes
// them as a single flagged write.
type CoalescedSender struct {
	ch       *Channel
	mr       *MemRegion
	off      int
	capacity int
	desc     CoalescedSlotDesc
	w        *wire.BatchWriter
	// source, when set, supplies FlushRetry's channel per attempt (QP mux).
	source  LaneSource
	started atomic.Bool // atomic: flushers and scheduler pollers race
}

// SetLaneSource routes FlushRetry through a per-attempt lane source.
func (s *CoalescedSender) SetLaneSource(src LaneSource) { s.source = src }

// NewCoalescedSender claims [off, off+StaticSlotSize(capacity)+FlagWordSize)
// of mr: the staging batch, the staged tail flag, and the ack word the
// receiver writes back.
func NewCoalescedSender(ch *Channel, mr *MemRegion, off int, desc CoalescedSlotDesc) (*CoalescedSender, error) {
	if off%8 != 0 {
		return nil, fmt.Errorf("rdma: coalesced staging offset %d not 8-aligned: %w", off, ErrBadConfig)
	}
	if desc.Region.Endpoint != ch.Remote() {
		return nil, fmt.Errorf("rdma: coalesced slot on %s but channel to %s: %w",
			desc.Region.Endpoint, ch.Remote(), ErrBadConfig)
	}
	if _, err := mr.Slice(off, StaticSlotSize(desc.Capacity)+FlagWordSize); err != nil {
		return nil, err
	}
	w, err := wire.NewBatchWriter(mr.Bytes()[off : off+desc.Capacity])
	if err != nil {
		return nil, err
	}
	s := &CoalescedSender{ch: ch, mr: mr, off: off, capacity: desc.Capacity, desc: desc, w: w}
	mr.ClearFlag(s.ackOff())
	return s, nil
}

func (s *CoalescedSender) flagOff() int { return s.off + alignUp(s.capacity) }
func (s *CoalescedSender) ackOff() int  { return s.flagOff() + FlagWordSize }

// AckDesc returns the address of the sender's ack word for the receiver.
func (s *CoalescedSender) AckDesc() DynSlotDesc {
	return DynSlotDesc{Region: s.mr.Descriptor(), Off: s.ackOff()}
}

// Stage appends one sub-message to the pending batch. The batch buffer is
// only safe to mutate while the previous flush has been acked; callers
// serialize Stage/Flush per sender (the distributed layer holds a group
// lock).
func (s *CoalescedSender) Stage(id uint32, payload []byte) error {
	return s.w.Append(id, payload)
}

// Reset empties the pending batch (start of a new iteration's staging).
func (s *CoalescedSender) Reset() { s.w.Reset() }

// Count reports the sub-messages staged since the last Reset.
func (s *CoalescedSender) Count() int { return s.w.Count() }

// StagedBytes reports the encoded batch size so far.
func (s *CoalescedSender) StagedBytes() int { return s.w.Len() }

// PollReusable reports whether the previous batch has been acked (or none
// was sent yet), i.e. whether Flush may transmit.
func (s *CoalescedSender) PollReusable() bool {
	if !s.started.Load() {
		return true
	}
	return s.mr.PollFlag(s.ackOff())
}

// Flush transmits the staged batch: payload and tail flag in one ascending
// write, exactly like StaticSender.Send, so the flag is never visible before
// the full batch. Returns ErrBusy while the previous batch is unacked. cb
// fires on a CQ poller when the write completes locally.
func (s *CoalescedSender) Flush(cb func(error)) error { return s.flushOn(s.ch, cb) }

// flushOn is Flush over an explicit channel (per-attempt lane acquisition).
func (s *CoalescedSender) flushOn(ch *Channel, cb func(error)) error {
	if !s.PollReusable() {
		return ErrBusy
	}
	s.started.Store(true)
	s.mr.ClearFlag(s.ackOff())
	s.mr.SetFlagLocal(s.flagOff())
	return ch.Memcpy(s.off, s.mr, s.desc.Off, s.desc.Region,
		StaticSlotSize(s.capacity), OpWrite, cb)
}

// FlushRetry is Flush blocking until the write completed, retrying ErrBusy
// (ack still in flight) and transient fabric faults within the opts budget.
// A failed attempt never made the flag visible, so re-sending the identical
// batch is safe; the ack the attempt cleared is re-armed so the next attempt
// does not deadlock on its own busy check.
func (s *CoalescedSender) FlushRetry(opts TransferOpts) error {
	start := time.Now()
	staged := s.w.Len()
	err := retryLoop(opts, fmt.Sprintf("coalesced flush %dB to %s", staged, s.ch.Remote()),
		func() error {
			ch, release, lerr := laneFor(s.source, s.ch.Remote(), s.ch)
			if lerr != nil {
				return lerr
			}
			defer release()
			done := make(chan error, 1)
			if err := s.flushOn(ch, func(err error) {
				select {
				case done <- err:
				default:
				}
			}); err != nil {
				return err
			}
			err := <-done
			if err != nil {
				// The failed write never reached the receiver, so no ack will
				// arrive for it: re-arm the ack word Flush cleared.
				s.mr.SetFlagLocal(s.ackOff())
			}
			return err
		})
	return observeComplete(opts, staged, start, err)
}
