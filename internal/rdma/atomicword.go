package rdma

import (
	"fmt"
	"sync/atomic"
	"unsafe"
)

// Atomic access to 8-byte-aligned words inside registered region storage.
//
// On real hardware the NIC's DMA engine commits the tail flag of a transfer
// after the payload, and the CPU's cache coherence makes the ordering
// visible to a polling thread. In the emulator the "NIC" is a goroutine, so
// the same ordering must be expressed through the Go memory model: the
// payload is written with plain stores and the flag word with an atomic
// (release) store; the poller reads the flag with an atomic (acquire) load
// and only then touches the payload. This file is the only use of unsafe in
// the package and every call validates alignment and bounds first.

// atomicStore64 stores v at buf[off:off+8] with release semantics.
// off must be 8-byte aligned relative to the slice start, and the backing
// array must itself be 8-byte aligned (region storage is allocated from
// []uint64, see newAlignedBytes).
func atomicStore64(buf []byte, off int, v uint64) {
	p := wordPtr(buf, off)
	atomic.StoreUint64(p, v)
}

// atomicLoad64 loads the word at buf[off:off+8] with acquire semantics.
func atomicLoad64(buf []byte, off int) uint64 {
	p := wordPtr(buf, off)
	return atomic.LoadUint64(p)
}

// atomicAdd64 atomically adds delta to the word at buf[off:off+8] and
// returns the previous value (the fetch-and-add memory verb).
func atomicAdd64(buf []byte, off int, delta uint64) uint64 {
	p := wordPtr(buf, off)
	return atomic.AddUint64(p, delta) - delta
}

// atomicCAS64 atomically compares the word at buf[off:off+8] with old and,
// if equal, stores new; it returns the value observed before the operation
// (the compare-and-swap memory verb, which always reports the prior value).
func atomicCAS64(buf []byte, off int, old, new uint64) uint64 {
	p := wordPtr(buf, off)
	for {
		cur := atomic.LoadUint64(p)
		if cur != old {
			return cur
		}
		if atomic.CompareAndSwapUint64(p, old, new) {
			return old
		}
	}
}

func wordPtr(buf []byte, off int) *uint64 {
	if off < 0 || off+8 > len(buf) {
		panic(fmt.Sprintf("rdma: atomic word at %d out of bounds [0,%d)", off, len(buf)))
	}
	p := unsafe.Pointer(&buf[off])
	if uintptr(p)%8 != 0 {
		panic(fmt.Sprintf("rdma: atomic word at %d is misaligned", off))
	}
	return (*uint64)(p)
}

// newAlignedBytes allocates an 8-byte-aligned byte slice of the given size
// (rounded up to a multiple of 8) by backing it with a []uint64.
func newAlignedBytes(size int) []byte {
	words := (size + 7) / 8
	backing := make([]uint64, words)
	if words == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&backing[0])), words*8)[:size]
}
