package rdma

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Multi-QP striping: one logical transfer is chunked into several Memcpys
// issued on distinct channels of the per-peer QP group, so a large tensor
// can use the fabric parallelism the device model provides (§2.3 groups
// multiple QPs per peer with CQs assigned round-robin for exactly this).
//
// The §3.2/§3.3 protocols stay intact: payload stripes carry no flags, and
// the tail flag is written (static path) or the reuse ack posted (dyn path)
// only after every stripe's completion has been observed. The emulator posts
// a transfer's completion after the remote memory is written, matching a
// real RC QP where a write's completion implies remote placement, so
// flag-after-all-stripes preserves the invariant that a set flag means the
// whole payload landed.

// MaxStripes bounds the stripe count of one transfer (and the per-lane
// metrics arrays sized off it).
const MaxStripes = 16

// stripeAlign keeps every stripe boundary 8-byte aligned so the word-atomic
// tail of each chunk's orderedCopy never straddles chunks.
const stripeAlign = 8

// StripeDesc describes how one payload is split across lanes.
type StripeDesc struct {
	// PayloadSize is the total transfer size in bytes.
	PayloadSize uint64
	// Stripes is the requested lane count; Chunks clamps it to
	// [1, MaxStripes] and to the payload size.
	Stripes uint32
}

// stripeDescWireSize is the encoded size of a StripeDesc.
const stripeDescWireSize = 12

// Marshal encodes the descriptor (payloadSize u64, stripes u32, both LE).
func (d StripeDesc) Marshal() []byte {
	buf := make([]byte, stripeDescWireSize)
	binary.LittleEndian.PutUint64(buf, d.PayloadSize)
	binary.LittleEndian.PutUint32(buf[8:], d.Stripes)
	return buf
}

// UnmarshalStripeDesc decodes a descriptor produced by Marshal.
func UnmarshalStripeDesc(buf []byte) (StripeDesc, error) {
	if len(buf) < stripeDescWireSize {
		return StripeDesc{}, fmt.Errorf("rdma: short stripe descriptor (%d bytes)", len(buf))
	}
	return StripeDesc{
		PayloadSize: binary.LittleEndian.Uint64(buf),
		Stripes:     binary.LittleEndian.Uint32(buf[8:]),
	}, nil
}

// StripeChunk is one contiguous piece of a striped payload.
type StripeChunk struct {
	Off, Size int
}

// Chunks partitions [0, PayloadSize) into at most min(Stripes, MaxStripes)
// disjoint, covering, non-empty chunks whose boundaries are 8-byte aligned
// (the last chunk absorbs the remainder). It is total on arbitrary
// descriptors: a zero payload yields nil, and out-of-range stripe counts are
// clamped rather than rejected.
func (d StripeDesc) Chunks() []StripeChunk {
	size := int(d.PayloadSize)
	if size <= 0 || uint64(size) != d.PayloadSize {
		return nil
	}
	n := int(d.Stripes)
	if n < 1 {
		n = 1
	}
	if n > MaxStripes {
		n = MaxStripes
	}
	if n > size {
		n = size
	}
	chunk := (size + n - 1) / n
	chunk = (chunk + stripeAlign - 1) / stripeAlign * stripeAlign
	chunks := make([]StripeChunk, 0, n)
	for off := 0; off < size; off += chunk {
		sz := chunk
		if off+sz > size {
			sz = size - off
		}
		chunks = append(chunks, StripeChunk{Off: off, Size: sz})
	}
	return chunks
}

// EffectiveStripes reports how many chunks a transfer of payloadSize bytes
// is actually split into at the requested stripe count (small payloads use
// fewer lanes than requested).
func EffectiveStripes(payloadSize, stripes int) int {
	return len(StripeDesc{PayloadSize: uint64(payloadSize), Stripes: uint32(stripes)}.Chunks())
}

// stripeJoin tracks the completions of one striped transfer: done fires
// exactly once, after every chunk completed, with the first error observed.
// Per-chunk callbacks are deduplicated so an injected duplicate completion
// cannot make the join fire before all stripes truly landed.
type stripeJoin struct {
	pending atomic.Int32
	seen    []atomic.Bool // per-chunk completion dedup
	mu      sync.Mutex
	err     error
	done    func(error)
}

func newStripeJoin(n int, done func(error)) *stripeJoin {
	j := &stripeJoin{seen: make([]atomic.Bool, n), done: done}
	j.pending.Store(int32(n))
	return j
}

// chunkCB returns the completion callback for chunk i.
func (j *stripeJoin) chunkCB(i int) func(error) {
	return func(err error) {
		if !j.seen[i].CompareAndSwap(false, true) {
			return // duplicated completion
		}
		if err != nil {
			j.mu.Lock()
			if j.err == nil {
				j.err = err
			}
			j.mu.Unlock()
		}
		if j.pending.Add(-1) == 0 {
			j.mu.Lock()
			e := j.err
			j.mu.Unlock()
			j.done(e)
		}
	}
}

// AddLane registers an additional channel for striped sends. All lanes must
// target the edge's remote endpoint; callers pass distinct QP indices so the
// stripes actually ride different queue pairs.
func (s *StaticSender) AddLane(ch *Channel) error {
	if ch.Remote() != s.ch.Remote() {
		return fmt.Errorf("rdma: lane to %s on edge to %s: %w", ch.Remote(), s.ch.Remote(), ErrBadConfig)
	}
	if len(s.lanes) >= MaxStripes {
		return fmt.Errorf("rdma: lane count exceeds MaxStripes %d: %w", MaxStripes, ErrBadConfig)
	}
	s.lanes = append(s.lanes, ch)
	return nil
}

// Lanes reports the number of channels available for striping.
func (s *StaticSender) Lanes() int { return len(s.lanes) }

// SendStriped transfers the staging buffer like Send, but splits the payload
// into up to `stripes` chunks issued round-robin over the sender's lanes,
// and writes the tail flag in a separate transfer only after every payload
// stripe completed. Each lane's chunks are posted as one doorbell batch
// (MemcpyBatch), so a lane pays one send-queue entry cost per flush instead
// of one per chunk. onStripe, if non-nil, observes (lane, bytes) for each
// issued chunk. With one effective chunk or one lane it degenerates to the
// single ascending payload+flag write of Send. cb fires on a CQ poller when
// the flag write (or the first failing stripe) completes; a failed striped
// send leaves no flag visible, so re-sending the identical bytes is safe.
func (s *StaticSender) SendStriped(stripes int, onStripe func(lane, bytes int), cb func(error)) error {
	return s.sendStripedOn(s.lanes, nil, stripes, onStripe, nil, cb)
}

// sendStripedOn is the shared striped-send engine behind SendStriped,
// SendRetry, and SendRetryFrom, parameterized over the attempt's lanes
// (cached ones, or a per-attempt lease from a LaneSource). Chunk i rides
// lane i%L, same placement as always; what varies is staging and post
// granularity:
//
//   - payload == nil (staged/zero-copy): every chunk is already in the
//     staging buffer, so each lane's whole chunk group is posted as one
//     doorbell batch — one send-queue flush per lane instead of one per
//     chunk.
//   - payload != nil (pipelined): the copy into staging proceeds in rounds
//     of one chunk per lane; each round is posted as soon as it is copied,
//     so the wire drains round r while round r+1 is still being memcpy'd.
//     The copy/transmit overlap is bought at doorbell granularity one —
//     each flush carries a single chunk — the classic tradeoff between
//     batching posts and posting early.
//
// onDoorbell, if non-nil, observes each flush as (lane, chunks posted).
func (s *StaticSender) sendStripedOn(lanes []*Channel, payload []byte, stripes int,
	onStripe func(lane, bytes int), onDoorbell func(lane, chunks int), cb func(error)) error {
	chunks := StripeDesc{PayloadSize: uint64(s.desc.PayloadSize), Stripes: uint32(stripes)}.Chunks()
	if len(chunks) <= 1 || len(lanes) <= 1 {
		if payload != nil {
			copy(s.Buffer(), payload)
		}
		if onStripe != nil {
			onStripe(0, StaticSlotSize(s.desc.PayloadSize))
		}
		return s.sendOn(lanes[0], cb)
	}
	flagOff := s.off + alignUp(s.desc.PayloadSize)
	remoteFlagOff := s.desc.Off + alignUp(s.desc.PayloadSize)
	s.mr.SetFlagLocal(flagOff)
	join := newStripeJoin(len(chunks), func(err error) {
		if err != nil {
			cb(err)
			return
		}
		// Every payload stripe is placed remotely; ship the tail flag.
		if onStripe != nil {
			onStripe(0, FlagWordSize)
		}
		if err := lanes[0].Memcpy(flagOff, s.mr, remoteFlagOff, s.desc.Region,
			FlagWordSize, OpWrite, cb); err != nil {
			cb(err)
		}
	})
	nl := len(lanes)
	req := func(i int) MemcpyReq {
		chk := chunks[i]
		return MemcpyReq{
			LocalOff: s.off + chk.Off, Local: s.mr,
			RemoteOff: s.desc.Off + chk.Off, Remote: s.desc.Region,
			Size: chk.Size, Dir: OpWrite, CB: join.chunkCB(i),
		}
	}
	flush := func(lane int, batch []MemcpyReq) {
		if onDoorbell != nil {
			onDoorbell(lane, len(batch))
		}
		if err := lanes[lane].MemcpyBatch(batch); err != nil {
			// A failed flush posted nothing (all-or-none): count it as every
			// batched chunk's completion; other lanes still drain through
			// the join.
			for _, r := range batch {
				r.CB(err)
			}
		}
	}
	if payload == nil {
		for lane := 0; lane < nl; lane++ {
			var batch []MemcpyReq
			for i := lane; i < len(chunks); i += nl {
				if onStripe != nil {
					onStripe(lane, chunks[i].Size)
				}
				batch = append(batch, req(i))
			}
			if len(batch) > 0 {
				flush(lane, batch)
			}
		}
		return nil
	}
	staging := s.mr.Bytes()
	for start := 0; start < len(chunks); start += nl {
		end := start + nl
		if end > len(chunks) {
			end = len(chunks)
		}
		for i := start; i < end; i++ {
			chk := chunks[i]
			copy(staging[s.off+chk.Off:s.off+chk.Off+chk.Size], payload[chk.Off:chk.Off+chk.Size])
		}
		for i := start; i < end; i++ {
			if onStripe != nil {
				onStripe(i%nl, chunks[i].Size)
			}
			flush(i%nl, []MemcpyReq{req(i)})
		}
		// On a real NIC the doorbell write activates the DMA engine at once;
		// in the emulator each lane is a goroutine that must be scheduled to
		// start its wire timer. Yield after every round so the posted writes
		// are actually in flight while the next round is being copied —
		// otherwise, on a small GOMAXPROCS, the copy loop can starve the
		// lanes until the whole payload is staged and the pipeline degrades
		// to the staged path.
		runtime.Gosched()
	}
	return nil
}

// AddLane registers an additional channel for striped fetches (the dyn-path
// receiver issues the RDMA reads, so striping lives on its side).
func (r *DynReceiver) AddLane(ch *Channel) error {
	if ch.Remote() != r.sender {
		return fmt.Errorf("rdma: lane to %s on edge from %s: %w", ch.Remote(), r.sender, ErrBadConfig)
	}
	if len(r.lanes) >= MaxStripes {
		return fmt.Errorf("rdma: lane count exceeds MaxStripes %d: %w", MaxStripes, ErrBadConfig)
	}
	r.lanes = append(r.lanes, ch)
	return nil
}

// Lanes reports the number of channels available for striped fetches.
func (r *DynReceiver) Lanes() int { return len(r.lanes) }
