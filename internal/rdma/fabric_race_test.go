package rdma

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// The fabric's control plane (Partition/Heal/SetHooks) must be safe to drive
// concurrently with in-flight transfers: no data race, no deadlock, and the
// fabric must still work once the churn stops. Run with -race; the final
// transfer is the liveness check.
func TestFabricControlPlaneRace(t *testing.T) {
	f, a, b := newPair(t)
	src, err := a.AllocateMemRegion(256)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := b.AllocateMemRegion(256)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := a.GetChannel("hostB:1", 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src.Bytes() {
		src.Bytes()[i] = byte(i)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Partition churn: flip the link up and down as fast as possible.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				f.Partition("hostA:1", "hostB:1")
			} else {
				f.Heal("hostA:1", "hostB:1")
			}
		}
	}()

	// Hook churn: alternate between an injecting fault hook and no hooks.
	wg.Add(1)
	go func() {
		defer wg.Done()
		faulty := Hooks{TransferFault: func(Op, int) error {
			return fmt.Errorf("race test drop: %w", ErrInjected)
		}}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				f.SetHooks(faulty)
			} else {
				f.SetHooks(Hooks{})
			}
		}
	}()

	// Data plane: several goroutines hammering Memcpys through the churn.
	// Errors are expected (partitions, injected drops) and ignored — the
	// property under test is absence of races and deadlocks.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = ch.MemcpySync(0, src, 0, dst.Descriptor(), 256, OpWrite)
			}
		}()
	}

	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Churn over: restore a clean fabric and prove it still moves bytes.
	f.SetHooks(Hooks{})
	f.Heal("hostA:1", "hostB:1")
	for i := range dst.Bytes() {
		dst.Bytes()[i] = 0
	}
	if err := ch.MemcpyRetry(0, src, 0, dst.Descriptor(), 256, OpWrite,
		TransferOpts{Deadline: 5 * time.Second}); err != nil {
		t.Fatalf("fabric unusable after control-plane churn: %v", err)
	}
	for i, got := range dst.Bytes() {
		if got != byte(i) {
			t.Fatalf("payload[%d] = %d, want %d", i, got, byte(i))
		}
	}
}
