package rdma

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{ErrUnreachable, true},
		{ErrInjected, true},
		{ErrBusy, true},
		{ErrRPCTimeout, true},
		{fmt.Errorf("wrapped: %w", ErrUnreachable), true},
		{ErrTimeout, false},
		{fmt.Errorf("%w (last: %w)", ErrTimeout, ErrUnreachable), false}, // budget already spent
		{ErrBounds, false},
		{ErrBadConfig, false},
		{ErrClosed, false},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Errorf("Retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// Transient drops (first few attempts fail) must be absorbed by MemcpyRetry,
// with the retry callback invoked per attempt.
func TestMemcpyRetryRecoversFromDrops(t *testing.T) {
	f, a, b := newPair(t)
	var attempts atomic.Int64
	f.SetHooks(Hooks{TransferFault: func(op Op, size int) error {
		if attempts.Add(1) <= 3 {
			return fmt.Errorf("test drop: %w", ErrInjected)
		}
		return nil
	}})
	defer f.SetHooks(Hooks{})

	src, _ := a.AllocateMemRegion(64)
	dst, _ := b.AllocateMemRegion(64)
	copy(src.Bytes(), []byte("the payload survives the drops!"))
	ch, _ := a.GetChannel("hostB:1", 0)

	var retries atomic.Int64
	opts := TransferOpts{Backoff: 10 * time.Microsecond, OnRetry: func(err error) {
		if !errors.Is(err, ErrInjected) {
			t.Errorf("OnRetry got %v, want ErrInjected", err)
		}
		retries.Add(1)
	}}
	if err := ch.MemcpyRetry(0, src, 0, dst.Descriptor(), 64, OpWrite, opts); err != nil {
		t.Fatal(err)
	}
	if got := string(dst.Bytes()[:31]); got != "the payload survives the drops!" {
		t.Errorf("payload corrupted: %q", got)
	}
	if retries.Load() != 3 {
		t.Errorf("retries = %d, want 3", retries.Load())
	}
}

// A permanent fault must exhaust the budget into a typed ErrTimeout that
// still exposes the last underlying error and classifies fatal.
func TestMemcpyRetryExhaustsToTimeout(t *testing.T) {
	f, a, b := newPair(t)
	f.SetHooks(Hooks{TransferFault: func(Op, int) error {
		return fmt.Errorf("test drop: %w", ErrInjected)
	}})
	defer f.SetHooks(Hooks{})

	src, _ := a.AllocateMemRegion(8)
	dst, _ := b.AllocateMemRegion(8)
	ch, _ := a.GetChannel("hostB:1", 0)
	start := time.Now()
	err := ch.MemcpyRetry(0, src, 0, dst.Descriptor(), 8, OpWrite,
		TransferOpts{Deadline: 100 * time.Millisecond, Backoff: time.Millisecond})
	if !errors.Is(err, ErrTimeout) || !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrTimeout wrapping ErrInjected", err)
	}
	if Retryable(err) {
		t.Error("exhausted budget classified retryable")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("gave up after %v, deadline was 100ms", elapsed)
	}
}

// Regression: a partition striking mid-transfer must not wedge the edge. The
// send keeps retrying, and once the partition heals the payload arrives
// intact; the bounded receiver Wait sees it.
func TestMidTransferPartitionHealsAndRecovers(t *testing.T) {
	f, a, b := newPair(t)
	const payload = 4096
	recvMR, _ := b.AllocateMemRegion(StaticSlotSize(payload))
	recv, err := NewStaticReceiver(recvMR, 0, payload)
	if err != nil {
		t.Fatal(err)
	}
	sendMR, _ := a.AllocateMemRegion(StaticSlotSize(payload))
	ch, _ := a.GetChannel("hostB:1", 0)
	send, err := NewStaticSender(ch, sendMR, 0, recv.Desc())
	if err != nil {
		t.Fatal(err)
	}
	for i := range send.Buffer() {
		send.Buffer()[i] = byte(i * 7)
	}

	f.Partition("hostA:1", "hostB:1")
	done := make(chan error, 1)
	go func() {
		done <- send.SendRetry(TransferOpts{Deadline: 10 * time.Second, Backoff: 100 * time.Microsecond})
	}()
	// Let the sender accumulate failed attempts mid-partition, then heal.
	time.Sleep(20 * time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("send finished during partition: %v", err)
	default:
	}
	f.Heal("hostA:1", "hostB:1")

	if err := <-done; err != nil {
		t.Fatalf("send after heal: %v", err)
	}
	if err := recv.Wait(TransferOpts{Deadline: 5 * time.Second}); err != nil {
		t.Fatalf("wait: %v", err)
	}
	for i, got := range recv.Payload() {
		if got != byte(i*7) {
			t.Fatalf("payload[%d] = %d, want %d", i, got, byte(i*7))
		}
	}
}

// A retrying send whose caller cancels mid-partition must give up with
// ErrCanceled and — the part that matters — never land its payload, even
// after the fabric heals. A canceled iteration's memory belongs to whoever
// aborted it; a late write would race the next iteration (this is the
// stale-retry race the recovery tests used to trip).
func TestSendRetryCanceledMidPartitionNeverLands(t *testing.T) {
	f, a, b := newPair(t)
	const payload = 256
	recvMR, _ := b.AllocateMemRegion(StaticSlotSize(payload))
	recv, err := NewStaticReceiver(recvMR, 0, payload)
	if err != nil {
		t.Fatal(err)
	}
	sendMR, _ := a.AllocateMemRegion(StaticSlotSize(payload))
	ch, _ := a.GetChannel("hostB:1", 0)
	send, err := NewStaticSender(ch, sendMR, 0, recv.Desc())
	if err != nil {
		t.Fatal(err)
	}

	var canceled atomic.Bool
	f.Partition("hostA:1", "hostB:1")
	done := make(chan error, 1)
	go func() {
		done <- send.SendRetry(TransferOpts{
			Deadline: 30 * time.Second,
			Backoff:  100 * time.Microsecond,
			Canceled: canceled.Load,
		})
	}()
	time.Sleep(10 * time.Millisecond) // accumulate failed attempts
	canceled.Store(true)
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled send did not return")
	}

	// The fabric heals, but the canceled transfer is dead: the receiver's
	// flag must stay clear.
	f.Heal("hostA:1", "hostB:1")
	time.Sleep(20 * time.Millisecond)
	if recv.Poll() {
		t.Fatal("canceled send landed after the partition healed")
	}

	// A pre-canceled operation never posts an attempt at all.
	if err := send.SendRetry(TransferOpts{Canceled: func() bool { return true }}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled err = %v, want ErrCanceled", err)
	}
	time.Sleep(5 * time.Millisecond)
	if recv.Poll() {
		t.Fatal("pre-canceled send still landed")
	}
}

// A partition that never heals must surface ErrTimeout wrapping
// ErrUnreachable within the deadline.
func TestSendRetryTimesOutAcrossPartition(t *testing.T) {
	f, a, b := newPair(t)
	const payload = 64
	recvMR, _ := b.AllocateMemRegion(StaticSlotSize(payload))
	recv, _ := NewStaticReceiver(recvMR, 0, payload)
	sendMR, _ := a.AllocateMemRegion(StaticSlotSize(payload))
	ch, _ := a.GetChannel("hostB:1", 0)
	send, _ := NewStaticSender(ch, sendMR, 0, recv.Desc())

	f.Partition("hostA:1", "hostB:1")
	start := time.Now()
	err := send.SendRetry(TransferOpts{Deadline: 200 * time.Millisecond, Backoff: time.Millisecond})
	if !errors.Is(err, ErrTimeout) || !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrTimeout wrapping ErrUnreachable", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("timed out after %v, deadline was 200ms", elapsed)
	}
}

// A bounded flag wait with no sender must return the typed timeout instead
// of spinning forever.
func TestStaticWaitDeadline(t *testing.T) {
	_, _, b := newPair(t)
	recvMR, _ := b.AllocateMemRegion(StaticSlotSize(32))
	recv, _ := NewStaticReceiver(recvMR, 0, 32)
	start := time.Now()
	err := recv.Wait(TransferOpts{Deadline: 50 * time.Millisecond})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("wait took %v for a 50ms deadline", elapsed)
	}
}

// The dynamic protocol's full retried round trip — metadata send, bounded
// metadata wait, payload fetch, awaited ack — under periodic transfer drops.
// FetchRetry must leave the sender reusable (the ack is retried and awaited,
// unlike fire-and-forget Fetch).
func TestDynProtocolRetriedRoundTripUnderDrops(t *testing.T) {
	f, a, b := newPair(t)
	var n atomic.Int64
	f.SetHooks(Hooks{TransferFault: func(Op, int) error {
		if n.Add(1)%3 == 0 { // every third transfer fails
			return fmt.Errorf("test drop: %w", ErrInjected)
		}
		return nil
	}})
	defer f.SetHooks(Hooks{})

	metaMR, _ := b.AllocateMemRegion(DynMetaSize)
	chBA, _ := b.GetChannel("hostA:1", 0)
	recv, err := NewDynReceiver(chBA, metaMR, 0)
	if err != nil {
		t.Fatal(err)
	}
	scratchMR, _ := a.AllocateMemRegion(DynMetaSize)
	chAB, _ := a.GetChannel("hostB:1", 0)
	send, err := NewDynSender(chAB, scratchMR, 0, recv.Desc())
	if err != nil {
		t.Fatal(err)
	}

	opts := TransferOpts{Deadline: 10 * time.Second, Backoff: 10 * time.Microsecond}
	for iter := 0; iter < 5; iter++ {
		size := 256 + 64*iter
		payloadMR, _ := a.AllocateMemRegion(size)
		for i := range payloadMR.Bytes() {
			payloadMR.Bytes()[i] = byte(i + iter)
		}
		if err := send.SendRetry(payloadMR, 0, size, 7, []uint64{uint64(size)}, opts); err != nil {
			t.Fatalf("iter %d send: %v", iter, err)
		}
		meta, err := recv.WaitMeta(opts)
		if err != nil {
			t.Fatalf("iter %d wait meta: %v", iter, err)
		}
		if int(meta.PayloadSize) != size || meta.DType != 7 {
			t.Fatalf("iter %d meta = %+v", iter, meta)
		}
		dst, _ := b.AllocateMemRegion(size)
		if err := recv.FetchRetry(meta, send.ScratchDesc(), dst, 0, opts); err != nil {
			t.Fatalf("iter %d fetch: %v", iter, err)
		}
		for i, got := range dst.Bytes()[:size] {
			if got != byte(i+iter) {
				t.Fatalf("iter %d payload[%d] = %d, want %d", iter, i, got, byte(i+iter))
			}
		}
		// FetchRetry awaited the ack: the sender is reusable immediately.
		if !send.PollReusable() {
			t.Fatalf("iter %d: sender not reusable after FetchRetry", iter)
		}
	}
	if n.Load() < 15 {
		t.Errorf("only %d transfers observed; drops were not exercised", n.Load())
	}
}

// CallRetry must absorb dropped RPC messages (request or response) within
// its budget.
func TestCallRetryRecoversFromMessageDrops(t *testing.T) {
	f, a, b := newPair(t)
	b.RegisterRPC("echo", func(from string, req []byte) ([]byte, error) {
		return append([]byte("re:"), req...), nil
	})
	var n atomic.Int64
	f.SetHooks(Hooks{MessageFault: func(size int) error {
		if n.Add(1) <= 2 { // drop the first two messages on the wire
			return fmt.Errorf("test msg drop: %w", ErrInjected)
		}
		return nil
	}})
	defer f.SetHooks(Hooks{})

	ch, _ := a.GetChannel("hostB:1", 0)
	resp, err := ch.CallRetry("echo", []byte("ping"), TransferOpts{Deadline: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "re:ping" {
		t.Errorf("resp = %q", resp)
	}
}
