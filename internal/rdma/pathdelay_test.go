package rdma

import (
	"sync"
	"testing"
	"time"
)

// PathDelay sees the (src, dst) endpoints of every one-sided transfer and
// stacks with TransferDelay, so endpoint-aware NIC contention models can
// ride alongside size-based wire-time models.
func TestPathDelayHookSeesEndpoints(t *testing.T) {
	f, a, b := newPair(t)
	var mu sync.Mutex
	var paths [][2]string
	var transferCalls int
	f.SetHooks(Hooks{
		TransferDelay: func(Op, int) time.Duration {
			mu.Lock()
			transferCalls++
			mu.Unlock()
			return 0
		},
		PathDelay: func(op Op, size int, src, dst string) time.Duration {
			if op != OpWrite || size != 64 {
				t.Errorf("path hook saw op=%v size=%d", op, size)
			}
			mu.Lock()
			paths = append(paths, [2]string{src, dst})
			mu.Unlock()
			return 0
		},
	})
	src, _ := a.AllocateMemRegion(64)
	dst, _ := b.AllocateMemRegion(64)
	ch, _ := a.GetChannel("hostB:1", 0)
	if err := ch.MemcpySync(0, src, 0, dst.Descriptor(), 64, OpWrite); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(paths) != 1 || paths[0] != [2]string{"hostA:1", "hostB:1"} {
		t.Fatalf("paths = %v, want [[hostA:1 hostB:1]]", paths)
	}
	if transferCalls != 1 {
		t.Fatalf("TransferDelay calls = %d, want 1 (hooks must compose)", transferCalls)
	}
}
