package rdma

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestRPCBasic(t *testing.T) {
	_, a, b := newPair(t)
	b.RegisterRPC("echo", func(from string, req []byte) ([]byte, error) {
		return append([]byte("echo:"), req...), nil
	})
	ch, _ := a.GetChannel("hostB:1", 0)
	resp, err := ch.Call("echo", []byte("ping"), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "echo:ping" {
		t.Errorf("resp = %q", resp)
	}
}

func TestRPCEmptyResponse(t *testing.T) {
	_, a, b := newPair(t)
	b.RegisterRPC("nop", func(from string, req []byte) ([]byte, error) { return nil, nil })
	ch, _ := a.GetChannel("hostB:1", 0)
	resp, err := ch.Call("nop", nil, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != 0 {
		t.Errorf("resp = %v", resp)
	}
}

func TestRPCHandlerError(t *testing.T) {
	_, a, b := newPair(t)
	b.RegisterRPC("fail", func(from string, req []byte) ([]byte, error) {
		return nil, fmt.Errorf("deliberate failure")
	})
	ch, _ := a.GetChannel("hostB:1", 0)
	_, err := ch.Call("fail", nil, 5*time.Second)
	if !errors.Is(err, ErrRPC) {
		t.Errorf("err = %v, want ErrRPC", err)
	}
}

func TestRPCNoHandler(t *testing.T) {
	_, a, _ := newPair(t)
	ch, _ := a.GetChannel("hostB:1", 0)
	_, err := ch.Call("missing", nil, 5*time.Second)
	if !errors.Is(err, ErrRPC) {
		t.Errorf("err = %v, want wrapped ErrRPC carrying no-handler text", err)
	}
}

func TestRPCTimeout(t *testing.T) {
	_, a, b := newPair(t)
	release := make(chan struct{})
	b.RegisterRPC("slow", func(from string, req []byte) ([]byte, error) {
		<-release
		return nil, nil
	})
	defer close(release)
	ch, _ := a.GetChannel("hostB:1", 0)
	_, err := ch.Call("slow", nil, 20*time.Millisecond)
	if !errors.Is(err, ErrRPCTimeout) {
		t.Errorf("err = %v, want ErrRPCTimeout", err)
	}
}

func TestRPCSeesCallerEndpoint(t *testing.T) {
	_, a, b := newPair(t)
	b.RegisterRPC("who", func(from string, req []byte) ([]byte, error) {
		return []byte(from), nil
	})
	ch, _ := a.GetChannel("hostB:1", 0)
	resp, err := ch.Call("who", nil, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "hostA:1" {
		t.Errorf("from = %q", resp)
	}
}

func TestRPCConcurrentCalls(t *testing.T) {
	_, a, b := newPair(t)
	b.RegisterRPC("double", func(from string, req []byte) ([]byte, error) {
		out := make([]byte, len(req))
		for i, v := range req {
			out[i] = v * 2
		}
		return out, nil
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch, err := a.GetChannel("hostB:1", g%4)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < 25; i++ {
				resp, err := ch.Call("double", []byte{byte(g), byte(i)}, 5*time.Second)
				if err != nil {
					t.Error(err)
					return
				}
				if len(resp) != 2 || resp[0] != byte(g)*2 || resp[1] != byte(i)*2 {
					t.Errorf("g=%d i=%d resp=%v", g, i, resp)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestRPCAddressDistribution(t *testing.T) {
	// The use case the vanilla RPC exists for: distribute a region
	// descriptor, then write to it one-sidedly.
	_, a, b := newPair(t)
	dst, _ := b.AllocateMemRegion(64)
	b.RegisterRPC("get-region", func(from string, req []byte) ([]byte, error) {
		return dst.Descriptor().Marshal(), nil
	})
	ch, _ := a.GetChannel("hostB:1", 0)
	resp, err := ch.Call("get-region", nil, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := UnmarshalRemoteRegion(resp)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := a.AllocateMemRegion(64)
	src.Bytes()[0] = 0xAB
	if err := ch.MemcpySync(0, src, 0, remote, 64, OpWrite); err != nil {
		t.Fatal(err)
	}
	if dst.Bytes()[0] != 0xAB {
		t.Error("write through distributed address failed")
	}
}

func TestRPCAfterCloseFails(t *testing.T) {
	f := NewFabric()
	a, _ := CreateDevice(f, Config{Endpoint: "ra:1"})
	b, _ := CreateDevice(f, Config{Endpoint: "rb:1"})
	defer b.Close()
	ch, _ := a.GetChannel("rb:1", 0)
	a.Close()
	if _, err := ch.Call("x", nil, time.Second); !errors.Is(err, ErrClosed) {
		t.Errorf("call after close: %v", err)
	}
}
