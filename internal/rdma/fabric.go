package rdma

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Common error values returned by the device library.
var (
	ErrClosed      = errors.New("rdma: device closed")
	ErrNoSuchPeer  = errors.New("rdma: no such peer endpoint")
	ErrBounds      = errors.New("rdma: memory access out of region bounds")
	ErrUnreachable = errors.New("rdma: peer unreachable (partitioned)")
	ErrBadConfig   = errors.New("rdma: invalid device configuration")
)

// Hooks allows tests and simulators to observe or delay fabric activity.
type Hooks struct {
	// TransferDelay, if non-nil, returns an artificial latency applied
	// before a one-sided transfer of the given size executes.
	TransferDelay func(op Op, size int) time.Duration
	// OnTransfer, if non-nil, is invoked after every completed one-sided
	// transfer (for counters).
	OnTransfer func(op Op, size int)
}

// Fabric is the emulated RDMA network: a registry of devices keyed by
// endpoint ("host:port") plus optional fault/latency injection. One Fabric
// models one isolated cluster; tests create as many as they need.
type Fabric struct {
	mu         sync.RWMutex
	devices    map[string]*Device
	partitions map[[2]string]bool
	hooks      Hooks
}

// NewFabric creates an empty fabric.
func NewFabric() *Fabric {
	return &Fabric{
		devices:    make(map[string]*Device),
		partitions: make(map[[2]string]bool),
	}
}

// SetHooks installs fault/latency hooks. It must be called before devices
// begin transferring.
func (f *Fabric) SetHooks(h Hooks) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hooks = h
}

// Partition severs connectivity between two endpoints (both directions).
func (f *Fabric) Partition(a, b string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.partitions[partitionKey(a, b)] = true
}

// Heal restores connectivity between two endpoints.
func (f *Fabric) Heal(a, b string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.partitions, partitionKey(a, b))
}

func partitionKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

func (f *Fabric) register(d *Device) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.devices[d.endpoint]; ok {
		return fmt.Errorf("rdma: endpoint %q already registered: %w", d.endpoint, ErrBadConfig)
	}
	f.devices[d.endpoint] = d
	return nil
}

func (f *Fabric) unregister(endpoint string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.devices, endpoint)
}

// lookup resolves a peer endpoint, honouring partitions from the caller.
func (f *Fabric) lookup(from, to string) (*Device, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.partitions[partitionKey(from, to)] {
		return nil, fmt.Errorf("rdma: %s -> %s: %w", from, to, ErrUnreachable)
	}
	d, ok := f.devices[to]
	if !ok {
		return nil, fmt.Errorf("rdma: %s -> %s: %w", from, to, ErrNoSuchPeer)
	}
	return d, nil
}

func (f *Fabric) hooksSnapshot() Hooks {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.hooks
}

// Endpoints returns the endpoints currently registered, for diagnostics.
func (f *Fabric) Endpoints() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	eps := make([]string, 0, len(f.devices))
	for ep := range f.devices {
		eps = append(eps, ep)
	}
	return eps
}
