package rdma

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Common error values returned by the device library.
var (
	ErrClosed      = errors.New("rdma: device closed")
	ErrNoSuchPeer  = errors.New("rdma: no such peer endpoint")
	ErrBounds      = errors.New("rdma: memory access out of region bounds")
	ErrUnreachable = errors.New("rdma: peer unreachable (partitioned)")
	ErrBadConfig   = errors.New("rdma: invalid device configuration")
	// ErrInjected marks a failure introduced by a fault-injection hook.
	// Injected failures are transient by construction and classified
	// retryable (see Retryable).
	ErrInjected = errors.New("rdma: injected fault")
)

// CompletionFault instructs the emulator to misbehave when reporting one
// work completion: hold the completion back for Delay, and/or post it
// twice. Both happen on real fabrics (slow CQ moderation, retransmit after
// a lost ack) and both must be tolerated by consumers.
type CompletionFault struct {
	Delay     time.Duration
	Duplicate bool
}

// Hooks allows tests and simulators to observe, delay, or corrupt fabric
// activity. All hooks may be invoked concurrently from many QP goroutines
// and must be safe for concurrent use. Installing hooks mid-flight is safe:
// each work request snapshots the hook set once.
type Hooks struct {
	// TransferDelay, if non-nil, returns an artificial latency applied
	// before a one-sided transfer of the given size executes.
	TransferDelay func(op Op, size int) time.Duration
	// PathDelay, if non-nil, returns an artificial latency for a
	// one-sided transfer between two named endpoints. Unlike
	// TransferDelay it sees the path, so a model can serialize transfers
	// sharing a NIC (e.g. a parameter server's incast) while letting
	// disjoint paths proceed concurrently. Applied in addition to
	// TransferDelay.
	PathDelay func(op Op, size int, src, dst string) time.Duration
	// OnTransfer, if non-nil, is invoked after every completed one-sided
	// transfer (for counters).
	OnTransfer func(op Op, size int)
	// TransferFault, if non-nil, is consulted before a one-sided transfer
	// touches memory. A non-nil return fails the work request with that
	// error and leaves both regions untouched (a dropped/NAKed WR). Wrap
	// ErrInjected (or ErrUnreachable) so consumers classify it transient.
	TransferFault func(op Op, size int) error
	// WriteReorder, if non-nil and returning true for a write, makes the
	// transfer's final word visible before the rest of the payload —
	// violating the in-order DMA guarantee flag-based protocols depend on.
	WriteReorder func(op Op, size int) bool
	// CompletionFault, if non-nil, can delay or duplicate the completion
	// of a one-sided transfer.
	CompletionFault func(op Op, size int) CompletionFault
	// MessageFault, if non-nil, is consulted before a two-sided message is
	// delivered; a non-nil return fails the send without delivery.
	MessageFault func(size int) error
	// Lossy switches the fabric's loss model for semantically tagged chunk
	// writes (the lossy selective-retransmit protocol, retransmit.go): with
	// Lossy set, a ChunkDrop hit loses the chunk silently — the sender's
	// completion still succeeds, the memory stays untouched — the way an
	// unreliable datagram fabric drops packets without NAKing. Untagged
	// writes (all the lossless protocols, and the lossy protocol's control
	// words) keep reliable error-based semantics regardless.
	Lossy bool
	// ChunkDrop, if non-nil and Lossy is set, decides per tagged chunk
	// write whether the fabric loses it.
	ChunkDrop func(tag ChunkTag, size int) bool
	// OnChunkStale, if non-nil, observes tagged chunks discarded by the
	// receiver-side epoch guard (a retransmit landing after its iteration
	// was superseded or aborted).
	OnChunkStale func(tag ChunkTag)
}

// Fabric is the emulated RDMA network: a registry of devices keyed by
// endpoint ("host:port") plus optional fault/latency injection. One Fabric
// models one isolated cluster; tests create as many as they need.
type Fabric struct {
	mu         sync.RWMutex
	devices    map[string]*Device
	partitions map[[2]string]bool
	hooks      Hooks

	// regionSeq issues memory-region ids fabric-wide, so a restarted
	// endpoint never reuses an id a dead incarnation handed out (stale work
	// requests then fail region lookup instead of hitting fresh memory).
	regionSeq atomic.Uint32
}

// NewFabric creates an empty fabric.
func NewFabric() *Fabric {
	return &Fabric{
		devices:    make(map[string]*Device),
		partitions: make(map[[2]string]bool),
	}
}

// SetHooks installs fault/latency hooks. It is safe to call while devices
// are transferring: in-flight work requests keep the snapshot they took.
func (f *Fabric) SetHooks(h Hooks) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hooks = h
}

// Partition severs connectivity between two endpoints (both directions).
func (f *Fabric) Partition(a, b string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.partitions[partitionKey(a, b)] = true
}

// Heal restores connectivity between two endpoints.
func (f *Fabric) Heal(a, b string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.partitions, partitionKey(a, b))
}

func partitionKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

func (f *Fabric) register(d *Device) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.devices[d.endpoint]; ok {
		return fmt.Errorf("rdma: endpoint %q already registered: %w", d.endpoint, ErrBadConfig)
	}
	f.devices[d.endpoint] = d
	return nil
}

func (f *Fabric) unregister(endpoint string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.devices, endpoint)
}

// lookup resolves a peer endpoint, honouring partitions from the caller.
func (f *Fabric) lookup(from, to string) (*Device, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.partitions[partitionKey(from, to)] {
		return nil, fmt.Errorf("rdma: %s -> %s: %w", from, to, ErrUnreachable)
	}
	d, ok := f.devices[to]
	if !ok {
		return nil, fmt.Errorf("rdma: %s -> %s: %w", from, to, ErrNoSuchPeer)
	}
	return d, nil
}

func (f *Fabric) nextRegionID() uint32 {
	return f.regionSeq.Add(1)
}

func (f *Fabric) hooksSnapshot() Hooks {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.hooks
}

// Endpoints returns the endpoints currently registered, for diagnostics.
func (f *Fabric) Endpoints() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	eps := make([]string, 0, len(f.devices))
	for ep := range f.devices {
		eps = append(eps, ep)
	}
	return eps
}
