package rdma

import "testing"

// FuzzUnmarshalRetransmitDesc: the lossy protocol's epoch-announcement
// decoder must be total on arbitrary bytes (the receiver reassembles it
// from remotely written words, so torn or hostile inputs are routine) and
// accepted descriptors must round-trip through Marshal.
func FuzzUnmarshalRetransmitDesc(f *testing.F) {
	f.Add(RetransmitDesc{}.Marshal())
	f.Add(RetransmitDesc{TensorID: 0xBEEF, Chunks: 8, PayloadSize: 1 << 20, Epoch: 3}.Marshal())
	f.Add(RetransmitDesc{TensorID: ^uint64(0), Chunks: ^uint32(0), PayloadSize: ^uint64(0), Epoch: ^uint64(0)}.Marshal())
	f.Add([]byte{1, 2, 3})

	f.Fuzz(func(t *testing.T, b []byte) {
		d, err := UnmarshalRetransmitDesc(b)
		if err != nil {
			return
		}
		got, err := UnmarshalRetransmitDesc(d.Marshal())
		if err != nil || got != d {
			t.Fatalf("round trip %+v -> %+v (%v)", d, got, err)
		}
	})
}

// FuzzUnmarshalNackDesc: same totality and round-trip contract for the
// receiver→sender NACK/ack header.
func FuzzUnmarshalNackDesc(f *testing.F) {
	f.Add(NackDesc{}.Marshal())
	f.Add(NackDesc{TensorID: 7, Missing: 0b1010, Seq: 4, Epoch: 9}.Marshal())
	f.Add(NackDesc{TensorID: ^uint64(0), Missing: ^uint64(0), Seq: ^uint64(0), Epoch: ^uint64(0)}.Marshal())
	f.Add([]byte{0xff})

	f.Fuzz(func(t *testing.T, b []byte) {
		d, err := UnmarshalNackDesc(b)
		if err != nil {
			return
		}
		got, err := UnmarshalNackDesc(d.Marshal())
		if err != nil || got != d {
			t.Fatalf("round trip %+v -> %+v (%v)", d, got, err)
		}
	})
}
