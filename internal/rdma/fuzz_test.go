package rdma

import (
	"bytes"
	"testing"
)

// Fuzz targets for the wire-facing decoders. These run against arbitrary
// bytes: the decoders must never panic, and any input they accept must
// survive a canonical re-marshal round trip. Seeds come from real Marshal
// output plus truncations so the corpus starts on the interesting paths.

func staticDescSeed() StaticSlotDesc {
	return StaticSlotDesc{
		Region:      RemoteRegion{Endpoint: "hostB:1", RegionID: 3, Size: 4096},
		Off:         128,
		PayloadSize: 1024,
	}
}

func FuzzUnmarshalStaticSlotDesc(f *testing.F) {
	full := staticDescSeed().Marshal()
	f.Add(full)
	f.Add(full[:len(full)-1]) // truncated region tail
	f.Add(full[:16])          // header only, no region
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64)) // huge endpoint length prefix
	f.Fuzz(func(t *testing.T, b []byte) {
		d, err := UnmarshalStaticSlotDesc(b)
		if err != nil {
			return
		}
		// Accepted input must round-trip through Marshal exactly.
		d2, err := UnmarshalStaticSlotDesc(d.Marshal())
		if err != nil {
			t.Fatalf("re-unmarshal of accepted desc failed: %v", err)
		}
		if d != d2 {
			t.Fatalf("round trip diverged: %+v != %+v", d, d2)
		}
	})
}

func FuzzUnmarshalDynSlotDesc(f *testing.F) {
	full := DynSlotDesc{
		Region: RemoteRegion{Endpoint: "ps0:1", RegionID: 7, Size: 1 << 20},
		Off:    240,
	}.Marshal()
	f.Add(full)
	f.Add(full[:8]) // offset only, no region
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x01}, 24))
	f.Fuzz(func(t *testing.T, b []byte) {
		d, err := UnmarshalDynSlotDesc(b)
		if err != nil {
			return
		}
		d2, err := UnmarshalDynSlotDesc(d.Marshal())
		if err != nil {
			t.Fatalf("re-unmarshal of accepted desc failed: %v", err)
		}
		if d != d2 {
			t.Fatalf("round trip diverged: %+v != %+v", d, d2)
		}
	})
}

func FuzzDecodeDynMeta(f *testing.F) {
	f.Add(make([]byte, DynMetaSize))
	f.Add(make([]byte, dynMetaFlagOff))
	f.Add(make([]byte, dynMetaFlagOff-1)) // one byte short
	f.Add([]byte{})
	huge := make([]byte, DynMetaSize)
	for i := range huge {
		huge[i] = 0xff // rank out of range, sizes at uint64 max
	}
	f.Add(huge)
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := DecodeDynMeta(b, "fuzz-sender")
		if err != nil {
			if len(b) >= dynMetaFlagOff {
				t.Fatalf("full-size block rejected: %v", err)
			}
			return
		}
		if len(b) < dynMetaFlagOff {
			t.Fatalf("short block (%d bytes) accepted", len(b))
		}
		if len(m.Dims) > MaxDims {
			t.Fatalf("decoded rank %d exceeds MaxDims", len(m.Dims))
		}
		if m.Src.Endpoint != "fuzz-sender" {
			t.Fatalf("source endpoint %q not taken from the edge", m.Src.Endpoint)
		}
	})
}
