package rdma

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Vanilla RPC over the two-sided messaging verbs (§3.1): "the library also
// provides a simple vanilla RPC mechanism implemented using the RDMA
// send/recv verbs for this auxiliary purpose of distributing remote memory
// addresses. This address distribution process is often not on the critical
// path of the application, and hence not performance critical."

// ErrRPC wraps handler-reported failures.
var ErrRPC = errors.New("rdma: rpc handler error")

// ErrRPCTimeout is returned when a call's deadline expires.
var ErrRPCTimeout = errors.New("rdma: rpc timeout")

// ErrNoHandler is returned when the remote device has no handler registered
// for the requested method.
var ErrNoHandler = errors.New("rdma: no rpc handler for method")

const (
	rpcMagic    byte = 0xA7
	rpcKindReq  byte = 0
	rpcKindResp byte = 1
)

type rpcState struct {
	mu       sync.Mutex
	handlers map[string]RPCHandler
	pending  map[uint64]chan rpcResult
	nextID   uint64
	failed   error
}

// RPCHandler serves one RPC method. It runs on its own goroutine per call.
type RPCHandler func(from string, req []byte) ([]byte, error)

type rpcResult struct {
	payload []byte
	err     error
}

func (r *rpcState) init() {
	r.handlers = make(map[string]RPCHandler)
	r.pending = make(map[uint64]chan rpcResult)
}

func (r *rpcState) failAll(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.failed = err
	for id, ch := range r.pending {
		ch <- rpcResult{err: err}
		delete(r.pending, id)
	}
}

// RegisterRPC installs a handler for the named method.
func (d *Device) RegisterRPC(method string, h RPCHandler) {
	d.rpc.mu.Lock()
	defer d.rpc.mu.Unlock()
	d.rpc.handlers[method] = h
}

// Call performs a vanilla RPC to the remote endpoint over the channel's QP
// and blocks for the response or the timeout.
func (c *Channel) Call(method string, req []byte, timeout time.Duration) ([]byte, error) {
	d := c.dev
	d.rpc.mu.Lock()
	if d.rpc.failed != nil {
		d.rpc.mu.Unlock()
		return nil, d.rpc.failed
	}
	d.rpc.nextID++
	id := d.rpc.nextID
	resCh := make(chan rpcResult, 1)
	d.rpc.pending[id] = resCh
	d.rpc.mu.Unlock()

	msg := encodeRPCRequest(id, method, req)
	if err := c.SendMsg(msg, func(err error) {
		if err != nil {
			d.rpc.complete(id, rpcResult{err: err})
		}
	}); err != nil {
		d.rpc.complete(id, rpcResult{}) // drop pending entry
		return nil, err
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case res := <-resCh:
		return res.payload, res.err
	case <-timer.C:
		d.rpc.complete(id, rpcResult{}) // drop pending entry
		return nil, fmt.Errorf("rdma: call %q to %s after %v: %w", method, c.remote, timeout, ErrRPCTimeout)
	}
}

func (r *rpcState) complete(id uint64, res rpcResult) {
	r.mu.Lock()
	ch, ok := r.pending[id]
	delete(r.pending, id)
	r.mu.Unlock()
	if ok && (res.payload != nil || res.err != nil) {
		ch <- res
	}
}

func encodeRPCRequest(id uint64, method string, req []byte) []byte {
	buf := make([]byte, 0, 1+1+8+2+len(method)+len(req))
	buf = append(buf, rpcMagic, rpcKindReq)
	buf = binary.LittleEndian.AppendUint64(buf, id)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(method)))
	buf = append(buf, method...)
	buf = append(buf, req...)
	return buf
}

func encodeRPCResponse(id uint64, payload []byte, herr error) []byte {
	status := byte(0)
	body := payload
	if herr != nil {
		status = 1
		body = []byte(herr.Error())
	}
	buf := make([]byte, 0, 1+1+8+1+len(body))
	buf = append(buf, rpcMagic, rpcKindResp)
	buf = binary.LittleEndian.AppendUint64(buf, id)
	buf = append(buf, status)
	buf = append(buf, body...)
	return buf
}

// handleRPCMessage runs on the device's message dispatcher goroutine.
func (d *Device) handleRPCMessage(from string, payload []byte) {
	if len(payload) < 10 {
		return // malformed; drop like a NIC would a bad frame
	}
	kind := payload[1]
	id := binary.LittleEndian.Uint64(payload[2:])
	body := payload[10:]
	switch kind {
	case rpcKindReq:
		if len(body) < 2 {
			return
		}
		mlen := int(binary.LittleEndian.Uint16(body))
		if len(body) < 2+mlen {
			return
		}
		method := string(body[2 : 2+mlen])
		req := body[2+mlen:]
		d.rpc.mu.Lock()
		h := d.rpc.handlers[method]
		d.rpc.mu.Unlock()
		// Serve on a fresh goroutine so a slow handler does not block the
		// dispatcher (and so handlers may themselves issue RPCs).
		go func() {
			var resp []byte
			var herr error
			if h == nil {
				herr = fmt.Errorf("%w: %q on %s", ErrNoHandler, method, d.endpoint)
			} else {
				resp, herr = h(from, req)
			}
			ch, err := d.GetChannel(from, 0)
			if err != nil {
				return
			}
			_ = ch.SendMsg(encodeRPCResponse(id, resp, herr), nil)
		}()
	case rpcKindResp:
		if len(body) < 1 {
			return
		}
		res := rpcResult{}
		if body[0] == 0 {
			res.payload = append([]byte(nil), body[1:]...)
			if res.payload == nil {
				res.payload = []byte{}
			}
		} else {
			res.err = fmt.Errorf("%w: %s", ErrRPC, string(body[1:]))
		}
		d.rpc.complete(id, res)
	}
}
