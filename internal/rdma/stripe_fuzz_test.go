package rdma

import "testing"

// FuzzUnmarshalStripeDesc feeds arbitrary bytes to the stripe-descriptor
// decoder: it must never panic, accepted descriptors must round-trip through
// Marshal, and — the part the transfer paths rely on — Chunks() of any
// decoded descriptor must partition the payload into disjoint, covering,
// non-empty pieces bounded by MaxStripes.
func FuzzUnmarshalStripeDesc(f *testing.F) {
	f.Add(StripeDesc{}.Marshal())
	f.Add(StripeDesc{PayloadSize: 4096, Stripes: 4}.Marshal())
	f.Add(StripeDesc{PayloadSize: 1<<63 + 7, Stripes: 1<<32 - 1}.Marshal())
	f.Add([]byte{1, 2, 3})

	f.Fuzz(func(t *testing.T, b []byte) {
		d, err := UnmarshalStripeDesc(b)
		if err != nil {
			return
		}
		got, err := UnmarshalStripeDesc(d.Marshal())
		if err != nil || got != d {
			t.Fatalf("round trip %+v -> %+v (%v)", d, got, err)
		}
		chunks := d.Chunks()
		if len(chunks) > MaxStripes {
			t.Fatalf("%+v: %d chunks exceed MaxStripes", d, len(chunks))
		}
		off := 0
		for i, c := range chunks {
			if c.Off != off || c.Size <= 0 {
				t.Fatalf("%+v: chunk %d = {%d,%d}, expected off %d", d, i, c.Off, c.Size, off)
			}
			off += c.Size
		}
		if len(chunks) > 0 && uint64(off) != d.PayloadSize {
			t.Fatalf("%+v: chunks cover %d of %d bytes", d, off, d.PayloadSize)
		}
	})
}

// FuzzUnmarshalCoalescedSlotDesc: the coalesced slot descriptor decoder must
// be total and accepted inputs must round-trip through Marshal.
func FuzzUnmarshalCoalescedSlotDesc(f *testing.F) {
	f.Add(CoalescedSlotDesc{Region: RemoteRegion{Endpoint: "h:1", RegionID: 3, Size: 64}, Off: 8, Capacity: 32}.Marshal())
	f.Add(CoalescedSlotDesc{}.Marshal())
	f.Add([]byte{0xff})

	f.Fuzz(func(t *testing.T, b []byte) {
		d, err := UnmarshalCoalescedSlotDesc(b)
		if err != nil {
			return
		}
		got, err := UnmarshalCoalescedSlotDesc(d.Marshal())
		if err != nil {
			t.Fatalf("canonical re-encoding rejected: %v", err)
		}
		if got != d {
			t.Fatalf("round trip %+v -> %+v", d, got)
		}
	})
}
