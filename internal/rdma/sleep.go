package rdma

import "time"

// sleep is indirected so tests can replace real waiting when exercising the
// fabric's latency-injection hooks.
var sleep = time.Sleep
