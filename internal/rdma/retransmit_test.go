package rdma

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

const testTensorID = 0xBEEF

// lossyPair wires one LossySender/LossyReceiver edge across a two-device
// fabric, with the sender's NACK scratch already installed on the receiver.
func newLossyPair(t *testing.T, payload, lanes int, nackInterval time.Duration) (*Fabric, *LossySender, *LossyReceiver) {
	t.Helper()
	f := NewFabric()
	a, err := CreateDevice(f, Config{Endpoint: "sndr:1", QPsPerPeer: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CreateDevice(f, Config{Endpoint: "rcvr:1", QPsPerPeer: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	rmr, err := b.AllocateMemRegion(LossySlotSize(payload))
	if err != nil {
		t.Fatal(err)
	}
	rch, err := b.GetChannel("sndr:1", 0)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := NewLossyReceiver(rch, rmr, 0, payload, testTensorID,
		LossyReceiverConfig{NackInterval: nackInterval})
	if err != nil {
		t.Fatal(err)
	}
	smr, err := a.AllocateMemRegion(StaticSlotSize(payload))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := a.GetChannel("rcvr:1", 0)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := NewStaticSender(ch, smr, 0, recv.Desc())
	if err != nil {
		t.Fatal(err)
	}
	for lane := 1; lane < lanes; lane++ {
		lch, err := a.GetChannel("rcvr:1", lane)
		if err != nil {
			t.Fatal(err)
		}
		if err := ss.AddLane(lch); err != nil {
			t.Fatal(err)
		}
	}
	send, err := NewLossySender(ss, testTensorID)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { send.Close(); recv.Close() })
	recv.SetSenderScratch(send.NackScratch())
	return f, send, recv
}

// deliver runs one send while polling the receiver, returning the received
// payload copy and the sender's error.
func deliver(t *testing.T, send *LossySender, recv *LossyReceiver, payload []byte, opts TransferOpts) ([]byte, error) {
	t.Helper()
	errc := make(chan error, 1)
	go func() { errc <- send.SendRetryFrom(payload, opts) }()
	deadline := time.Now().Add(opts.Deadline + 2*time.Second)
	for !recv.Poll() {
		if time.Now().After(deadline) {
			return nil, <-errc
		}
		time.Sleep(20 * time.Microsecond)
	}
	got := append([]byte(nil), recv.Payload()...)
	recv.Consume()
	// Keep pumping the completion ack until the sender unblocks.
	for {
		select {
		case err := <-errc:
			return got, err
		default:
			recv.Poll()
			time.Sleep(20 * time.Microsecond)
		}
	}
}

func TestLossyRoundTripNoLoss(t *testing.T) {
	const payload = 1 << 12
	_, send, recv := newLossyPair(t, payload, 4, time.Millisecond)
	opts := TransferOpts{Deadline: 5 * time.Second, Stripes: 4}
	rng := rand.New(rand.NewSource(1))
	for round := 0; round < 5; round++ {
		want := make([]byte, payload)
		rng.Read(want)
		got, err := deliver(t, send, recv, want, opts)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("round %d: payload mismatch", round)
		}
	}
	if send.Retransmits() != 0 || send.FullResends() != 0 {
		t.Errorf("lossless run retransmitted: retransmits=%d fullResends=%d",
			send.Retransmits(), send.FullResends())
	}
}

// TestLossySelectiveRetransmit drops specific chunks' first transmission and
// asserts recovery re-sends only those chunks: delivered chunks are never
// replayed, and the tensor is never re-announced (no go-back-N).
func TestLossySelectiveRetransmit(t *testing.T) {
	const payload = 1 << 13
	const stripes = 8
	f, send, recv := newLossyPair(t, payload, 4, time.Millisecond)

	dropped := map[uint32]bool{1: true, 3: true, 6: true}
	var mu sync.Mutex
	sent := map[uint32]int{} // per-chunk transmission count
	f.SetHooks(Hooks{
		Lossy: true,
		ChunkDrop: func(tag ChunkTag, size int) bool {
			mu.Lock()
			defer mu.Unlock()
			sent[tag.Seq]++
			return dropped[tag.Seq] && sent[tag.Seq] == 1
		},
	})

	want := make([]byte, payload)
	rand.New(rand.NewSource(2)).Read(want)
	got, err := deliver(t, send, recv, want, TransferOpts{Deadline: 5 * time.Second, Stripes: stripes})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("payload mismatch after selective retransmit")
	}
	if send.Retransmits() < int64(len(dropped)) {
		t.Errorf("retransmits = %d, want >= %d", send.Retransmits(), len(dropped))
	}
	if send.FullResends() != 0 {
		t.Errorf("fullResends = %d: recovery replayed the whole tensor", send.FullResends())
	}
	if send.Nacks() == 0 {
		t.Error("no NACK was served")
	}
	mu.Lock()
	defer mu.Unlock()
	for seq, n := range sent {
		if !dropped[seq] && n != 1 {
			t.Errorf("chunk %d transmitted %d times; delivered chunks must never be replayed", seq, n)
		}
	}
}

// TestLossyRandomDropsBitIdentical delivers under seeded 1–20%% chunk loss
// and asserts the received bytes stay bit-identical with bounded recovery.
func TestLossyRandomDropsBitIdentical(t *testing.T) {
	const payload = 1 << 13
	for _, rate := range []float64{0.01, 0.05, 0.20} {
		rate := rate
		t.Run(fmt.Sprintf("drop=%g", rate), func(t *testing.T) {
			f, send, recv := newLossyPair(t, payload, 4, 200*time.Microsecond)
			var mu sync.Mutex
			drng := rand.New(rand.NewSource(int64(rate * 1000)))
			f.SetHooks(Hooks{
				Lossy: true,
				ChunkDrop: func(tag ChunkTag, size int) bool {
					mu.Lock()
					defer mu.Unlock()
					return drng.Float64() < rate
				},
			})
			prng := rand.New(rand.NewSource(3))
			opts := TransferOpts{Deadline: 10 * time.Second, Stripes: 8}
			for round := 0; round < 4; round++ {
				want := make([]byte, payload)
				prng.Read(want)
				got, err := deliver(t, send, recv, want, opts)
				if err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("round %d: payload mismatch under %g%% loss", round, 100*rate)
				}
			}
			if send.FullResends() != 0 {
				t.Errorf("fullResends = %d under chunk loss; recovery must stay selective", send.FullResends())
			}
		})
	}
}

// TestLossyBlackholeFailsTyped drops every chunk of the tensor: the send
// must fail with ErrTimeout, bounded by the deadline — not hang, not replay
// the connection.
func TestLossyBlackholeFailsTyped(t *testing.T) {
	const payload = 1 << 10
	f, send, recv := newLossyPair(t, payload, 2, 100*time.Microsecond)
	f.SetHooks(Hooks{
		Lossy: true,
		ChunkDrop: func(tag ChunkTag, size int) bool {
			return tag.TensorID == testTensorID
		},
	})
	stop := make(chan struct{})
	go func() {
		// Keep the receiver NACKing so the failure mode under test is "all
		// retransmits lost", not "nobody asked".
		for {
			select {
			case <-stop:
				return
			default:
				recv.Poll()
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()
	defer close(stop)
	start := time.Now()
	err := send.SendRetryFrom(make([]byte, payload), TransferOpts{Deadline: 300 * time.Millisecond, Stripes: 2})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("blackholed send: err = %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("blackholed send took %v; failure must be bounded", elapsed)
	}
}

// TestLossyCancelMidLoss pins the PR-5 cancellation contract under loss:
// once Canceled reports true, the sender fails fast with ErrCanceled
// instead of retransmitting into memory the aborting iteration may reuse.
func TestLossyCancelMidLoss(t *testing.T) {
	const payload = 1 << 10
	f, send, recv := newLossyPair(t, payload, 2, 100*time.Microsecond)
	canceled := make(chan struct{})
	f.SetHooks(Hooks{
		Lossy: true,
		ChunkDrop: func(tag ChunkTag, size int) bool { return true },
	})
	go func() {
		for i := 0; i < 20; i++ {
			recv.Poll()
			time.Sleep(100 * time.Microsecond)
		}
		close(canceled)
	}()
	err := send.SendRetryFrom(make([]byte, payload), TransferOpts{
		Deadline: 10 * time.Second,
		Stripes:  2,
		Canceled: func() bool {
			select {
			case <-canceled:
				return true
			default:
				return false
			}
		},
	})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled lossy send: err = %v, want ErrCanceled", err)
	}
}

// TestLossyStaleChunkDiscarded delivers two epochs, then replays an
// epoch-1 chunk on the wire (a straggling retransmit): the receiver's
// epoch guard must discard it whole — no byte lands, the arrival stamp
// stays at epoch 2, and the staleness is observable via OnChunkStale.
func TestLossyStaleChunkDiscarded(t *testing.T) {
	const payload = 1 << 10
	f, send, recv := newLossyPair(t, payload, 2, time.Millisecond)
	var mu sync.Mutex
	stale := 0
	f.SetHooks(Hooks{
		OnChunkStale: func(tag ChunkTag) {
			mu.Lock()
			stale++
			mu.Unlock()
		},
	})
	opts := TransferOpts{Deadline: 5 * time.Second, Stripes: 4}
	p1 := bytes.Repeat([]byte{0x11}, payload)
	p2 := bytes.Repeat([]byte{0x22}, payload)
	if _, err := deliver(t, send, recv, p1, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := deliver(t, send, recv, p2, opts); err != nil {
		t.Fatal(err)
	}
	// Straggler: replay epoch 1's chunk 0 with stale bytes in staging.
	for i := range send.Buffer() {
		send.Buffer()[i] = 0x99
	}
	chunks := send.chunkSet(4)
	err := send.ch.postTaggedChunks(send.mr, send.desc.Region, send.lay, []taggedReq{{
		localOff: send.off + chunks[0].Off, remoteOff: send.desc.Off + chunks[0].Off,
		size: chunks[0].Size,
		tag:  ChunkTag{TensorID: testTensorID, Seq: 0, Epoch: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := stale
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stale chunk was never observed as discarded")
		}
		time.Sleep(50 * time.Microsecond)
	}
	if !bytes.Equal(recv.Payload(), p2) {
		t.Fatal("stale epoch-1 chunk corrupted epoch-2 memory")
	}
	if got := recv.mr.LoadWord(recv.lay.arrival); got != 2 {
		t.Fatalf("arrival[0] = %d, want epoch 2", got)
	}
}

// TestPlaceChunkEpochGuard unit-tests the guard primitive: a chunk whose
// epoch no longer matches the armed guard is rejected without touching
// memory, atomically with respect to re-arming.
func TestPlaceChunkEpochGuard(t *testing.T) {
	f := NewFabric()
	d, err := CreateDevice(f, Config{Endpoint: "x:1"})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	const payload = 128
	mr, err := d.AllocateMemRegion(LossySlotSize(payload))
	if err != nil {
		t.Fatal(err)
	}
	lay := lossyLayout(0, payload)
	// Chunk sources are always registered-region memory (8-aligned); the
	// placement primitive reads them with atomic word loads.
	srcMR, err := d.AllocateMemRegion(128)
	if err != nil {
		t.Fatal(err)
	}
	src := srcMR.Bytes()[:64]
	for i := range src {
		src[i] = 0xAB
	}
	tag := &writeTag{kind: tagChunk, tag: ChunkTag{TensorID: 1, Seq: 0, Epoch: 1},
		guardOff: lay.guard, arrivalOff: lay.arrival}
	if err := mr.armEpoch(lay.guard, 1); err != nil {
		t.Fatal(err)
	}
	placed, err := mr.placeChunk(tag, 0, src)
	if err != nil || !placed {
		t.Fatalf("current-epoch chunk: placed=%v err=%v", placed, err)
	}
	if err := mr.armEpoch(lay.guard, 2); err != nil {
		t.Fatal(err)
	}
	stale := srcMR.Bytes()[64:128]
	for i := range stale {
		stale[i] = 0xCD
	}
	placed, err = mr.placeChunk(tag, 0, stale)
	if err != nil || placed {
		t.Fatalf("stale-epoch chunk: placed=%v err=%v", placed, err)
	}
	if mr.Bytes()[0] != 0xAB {
		t.Error("stale chunk mutated payload memory")
	}
	if got := mr.LoadWord(lay.arrival); got != 1 {
		t.Errorf("arrival stamp = %d, want untouched epoch 1", got)
	}
	// Bounds: a seq outside the arrival table is an error, not a write.
	bad := &writeTag{kind: tagChunk, tag: ChunkTag{Seq: lossyArrivalWords, Epoch: 2},
		guardOff: lay.guard, arrivalOff: lay.arrival}
	if _, err := mr.placeChunk(bad, 0, src); !errors.Is(err, ErrBounds) {
		t.Errorf("out-of-table seq: %v", err)
	}
}

// TestQPBusyRetriesDoNotBurnRetryBudget pins the Retryable/retryLoop
// contract for lease exhaustion: ErrQPBusy waits on its own backoff curve
// and does not consume MaxRetries, so a sender configured with a tight
// fault budget still survives a burst of slot contention.
func TestQPBusyRetriesDoNotBurnRetryBudget(t *testing.T) {
	_, a, b := newPair(t)
	const payload = 256
	rmr, err := b.AllocateMemRegion(StaticSlotSize(payload))
	if err != nil {
		t.Fatal(err)
	}
	recv, err := NewStaticReceiver(rmr, 0, payload)
	if err != nil {
		t.Fatal(err)
	}
	smr, err := a.AllocateMemRegion(StaticSlotSize(payload))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := a.GetChannel(b.Endpoint(), 0)
	if err != nil {
		t.Fatal(err)
	}
	sender, err := NewStaticSender(ch, smr, 0, recv.Desc())
	if err != nil {
		t.Fatal(err)
	}
	flaky := &flakyLaneSource{ch: ch, failures: 10}
	sender.SetLaneSource(flaky)
	var busyRetries int
	err = sender.SendRetry(TransferOpts{
		Deadline:   5 * time.Second,
		MaxRetries: 1, // one transient fault allowed — busy bursts must not count
		Backoff:    10 * time.Microsecond,
		OnRetry: func(err error) {
			if errors.Is(err, ErrQPBusy) {
				busyRetries++
			}
		},
	})
	if err != nil {
		t.Fatalf("send through contended mux: %v", err)
	}
	if busyRetries != 10 {
		t.Errorf("busy retries observed = %d, want 10", busyRetries)
	}
	if !recv.Poll() {
		t.Error("payload never arrived")
	}
}

// flakyLaneSource fails the first N acquisitions with ErrQPBusy, modeling
// a saturated mux, then hands out the real channel.
type flakyLaneSource struct {
	mu       sync.Mutex
	ch       *Channel
	failures int
}

func (s *flakyLaneSource) AcquireLanes(peer string) ([]*Channel, func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failures > 0 {
		s.failures--
		return nil, nil, fmt.Errorf("rdma: synthetic contention: %w", ErrQPBusy)
	}
	return []*Channel{s.ch}, func() {}, nil
}
