package rdma

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newPair(t *testing.T) (*Fabric, *Device, *Device) {
	t.Helper()
	f := NewFabric()
	a, err := CreateDevice(f, Config{Endpoint: "hostA:1"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CreateDevice(f, Config{Endpoint: "hostB:1"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return f, a, b
}

func TestCreateDeviceValidation(t *testing.T) {
	f := NewFabric()
	if _, err := CreateDevice(f, Config{}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("empty endpoint: %v", err)
	}
	if _, err := CreateDevice(f, Config{Endpoint: "x", NumCQs: -1}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative cqs: %v", err)
	}
	d, err := CreateDevice(f, Config{Endpoint: "x:1"})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := CreateDevice(f, Config{Endpoint: "x:1"}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("duplicate endpoint: %v", err)
	}
	if d.Endpoint() != "x:1" {
		t.Errorf("Endpoint = %q", d.Endpoint())
	}
}

func TestAllocateMemRegion(t *testing.T) {
	_, a, _ := newPair(t)
	mr, err := a.AllocateMemRegion(100)
	if err != nil {
		t.Fatal(err)
	}
	if mr.Size() != 104 { // rounded to multiple of 8
		t.Errorf("size = %d, want 104", mr.Size())
	}
	if mr.ID() == 0 {
		t.Error("region id should be nonzero")
	}
	if _, err := a.AllocateMemRegion(0); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero size: %v", err)
	}
	if _, err := mr.Slice(100, 8); !errors.Is(err, ErrBounds) {
		t.Errorf("oob slice: %v", err)
	}
	if _, err := mr.Slice(-1, 4); !errors.Is(err, ErrBounds) {
		t.Errorf("negative slice: %v", err)
	}
	s, err := mr.Slice(8, 16)
	if err != nil || len(s) != 16 {
		t.Errorf("slice: %v len %d", err, len(s))
	}
}

func TestRegistrationLimit(t *testing.T) {
	f := NewFabric()
	d, err := CreateDevice(f, Config{Endpoint: "lim:1", MaxRegions: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var last *MemRegion
	for i := 0; i < 3; i++ {
		if last, err = d.AllocateMemRegion(8); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.AllocateMemRegion(8); !errors.Is(err, ErrBadConfig) {
		t.Errorf("over limit: %v", err)
	}
	d.FreeMemRegion(last)
	if _, err := d.AllocateMemRegion(8); err != nil {
		t.Errorf("after free: %v", err)
	}
	if d.RegionCount() != 3 {
		t.Errorf("RegionCount = %d", d.RegionCount())
	}
}

func TestGetChannelValidation(t *testing.T) {
	_, a, _ := newPair(t)
	if _, err := a.GetChannel("hostA:1", 0); !errors.Is(err, ErrBadConfig) {
		t.Errorf("self channel: %v", err)
	}
	if _, err := a.GetChannel("hostB:1", 99); !errors.Is(err, ErrBadConfig) {
		t.Errorf("qp index oob: %v", err)
	}
	ch, err := a.GetChannel("hostB:1", 3)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Remote() != "hostB:1" {
		t.Errorf("Remote = %q", ch.Remote())
	}
}

func TestMemcpyWriteAndRead(t *testing.T) {
	_, a, b := newPair(t)
	src, _ := a.AllocateMemRegion(64)
	dst, _ := b.AllocateMemRegion(64)
	for i := range src.Bytes() {
		src.Bytes()[i] = byte(i)
	}
	ch, err := a.GetChannel("hostB:1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.MemcpySync(0, src, 0, dst.Descriptor(), 64, OpWrite); err != nil {
		t.Fatal(err)
	}
	for i, v := range dst.Bytes() {
		if v != byte(i) {
			t.Fatalf("dst[%d] = %d", i, v)
		}
	}
	// Read back into a different local region.
	back, _ := a.AllocateMemRegion(64)
	if err := ch.MemcpySync(0, back, 0, dst.Descriptor(), 64, OpRead); err != nil {
		t.Fatal(err)
	}
	for i, v := range back.Bytes() {
		if v != byte(i) {
			t.Fatalf("back[%d] = %d", i, v)
		}
	}
}

func TestMemcpySubRanges(t *testing.T) {
	_, a, b := newPair(t)
	src, _ := a.AllocateMemRegion(32)
	dst, _ := b.AllocateMemRegion(32)
	for i := range src.Bytes() {
		src.Bytes()[i] = 0xEE
	}
	ch, _ := a.GetChannel("hostB:1", 0)
	// Unaligned 5-byte write into the middle.
	if err := ch.MemcpySync(3, src, 9, dst.Descriptor(), 5, OpWrite); err != nil {
		t.Fatal(err)
	}
	for i, v := range dst.Bytes() {
		want := byte(0)
		if i >= 9 && i < 14 {
			want = 0xEE
		}
		if v != want {
			t.Fatalf("dst[%d] = %#x, want %#x", i, v, want)
		}
	}
}

func TestMemcpyValidation(t *testing.T) {
	_, a, b := newPair(t)
	src, _ := a.AllocateMemRegion(16)
	dst, _ := b.AllocateMemRegion(16)
	ch, _ := a.GetChannel("hostB:1", 0)
	if err := ch.Memcpy(0, nil, 0, dst.Descriptor(), 8, OpWrite, nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil region: %v", err)
	}
	if err := ch.Memcpy(0, src, 0, dst.Descriptor(), -1, OpWrite, nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("negative size: %v", err)
	}
	if err := ch.Memcpy(12, src, 0, dst.Descriptor(), 8, OpWrite, nil); !errors.Is(err, ErrBounds) {
		t.Errorf("local oob: %v", err)
	}
	if err := ch.Memcpy(0, src, 12, dst.Descriptor(), 8, OpWrite, nil); !errors.Is(err, ErrBounds) {
		t.Errorf("remote oob: %v", err)
	}
	// Region id that does not exist on the remote.
	bogus := RemoteRegion{Endpoint: "hostB:1", RegionID: 9999, Size: 64}
	if err := ch.MemcpySync(0, src, 0, bogus, 8, OpWrite); !errors.Is(err, ErrBounds) {
		t.Errorf("bogus region: %v", err)
	}
	// Region descriptor whose endpoint does not match the channel peer.
	wrong := RemoteRegion{Endpoint: "hostC:1", RegionID: 1, Size: 64}
	if err := ch.MemcpySync(0, src, 0, wrong, 8, OpWrite); !errors.Is(err, ErrBadConfig) {
		t.Errorf("wrong endpoint: %v", err)
	}
}

func TestPartition(t *testing.T) {
	f, a, b := newPair(t)
	src, _ := a.AllocateMemRegion(16)
	dst, _ := b.AllocateMemRegion(16)
	ch, _ := a.GetChannel("hostB:1", 0)
	f.Partition("hostA:1", "hostB:1")
	if err := ch.MemcpySync(0, src, 0, dst.Descriptor(), 8, OpWrite); !errors.Is(err, ErrUnreachable) {
		t.Errorf("partitioned write: %v", err)
	}
	f.Heal("hostA:1", "hostB:1")
	if err := ch.MemcpySync(0, src, 0, dst.Descriptor(), 8, OpWrite); err != nil {
		t.Errorf("after heal: %v", err)
	}
}

func TestTransferHooks(t *testing.T) {
	f, a, b := newPair(t)
	var bytesMoved atomic.Int64
	var delayCalls atomic.Int64
	f.SetHooks(Hooks{
		TransferDelay: func(op Op, size int) time.Duration {
			delayCalls.Add(1)
			return 0
		},
		OnTransfer: func(op Op, size int) { bytesMoved.Add(int64(size)) },
	})
	src, _ := a.AllocateMemRegion(128)
	dst, _ := b.AllocateMemRegion(128)
	ch, _ := a.GetChannel("hostB:1", 0)
	if err := ch.MemcpySync(0, src, 0, dst.Descriptor(), 128, OpWrite); err != nil {
		t.Fatal(err)
	}
	if bytesMoved.Load() != 128 || delayCalls.Load() != 1 {
		t.Errorf("hooks: moved %d, delay calls %d", bytesMoved.Load(), delayCalls.Load())
	}
}

func TestMessaging(t *testing.T) {
	_, a, b := newPair(t)
	got := make(chan string, 1)
	b.SetMessageHandler(func(from string, payload []byte) {
		got <- from + ":" + string(payload)
	})
	ch, _ := a.GetChannel("hostB:1", 0)
	done := make(chan error, 1)
	if err := ch.SendMsg([]byte("hello"), func(err error) { done <- err }); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		if s != "hostA:1:hello" {
			t.Errorf("got %q", s)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("message never delivered")
	}
}

func TestQPOrdering(t *testing.T) {
	// Work requests on one QP must complete in posting order.
	_, a, b := newPair(t)
	src, _ := a.AllocateMemRegion(8)
	dst, _ := b.AllocateMemRegion(8)
	ch, _ := a.GetChannel("hostB:1", 0)
	const n = 200
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		if err := ch.Memcpy(0, src, 0, dst.Descriptor(), 8, OpWrite, func(err error) {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			wg.Done()
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	for i, v := range order {
		if v != i {
			t.Fatalf("completion %d arrived at position %d", v, i)
		}
	}
}

func TestConcurrentChannels(t *testing.T) {
	// Many goroutines on distinct QPs writing to disjoint slots.
	_, a, b := newPair(t)
	const workers = 4
	const slot = 64
	src, _ := a.AllocateMemRegion(workers * slot)
	dst, _ := b.AllocateMemRegion(workers * slot)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			ch, err := a.GetChannel("hostB:1", w)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < slot; i++ {
				src.Bytes()[w*slot+i] = byte(w + 1)
			}
			for iter := 0; iter < 50; iter++ {
				if err := ch.MemcpySync(w*slot, src, w*slot, dst.Descriptor(), slot, OpWrite); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		for i := 0; i < slot; i++ {
			if dst.Bytes()[w*slot+i] != byte(w+1) {
				t.Fatalf("slot %d byte %d = %d", w, i, dst.Bytes()[w*slot+i])
			}
		}
	}
}

func TestCloseRejectsWork(t *testing.T) {
	f := NewFabric()
	a, _ := CreateDevice(f, Config{Endpoint: "ca:1"})
	b, _ := CreateDevice(f, Config{Endpoint: "cb:1"})
	src, _ := a.AllocateMemRegion(8)
	dst, _ := b.AllocateMemRegion(8)
	ch, _ := a.GetChannel("cb:1", 0)
	a.Close()
	if err := ch.Memcpy(0, src, 0, dst.Descriptor(), 8, OpWrite, nil); !errors.Is(err, ErrClosed) {
		t.Errorf("post after close: %v", err)
	}
	if _, err := a.AllocateMemRegion(8); !errors.Is(err, ErrClosed) {
		t.Errorf("alloc after close: %v", err)
	}
	if _, err := a.GetChannel("cb:1", 0); !errors.Is(err, ErrClosed) {
		t.Errorf("channel after close: %v", err)
	}
	a.Close() // idempotent
	b.Close()
	// Transfers to a closed (unregistered) peer fail with no-such-peer.
	c, _ := CreateDevice(f, Config{Endpoint: "cc:1"})
	defer c.Close()
	src2, _ := c.AllocateMemRegion(8)
	ch2, _ := c.GetChannel("cb:1", 0)
	if err := ch2.MemcpySync(0, src2, 0, dst.Descriptor(), 8, OpWrite); !errors.Is(err, ErrNoSuchPeer) {
		t.Errorf("write to closed peer: %v", err)
	}
}

func TestRemoteRegionMarshalRoundtrip(t *testing.T) {
	for _, r := range []RemoteRegion{
		{Endpoint: "h:1", RegionID: 7, Size: 4096},
		{Endpoint: "", RegionID: 0, Size: 0},
		{Endpoint: "very.long.host.name.example.com:65535", RegionID: 1<<32 - 1, Size: 1 << 40},
	} {
		got, err := UnmarshalRemoteRegion(r.Marshal())
		if err != nil {
			t.Fatalf("%+v: %v", r, err)
		}
		if got != r {
			t.Errorf("roundtrip %+v -> %+v", r, got)
		}
	}
	if _, err := UnmarshalRemoteRegion([]byte{1}); err == nil {
		t.Error("short buffer accepted")
	}
	if _, err := UnmarshalRemoteRegion([]byte{10, 0, 'a'}); err == nil {
		t.Error("truncated buffer accepted")
	}
}

func TestOpString(t *testing.T) {
	if OpWrite.String() != "write" || OpRead.String() != "read" {
		t.Error("Op strings wrong")
	}
}

func BenchmarkMemcpyWrite(b *testing.B) {
	for _, size := range []int{4 << 10, 256 << 10, 4 << 20} {
		b.Run(fmt.Sprintf("%dKB", size/1024), func(b *testing.B) {
			f := NewFabric()
			a, _ := CreateDevice(f, Config{Endpoint: "ba:1"})
			c, _ := CreateDevice(f, Config{Endpoint: "bb:1"})
			defer a.Close()
			defer c.Close()
			src, _ := a.AllocateMemRegion(size)
			dst, _ := c.AllocateMemRegion(size)
			ch, _ := a.GetChannel("bb:1", 0)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ch.MemcpySync(0, src, 0, dst.Descriptor(), size, OpWrite); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
