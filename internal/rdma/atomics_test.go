package rdma

import (
	"errors"
	"sync"
	"testing"
)

func TestFetchAddBasic(t *testing.T) {
	_, a, b := newPair(t)
	word, _ := b.AllocateMemRegion(8)
	word.StoreWord(0, 100)
	ch, _ := a.GetChannel("hostB:1", 0)
	old, err := ch.FetchAddSync(0, word.Descriptor(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if old != 100 {
		t.Errorf("old = %d, want 100", old)
	}
	if word.LoadWord(0) != 105 {
		t.Errorf("word = %d, want 105", word.LoadWord(0))
	}
}

func TestCompareSwapBasic(t *testing.T) {
	_, a, b := newPair(t)
	word, _ := b.AllocateMemRegion(8)
	word.StoreWord(0, 7)
	ch, _ := a.GetChannel("hostB:1", 0)

	// Successful swap.
	old, err := ch.CompareSwapSync(0, word.Descriptor(), 7, 42)
	if err != nil {
		t.Fatal(err)
	}
	if old != 7 || word.LoadWord(0) != 42 {
		t.Errorf("cas: old %d, word %d", old, word.LoadWord(0))
	}
	// Failed swap reports the observed value and leaves the word alone.
	old, err = ch.CompareSwapSync(0, word.Descriptor(), 7, 99)
	if err != nil {
		t.Fatal(err)
	}
	if old != 42 || word.LoadWord(0) != 42 {
		t.Errorf("failed cas: old %d, word %d", old, word.LoadWord(0))
	}
}

func TestAtomicValidation(t *testing.T) {
	_, a, b := newPair(t)
	word, _ := b.AllocateMemRegion(16)
	ch, _ := a.GetChannel("hostB:1", 0)
	if err := ch.FetchAdd(4, word.Descriptor(), 1, nil); !errors.Is(err, ErrBounds) {
		t.Errorf("misaligned: %v", err)
	}
	if err := ch.FetchAdd(16, word.Descriptor(), 1, nil); !errors.Is(err, ErrBounds) {
		t.Errorf("oob: %v", err)
	}
	wrong := RemoteRegion{Endpoint: "elsewhere:1", RegionID: 1, Size: 16}
	if _, err := ch.FetchAddSync(0, wrong, 1); !errors.Is(err, ErrBadConfig) {
		t.Errorf("wrong endpoint: %v", err)
	}
	bogus := RemoteRegion{Endpoint: "hostB:1", RegionID: 999, Size: 16}
	if _, err := ch.FetchAddSync(0, bogus, 1); !errors.Is(err, ErrBounds) {
		t.Errorf("unknown region: %v", err)
	}
}

func TestFetchAddConcurrentFromManyDevices(t *testing.T) {
	// A shared counter incremented atomically from several devices over
	// several QPs must not lose updates — the defining property of the
	// atomic verbs.
	f := NewFabric()
	host, err := CreateDevice(f, Config{Endpoint: "counter:1"})
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	word, _ := host.AllocateMemRegion(8)
	desc := word.Descriptor()

	const devices, perDevice = 4, 200
	var wg sync.WaitGroup
	for d := 0; d < devices; d++ {
		dev, err := CreateDevice(f, Config{Endpoint: string(rune('a'+d)) + ":1"})
		if err != nil {
			t.Fatal(err)
		}
		defer dev.Close()
		wg.Add(1)
		go func(dev *Device, qp int) {
			defer wg.Done()
			ch, err := dev.GetChannel("counter:1", qp%4)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < perDevice; i++ {
				if _, err := ch.FetchAddSync(0, desc, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(dev, d)
	}
	wg.Wait()
	if got := word.LoadWord(0); got != devices*perDevice {
		t.Errorf("counter = %d, want %d", got, devices*perDevice)
	}
}

func TestCASDistributedLock(t *testing.T) {
	// Use CAS as a spinlock from two clients; the protected (non-atomic)
	// counter must not lose updates if mutual exclusion holds.
	f := NewFabric()
	host, err := CreateDevice(f, Config{Endpoint: "lock:1"})
	if err != nil {
		t.Fatal(err)
	}
	defer host.Close()
	region, _ := host.AllocateMemRegion(16) // word 0: lock, word 1: counter
	desc := region.Descriptor()

	const clients, iters = 2, 100
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		dev, err := CreateDevice(f, Config{Endpoint: string(rune('x'+c)) + ":1"})
		if err != nil {
			t.Fatal(err)
		}
		defer dev.Close()
		wg.Add(1)
		go func(dev *Device, id uint64) {
			defer wg.Done()
			ch, err := dev.GetChannel("lock:1", 0)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < iters; i++ {
				// Acquire.
				for {
					old, err := ch.CompareSwapSync(0, desc, 0, id)
					if err != nil {
						t.Error(err)
						return
					}
					if old == 0 {
						break
					}
				}
				// Critical section: non-atomic read-modify-write via
				// one-sided verbs, safe only under the lock.
				scratch, err := dev.AllocateMemRegion(8)
				if err != nil {
					t.Error(err)
					return
				}
				if err := ch.MemcpySync(0, scratch, 8, desc, 8, OpRead); err != nil {
					t.Error(err)
					return
				}
				scratch.StoreWord(0, scratch.LoadWord(0)+1)
				if err := ch.MemcpySync(0, scratch, 8, desc, 8, OpWrite); err != nil {
					t.Error(err)
					return
				}
				dev.FreeMemRegion(scratch)
				// Release.
				if _, err := ch.CompareSwapSync(0, desc, id, 0); err != nil {
					t.Error(err)
					return
				}
			}
		}(dev, uint64(c+1))
	}
	wg.Wait()
	if got := region.LoadWord(8); got != clients*iters {
		t.Errorf("protected counter = %d, want %d (mutual exclusion violated)", got, clients*iters)
	}
}
