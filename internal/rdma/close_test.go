package rdma

import (
	"bytes"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Regression tests for the close-with-in-flight-work bug: work requests
// buffered on a QP when the device (or just the peer link) closes used to
// execute anyway — landing writes in live peers' memory during teardown and
// making Close effectively wait out the whole queue. Now each buffered WR
// fails fast with ErrClosed. Run with -race.

// goroutineSettle waits for the goroutine count to drop back to within
// slack of base, tolerating scheduler lag.
func goroutineSettle(t *testing.T, base, slack int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d live, started with %d", runtime.NumGoroutine(), base)
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
}

// TestCloseMidTransferFailsFast queues a backlog of slow Memcpys and closes
// the device mid-stream: every pending callback must fire promptly with
// ErrClosed instead of draining the queue at one injected delay apiece.
func TestCloseMidTransferFailsFast(t *testing.T) {
	base := runtime.NumGoroutine()
	const (
		backlog = 40
		delay   = 30 * time.Millisecond
	)
	f := NewFabric()
	a, err := CreateDevice(f, Config{Endpoint: "hostA:1"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CreateDevice(f, Config{Endpoint: "hostB:1"})
	if err != nil {
		t.Fatal(err)
	}
	src, err := a.AllocateMemRegion(64)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := b.AllocateMemRegion(64)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := a.GetChannel("hostB:1", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Every transfer stalls in the fabric, so the queue backs up behind the
	// first one.
	f.SetHooks(Hooks{TransferDelay: func(Op, int) time.Duration { return delay }})

	var wg sync.WaitGroup
	var closedErrs atomic.Int64
	wg.Add(backlog)
	for i := 0; i < backlog; i++ {
		err := ch.Memcpy(0, src, 0, dst.Descriptor(), 64, OpWrite, func(err error) {
			if errors.Is(err, ErrClosed) {
				closedErrs.Add(1)
			}
			wg.Done()
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	a.Close() // at most one WR is mid-delay; the rest must fail fast
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("callbacks never completed after Close: buffered work hung")
	}
	elapsed := time.Since(start)
	// Draining the backlog at one delay per WR would take backlog*delay
	// (1.2s); fail-fast is bounded by the one in-flight delay plus slack.
	if limit := 4 * delay; elapsed > limit {
		t.Errorf("close took %v, want < %v (buffered WRs executed instead of failing)", elapsed, limit)
	}
	if n := closedErrs.Load(); n < backlog/2 {
		t.Errorf("only %d/%d callbacks saw ErrClosed", n, backlog)
	}
	b.Close()
	goroutineSettle(t, base, 2)
}

// TestCloseMidStripedTransferFailsFast is the multi-lane variant: a striped
// send in flight across 8 QPs when the device closes must complete its
// callback (with an error) without hanging any lane.
func TestCloseMidStripedTransferFailsFast(t *testing.T) {
	base := runtime.NumGoroutine()
	const delay = 30 * time.Millisecond
	f := NewFabric()
	a, err := CreateDevice(f, Config{Endpoint: "hostA:1", QPsPerPeer: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CreateDevice(f, Config{Endpoint: "hostB:1", QPsPerPeer: 8})
	if err != nil {
		t.Fatal(err)
	}
	const size = 1 << 16
	recvMR, err := b.AllocateMemRegion(StaticSlotSize(size))
	if err != nil {
		t.Fatal(err)
	}
	recv, err := NewStaticReceiver(recvMR, 0, size)
	if err != nil {
		t.Fatal(err)
	}
	sendMR, err := a.AllocateMemRegion(StaticSlotSize(size))
	if err != nil {
		t.Fatal(err)
	}
	sender, err := NewStaticSender(mustChannel(t, a, "hostB:1", 0), sendMR, 0, recv.Desc())
	if err != nil {
		t.Fatal(err)
	}
	for lane := 1; lane < 8; lane++ {
		if err := sender.AddLane(mustChannel(t, a, "hostB:1", lane)); err != nil {
			t.Fatal(err)
		}
	}
	f.SetHooks(Hooks{TransferDelay: func(Op, int) time.Duration { return delay }})

	cbErr := make(chan error, 1)
	if err := sender.SendStriped(8, nil, func(err error) { cbErr <- err }); err != nil {
		t.Fatal(err)
	}
	a.Close()
	select {
	case err := <-cbErr:
		// The stripes race Close: chunks already executing land, buffered
		// ones fail. Either way the aggregate callback must carry the
		// failure (all-landed would mean Close didn't interrupt anything,
		// impossible with 8 stalled lanes and an immediate Close).
		if err == nil {
			t.Error("striped send reported success through a mid-flight Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("striped send callback never fired after Close")
	}
	b.Close()
	goroutineSettle(t, base, 2)
}

// TestClosePeerSeversThenRebuilds exercises the recovery teardown path:
// ClosePeer must fail buffered work to that peer with ErrClosed, and a
// fresh GetChannel afterwards must yield working QPs (the sever → restart →
// rebuild sequence the crash-recovery driver runs).
func TestClosePeerSeversThenRebuilds(t *testing.T) {
	const delay = 20 * time.Millisecond
	f, a, b := newPair(t)
	src, err := a.AllocateMemRegion(64)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := b.AllocateMemRegion(64)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := a.GetChannel("hostB:1", 0)
	if err != nil {
		t.Fatal(err)
	}
	f.SetHooks(Hooks{TransferDelay: func(Op, int) time.Duration { return delay }})
	const backlog = 16
	var wg sync.WaitGroup
	var closedErrs atomic.Int64
	wg.Add(backlog)
	for i := 0; i < backlog; i++ {
		err := ch.Memcpy(0, src, 0, dst.Descriptor(), 64, OpWrite, func(err error) {
			if errors.Is(err, ErrClosed) {
				closedErrs.Add(1)
			}
			wg.Done()
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	a.ClosePeer("hostB:1")
	wg.Wait()
	if closedErrs.Load() == 0 {
		t.Error("no buffered WR failed with ErrClosed after ClosePeer")
	}
	// The severed channel's QP is gone for good.
	if err := ch.Memcpy(0, src, 0, dst.Descriptor(), 64, OpWrite, func(error) {}); !errors.Is(err, ErrClosed) {
		t.Errorf("post on severed channel: %v, want ErrClosed", err)
	}
	// But the devices are both alive: a fresh channel rebuilds the link.
	f.SetHooks(Hooks{})
	fresh, err := a.GetChannel("hostB:1", 0)
	if err != nil {
		t.Fatal(err)
	}
	copy(src.Bytes(), bytes.Repeat([]byte{0xAB}, 64))
	if err := fresh.MemcpySync(0, src, 0, dst.Descriptor(), 64, OpWrite); err != nil {
		t.Fatalf("transfer after rebuild: %v", err)
	}
	if !bytes.Equal(dst.Bytes(), src.Bytes()) {
		t.Error("rebuilt channel transferred wrong bytes")
	}
}

func mustChannel(t *testing.T, d *Device, remote string, qp int) *Channel {
	t.Helper()
	ch, err := d.GetChannel(remote, qp)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}
