package rdma

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// newStripedPair is newPair with enough QPs per peer for 8-lane striping.
func newStripedPair(t *testing.T) (*Fabric, *Device, *Device) {
	t.Helper()
	f := NewFabric()
	a, err := CreateDevice(f, Config{Endpoint: "hostA:1", QPsPerPeer: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := CreateDevice(f, Config{Endpoint: "hostB:1", QPsPerPeer: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return f, a, b
}

// lanesTo returns n channels from dev to remote on distinct QPs.
func lanesTo(t *testing.T, dev *Device, remote string, n int) []*Channel {
	t.Helper()
	chans := make([]*Channel, n)
	for i := range chans {
		ch, err := dev.GetChannel(remote, i)
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	return chans
}

// paritySizes covers aligned and non-aligned payloads, including sizes
// smaller than the stripe count.
var paritySizes = []int{1, 3, 4, 7, 8, 9, 16, 63, 64, 65, 100, 1000, 4096, 4097, 65536, 65543}

func fillStripePattern(b []byte, salt byte) {
	for i := range b {
		b[i] = byte(i*7+13) ^ salt
	}
}

func TestStripeDescChunksInvariants(t *testing.T) {
	for _, size := range append([]int{0, 2, 15, 17, 128}, paritySizes...) {
		for stripes := 0; stripes <= MaxStripes+3; stripes++ {
			d := StripeDesc{PayloadSize: uint64(size), Stripes: uint32(stripes)}
			chunks := d.Chunks()
			if size == 0 {
				if chunks != nil {
					t.Fatalf("size 0: chunks %v", chunks)
				}
				continue
			}
			if len(chunks) == 0 || len(chunks) > MaxStripes {
				t.Fatalf("size %d stripes %d: %d chunks", size, stripes, len(chunks))
			}
			if stripes > 0 && len(chunks) > stripes {
				t.Fatalf("size %d stripes %d: %d chunks exceed request", size, stripes, len(chunks))
			}
			off := 0
			for i, c := range chunks {
				if c.Off != off || c.Size <= 0 {
					t.Fatalf("size %d stripes %d chunk %d: {%d,%d} at expected off %d",
						size, stripes, i, c.Off, c.Size, off)
				}
				if i < len(chunks)-1 && (c.Off+c.Size)%stripeAlign != 0 {
					t.Fatalf("size %d stripes %d chunk %d: boundary %d unaligned",
						size, stripes, i, c.Off+c.Size)
				}
				off += c.Size
			}
			if off != size {
				t.Fatalf("size %d stripes %d: chunks cover %d bytes", size, stripes, off)
			}
			if got := EffectiveStripes(size, stripes); got != len(chunks) {
				t.Fatalf("EffectiveStripes(%d,%d) = %d, want %d", size, stripes, got, len(chunks))
			}
		}
	}
}

func TestStripeDescMarshalRoundTrip(t *testing.T) {
	for _, d := range []StripeDesc{{}, {PayloadSize: 1}, {PayloadSize: 1 << 40, Stripes: 16}} {
		got, err := UnmarshalStripeDesc(d.Marshal())
		if err != nil {
			t.Fatalf("%+v: %v", d, err)
		}
		if got != d {
			t.Fatalf("round trip %+v -> %+v", d, got)
		}
	}
	if _, err := UnmarshalStripeDesc([]byte{1, 2, 3}); err == nil {
		t.Fatal("short descriptor accepted")
	}
}

// TestStripedStaticParity: for every stripe count 1..8, a striped static
// transfer must deliver bytes bit-identical to the staged payload — i.e.
// identical to what the single-lane protocol delivers — across aligned and
// non-aligned sizes, including payloads smaller than the stripe count.
func TestStripedStaticParity(t *testing.T) {
	_, a, b := newStripedPair(t)
	laneChans := lanesTo(t, a, "hostB:1", 8)
	opts := func(s int) TransferOpts { return TransferOpts{Deadline: 10 * time.Second, Stripes: s} }
	for _, size := range paritySizes {
		recvMR, err := b.AllocateMemRegion(StaticSlotSize(size))
		if err != nil {
			t.Fatal(err)
		}
		recv, err := NewStaticReceiver(recvMR, 0, size)
		if err != nil {
			t.Fatal(err)
		}
		sendMR, err := a.AllocateMemRegion(StaticSlotSize(size))
		if err != nil {
			t.Fatal(err)
		}
		sender, err := NewStaticSender(laneChans[0], sendMR, 0, recv.Desc())
		if err != nil {
			t.Fatal(err)
		}
		for _, ch := range laneChans[1:] {
			if err := sender.AddLane(ch); err != nil {
				t.Fatal(err)
			}
		}
		for stripes := 1; stripes <= 8; stripes++ {
			want := make([]byte, size)
			fillStripePattern(want, byte(stripes))
			copy(sender.Buffer(), want)
			var lanesUsed sync.Map
			o := opts(stripes)
			o.OnStripe = func(lane, bytes int) { lanesUsed.Store(lane, true) }
			if err := sender.SendRetry(o); err != nil {
				t.Fatalf("size %d stripes %d: send: %v", size, stripes, err)
			}
			if err := recv.Wait(o); err != nil {
				t.Fatalf("size %d stripes %d: wait: %v", size, stripes, err)
			}
			if !bytes.Equal(recv.Payload(), want) {
				t.Fatalf("size %d stripes %d: payload diverged from single-lane bytes", size, stripes)
			}
			distinct := 0
			lanesUsed.Range(func(_, _ any) bool { distinct++; return true })
			if eff := EffectiveStripes(size, stripes); distinct > eff {
				t.Fatalf("size %d stripes %d: %d lanes used, effective stripes %d",
					size, stripes, distinct, eff)
			}
			recv.Consume()
		}
		b.FreeMemRegion(recvMR)
		a.FreeMemRegion(sendMR)
	}
}

// TestStripedDynParity is the dyn-read analogue: the receiver's striped
// fetch must produce bytes identical to the sender's payload for stripe
// counts 1..8.
func TestStripedDynParity(t *testing.T) {
	_, a, b := newStripedPair(t)
	chAB, err := a.GetChannel("hostB:1", 0)
	if err != nil {
		t.Fatal(err)
	}
	laneChans := lanesTo(t, b, "hostA:1", 8)
	for _, size := range paritySizes {
		metaMR, err := b.AllocateMemRegion(DynMetaSize)
		if err != nil {
			t.Fatal(err)
		}
		recv, err := NewDynReceiver(laneChans[0], metaMR, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, ch := range laneChans[1:] {
			if err := recv.AddLane(ch); err != nil {
				t.Fatal(err)
			}
		}
		scratchMR, err := a.AllocateMemRegion(DynMetaSize)
		if err != nil {
			t.Fatal(err)
		}
		sender, err := NewDynSender(chAB, scratchMR, 0, recv.Desc())
		if err != nil {
			t.Fatal(err)
		}
		payloadMR, err := a.AllocateMemRegion(size)
		if err != nil {
			t.Fatal(err)
		}
		dstMR, err := b.AllocateMemRegion(size)
		if err != nil {
			t.Fatal(err)
		}
		for stripes := 1; stripes <= 8; stripes++ {
			opts := TransferOpts{Deadline: 10 * time.Second, Stripes: stripes}
			want := payloadMR.Bytes()[:size]
			fillStripePattern(want, byte(0xA0+stripes))
			if err := sender.SendRetry(payloadMR, 0, size, 1, []uint64{uint64(size)}, opts); err != nil {
				t.Fatalf("size %d stripes %d: send: %v", size, stripes, err)
			}
			meta, err := recv.WaitMeta(opts)
			if err != nil {
				t.Fatalf("size %d stripes %d: wait meta: %v", size, stripes, err)
			}
			if int(meta.PayloadSize) != size {
				t.Fatalf("size %d stripes %d: meta payload %d", size, stripes, meta.PayloadSize)
			}
			if err := recv.FetchRetry(meta, sender.ScratchDesc(), dstMR, 0, opts); err != nil {
				t.Fatalf("size %d stripes %d: fetch: %v", size, stripes, err)
			}
			if !bytes.Equal(dstMR.Bytes()[:size], want) {
				t.Fatalf("size %d stripes %d: fetched payload diverged", size, stripes)
			}
			waitFor(t, fmt.Sprintf("reuse ack (size %d stripes %d)", size, stripes), sender.PollReusable)
		}
		b.FreeMemRegion(metaMR)
		b.FreeMemRegion(dstMR)
		a.FreeMemRegion(scratchMR)
		a.FreeMemRegion(payloadMR)
	}
}

// TestDynSenderPollReusableConcurrentWithSend is the regression test for
// slot reuse while a fetch is in flight: the executor polls PollReusable
// from a scheduler worker while Send runs on the edge's transfer goroutine,
// so the sender's started/ack state must be safe under concurrent access
// (run with -race) and the payload buffer must never be overwritten before
// the receiver's read acked.
func TestDynSenderPollReusableConcurrentWithSend(t *testing.T) {
	_, a, b := newPair(t)
	chAB, err := a.GetChannel("hostB:1", 0)
	if err != nil {
		t.Fatal(err)
	}
	chBA, err := b.GetChannel("hostA:1", 0)
	if err != nil {
		t.Fatal(err)
	}
	metaMR, err := b.AllocateMemRegion(DynMetaSize)
	if err != nil {
		t.Fatal(err)
	}
	recv, err := NewDynReceiver(chBA, metaMR, 0)
	if err != nil {
		t.Fatal(err)
	}
	scratchMR, err := a.AllocateMemRegion(DynMetaSize)
	if err != nil {
		t.Fatal(err)
	}
	sender, err := NewDynSender(chAB, scratchMR, 0, recv.Desc())
	if err != nil {
		t.Fatal(err)
	}
	const size = 512
	payloadMR, err := a.AllocateMemRegion(size)
	if err != nil {
		t.Fatal(err)
	}
	dstMR, err := b.AllocateMemRegion(size)
	if err != nil {
		t.Fatal(err)
	}

	// The scheduler's polling goroutine, racing every Send below.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			sender.PollReusable()
			runtime.Gosched()
		}
	}()

	opts := TransferOpts{Deadline: 10 * time.Second}
	for iter := 0; iter < 100; iter++ {
		// SendRetry's busy check gates this overwrite on the previous
		// iteration's ack, making the reuse safe; a missing ack ordering
		// would surface as corrupted bytes below.
		fillStripePattern(payloadMR.Bytes(), byte(iter))
		want := append([]byte(nil), payloadMR.Bytes()...)
		if err := sender.SendRetry(payloadMR, 0, size, 1, []uint64{size}, opts); err != nil {
			t.Fatalf("iter %d: send: %v", iter, err)
		}
		meta, err := recv.WaitMeta(opts)
		if err != nil {
			t.Fatalf("iter %d: wait meta: %v", iter, err)
		}
		if err := recv.FetchRetry(meta, sender.ScratchDesc(), dstMR, 0, opts); err != nil {
			t.Fatalf("iter %d: fetch: %v", iter, err)
		}
		if !bytes.Equal(dstMR.Bytes(), want) {
			t.Fatalf("iter %d: fetched stale or corrupted payload", iter)
		}
	}
	close(stop)
	wg.Wait()
}
