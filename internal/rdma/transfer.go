package rdma

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
)

// This file implements the paper's two tensor-transfer protocols on top of
// the device's Memcpy interface.
//
// Static placement (§3.2, Figure 5): the receiver preallocates the
// destination tensor in registered memory with a flag word at its tail and
// distributes the slot's address; the sender one-sided-writes payload+flag
// in one ascending-order transfer; the receiver polls the flag, consumes the
// tensor, and clears the flag for the next iteration.
//
// Dynamic allocation (§3.3, Figure 6): shapes change across mini-batches but
// rank does not, so the receiver preallocates only a fixed-size metadata
// slot. The sender writes (dims, dtype, source address) plus flag; the
// receiver polls, allocates the tensor, and pulls the payload with a
// one-sided RDMA read, then posts a one-word ack back into the sender's
// scratch block so the sender knows the source buffer may be reused (in the
// paper this reuse gating comes from the data-flow graph's loop control
// dependency; the explicit ack makes the protocol self-contained).

// ErrBusy is returned when a sender is asked to transmit before the
// previous transfer on the edge has been consumed.
var ErrBusy = errors.New("rdma: previous transfer not yet consumed")

// StaticSlotSize returns the region bytes needed for a static slot holding
// payloadSize payload bytes (payload + tail flag, rounded to alignment).
func StaticSlotSize(payloadSize int) int {
	return alignUp(payloadSize) + FlagWordSize
}

func alignUp(n int) int { return (n + 7) / 8 * 8 }

// StaticSlotDesc addresses a receiver-side static slot from the sender.
type StaticSlotDesc struct {
	Region      RemoteRegion
	Off         int
	PayloadSize int
}

// Marshal encodes the descriptor for address distribution.
func (d StaticSlotDesc) Marshal() []byte {
	region := d.Region.Marshal()
	buf := make([]byte, 0, len(region)+16)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(d.Off))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(d.PayloadSize))
	return append(buf, region...)
}

// UnmarshalStaticSlotDesc decodes a descriptor produced by Marshal.
func UnmarshalStaticSlotDesc(buf []byte) (StaticSlotDesc, error) {
	var d StaticSlotDesc
	if len(buf) < 16 {
		return d, fmt.Errorf("rdma: short static slot descriptor (%d bytes)", len(buf))
	}
	d.Off = int(binary.LittleEndian.Uint64(buf))
	d.PayloadSize = int(binary.LittleEndian.Uint64(buf[8:]))
	region, err := UnmarshalRemoteRegion(buf[16:])
	if err != nil {
		return d, err
	}
	d.Region = region
	return d, nil
}

// StaticReceiver is the receiving end of a statically placed tensor slot.
// The payload bytes live at [off, off+payloadSize) of the region; the flag
// word sits at the aligned tail. The slot is never freed during the
// computation, so its address never changes (§4).
type StaticReceiver struct {
	mr          *MemRegion
	off         int
	payloadSize int
}

// NewStaticReceiver claims [off, off+StaticSlotSize(payloadSize)) of mr as a
// static receive slot and clears its flag.
func NewStaticReceiver(mr *MemRegion, off, payloadSize int) (*StaticReceiver, error) {
	if off%8 != 0 {
		return nil, fmt.Errorf("rdma: static slot offset %d not 8-aligned: %w", off, ErrBadConfig)
	}
	if _, err := mr.Slice(off, StaticSlotSize(payloadSize)); err != nil {
		return nil, err
	}
	r := &StaticReceiver{mr: mr, off: off, payloadSize: payloadSize}
	mr.ClearFlag(r.flagOff())
	return r, nil
}

func (r *StaticReceiver) flagOff() int { return r.off + alignUp(r.payloadSize) }

// Desc returns the remotely shareable slot address.
func (r *StaticReceiver) Desc() StaticSlotDesc {
	return StaticSlotDesc{Region: r.mr.Descriptor(), Off: r.off, PayloadSize: r.payloadSize}
}

// Poll reports whether a complete tensor has arrived (acquire semantics).
func (r *StaticReceiver) Poll() bool { return r.mr.PollFlag(r.flagOff()) }

// Payload returns the slot's payload bytes. Valid to read only after Poll
// has returned true (or before any sender knows the address).
func (r *StaticReceiver) Payload() []byte {
	return r.mr.Bytes()[r.off : r.off+r.payloadSize]
}

// Consume clears the flag for the next iteration. The paper's receiver
// "clears the flag for future use and then activates the graph nodes that
// depend on this transferred tensor".
func (r *StaticReceiver) Consume() { r.mr.ClearFlag(r.flagOff()) }

// StaticSender is the sending end of a statically placed tensor edge. Its
// staging buffer lives in registered memory so the graph analyzer can place
// the source tensor there directly (zero-copy); the flag word rides at the
// staging buffer's tail and is transferred together with the payload in one
// ascending-order write.
type StaticSender struct {
	ch    *Channel
	mr    *MemRegion
	off   int
	desc  StaticSlotDesc
	lanes []*Channel // channels for striped sends; lanes[0] == ch
	// source, when set, supplies lanes per attempt instead of the cached
	// ones (QP multiplexing: the edge pins a slot only while sending).
	source LaneSource
}

// SetLaneSource routes this sender's blocking sends through a per-attempt
// lane source (see LaneSource). Cached lanes remain the fallback for the
// non-blocking Send/SendStriped paths.
func (s *StaticSender) SetLaneSource(src LaneSource) { s.source = src }

// acquireLanes resolves the lanes for one attempt.
func (s *StaticSender) acquireLanes() ([]*Channel, func(), error) {
	if s.source == nil {
		return s.lanes, func() {}, nil
	}
	return s.source.AcquireLanes(s.ch.Remote())
}

// NewStaticSender claims [off, off+StaticSlotSize(desc.PayloadSize)) of the
// local region as staging for sends to the given remote slot.
func NewStaticSender(ch *Channel, mr *MemRegion, off int, desc StaticSlotDesc) (*StaticSender, error) {
	if off%8 != 0 {
		return nil, fmt.Errorf("rdma: static send offset %d not 8-aligned: %w", off, ErrBadConfig)
	}
	if _, err := mr.Slice(off, StaticSlotSize(desc.PayloadSize)); err != nil {
		return nil, err
	}
	if desc.Region.Endpoint != ch.Remote() {
		return nil, fmt.Errorf("rdma: slot on %s but channel to %s: %w",
			desc.Region.Endpoint, ch.Remote(), ErrBadConfig)
	}
	return &StaticSender{ch: ch, mr: mr, off: off, desc: desc, lanes: []*Channel{ch}}, nil
}

// Buffer returns the sender-side staging payload bytes. When graph analysis
// succeeds, the source tensor is allocated directly here and Send performs
// no copy at all.
func (s *StaticSender) Buffer() []byte {
	return s.mr.Bytes()[s.off : s.off+s.desc.PayloadSize]
}

// Send transfers the staging buffer (payload + set flag) to the remote slot
// with a single one-sided write. cb fires on a CQ poller when the write
// completes locally.
func (s *StaticSender) Send(cb func(error)) error { return s.sendOn(s.ch, cb) }

// sendOn is Send over an explicit channel (per-attempt lane acquisition).
func (s *StaticSender) sendOn(ch *Channel, cb func(error)) error {
	flagOff := s.off + alignUp(s.desc.PayloadSize)
	s.mr.SetFlagLocal(flagOff)
	size := StaticSlotSize(s.desc.PayloadSize)
	return ch.Memcpy(s.off, s.mr, s.desc.Off, s.desc.Region, size, OpWrite, cb)
}

// SendFrom copies payload into the staging buffer first and then performs
// Send: the RDMA.cp path of §5.1, used when graph analysis is disabled and
// the source tensor is not RDMA-accessible.
func (s *StaticSender) SendFrom(payload []byte, cb func(error)) error {
	if len(payload) != s.desc.PayloadSize {
		return fmt.Errorf("rdma: payload %d bytes, slot holds %d: %w",
			len(payload), s.desc.PayloadSize, ErrBounds)
	}
	copy(s.Buffer(), payload)
	return s.Send(cb)
}

// --- Dynamic allocation protocol ---

// MaxDims is the maximum tensor rank the fixed-size metadata block can
// describe. The paper relies on the rank being invariant across iterations.
const MaxDims = 8

// Metadata block layout (all little-endian, fixed 120 bytes):
//
//	0   dtype     uint32
//	4   rank      uint32
//	8   dims      [MaxDims]uint64
//	72  srcRegion uint32   (sender payload region id)
//	76  _pad      uint32
//	80  srcSize   uint64   (sender payload region size)
//	88  srcOff    uint64   (payload offset within region)
//	96  payload   uint64   (payload byte count)
//	104 flag      uint64   (written last, ascending order)
//	112 ack       uint64   (receiver writes 1 here after its read completes)
const (
	dynMetaFlagOff = 104
	dynMetaAckOff  = 112
	// DynMetaSize is the full metadata block size including flag and ack.
	DynMetaSize = 120
)

// DynMeta is the decoded metadata describing one dynamic transfer.
type DynMeta struct {
	DType       uint32
	Dims        []uint64
	Src         RemoteRegion // reconstructed with the edge's sender endpoint
	SrcOff      uint64
	PayloadSize uint64
}

// DynSlotDesc addresses a receiver-side metadata slot (for the sender) or a
// sender-side scratch block (for the receiver's ack), symmetric on purpose.
type DynSlotDesc struct {
	Region RemoteRegion
	Off    int
}

// Marshal encodes the descriptor.
func (d DynSlotDesc) Marshal() []byte {
	buf := make([]byte, 0, 8+d.Region.wireSize())
	buf = binary.LittleEndian.AppendUint64(buf, uint64(d.Off))
	return append(buf, d.Region.Marshal()...)
}

// UnmarshalDynSlotDesc decodes a descriptor produced by Marshal.
func UnmarshalDynSlotDesc(buf []byte) (DynSlotDesc, error) {
	var d DynSlotDesc
	if len(buf) < 8 {
		return d, fmt.Errorf("rdma: short dyn slot descriptor (%d bytes)", len(buf))
	}
	d.Off = int(binary.LittleEndian.Uint64(buf))
	region, err := UnmarshalRemoteRegion(buf[8:])
	if err != nil {
		return d, err
	}
	d.Region = region
	return d, nil
}

// DynReceiver owns a preallocated metadata slot for one dynamic edge.
type DynReceiver struct {
	mr     *MemRegion
	off    int
	sender string // the edge's fixed sender endpoint
	ch     *Channel
	ackSrc *MemRegion // one word containing FlagSet, source of ack writes
	lanes  []*Channel // channels for striped fetches; lanes[0] == ch
	// source, when set, supplies FetchRetry's lanes per call (QP mux mode).
	source LaneSource
}

// SetLaneSource routes FetchRetry through a per-call lane source.
func (r *DynReceiver) SetLaneSource(src LaneSource) { r.source = src }

// NewDynReceiver claims DynMetaSize bytes at off in mr as the metadata slot
// for an edge whose sender is reached via ch.
func NewDynReceiver(ch *Channel, mr *MemRegion, off int) (*DynReceiver, error) {
	if off%8 != 0 {
		return nil, fmt.Errorf("rdma: dyn meta offset %d not 8-aligned: %w", off, ErrBadConfig)
	}
	if _, err := mr.Slice(off, DynMetaSize); err != nil {
		return nil, err
	}
	ackSrc, err := mr.dev.AllocateMemRegion(FlagWordSize)
	if err != nil {
		return nil, err
	}
	ackSrc.SetFlagLocal(0)
	r := &DynReceiver{mr: mr, off: off, sender: ch.Remote(), ch: ch, ackSrc: ackSrc,
		lanes: []*Channel{ch}}
	mr.ClearFlag(off + dynMetaFlagOff)
	return r, nil
}

// Desc returns the metadata slot's address for distribution to the sender.
func (r *DynReceiver) Desc() DynSlotDesc {
	return DynSlotDesc{Region: r.mr.Descriptor(), Off: r.off}
}

// Close releases the receiver's internally allocated ack-source region.
// Call when the edge is torn down (e.g. rebuilt after a peer crash) so
// repeated setup rounds do not accumulate registrations.
func (r *DynReceiver) Close() {
	r.mr.dev.FreeMemRegion(r.ackSrc)
}

// Poll checks the metadata flag; when set it decodes and returns the
// metadata (leaving the flag set until Fetch clears it).
func (r *DynReceiver) Poll() (DynMeta, bool) {
	if !r.mr.PollFlag(r.off + dynMetaFlagOff) {
		return DynMeta{}, false
	}
	m, err := DecodeDynMeta(r.mr.Bytes()[r.off:r.off+DynMetaSize], r.sender)
	if err != nil {
		// Unreachable for a full-size slot; keep Poll's signature simple.
		return DynMeta{}, false
	}
	return m, true
}

// DecodeDynMeta decodes a metadata block image (the first dynMetaFlagOff
// bytes of a slot) as written by DynSender.Send, reconstructing the source
// region with the edge's sender endpoint. It is total on arbitrary bytes:
// short input errors, an out-of-range rank is clamped, and no input panics.
func DecodeDynMeta(b []byte, sender string) (DynMeta, error) {
	if len(b) < dynMetaFlagOff {
		return DynMeta{}, fmt.Errorf("rdma: short dyn metadata block (%d bytes)", len(b))
	}
	m := DynMeta{
		DType:       binary.LittleEndian.Uint32(b),
		SrcOff:      binary.LittleEndian.Uint64(b[88:]),
		PayloadSize: binary.LittleEndian.Uint64(b[96:]),
	}
	rank := binary.LittleEndian.Uint32(b[4:])
	if rank > MaxDims {
		rank = MaxDims
	}
	m.Dims = make([]uint64, rank)
	for i := range m.Dims {
		m.Dims[i] = binary.LittleEndian.Uint64(b[8+8*i:])
	}
	m.Src = RemoteRegion{
		Endpoint: sender,
		RegionID: binary.LittleEndian.Uint32(b[72:]),
		Size:     binary.LittleEndian.Uint64(b[80:]),
	}
	return m, nil
}

// Fetch clears the metadata flag, pulls the payload into
// dst[dstOff:dstOff+meta.PayloadSize) with a one-sided read, and then posts
// the reuse ack into the sender's scratch block. cb fires after the read
// completes locally (the ack write is issued but not awaited, matching the
// one-way nature of the protocol).
func (r *DynReceiver) Fetch(meta DynMeta, senderScratch DynSlotDesc, dst *MemRegion, dstOff int, cb func(error)) error {
	r.mr.ClearFlag(r.off + dynMetaFlagOff)
	size := int(meta.PayloadSize)
	return r.ch.Memcpy(dstOff, dst, int(meta.SrcOff), meta.Src, size, OpRead, func(err error) {
		if err != nil {
			cb(err)
			return
		}
		ackErr := r.ch.Memcpy(0, r.ackSrc, senderScratch.Off+dynMetaAckOff,
			senderScratch.Region, FlagWordSize, OpWrite, nil)
		cb(ackErr)
	})
}

// DynSender owns the sender-side scratch block for one dynamic edge: the
// staged metadata image plus the ack word the receiver writes back.
type DynSender struct {
	ch   *Channel
	mr   *MemRegion
	off  int
	meta DynSlotDesc // receiver's metadata slot
	// source, when set, supplies SendRetry's channel per attempt (QP mux).
	source LaneSource
	// started is atomic: the scheduler polls PollReusable from its worker
	// goroutine while Send runs on the edge's transfer goroutine.
	started atomic.Bool
}

// SetLaneSource routes SendRetry through a per-attempt lane source.
func (s *DynSender) SetLaneSource(src LaneSource) { s.source = src }

// NewDynSender claims DynMetaSize bytes at off in mr as scratch for sends to
// the given receiver metadata slot.
func NewDynSender(ch *Channel, mr *MemRegion, off int, meta DynSlotDesc) (*DynSender, error) {
	if off%8 != 0 {
		return nil, fmt.Errorf("rdma: dyn scratch offset %d not 8-aligned: %w", off, ErrBadConfig)
	}
	if _, err := mr.Slice(off, DynMetaSize); err != nil {
		return nil, err
	}
	if meta.Region.Endpoint != ch.Remote() {
		return nil, fmt.Errorf("rdma: meta slot on %s but channel to %s: %w",
			meta.Region.Endpoint, ch.Remote(), ErrBadConfig)
	}
	s := &DynSender{ch: ch, mr: mr, off: off, meta: meta}
	mr.ClearFlag(off + dynMetaAckOff)
	return s, nil
}

// ScratchDesc returns the scratch block's address, which the receiver needs
// for ack writes.
func (s *DynSender) ScratchDesc() DynSlotDesc {
	return DynSlotDesc{Region: s.mr.Descriptor(), Off: s.off}
}

// PollReusable reports whether the previous transfer has been acked (or no
// transfer has happened yet), i.e. whether Send may be called.
func (s *DynSender) PollReusable() bool {
	if !s.started.Load() {
		return true
	}
	return s.mr.PollFlag(s.off + dynMetaAckOff)
}

// Send stages the metadata describing payload[payloadOff, +payloadSize) of
// payloadMR and writes it (with flag) to the receiver's metadata slot. The
// payload itself stays put — the receiver pulls it with an RDMA read.
// Returns ErrBusy if the previous transfer has not been acked yet.
func (s *DynSender) Send(payloadMR *MemRegion, payloadOff, payloadSize int,
	dtype uint32, dims []uint64, cb func(error)) error {
	return s.sendOn(s.ch, payloadMR, payloadOff, payloadSize, dtype, dims, cb)
}

// sendOn is Send over an explicit channel (per-attempt lane acquisition).
func (s *DynSender) sendOn(ch *Channel, payloadMR *MemRegion, payloadOff, payloadSize int,
	dtype uint32, dims []uint64, cb func(error)) error {
	if len(dims) > MaxDims {
		return fmt.Errorf("rdma: rank %d exceeds MaxDims %d: %w", len(dims), MaxDims, ErrBadConfig)
	}
	if _, err := payloadMR.Slice(payloadOff, payloadSize); err != nil {
		return err
	}
	if !s.PollReusable() {
		return ErrBusy
	}
	s.started.Store(true)
	s.mr.ClearFlag(s.off + dynMetaAckOff)

	b := s.mr.Bytes()[s.off : s.off+DynMetaSize]
	binary.LittleEndian.PutUint32(b, dtype)
	binary.LittleEndian.PutUint32(b[4:], uint32(len(dims)))
	for i := 0; i < MaxDims; i++ {
		var d uint64
		if i < len(dims) {
			d = dims[i]
		}
		binary.LittleEndian.PutUint64(b[8+8*i:], d)
	}
	binary.LittleEndian.PutUint32(b[72:], payloadMR.ID())
	binary.LittleEndian.PutUint32(b[76:], 0)
	binary.LittleEndian.PutUint64(b[80:], uint64(payloadMR.Size()))
	binary.LittleEndian.PutUint64(b[88:], uint64(payloadOff))
	binary.LittleEndian.PutUint64(b[96:], uint64(payloadSize))
	s.mr.SetFlagLocal(s.off + dynMetaFlagOff)

	// Write metadata + flag (but not the ack word) in one ascending write.
	return ch.Memcpy(s.off, s.mr, s.meta.Off, s.meta.Region,
		dynMetaFlagOff+FlagWordSize, OpWrite, cb)
}
