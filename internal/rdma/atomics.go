package rdma

import "fmt"

// One-sided atomic memory verbs (§2.3 counts atomics among the memory
// verbs alongside reads and writes). Both operate on an 8-byte-aligned word
// of a remote registered region without involving the remote CPU, and both
// return the word's prior value — the semantics of IBV_WR_ATOMIC_FETCH_AND_ADD
// and IBV_WR_ATOMIC_CMP_AND_SWP. Atomicity is with respect to all fabric
// accesses of the word (the emulator uses the host's atomic instructions,
// which is strictly stronger than some NICs guarantee relative to local
// CPU access — protocols here only race atomics with atomics).

type atomicKind uint8

const (
	atomicFetchAdd atomicKind = iota
	atomicCompareSwap
)

type atomicRequest struct {
	kind    atomicKind
	remote  RemoteRegion
	off     int
	operand uint64 // delta for fetch-add, swap value for CAS
	compare uint64
	result  *uint64 // written by the QP goroutine, read after completion
}

// FetchAdd atomically adds delta to the remote word at the 8-byte-aligned
// offset and delivers the previous value to cb on a CQ poller goroutine.
func (c *Channel) FetchAdd(remoteOff int, remote RemoteRegion, delta uint64,
	cb func(old uint64, err error)) error {
	return c.postAtomic(atomicRequest{
		kind: atomicFetchAdd, remote: remote, off: remoteOff, operand: delta,
	}, cb)
}

// CompareSwap atomically replaces the remote word with swap if it equals
// compare, delivering the observed prior value to cb (the swap happened iff
// old == compare).
func (c *Channel) CompareSwap(remoteOff int, remote RemoteRegion, compare, swap uint64,
	cb func(old uint64, err error)) error {
	return c.postAtomic(atomicRequest{
		kind: atomicCompareSwap, remote: remote, off: remoteOff,
		compare: compare, operand: swap,
	}, cb)
}

// FetchAddSync is FetchAdd blocking for the result.
func (c *Channel) FetchAddSync(remoteOff int, remote RemoteRegion, delta uint64) (uint64, error) {
	type res struct {
		old uint64
		err error
	}
	ch := make(chan res, 1)
	if err := c.FetchAdd(remoteOff, remote, delta, func(old uint64, err error) {
		ch <- res{old, err}
	}); err != nil {
		return 0, err
	}
	r := <-ch
	return r.old, r.err
}

// CompareSwapSync is CompareSwap blocking for the result.
func (c *Channel) CompareSwapSync(remoteOff int, remote RemoteRegion, compare, swap uint64) (uint64, error) {
	type res struct {
		old uint64
		err error
	}
	ch := make(chan res, 1)
	if err := c.CompareSwap(remoteOff, remote, compare, swap, func(old uint64, err error) {
		ch <- res{old, err}
	}); err != nil {
		return 0, err
	}
	r := <-ch
	return r.old, r.err
}

func (c *Channel) postAtomic(req atomicRequest, cb func(old uint64, err error)) error {
	if req.off < 0 || req.off%8 != 0 || uint64(req.off)+8 > req.remote.Size {
		return fmt.Errorf("rdma: atomic at offset %d of %d-byte region (need aligned word): %w",
			req.off, req.remote.Size, ErrBounds)
	}
	req.result = new(uint64)
	return c.qp.post(workRequest{
		kind:   wrAtomic,
		atomic: req,
		cb: func(err error) {
			if cb != nil {
				cb(*req.result, err)
			}
		},
	})
}

// executeAtomic runs on the requester's QP goroutine, like the other
// one-sided verbs.
func (d *Device) executeAtomic(peer string, req atomicRequest) error {
	remoteDev, err := d.fabric.lookup(d.endpoint, peer)
	if err != nil {
		return err
	}
	if req.remote.Endpoint != peer {
		return fmt.Errorf("rdma: atomic on region of %s over channel to %s: %w",
			req.remote.Endpoint, peer, ErrBadConfig)
	}
	mr, err := remoteDev.lookupRegion(req.remote.RegionID)
	if err != nil {
		return err
	}
	if req.off+8 > mr.Size() {
		return fmt.Errorf("rdma: atomic at %d of %d-byte region: %w", req.off, mr.Size(), ErrBounds)
	}
	switch req.kind {
	case atomicFetchAdd:
		*req.result = atomicAdd64(mr.data, req.off, req.operand)
	case atomicCompareSwap:
		*req.result = atomicCAS64(mr.data, req.off, req.compare, req.operand)
	}
	return nil
}
