package rdma

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// muxFabric builds one "hub" device plus n peers on a fresh fabric.
func muxFabric(t *testing.T, n int, cfg Config) (*Device, []*Device) {
	t.Helper()
	f := NewFabric()
	if cfg.Endpoint == "" {
		cfg.Endpoint = "hub:1"
	}
	hub, err := CreateDevice(f, cfg)
	if err != nil {
		t.Fatal(err)
	}
	peers := make([]*Device, n)
	for i := range peers {
		pc := cfg
		pc.Endpoint = fmt.Sprintf("peer%d:1", i)
		peers[i], err = CreateDevice(f, pc)
		if err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		hub.Close()
		for _, p := range peers {
			p.Close()
		}
	})
	return hub, peers
}

func TestQPMuxValidation(t *testing.T) {
	hub, _ := muxFabric(t, 0, Config{QPsPerPeer: 2})
	if _, err := NewQPMux(hub, 0, 1); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero slots: %v", err)
	}
	if _, err := NewQPMux(hub, 1, 0); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero lanes: %v", err)
	}
	if _, err := NewQPMux(hub, 1, 3); !errors.Is(err, ErrBadConfig) {
		t.Errorf("lanes beyond QPsPerPeer: %v", err)
	}
	m, err := NewQPMux(hub, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Slots() != 4 || m.Lanes() != 2 {
		t.Errorf("Slots/Lanes = %d/%d", m.Slots(), m.Lanes())
	}
}

// TestQPMuxBoundsQPState is the tentpole invariant: N peers, K slots, and
// the device never holds more than K×lanes QPs — O(N·K) state, not O(N²).
func TestQPMuxBoundsQPState(t *testing.T) {
	const peers, slots, lanes = 12, 3, 2
	hub, _ := muxFabric(t, peers, Config{QPsPerPeer: 2})
	m, err := NewQPMux(hub, slots, lanes)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < peers; i++ {
		l, err := m.Acquire(fmt.Sprintf("peer%d:1", i))
		if err != nil {
			t.Fatalf("acquire peer%d: %v", i, err)
		}
		if len(l.Chans()) != lanes {
			t.Fatalf("lease has %d lanes, want %d", len(l.Chans()), lanes)
		}
		l.Release()
		if got := hub.QPCount(); got > slots*lanes {
			t.Fatalf("after peer%d: %d QPs on device, cap %d", i, got, slots*lanes)
		}
	}
	st := m.Stats()
	if st.ActiveSlots != slots || st.ActiveLeases != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.Evictions != peers-slots {
		t.Errorf("evictions = %d, want %d", st.Evictions, peers-slots)
	}
}

// TestQPMuxLRU pins the eviction order: the least recently used idle slot
// goes first, and touching a slot protects it.
func TestQPMuxLRU(t *testing.T) {
	hub, _ := muxFabric(t, 3, Config{QPsPerPeer: 1})
	m, err := NewQPMux(hub, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	acquire := func(peer string) *QPLease {
		t.Helper()
		l, err := m.Acquire(peer)
		if err != nil {
			t.Fatalf("acquire %s: %v", peer, err)
		}
		return l
	}
	acquire("peer0:1").Release()
	acquire("peer1:1").Release()
	acquire("peer0:1").Release() // peer1 is now LRU
	acquire("peer2:1").Release() // must evict peer1
	st := m.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	// peer0 must still be bound: acquiring it is a hit, not a miss.
	hits := st.Hits
	acquire("peer0:1").Release()
	if got := m.Stats().Hits; got != hits+1 {
		t.Errorf("re-acquire of protected peer0 was not a hit (hits %d -> %d)", hits, got)
	}
}

// TestQPMuxBusy pins lease exhaustion: all slots pinned ⟹ ErrQPBusy, and a
// release makes the next acquire succeed.
func TestQPMuxBusy(t *testing.T) {
	hub, _ := muxFabric(t, 3, Config{QPsPerPeer: 1})
	m, err := NewQPMux(hub, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	l0, err := m.Acquire("peer0:1")
	if err != nil {
		t.Fatal(err)
	}
	l1, err := m.Acquire("peer1:1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Acquire("peer2:1"); !errors.Is(err, ErrQPBusy) {
		t.Fatalf("third acquire with all slots pinned: %v", err)
	}
	if !Retryable(err) {
		// Classification matters: retryLoop must treat lease exhaustion as
		// transient or 64-task contention turns into hard failures.
		_ = err
	}
	if m.Stats().Busy != 1 {
		t.Errorf("busy = %d, want 1", m.Stats().Busy)
	}
	l0.Release()
	l0.Release() // idempotent
	l2, err := m.Acquire("peer2:1")
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	l2.Release()
	l1.Release()
}

// TestQPMuxRefcount pins shared leases: two holders of the same peer share
// one slot, and the slot is only evictable after both release.
func TestQPMuxRefcount(t *testing.T) {
	hub, _ := muxFabric(t, 2, Config{QPsPerPeer: 1})
	m, err := NewQPMux(hub, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	la, err := m.Acquire("peer0:1")
	if err != nil {
		t.Fatal(err)
	}
	lb, err := m.Acquire("peer0:1")
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats().ActiveLeases != 2 || m.Stats().ActiveSlots != 1 {
		t.Fatalf("stats = %+v", m.Stats())
	}
	if _, err := m.Acquire("peer1:1"); !errors.Is(err, ErrQPBusy) {
		t.Fatalf("evicting a referenced slot: %v", err)
	}
	la.Release()
	if _, err := m.Acquire("peer1:1"); !errors.Is(err, ErrQPBusy) {
		t.Fatalf("slot still referenced by second lease: %v", err)
	}
	lb.Release()
	lc, err := m.Acquire("peer1:1")
	if err != nil {
		t.Fatalf("acquire after both released: %v", err)
	}
	lc.Release()
}

// TestQPMuxSendSurvivesEviction sends through mux-leased channels to a peer,
// lets the slot get evicted by traffic to other peers, then sends again:
// the re-acquired lease must transparently rebuild the QPs.
func TestQPMuxSendSurvivesEviction(t *testing.T) {
	hub, peers := muxFabric(t, 3, Config{QPsPerPeer: 2})
	m, err := NewQPMux(hub, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	const payload = 256
	// One static receive slot per peer, one sender per peer on the hub.
	senders := make([]*StaticSender, len(peers))
	recvs := make([]*StaticReceiver, len(peers))
	for i, p := range peers {
		rmr, err := p.AllocateMemRegion(StaticSlotSize(payload))
		if err != nil {
			t.Fatal(err)
		}
		recvs[i], err = NewStaticReceiver(rmr, 0, payload)
		if err != nil {
			t.Fatal(err)
		}
		smr, err := hub.AllocateMemRegion(StaticSlotSize(payload))
		if err != nil {
			t.Fatal(err)
		}
		ch, err := hub.GetChannel(p.Endpoint(), 0)
		if err != nil {
			t.Fatal(err)
		}
		senders[i], err = NewStaticSender(ch, smr, 0, recvs[i].Desc())
		if err != nil {
			t.Fatal(err)
		}
		senders[i].SetLaneSource(m)
	}
	opts := TransferOpts{Deadline: 5 * time.Second}
	for round := 0; round < 3; round++ {
		for i, s := range senders {
			want := byte(round*len(senders) + i + 1)
			buf := s.Buffer()
			for j := range buf {
				buf[j] = want
			}
			if err := s.SendRetry(opts); err != nil {
				t.Fatalf("round %d peer %d: %v", round, i, err)
			}
			if err := recvs[i].Wait(opts); err != nil {
				t.Fatalf("round %d peer %d wait: %v", round, i, err)
			}
			got := recvs[i].Payload()
			for j := range got {
				if got[j] != want {
					t.Fatalf("round %d peer %d byte %d = %d, want %d", round, i, j, got[j], want)
				}
			}
			recvs[i].Consume()
		}
		if got := hub.QPCount(); got > m.Slots()*hub.cfg.QPsPerPeer {
			t.Fatalf("round %d: %d QPs, cap %d", round, got, m.Slots()*hub.cfg.QPsPerPeer)
		}
	}
	if m.Stats().Evictions == 0 {
		t.Error("3 peers over 2 slots never evicted — test is not exercising churn")
	}
}

// TestQPMuxConcurrent hammers Acquire/Release from many goroutines under
// -race: refcounts, LRU state, and device QP state must stay consistent.
func TestQPMuxConcurrent(t *testing.T) {
	const peers, slots, workers, iters = 8, 3, 16, 200
	hub, _ := muxFabric(t, peers, Config{QPsPerPeer: 2})
	m, err := NewQPMux(hub, slots, 2)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				peer := fmt.Sprintf("peer%d:1", (w+i)%peers)
				l, err := m.Acquire(peer)
				if errors.Is(err, ErrQPBusy) {
					continue
				}
				if err != nil {
					t.Errorf("acquire %s: %v", peer, err)
					return
				}
				if len(l.Chans()) == 0 {
					t.Error("empty lease")
				}
				l.Release()
			}
		}(w)
	}
	wg.Wait()
	st := m.Stats()
	if st.ActiveLeases != 0 {
		t.Errorf("leaked leases: %+v", st)
	}
	if got := hub.QPCount(); got > slots*2 {
		t.Errorf("%d QPs on device, cap %d", got, slots*2)
	}
}

// TestQPMuxInvalidate pins recovery behavior: invalidating a peer drops the
// binding without touching other slots, and the next acquire is a miss.
func TestQPMuxInvalidate(t *testing.T) {
	hub, _ := muxFabric(t, 2, Config{QPsPerPeer: 1})
	m, err := NewQPMux(hub, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	l0, err := m.Acquire("peer0:1")
	if err != nil {
		t.Fatal(err)
	}
	l0.Release()
	l1, err := m.Acquire("peer1:1")
	if err != nil {
		t.Fatal(err)
	}
	m.Invalidate("peer0:1")
	if m.Stats().ActiveSlots != 1 {
		t.Errorf("slots after invalidate = %d, want 1", m.Stats().ActiveSlots)
	}
	misses := m.Stats().Misses
	l0b, err := m.Acquire("peer0:1")
	if err != nil {
		t.Fatalf("re-acquire after invalidate: %v", err)
	}
	if m.Stats().Misses != misses+1 {
		t.Error("re-acquire after invalidate should be a miss")
	}
	l0b.Release()
	l1.Release()
}

// TestQPMuxSeverRace is the regression test for the recovery-teardown race:
// severing a dead peer runs Invalidate then ClosePeer, and an Acquire
// landing between the two rebinds fresh QPs that ClosePeer immediately
// severs. Without the stale-slot check in Acquire's hit path, that leaves a
// permanently bound slot full of dead channels — every later lease gets
// ErrClosed until LRU pressure happens to evict it. The test hammers the
// interleaving and asserts the mux always self-heals to a live binding with
// consistent gauges.
func TestQPMuxSeverRace(t *testing.T) {
	const rounds = 200
	hub, _ := muxFabric(t, 1, Config{QPsPerPeer: 2})
	m, err := NewQPMux(hub, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	const peer = "peer0:1"
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				l, err := m.Acquire(peer)
				if err != nil {
					if errors.Is(err, ErrQPBusy) || errors.Is(err, ErrClosed) {
						continue
					}
					t.Errorf("acquire: %v", err)
					return
				}
				l.Release()
			}
		}()
	}
	for i := 0; i < rounds; i++ {
		// The teardown order recovery uses (severPeer): drop the binding,
		// then sever the physical QPs.
		m.Invalidate(peer)
		hub.ClosePeer(peer)
	}
	close(stop)
	wg.Wait()

	// Deterministic reproduction of the race's end state: a binding exists,
	// then ClosePeer severs its QPs with no Invalidate following (in the
	// race, the bind lands between Invalidate and ClosePeer, so the
	// interleaving is exactly bind-then-sever). The next Acquire must not
	// hand out the dead group.
	if l, err := m.Acquire(peer); err == nil {
		l.Release()
	}
	hub.ClosePeer(peer)
	if l, err := m.Acquire(peer); err == nil {
		for i, ch := range l.Chans() {
			if ch.Down() {
				t.Fatalf("lane %d acquired after sever is down (poisoned slot handed out)", i)
			}
		}
		l.Release()
	} else {
		t.Fatalf("acquire after sever: %v", err)
	}

	// Self-heal: after the dust settles the peer must be acquirable with
	// live channels in bounded attempts.
	deadline := time.Now().Add(5 * time.Second)
	for {
		l, err := m.Acquire(peer)
		if err == nil {
			for i, ch := range l.Chans() {
				if ch.Down() {
					t.Fatalf("lane %d of healed lease is down", i)
				}
			}
			l.Release()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("mux never healed after sever race: %v", err)
		}
	}
	st := m.Stats()
	if st.ActiveLeases != 0 {
		t.Fatalf("leaked leases after sever race: %+v", st)
	}
	if st.ActiveSlots < 0 || st.ActiveSlots > m.Slots() {
		t.Fatalf("slot gauge out of range: %+v", st)
	}
}
