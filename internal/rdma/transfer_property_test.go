package rdma

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// Seeded property-based round-trip tests: both transfer protocols must move
// arbitrary payloads intact across randomized sizes, slot alignments, dtypes,
// and ranks. The seed is fixed so a failure reproduces; every trial's
// parameters are logged in the failure message so the shrinking is manual but
// trivial.

const propertySeed = 0x5EED_2019

// propTrial is one randomized parameter set, stringified into failures.
type propTrial struct {
	Iter        int
	PayloadSize int
	RecvOff     int
	SendOff     int
	PayloadOff  int
	DType       uint32
	Dims        []uint64
	Fill        byte
}

func (p propTrial) String() string {
	return fmt.Sprintf("iter=%d size=%d recvOff=%d sendOff=%d payloadOff=%d dtype=%d dims=%v fill=%#x",
		p.Iter, p.PayloadSize, p.RecvOff, p.SendOff, p.PayloadOff, p.DType, p.Dims, p.Fill)
}

func randTrial(rng *rand.Rand, iter int) propTrial {
	rank := 1 + rng.Intn(MaxDims)
	dims := make([]uint64, rank)
	for i := range dims {
		dims[i] = uint64(1 + rng.Intn(64))
	}
	return propTrial{
		Iter:        iter,
		PayloadSize: 1 + rng.Intn(4096),
		RecvOff:     8 * rng.Intn(16), // slot offsets must be 8-aligned
		SendOff:     8 * rng.Intn(16),
		PayloadOff:  rng.Intn(128), // dyn payloads may sit at any byte offset
		DType:       rng.Uint32(),
		Dims:        dims,
		Fill:        byte(rng.Intn(256)),
	}
}

func fillPattern(b []byte, rng *rand.Rand) {
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
}

func TestStaticRoundTripProperty(t *testing.T) {
	f, a, b := newPair(t)
	_ = f
	rng := rand.New(rand.NewSource(propertySeed))
	opts := TransferOpts{Deadline: 10 * time.Second}
	for iter := 0; iter < 24; iter++ {
		p := randTrial(rng, iter)

		recvMR, err := b.AllocateMemRegion(p.RecvOff + StaticSlotSize(p.PayloadSize))
		if err != nil {
			t.Fatalf("%v: alloc recv: %v", p, err)
		}
		recv, err := NewStaticReceiver(recvMR, p.RecvOff, p.PayloadSize)
		if err != nil {
			t.Fatalf("%v: receiver: %v", p, err)
		}
		sendMR, err := a.AllocateMemRegion(p.SendOff + StaticSlotSize(p.PayloadSize))
		if err != nil {
			t.Fatalf("%v: alloc send: %v", p, err)
		}
		ch, err := a.GetChannel("hostB:1", 0)
		if err != nil {
			t.Fatalf("%v: channel: %v", p, err)
		}
		send, err := NewStaticSender(ch, sendMR, p.SendOff, recv.Desc())
		if err != nil {
			t.Fatalf("%v: sender: %v", p, err)
		}

		want := make([]byte, p.PayloadSize)
		fillPattern(want, rng)
		copy(send.Buffer(), want)
		if err := send.SendRetry(opts); err != nil {
			t.Fatalf("%v: send: %v", p, err)
		}
		if err := recv.Wait(opts); err != nil {
			t.Fatalf("%v: wait: %v", p, err)
		}
		for i, got := range recv.Payload() {
			if got != want[i] {
				t.Fatalf("%v: payload[%d] = %#x, want %#x", p, i, got, want[i])
			}
		}
		recv.Consume()
		if recv.Poll() {
			t.Fatalf("%v: flag still set after Consume", p)
		}
	}
}

func TestDynRoundTripProperty(t *testing.T) {
	f, a, b := newPair(t)
	_ = f
	rng := rand.New(rand.NewSource(propertySeed + 1))
	opts := TransferOpts{Deadline: 10 * time.Second}
	for iter := 0; iter < 24; iter++ {
		p := randTrial(rng, iter)

		metaMR, err := b.AllocateMemRegion(p.RecvOff + DynMetaSize)
		if err != nil {
			t.Fatalf("%v: alloc meta: %v", p, err)
		}
		chBA, err := b.GetChannel("hostA:1", 0)
		if err != nil {
			t.Fatalf("%v: channel b->a: %v", p, err)
		}
		recv, err := NewDynReceiver(chBA, metaMR, p.RecvOff)
		if err != nil {
			t.Fatalf("%v: receiver: %v", p, err)
		}
		scratchMR, err := a.AllocateMemRegion(p.SendOff + DynMetaSize)
		if err != nil {
			t.Fatalf("%v: alloc scratch: %v", p, err)
		}
		chAB, err := a.GetChannel("hostB:1", 0)
		if err != nil {
			t.Fatalf("%v: channel a->b: %v", p, err)
		}
		send, err := NewDynSender(chAB, scratchMR, p.SendOff, recv.Desc())
		if err != nil {
			t.Fatalf("%v: sender: %v", p, err)
		}

		payloadMR, err := a.AllocateMemRegion(p.PayloadOff + p.PayloadSize)
		if err != nil {
			t.Fatalf("%v: alloc payload: %v", p, err)
		}
		want := make([]byte, p.PayloadSize)
		fillPattern(want, rng)
		copy(payloadMR.Bytes()[p.PayloadOff:], want)

		if err := send.SendRetry(payloadMR, p.PayloadOff, p.PayloadSize, p.DType, p.Dims, opts); err != nil {
			t.Fatalf("%v: send: %v", p, err)
		}
		meta, err := recv.WaitMeta(opts)
		if err != nil {
			t.Fatalf("%v: wait meta: %v", p, err)
		}
		if meta.DType != p.DType || int(meta.PayloadSize) != p.PayloadSize {
			t.Fatalf("%v: meta = %+v", p, meta)
		}
		if len(meta.Dims) != len(p.Dims) {
			t.Fatalf("%v: decoded rank %d, want %d", p, len(meta.Dims), len(p.Dims))
		}
		for i := range p.Dims {
			if meta.Dims[i] != p.Dims[i] {
				t.Fatalf("%v: dims[%d] = %d, want %d", p, i, meta.Dims[i], p.Dims[i])
			}
		}

		dst, err := b.AllocateMemRegion(p.PayloadSize)
		if err != nil {
			t.Fatalf("%v: alloc dst: %v", p, err)
		}
		if err := recv.FetchRetry(meta, send.ScratchDesc(), dst, 0, opts); err != nil {
			t.Fatalf("%v: fetch: %v", p, err)
		}
		for i, got := range dst.Bytes()[:p.PayloadSize] {
			if got != want[i] {
				t.Fatalf("%v: payload[%d] = %#x, want %#x", p, i, got, want[i])
			}
		}
		if !send.PollReusable() {
			t.Fatalf("%v: sender not reusable after awaited ack", p)
		}
	}
}
