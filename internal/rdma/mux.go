package rdma

import (
	"errors"
	"fmt"
	"sync"
)

// QP sharing/multiplexing. The device model — like the paper's library —
// builds one QP group per connected peer pair, which is O(N²) QP state
// across an N-task fabric. The hyperscale QP-scalability result (arXiv
// 2606.20582) is that this collapses at cluster scale: QP context is NIC
// SRAM, and connection setup time grows with the pair count. QPMux bounds
// a device's QP state to O(K·L) for K slots of L lanes each: logical peer
// channels lease a slot on demand, slots are recycled LRU when idle, and a
// fully pinned pool reports typed contention (ErrQPBusy) instead of
// growing.

// ErrQPBusy is returned by QPMux.Acquire when every slot is pinned by an
// active lease. It is transient contention — not loss, not
// misconfiguration — and the retry layer gives it its own backoff curve
// that does not consume the caller's fault-retry budget (see retryLoop).
var ErrQPBusy = errors.New("rdma: all qp slots leased")

// LaneSource supplies the channels for one transfer attempt. Senders and
// receivers that hold a LaneSource acquire their lanes per attempt and
// release them when the attempt's completions have drained, so an idle
// edge pins no QP slot between iterations. QPMux implements it; tests may
// substitute fakes.
type LaneSource interface {
	// AcquireLanes returns ≥1 channels to peer plus a release func. Every
	// returned channel targets peer; index i is QP lane i. Release must be
	// called exactly once, after the attempt's posted work completed.
	AcquireLanes(peer string) ([]*Channel, func(), error)
}

// laneFor resolves one channel for a single-lane attempt: through the
// source when present, else the cached fallback with a no-op release.
func laneFor(src LaneSource, peer string, fallback *Channel) (*Channel, func(), error) {
	if src == nil {
		return fallback, func() {}, nil
	}
	lanes, release, err := src.AcquireLanes(peer)
	if err != nil {
		return nil, nil, err
	}
	return lanes[0], release, nil
}

// QPMux multiplexes logical peer channels over a bounded pool of physical
// QP slots on one device. A slot is the full lane group for one peer
// (lanes QPs); Acquire binds a peer to a slot (creating QPs on first use),
// refcounts concurrent leases, and — when the pool is full — evicts the
// least recently used idle slot, closing its QPs via Device.ClosePeer.
type QPMux struct {
	dev   *Device
	slots int
	lanes int

	mu    sync.Mutex
	bound map[string]*muxSlot
	clock uint64 // LRU timestamp source, monotone under mu

	leases    int64
	hits      int64
	misses    int64
	evictions int64
	busy      int64
}

// muxSlot is one peer's binding to a pool slot.
type muxSlot struct {
	peer    string
	chans   []*Channel
	refcnt  int
	lastUse uint64
}

// stale reports whether any of the slot's lane QPs has been closed — the
// binding outlived its physical channels and must not serve new leases.
func (s *muxSlot) stale() bool {
	for _, ch := range s.chans {
		if ch.Down() {
			return true
		}
	}
	return false
}

// NewQPMux builds a mux over dev with the given slot cap and lanes per
// slot. lanes is clamped by the device's QPsPerPeer (the QP group is what
// physically exists per bound peer).
func NewQPMux(dev *Device, slots, lanes int) (*QPMux, error) {
	if dev == nil {
		return nil, fmt.Errorf("rdma: nil device for qp mux: %w", ErrBadConfig)
	}
	if slots < 1 {
		return nil, fmt.Errorf("rdma: qp mux needs ≥1 slot, got %d: %w", slots, ErrBadConfig)
	}
	if lanes < 1 || lanes > dev.cfg.QPsPerPeer {
		return nil, fmt.Errorf("rdma: qp mux lanes %d outside [1,%d]: %w",
			lanes, dev.cfg.QPsPerPeer, ErrBadConfig)
	}
	return &QPMux{dev: dev, slots: slots, lanes: lanes, bound: make(map[string]*muxSlot)}, nil
}

// Slots returns the pool size; Lanes the QP lanes per slot.
func (m *QPMux) Slots() int { return m.slots }
func (m *QPMux) Lanes() int { return m.lanes }

// Acquire leases the slot bound to peer, binding one if needed. A full
// pool evicts the LRU idle slot (refcnt 0 ⇒ no attempt in flight, so its
// QPs hold no live work); with every slot pinned it fails with ErrQPBusy.
func (m *QPMux) Acquire(peer string) (*QPLease, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.clock++
	if s, ok := m.bound[peer]; ok {
		if s.stale() {
			// The slot's QPs died underneath the binding: Acquire can race
			// recovery's Invalidate→ClosePeer window and rebind fresh QPs
			// that ClosePeer then severs. Handing the dead group to new
			// leases would poison the peer until LRU pressure happened to
			// evict it; drop the binding and rebuild below instead.
			// In-flight leases on the old slot fail fast with ErrClosed and
			// release against the orphaned slot object, so the gauges stay
			// consistent.
			delete(m.bound, peer)
		} else {
			s.refcnt++
			s.lastUse = m.clock
			m.hits++
			m.leases++
			return &QPLease{mux: m, slot: s}, nil
		}
	}
	if len(m.bound) >= m.slots {
		var victim *muxSlot
		for _, s := range m.bound {
			if s.refcnt == 0 && (victim == nil || s.lastUse < victim.lastUse) {
				victim = s
			}
		}
		if victim == nil {
			m.busy++
			return nil, fmt.Errorf("rdma: %s: %d/%d slots pinned acquiring %s: %w",
				m.dev.endpoint, m.slots, m.slots, peer, ErrQPBusy)
		}
		delete(m.bound, victim.peer)
		m.evictions++
		m.dev.ClosePeer(victim.peer)
	}
	chans := make([]*Channel, m.lanes)
	for i := range chans {
		ch, err := m.dev.GetChannel(peer, i)
		if err != nil {
			m.dev.ClosePeer(peer)
			return nil, err
		}
		chans[i] = ch
	}
	m.misses++
	m.leases++
	s := &muxSlot{peer: peer, chans: chans, refcnt: 1, lastUse: m.clock}
	m.bound[peer] = s
	return &QPLease{mux: m, slot: s}, nil
}

// AcquireLanes implements LaneSource over the mux: one lease per attempt.
func (m *QPMux) AcquireLanes(peer string) ([]*Channel, func(), error) {
	l, err := m.Acquire(peer)
	if err != nil {
		return nil, nil, err
	}
	return l.Chans(), l.Release, nil
}

// Invalidate drops peer's binding without touching its QPs. Recovery calls
// it after Device.ClosePeer severed the physical QPs: the dead channels
// must not be handed to new leases, while in-flight holders of the old
// slot fail fast with ErrClosed and release harmlessly.
func (m *QPMux) Invalidate(peer string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.bound, peer)
}

// QPMuxStats snapshots the pool's activity.
type QPMuxStats struct {
	Slots, Lanes int
	// ActiveSlots is the number of peers currently bound; ActiveLeases the
	// total refcount across them (attempts in flight right now).
	ActiveSlots, ActiveLeases int
	// Leases counts Acquire successes; Hits the subset that reused a bound
	// slot; Misses the subset that built QPs; Evictions LRU recycles; Busy
	// the ErrQPBusy failures.
	Leases, Hits, Misses, Evictions, Busy int64
}

// Stats returns a consistent snapshot.
func (m *QPMux) Stats() QPMuxStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := QPMuxStats{
		Slots: m.slots, Lanes: m.lanes,
		ActiveSlots: len(m.bound),
		Leases:      m.leases, Hits: m.hits, Misses: m.misses,
		Evictions: m.evictions, Busy: m.busy,
	}
	for _, s := range m.bound {
		st.ActiveLeases += s.refcnt
	}
	return st
}

// QPLease pins one slot for the duration of a transfer attempt.
type QPLease struct {
	mux  *QPMux
	slot *muxSlot
	once sync.Once
}

// Chans returns the slot's lane channels (index i = QP lane i).
func (l *QPLease) Chans() []*Channel { return l.slot.chans }

// Release unpins the slot; idempotent. Call only after the attempt's
// posted work requests have completed — a refcnt-0 slot is eligible for
// eviction, which closes its QPs.
func (l *QPLease) Release() {
	l.once.Do(func() {
		l.mux.mu.Lock()
		l.slot.refcnt--
		l.mux.mu.Unlock()
	})
}
