package rdma

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestStripedFlagNeverBeforePayload drives striped sends through a hostile
// fabric — every k-th transfer dropped, every write's tail word reordered
// ahead of its body — and asserts the §3.2 invariant the striping layer must
// preserve: whenever the receiver observes the tail flag, the entire striped
// payload is already present. Payload stripes carry no flag, and the flag
// write only leaves the sender after every stripe completion, so neither
// drops (which force whole-transfer retries) nor intra-write reordering can
// expose a set flag over a partial payload.
func TestStripedFlagNeverBeforePayload(t *testing.T) {
	f, a, b := newStripedPair(t)
	const size = 4096
	recvMR, err := b.AllocateMemRegion(StaticSlotSize(size))
	if err != nil {
		t.Fatal(err)
	}
	recv, err := NewStaticReceiver(recvMR, 0, size)
	if err != nil {
		t.Fatal(err)
	}
	laneChans := lanesTo(t, a, "hostB:1", 4)
	sendMR, err := a.AllocateMemRegion(StaticSlotSize(size))
	if err != nil {
		t.Fatal(err)
	}
	sender, err := NewStaticSender(laneChans[0], sendMR, 0, recv.Desc())
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range laneChans[1:] {
		if err := sender.AddLane(ch); err != nil {
			t.Fatal(err)
		}
	}

	var transfers atomic.Uint64
	f.SetHooks(Hooks{
		TransferFault: func(op Op, size int) error {
			if transfers.Add(1)%7 == 0 {
				return ErrInjected // deterministic drop, forces full re-sends
			}
			return nil
		},
		WriteReorder: func(op Op, size int) bool { return op == OpWrite },
	})
	defer f.SetHooks(Hooks{})

	opts := TransferOpts{Deadline: 10 * time.Second, Stripes: 4}
	var retries atomic.Int64
	opts.OnRetry = func(error) { retries.Add(1) }
	const iters = 40
	for iter := 0; iter < iters; iter++ {
		want := sender.Buffer()
		fillStripePattern(want, byte(iter))
		if err := sender.SendRetry(opts); err != nil {
			t.Fatalf("iter %d: send: %v", iter, err)
		}
		// The moment the flag is visible, the payload must be complete —
		// no waiting beyond the Poll itself.
		if err := recv.Wait(opts); err != nil {
			t.Fatalf("iter %d: wait: %v", iter, err)
		}
		if !bytes.Equal(recv.Payload(), want) {
			t.Fatalf("iter %d: flag visible over incomplete striped payload", iter)
		}
		recv.Consume()
	}
	if retries.Load() == 0 {
		t.Fatal("drop schedule injected no retries; chaos exercised nothing")
	}
	// Retries stay bounded: the drop schedule fails 1 in 7 transfers, so the
	// retry count must stay well under the per-iteration budget.
	if got := retries.Load(); got > int64(iters*DefaultMaxRetries) {
		t.Fatalf("%d retries for %d iterations: retry loop not bounded", got, iters)
	}
}

// TestStripedPartitionFailsTyped: a never-healing partition must surface as
// the typed ErrTimeout on both striped paths (static send, dyn fetch),
// within the configured deadline rather than hanging.
func TestStripedPartitionFailsTyped(t *testing.T) {
	f, a, b := newStripedPair(t)
	const size = 1024
	recvMR, err := b.AllocateMemRegion(StaticSlotSize(size))
	if err != nil {
		t.Fatal(err)
	}
	recv, err := NewStaticReceiver(recvMR, 0, size)
	if err != nil {
		t.Fatal(err)
	}
	laneChans := lanesTo(t, a, "hostB:1", 4)
	sendMR, err := a.AllocateMemRegion(StaticSlotSize(size))
	if err != nil {
		t.Fatal(err)
	}
	sender, err := NewStaticSender(laneChans[0], sendMR, 0, recv.Desc())
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range laneChans[1:] {
		if err := sender.AddLane(ch); err != nil {
			t.Fatal(err)
		}
	}

	// Dyn edge set up before the partition so the metadata is already
	// delivered; only the striped payload read and ack run partitioned.
	backChans := lanesTo(t, b, "hostA:1", 4)
	metaMR, err := b.AllocateMemRegion(DynMetaSize)
	if err != nil {
		t.Fatal(err)
	}
	dynRecv, err := NewDynReceiver(backChans[0], metaMR, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range backChans[1:] {
		if err := dynRecv.AddLane(ch); err != nil {
			t.Fatal(err)
		}
	}
	scratchMR, err := a.AllocateMemRegion(DynMetaSize)
	if err != nil {
		t.Fatal(err)
	}
	dynSender, err := NewDynSender(chanTo(t, a, "hostB:1"), scratchMR, 0, dynRecv.Desc())
	if err != nil {
		t.Fatal(err)
	}
	payloadMR, err := a.AllocateMemRegion(size)
	if err != nil {
		t.Fatal(err)
	}
	dstMR, err := b.AllocateMemRegion(size)
	if err != nil {
		t.Fatal(err)
	}
	pre := TransferOpts{Deadline: 5 * time.Second}
	if err := dynSender.SendRetry(payloadMR, 0, size, 1, []uint64{size}, pre); err != nil {
		t.Fatal(err)
	}
	meta, err := dynRecv.WaitMeta(pre)
	if err != nil {
		t.Fatal(err)
	}

	f.Partition("hostA:1", "hostB:1")
	defer f.Heal("hostA:1", "hostB:1")

	short := TransferOpts{Deadline: 250 * time.Millisecond, Stripes: 4}
	start := time.Now()
	if err := sender.SendRetry(short); !errors.Is(err, ErrTimeout) {
		t.Fatalf("partitioned striped send: %v, want ErrTimeout", err)
	}
	if err := dynRecv.FetchRetry(meta, dynSender.ScratchDesc(), dstMR, 0, short); !errors.Is(err, ErrTimeout) {
		t.Fatalf("partitioned striped fetch: %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("typed failures took %v; deadline not honored", elapsed)
	}
}

func chanTo(t *testing.T, dev *Device, remote string) *Channel {
	t.Helper()
	ch, err := dev.GetChannel(remote, 0)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}
