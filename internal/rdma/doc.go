// Package rdma is an in-process emulation of the paper's RDMA "device"
// communication library (Table 1):
//
//	dev, _    := rdma.CreateDevice(fabric, rdma.Config{...})
//	mr, _     := dev.AllocateMemRegion(size)
//	ch, _     := dev.GetChannel(remoteEndpoint, qpIdx)
//	ch.Memcpy(localOff, mr, remoteOff, remoteRegion, size, dir, callback)
//
// A Fabric stands in for the physical network: it is a registry of devices
// (one per emulated server/NIC). One-sided reads and writes are executed by
// the requester's queue-pair goroutine, copying bytes directly between
// registered memory regions — the remote CPU is never involved, exactly the
// one-sided verbs semantics. Two-sided send/recv verbs and a vanilla RPC
// built on them are provided for the auxiliary address-distribution path
// (§3.1 of the paper), which is off the critical path.
//
// Fidelity points carried over from hardware:
//
//   - Writes land in ascending address order, and the final 8-byte-aligned
//     word of a transfer is committed with release semantics. This is the
//     property the paper's tail-flag protocol (§3.2) relies on ("many RDMA
//     NICs guarantee that RDMA writes are performed in an ascending address
//     order, same as reported in FaRM"). Receivers polling the flag word
//     with PollFlag (acquire load) therefore observe the full payload once
//     the flag is visible.
//   - Work requests on one QP complete in order; each QP is associated with
//     a completion queue, QPs are spread over CQs round-robin at connect
//     time (Figure 4), and a pool of poller goroutines drains CQs and runs
//     completion callbacks.
//   - Memory must be registered (a MemRegion) before it can be the source
//     or target of a transfer; out-of-bounds accesses fail the work request,
//     the emulator's analogue of a local/remote protection fault.
//   - Concurrent conflicting writes to the same region bytes are the
//     application's responsibility, as on real hardware.
//
// The fabric can inject per-transfer latency and partitions for tests.
package rdma
