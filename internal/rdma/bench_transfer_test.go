package rdma

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/wire"
)

// Transfer-level benchmarks behind scripts/bench.sh's BENCH_transfer.json.
//
// The raw emulator copies at memory bandwidth on one goroutine, which would
// make striping look like pure overhead: real NICs are the other way around,
// one QP sustains only a slice of the link and lanes add up. So these
// benchmarks install a TransferDelay hook modeling per-lane wire time plus a
// fixed per-WR post cost. The delay is served on the lane's QP goroutine, so
// striped chunks pay it concurrently exactly the way parallel QPs drain in
// hardware — and because wire time is a sleep, not CPU work, the overlap is
// real even on a single-core host (the DMA engines move the bytes, not the
// cores). The per-lane bandwidth is deliberately coarse (1 GB/s) so the
// modeled wire time stays well above the host's sleep granularity (~1ms on
// some kernels) and timer quantization stays second-order.

const (
	benchLaneGBps   = 1                    // modeled per-lane bandwidth
	benchPostCost   = 2 * time.Microsecond // fixed per-WR latency
	benchStripeSize = 16 << 20             // large-tensor payload
	benchPipeSize   = 64 << 20             // pipelined-send payload
	benchMsgSize    = 256                  // small-message payload
	benchMsgCount   = 64                   // messages per coalesced batch
)

// benchDelay is the modeled wire time for one WR of the given size.
func benchDelay(_ Op, size int) time.Duration {
	return benchPostCost + time.Duration(size)*time.Nanosecond/benchLaneGBps
}

func newBenchPair(b *testing.B) (*Fabric, *Device, *Device) {
	b.Helper()
	f := NewFabric()
	f.SetHooks(Hooks{TransferDelay: benchDelay})
	a, err := CreateDevice(f, Config{Endpoint: "hostA:1", QPsPerPeer: MaxStripes, NumCQs: 8})
	if err != nil {
		b.Fatal(err)
	}
	bb, err := CreateDevice(f, Config{Endpoint: "hostB:1", QPsPerPeer: MaxStripes, NumCQs: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { a.Close(); bb.Close() })
	return f, a, bb
}

// BenchmarkTransferStriped moves an 8 MiB tensor through the static
// write-based protocol at stripe counts 1..8. bench.sh derives the striping
// speedup (striped GB/s over the stripes=1 row) from these.
func BenchmarkTransferStriped(b *testing.B) {
	for _, stripes := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("stripes=%d", stripes), func(b *testing.B) {
			_, a, dst := newBenchPair(b)
			recvMR, err := dst.AllocateMemRegion(StaticSlotSize(benchStripeSize))
			if err != nil {
				b.Fatal(err)
			}
			recv, err := NewStaticReceiver(recvMR, 0, benchStripeSize)
			if err != nil {
				b.Fatal(err)
			}
			sendMR, err := a.AllocateMemRegion(StaticSlotSize(benchStripeSize))
			if err != nil {
				b.Fatal(err)
			}
			lanes := make([]*Channel, stripes)
			for i := range lanes {
				if lanes[i], err = a.GetChannel("hostB:1", i); err != nil {
					b.Fatal(err)
				}
			}
			sender, err := NewStaticSender(lanes[0], sendMR, 0, recv.Desc())
			if err != nil {
				b.Fatal(err)
			}
			for _, ch := range lanes[1:] {
				if err := sender.AddLane(ch); err != nil {
					b.Fatal(err)
				}
			}
			opts := TransferOpts{Deadline: 30 * time.Second, Stripes: stripes}
			b.SetBytes(benchStripeSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sender.SendRetry(opts); err != nil {
					b.Fatal(err)
				}
				if err := recv.Wait(opts); err != nil {
					b.Fatal(err)
				}
				recv.Consume()
			}
		})
	}
}

// BenchmarkTransferPipelined compares the two copy-path sends of a
// non-registered payload: staged (memcpy the whole payload into the staging
// buffer, then post every chunk — the SendFrom/SendRetry sequence) against
// pipelined (SendRetryFrom: copy one round of chunks per lane, post it, copy
// the next round while those writes fly). With more chunks than lanes the
// wire starts draining while most of the payload is still being staged, so
// the staging memcpy hides behind wire time instead of preceding it.
//
// This benchmark uses a larger payload (benchPipeSize) than the stripe
// sweep: what pipelining can hide is the staging memcpy, so the win scales
// with the copy's share of the total transfer. A 64 MiB payload keeps the
// host-side copy a meaningful fraction of the modeled wire time while each
// 4 MiB chunk's wire delay stays far above the host's sleep granularity.
func BenchmarkTransferPipelined(b *testing.B) {
	const lanes = 4
	const stripes = 16 // 16 chunks over 4 lanes: 4 rounds of overlap
	setup := func(b *testing.B) (*StaticSender, *StaticReceiver, []byte) {
		_, a, dst := newBenchPair(b)
		recvMR, err := dst.AllocateMemRegion(StaticSlotSize(benchPipeSize))
		if err != nil {
			b.Fatal(err)
		}
		recv, err := NewStaticReceiver(recvMR, 0, benchPipeSize)
		if err != nil {
			b.Fatal(err)
		}
		sendMR, err := a.AllocateMemRegion(StaticSlotSize(benchPipeSize))
		if err != nil {
			b.Fatal(err)
		}
		chans := make([]*Channel, lanes)
		for i := range chans {
			if chans[i], err = a.GetChannel("hostB:1", i); err != nil {
				b.Fatal(err)
			}
		}
		sender, err := NewStaticSender(chans[0], sendMR, 0, recv.Desc())
		if err != nil {
			b.Fatal(err)
		}
		for _, ch := range chans[1:] {
			if err := sender.AddLane(ch); err != nil {
				b.Fatal(err)
			}
		}
		payload := make([]byte, benchPipeSize)
		for i := range payload {
			payload[i] = byte(i)
		}
		return sender, recv, payload
	}
	opts := TransferOpts{Deadline: 30 * time.Second, Stripes: stripes}
	b.Run("staged", func(b *testing.B) {
		sender, recv, payload := setup(b)
		b.SetBytes(benchPipeSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(sender.Buffer(), payload)
			if err := sender.SendRetry(opts); err != nil {
				b.Fatal(err)
			}
			if err := recv.Wait(opts); err != nil {
				b.Fatal(err)
			}
			recv.Consume()
		}
	})
	b.Run("pipelined", func(b *testing.B) {
		sender, recv, payload := setup(b)
		b.SetBytes(benchPipeSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := sender.SendRetryFrom(payload, opts); err != nil {
				b.Fatal(err)
			}
			if err := recv.Wait(opts); err != nil {
				b.Fatal(err)
			}
			recv.Consume()
		}
	})
}

// BenchmarkTransferCoalesce compares 64 small tensors sent as 64 individual
// flagged slot writes against the same 64 staged into one coalesced batch
// flush. Under the per-WR post cost the individual path pays the fixed
// latency 64 times per round; the batch pays it once.
func BenchmarkTransferCoalesce(b *testing.B) {
	b.Run("individual", func(b *testing.B) {
		_, a, dst := newBenchPair(b)
		recvMR, err := dst.AllocateMemRegion(StaticSlotSize(benchMsgSize))
		if err != nil {
			b.Fatal(err)
		}
		recv, err := NewStaticReceiver(recvMR, 0, benchMsgSize)
		if err != nil {
			b.Fatal(err)
		}
		sendMR, err := a.AllocateMemRegion(StaticSlotSize(benchMsgSize))
		if err != nil {
			b.Fatal(err)
		}
		ch, err := a.GetChannel("hostB:1", 0)
		if err != nil {
			b.Fatal(err)
		}
		sender, err := NewStaticSender(ch, sendMR, 0, recv.Desc())
		if err != nil {
			b.Fatal(err)
		}
		opts := TransferOpts{Deadline: 30 * time.Second}
		b.SetBytes(benchMsgCount * benchMsgSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for m := 0; m < benchMsgCount; m++ {
				if err := sender.SendRetry(opts); err != nil {
					b.Fatal(err)
				}
				if err := recv.Wait(opts); err != nil {
					b.Fatal(err)
				}
				recv.Consume()
			}
		}
	})
	b.Run("coalesced", func(b *testing.B) {
		_, a, dst := newBenchPair(b)
		capacity := wire.BatchHeaderSize + benchMsgCount*wire.SubMsgSize(benchMsgSize)
		recvMR, err := dst.AllocateMemRegion(StaticSlotSize(capacity))
		if err != nil {
			b.Fatal(err)
		}
		chBA, err := dst.GetChannel("hostA:1", 0)
		if err != nil {
			b.Fatal(err)
		}
		recv, err := NewCoalescedReceiver(chBA, recvMR, 0, capacity)
		if err != nil {
			b.Fatal(err)
		}
		sendMR, err := a.AllocateMemRegion(StaticSlotSize(capacity) + FlagWordSize)
		if err != nil {
			b.Fatal(err)
		}
		chAB, err := a.GetChannel("hostB:1", 0)
		if err != nil {
			b.Fatal(err)
		}
		sender, err := NewCoalescedSender(chAB, sendMR, 0, recv.Desc())
		if err != nil {
			b.Fatal(err)
		}
		payload := make([]byte, benchMsgSize)
		opts := TransferOpts{Deadline: 30 * time.Second}
		b.SetBytes(benchMsgCount * benchMsgSize)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sender.Reset()
			for m := 0; m < benchMsgCount; m++ {
				if err := sender.Stage(uint32(m), payload); err != nil {
					b.Fatal(err)
				}
			}
			if err := sender.FlushRetry(opts); err != nil {
				b.Fatal(err)
			}
			for !recv.Poll() {
			}
			msgs, err := recv.Messages()
			if err != nil || len(msgs) != benchMsgCount {
				b.Fatalf("batch decode: %v (%d msgs)", err, len(msgs))
			}
			recv.Consume()
			if err := recv.AckRetry(sender.AckDesc(), opts); err != nil {
				b.Fatal(err)
			}
			for !sender.PollReusable() {
			}
		}
	})
}
