package rdma

import (
	"bytes"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/wire"
)

// coalescedPair builds a sender/receiver pair over a fresh fabric with the
// given batch capacity.
func coalescedPair(t *testing.T, capacity int) (*Fabric, *CoalescedSender, *CoalescedReceiver) {
	t.Helper()
	f, a, b := newPair(t)
	recvMR, err := b.AllocateMemRegion(StaticSlotSize(capacity))
	if err != nil {
		t.Fatal(err)
	}
	recv, err := NewCoalescedReceiver(chanTo(t, b, "hostA:1"), recvMR, 0, capacity)
	if err != nil {
		t.Fatal(err)
	}
	sendMR, err := a.AllocateMemRegion(StaticSlotSize(capacity) + FlagWordSize)
	if err != nil {
		t.Fatal(err)
	}
	sender, err := NewCoalescedSender(chanTo(t, a, "hostB:1"), sendMR, 0, recv.Desc())
	if err != nil {
		t.Fatal(err)
	}
	return f, sender, recv
}

func TestCoalescedBatchEndToEnd(t *testing.T) {
	const capacity = 512
	_, sender, recv := coalescedPair(t, capacity)
	opts := TransferOpts{Deadline: 10 * time.Second}

	for round := 0; round < 5; round++ {
		payloads := map[uint32][]byte{
			0: bytes.Repeat([]byte{byte(round)}, 24),
			1: {byte(round), 0xBE, 0xEF},
			2: bytes.Repeat([]byte{0xC0 ^ byte(round)}, 96),
		}
		sender.Reset()
		for id := uint32(0); id < 3; id++ {
			if err := sender.Stage(id, payloads[id]); err != nil {
				t.Fatalf("round %d: stage %d: %v", round, id, err)
			}
		}
		if sender.Count() != 3 {
			t.Fatalf("round %d: staged %d", round, sender.Count())
		}
		if err := sender.FlushRetry(opts); err != nil {
			t.Fatalf("round %d: flush: %v", round, err)
		}
		waitFor(t, "batch flag", recv.Poll)
		msgs, err := recv.Messages()
		if err != nil {
			t.Fatalf("round %d: decode: %v", round, err)
		}
		if len(msgs) != 3 {
			t.Fatalf("round %d: %d messages", round, len(msgs))
		}
		for _, m := range msgs {
			if !bytes.Equal(m.Payload, payloads[m.ID]) {
				t.Fatalf("round %d: message %d payload mismatch", round, m.ID)
			}
		}
		recv.Consume()
		if err := recv.AckRetry(sender.AckDesc(), opts); err != nil {
			t.Fatalf("round %d: ack: %v", round, err)
		}
		waitFor(t, "sender reusable", sender.PollReusable)
	}
}

// TestCoalescedFlushGatesOnAck: a second flush before the receiver acked
// must not transmit — it times out typed with ErrBusy as the cause — and
// the receiver's slot must keep the first batch intact throughout.
func TestCoalescedFlushGatesOnAck(t *testing.T) {
	_, sender, recv := coalescedPair(t, 256)
	opts := TransferOpts{Deadline: 5 * time.Second}
	if err := sender.Stage(1, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := sender.FlushRetry(opts); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first batch", recv.Poll)

	sender.Reset()
	if err := sender.Stage(2, []byte("second")); err != nil {
		t.Fatal(err)
	}
	short := TransferOpts{Deadline: 100 * time.Millisecond, MaxRetries: 8}
	err := sender.FlushRetry(short)
	if !errors.Is(err, ErrTimeout) || !errors.Is(err, ErrBusy) {
		t.Fatalf("unacked flush: %v, want ErrTimeout wrapping ErrBusy", err)
	}
	msgs, err := recv.Messages()
	if err != nil || len(msgs) != 1 || msgs[0].ID != 1 || string(msgs[0].Payload) != "first" {
		t.Fatalf("slot disturbed by gated flush: %v %+v", err, msgs)
	}
	recv.Consume()
	if err := recv.AckRetry(sender.AckDesc(), opts); err != nil {
		t.Fatal(err)
	}
	// With the ack delivered the pending batch goes through.
	if err := sender.FlushRetry(opts); err != nil {
		t.Fatalf("post-ack flush: %v", err)
	}
	waitFor(t, "second batch", recv.Poll)
	msgs, err = recv.Messages()
	if err != nil || len(msgs) != 1 || msgs[0].ID != 2 {
		t.Fatalf("second batch: %v %+v", err, msgs)
	}
}

func TestCoalescedStageOverflow(t *testing.T) {
	capacity := wire.BatchHeaderSize + wire.SubMsgSize(16)
	_, sender, _ := coalescedPair(t, capacity)
	if err := sender.Stage(1, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if err := sender.Stage(2, []byte{1}); !errors.Is(err, wire.ErrBatchSpace) {
		t.Fatalf("overflow stage: %v, want wire.ErrBatchSpace", err)
	}
}

// TestCoalescedFlushSurvivesDrops: deterministic transfer drops force flush
// retries; every batch still arrives intact and in order, and the flag is
// never visible over a partial batch (the flush is one ascending write).
func TestCoalescedFlushSurvivesDrops(t *testing.T) {
	f, sender, recv := coalescedPair(t, 256)
	var transfers atomic.Uint64
	f.SetHooks(Hooks{
		TransferFault: func(op Op, size int) error {
			if transfers.Add(1)%3 == 0 {
				return ErrInjected
			}
			return nil
		},
	})
	defer f.SetHooks(Hooks{})

	opts := TransferOpts{Deadline: 10 * time.Second}
	for round := 0; round < 20; round++ {
		sender.Reset()
		want := bytes.Repeat([]byte{byte(round + 1)}, 100)
		if err := sender.Stage(uint32(round), want); err != nil {
			t.Fatal(err)
		}
		if err := sender.FlushRetry(opts); err != nil {
			t.Fatalf("round %d: flush: %v", round, err)
		}
		waitFor(t, "batch under drops", recv.Poll)
		msgs, err := recv.Messages()
		if err != nil || len(msgs) != 1 || msgs[0].ID != uint32(round) || !bytes.Equal(msgs[0].Payload, want) {
			t.Fatalf("round %d: %v %+v", round, err, msgs)
		}
		recv.Consume()
		if err := recv.AckRetry(sender.AckDesc(), opts); err != nil {
			t.Fatalf("round %d: ack: %v", round, err)
		}
	}
}

func TestCoalescedSlotDescRoundTrip(t *testing.T) {
	d := CoalescedSlotDesc{
		Region: RemoteRegion{Endpoint: "hostB:1", RegionID: 7, Size: 4096},
		Off:    64, Capacity: 512,
	}
	got, err := UnmarshalCoalescedSlotDesc(d.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != d {
		t.Fatalf("round trip %+v -> %+v", d, got)
	}
	if _, err := UnmarshalCoalescedSlotDesc([]byte{1, 2}); err == nil {
		t.Fatal("short descriptor accepted")
	}
}
