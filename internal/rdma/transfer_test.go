package rdma

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestStaticTransferEndToEnd(t *testing.T) {
	_, a, b := newPair(t)
	const payload = 100

	recvMR, _ := b.AllocateMemRegion(StaticSlotSize(payload))
	recv, err := NewStaticReceiver(recvMR, 0, payload)
	if err != nil {
		t.Fatal(err)
	}
	if recv.Poll() {
		t.Fatal("fresh slot must not poll ready")
	}

	sendMR, _ := a.AllocateMemRegion(StaticSlotSize(payload))
	ch, _ := a.GetChannel("hostB:1", 0)
	send, err := NewStaticSender(ch, sendMR, 0, recv.Desc())
	if err != nil {
		t.Fatal(err)
	}

	for iter := 0; iter < 5; iter++ {
		buf := send.Buffer()
		for i := range buf {
			buf[i] = byte(iter + i)
		}
		done := make(chan error, 1)
		if err := send.Send(func(err error) { done <- err }); err != nil {
			t.Fatal(err)
		}
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		waitFor(t, "flag", recv.Poll)
		got := recv.Payload()
		for i := range got {
			if got[i] != byte(iter+i) {
				t.Fatalf("iter %d byte %d = %d, want %d", iter, i, got[i], byte(iter+i))
			}
		}
		recv.Consume()
		if recv.Poll() {
			t.Fatal("flag should be cleared after Consume")
		}
	}
}

func TestStaticTransferConcurrentPolling(t *testing.T) {
	// The receiver polls on its own goroutine while the sender streams
	// iterations; exercises the acquire/release pairing under the race
	// detector.
	_, a, b := newPair(t)
	const payload = 4096
	const iters = 50

	recvMR, _ := b.AllocateMemRegion(StaticSlotSize(payload))
	recv, _ := NewStaticReceiver(recvMR, 0, payload)
	sendMR, _ := a.AllocateMemRegion(StaticSlotSize(payload))
	ch, _ := a.GetChannel("hostB:1", 1)
	send, _ := NewStaticSender(ch, sendMR, 0, recv.Desc())

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for iter := 0; iter < iters; iter++ {
			deadline := time.Now().Add(5 * time.Second)
			for !recv.Poll() {
				if time.Now().After(deadline) {
					t.Error("receiver timed out")
					return
				}
			}
			v := byte(iter)
			for i, got := range recv.Payload() {
				if got != v {
					t.Errorf("iter %d byte %d = %d, want %d", iter, i, got, v)
					return
				}
			}
			recv.Consume()
		}
	}()
	for iter := 0; iter < iters; iter++ {
		buf := send.Buffer()
		for i := range buf {
			buf[i] = byte(iter)
		}
		done := make(chan error, 1)
		if err := send.Send(func(err error) { done <- err }); err != nil {
			t.Fatal(err)
		}
		if err := <-done; err != nil {
			t.Fatal(err)
		}
		// Mimic the graph's loop control dependency: the next send only
		// happens after the receiver consumed (poll the remote flag via
		// reading our own copy is impossible, so give the receiver time by
		// waiting for it to clear — emulated with a fresh send each round
		// only after a short handshake through a second slot would be
		// overkill for this test; instead wait until receiver consumed).
		waitFor(t, "consume", func() bool { return !recvMR.PollFlag(alignUp(payload)) })
	}
	wg.Wait()
}

func TestStaticSenderSendFrom(t *testing.T) {
	// The RDMA.cp path: payload originates outside registered memory.
	_, a, b := newPair(t)
	const payload = 64
	recvMR, _ := b.AllocateMemRegion(StaticSlotSize(payload))
	recv, _ := NewStaticReceiver(recvMR, 0, payload)
	sendMR, _ := a.AllocateMemRegion(StaticSlotSize(payload))
	ch, _ := a.GetChannel("hostB:1", 0)
	send, _ := NewStaticSender(ch, sendMR, 0, recv.Desc())

	ext := make([]byte, payload)
	for i := range ext {
		ext[i] = 0x5A
	}
	done := make(chan error, 1)
	if err := send.SendFrom(ext, func(err error) { done <- err }); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	waitFor(t, "flag", recv.Poll)
	for i, v := range recv.Payload() {
		if v != 0x5A {
			t.Fatalf("byte %d = %d", i, v)
		}
	}
	if err := send.SendFrom(make([]byte, 3), nil); !errors.Is(err, ErrBounds) {
		t.Errorf("wrong-size payload: %v", err)
	}
}

func TestStaticSetupValidation(t *testing.T) {
	_, a, b := newPair(t)
	mr, _ := b.AllocateMemRegion(64)
	if _, err := NewStaticReceiver(mr, 4, 8); !errors.Is(err, ErrBadConfig) {
		t.Errorf("unaligned receiver offset: %v", err)
	}
	if _, err := NewStaticReceiver(mr, 0, 1024); !errors.Is(err, ErrBounds) {
		t.Errorf("oversized receiver: %v", err)
	}
	recv, _ := NewStaticReceiver(mr, 0, 8)
	smr, _ := a.AllocateMemRegion(64)
	ch, _ := a.GetChannel("hostB:1", 0)
	if _, err := NewStaticSender(ch, smr, 4, recv.Desc()); !errors.Is(err, ErrBadConfig) {
		t.Errorf("unaligned sender offset: %v", err)
	}
	bad := recv.Desc()
	bad.Region.Endpoint = "elsewhere:1"
	if _, err := NewStaticSender(ch, smr, 0, bad); !errors.Is(err, ErrBadConfig) {
		t.Errorf("endpoint mismatch: %v", err)
	}
}

func TestDynamicTransferEndToEnd(t *testing.T) {
	_, a, b := newPair(t)

	metaMR, _ := b.AllocateMemRegion(DynMetaSize)
	chBA, _ := b.GetChannel("hostA:1", 0)
	recv, err := NewDynReceiver(chBA, metaMR, 0)
	if err != nil {
		t.Fatal(err)
	}

	scratchMR, _ := a.AllocateMemRegion(DynMetaSize)
	chAB, _ := a.GetChannel("hostB:1", 0)
	send, err := NewDynSender(chAB, scratchMR, 0, recv.Desc())
	if err != nil {
		t.Fatal(err)
	}

	payloadMR, _ := a.AllocateMemRegion(1 << 16)
	dstMR, _ := b.AllocateMemRegion(1 << 16)

	// Varying sizes across iterations, the defining property of the
	// dynamic path.
	sizes := []int{1024, 64, 8192, 16, 40000}
	for iter, size := range sizes {
		if !send.PollReusable() {
			t.Fatalf("iter %d: sender should be reusable", iter)
		}
		pay := payloadMR.Bytes()[:size]
		for i := range pay {
			pay[i] = byte(iter ^ i)
		}
		dims := []uint64{uint64(size / 8), 8}
		done := make(chan error, 1)
		if err := send.Send(payloadMR, 0, size, 1, dims, func(err error) { done <- err }); err != nil {
			t.Fatal(err)
		}
		if err := <-done; err != nil {
			t.Fatal(err)
		}

		var meta DynMeta
		waitFor(t, "metadata flag", func() bool {
			m, ok := recv.Poll()
			if ok {
				meta = m
			}
			return ok
		})
		if meta.DType != 1 || meta.PayloadSize != uint64(size) {
			t.Fatalf("iter %d meta = %+v", iter, meta)
		}
		if len(meta.Dims) != 2 || meta.Dims[0] != uint64(size/8) || meta.Dims[1] != 8 {
			t.Fatalf("iter %d dims = %v", iter, meta.Dims)
		}
		fetched := make(chan error, 1)
		if err := recv.Fetch(meta, send.ScratchDesc(), dstMR, 0, func(err error) { fetched <- err }); err != nil {
			t.Fatal(err)
		}
		if err := <-fetched; err != nil {
			t.Fatal(err)
		}
		got := dstMR.Bytes()[:size]
		for i := range got {
			if got[i] != byte(iter^i) {
				t.Fatalf("iter %d byte %d = %d", iter, i, got[i])
			}
		}
		// Sender becomes reusable once the ack lands.
		waitFor(t, "ack", send.PollReusable)
	}
}

func TestDynamicSenderBusy(t *testing.T) {
	_, a, b := newPair(t)
	metaMR, _ := b.AllocateMemRegion(DynMetaSize)
	chBA, _ := b.GetChannel("hostA:1", 0)
	recv, _ := NewDynReceiver(chBA, metaMR, 0)
	scratchMR, _ := a.AllocateMemRegion(DynMetaSize)
	chAB, _ := a.GetChannel("hostB:1", 0)
	send, _ := NewDynSender(chAB, scratchMR, 0, recv.Desc())
	payloadMR, _ := a.AllocateMemRegion(128)

	done := make(chan error, 1)
	if err := send.Send(payloadMR, 0, 128, 1, []uint64{128}, func(err error) { done <- err }); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Second send before the receiver acked: busy.
	if err := send.Send(payloadMR, 0, 128, 1, []uint64{128}, nil); !errors.Is(err, ErrBusy) {
		t.Errorf("expected ErrBusy, got %v", err)
	}
}

func TestDynamicValidation(t *testing.T) {
	_, a, b := newPair(t)
	metaMR, _ := b.AllocateMemRegion(DynMetaSize)
	chBA, _ := b.GetChannel("hostA:1", 0)
	if _, err := NewDynReceiver(chBA, metaMR, 4); !errors.Is(err, ErrBadConfig) {
		t.Errorf("unaligned meta: %v", err)
	}
	recv, _ := NewDynReceiver(chBA, metaMR, 0)
	scratchMR, _ := a.AllocateMemRegion(DynMetaSize)
	chAB, _ := a.GetChannel("hostB:1", 0)
	send, _ := NewDynSender(chAB, scratchMR, 0, recv.Desc())
	payloadMR, _ := a.AllocateMemRegion(64)
	if err := send.Send(payloadMR, 0, 64, 1, make([]uint64, MaxDims+1), nil); !errors.Is(err, ErrBadConfig) {
		t.Errorf("too many dims: %v", err)
	}
	if err := send.Send(payloadMR, 32, 64, 1, []uint64{64}, nil); !errors.Is(err, ErrBounds) {
		t.Errorf("payload oob: %v", err)
	}
	bad := recv.Desc()
	bad.Region.Endpoint = "other:1"
	if _, err := NewDynSender(chAB, scratchMR, 0, bad); !errors.Is(err, ErrBadConfig) {
		t.Errorf("endpoint mismatch: %v", err)
	}
}

func TestSlotDescMarshalRoundtrip(t *testing.T) {
	s := StaticSlotDesc{Region: RemoteRegion{Endpoint: "h:2", RegionID: 3, Size: 128}, Off: 40, PayloadSize: 80}
	got, err := UnmarshalStaticSlotDesc(s.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Errorf("static roundtrip: %+v != %+v", got, s)
	}
	d := DynSlotDesc{Region: RemoteRegion{Endpoint: "h:9", RegionID: 12, Size: 4096}, Off: 512}
	gd, err := UnmarshalDynSlotDesc(d.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if gd != d {
		t.Errorf("dyn roundtrip: %+v != %+v", gd, d)
	}
	if _, err := UnmarshalStaticSlotDesc(nil); err == nil {
		t.Error("nil static desc accepted")
	}
	if _, err := UnmarshalDynSlotDesc([]byte{1, 2}); err == nil {
		t.Error("short dyn desc accepted")
	}
}

// Descriptor decoders must be total on arbitrary input: decode or error,
// never panic (they parse bytes received from peers).
func TestDescriptorDecodersRobust(t *testing.T) {
	check := func(data []byte) bool {
		_, err1 := UnmarshalRemoteRegion(data)
		_, err2 := UnmarshalStaticSlotDesc(data)
		_, err3 := UnmarshalDynSlotDesc(data)
		_ = err1
		_ = err2
		_ = err3
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
