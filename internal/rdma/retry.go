package rdma

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Deadline/retry hardening for the transfer protocols. The paper assumes a
// lossless fabric; production deployments do not get one. Every blocking
// operation in this file is bounded by a deadline and retries transient
// failures with exponential backoff, so a misbehaving peer yields a typed
// error instead of a hung scheduler.

// ErrTimeout is returned when a bounded transfer operation exhausts its
// deadline or retry budget. It always wraps the last underlying error, so
// errors.Is can still see e.g. ErrUnreachable through it.
var ErrTimeout = errors.New("rdma: transfer deadline exceeded")

// ErrCanceled is returned when TransferOpts.Canceled reports the caller no
// longer wants the transfer. Like ErrTimeout it is fatal: a canceled
// operation must never be retried, because the memory it would write into
// may already be reused by whoever aborted it.
var ErrCanceled = errors.New("rdma: transfer canceled")

// Retryable classifies an error as transient (worth retrying: the fault may
// heal) versus fatal (misconfiguration, closed device, or out-of-bounds
// access that no retry can fix). ErrTimeout itself is fatal: it means a
// retry budget was already spent. ErrQPBusy (mux lease exhaustion) is
// transient too, but retryLoop handles it on its own backoff curve — slot
// contention is expected at scale and must not burn the fault budget.
func Retryable(err error) bool {
	if err == nil || errors.Is(err, ErrTimeout) {
		return false
	}
	return errors.Is(err, ErrUnreachable) ||
		errors.Is(err, ErrInjected) ||
		errors.Is(err, ErrBusy) ||
		errors.Is(err, ErrQPBusy) ||
		errors.Is(err, ErrRPCTimeout)
}

// Defaults for TransferOpts zero values.
const (
	DefaultDeadline     = 10 * time.Second
	DefaultMaxRetries   = 64
	DefaultBackoff      = 50 * time.Microsecond
	DefaultMaxBackoff   = 10 * time.Millisecond
	DefaultPollInterval = 5 * time.Microsecond
)

// TransferOpts bounds a blocking transfer operation: a total deadline, a
// retry budget for transient failures, and the backoff curve between
// attempts. The zero value selects the defaults above.
type TransferOpts struct {
	// Deadline is the total wall-clock budget for the operation, including
	// all retries and backoff waits.
	Deadline time.Duration
	// MaxRetries caps how many times a transient failure is retried.
	MaxRetries int
	// Backoff is the wait before the first retry; it doubles each retry.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth.
	MaxBackoff time.Duration
	// PollInterval is the sleep between flag polls once spinning stops.
	PollInterval time.Duration
	// OnRetry, if non-nil, is invoked with the transient error before each
	// retry (for counters).
	OnRetry func(err error)
	// Stripes splits large payloads across up to this many channels of the
	// per-peer QP group (clamped to [1, MaxStripes]); 0 or 1 keeps the
	// single-lane protocol. Striping only takes effect on senders/receivers
	// that registered extra lanes with AddLane.
	Stripes int
	// CoalesceThreshold batches transfers smaller than this many bytes to
	// the same peer into one coalesced slot (see CoalescedSender); 0
	// disables coalescing. The rdma layer only carries the knob — grouping
	// happens in the distributed edge setup.
	CoalesceThreshold int
	// OnStripe, if non-nil, observes every issued stripe as (lane index,
	// bytes on the wire) — the per-lane byte accounting hook.
	OnStripe func(lane, bytes int)
	// OnDoorbell, if non-nil, observes each doorbell-batched post as (lane
	// index, chunks in the flush): a lane's stripe chunks entering the send
	// queue together instead of one post per chunk.
	OnDoorbell func(lane, chunks int)
	// OnComplete, if non-nil, observes each successful blocking transfer
	// (SendRetry / FetchRetry / FlushRetry) as (payload bytes, wall duration
	// including retries and backoff). The distributed layer feeds per-edge
	// transfer-latency histograms from it.
	OnComplete func(bytes int, d time.Duration)
	// OnRetransmit, if non-nil, observes each NACK the lossy protocol serves
	// with the number of chunks selectively re-sent (see LossySender). It
	// never fires for whole-transfer retries — those go through OnRetry.
	OnRetransmit func(chunks int)
	// Canceled, if non-nil, is polled between retry attempts and backoff
	// waits; once it returns true the operation fails fast with ErrCanceled
	// instead of retrying. Executors wire it to their iteration's abort
	// flag so a transfer outliving a failed step cannot keep re-sending —
	// a retry that lands after the fabric heals would write into memory a
	// later iteration already owns.
	Canceled func() bool
}

// observeComplete fires opts.OnComplete on a successful transfer.
func observeComplete(o TransferOpts, bytes int, start time.Time, err error) error {
	if err == nil && o.OnComplete != nil {
		o.OnComplete(bytes, time.Since(start))
	}
	return err
}

func (o TransferOpts) withDefaults() TransferOpts {
	if o.Deadline <= 0 {
		o.Deadline = DefaultDeadline
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = DefaultMaxRetries
	}
	if o.Backoff <= 0 {
		o.Backoff = DefaultBackoff
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = DefaultMaxBackoff
	}
	if o.PollInterval <= 0 {
		o.PollInterval = DefaultPollInterval
	}
	if o.Stripes <= 0 {
		o.Stripes = 1
	}
	if o.Stripes > MaxStripes {
		o.Stripes = MaxStripes
	}
	return o
}

// retryLoop runs attempt until it succeeds, fails fatally, is canceled, or
// the deadline or retry budget is exhausted (typed ErrTimeout wrapping the
// last error). Cancellation is checked before every attempt — including the
// first — so an already-aborted caller never posts a write at all.
func retryLoop(opts TransferOpts, what string, attempt func() error) error {
	o := opts.withDefaults()
	deadline := time.Now().Add(o.Deadline)
	backoff := o.Backoff
	busyBackoff := o.Backoff
	for tries := 0; ; {
		if o.Canceled != nil && o.Canceled() {
			return fmt.Errorf("rdma: %s: %w after %d attempts", what, ErrCanceled, tries)
		}
		err := attempt()
		if err == nil {
			return nil
		}
		if !Retryable(err) {
			return err
		}
		if errors.Is(err, ErrQPBusy) {
			// Mux-slot contention: every QP slot is pinned by another live
			// attempt. That is scheduling pressure, not a fabric fault, so
			// it waits on its own backoff curve bounded by the deadline
			// alone — at 64 tasks a stretch of busy slots must not eat the
			// MaxRetries budget a real drop needs later.
			if !time.Now().Add(busyBackoff).Before(deadline) {
				return fmt.Errorf("rdma: %s: qp slots busy past deadline: %w (last: %w)",
					what, ErrTimeout, err)
			}
			if o.OnRetry != nil {
				o.OnRetry(err)
			}
			sleep(busyBackoff)
			busyBackoff *= 2
			if busyBackoff > o.MaxBackoff {
				busyBackoff = o.MaxBackoff
			}
			continue
		}
		if tries >= o.MaxRetries || !time.Now().Add(backoff).Before(deadline) {
			return fmt.Errorf("rdma: %s: gave up after %d attempts: %w (last: %w)",
				what, tries+1, ErrTimeout, err)
		}
		tries++
		if o.Canceled != nil && o.Canceled() {
			return fmt.Errorf("rdma: %s: %w after %d attempts (last: %w)",
				what, ErrCanceled, tries, err)
		}
		if o.OnRetry != nil {
			o.OnRetry(err)
		}
		sleep(backoff)
		backoff *= 2
		if backoff > o.MaxBackoff {
			backoff = o.MaxBackoff
		}
	}
}

// waitCond polls cond until it reports true, the caller cancels, or the
// deadline expires. It spins briefly, then backs off to PollInterval sleeps
// so a long wait does not burn a core.
func waitCond(opts TransferOpts, what string, cond func() bool) error {
	o := opts.withDefaults()
	deadline := time.Now().Add(o.Deadline)
	for spins := 0; !cond(); spins++ {
		if spins > 256 {
			if o.Canceled != nil && o.Canceled() {
				return fmt.Errorf("rdma: %s: %w", what, ErrCanceled)
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("rdma: %s: no progress after %v: %w", what, o.Deadline, ErrTimeout)
			}
			sleep(o.PollInterval)
		} else {
			runtime.Gosched()
		}
	}
	return nil
}

// memcpyAttempt is one blocking Memcpy, tolerant of duplicated completions.
func (c *Channel) memcpyAttempt(localOff int, local *MemRegion, remoteOff int, remote RemoteRegion,
	size int, dir Op) error {
	done := make(chan error, 1)
	if err := c.Memcpy(localOff, local, remoteOff, remote, size, dir, func(err error) {
		select {
		case done <- err:
		default:
		}
	}); err != nil {
		return err
	}
	return <-done
}

// MemcpyRetry is a blocking Memcpy with bounded retry: transient failures
// (drops, transient unreachability) are retried with exponential backoff
// until the opts deadline. Safe only for idempotent transfers — both the
// protocols in this package re-send identical bytes.
func (c *Channel) MemcpyRetry(localOff int, local *MemRegion, remoteOff int, remote RemoteRegion,
	size int, dir Op, opts TransferOpts) error {
	return retryLoop(opts, fmt.Sprintf("%s %dB to %s", dir, size, c.remote), func() error {
		return c.memcpyAttempt(localOff, local, remoteOff, remote, size, dir)
	})
}

// CallRetry is Call with bounded retry: RPC timeouts and transient send
// failures are retried until the opts deadline. The per-attempt timeout is
// derived from the deadline and the retry budget. Handlers must be
// idempotent (address distribution is).
func (c *Channel) CallRetry(method string, req []byte, opts TransferOpts) ([]byte, error) {
	o := opts.withDefaults()
	perCall := o.Deadline / 4
	if perCall <= 0 {
		perCall = o.Deadline
	}
	var resp []byte
	err := retryLoop(o, fmt.Sprintf("rpc %q to %s", method, c.remote), func() error {
		var err error
		resp, err = c.Call(method, req, perCall)
		return err
	})
	return resp, err
}

// --- Static placement ---

// SendRetry transfers the staging buffer like Send, but blocks until the
// write completed, retrying transient failures within the opts budget; with
// opts.Stripes > 1 and registered lanes the payload goes out striped (see
// SendStriped). The retry is safe either way: a failed attempt never made
// the flag visible (single-lane faults strike before memory writes; a
// striped attempt only writes the flag after every stripe completed), and a
// re-send writes the same bytes.
func (s *StaticSender) SendRetry(opts TransferOpts) error {
	return s.sendRetryFrom(nil, opts)
}

// SendRetryFrom is SendRetry for a payload that lives outside registered
// memory: instead of staging all the bytes up front (SendFrom) and only then
// posting the first write, each attempt copies the payload into staging lane
// by lane, flushing every lane's chunks as soon as they are staged — so lane
// L's writes fly while lane L+1's bytes are still being copied (sender-side
// copy/transmit pipelining). A retry re-copies the same bytes, which is
// safe: the completion callback fires only after every chunk of the attempt
// completed, so no attempt's copy can overlap its own in-flight writes, and
// a failed attempt never made the flag visible.
func (s *StaticSender) SendRetryFrom(payload []byte, opts TransferOpts) error {
	if len(payload) != s.desc.PayloadSize {
		return fmt.Errorf("rdma: payload %d bytes, slot holds %d: %w",
			len(payload), s.desc.PayloadSize, ErrBounds)
	}
	return s.sendRetryFrom(payload, opts)
}

func (s *StaticSender) sendRetryFrom(payload []byte, opts TransferOpts) error {
	o := opts.withDefaults()
	start := time.Now()
	err := retryLoop(o, fmt.Sprintf("static send %dB to %s", s.desc.PayloadSize, s.ch.Remote()),
		func() error {
			// Lanes are acquired per attempt: with a LaneSource (mux mode)
			// the slot is pinned only while this attempt's writes are in
			// flight and released once its completions drained, so an idle
			// or backing-off edge holds no QP slot.
			lanes, release, err := s.acquireLanes()
			if err != nil {
				return err
			}
			done := make(chan error, 1)
			if err := s.sendStripedOn(lanes, payload, o.Stripes, o.OnStripe, o.OnDoorbell,
				func(err error) {
					select {
					case done <- err:
					default:
					}
				}); err != nil {
				release()
				return err
			}
			err = <-done
			release()
			return err
		})
	return observeComplete(o, s.desc.PayloadSize, start, err)
}

// Wait blocks until a complete tensor has arrived (Poll returns true) or
// the opts deadline expires. A receiver cannot distinguish a slow sender
// from a partitioned one, so the failure is a typed ErrTimeout; callers
// with fabric knowledge may refine it.
func (r *StaticReceiver) Wait(opts TransferOpts) error {
	return waitCond(opts, "static recv flag", r.Poll)
}

// --- Dynamic allocation ---

// SendRetry stages and sends the metadata like Send, but blocks until the
// write completed, treating both ErrBusy (previous transfer not yet acked)
// and transient transfer failures as retryable within the opts budget.
func (s *DynSender) SendRetry(payloadMR *MemRegion, payloadOff, payloadSize int,
	dtype uint32, dims []uint64, opts TransferOpts) error {
	start := time.Now()
	err := retryLoop(opts, fmt.Sprintf("dyn send %dB to %s", payloadSize, s.ch.Remote()),
		func() error {
			ch, release, lerr := laneFor(s.source, s.ch.Remote(), s.ch)
			if lerr != nil {
				return lerr
			}
			defer release()
			done := make(chan error, 1)
			if err := s.sendOn(ch, payloadMR, payloadOff, payloadSize, dtype, dims, func(err error) {
				select {
				case done <- err:
				default:
				}
			}); err != nil {
				return err
			}
			err := <-done
			if err != nil {
				// The failed write never touched the receiver (faults strike
				// before memory writes), so no ack will ever arrive for it:
				// re-arm the ack flag Send cleared, or every subsequent
				// attempt would see ErrBusy forever.
				s.mr.SetFlagLocal(s.off + dynMetaAckOff)
			}
			return err
		})
	return observeComplete(opts, payloadSize, start, err)
}

// WaitMeta blocks until the metadata flag is set and returns the decoded
// metadata, or fails with a typed ErrTimeout at the opts deadline.
func (r *DynReceiver) WaitMeta(opts TransferOpts) (DynMeta, error) {
	var meta DynMeta
	err := waitCond(opts, "dyn metadata flag", func() bool {
		m, ok := r.Poll()
		if ok {
			meta = m
		}
		return ok
	})
	return meta, err
}

// FetchRetry is Fetch with bounded retry: the payload read and the reuse
// ack are each retried within the opts budget, and the call blocks until
// the ack write completed (unlike Fetch, which fires it and forgets).
// With opts.Stripes > 1 and registered lanes, the payload read is split
// into chunks pulled concurrently over distinct channels; the ack — the
// dyn protocol's analogue of the tail flag — is only posted after every
// stripe's read completed, so the sender can never observe "reusable"
// while part of the payload is still in flight.
// All pieces are idempotent: re-reading pulls the same payload (the sender
// cannot reuse the source buffer before the ack), and the ack is a
// constant one-word write.
func (r *DynReceiver) FetchRetry(meta DynMeta, senderScratch DynSlotDesc,
	dst *MemRegion, dstOff int, opts TransferOpts) error {
	o := opts.withDefaults()
	start := time.Now()
	r.mr.ClearFlag(r.off + dynMetaFlagOff)
	size := int(meta.PayloadSize)
	// With a LaneSource the lease spans the whole fetch (reads + ack): the
	// per-chunk MemcpyRetry loops below already recover chunk-granular, and
	// re-leasing between chunks of one tensor would only churn the pool.
	lanes := r.lanes
	release := func() {}
	if r.source != nil {
		var err error
		lanes, release, err = r.source.AcquireLanes(r.sender)
		if err != nil {
			return fmt.Errorf("rdma: dyn fetch lanes: %w", err)
		}
	}
	defer release()
	chunks := StripeDesc{PayloadSize: meta.PayloadSize, Stripes: uint32(o.Stripes)}.Chunks()
	if len(chunks) <= 1 || len(lanes) <= 1 {
		if o.OnStripe != nil && size > 0 {
			o.OnStripe(0, size)
		}
		if err := lanes[0].MemcpyRetry(dstOff, dst, int(meta.SrcOff), meta.Src, size, OpRead, o); err != nil {
			return fmt.Errorf("rdma: dyn fetch read: %w", err)
		}
	} else {
		var wg sync.WaitGroup
		errs := make([]error, len(chunks))
		for i, chk := range chunks {
			lane := i % len(lanes)
			if o.OnStripe != nil {
				o.OnStripe(lane, chk.Size)
			}
			wg.Add(1)
			go func(i int, chk StripeChunk, ch *Channel) {
				defer wg.Done()
				errs[i] = ch.MemcpyRetry(dstOff+chk.Off, dst, int(meta.SrcOff)+chk.Off,
					meta.Src, chk.Size, OpRead, o)
			}(i, chk, lanes[lane])
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return fmt.Errorf("rdma: dyn fetch striped read: %w", err)
			}
		}
	}
	if err := lanes[0].MemcpyRetry(0, r.ackSrc, senderScratch.Off+dynMetaAckOff,
		senderScratch.Region, FlagWordSize, OpWrite, o); err != nil {
		return fmt.Errorf("rdma: dyn fetch ack: %w", err)
	}
	return observeComplete(o, size, start, nil)
}
