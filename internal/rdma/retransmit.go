package rdma

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Per-tensor selective retransmit over a lossy fabric.
//
// The paper's protocols assume reliable-connected QPs: a write either lands
// or fails with an error, so recovery is retry-the-whole-transfer. At
// hyperscale that is the wrong contract twice over (arXiv 2606.20582):
// RC connection state is O(N²), and connection-level go-back-N replays
// everything behind one lost packet. This file keeps the §3.2 slot shape
// but makes loss recovery communication-semantic-aware: every payload
// chunk carries a (tensor-id, chunk-seq, epoch) header, the receiver
// tracks per-chunk arrival and NACKs exactly the missing set, and the
// sender retransmits only those chunks — never the connection, never the
// tensor, and never into an iteration that has moved on (the epoch guard
// discards stale chunks atomically with respect to re-arming).
//
// Wire discipline: only tagged *chunk* writes get datagram semantics
// (silently droppable via Hooks.Lossy/ChunkDrop). Everything else — the
// epoch arm, the retransmit descriptor, NACKs, completion acks, and all
// legacy protocols — is a thin reliable control plane: those writes keep
// error-based completion, and each control word moves as its own 8-byte
// write (a single atomic store in orderedCopy) posted in order on one QP,
// with the validity word (epoch) last. A reader that observes the epoch
// therefore observes every word written before it in that batch.
//
// Lossy slot layout, after the payload of a static slot:
//
//	off                 payload            (alignUp(payloadSize) bytes)
//	+alignUp(P)         flag               (legacy tail word, unused here)
//	+alignUp(P)+8       epoch guard        (armed by sender before chunks)
//	+alignUp(P)+16      arrival[MaxStripes] (chunk i's word = epoch when landed)
//	+alignUp(P)+144     RetransmitDesc     (32 bytes, epoch word last)

const (
	// retransmitDescWireSize / nackDescWireSize are the fixed encodings of
	// the two control headers, 4 words each with the epoch word last.
	retransmitDescWireSize = 32
	nackDescWireSize       = 32

	// lossyArrivalWords is the arrival-stamp table length: one word per
	// possible chunk (chunk counts are clamped to MaxStripes).
	lossyArrivalWords = MaxStripes

	// LossyTailSize is the metadata appended to a lossy slot's payload:
	// flag + guard + arrival table + descriptor.
	LossyTailSize = FlagWordSize + 8 + lossyArrivalWords*8 + retransmitDescWireSize
)

// LossySlotSize returns the region bytes needed for a lossy static slot
// holding payloadSize payload bytes.
func LossySlotSize(payloadSize int) int {
	return alignUp(payloadSize) + LossyTailSize
}

// lossySlotLayout holds a slot's absolute control-word offsets.
type lossySlotLayout struct {
	flag, guard, arrival, desc int
}

func lossyLayout(off, payloadSize int) lossySlotLayout {
	flag := off + alignUp(payloadSize)
	return lossySlotLayout{
		flag:    flag,
		guard:   flag + FlagWordSize,
		arrival: flag + FlagWordSize + 8,
		desc:    flag + FlagWordSize + 8 + lossyArrivalWords*8,
	}
}

// ChunkTag is the semantic header carried by every tagged chunk write:
// which tensor, which chunk of it, and which send epoch.
type ChunkTag struct {
	TensorID uint64
	Seq      uint32
	Epoch    uint64
}

// tagKind distinguishes the two tagged write flavors.
type tagKind uint8

const (
	tagChunk tagKind = iota
	tagArm
)

// writeTag rides a workRequest through the QP into executeTagged.
type writeTag struct {
	kind       tagKind
	tag        ChunkTag
	guardOff   int // absolute offset of the slot's epoch guard word
	arrivalOff int // absolute offset of arrival[0]
}

// RetransmitDesc announces one send epoch to the receiver: the tensor, its
// chunk count and size, and the epoch. The epoch is the last word on the
// wire — it doubles as the descriptor's validity flag.
type RetransmitDesc struct {
	TensorID    uint64
	Chunks      uint32
	PayloadSize uint64
	Epoch       uint64
}

// Marshal encodes the descriptor (tensorID u64 | chunks u32 | pad u32 |
// payloadSize u64 | epoch u64, all LE).
func (d RetransmitDesc) Marshal() []byte {
	buf := make([]byte, retransmitDescWireSize)
	binary.LittleEndian.PutUint64(buf, d.TensorID)
	binary.LittleEndian.PutUint32(buf[8:], d.Chunks)
	binary.LittleEndian.PutUint64(buf[16:], d.PayloadSize)
	binary.LittleEndian.PutUint64(buf[24:], d.Epoch)
	return buf
}

// UnmarshalRetransmitDesc decodes a descriptor produced by Marshal. It is
// total on arbitrary bytes: only length is validated here — semantic
// checks (tensor identity, chunk bounds, size) belong to the receiver,
// which knows what it expects.
func UnmarshalRetransmitDesc(buf []byte) (RetransmitDesc, error) {
	if len(buf) < retransmitDescWireSize {
		return RetransmitDesc{}, fmt.Errorf("rdma: short retransmit descriptor (%d bytes)", len(buf))
	}
	return RetransmitDesc{
		TensorID:    binary.LittleEndian.Uint64(buf),
		Chunks:      binary.LittleEndian.Uint32(buf[8:]),
		PayloadSize: binary.LittleEndian.Uint64(buf[16:]),
		Epoch:       binary.LittleEndian.Uint64(buf[24:]),
	}, nil
}

// NackDesc is the receiver→sender control header: the missing-chunk bitmap
// for one epoch of one tensor. Missing == 0 is the completion ack. Seq
// increments per posted NACK so the sender can tell a re-NACK (its
// retransmit was lost too) from the one it already served. The epoch is
// again the last word on the wire.
type NackDesc struct {
	TensorID uint64
	Missing  uint64 // bit i set = chunk i missing; MaxStripes ≤ 64
	Seq      uint64
	Epoch    uint64
}

// Marshal encodes the header (tensorID u64 | missing u64 | seq u64 |
// epoch u64, all LE).
func (d NackDesc) Marshal() []byte {
	buf := make([]byte, nackDescWireSize)
	binary.LittleEndian.PutUint64(buf, d.TensorID)
	binary.LittleEndian.PutUint64(buf[8:], d.Missing)
	binary.LittleEndian.PutUint64(buf[16:], d.Seq)
	binary.LittleEndian.PutUint64(buf[24:], d.Epoch)
	return buf
}

// UnmarshalNackDesc decodes a header produced by Marshal; total on
// arbitrary bytes of sufficient length.
func UnmarshalNackDesc(buf []byte) (NackDesc, error) {
	if len(buf) < nackDescWireSize {
		return NackDesc{}, fmt.Errorf("rdma: short nack descriptor (%d bytes)", len(buf))
	}
	return NackDesc{
		TensorID: binary.LittleEndian.Uint64(buf),
		Missing:  binary.LittleEndian.Uint64(buf[8:]),
		Seq:      binary.LittleEndian.Uint64(buf[16:]),
		Epoch:    binary.LittleEndian.Uint64(buf[24:]),
	}, nil
}

// --- epoch-guarded placement (receiver-side memory) ---

// armEpoch publishes the slot's live epoch. Serialized against placeChunk
// by tagMu: once armEpoch(e+1) returns, no chunk of epoch ≤ e can land.
func (m *MemRegion) armEpoch(guardOff int, epoch uint64) error {
	if guardOff < 0 || guardOff%8 != 0 || guardOff+8 > len(m.data) {
		return fmt.Errorf("rdma: epoch guard at %d of %d-byte region: %w",
			guardOff, len(m.data), ErrBounds)
	}
	m.tagMu.Lock()
	atomicStore64(m.data, guardOff, epoch)
	m.tagMu.Unlock()
	return nil
}

// placeChunk lands one tagged chunk iff the slot's guard still holds the
// chunk's epoch; a stale chunk is discarded whole (returns false). The
// guard check, the payload stores, and the arrival stamp happen under
// tagMu, so placement is atomic with respect to re-arming — the invariant
// the mid-abort isolation test pins. Payload words move with atomic
// stores: concurrent duplicate retransmits of the same chunk write the
// same bytes, and pollers may read the region while chunks land.
func (m *MemRegion) placeChunk(t *writeTag, dstOff int, src []byte) (bool, error) {
	if int(t.tag.Seq) >= lossyArrivalWords {
		return false, fmt.Errorf("rdma: chunk seq %d outside arrival table: %w", t.tag.Seq, ErrBounds)
	}
	arrOff := t.arrivalOff + 8*int(t.tag.Seq)
	if t.guardOff < 0 || t.guardOff%8 != 0 || t.guardOff+8 > len(m.data) ||
		arrOff < 0 || arrOff%8 != 0 || arrOff+8 > len(m.data) {
		return false, fmt.Errorf("rdma: lossy control words [%d,%d] of %d-byte region: %w",
			t.guardOff, arrOff, len(m.data), ErrBounds)
	}
	if dstOff < 0 || dstOff%8 != 0 || len(src)%8 != 0 || dstOff+len(src) > len(m.data) {
		return false, fmt.Errorf("rdma: lossy chunk [%d,+%d) of %d-byte region: %w",
			dstOff, len(src), len(m.data), ErrBounds)
	}
	m.tagMu.Lock()
	defer m.tagMu.Unlock()
	if atomicLoad64(m.data, t.guardOff) != t.tag.Epoch {
		return false, nil
	}
	for o := 0; o+8 <= len(src); o += 8 {
		atomicStore64(m.data, dstOff+o, atomicLoad64(src, o))
	}
	atomicStore64(m.data, arrOff, t.tag.Epoch)
	return true, nil
}

// --- tagged posting (channel-side) ---

// taggedReq describes one chunk write of a tagged doorbell batch.
type taggedReq struct {
	localOff, remoteOff, size int
	tag                       ChunkTag
}

// postTaggedChunks posts a lane's chunk writes as one doorbell batch.
// Chunk completions carry no callback: on a lossy fabric a chunk's fate is
// learned from the NACK protocol, not from its completion.
func (c *Channel) postTaggedChunks(local *MemRegion, remote RemoteRegion,
	lay lossySlotLayout, reqs []taggedReq) error {
	wrs := make([]workRequest, len(reqs))
	for i, r := range reqs {
		wr, err := transferWR(r.localOff, local, r.remoteOff, remote, r.size, OpWrite, nil)
		if err != nil {
			return err
		}
		wr.tag = &writeTag{kind: tagChunk, tag: r.tag, guardOff: lay.guard, arrivalOff: lay.arrival}
		wrs[i] = wr
	}
	return c.qp.postBatch(wrs)
}

// postArm posts the epoch-guard arm write. The local source bytes are
// irrelevant (the epoch travels in the tag); localOff just names a valid
// word so the bounds checks hold.
func (c *Channel) postArm(local *MemRegion, localOff int, remote RemoteRegion,
	guardOff int, epoch uint64, cb func(error)) error {
	wr, err := transferWR(localOff, local, guardOff, remote, FlagWordSize, OpWrite, cb)
	if err != nil {
		return err
	}
	wr.tag = &writeTag{kind: tagArm, tag: ChunkTag{Epoch: epoch}, guardOff: guardOff}
	return c.qp.post(wr)
}

// --- sender ---

// Sender scratch layout: one 64-byte region per LossySender.
// [0,32) is the inbound NackDesc the receiver writes; [32,64) stages the
// outbound RetransmitDesc words.
const (
	nackTensorOff    = 0
	nackMissingOff   = 8
	nackSeqOff       = 16
	nackEpochOff     = 24
	descStagingOff   = 32
	lossyScratchSize = 64
)

// LossySender drives the lossy protocol for one static edge. It embeds the
// StaticSender (same staging buffer, same slot descriptor — the receiver's
// region is just LossySlotSize instead of StaticSlotSize) and replaces the
// flag-write contract with epoch announce → chunk blast → NACK-driven
// selective retransmit → completion ack.
type LossySender struct {
	*StaticSender
	tensorID uint64
	scratch  *MemRegion
	lay      lossySlotLayout
	epoch    uint64 // owned by the sending goroutine (edges send serially)

	retransmits atomic.Int64 // chunks selectively re-sent
	nacksSeen   atomic.Int64 // NACKs acted upon
	announces   atomic.Int64 // epoch announcements (whole-tensor sends)
	sends       atomic.Int64 // SendRetry-level operations
}

// NewLossySender wraps a StaticSender for the lossy protocol. The remote
// slot (desc) must have been allocated with LossySlotSize.
func NewLossySender(s *StaticSender, tensorID uint64) (*LossySender, error) {
	if uint64(s.desc.Off+LossySlotSize(s.desc.PayloadSize)) > s.desc.Region.Size {
		return nil, fmt.Errorf("rdma: remote slot [%d,+%d) of %d bytes is not a lossy slot: %w",
			s.desc.Off, LossySlotSize(s.desc.PayloadSize), s.desc.Region.Size, ErrBounds)
	}
	scratch, err := s.mr.dev.AllocateMemRegion(lossyScratchSize)
	if err != nil {
		return nil, err
	}
	return &LossySender{
		StaticSender: s,
		tensorID:     tensorID,
		scratch:      scratch,
		lay:          lossyLayout(s.desc.Off, s.desc.PayloadSize),
	}, nil
}

// Close releases the sender's scratch region.
func (s *LossySender) Close() { s.mr.dev.FreeMemRegion(s.scratch) }

// NackScratch returns the address of the sender's inbound NACK block; the
// receiver needs it before it can NACK or ack.
func (s *LossySender) NackScratch() DynSlotDesc {
	return DynSlotDesc{Region: s.scratch.Descriptor(), Off: 0}
}

// TensorID returns the edge's semantic tensor id.
func (s *LossySender) TensorID() uint64 { return s.tensorID }

// Retransmits reports chunks selectively re-sent; Nacks the NACKs served;
// FullResends how many epoch announcements exceeded one per send — i.e.
// whole-tensor replays, the go-back-N behavior selective retransmit
// exists to avoid. Tests assert it stays zero under chunk loss.
func (s *LossySender) Retransmits() int64 { return s.retransmits.Load() }
func (s *LossySender) Nacks() int64       { return s.nacksSeen.Load() }
func (s *LossySender) FullResends() int64 { return s.announces.Load() - s.sends.Load() }

// chunkSet splits the aligned payload like the striped path does; chunk
// boundaries and sizes are all 8-aligned, so placement is word-atomic.
func (s *LossySender) chunkSet(stripes int) []StripeChunk {
	return StripeDesc{
		PayloadSize: uint64(alignUp(s.desc.PayloadSize)),
		Stripes:     uint32(stripes),
	}.Chunks()
}

func fullMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}

// SendRetry transmits the staging buffer over the lossy protocol, blocking
// until the receiver acked complete arrival. Chunk loss is recovered
// in-protocol (selective retransmit); only control-plane failures consume
// the retry budget, and each such retry announces a fresh epoch.
func (s *LossySender) SendRetry(opts TransferOpts) error {
	return s.lossySendRetry(nil, opts)
}

// SendRetryFrom is SendRetry for an unstaged payload.
func (s *LossySender) SendRetryFrom(payload []byte, opts TransferOpts) error {
	if len(payload) != s.desc.PayloadSize {
		return fmt.Errorf("rdma: payload %d bytes, slot holds %d: %w",
			len(payload), s.desc.PayloadSize, ErrBounds)
	}
	return s.lossySendRetry(payload, opts)
}

func (s *LossySender) lossySendRetry(payload []byte, opts TransferOpts) error {
	o := opts.withDefaults()
	start := time.Now()
	s.sends.Add(1)
	err := retryLoop(o, fmt.Sprintf("lossy send %dB to %s", s.desc.PayloadSize, s.ch.Remote()),
		func() error { return s.attempt(payload, o) })
	return observeComplete(o, s.desc.PayloadSize, start, err)
}

// attempt is one epoch: arm + announce, blast every chunk, then serve
// NACKs until the completion ack or the deadline.
func (s *LossySender) attempt(payload []byte, o TransferOpts) error {
	lanes, release, err := s.acquireLanes()
	if err != nil {
		return err
	}
	defer release()
	if payload != nil {
		copy(s.Buffer(), payload)
	}
	s.epoch++
	e := s.epoch
	s.announces.Add(1)
	chunks := s.chunkSet(o.Stripes)
	if err := s.announce(lanes[0], e, len(chunks)); err != nil {
		return err
	}
	s.blast(lanes, chunks, fullMask(len(chunks)), e, o)
	return s.awaitAck(lanes, chunks, e, o)
}

// announce arms the receiver's epoch guard and writes the retransmit
// descriptor, one word per write in order with the epoch word last, all on
// one QP, and waits for the completions. After it returns, the receiver
// accepts epoch-e chunks and discards everything older — which is why the
// chunk blast must not start before the arm completed: chunks racing ahead
// of the arm on other QPs would be discarded as stale.
func (s *LossySender) announce(ch *Channel, e uint64, chunks int) error {
	d := RetransmitDesc{
		TensorID: s.tensorID, Chunks: uint32(chunks),
		PayloadSize: uint64(s.desc.PayloadSize), Epoch: e,
	}
	b := d.Marshal()
	// Atomic staging stores: a previous announce's writes may still be
	// draining off this scratch.
	for i := 0; i < retransmitDescWireSize/8; i++ {
		s.scratch.StoreWord(descStagingOff+8*i, binary.LittleEndian.Uint64(b[8*i:]))
	}
	words := retransmitDescWireSize / 8
	done := make(chan error, 1)
	join := newStripeJoin(1+words, func(err error) {
		select {
		case done <- err:
		default:
		}
	})
	if err := ch.postArm(s.scratch, descStagingOff, s.desc.Region, s.lay.guard, e,
		join.chunkCB(0)); err != nil {
		return err
	}
	reqs := make([]MemcpyReq, words)
	for i := range reqs {
		reqs[i] = MemcpyReq{
			LocalOff: descStagingOff + 8*i, Local: s.scratch,
			RemoteOff: s.lay.desc + 8*i, Remote: s.desc.Region,
			Size: FlagWordSize, Dir: OpWrite, CB: join.chunkCB(1 + i),
		}
	}
	if err := ch.MemcpyBatch(reqs); err != nil {
		// Nothing of the batch posted; drain the join with the error so the
		// arm's completion cannot leave it dangling.
		for _, r := range reqs {
			r.CB(err)
		}
	}
	if err := <-done; err != nil {
		return fmt.Errorf("rdma: lossy announce epoch %d to %s: %w", e, s.ch.Remote(), err)
	}
	return nil
}

// blast posts the chunks selected by mask, round-robin over the lanes as
// one doorbell batch per lane. Chunk completions are ignored: a failed
// post is indistinguishable from wire loss, and the NACK protocol recovers
// both.
func (s *LossySender) blast(lanes []*Channel, chunks []StripeChunk, mask, e uint64, o TransferOpts) {
	nl := len(lanes)
	batches := make([][]taggedReq, nl)
	for i, chk := range chunks {
		if mask&(uint64(1)<<uint(i)) == 0 {
			continue
		}
		lane := i % nl
		if o.OnStripe != nil {
			o.OnStripe(lane, chk.Size)
		}
		batches[lane] = append(batches[lane], taggedReq{
			localOff: s.off + chk.Off, remoteOff: s.desc.Off + chk.Off, size: chk.Size,
			tag: ChunkTag{TensorID: s.tensorID, Seq: uint32(i), Epoch: e},
		})
	}
	for lane, batch := range batches {
		if len(batch) == 0 {
			continue
		}
		if o.OnDoorbell != nil {
			o.OnDoorbell(lane, len(batch))
		}
		_ = lanes[lane].postTaggedChunks(s.mr, s.desc.Region, s.lay, batch)
	}
}

// awaitAck polls the sender scratch for receiver feedback: each new NACK
// seq either completes the epoch (missing == 0) or names the chunks to
// retransmit. The epoch word is read first; since the receiver writes each
// NACK's words in order with the epoch last and keeps at most one NACK
// write in flight, a matching epoch means seq and missing belong to this
// epoch. The deadline makes total loss (a blackholed tensor) fail typed
// and bounded: ErrTimeout, fatal in retryLoop.
func (s *LossySender) awaitAck(lanes []*Channel, chunks []StripeChunk, e uint64, o TransferOpts) error {
	deadline := time.Now().Add(o.Deadline)
	var lastSeq uint64
	for spins := 0; ; spins++ {
		if o.Canceled != nil && o.Canceled() {
			return fmt.Errorf("rdma: lossy send epoch %d to %s: %w", e, s.ch.Remote(), ErrCanceled)
		}
		if s.scratch.LoadWord(nackEpochOff) == e {
			if seq := s.scratch.LoadWord(nackSeqOff); seq != lastSeq {
				lastSeq = seq
				missing := s.scratch.LoadWord(nackMissingOff) & fullMask(len(chunks))
				if missing == 0 {
					return nil
				}
				n := bits.OnesCount64(missing)
				s.nacksSeen.Add(1)
				s.retransmits.Add(int64(n))
				if o.OnRetransmit != nil {
					o.OnRetransmit(n)
				}
				s.blast(lanes, chunks, missing, e, o)
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("rdma: lossy send epoch %d to %s: no completion ack: %w",
				e, s.ch.Remote(), ErrTimeout)
		}
		if spins > 256 {
			sleep(o.PollInterval)
		} else {
			runtime.Gosched()
		}
	}
}

// --- receiver ---

// defaultNackInterval paces receiver NACKs: long enough for in-flight
// chunks to land (spurious NACKs cost duplicate retransmits, which are
// harmless but noisy), short enough to keep loss recovery well under a
// training step.
const defaultNackInterval = 500 * time.Microsecond

// LossyReceiverConfig tunes a LossyReceiver.
type LossyReceiverConfig struct {
	// NackInterval paces NACK (and ack re-send) posting; 0 selects the
	// default.
	NackInterval time.Duration
	// OnNack, if non-nil, observes each posted NACK with its missing-chunk
	// count (metrics hook).
	OnNack func(missing int)
	// Source, when set, supplies the channel for each NACK/ack post (QP
	// mux mode); otherwise the constructor channel is used.
	Source LaneSource
}

// LossyReceiver owns one lossy static slot. Poll drives the whole receive
// side: it reads the announced descriptor, scans the arrival table, posts
// NACKs for missing chunks, and posts the completion ack once the epoch's
// payload fully landed.
type LossyReceiver struct {
	mr          *MemRegion
	off         int
	payloadSize int
	tensorID    uint64
	lay         lossySlotLayout
	ch          *Channel
	source      LaneSource
	staging     *MemRegion // outbound NackDesc words
	interval    time.Duration
	onNack      func(int)

	mu            sync.Mutex
	senderScratch DynSlotDesc
	haveScratch   bool
	curEpoch      uint64
	chunks        int
	complete      bool
	consumed      uint64 // last epoch consumed by the application
	lastPost      time.Time
	seq           uint64

	// inflight serializes NACK/ack posting: at most one control batch in
	// flight, so the sender scratch words always settle in posting order
	// (see awaitAck's torn-read argument). renack re-triggers a post whose
	// batch failed; needAck re-posts the completion ack until it lands.
	inflight  atomic.Bool
	renack    atomic.Bool
	needAck   atomic.Uint64
	nacksSent atomic.Int64
}

// NewLossyReceiver claims [off, off+LossySlotSize(payloadSize)) of mr as a
// lossy receive slot. ch reaches the edge's sender; it is used for control
// posts unless cfg.Source overrides per attempt.
func NewLossyReceiver(ch *Channel, mr *MemRegion, off, payloadSize int,
	tensorID uint64, cfg LossyReceiverConfig) (*LossyReceiver, error) {
	if off%8 != 0 {
		return nil, fmt.Errorf("rdma: lossy slot offset %d not 8-aligned: %w", off, ErrBadConfig)
	}
	if _, err := mr.Slice(off, LossySlotSize(payloadSize)); err != nil {
		return nil, err
	}
	staging, err := mr.dev.AllocateMemRegion(nackDescWireSize)
	if err != nil {
		return nil, err
	}
	if cfg.NackInterval <= 0 {
		cfg.NackInterval = defaultNackInterval
	}
	r := &LossyReceiver{
		mr: mr, off: off, payloadSize: payloadSize, tensorID: tensorID,
		lay: lossyLayout(off, payloadSize), ch: ch, source: cfg.Source,
		staging: staging, interval: cfg.NackInterval, onNack: cfg.OnNack,
	}
	mr.ClearFlag(r.lay.guard)
	mr.ClearFlag(r.lay.desc + 24)
	return r, nil
}

// Close releases the receiver's NACK staging region.
func (r *LossyReceiver) Close() { r.mr.dev.FreeMemRegion(r.staging) }

// Desc returns the slot address for the sender — the same StaticSlotDesc
// shape as the lossless protocol, so address distribution is unchanged;
// the region is simply LossySlotSize large.
func (r *LossyReceiver) Desc() StaticSlotDesc {
	return StaticSlotDesc{Region: r.mr.Descriptor(), Off: r.off, PayloadSize: r.payloadSize}
}

// SetSenderScratch installs the sender's NACK block address; until it is
// known the receiver cannot NACK (it just waits, and the sender's blast
// either fully lands or the edge times out).
func (r *LossyReceiver) SetSenderScratch(d DynSlotDesc) {
	r.mu.Lock()
	r.senderScratch = d
	r.haveScratch = true
	r.mu.Unlock()
}

// NacksSent reports control NACKs posted (excluding completion acks).
func (r *LossyReceiver) NacksSent() int64 { return r.nacksSent.Load() }

// Poll advances the receive protocol and reports whether a complete,
// unconsumed tensor is available. It is the lossy analogue of
// StaticReceiver.Poll and is driven from the same scheduler loop.
func (r *LossyReceiver) Poll() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pumpAckLocked()
	e := r.mr.LoadWord(r.lay.desc + 24)
	if e == 0 || e == r.consumed {
		return false
	}
	if e != r.curEpoch {
		var buf [retransmitDescWireSize]byte
		for i := 0; i < retransmitDescWireSize/8; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], r.mr.LoadWord(r.lay.desc+8*i))
		}
		d, err := UnmarshalRetransmitDesc(buf[:])
		if err != nil || d.Epoch != e || d.TensorID != r.tensorID ||
			d.Chunks == 0 || int(d.Chunks) > lossyArrivalWords ||
			d.PayloadSize != uint64(r.payloadSize) {
			// Torn or foreign descriptor; the epoch word lands last, so a
			// later poll sees it whole.
			return false
		}
		r.curEpoch = e
		r.chunks = int(d.Chunks)
		r.complete = false
		r.lastPost = time.Now() // grace before the first NACK
	}
	if r.complete {
		return true
	}
	var missing uint64
	for i := 0; i < r.chunks; i++ {
		if r.mr.LoadWord(r.lay.arrival+8*i) != e {
			missing |= uint64(1) << uint(i)
		}
	}
	if missing == 0 {
		// Disarm the guard before exposing the payload: a duplicate
		// retransmit still in flight (the sender served a re-NACK whose
		// first answer wasn't lost after all) must be discarded at the
		// guard, not re-stored into memory the consumer is now reading.
		// The sender re-arms at the next epoch's announce.
		_ = r.mr.armEpoch(r.lay.guard, 0)
		r.complete = true
		r.needAck.Store(e)
		r.lastPost = time.Time{} // ack immediately
		r.pumpAckLocked()
		return true
	}
	if r.renack.Swap(false) || time.Since(r.lastPost) >= r.interval {
		r.lastPost = time.Now()
		if r.onNack != nil {
			r.onNack(bits.OnesCount64(missing))
		}
		r.nacksSent.Add(1)
		r.postNack(missing, e)
	}
	return false
}

// pumpAck posts a due completion ack immediately, bypassing the NACK
// pacing interval. postNack's completion callback calls it when an ack was
// deferred behind an in-flight control batch.
func (r *LossyReceiver) pumpAck() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.needAck.Load() == 0 {
		return
	}
	r.renack.Store(true)
	r.pumpAckLocked()
}

// pumpAckLocked re-posts the completion ack until its write landed; the
// sender blocks on it, so an ack lost to a failed post must be retried.
func (r *LossyReceiver) pumpAckLocked() {
	e := r.needAck.Load()
	if e == 0 {
		return
	}
	if r.renack.Swap(false) || r.lastPost.IsZero() || time.Since(r.lastPost) >= r.interval {
		r.lastPost = time.Now()
		r.postNack(0, e)
	}
}

// postNack stages and posts one NackDesc (missing == 0 is the completion
// ack): four word writes in order on one QP, epoch last. At most one batch
// is in flight (inflight CAS) — see the struct comment for why that
// ordering discipline is what makes the sender's scratch reads sound.
func (r *LossyReceiver) postNack(missing, e uint64) {
	if !r.haveScratch {
		return
	}
	if !r.inflight.CompareAndSwap(false, true) {
		return
	}
	r.seq++
	d := NackDesc{TensorID: r.tensorID, Missing: missing, Seq: r.seq, Epoch: e}
	b := d.Marshal()
	for i := 0; i < nackDescWireSize/8; i++ {
		r.staging.StoreWord(8*i, binary.LittleEndian.Uint64(b[8*i:]))
	}
	ch, release, err := laneFor(r.source, r.ch.Remote(), r.ch)
	if err != nil {
		r.inflight.Store(false)
		r.renack.Store(true)
		return
	}
	words := nackDescWireSize / 8
	scratch := r.senderScratch
	acked := missing == 0
	join := newStripeJoin(words, func(err error) {
		if err == nil && acked {
			r.needAck.CompareAndSwap(e, 0)
		}
		if err != nil {
			r.renack.Store(true)
		}
		release()
		r.inflight.Store(false)
		// If an ack became due while this batch pinned the in-flight slot
		// (Poll's post was silently skipped by the CAS), nothing will pump it
		// again once the scheduler stops polling a completed edge — so pump
		// from here. A goroutine, not an inline post: this callback runs in
		// completion context.
		if r.needAck.Load() != 0 {
			go r.pumpAck()
		}
	})
	reqs := make([]MemcpyReq, words)
	for i := range reqs {
		reqs[i] = MemcpyReq{
			LocalOff: 8 * i, Local: r.staging,
			RemoteOff: scratch.Off + 8*i, Remote: scratch.Region,
			Size: FlagWordSize, Dir: OpWrite, CB: join.chunkCB(i),
		}
	}
	if err := ch.MemcpyBatch(reqs); err != nil {
		for _, q := range reqs {
			q.CB(err)
		}
	}
}

// Payload returns the slot's payload bytes; valid after Poll returned true.
func (r *LossyReceiver) Payload() []byte {
	return r.mr.Bytes()[r.off : r.off+r.payloadSize]
}

// Consume marks the current epoch consumed, so Poll reports false until
// the next epoch is announced. The completion ack keeps re-posting until
// it lands even after Consume (pumpAckLocked), so the sender always
// unblocks.
func (r *LossyReceiver) Consume() {
	r.mu.Lock()
	if r.complete {
		r.consumed = r.curEpoch
		r.complete = false
	}
	r.pumpAckLocked()
	r.mu.Unlock()
}

// Wait blocks until a complete tensor arrived (Poll true) or the opts
// deadline expires, like StaticReceiver.Wait.
func (r *LossyReceiver) Wait(opts TransferOpts) error {
	return waitCond(opts, "lossy recv", r.Poll)
}
