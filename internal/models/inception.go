package models

import "fmt"

// InceptionV3 reproduces the Inception-v3 layer inventory (Szegedy et al.),
// including the auxiliary classifier: 94 convolutions + aux head + final
// logits = 98 weighted layers = 196 variable tensors, matching Table 2's
// count exactly. Channel configuration follows the published architecture.
func InceptionV3() Spec {
	var vars []VarSpec
	add := func(name string, out, kh, kw, in int) int {
		vars = append(vars, convVar(name, out, kh, kw, in)...)
		return out
	}

	// Stem: 299x299x3 -> 35x35x192.
	c := add("stem/conv0", 32, 3, 3, 3)
	c = add("stem/conv1", 32, 3, 3, c)
	c = add("stem/conv2", 64, 3, 3, c)
	c = add("stem/conv3", 80, 1, 1, c)
	c = add("stem/conv4", 192, 3, 3, c)

	// 3x Inception-A. Branch channels: 1x1:64; 5x5 path 48->64;
	// double-3x3 path 64->96->96; pool projection 32/64/64.
	for i, poolProj := range []int{32, 64, 64} {
		p := fmt.Sprintf("mixed_a%d", i)
		add(p+"/b1x1", 64, 1, 1, c)
		b5 := add(p+"/b5x5_1", 48, 1, 1, c)
		add(p+"/b5x5_2", 64, 5, 5, b5)
		d := add(p+"/b3x3dbl_1", 64, 1, 1, c)
		d = add(p+"/b3x3dbl_2", 96, 3, 3, d)
		add(p+"/b3x3dbl_3", 96, 3, 3, d)
		add(p+"/pool_proj", poolProj, 1, 1, c)
		c = 64 + 64 + 96 + poolProj
	}

	// Reduction-A: 35x35 -> 17x17.
	add("red_a/b3x3", 384, 3, 3, c)
	d := add("red_a/b3x3dbl_1", 64, 1, 1, c)
	d = add("red_a/b3x3dbl_2", 96, 3, 3, d)
	add("red_a/b3x3dbl_3", 96, 3, 3, d)
	c = 384 + 96 + c

	// 4x Inception-B with factorized 7x7 convolutions; intermediate width
	// 128, 160, 160, 192.
	for i, c7 := range []int{128, 160, 160, 192} {
		p := fmt.Sprintf("mixed_b%d", i)
		add(p+"/b1x1", 192, 1, 1, c)
		b := add(p+"/b7x7_1", c7, 1, 1, c)
		b = add(p+"/b7x7_2", c7, 1, 7, b)
		add(p+"/b7x7_3", 192, 7, 1, b)
		e := add(p+"/b7x7dbl_1", c7, 1, 1, c)
		e = add(p+"/b7x7dbl_2", c7, 7, 1, e)
		e = add(p+"/b7x7dbl_3", c7, 1, 7, e)
		e = add(p+"/b7x7dbl_4", c7, 7, 1, e)
		add(p+"/b7x7dbl_5", 192, 1, 7, e)
		add(p+"/pool_proj", 192, 1, 1, c)
		c = 4 * 192
	}

	// Auxiliary classifier off the 17x17x768 grid.
	aux := add("aux/conv0", 128, 1, 1, c)
	add("aux/conv1", 768, 5, 5, aux)
	vars = append(vars, fcVar("aux/logits", 768, 1000)...)

	// Reduction-B: 17x17 -> 8x8.
	rb := add("red_b/b3x3_1", 192, 1, 1, c)
	add("red_b/b3x3_2", 320, 3, 3, rb)
	rc := add("red_b/b7x7_1", 192, 1, 1, c)
	rc = add("red_b/b7x7_2", 192, 1, 7, rc)
	rc = add("red_b/b7x7_3", 192, 7, 1, rc)
	add("red_b/b7x7_4", 192, 3, 3, rc)
	c = 320 + 192 + c

	// 2x Inception-C with expanded filter banks.
	for i := 0; i < 2; i++ {
		p := fmt.Sprintf("mixed_c%d", i)
		add(p+"/b1x1", 320, 1, 1, c)
		b := add(p+"/b3x3_1", 384, 1, 1, c)
		add(p+"/b3x3_2a", 384, 1, 3, b)
		add(p+"/b3x3_2b", 384, 3, 1, b)
		e := add(p+"/b3x3dbl_1", 448, 1, 1, c)
		e = add(p+"/b3x3dbl_2", 384, 3, 3, e)
		add(p+"/b3x3dbl_3a", 384, 1, 3, e)
		add(p+"/b3x3dbl_3b", 384, 3, 1, e)
		add(p+"/pool_proj", 192, 1, 1, c)
		c = 320 + 2*384 + 2*384 + 192
	}

	// Final logits.
	vars = append(vars, fcVar("logits", c, 1000)...)

	return Spec{Name: "Inception-v3", Family: "CNN", Vars: vars,
		Compute: TimeModel{BaseMS: 68.32, SatBatch: 16}}
}
