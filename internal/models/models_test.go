package models

import (
	"math"
	"testing"

	"repro/internal/exec"
)

// Table 2 reference values.
var table2 = []struct {
	name   string
	sizeMB float64
	varN   int
	tol    float64 // relative tolerance on size
	baseMS float64
	family string
}{
	{"AlexNet", 176.42, 16, 0.10, 7.61, "CNN"},
	{"Inception-v3", 92.90, 196, 0.15, 68.32, "CNN"},
	{"VGGNet-16", 512.32, 32, 0.05, 30.92, "CNN"},
	{"LSTM", 35.93, 14, 0.001, 33.33, "RNN"},
	{"GRU", 27.92, 11, 0.001, 30.44, "RNN"},
	{"FCN-5", 204.47, 10, 0.001, 4.88, "FCN"},
}

func TestTable2Characteristics(t *testing.T) {
	specs := All()
	if len(specs) != 6 {
		t.Fatalf("All() returned %d specs", len(specs))
	}
	for i, ref := range table2 {
		s := specs[i]
		if s.Name != ref.name {
			t.Fatalf("spec %d is %q, want %q", i, s.Name, ref.name)
		}
		if s.VarCount() != ref.varN {
			t.Errorf("%s: %d variable tensors, Table 2 says %d", s.Name, s.VarCount(), ref.varN)
		}
		rel := math.Abs(s.ModelMB()-ref.sizeMB) / ref.sizeMB
		if rel > ref.tol {
			t.Errorf("%s: %.2f MB, Table 2 says %.2f MB (off %.1f%%, tol %.1f%%)",
				s.Name, s.ModelMB(), ref.sizeMB, rel*100, ref.tol*100)
		}
		if s.Compute.BaseMS != ref.baseMS {
			t.Errorf("%s: base compute %.2f ms, want %.2f", s.Name, s.Compute.BaseMS, ref.baseMS)
		}
		if s.Family != ref.family {
			t.Errorf("%s: family %q, want %q", s.Name, s.Family, ref.family)
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("LSTM")
	if err != nil || s.Name != "LSTM" {
		t.Errorf("ByName: %v %v", s.Name, err)
	}
	if _, err := ByName("ResNet"); err == nil {
		t.Error("unknown model accepted")
	}
}

// TestFigure7Distribution checks the tensor-size CCDF facts §5 reports:
// "more than 50% of the variable tensors are larger than 10KB, and more
// than 20% are even larger than 1MB ... the tensors that are larger than
// 1MB occupy 96% of the capacity".
func TestFigure7Distribution(t *testing.T) {
	var sizes []int64
	for _, s := range All() {
		sizes = append(sizes, s.TensorSizes()...)
	}
	var total, over10k, over1m, capOver1m int64
	for _, s := range sizes {
		total += s
		if s > 10<<10 {
			over10k++
		}
		if s > 1<<20 {
			over1m++
			capOver1m += s
		}
	}
	n := float64(len(sizes))
	if f := float64(over10k) / n; f <= 0.50 {
		t.Errorf(">10KB fraction = %.2f, want > 0.50", f)
	}
	if f := float64(over1m) / n; f <= 0.20 {
		t.Errorf(">1MB fraction = %.2f, want > 0.20", f)
	}
	if f := float64(capOver1m) / float64(total); f < 0.90 {
		t.Errorf(">1MB capacity share = %.2f, want >= 0.90", f)
	}
}

func TestTimeModel(t *testing.T) {
	m := TimeModel{BaseMS: 10, SatBatch: 32}
	if m.MinibatchMS(1) != 10 || m.MinibatchMS(32) != 10 {
		t.Error("below saturation time should be constant")
	}
	if m.MinibatchMS(64) != 20 {
		t.Errorf("batch 64 = %v, want 20", m.MinibatchMS(64))
	}
	if m.MinibatchMS(128) != 40 {
		t.Errorf("batch 128 = %v, want 40", m.MinibatchMS(128))
	}
}

func TestExactRNNSizes(t *testing.T) {
	// Per-gate splitting with hidden 1024 and a 1000-way projection must
	// land exactly on the paper's bytes.
	lstm := LSTM()
	if lstm.ModelBytes() != 4*(2*1024*1024+1024)*4+(1024*1000+1000)*4 {
		t.Errorf("LSTM bytes = %d", lstm.ModelBytes())
	}
	gru := GRU()
	wantGRU := int64(3*(2*1024*1024+1024)+1024*1000+1000) * 4
	if gru.ModelBytes() != wantGRU {
		t.Errorf("GRU bytes = %d, want %d", gru.ModelBytes(), wantGRU)
	}
}

// trainApp runs an app for the given iterations and returns first/last
// metric values.
func trainApp(t *testing.T, app *TrainableApp, iters int) (first, last float64) {
	t.Helper()
	e, err := exec.New(app.Graph, exec.Config{Vars: app.Vars})
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < iters; iter++ {
		out, err := e.Run(iter, app.NextFeeds(iter), app.LossName, app.StepName)
		if err != nil {
			t.Fatal(err)
		}
		m := app.MetricValue(out[app.LossName].Float32s()[0])
		if iter == 0 {
			first = m
		}
		last = m
	}
	return first, last
}

func TestCIFARAppConverges(t *testing.T) {
	app, err := NewCIFARApp(1)
	if err != nil {
		t.Fatal(err)
	}
	first, last := trainApp(t, app, 60)
	if last > first*0.6 {
		t.Errorf("CIFAR loss did not converge: %.3f -> %.3f", first, last)
	}
	if app.CommSpec.ModelBytes() == 0 {
		t.Error("missing comm spec")
	}
}

func TestSeq2SeqAppConverges(t *testing.T) {
	app, err := NewSeq2SeqApp(2)
	if err != nil {
		t.Fatal(err)
	}
	if app.Metric != "perplexity" {
		t.Error("seq2seq should report perplexity")
	}
	first, last := trainApp(t, app, 120)
	if last > first*0.7 {
		t.Errorf("Seq2Seq perplexity did not converge: %.2f -> %.2f", first, last)
	}
}

func TestSEAppConverges(t *testing.T) {
	app, err := NewSEApp(3)
	if err != nil {
		t.Fatal(err)
	}
	first, last := trainApp(t, app, 80)
	if last > first*0.6 {
		t.Errorf("SE loss did not converge: %.3f -> %.3f", first, last)
	}
}

func TestAppCommSpecs(t *testing.T) {
	if s := Seq2SeqSpec(); s.ModelBytes() < 50<<20 {
		t.Errorf("Seq2Seq comm spec suspiciously small: %.1f MB", s.ModelMB())
	}
	if s := CIFARSpec(); s.ModelMB() > 20 {
		t.Errorf("CIFAR comm spec suspiciously large: %.1f MB", s.ModelMB())
	}
	if s := SESpec(); s.VarCount() != 20 {
		t.Errorf("SE towers: %d vars", s.VarCount())
	}
}

func TestAppsDeterministicPerSeed(t *testing.T) {
	builders := map[string]func(int64) (*TrainableApp, error){
		"cifar":   NewCIFARApp,
		"seq2seq": NewSeq2SeqApp,
		"se":      NewSEApp,
	}
	for name, build := range builders {
		a1, err := build(42)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := build(42)
		if err != nil {
			t.Fatal(err)
		}
		_, l1 := trainApp(t, a1, 3)
		_, l2 := trainApp(t, a2, 3)
		if l1 != l2 {
			t.Errorf("%s: same seed diverged: %v vs %v", name, l1, l2)
		}
		a3, err := build(43)
		if err != nil {
			t.Fatal(err)
		}
		_, l3 := trainApp(t, a3, 3)
		if l3 == l1 {
			t.Errorf("%s: different seeds produced identical loss %v", name, l3)
		}
	}
}
