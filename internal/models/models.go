// Package models defines the paper's six benchmark workloads (Table 2) as
// variable-tensor inventories plus a GPU compute-time model, and provides
// small trainable graph builders for the end-to-end convergence
// applications (Figure 10).
//
// The full-size inventories drive the network simulator: what matters for
// communication behaviour is the multiset of variable tensor sizes (model
// size, tensor count, size distribution — Figure 7), which these
// definitions reproduce from the standard architectures. Where the paper's
// exact configuration is unknown the closest standard variant is used and
// the deviation recorded in EXPERIMENTS.md; the RNN inventories (LSTM, GRU)
// match the paper's reported sizes exactly under per-gate weight splitting
// with hidden size 1024 and a 1000-word projection.
package models

import (
	"fmt"

	"repro/internal/tensor"
)

// VarSpec is one model-parameter tensor.
type VarSpec struct {
	Name  string
	Shape tensor.Shape
}

// Elements returns the tensor's element count.
func (v VarSpec) Elements() int64 { return int64(v.Shape.NumElements()) }

// Bytes returns the tensor's float32 payload size.
func (v VarSpec) Bytes() int64 { return v.Elements() * 4 }

// TimeModel approximates GPU minibatch compute time: batches up to
// SatBatch complete in the same time as a single sample (the GPU's parallel
// units are underutilized); beyond saturation time grows linearly. This is
// the behaviour §5.2 describes: "the GPU's massive computing threads can
// complete large mini-batches within the same time as processing the small
// ones", while Inception-v3/LSTM/GRU grow past batch 32.
type TimeModel struct {
	// BaseMS is the single-sample compute time (Table 2's "computation
	// time" column).
	BaseMS float64
	// SatBatch is the batch size at which the GPU saturates.
	SatBatch int
}

// MinibatchMS returns the modeled compute time for one minibatch.
func (m TimeModel) MinibatchMS(batch int) float64 {
	if batch <= m.SatBatch {
		return m.BaseMS
	}
	return m.BaseMS * float64(batch) / float64(m.SatBatch)
}

// Spec is one benchmark workload.
type Spec struct {
	Name    string
	Family  string // CNN, RNN, FCN
	Vars    []VarSpec
	Compute TimeModel
}

// ModelBytes returns the total parameter payload (the per-iteration
// worker↔PS communication volume in each direction).
func (s Spec) ModelBytes() int64 {
	var n int64
	for _, v := range s.Vars {
		n += v.Bytes()
	}
	return n
}

// ModelMB returns the model size in binary megabytes, Table 2's unit.
func (s Spec) ModelMB() float64 { return float64(s.ModelBytes()) / (1 << 20) }

// VarCount returns the number of variable tensors.
func (s Spec) VarCount() int { return len(s.Vars) }

// TensorSizes returns every variable's payload size in bytes.
func (s Spec) TensorSizes() []int64 {
	out := make([]int64, len(s.Vars))
	for i, v := range s.Vars {
		out[i] = v.Bytes()
	}
	return out
}

// convVar emits weight+bias specs for one convolution layer.
func convVar(name string, out, kh, kw, in int) []VarSpec {
	return []VarSpec{
		{Name: name + "/weights", Shape: tensor.Shape{out, kh, kw, in}},
		{Name: name + "/biases", Shape: tensor.Shape{out}},
	}
}

// fcVar emits weight+bias specs for one fully connected layer.
func fcVar(name string, in, out int) []VarSpec {
	return []VarSpec{
		{Name: name + "/weights", Shape: tensor.Shape{in, out}},
		{Name: name + "/biases", Shape: tensor.Shape{out}},
	}
}

// gateVars emits the per-gate recurrent weights {W, U, b} used by the
// paper's RNN benchmarks (hidden 1024): splitting per gate yields exactly
// Table 2's tensor counts and byte sizes.
func gateVars(prefix string, gates []string, hidden int) []VarSpec {
	var out []VarSpec
	for _, g := range gates {
		out = append(out,
			VarSpec{Name: fmt.Sprintf("%s/%s/W", prefix, g), Shape: tensor.Shape{hidden, hidden}},
			VarSpec{Name: fmt.Sprintf("%s/%s/U", prefix, g), Shape: tensor.Shape{hidden, hidden}},
			VarSpec{Name: fmt.Sprintf("%s/%s/b", prefix, g), Shape: tensor.Shape{hidden}},
		)
	}
	return out
}

// AlexNet is the 5-conv/3-fc network of Krizhevsky et al. (the single-tower
// "v2" variant used by TF benchmarks): 16 variable tensors.
func AlexNet() Spec {
	var vars []VarSpec
	vars = append(vars, convVar("conv1", 64, 11, 11, 3)...)
	vars = append(vars, convVar("conv2", 192, 5, 5, 64)...)
	vars = append(vars, convVar("conv3", 384, 3, 3, 192)...)
	vars = append(vars, convVar("conv4", 256, 3, 3, 384)...)
	vars = append(vars, convVar("conv5", 256, 3, 3, 256)...)
	vars = append(vars, fcVar("fc6", 6400, 4096)...)
	vars = append(vars, fcVar("fc7", 4096, 4096)...)
	vars = append(vars, fcVar("fc8", 4096, 1000)...)
	return Spec{Name: "AlexNet", Family: "CNN", Vars: vars,
		Compute: TimeModel{BaseMS: 7.61, SatBatch: 8}}
}

// VGGNet16 is the 13-conv/3-fc configuration D of Simonyan & Zisserman:
// 32 variable tensors.
func VGGNet16() Spec {
	var vars []VarSpec
	cfg := []struct {
		name    string
		out, in int
	}{
		{"conv1_1", 64, 3}, {"conv1_2", 64, 64},
		{"conv2_1", 128, 64}, {"conv2_2", 128, 128},
		{"conv3_1", 256, 128}, {"conv3_2", 256, 256}, {"conv3_3", 256, 256},
		{"conv4_1", 512, 256}, {"conv4_2", 512, 512}, {"conv4_3", 512, 512},
		{"conv5_1", 512, 512}, {"conv5_2", 512, 512}, {"conv5_3", 512, 512},
	}
	for _, c := range cfg {
		vars = append(vars, convVar(c.name, c.out, 3, 3, c.in)...)
	}
	vars = append(vars, fcVar("fc6", 25088, 4096)...)
	vars = append(vars, fcVar("fc7", 4096, 4096)...)
	vars = append(vars, fcVar("fc8", 4096, 1000)...)
	return Spec{Name: "VGGNet-16", Family: "CNN", Vars: vars,
		Compute: TimeModel{BaseMS: 30.92, SatBatch: 8}}
}

// LSTM is a single-layer LSTM language model with hidden size 1024, step
// size 80, per-gate weights, and a 1000-way output projection: 14 tensors,
// 35.93 MB — matching Table 2 exactly.
func LSTM() Spec {
	vars := gateVars("lstm", []string{"input", "forget", "cell", "output"}, 1024)
	vars = append(vars, fcVar("proj", 1024, 1000)...)
	return Spec{Name: "LSTM", Family: "RNN", Vars: vars,
		Compute: TimeModel{BaseMS: 33.33, SatBatch: 16}}
}

// GRU is the gated recurrent unit counterpart: 3 gates, hidden 1024,
// 11 tensors, 27.92 MB — matching Table 2 exactly.
func GRU() Spec {
	vars := gateVars("gru", []string{"update", "reset", "candidate"}, 1024)
	vars = append(vars, fcVar("proj", 1024, 1000)...)
	return Spec{Name: "GRU", Family: "RNN", Vars: vars,
		Compute: TimeModel{BaseMS: 30.44, SatBatch: 16}}
}

// FCN5 is the 5-layer fully connected network on MNIST-sized inputs: a
// 784-wide input layer, 3 hidden layers of width 4096, and a 10-way output
// (Table 2's note), 10 tensors totalling 204.47 MB — matching the paper
// exactly.
func FCN5() Spec {
	var vars []VarSpec
	vars = append(vars, fcVar("fc1", 784, 4096)...)
	vars = append(vars, fcVar("fc2", 4096, 4096)...)
	vars = append(vars, fcVar("fc3", 4096, 4096)...)
	vars = append(vars, fcVar("fc4", 4096, 4096)...)
	vars = append(vars, fcVar("fc5", 4096, 10)...)
	return Spec{Name: "FCN-5", Family: "FCN", Vars: vars,
		Compute: TimeModel{BaseMS: 4.88, SatBatch: 8}}
}

// All returns the six Table 2 benchmarks in the paper's order.
func All() []Spec {
	return []Spec{AlexNet(), InceptionV3(), VGGNet16(), LSTM(), GRU(), FCN5()}
}

// ByName returns the benchmark with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("models: unknown benchmark %q", name)
}
