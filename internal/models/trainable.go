package models

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// TrainableApp is one of the paper's three end-to-end convergence
// applications (Figure 10), scaled down so real SGD runs quickly in pure
// Go. The paper's real datasets (WMT French-English, CIFAR-10 images, the
// private sentence-embedding corpus) are replaced by synthetic data with
// matched structure — learnable sequence-to-sequence mappings, labelled
// image-like tensors, labelled token sequences — which preserves what the
// experiment measures: the same loss-vs-iteration curve replayed under
// different per-iteration communication times.
type TrainableApp struct {
	Name string
	// Metric names the y-axis: "loss" or "perplexity".
	Metric string
	// Graph and Vars are ready for an exec.Executor.
	Graph *graph.Graph
	Vars  *exec.VarStore
	// LossName and StepName are the fetch targets per iteration.
	LossName, StepName string
	// NextFeeds produces the iteration's synthetic minibatch.
	NextFeeds func(iter int) map[string]*tensor.Tensor
	// CommSpec is the full-size model whose communication profile the
	// distributed version of this app would have; the simulator prices
	// iterations with it.
	CommSpec Spec
}

// MetricValue converts a raw loss into the app's reported metric
// (perplexity = exp(cross-entropy) for the translation task).
func (a *TrainableApp) MetricValue(loss float32) float64 {
	if a.Metric == "perplexity" {
		return math.Exp(float64(loss))
	}
	return float64(loss)
}

// NewCIFARApp builds the image-recognition task: a small convolutional
// classifier on synthetic 16x16x3 labelled images drawn from 10 separable
// Gaussian class prototypes (the CIFAR substitution).
func NewCIFARApp(seed int64) (*TrainableApp, error) {
	const (
		batch, h, w, ch = 16, 16, 16, 3
		classes         = 10
		lr              = 0.05
	)
	rng := rand.New(rand.NewSource(seed))

	b := graph.NewBuilder()
	x := b.Placeholder("x", graph.Static(tensor.Float32, batch, h, w, ch))
	labels := b.Placeholder("labels", graph.Static(tensor.Int32, batch))
	c1w := b.Variable("conv1_w", graph.Static(tensor.Float32, 8, 3, 3, ch))
	conv1 := b.ReLU("relu1", b.Conv2D("conv1", x, c1w, 1, 1))
	pool1 := b.MaxPool("pool1", conv1) // 8x8x8
	c2w := b.Variable("conv2_w", graph.Static(tensor.Float32, 16, 3, 3, 8))
	conv2 := b.ReLU("relu2", b.Conv2D("conv2", pool1, c2w, 1, 1))
	pool2 := b.MaxPool("pool2", conv2) // 4x4x16
	flat := b.Reshape("flat", pool2, batch, 4*4*16)
	fcw := b.Variable("fc_w", graph.Static(tensor.Float32, 4*4*16, classes))
	fcb := b.Variable("fc_b", graph.Static(tensor.Float32, classes))
	logits := b.BiasAdd("logits", b.MatMul("fc", flat, fcw), fcb)
	loss := b.SoftmaxXent("loss", logits, labels)

	vars := []*graph.Node{c1w, c2w, fcw, fcb}
	grads, err := graph.Gradients(b, loss, vars)
	if err != nil {
		return nil, err
	}
	var updates []*graph.Node
	for i, v := range vars {
		updates = append(updates, b.ApplySGD(fmt.Sprintf("upd%d", i), v, grads[v], lr))
	}
	step := b.Group("step", updates...)
	b.Prune(append([]*graph.Node{loss, step}, updates...)...)
	g, err := b.Finish()
	if err != nil {
		return nil, err
	}
	store := exec.NewVarStore()
	for _, v := range vars {
		t := tensor.New(tensor.Float32, v.Sig().Shape...)
		tensor.GlorotInit(t, rng)
		if err := store.Create(v.Name(), t); err != nil {
			return nil, err
		}
	}

	// Class prototypes: each class is a noisy template image.
	protos := make([]*tensor.Tensor, classes)
	for c := range protos {
		protos[c] = tensor.New(tensor.Float32, h, w, ch)
		tensor.RandomNormal(protos[c], rng, 1)
	}
	feedRng := rand.New(rand.NewSource(seed + 1))
	nextFeeds := func(iter int) map[string]*tensor.Tensor {
		xs := tensor.New(tensor.Float32, batch, h, w, ch)
		ls := tensor.New(tensor.Int32, batch)
		per := h * w * ch
		for i := 0; i < batch; i++ {
			c := feedRng.Intn(classes)
			ls.Int32s()[i] = int32(c)
			dst := xs.Float32s()[i*per : (i+1)*per]
			src := protos[c].Float32s()
			for j := range dst {
				dst[j] = src[j] + float32(feedRng.NormFloat64())*0.4
			}
		}
		return map[string]*tensor.Tensor{"x": xs, "labels": ls}
	}
	return &TrainableApp{
		Name: "CIFAR", Metric: "loss",
		Graph: g, Vars: store,
		LossName: "loss", StepName: "step",
		NextFeeds: nextFeeds,
		CommSpec:  CIFARSpec(),
	}, nil
}

// NewSeq2SeqApp builds the translation task: an encoder/decoder tanh-RNN
// trained to emit the reversed input sequence (the classic synthetic
// seq2seq task standing in for WMT French-English). The reported metric is
// perplexity, as in Figure 10(a).
func NewSeq2SeqApp(seed int64) (*TrainableApp, error) {
	const (
		batch, vocab, hidden, steps = 16, 24, 48, 5
		lr                          = 0.25
	)
	rng := rand.New(rand.NewSource(seed))

	b := graph.NewBuilder()
	wxh := b.Variable("enc_wxh", graph.Static(tensor.Float32, vocab, hidden))
	whh := b.Variable("enc_whh", graph.Static(tensor.Float32, hidden, hidden))
	bh := b.Variable("enc_bh", graph.Static(tensor.Float32, hidden))
	dxh := b.Variable("dec_wxh", graph.Static(tensor.Float32, vocab, hidden))
	dhh := b.Variable("dec_whh", graph.Static(tensor.Float32, hidden, hidden))
	dbh := b.Variable("dec_bh", graph.Static(tensor.Float32, hidden))
	wOut := b.Variable("dec_wout", graph.Static(tensor.Float32, hidden, vocab))
	bOut := b.Variable("dec_bout", graph.Static(tensor.Float32, vocab))
	h0 := b.Const("h0", tensor.New(tensor.Float32, batch, hidden))

	// Encoder: h_t = tanh(x_t Wxh + h_{t-1} Whh + b).
	h := h0
	for t := 0; t < steps; t++ {
		xt := b.Placeholder(fmt.Sprintf("enc_x%d", t), graph.Static(tensor.Float32, batch, vocab))
		pre := b.BiasAdd(fmt.Sprintf("enc_pre%d", t),
			b.Add(fmt.Sprintf("enc_sum%d", t),
				b.MatMul(fmt.Sprintf("enc_xh%d", t), xt, wxh),
				b.MatMul(fmt.Sprintf("enc_hh%d", t), h, whh)), bh)
		h = b.Tanh(fmt.Sprintf("enc_h%d", t), pre)
	}
	// Decoder: teacher-forced with the (shifted) target tokens.
	losses := make([]*graph.Node, steps)
	d := h
	for t := 0; t < steps; t++ {
		xt := b.Placeholder(fmt.Sprintf("dec_x%d", t), graph.Static(tensor.Float32, batch, vocab))
		pre := b.BiasAdd(fmt.Sprintf("dec_pre%d", t),
			b.Add(fmt.Sprintf("dec_sum%d", t),
				b.MatMul(fmt.Sprintf("dec_xh%d", t), xt, dxh),
				b.MatMul(fmt.Sprintf("dec_hh%d", t), d, dhh)), dbh)
		d = b.Tanh(fmt.Sprintf("dec_h%d", t), pre)
		logits := b.BiasAdd(fmt.Sprintf("dec_logits%d", t),
			b.MatMul(fmt.Sprintf("dec_out%d", t), d, wOut), bOut)
		labels := b.Placeholder(fmt.Sprintf("dec_y%d", t), graph.Static(tensor.Int32, batch))
		losses[t] = b.SoftmaxXent(fmt.Sprintf("loss%d", t), logits, labels)
	}
	total := losses[0]
	for t := 1; t < steps; t++ {
		total = b.Add(fmt.Sprintf("loss_sum%d", t), total, losses[t])
	}
	loss := b.Scale("loss", total, 1.0/steps)

	vars := []*graph.Node{wxh, whh, bh, dxh, dhh, dbh, wOut, bOut}
	grads, err := graph.Gradients(b, loss, vars)
	if err != nil {
		return nil, err
	}
	var updates []*graph.Node
	for i, v := range vars {
		updates = append(updates, b.ApplySGD(fmt.Sprintf("upd%d", i), v, grads[v], lr))
	}
	step := b.Group("step", updates...)
	b.Prune(append([]*graph.Node{loss, step}, updates...)...)
	g, err := b.Finish()
	if err != nil {
		return nil, err
	}
	store := exec.NewVarStore()
	for _, v := range vars {
		t := tensor.New(tensor.Float32, v.Sig().Shape...)
		tensor.GlorotInit(t, rng)
		if err := store.Create(v.Name(), t); err != nil {
			return nil, err
		}
	}
	feedRng := rand.New(rand.NewSource(seed + 1))
	nextFeeds := func(iter int) map[string]*tensor.Tensor {
		feeds := make(map[string]*tensor.Tensor, 3*steps)
		seqs := make([][]int, batch)
		for i := range seqs {
			seqs[i] = make([]int, steps)
			for t := range seqs[i] {
				seqs[i][t] = feedRng.Intn(vocab)
			}
		}
		oneHot := func(tok func(i int) int) *tensor.Tensor {
			x := tensor.New(tensor.Float32, batch, vocab)
			for i := 0; i < batch; i++ {
				x.Float32s()[i*vocab+tok(i)] = 1
			}
			return x
		}
		for t := 0; t < steps; t++ {
			t := t
			feeds[fmt.Sprintf("enc_x%d", t)] = oneHot(func(i int) int { return seqs[i][t] })
			// Decoder input: previous target token (teacher forcing);
			// target: reversed sequence.
			feeds[fmt.Sprintf("dec_x%d", t)] = oneHot(func(i int) int {
				if t == 0 {
					return 0
				}
				return seqs[i][steps-t]
			})
			y := tensor.New(tensor.Int32, batch)
			for i := 0; i < batch; i++ {
				y.Int32s()[i] = int32(seqs[i][steps-1-t])
			}
			feeds[fmt.Sprintf("dec_y%d", t)] = y
		}
		return feeds
	}
	return &TrainableApp{
		Name: "Seq2Seq", Metric: "perplexity",
		Graph: g, Vars: store,
		LossName: "loss", StepName: "step",
		NextFeeds: nextFeeds,
		CommSpec:  Seq2SeqSpec(),
	}, nil
}

// NewSEApp builds the sentence-embedding task: a tanh-RNN encoder whose
// final state is projected into an embedding trained to classify the
// sequence's latent topic (standing in for the paper's private production
// corpus). The reported metric is loss, as in Figure 10(c).
func NewSEApp(seed int64) (*TrainableApp, error) {
	const (
		batch, vocab, hidden, embed, steps, topics = 16, 24, 48, 24, 4, 6
		lr                                         = 0.2
	)
	rng := rand.New(rand.NewSource(seed))

	b := graph.NewBuilder()
	wxh := b.Variable("wxh", graph.Static(tensor.Float32, vocab, hidden))
	whh := b.Variable("whh", graph.Static(tensor.Float32, hidden, hidden))
	bh := b.Variable("bh", graph.Static(tensor.Float32, hidden))
	wEmb := b.Variable("w_embed", graph.Static(tensor.Float32, hidden, embed))
	wCls := b.Variable("w_cls", graph.Static(tensor.Float32, embed, topics))
	bCls := b.Variable("b_cls", graph.Static(tensor.Float32, topics))
	h := b.Const("h0", tensor.New(tensor.Float32, batch, hidden))
	for t := 0; t < steps; t++ {
		xt := b.Placeholder(fmt.Sprintf("x%d", t), graph.Static(tensor.Float32, batch, vocab))
		pre := b.BiasAdd(fmt.Sprintf("pre%d", t),
			b.Add(fmt.Sprintf("sum%d", t),
				b.MatMul(fmt.Sprintf("xh%d", t), xt, wxh),
				b.MatMul(fmt.Sprintf("hh%d", t), h, whh)), bh)
		h = b.Tanh(fmt.Sprintf("hid%d", t), pre)
	}
	emb := b.Tanh("embed", b.MatMul("embed_mm", h, wEmb))
	logits := b.BiasAdd("logits", b.MatMul("cls", emb, wCls), bCls)
	labels := b.Placeholder("labels", graph.Static(tensor.Int32, batch))
	loss := b.SoftmaxXent("loss", logits, labels)

	vars := []*graph.Node{wxh, whh, bh, wEmb, wCls, bCls}
	grads, err := graph.Gradients(b, loss, vars)
	if err != nil {
		return nil, err
	}
	var updates []*graph.Node
	for i, v := range vars {
		updates = append(updates, b.ApplySGD(fmt.Sprintf("upd%d", i), v, grads[v], lr))
	}
	step := b.Group("step", updates...)
	b.Prune(append([]*graph.Node{loss, step}, updates...)...)
	g, err := b.Finish()
	if err != nil {
		return nil, err
	}
	store := exec.NewVarStore()
	for _, v := range vars {
		t := tensor.New(tensor.Float32, v.Sig().Shape...)
		tensor.GlorotInit(t, rng)
		if err := store.Create(v.Name(), t); err != nil {
			return nil, err
		}
	}
	// Topics are distributions over tokens: sequences drawn from topic c
	// should be classifiable.
	topicTok := make([][]int, topics)
	for c := range topicTok {
		topicTok[c] = make([]int, 4)
		for j := range topicTok[c] {
			topicTok[c][j] = rng.Intn(vocab)
		}
	}
	feedRng := rand.New(rand.NewSource(seed + 1))
	nextFeeds := func(iter int) map[string]*tensor.Tensor {
		feeds := make(map[string]*tensor.Tensor, steps+1)
		labelsT := tensor.New(tensor.Int32, batch)
		toks := make([][]int, batch)
		for i := 0; i < batch; i++ {
			c := feedRng.Intn(topics)
			labelsT.Int32s()[i] = int32(c)
			toks[i] = make([]int, steps)
			for t := range toks[i] {
				toks[i][t] = topicTok[c][feedRng.Intn(len(topicTok[c]))]
			}
		}
		for t := 0; t < steps; t++ {
			x := tensor.New(tensor.Float32, batch, vocab)
			for i := 0; i < batch; i++ {
				x.Float32s()[i*vocab+toks[i][t]] = 1
			}
			feeds[fmt.Sprintf("x%d", t)] = x
		}
		feeds["labels"] = labelsT
		return feeds
	}
	return &TrainableApp{
		Name: "SE", Metric: "loss",
		Graph: g, Vars: store,
		LossName: "loss", StepName: "step",
		NextFeeds: nextFeeds,
		CommSpec:  SESpec(),
	}, nil
}

// CIFARSpec is the communication profile of the CIFAR-10 tutorial model
// (two convolutions, two local FC layers, softmax): ~4.3 MB.
func CIFARSpec() Spec {
	var vars []VarSpec
	vars = append(vars, convVar("conv1", 64, 5, 5, 3)...)
	vars = append(vars, convVar("conv2", 64, 5, 5, 64)...)
	vars = append(vars, fcVar("local3", 2304, 384)...)
	vars = append(vars, fcVar("local4", 384, 192)...)
	vars = append(vars, fcVar("softmax", 192, 10)...)
	return Spec{Name: "CIFAR", Family: "CNN", Vars: vars,
		Compute: TimeModel{BaseMS: 1.4, SatBatch: 128}}
}

// Seq2SeqSpec is the communication profile of the translation model:
// encoder and decoder GRUs plus embedding and output projection over a
// 30k vocabulary.
func Seq2SeqSpec() Spec {
	var vars []VarSpec
	vars = append(vars, gateVars("enc", []string{"update", "reset", "candidate"}, 1024)...)
	vars = append(vars, gateVars("dec", []string{"update", "reset", "candidate"}, 1024)...)
	vars = append(vars, VarSpec{Name: "embedding", Shape: tensor.Shape{30000, 256}})
	vars = append(vars, fcVar("proj", 1024, 30000)...)
	return Spec{Name: "Seq2Seq", Family: "RNN", Vars: vars,
		Compute: TimeModel{BaseMS: 45, SatBatch: 32}}
}

// SESpec is the communication profile of the sentence-embedding task's two
// RNN towers.
func SESpec() Spec {
	var vars []VarSpec
	vars = append(vars, gateVars("tower1", []string{"update", "reset", "candidate"}, 1024)...)
	vars = append(vars, gateVars("tower2", []string{"update", "reset", "candidate"}, 1024)...)
	vars = append(vars, fcVar("embed", 1024, 512)...)
	return Spec{Name: "SE", Family: "RNN", Vars: vars,
		Compute: TimeModel{BaseMS: 28, SatBatch: 32}}
}
