// Package parallel provides the shared chunked worker pool the compute
// kernels run on. The paper's argument (§2) is that once RDMA removes the
// communication bottleneck, training speed is bounded by operator execution;
// this pool lets the hot kernels scale with cores while keeping results
// deterministic: For partitions an index range into fixed chunks and the
// caller guarantees chunks touch disjoint output ranges (or reduces
// chunk-local partials in fixed order), so the schedule never affects the
// result — only the wall clock.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a fixed-size worker pool executing chunked parallel-for loops.
// The zero value is not usable; use NewPool or the package Default.
//
// For never blocks waiting for a free worker: the calling goroutine always
// helps execute chunks, so nested For calls and a saturated pool degrade to
// inline execution instead of deadlocking.
type Pool struct {
	workers int
	tasks   chan *job
	stop    chan struct{}
}

type job struct {
	n, grain, chunks int
	fn               func(lo, hi int)
	next             atomic.Int64
	wg               sync.WaitGroup
}

// NewPool creates a pool with n worker goroutines (minimum 1). The workers
// park on an idle channel receive until Close.
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{
		workers: n,
		tasks:   make(chan *job, n),
		stop:    make(chan struct{}),
	}
	// The caller of For always helps, so n workers would leave one idle;
	// still spawn n so a blocked caller never strands queued chunks.
	for i := 0; i < n; i++ {
		go p.work()
	}
	return p
}

func (p *Pool) work() {
	for {
		select {
		case j := <-p.tasks:
			j.run()
		case <-p.stop:
			return
		}
	}
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Close releases the pool's goroutines. Jobs already dispatched complete
// (the caller of For executes any chunk no worker picks up). Close is not
// required for the package Default pool.
func (p *Pool) Close() { close(p.stop) }

// For executes fn over [0,n) split into chunks of at most grain indices:
// fn(0,grain), fn(grain,2*grain), ... Chunk boundaries depend only on n and
// grain — never on the worker count — so kernels that reduce chunk-local
// partials in chunk order produce bit-identical results on any pool.
//
// fn runs concurrently on up to Workers goroutines (including the caller);
// For returns after every chunk completed. fn must not panic.
func (p *Pool) For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	if chunks <= 1 {
		fn(0, n)
		return
	}
	if p == nil || p.workers <= 1 {
		// Same chunk decomposition as the concurrent path, run sequentially:
		// callers observe identical (lo,hi) splits on every pool size.
		for lo := 0; lo < n; lo += grain {
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
		return
	}
	j := &job{n: n, grain: grain, chunks: chunks, fn: fn}
	j.wg.Add(chunks)
	helpers := p.workers - 1
	if helpers > chunks-1 {
		helpers = chunks - 1
	}
dispatch:
	for i := 0; i < helpers; i++ {
		select {
		case p.tasks <- j:
		default:
			// Pool saturated (e.g. nested For): the caller picks up the
			// slack below.
			break dispatch
		}
	}
	j.run()
	j.wg.Wait()
}

// run claims and executes chunks until none remain. Safe to call from any
// number of goroutines; stale dispatches (job already drained) return
// immediately.
func (j *job) run() {
	for {
		c := int(j.next.Add(1)) - 1
		if c >= j.chunks {
			return
		}
		lo := c * j.grain
		hi := lo + j.grain
		if hi > j.n {
			hi = j.n
		}
		j.fn(lo, hi)
		j.wg.Done()
	}
}

var defaultPool atomic.Pointer[Pool]

// Default returns the shared pool, created on first use with
// runtime.GOMAXPROCS(0) workers.
func Default() *Pool {
	if p := defaultPool.Load(); p != nil {
		return p
	}
	p := NewPool(runtime.GOMAXPROCS(0))
	if !defaultPool.CompareAndSwap(nil, p) {
		p.Close()
	}
	return defaultPool.Load()
}

// SetWorkers resizes the shared pool (minimum 1), returning the resulting
// worker count. In-flight loops on the old pool finish unharmed: their
// callers execute any chunk the retiring workers dropped.
func SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	for {
		old := defaultPool.Load()
		if old != nil && old.workers == n {
			return n
		}
		p := NewPool(n)
		if defaultPool.CompareAndSwap(old, p) {
			if old != nil {
				old.Close()
			}
			return p.workers
		}
		p.Close()
	}
}

// Workers reports the shared pool's current worker count.
func Workers() int { return Default().Workers() }
