package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForCoversRangeExactlyOnce(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, n := range []int{0, 1, 7, 64, 1000, 4097} {
		for _, grain := range []int{1, 3, 64, 5000} {
			hits := make([]int32, n)
			p.For(n, grain, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
					return
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d grain=%d: index %d visited %d times", n, grain, i, h)
				}
			}
		}
	}
}

func TestForChunkBoundariesIndependentOfWorkers(t *testing.T) {
	// Chunk boundaries must depend only on (n, grain) so chunk-ordered
	// reductions are bit-identical on any pool size.
	collect := func(p *Pool) map[[2]int]bool {
		chunks := make(chan [2]int, 64)
		p.For(100, 7, func(lo, hi int) { chunks <- [2]int{lo, hi} })
		close(chunks)
		m := make(map[[2]int]bool)
		for c := range chunks {
			m[c] = true
		}
		return m
	}
	p1 := NewPool(1)
	p4 := NewPool(4)
	defer p1.Close()
	defer p4.Close()
	a, b := collect(p1), collect(p4)
	if len(a) != len(b) {
		t.Fatalf("chunk count differs: %d vs %d", len(a), len(b))
	}
	for c := range a {
		if !b[c] {
			t.Fatalf("chunk %v missing at 4 workers", c)
		}
	}
}

func TestNestedForDoesNotDeadlock(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var total atomic.Int64
	p.For(8, 1, func(lo, hi int) {
		p.For(16, 4, func(l, h int) {
			total.Add(int64(h - l))
		})
	})
	if total.Load() != 8*16 {
		t.Fatalf("nested total = %d, want %d", total.Load(), 8*16)
	}
}

func TestSetWorkers(t *testing.T) {
	orig := Workers()
	defer SetWorkers(orig)
	if got := SetWorkers(3); got != 3 {
		t.Fatalf("SetWorkers(3) = %d", got)
	}
	if Workers() != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", Workers())
	}
	// Resizing mid-flight must not lose chunks.
	var total atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			Default().For(100, 9, func(lo, hi int) { total.Add(int64(hi - lo)) })
		}
	}()
	SetWorkers(1)
	SetWorkers(4)
	<-done
	if total.Load() != 50*100 {
		t.Fatalf("total = %d, want %d", total.Load(), 50*100)
	}
	if got := SetWorkers(0); got != 1 {
		t.Fatalf("SetWorkers(0) = %d, want clamp to 1", got)
	}
}

func TestNilAndSingleWorkerRunInline(t *testing.T) {
	var p *Pool
	var got [][2]int
	p.For(10, 3, func(lo, hi int) { got = append(got, [2]int{lo, hi}) })
	want := [][2]int{{0, 3}, {3, 6}, {6, 9}, {9, 10}}
	if len(got) != len(want) {
		t.Fatalf("nil pool chunks %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("nil pool chunks %v, want %v", got, want)
		}
	}
	if (*Pool)(nil).Workers() != 1 {
		t.Fatal("nil pool workers != 1")
	}
}
