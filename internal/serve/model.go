package serve

import (
	"repro/internal/graph"
	"repro/internal/tensor"
)

// MLPForward is the serving-side twin of the training MLP: the same
// variable set (w1, b1, w2, b2 with the same shapes — the layout contract)
// but forward-only, ending in a softmax instead of the training loss. The
// fixed leading batch dim is the frontend's dispatch geometry: partial
// batches are zero-padded to it.
func MLPForward(batch, in, hidden, classes int) ForwardSpec {
	return ForwardSpec{
		Feed:    "x",
		Fetch:   "probs",
		Batch:   batch,
		Inputs:  in,
		Classes: classes,
		Build: func(b *graph.Builder) error {
			x := b.Placeholder("x", graph.Static(tensor.Float32, batch, in))
			w1 := b.Variable("w1", graph.Static(tensor.Float32, in, hidden))
			b1 := b.Variable("b1", graph.Static(tensor.Float32, hidden))
			w2 := b.Variable("w2", graph.Static(tensor.Float32, hidden, classes))
			b2 := b.Variable("b2", graph.Static(tensor.Float32, classes))
			h := b.ReLU("h", b.BiasAdd("z1", b.MatMul("mm1", x, w1), b1))
			b.Softmax("probs", b.BiasAdd("logits", b.MatMul("mm2", h, w2), b2))
			return b.Err()
		},
	}
}
