package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/rdma"
	"repro/internal/tensor"
)

// affineSpec is the test model: out = x·w + b with w (n×n) and b (n). With
// x all ones and both weights filled with float32(v), every output element
// is exactly (n+1)·v in float32 — so a served row proves which complete
// version produced it, and any torn mixture of versions lands off-grid.
func affineSpec(batch, n int) ForwardSpec {
	return ForwardSpec{
		Feed: "x", Fetch: "out",
		Batch: batch, Inputs: n, Classes: n,
		Build: func(b *graph.Builder) error {
			x := b.Placeholder("x", graph.Static(tensor.Float32, batch, n))
			w := b.Variable("w", graph.Static(tensor.Float32, n, n))
			bias := b.Variable("b", graph.Static(tensor.Float32, n))
			b.BiasAdd("out", b.MatMul("mm", x, w), bias)
			return b.Err()
		},
	}
}

func affineStore(t *testing.T, n int) *exec.VarStore {
	t.Helper()
	vs := exec.NewVarStore()
	if err := vs.Create("w", tensor.New(tensor.Float32, n, n)); err != nil {
		t.Fatal(err)
	}
	if err := vs.Create("b", tensor.New(tensor.Float32, n)); err != nil {
		t.Fatal(err)
	}
	return vs
}

func setVersionWeights(t *testing.T, vs *exec.VarStore, v float32) {
	t.Helper()
	for _, name := range []string{"w", "b"} {
		tt, err := vs.VarTensor(name)
		if err != nil {
			t.Fatal(err)
		}
		tt.Fill(v)
	}
}

func ones(n int) []float32 {
	x := make([]float32, n)
	for i := range x {
		x[i] = 1
	}
	return x
}

// fleet wires a publisher and replicas on one in-process fabric.
type fleet struct {
	fabric *rdma.Fabric
	tdev   *rdma.Device
	vars   *exec.VarStore
	layout *WeightLayout
	pub    *WeightPublisher
	spec   ForwardSpec
	met    *metrics.Serve
	// next mirrors the publisher's staged version counter (every Publish
	// call consumes a version, even a failed one).
	next uint64
}

func newFleet(t *testing.T, batch, n, lanes int) *fleet {
	t.Helper()
	fabric := rdma.NewFabric()
	tdev, err := rdma.CreateDevice(fabric, rdma.Config{Endpoint: "trainer"})
	if err != nil {
		t.Fatal(err)
	}
	vars := affineStore(t, n)
	layout, err := LayoutFor(vars, nil)
	if err != nil {
		t.Fatal(err)
	}
	met := &metrics.Serve{}
	pub, err := NewWeightPublisher(PublisherConfig{
		Dev: tdev, Vars: vars, Layout: layout,
		Lanes: lanes, ChunkBytes: 64, Metrics: met,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &fleet{
		fabric: fabric, tdev: tdev, vars: vars, layout: layout,
		pub: pub, spec: affineSpec(batch, n), met: met,
	}
}

// addReplica spins up one replica endpoint and wires it to the publisher.
func (f *fleet) addReplica(t *testing.T, task string) (*Replica, *rdma.Device) {
	t.Helper()
	dev, err := rdma.CreateDevice(f.fabric, rdma.Config{Endpoint: task})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewReplica(ReplicaConfig{
		Task: task, Dev: dev, Layout: f.layout, Spec: f.spec,
		PublisherTask: "trainer", Metrics: f.met,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.pub.AddReplica(r.Target()); err != nil {
		t.Fatal(err)
	}
	ack, err := f.pub.AckRegion(task)
	if err != nil {
		t.Fatal(err)
	}
	r.SetAckRegion(ack)
	r.Start()
	t.Cleanup(r.Close)
	return r, dev
}

// publishNext bumps the weight fill to the next version and publishes it.
func (f *fleet) publishNext(t *testing.T) uint64 {
	t.Helper()
	f.next++
	setVersionWeights(t, f.vars, float32(f.next))
	v, err := f.pub.Publish()
	if err != nil {
		t.Fatalf("publish v%d: %v", f.next, err)
	}
	if v != f.next {
		t.Fatalf("published v%d, want v%d", v, f.next)
	}
	return v
}

func waitVersion(t *testing.T, r *Replica, v uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for r.ActiveVersion() != v {
		if time.Now().After(deadline) {
			t.Fatalf("replica %s stuck at v%d, want v%d", r.Task(), r.ActiveVersion(), v)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

func TestLayoutSnapshotViewRoundTrip(t *testing.T) {
	vs := affineStore(t, 8)
	setVersionWeights(t, vs, 3)
	layout, err := LayoutFor(vs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if layout.BankBytes() != layout.Payload+versionWordSize {
		t.Fatalf("bank bytes %d, payload %d", layout.BankBytes(), layout.Payload)
	}
	buf := make([]byte, layout.BankBytes())
	if err := layout.Snapshot(vs, buf); err != nil {
		t.Fatal(err)
	}
	view, err := layout.View(buf[:layout.Payload])
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"w", "b"} {
		orig, _ := vs.VarTensor(name)
		got, err := view.VarTensor(name)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(orig) {
			t.Fatalf("%s: view differs from source", name)
		}
	}
	// The view aliases: mutating buf must show through.
	w, _ := view.VarTensor("w")
	buf[layout.Entries[1].Off] = 0xFF // "w" sorts after "b"
	if w.Bytes()[0] != 0xFF {
		t.Fatal("view does not alias the bank buffer")
	}
}

func TestPublishBitIdentical(t *testing.T) {
	f := newFleet(t, 2, 8, 2)
	r, _ := f.addReplica(t, "replica0")
	v := f.publishNext(t)
	waitVersion(t, r, v)

	bank := r.banks[v%2]
	got := bank.mr.Bytes()[:f.layout.Payload]
	want := f.pub.scratch.Bytes()[:f.layout.Payload]
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bank byte %d = %#x, trainer snapshot has %#x", i, got[i], want[i])
		}
	}
	if bank.mr.LoadWord(f.layout.VersionOff()) != v {
		t.Fatalf("bank version word %d, want %d", bank.mr.LoadWord(f.layout.VersionOff()), v)
	}
}

// TestStalenessBoundUnderLoad is the serving gate: continuous publication
// against concurrent query load, asserting every served response (a) is
// bit-identical to the complete snapshot of the version it claims —
// every output element exactly (n+1)·version — and (b) is at most one
// version behind the trainer.
func TestStalenessBoundUnderLoad(t *testing.T) {
	const (
		n        = 8
		batch    = 4
		versions = 40
	)
	f := newFleet(t, batch, n, 2)
	r0, _ := f.addReplica(t, "replica0")
	r1, _ := f.addReplica(t, "replica1")

	table := NewRoutingTable(f.met)
	table.Add(r0)
	table.Add(r1)
	fe, err := NewFrontend(FrontendConfig{
		Table: table, Spec: f.spec, MaxQueue: 64,
		BatchWait: 100 * time.Microsecond,
		TrainerVersion: f.pub.Version, Metrics: f.met,
	})
	if err != nil {
		t.Fatal(err)
	}
	fe.Start()
	defer fe.Close()

	// First version up before load starts, so queries have something.
	waitVersion(t, r0, f.publishNext(t))
	waitVersion(t, r1, 1)

	var stop atomic.Bool
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for q := 0; q < 6; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			x := ones(n)
			for !stop.Load() {
				res, err := fe.Query(x)
				if err != nil {
					if errors.Is(err, ErrOverloaded) || errors.Is(err, ErrNoReplica) {
						continue // load shed is legal; correctness is about served answers
					}
					errCh <- err
					return
				}
				if res.Staleness > 1 {
					errCh <- fmt.Errorf("staleness %d > 1 at served v%d", res.Staleness, res.Version)
					return
				}
				want := float32(n+1) * float32(res.Version)
				for i, got := range res.Probs {
					if got != want {
						errCh <- fmt.Errorf("served v%d row[%d]=%v, want exactly %v (torn read?)", res.Version, i, got, want)
						return
					}
				}
			}
		}()
	}

	for i := 1; i < versions; i++ {
		f.publishNext(t)
	}
	// Let queries observe the final version too.
	time.Sleep(5 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	snap := f.met.Snapshot()
	if snap.QueriesServed == 0 {
		t.Fatal("no queries served under load")
	}
	if snap.StalenessVersionsMax > 1 {
		t.Fatalf("metrics recorded staleness max %d > 1", snap.StalenessVersionsMax)
	}
	if snap.WeightPublishes != versions {
		t.Fatalf("publishes %d, want %d", snap.WeightPublishes, versions)
	}
}

// TestTrainerCrashMidPublication kills the trainer after the payload
// chunks land but before the version word commits: the replica must keep
// serving the last complete version and never swap to the torn bank.
func TestTrainerCrashMidPublication(t *testing.T) {
	const n = 8
	f := newFleet(t, 2, n, 1)
	r, _ := f.addReplica(t, "replica0")
	waitVersion(t, r, f.publishNext(t))

	f.pub.crashBeforeCommit = func(string) { f.tdev.Close() }
	setVersionWeights(t, f.vars, 2)
	if _, err := f.pub.Publish(); err == nil {
		t.Fatal("publish should fail when the trainer dies before commit")
	}

	// The torn bank (v2 targets bank 0) holds new payload but no version
	// word; the replica must not swap.
	time.Sleep(2 * time.Millisecond)
	if got := r.banks[0].mr.LoadWord(f.layout.VersionOff()); got != 0 {
		t.Fatalf("torn bank committed version %d, want none", got)
	}
	if v := r.ActiveVersion(); v != 1 {
		t.Fatalf("replica at v%d after trainer crash, want v1", v)
	}
	ref, ok := r.Acquire()
	if !ok {
		t.Fatal("replica stopped serving after trainer crash")
	}
	defer ref.Release()
	x, _ := tensor.FromFloat32(tensor.Shape{2, n}, ones(2*n))
	out, err := r.Infer(ref, x)
	if err != nil {
		t.Fatal(err)
	}
	want := float32(n+1) * 1
	for i, got := range out.Float32s() {
		if got != want {
			t.Fatalf("row[%d]=%v, want %v: replica served torn weights", i, got, want)
		}
	}
}

// TestReplicaRestartReadmission covers the replica-death path: the replica
// dies, is removed, restarts under the same task name with fresh banks,
// and a Republish catches it up to the current version.
func TestReplicaRestartReadmission(t *testing.T) {
	const n = 8
	f := newFleet(t, 2, n, 1)
	r, dev := f.addReplica(t, "replica0")
	waitVersion(t, r, f.publishNext(t))
	waitVersion(t, r, f.publishNext(t))

	// Death: swap loop stops, endpoint unregisters, publisher drops it.
	r.Close()
	dev.Close()
	f.pub.RemoveReplica("replica0")

	// Trainer keeps going while the replica is down: with the dead replica
	// removed from the fan-out, v3 commits against the (empty) survivor set.
	if v := f.publishNext(t); v != 3 {
		t.Fatalf("publish while replica down: v%d, want v3", v)
	}

	// Restart under the same name; readmission republishes the current
	// version into the fresh banks.
	r2, _ := f.addReplica(t, "replica0")
	v, err := f.pub.Republish("replica0")
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 {
		t.Fatalf("republished v%d, want v3", v)
	}
	waitVersion(t, r2, 3)

	ref, ok := r2.Acquire()
	if !ok {
		t.Fatal("readmitted replica not serving")
	}
	defer ref.Release()
	x, _ := tensor.FromFloat32(tensor.Shape{2, n}, ones(2*n))
	out, err := r2.Infer(ref, x)
	if err != nil {
		t.Fatal(err)
	}
	want := float32(n+1) * 3
	for i, got := range out.Float32s() {
		if got != want {
			t.Fatalf("row[%d]=%v, want %v after readmission", i, got, want)
		}
	}
	// And it rejoins the normal publication flow.
	waitVersion(t, r2, f.publishNext(t))
}

// TestOverloadShed pins the admission contract: with the queue full, Query
// sheds immediately with the typed ErrOverloaded instead of blocking.
func TestOverloadShed(t *testing.T) {
	met := &metrics.Serve{}
	table := NewRoutingTable(met)
	spec := affineSpec(4, 8)
	fe, err := NewFrontend(FrontendConfig{
		Table: table, Spec: spec, MaxQueue: 2, Metrics: met,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Not started: no consumer, so the queue fills deterministically.
	const queries = 5
	var shed atomic.Int64
	var wg sync.WaitGroup
	results := make(chan error, queries)
	start := time.Now()
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := fe.Query(ones(8))
			if errors.Is(err, ErrOverloaded) {
				shed.Add(1)
			}
			results <- err
		}()
	}
	// The three that don't fit must shed quickly (bounded time), without
	// waiting on the two that are queued.
	deadline := time.After(2 * time.Second)
	for i := 0; i < queries-2; i++ {
		select {
		case <-results:
		case <-deadline:
			t.Fatal("shed queries did not fail in bounded time")
		}
	}
	if got := shed.Load(); got != queries-2 {
		t.Fatalf("shed %d queries, want %d", got, queries-2)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("shedding took %v", elapsed)
	}
	if met.Snapshot().QueriesShed != queries-2 {
		t.Fatalf("shed counter %d, want %d", met.Snapshot().QueriesShed, queries-2)
	}
	// Draining the queue with no replicas fails the queued pair with the
	// typed no-replica error, not a hang.
	fe.Start()
	defer fe.Close()
	wg.Wait()
	close(results)
	for err := range results {
		if err == nil {
			t.Fatal("query succeeded with no replicas")
		}
		if !errors.Is(err, ErrOverloaded) && !errors.Is(err, ErrNoReplica) {
			t.Fatalf("unexpected error: %v", err)
		}
	}
}

// TestRoutingAroundDeadAndSwapping pins Pick's preferences.
func TestRoutingAroundDeadAndSwapping(t *testing.T) {
	f := newFleet(t, 2, 8, 1)
	r0, _ := f.addReplica(t, "replica0")
	r1, _ := f.addReplica(t, "replica1")
	table := NewRoutingTable(f.met)
	table.Add(r0)
	table.Add(r1)

	// Warming replicas are unroutable.
	if got := table.Pick(); got != nil {
		t.Fatalf("picked warming replica %s", got.Task())
	}
	v := f.publishNext(t)
	waitVersion(t, r0, v)
	waitVersion(t, r1, v)

	if table.Pick() == nil {
		t.Fatal("no pick with two serving replicas")
	}
	table.MarkDead("replica0")
	for i := 0; i < 8; i++ {
		r := table.Pick()
		if r == nil {
			t.Fatal("no pick with one live replica")
		}
		if r.Task() != "replica1" {
			t.Fatalf("picked dead replica %s", r.Task())
		}
	}
	table.MarkDead("replica1")
	if table.Pick() != nil {
		t.Fatal("picked from a fully dead table")
	}
	if f.met.Snapshot().ActiveReplicas != 0 {
		t.Fatalf("active gauge %d, want 0", f.met.Snapshot().ActiveReplicas)
	}
	// Readmission under the same name routes again.
	table.Add(r1)
	if r := table.Pick(); r == nil || r.Task() != "replica1" {
		t.Fatal("readmitted replica not routable")
	}
}

// TestPublisherBankHeldTimeout: a reader that never releases the old bank
// stalls the publisher at the staleness bound rather than letting it
// overwrite live-read memory.
func TestPublisherBankHeldTimeout(t *testing.T) {
	f := newFleet(t, 2, 8, 1)
	f.pub.cfg.PublishTimeout = 50 * time.Millisecond
	r, _ := f.addReplica(t, "replica0")
	waitVersion(t, r, f.publishNext(t))

	ref, ok := r.Acquire() // pin v1's bank and never release
	if !ok {
		t.Fatal("acquire failed")
	}
	f.publishNext(t) // v2 fills the other bank; replica swaps but can't drain v1's bank
	waitVersion(t, r, 2)

	setVersionWeights(t, f.vars, 3)
	if _, err := f.pub.Publish(); !errors.Is(err, ErrBankHeld) {
		t.Fatalf("publish v3 over a held bank: err=%v, want ErrBankHeld", err)
	}
	ref.Release()
	// Released: the drain finishes, the ack lands, and publication resumes.
	setVersionWeights(t, f.vars, 4)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := f.pub.Publish(); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("publish never recovered after release: %v", err)
		}
	}
}
