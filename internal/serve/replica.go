package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/rdma"
	"repro/internal/tensor"
)

// ForwardSpec describes the forward-only inference graph a replica runs
// against its active weight bank. Build must create Variables named and
// shaped exactly like the shared layout's entries — the executors' stores
// alias bank bytes, so a mismatched variable fails construction, not
// inference.
type ForwardSpec struct {
	// Build assembles placeholders, variables, and the fetch node.
	Build func(b *graph.Builder) error
	// Feed is the input placeholder's name; Fetch the output node's.
	Feed, Fetch string
	// Batch is the fixed inference batch (rows per run); Inputs the
	// feature width; Classes the output width.
	Batch, Inputs, Classes int
}

// ReplicaConfig parameterizes NewReplica.
type ReplicaConfig struct {
	// Task is the replica's fabric endpoint name; Dev its device.
	Task string
	Dev  *rdma.Device
	// Layout is the shared weight layout.
	Layout *WeightLayout
	// Spec is the forward graph run against the active bank.
	Spec ForwardSpec
	// PublisherTask is the endpoint release acks are written to; Ack the
	// publisher-side region they land in (set via SetAckRegion when the
	// fleet wires up).
	PublisherTask string
	// Workers sizes each bank executor's scheduler pool (default 2).
	Workers int
	// SwapPoll is the version-word poll interval (default 50µs).
	SwapPoll time.Duration
	// Metrics receives swap counters (optional); Hists op latency.
	Metrics *metrics.Serve
	Hists   *metrics.Set
}

// bank is one of the replica's two weight buffers: registered memory the
// publisher writes into, a store whose tensors alias it, and a forward
// executor reading through that store. readers guards the publisher's
// overwrite — a bank is released only at refcount zero.
type bank struct {
	mr      *rdma.MemRegion
	vars    *exec.VarStore
	ex      *exec.Executor
	readers atomic.Int64
}

// Replica owns two weight banks and serves forward passes from whichever
// holds the newest complete version. The swap loop polls the banks'
// version words, atomically retargets serving at a committed new version,
// drains the old bank's readers, and posts the release ack that lets the
// publisher reuse it.
type Replica struct {
	cfg ReplicaConfig
	g   *graph.Graph

	banks [2]*bank
	// active is the served version (0 = warming; bank = active%2).
	active atomic.Uint64
	// swapping is 1 while the previous bank drains — the router
	// deprioritizes a replica in this window.
	swapping atomic.Int32

	ackScratch *rdma.MemRegion

	ackMu  sync.Mutex
	ackDst rdma.RemoteRegion
	hasAck bool

	runMu sync.Mutex // executors are single-flight; serialize inference
	iter  atomic.Int64

	startOnce sync.Once
	stopOnce  sync.Once
	stopCh    chan struct{}
	wg        sync.WaitGroup
}

// NewReplica registers the replica's two banks on its device and builds
// the per-bank forward executors (frozen: a graph with variable updates is
// rejected — serving memory is owned by the publisher).
func NewReplica(cfg ReplicaConfig) (*Replica, error) {
	if cfg.Dev == nil || cfg.Layout == nil || cfg.Spec.Build == nil {
		return nil, fmt.Errorf("serve: replica needs Dev, Layout, Spec: %w", rdma.ErrBadConfig)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.SwapPoll <= 0 {
		cfg.SwapPoll = 50 * time.Microsecond
	}
	gb := graph.NewBuilder()
	if err := cfg.Spec.Build(gb); err != nil {
		return nil, fmt.Errorf("serve: building forward graph: %w", err)
	}
	g, err := gb.Finish()
	if err != nil {
		return nil, fmt.Errorf("serve: forward graph: %w", err)
	}
	r := &Replica{cfg: cfg, g: g, stopCh: make(chan struct{})}
	for i := range r.banks {
		mr, err := cfg.Dev.AllocateMemRegion(cfg.Layout.BankBytes())
		if err != nil {
			return nil, fmt.Errorf("serve: bank %d: %w", i, err)
		}
		vars, err := cfg.Layout.View(mr.Bytes()[:cfg.Layout.Payload])
		if err != nil {
			return nil, err
		}
		ex, err := exec.New(g, exec.Config{
			Workers: cfg.Workers, Vars: vars, Frozen: true, Hists: cfg.Hists,
		})
		if err != nil {
			return nil, fmt.Errorf("serve: bank %d executor: %w", i, err)
		}
		r.banks[i] = &bank{mr: mr, vars: vars, ex: ex}
	}
	r.ackScratch, err = cfg.Dev.AllocateMemRegion(versionWordSize)
	if err != nil {
		return nil, fmt.Errorf("serve: ack scratch: %w", err)
	}
	return r, nil
}

// Target returns the descriptor set the publisher writes through.
func (r *Replica) Target() ReplicaTarget {
	return ReplicaTarget{
		Task:  r.cfg.Task,
		Banks: [2]rdma.RemoteRegion{r.banks[0].mr.Descriptor(), r.banks[1].mr.Descriptor()},
	}
}

// SetAckRegion points release acks at the publisher's ack words.
func (r *Replica) SetAckRegion(dst rdma.RemoteRegion) {
	r.ackMu.Lock()
	defer r.ackMu.Unlock()
	r.ackDst, r.hasAck = dst, true
}

// Start launches the swap loop; idempotent.
func (r *Replica) Start() {
	r.startOnce.Do(func() {
		r.wg.Add(1)
		go r.swapLoop()
	})
}

// Close stops the swap loop (the device is owned by the fleet and closed
// separately); idempotent.
func (r *Replica) Close() {
	r.stopOnce.Do(func() { close(r.stopCh) })
	r.wg.Wait()
}

// ActiveVersion returns the served weight version (0 while warming).
func (r *Replica) ActiveVersion() uint64 { return r.active.Load() }

// Swapping reports whether the replica is draining its previous bank.
func (r *Replica) Swapping() bool { return r.swapping.Load() != 0 }

// Task returns the replica's endpoint name.
func (r *Replica) Task() string { return r.cfg.Task }

// Spec returns the forward spec the replica serves.
func (r *Replica) Spec() ForwardSpec { return r.cfg.Spec }

// BankRef pins one bank at one version for the duration of a batch.
type BankRef struct {
	r       *Replica
	bank    *bank
	Version uint64
	once    sync.Once
}

// Release drops the pin; idempotent. Until every ref is released the
// publisher cannot overwrite the bank, which is what makes every served
// response bit-identical to a complete published snapshot.
func (ref *BankRef) Release() {
	ref.once.Do(func() { ref.bank.readers.Add(-1) })
}

// Acquire pins the active bank. ok is false while the replica is warming
// (nothing published yet).
func (r *Replica) Acquire() (*BankRef, bool) {
	for {
		v := r.active.Load()
		if v == 0 {
			return nil, false
		}
		b := r.banks[v%2]
		b.readers.Add(1)
		if r.active.Load() == v {
			return &BankRef{r: r, bank: b, Version: v}, true
		}
		// Swap landed between the load and the pin; retry against the new
		// active bank.
		b.readers.Add(-1)
	}
}

// Infer runs one forward batch against a pinned bank.
func (r *Replica) Infer(ref *BankRef, x *tensor.Tensor) (*tensor.Tensor, error) {
	r.runMu.Lock()
	defer r.runMu.Unlock()
	out, err := ref.bank.ex.Run(int(r.iter.Add(1)), map[string]*tensor.Tensor{r.cfg.Spec.Feed: x}, r.cfg.Spec.Fetch)
	if err != nil {
		return nil, err
	}
	return out[r.cfg.Spec.Fetch], nil
}

// swapLoop is the replica's version watcher: poll both banks' version
// words, swap to a committed newer version (the word is written only after
// the payload, so a committed word implies a complete snapshot), drain the
// bank the previous version lived in, and release it to the publisher.
func (r *Replica) swapLoop() {
	defer r.wg.Done()
	for {
		select {
		case <-r.stopCh:
			return
		default:
		}
		cur := r.active.Load()
		var next uint64
		for b := 0; b < 2; b++ {
			w := r.banks[b].mr.LoadWord(r.cfg.Layout.VersionOff())
			// A bank only ever holds versions congruent to its index; an
			// inconsistent word is a partially seen publish — skip it.
			if w > cur && int(w%2) == b && w > next {
				next = w
			}
		}
		if next == 0 {
			select {
			case <-r.stopCh:
				return
			case <-time.After(r.cfg.SwapPoll):
			}
			continue
		}
		r.active.Store(next)
		if r.cfg.Metrics != nil {
			r.cfg.Metrics.AddBankSwap()
		}
		if cur > 0 {
			r.releaseBank(cur)
		}
	}
}

// releaseBank waits for the bank that held version v to drain, then posts
// the one-sided release ack the publisher's next overwrite waits on.
func (r *Replica) releaseBank(v uint64) {
	r.swapping.Store(1)
	defer r.swapping.Store(0)
	old := r.banks[v%2]
	for old.readers.Load() > 0 {
		select {
		case <-r.stopCh:
			return
		case <-time.After(r.cfg.SwapPoll):
		}
	}
	r.ackMu.Lock()
	dst, ok := r.ackDst, r.hasAck
	r.ackMu.Unlock()
	if !ok || r.cfg.PublisherTask == "" {
		return
	}
	ch, err := r.cfg.Dev.GetChannel(r.cfg.PublisherTask, 0)
	if err != nil {
		return // publisher gone; it re-wires acks on readmission
	}
	r.ackScratch.StoreWord(0, v)
	// Best effort: a lost ack stalls the publisher's next write into this
	// bank until its publish deadline, never the replica's serving path.
	_ = ch.MemcpySync(0, r.ackScratch, int(v%2)*versionWordSize, dst, versionWordSize, rdma.OpWrite)
}
