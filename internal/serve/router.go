package serve

import (
	"sync"

	"repro/internal/metrics"
)

// RoutingTable load-balances query batches across replicas. Pick prefers
// the serving replica with the fewest outstanding batches, skips replicas
// that are dead (heartbeat expiry) or warming (no version yet), and
// deprioritizes ones mid-swap — a swapping replica is draining its old
// bank, so steering new work elsewhere shortens the drain and with it the
// publisher's wait.
type RoutingTable struct {
	mu      sync.Mutex
	entries map[string]*routeEntry
	met     *metrics.Serve
}

type routeEntry struct {
	r           *Replica
	dead        bool
	outstanding int
}

// NewRoutingTable builds an empty table; met may be nil.
func NewRoutingTable(met *metrics.Serve) *RoutingTable {
	return &RoutingTable{entries: make(map[string]*routeEntry), met: met}
}

// Add admits a replica (or readmits a restarted one under the same task
// name, replacing the dead entry).
func (rt *RoutingTable) Add(r *Replica) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.entries[r.Task()] = &routeEntry{r: r}
	rt.publishActiveLocked()
}

// MarkDead evicts a replica from routing without forgetting it existed;
// the heartbeat detector's expiry callback lands here.
func (rt *RoutingTable) MarkDead(task string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if e, ok := rt.entries[task]; ok {
		e.dead = true
	}
	rt.publishActiveLocked()
}

// Remove drops a replica entirely.
func (rt *RoutingTable) Remove(task string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	delete(rt.entries, task)
	rt.publishActiveLocked()
}

// Alive reports whether the task is present and not marked dead.
func (rt *RoutingTable) Alive(task string) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	e, ok := rt.entries[task]
	return ok && !e.dead
}

// publishActiveLocked refreshes the live-replica gauge.
func (rt *RoutingTable) publishActiveLocked() {
	if rt.met == nil {
		return
	}
	n := 0
	for _, e := range rt.entries {
		if !e.dead {
			n++
		}
	}
	rt.met.SetActiveReplicas(n)
}

// Pick selects a replica for one batch: least outstanding work among live,
// serving, non-swapping replicas; if every live replica is mid-swap, the
// least loaded of those (serving from the new bank is still correct during
// a drain — deprioritizing is a latency choice, not a safety one). Returns
// nil when no live replica has a version to serve.
func (rt *RoutingTable) Pick() *Replica {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	var best, bestSwapping *routeEntry
	for _, e := range rt.entries {
		if e.dead || e.r.ActiveVersion() == 0 {
			continue
		}
		if e.r.Swapping() {
			if bestSwapping == nil || e.outstanding < bestSwapping.outstanding {
				bestSwapping = e
			}
			continue
		}
		if best == nil || e.outstanding < best.outstanding {
			best = e
		}
	}
	if best == nil {
		best = bestSwapping
	}
	if best == nil {
		return nil
	}
	best.outstanding++
	return best.r
}

// Done returns a batch slot taken by Pick.
func (rt *RoutingTable) Done(task string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if e, ok := rt.entries[task]; ok && e.outstanding > 0 {
		e.outstanding--
	}
}
