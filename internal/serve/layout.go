// Package serve is the inference serving plane: a trainer-side
// WeightPublisher that snapshots a variable store every K steps and
// publishes each version to N inference replicas over the emulated fabric's
// one-sided writes, replica-side forward-only executors that read the
// published weights zero-copy out of registered memory, and a query
// frontend with request batching, admission control, and a routing table
// that balances load across replicas.
//
// The transfer discipline is the paper's §3.2 static placement, applied
// one-to-many: both ends know every weight tensor's shape ahead of time, so
// a replica preallocates two weight banks (double buffering) and the
// publisher writes payload bytes first and an 8-byte version tag last —
// the same flag-after-payload invariant as the training path's striped
// sends. A replica swaps to version v+1 only after the version word reads
// v+1, and the version word is written only after every payload chunk's
// completion, so a torn weight set is never observable. The publisher may
// not overwrite a bank until the replica has both swapped away from it and
// drained its readers (a one-sided release ack), which bounds staleness by
// construction: a serving replica is never more than one version behind
// the trainer.
package serve

import (
	"fmt"
	"sort"

	"repro/internal/exec"
	"repro/internal/tensor"
)

// versionWordSize is the bank's trailing version tag: an 8-byte word
// written last, read atomically on both ends.
const versionWordSize = 8

// alignUp rounds n up to the fabric's 8-byte word size, so every weight
// entry and the version word sit on atomic store boundaries.
func alignUp(n int) int { return (n + 7) &^ 7 }

// WeightEntry is one variable's place in the published blob.
type WeightEntry struct {
	Name  string
	DType tensor.DType
	Shape tensor.Shape
	// Off is the entry's byte offset in the bank payload; Size its length.
	Off, Size int
}

// WeightLayout is the deterministic wire layout of one model's weights:
// entries in sorted-name order, each 8-aligned, followed by the version
// word. Publisher and every replica build the identical layout from the
// same (name, dtype, shape) set, which is what lets the transfer be
// one-sided — no per-version metadata ever crosses the wire.
type WeightLayout struct {
	Entries []WeightEntry
	// Payload is the 8-aligned byte size of all entries.
	Payload int
}

// LayoutFor builds the layout for the named variables of a store (all of
// them when names is nil). The order is sorted by name regardless of the
// caller's order, so any two ends holding the same variable set agree.
func LayoutFor(vs *exec.VarStore, names []string) (*WeightLayout, error) {
	if vs == nil {
		return nil, fmt.Errorf("serve: nil variable store")
	}
	if names == nil {
		names = vs.Names()
	}
	names = append([]string(nil), names...)
	sort.Strings(names)
	l := &WeightLayout{}
	off := 0
	for _, name := range names {
		t, err := vs.VarTensor(name)
		if err != nil {
			return nil, fmt.Errorf("serve: layout: %w", err)
		}
		size := t.Shape().NumElements() * t.DType().Size()
		l.Entries = append(l.Entries, WeightEntry{
			Name: name, DType: t.DType(), Shape: t.Shape().Clone(),
			Off: off, Size: size,
		})
		off += alignUp(size)
	}
	if off == 0 {
		return nil, fmt.Errorf("serve: layout has no variables")
	}
	l.Payload = off
	return l, nil
}

// BankBytes is the size of one replica weight bank: the payload plus the
// trailing version word.
func (l *WeightLayout) BankBytes() int { return l.Payload + versionWordSize }

// VersionOff is the byte offset of the bank's version word.
func (l *WeightLayout) VersionOff() int { return l.Payload }

// Snapshot copies the store's current weight bytes into dst following the
// layout. dst must hold at least Payload bytes. This is the publisher's
// single staging copy; everything downstream is one-sided writes out of
// registered memory.
func (l *WeightLayout) Snapshot(vs *exec.VarStore, dst []byte) error {
	if len(dst) < l.Payload {
		return fmt.Errorf("serve: snapshot buffer %d short of payload %d", len(dst), l.Payload)
	}
	for _, e := range l.Entries {
		t, err := vs.VarTensor(e.Name)
		if err != nil {
			return fmt.Errorf("serve: snapshot: %w", err)
		}
		b := t.Bytes()
		if len(b) != e.Size {
			return fmt.Errorf("serve: snapshot: %s is %dB, layout says %dB", e.Name, len(b), e.Size)
		}
		copy(dst[e.Off:e.Off+e.Size], b)
	}
	return nil
}

// View builds a variable store whose tensors alias buf in place — the
// replica's zero-copy read side. buf is one bank's payload bytes; the
// returned store's tensors observe publisher writes directly, which is
// exactly why a replica must hold a reader refcount on the bank while an
// inference batch runs against it.
func (l *WeightLayout) View(buf []byte) (*exec.VarStore, error) {
	if len(buf) < l.Payload {
		return nil, fmt.Errorf("serve: view buffer %d short of payload %d", len(buf), l.Payload)
	}
	vs := exec.NewVarStore()
	for _, e := range l.Entries {
		t, err := tensor.FromBytes(e.DType, e.Shape, buf[e.Off:e.Off+e.Size])
		if err != nil {
			return nil, fmt.Errorf("serve: view %s: %w", e.Name, err)
		}
		if err := vs.Create(e.Name, t); err != nil {
			return nil, err
		}
	}
	return vs, nil
}
