package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/exec"
	"repro/internal/metrics"
	"repro/internal/rdma"
)

// Publisher-side errors.
var (
	// ErrBankHeld is returned when a replica never releases the bank a
	// publication targets within the publish deadline: the staleness bound
	// forbids overwriting a bank a reader may still observe.
	ErrBankHeld = errors.New("serve: target bank not released in time")
)

// defaultChunkBytes splits a bank payload into stripe chunks; one chunk is
// one work request, chunks round-robin the publisher's QP lanes and each
// lane's chunks post under one doorbell.
const defaultChunkBytes = 128 << 10

// ReplicaTarget is everything the publisher needs to reach one replica's
// weight banks: the fabric endpoint and the two bank regions. It is
// produced by Replica.Target and crosses the control plane (an RPC during
// fleet setup), after which every publication is purely one-sided.
type ReplicaTarget struct {
	Task  string
	Banks [2]rdma.RemoteRegion
}

// PublisherConfig parameterizes NewWeightPublisher.
type PublisherConfig struct {
	// Dev is the trainer-side device publications are posted from.
	Dev *rdma.Device
	// Vars is the trainer's variable store (the snapshot source).
	Vars *exec.VarStore
	// Layout is the shared weight layout (LayoutFor over the same set).
	Layout *WeightLayout
	// Lanes stripes each bank write across this many QP lanes (default 1,
	// clamped to the device's QPsPerPeer).
	Lanes int
	// ChunkBytes is the stripe chunk size (default 128 KiB).
	ChunkBytes int
	// PublishTimeout bounds one Publish call end to end: release-ack wait
	// plus the writes themselves (default 5s).
	PublishTimeout time.Duration
	// Metrics / Hists receive publication counters and latency (optional).
	Metrics *metrics.Serve
	Hists   *metrics.Set
}

// WeightPublisher pushes weight versions to a replica fleet. One Publish
// call snapshots the variable store once into registered scratch, then
// writes the blob to every replica's target bank concurrently — payload
// chunks first, the 8-byte version word last, exactly the training path's
// flag-after-payload discipline.
type WeightPublisher struct {
	cfg     PublisherConfig
	scratch *rdma.MemRegion // staged snapshot + version word

	mu       sync.Mutex
	replicas map[string]*replicaState
	// staged is the last version snapshotted into scratch; committed the
	// last version every replica received in full. A failed fan-out leaves
	// staged ahead of committed: the version number is consumed (its bytes
	// may sit in some banks) but the trainer's externally visible version
	// — the one staleness is measured against — only advances on success.
	staged    uint64
	committed uint64

	// crashBeforeCommit, when set (tests only), runs after a replica's
	// payload chunks complete but before its version word is written — the
	// trainer-crash-mid-publication window.
	crashBeforeCommit func(task string)
}

// replicaState is the publisher's view of one replica.
type replicaState struct {
	target ReplicaTarget
	// ack is the local region the replica's release writes land in: word b
	// holds the highest version released from bank b (0 before the bank's
	// first release).
	ack *rdma.MemRegion
	// published is the last version this replica received (0 = none);
	// written[b] the version bank b currently holds in this incarnation
	// (0 = never filled, so the first write into it needs no release).
	published uint64
	written   [2]uint64
}

// NewWeightPublisher validates the config and registers the staging
// scratch on the publisher device.
func NewWeightPublisher(cfg PublisherConfig) (*WeightPublisher, error) {
	if cfg.Dev == nil || cfg.Vars == nil || cfg.Layout == nil {
		return nil, fmt.Errorf("serve: publisher needs Dev, Vars, Layout: %w", rdma.ErrBadConfig)
	}
	if cfg.Lanes < 1 {
		cfg.Lanes = 1
	}
	if cfg.ChunkBytes <= 0 {
		cfg.ChunkBytes = defaultChunkBytes
	}
	if cfg.PublishTimeout <= 0 {
		cfg.PublishTimeout = 5 * time.Second
	}
	scratch, err := cfg.Dev.AllocateMemRegion(cfg.Layout.BankBytes())
	if err != nil {
		return nil, fmt.Errorf("serve: publisher scratch: %w", err)
	}
	return &WeightPublisher{
		cfg:      cfg,
		scratch:  scratch,
		replicas: make(map[string]*replicaState),
	}, nil
}

// Version returns the last fully committed publication (0 before the
// first): the newest version every replica has received end to end, which
// is the reference point staleness is measured against. A version that is
// still fanning out is not yet the trainer's version — no replica can be
// blamed for not serving it.
func (p *WeightPublisher) Version() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.committed
}

// AckRegion returns the descriptor and word offset a replica's release
// acks must target. Registered (or re-registered, on restart) before the
// replica is published to.
func (p *WeightPublisher) AckRegion(task string) (rdma.RemoteRegion, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	r, ok := p.replicas[task]
	if !ok {
		return rdma.RemoteRegion{}, fmt.Errorf("serve: unknown replica %q", task)
	}
	return r.ack.Descriptor(), nil
}

// AddReplica registers (or, after a restart, replaces) a replica target.
// A replaced target starts from empty banks: both release acks reset to
// the free sentinel and its published version to 0.
func (p *WeightPublisher) AddReplica(t ReplicaTarget) error {
	if t.Task == "" {
		return fmt.Errorf("serve: replica target without task: %w", rdma.ErrBadConfig)
	}
	for b, bank := range t.Banks {
		if int(bank.Size) < p.cfg.Layout.BankBytes() {
			return fmt.Errorf("serve: replica %s bank %d is %dB, need %dB: %w",
				t.Task, b, bank.Size, p.cfg.Layout.BankBytes(), rdma.ErrBadConfig)
		}
	}
	ack, err := p.cfg.Dev.AllocateMemRegion(2 * versionWordSize)
	if err != nil {
		return fmt.Errorf("serve: ack region for %s: %w", t.Task, err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	r, ok := p.replicas[t.Task]
	if !ok {
		r = &replicaState{ack: ack}
		p.replicas[t.Task] = r
	} else {
		// Restarted incarnation: fresh ack words, fresh banks. The old ack
		// region is abandoned (the dead incarnation can no longer write it).
		r.ack = ack
	}
	r.target = t
	r.published = 0
	r.written = [2]uint64{}
	r.ack.StoreWord(0, 0)
	r.ack.StoreWord(versionWordSize, 0)
	return nil
}

// RemoveReplica drops a replica from the publication set (a detector
// eviction): the trainer keeps publishing to the survivors, and a dead
// replica's unreleased banks can no longer stall anyone. A readmitted
// incarnation re-registers through AddReplica.
func (p *WeightPublisher) RemoveReplica(task string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.replicas, task)
}

// Publish snapshots the variable store as the next version and writes it
// to every registered replica concurrently. It returns the published
// version; a replica that fails (crashed mid-publication, bank never
// released) is reported in err but does not block the others — the caller
// evicts it through the routing table while the survivors serve on.
func (p *WeightPublisher) Publish() (uint64, error) {
	start := time.Now()
	p.mu.Lock()
	v := p.staged + 1
	if err := p.stageLocked(v); err != nil {
		p.mu.Unlock()
		return 0, err
	}
	p.staged = v
	targets := p.replicaListLocked()
	p.mu.Unlock()

	var wg sync.WaitGroup
	errs := make([]error, len(targets))
	for i, r := range targets {
		wg.Add(1)
		go func(i int, r *replicaState) {
			defer wg.Done()
			errs[i] = p.writeVersion(r, v)
		}(i, r)
	}
	wg.Wait()

	var firstErr error
	for i, err := range errs {
		if err != nil && firstErr == nil {
			firstErr = fmt.Errorf("serve: publishing v%d to %s: %w", v, targets[i].target.Task, err)
		}
	}
	if firstErr == nil {
		p.mu.Lock()
		p.committed = v
		p.mu.Unlock()
		if p.cfg.Metrics != nil {
			p.cfg.Metrics.AddPublish(p.cfg.Layout.Payload * len(targets))
		}
	}
	if p.cfg.Hists != nil {
		p.cfg.Hists.Hist(metrics.HistServePublishNs).Record(time.Since(start).Nanoseconds())
	}
	return v, firstErr
}

// Republish pushes the current (already staged) version to one replica —
// the catch-up path for a readmitted restart. The fresh target's banks are
// empty, so the write needs no release wait.
func (p *WeightPublisher) Republish(task string) (uint64, error) {
	p.mu.Lock()
	v := p.staged
	r, ok := p.replicas[task]
	p.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("serve: republish to unknown replica %q", task)
	}
	if v == 0 {
		return 0, nil // nothing published yet; the replica warms up normally
	}
	if err := p.writeVersion(r, v); err != nil {
		return 0, fmt.Errorf("serve: republishing v%d to %s: %w", v, task, err)
	}
	if p.cfg.Metrics != nil {
		p.cfg.Metrics.AddRepublish(p.cfg.Layout.Payload)
	}
	return v, nil
}

// stageLocked copies the store into scratch and stamps the staged version
// word. Caller holds p.mu.
func (p *WeightPublisher) stageLocked(v uint64) error {
	if err := p.cfg.Layout.Snapshot(p.cfg.Vars, p.scratch.Bytes()); err != nil {
		return err
	}
	p.scratch.StoreWord(p.cfg.Layout.VersionOff(), v)
	return nil
}

// replicaListLocked snapshots the replica set. Caller holds p.mu.
func (p *WeightPublisher) replicaListLocked() []*replicaState {
	out := make([]*replicaState, 0, len(p.replicas))
	for _, r := range p.replicas {
		out = append(out, r)
	}
	return out
}

// writeVersion performs one replica's publication of version v: wait for
// the target bank's release ack, stripe the payload across lanes (one
// doorbell batch per lane), then write the version word last.
func (p *WeightPublisher) writeVersion(r *replicaState, v uint64) error {
	deadline := time.Now().Add(p.cfg.PublishTimeout)
	bank := int(v % 2)
	if err := p.waitBankFree(r, bank, deadline); err != nil {
		return err
	}

	lanes, err := p.lanesFor(r.target.Task)
	if err != nil {
		return err
	}

	// Payload chunks round-robin the lanes; each lane's chunks enter the
	// send queue under one doorbell. Completions join before the version
	// word is posted — the flag-after-payload invariant.
	payload := p.cfg.Layout.Payload
	reqs := make([][]rdma.MemcpyReq, len(lanes))
	nchunks := 0
	done := make(chan error, payload/p.cfg.ChunkBytes+2)
	for off := 0; off < payload; off += p.cfg.ChunkBytes {
		n := p.cfg.ChunkBytes
		if off+n > payload {
			n = payload - off
		}
		lane := nchunks % len(lanes)
		reqs[lane] = append(reqs[lane], rdma.MemcpyReq{
			LocalOff: off, Local: p.scratch,
			RemoteOff: off, Remote: r.target.Banks[bank],
			Size: n, Dir: rdma.OpWrite,
			CB: func(err error) { done <- err },
		})
		nchunks++
	}
	for lane, batch := range reqs {
		if len(batch) == 0 {
			continue
		}
		if err := lanes[lane].MemcpyBatch(batch); err != nil {
			return err
		}
	}
	for i := 0; i < nchunks; i++ {
		if err := <-done; err != nil {
			return err
		}
	}

	// All payload chunks are in remote memory; commit the version word.
	if p.crashBeforeCommit != nil {
		p.crashBeforeCommit(r.target.Task)
	}
	off := p.cfg.Layout.VersionOff()
	if err := lanes[0].MemcpySync(off, p.scratch, off, r.target.Banks[bank], versionWordSize, rdma.OpWrite); err != nil {
		return err
	}
	p.mu.Lock()
	r.published = v
	r.written[bank] = v
	p.mu.Unlock()
	return nil
}

// waitBankFree blocks until the replica has released whatever committed
// version the target bank currently holds (the replica swapped past it and
// its readers drained). A bank never filled in this incarnation needs no
// release — that covers the first two publications and every readmitted
// restart. This wait is the staleness bound's enforcement point: refusing
// to overwrite an unreleased bank is exactly what keeps a pinned reader's
// weights intact and the fleet within one version of the trainer.
func (p *WeightPublisher) waitBankFree(r *replicaState, bank int, deadline time.Time) error {
	p.mu.Lock()
	need := r.written[bank]
	p.mu.Unlock()
	if need == 0 {
		return nil
	}
	for {
		if ackd := r.ack.LoadWord(bank * versionWordSize); ackd >= need {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%w: bank %d of %s holds v%d unreleased",
				ErrBankHeld, bank, r.target.Task, need)
		}
		time.Sleep(20 * time.Microsecond)
	}
}

// lanesFor resolves the publisher's QP lanes to one replica.
func (p *WeightPublisher) lanesFor(task string) ([]*rdma.Channel, error) {
	lanes := make([]*rdma.Channel, 0, p.cfg.Lanes)
	for i := 0; i < p.cfg.Lanes; i++ {
		ch, err := p.cfg.Dev.GetChannel(task, i)
		if err != nil {
			if i > 0 && errors.Is(err, rdma.ErrBadConfig) {
				break // device has fewer QPs per peer than requested lanes
			}
			return nil, err
		}
		lanes = append(lanes, ch)
	}
	return lanes, nil
}
