package serve

import (
	"errors"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/tensor"
)

// ErrOverloaded is the admission-control shed: the frontend's bounded
// queue is full and the query was rejected immediately rather than queued
// into unbounded latency. Callers retry with backoff or drop.
var ErrOverloaded = errors.New("serve: overloaded, query shed")

// ErrNoReplica means the routing table had no live, serving replica when
// the batch dispatched (fleet warming up or fully dead).
var ErrNoReplica = errors.New("serve: no routable replica")

// Result is one query's answer.
type Result struct {
	// Probs is the query's output row (Classes wide).
	Probs []float32
	// Version is the weight version that produced it; Staleness how many
	// versions behind the trainer that was at response time (the serving
	// gate asserts ≤ 1).
	Version   uint64
	Staleness int64
}

// FrontendConfig parameterizes NewFrontend.
type FrontendConfig struct {
	// Table routes batches to replicas.
	Table *RoutingTable
	// Spec fixes the batch geometry: dispatched batches are padded to
	// Spec.Batch rows (the placeholder's static leading dim) and results
	// are Spec.Classes wide.
	Spec ForwardSpec
	// MaxQueue bounds admitted-but-undispatched queries (default 1024);
	// beyond it Query sheds with ErrOverloaded.
	MaxQueue int
	// BatchWait is how long a partial batch waits for co-riders before
	// dispatching anyway (default 200µs).
	BatchWait time.Duration
	// TrainerVersion reports the newest published version, for staleness
	// accounting (typically WeightPublisher.Version). Nil disables it.
	TrainerVersion func() uint64
	// Metrics/Hists receive shed, served, and latency accounting.
	Metrics *metrics.Serve
	Hists   *metrics.Set
}

type pending struct {
	x    []float32
	enq  time.Time
	done chan outcome
}

type outcome struct {
	res Result
	err error
}

// Frontend is the query entry point: a bounded admission queue feeding a
// batcher that packs queries into fixed-geometry inference batches and
// routes each batch through the table.
type Frontend struct {
	cfg FrontendConfig
	q   chan *pending

	batchHist *metrics.Histogram
	queueHist *metrics.Histogram
	sizeHist  *metrics.Histogram

	startOnce sync.Once
	stopOnce  sync.Once
	stopCh    chan struct{}
	wg        sync.WaitGroup
}

// NewFrontend validates geometry and builds the frontend (not yet running;
// call Start).
func NewFrontend(cfg FrontendConfig) (*Frontend, error) {
	if cfg.Table == nil {
		return nil, errors.New("serve: frontend needs a routing table")
	}
	if cfg.Spec.Batch <= 0 || cfg.Spec.Inputs <= 0 || cfg.Spec.Classes <= 0 {
		return nil, errors.New("serve: frontend spec needs positive Batch/Inputs/Classes")
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 1024
	}
	if cfg.BatchWait <= 0 {
		cfg.BatchWait = 200 * time.Microsecond
	}
	f := &Frontend{
		cfg:    cfg,
		q:      make(chan *pending, cfg.MaxQueue),
		stopCh: make(chan struct{}),
	}
	if cfg.Hists != nil {
		f.batchHist = cfg.Hists.Hist(metrics.HistServeBatchNs)
		f.queueHist = cfg.Hists.Hist(metrics.HistServeQueueNs)
		f.sizeHist = cfg.Hists.Hist(metrics.HistServeBatchSize)
	}
	return f, nil
}

// Start launches the batcher; idempotent.
func (f *Frontend) Start() {
	f.startOnce.Do(func() {
		f.wg.Add(1)
		go f.batchLoop()
	})
}

// Close stops the batcher; queries still in the queue fail with
// ErrNoReplica-free shutdown errors only if waited on after Close.
func (f *Frontend) Close() {
	f.stopOnce.Do(func() { close(f.stopCh) })
	f.wg.Wait()
}

// Query admits one query and blocks for its result. Admission is
// non-blocking: a full queue sheds immediately with ErrOverloaded, which
// bounds the time any caller can spend waiting on an overloaded fleet.
func (f *Frontend) Query(x []float32) (Result, error) {
	if len(x) != f.cfg.Spec.Inputs {
		return Result{}, errors.New("serve: query width mismatch")
	}
	p := &pending{x: x, enq: time.Now(), done: make(chan outcome, 1)}
	select {
	case f.q <- p:
	default:
		if f.cfg.Metrics != nil {
			f.cfg.Metrics.AddShed()
		}
		return Result{}, ErrOverloaded
	}
	select {
	case out := <-p.done:
		return out.res, out.err
	case <-f.stopCh:
		return Result{}, errors.New("serve: frontend closed")
	}
}

// batchLoop drains the queue into fixed-size batches: dispatch as soon as
// Spec.Batch queries are waiting, or after BatchWait with whatever arrived.
func (f *Frontend) batchLoop() {
	defer f.wg.Done()
	for {
		var first *pending
		select {
		case <-f.stopCh:
			return
		case first = <-f.q:
		}
		batch := []*pending{first}
		timer := time.NewTimer(f.cfg.BatchWait)
	fill:
		for len(batch) < f.cfg.Spec.Batch {
			select {
			case <-f.stopCh:
				timer.Stop()
				f.fail(batch, errors.New("serve: frontend closed"))
				return
			case p := <-f.q:
				batch = append(batch, p)
			case <-timer.C:
				break fill
			}
		}
		timer.Stop()
		f.dispatch(batch)
	}
}

// dispatch routes one batch: pick a replica, pin its active bank, run the
// padded batch, and demux rows back to their waiters.
func (f *Frontend) dispatch(batch []*pending) {
	r := f.cfg.Table.Pick()
	if r == nil {
		if f.cfg.Metrics != nil {
			f.cfg.Metrics.AddRoutingReject()
		}
		f.fail(batch, ErrNoReplica)
		return
	}
	defer f.cfg.Table.Done(r.Task())
	ref, ok := r.Acquire()
	if !ok {
		// Replica went warming between Pick and Acquire (restart); shed the
		// batch rather than spin.
		if f.cfg.Metrics != nil {
			f.cfg.Metrics.AddRoutingReject()
		}
		f.fail(batch, ErrNoReplica)
		return
	}
	defer ref.Release()

	spec := f.cfg.Spec
	x := tensor.New(tensor.Float32, spec.Batch, spec.Inputs)
	xs := x.Float32s()
	for i, p := range batch {
		copy(xs[i*spec.Inputs:(i+1)*spec.Inputs], p.x)
	}
	start := time.Now()
	out, err := r.Infer(ref, x)
	if err != nil {
		f.fail(batch, err)
		return
	}
	elapsed := time.Since(start)

	var staleness int64
	if f.cfg.TrainerVersion != nil {
		if tv := f.cfg.TrainerVersion(); tv > ref.Version {
			staleness = int64(tv - ref.Version)
		}
	}
	probs := out.Float32s()
	for i, p := range batch {
		row := make([]float32, spec.Classes)
		copy(row, probs[i*spec.Classes:(i+1)*spec.Classes])
		p.done <- outcome{res: Result{Probs: row, Version: ref.Version, Staleness: staleness}}
		if f.queueHist != nil {
			f.queueHist.Record(time.Since(p.enq).Nanoseconds())
		}
	}
	if f.cfg.Metrics != nil {
		f.cfg.Metrics.AddServed(len(batch))
		f.cfg.Metrics.ObserveStaleness(staleness)
	}
	if f.batchHist != nil {
		f.batchHist.Record(elapsed.Nanoseconds())
	}
	if f.sizeHist != nil {
		f.sizeHist.Record(int64(len(batch)))
	}
}

func (f *Frontend) fail(batch []*pending, err error) {
	for _, p := range batch {
		p.done <- outcome{err: err}
	}
}
