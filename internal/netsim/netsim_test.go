package netsim

import (
	"math"
	"testing"

	"repro/internal/distributed"
	"repro/internal/models"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(5, func() { order = append(order, 2) })
	e.At(1, func() { order = append(order, 1) })
	e.At(5, func() { order = append(order, 3) }) // FIFO tie-break
	e.At(-1, func() { order = append(order, 0) })
	e.Run()
	want := []int{0, 1, 2, 3}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v", order)
		}
	}
	if e.Now() != 5 {
		t.Errorf("Now = %v", e.Now())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(10, func() {
		e.At(7, func() { at = e.Now() })
	})
	e.Run()
	if at != 17 {
		t.Errorf("nested event at %v, want 17", at)
	}
}

func TestEngineHalt(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(1, func() { ran++; e.Halt() })
	e.At(2, func() { ran++ })
	e.Run()
	if ran != 1 {
		t.Errorf("ran %d events after halt", ran)
	}
}

func TestResourceSerializes(t *testing.T) {
	var r Resource
	s1, e1 := r.Use(0, 10)
	s2, e2 := r.Use(0, 5)
	if s1 != 0 || e1 != 10 || s2 != 10 || e2 != 15 {
		t.Errorf("resource: [%v,%v] [%v,%v]", s1, e1, s2, e2)
	}
	s3, _ := r.Use(100, 1)
	if s3 != 100 {
		t.Errorf("late request started at %v", s3)
	}
}

func TestPoolPicksEarliest(t *testing.T) {
	p := NewPool(2)
	p.Use(0, 10)
	p.Use(0, 2)
	s, _ := p.Use(0, 1) // second resource free at 2
	if s != 2 {
		t.Errorf("pool start = %v, want 2", s)
	}
	if NewPool(0) == nil {
		t.Error("zero pool should clamp to one resource")
	}
}

func TestTransferMonotoneInSize(t *testing.T) {
	for _, kind := range []distributed.Kind{distributed.GRPCTCP, distributed.GRPCRDMA,
		distributed.RDMA, distributed.RDMACopy} {
		p := ParamsFor(kind, false)
		prev := 0.0
		for size := int64(1 << 10); size <= 1<<30; size <<= 2 {
			tt := p.TransferUS(size)
			if tt <= prev {
				t.Errorf("%v: TransferUS not increasing at %d", kind, size)
			}
			prev = tt
		}
	}
}

func TestMechanismOrderingAlways(t *testing.T) {
	// zerocp <= cp <= gRPC.RDMA (micro path) and zerocp fastest overall.
	for size := int64(1 << 10); size <= 1<<30; size <<= 1 {
		z := MicroIterUS(distributed.RDMA, size)
		cp := MicroIterUS(distributed.RDMACopy, size)
		gr := MicroIterUS(distributed.GRPCRDMA, size)
		tc := MicroIterUS(distributed.GRPCTCP, size)
		if !(z < cp && z < gr && z < tc) {
			t.Errorf("size %d: zerocp %v not fastest (cp %v grpcrdma %v tcp %v)",
				size, z, cp, gr, tc)
		}
	}
}

// ratioRange scans the Figure 8 size axis and returns min/max speedup of
// RDMA.zerocp over the given mechanism.
func ratioRange(kind distributed.Kind) (lo, hi float64) {
	lo, hi = math.Inf(1), 0
	for size := int64(1 << 10); size <= 1<<30; size <<= 1 {
		r := MicroIterUS(kind, size) / MicroIterUS(distributed.RDMA, size)
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	return lo, hi
}

// TestFigure8Ranges asserts the §5.1 speedup claims: 1.7–61× over gRPC.TCP,
// 1.3–14× over gRPC.RDMA, 1.2–1.8× over RDMA.cp.
func TestFigure8Ranges(t *testing.T) {
	if lo, hi := ratioRange(distributed.GRPCTCP); lo < 1.4 || lo > 2.2 || hi < 40 || hi > 90 {
		t.Errorf("gRPC.TCP ratios [%.2f, %.2f], paper reports [1.7, 61]", lo, hi)
	}
	if lo, hi := ratioRange(distributed.GRPCRDMA); lo < 1.1 || lo > 1.6 || hi < 8 || hi > 20 {
		t.Errorf("gRPC.RDMA ratios [%.2f, %.2f], paper reports [1.3, 14]", lo, hi)
	}
	if lo, hi := ratioRange(distributed.RDMACopy); lo < 1.05 || lo > 1.45 || hi < 1.4 || hi > 2.1 {
		t.Errorf("RDMA.cp ratios [%.2f, %.2f], paper reports [1.2, 1.8]", lo, hi)
	}
}

func improvementOver(spec models.Spec, batch int, base distributed.Kind) float64 {
	r := NewClusterSim(8, distributed.RDMA, false)
	b := NewClusterSim(8, base, false)
	return r.ThroughputSamplesPerSec(spec, batch)/b.ThroughputSamplesPerSec(spec, batch) - 1
}

// TestFigure9Shape asserts the structural claims of §5.2: RDMA beats both
// gRPC baselines on every benchmark; the communication-bound models
// (AlexNet, VGG, FCN-5) improve the most; the gaps shrink once compute
// dominates at large batch sizes.
func TestFigure9Shape(t *testing.T) {
	for _, spec := range models.All() {
		for _, batch := range []int{1, 8, 32, 64} {
			if imp := improvementOver(spec, batch, distributed.GRPCRDMA); imp <= 0 {
				t.Errorf("%s b=%d: no improvement over gRPC.RDMA (%.2f)", spec.Name, batch, imp)
			}
			if imp := improvementOver(spec, batch, distributed.GRPCTCP); imp <= 0 {
				t.Errorf("%s b=%d: no improvement over gRPC.TCP (%.2f)", spec.Name, batch, imp)
			}
		}
	}
	// Communication-bound models gain more than compute-bound ones.
	vgg, _ := models.ByName("VGGNet-16")
	alex, _ := models.ByName("AlexNet")
	fcn, _ := models.ByName("FCN-5")
	incep, _ := models.ByName("Inception-v3")
	gru, _ := models.ByName("GRU")
	for _, heavyComm := range []models.Spec{vgg, alex, fcn} {
		for _, heavyComp := range []models.Spec{incep, gru} {
			if improvementOver(heavyComm, 32, distributed.GRPCRDMA) <=
				improvementOver(heavyComp, 32, distributed.GRPCRDMA) {
				t.Errorf("%s should gain more than %s", heavyComm.Name, heavyComp.Name)
			}
		}
	}
	// Gaps shrink as compute dominates (batch 64 vs 32) for the
	// compute-bound benchmarks, §5.2's observation.
	for _, name := range []string{"Inception-v3", "LSTM", "GRU"} {
		spec, _ := models.ByName(name)
		if improvementOver(spec, 64, distributed.GRPCRDMA) >=
			improvementOver(spec, 32, distributed.GRPCRDMA) {
			t.Errorf("%s: gap did not shrink at batch 64", name)
		}
	}
	// Magnitudes: paper reports 65%..169% average improvements over
	// gRPC.RDMA; our model lands each benchmark in a broad band around
	// that range.
	for _, spec := range models.All() {
		imp := improvementOver(spec, 32, distributed.GRPCRDMA)
		if imp < 0.2 || imp > 4.0 {
			t.Errorf("%s: improvement %.0f%% outside the plausible band", spec.Name, imp*100)
		}
	}
}

// TestFigure11Shape asserts the scalability claims: near-linear scaling for
// the compute-bound benchmarks, RDMA ≥ gRPC.RDMA everywhere, LSTM and
// Inception beating Local from 2 servers, and VGG the worst scaler.
func TestFigure11Shape(t *testing.T) {
	vgg, _ := models.ByName("VGGNet-16")
	incep, _ := models.ByName("Inception-v3")
	lstm, _ := models.ByName("LSTM")
	for _, spec := range []models.Spec{vgg, incep, lstm} {
		prev := 0.0
		for _, n := range []int{1, 2, 4, 8} {
			r := NewClusterSim(n, distributed.RDMA, false).ThroughputSamplesPerSec(spec, 32)
			g := NewClusterSim(n, distributed.GRPCRDMA, false).ThroughputSamplesPerSec(spec, 32)
			if r <= g {
				t.Errorf("%s n=%d: RDMA (%.0f) not faster than gRPC.RDMA (%.0f)", spec.Name, n, r, g)
			}
			if r <= prev {
				t.Errorf("%s: throughput not increasing at n=%d", spec.Name, n)
			}
			prev = r
		}
	}
	// Compute-bound models scale well: >4.5x on 8 servers vs 1.
	for _, spec := range []models.Spec{incep, lstm} {
		one := NewClusterSim(1, distributed.RDMA, false).ThroughputSamplesPerSec(spec, 32)
		eight := NewClusterSim(8, distributed.RDMA, false).ThroughputSamplesPerSec(spec, 32)
		if eight/one < 4.5 {
			t.Errorf("%s: 8-server speedup %.2f, want > 4.5", spec.Name, eight/one)
		}
		// And they beat the Local baseline from 2 servers (§5.2).
		two := NewClusterSim(2, distributed.RDMA, false).ThroughputSamplesPerSec(spec, 32)
		if two <= LocalThroughputSamplesPerSec(spec, 32) {
			t.Errorf("%s: 2 servers (%.0f) should beat Local (%.0f)",
				spec.Name, two, LocalThroughputSamplesPerSec(spec, 32))
		}
	}
	// VGG scales worst (communication bound).
	vggSpeed := NewClusterSim(8, distributed.RDMA, false).ThroughputSamplesPerSec(vgg, 32) /
		NewClusterSim(1, distributed.RDMA, false).ThroughputSamplesPerSec(vgg, 32)
	lstmSpeed := NewClusterSim(8, distributed.RDMA, false).ThroughputSamplesPerSec(lstm, 32) /
		NewClusterSim(1, distributed.RDMA, false).ThroughputSamplesPerSec(lstm, 32)
	if vggSpeed >= lstmSpeed {
		t.Errorf("VGG (%.2f) should scale worse than LSTM (%.2f)", vggSpeed, lstmSpeed)
	}
}

// TestFigure12Shape asserts the memory-copy ablation: zero-copy always
// wins, gains bounded (paper: up to 21% at batch 8), smallest for the
// compute-bound GRU.
func TestFigure12Shape(t *testing.T) {
	var worst, best float64 = 1e9, 0
	var bestName string
	for _, spec := range models.All() {
		z := NewClusterSim(8, distributed.RDMA, false).IterationUS(spec, 8)
		cp := NewClusterSim(8, distributed.RDMACopy, false).IterationUS(spec, 8)
		imp := cp/z - 1
		if imp <= 0 {
			t.Errorf("%s: zero-copy did not win (%.1f%%)", spec.Name, imp*100)
		}
		if imp < worst {
			worst = imp
		}
		if imp > best {
			best, bestName = imp, spec.Name
		}
	}
	if best > 0.30 {
		t.Errorf("largest zero-copy gain %.0f%% (%s) exceeds the paper's ~21%% scale", best*100, bestName)
	}
	if worst > 0.10 {
		t.Errorf("smallest gain %.0f%% should be small (compute-bound models)", worst*100)
	}
}

// TestTable3Shape asserts GPUDirect improvements: always non-negative,
// near zero for Inception-v3, largest for FCN-5, ordering of the paper's
// Table 3 broadly preserved.
func TestTable3Shape(t *testing.T) {
	imp := make(map[string]float64)
	for _, spec := range models.All() {
		no := NewClusterSim(8, distributed.RDMA, false).IterationUS(spec, 32)
		yes := NewClusterSim(8, distributed.RDMA, true).IterationUS(spec, 32)
		imp[spec.Name] = no/yes - 1
		if imp[spec.Name] < 0 {
			t.Errorf("%s: GPUDirect slowed things down (%.1f%%)", spec.Name, imp[spec.Name]*100)
		}
	}
	if imp["Inception-v3"] > 0.15 {
		t.Errorf("Inception GDR gain %.0f%%, paper reports ~0.4%%", imp["Inception-v3"]*100)
	}
	if imp["FCN-5"] < imp["Inception-v3"] || imp["FCN-5"] < imp["GRU"] {
		t.Error("FCN-5 should benefit most from GPUDirect (paper: 54%)")
	}
	if imp["AlexNet"] < 0.15 || imp["AlexNet"] > 0.8 {
		t.Errorf("AlexNet GDR gain %.0f%%, paper reports 32%%", imp["AlexNet"]*100)
	}
}

// TestTable3AbsoluteTimes sanity-checks the simulated minibatch times
// against the paper's Table 3 RDMA column (ms at batch 32, 8 workers):
// within a factor of two.
func TestTable3AbsoluteTimes(t *testing.T) {
	paper := map[string]float64{
		"AlexNet": 178.5, "FCN-5": 157.0, "VGGNet-16": 690.1,
		"Inception-v3": 172.5, "LSTM": 84.4, "GRU": 62.3,
	}
	for _, spec := range models.All() {
		got := NewClusterSim(8, distributed.RDMA, false).IterationUS(spec, 32) / 1000
		want := paper[spec.Name]
		if got < want/2 || got > want*2 {
			t.Errorf("%s: simulated %.1f ms, paper measured %.1f ms (want within 2x)",
				spec.Name, got, want)
		}
	}
}

func TestQPSweepImprovesThroughput(t *testing.T) {
	// The §3.1 design point: more QPs/CQ-pollers per peer improve
	// communication parallelism (up to saturation).
	spec, _ := models.ByName("AlexNet")
	one := NewClusterSim(8, distributed.RDMA, false)
	one.CPUThreads = 1
	four := NewClusterSim(8, distributed.RDMA, false)
	if one.ThroughputSamplesPerSec(spec, 32) >= four.ThroughputSamplesPerSec(spec, 32) {
		t.Error("4 QPs should beat 1 QP on a staging-heavy model")
	}
}

func TestLoopbackCheaperThanWire(t *testing.T) {
	spec, _ := models.ByName("LSTM")
	normal := NewClusterSim(1, distributed.RDMA, false)
	slow := NewClusterSim(1, distributed.RDMA, false)
	slow.LoopbackGBps = 1
	if normal.IterationUS(spec, 32) >= slow.IterationUS(spec, 32) {
		t.Error("loopback bandwidth should matter for single-server runs")
	}
}

// TestBandwidthSensitivity asserts the paper's premise: the faster the
// link, the larger the zero-copy mechanism's relative advantage (the RPC
// stack's software costs stop hiding behind the wire).
func TestBandwidthSensitivity(t *testing.T) {
	spec, _ := models.ByName("AlexNet")
	prev := 0.0
	for _, gbps := range []float64{1.2, 3, 6, 12, 24} {
		g := NewClusterSim(8, distributed.GRPCRDMA, false)
		g.Params.WireGBps = gbps
		r := NewClusterSim(8, distributed.RDMA, false)
		r.Params.WireGBps = gbps
		adv := g.IterationUS(spec, 32) / r.IterationUS(spec, 32)
		if adv < prev {
			t.Errorf("advantage shrank at %v GB/s: %.2f after %.2f", gbps, adv, prev)
		}
		prev = adv
	}
	if prev < 2 {
		t.Errorf("advantage at 24 GB/s = %.2f, expected substantial", prev)
	}
}

// TestBalancedPlacementHelpsHotspots: VGG's 392 MB fc6 makes the
// round-robin shard a NIC hotspot; largest-first balanced placement must
// not be slower, and for the skewed models it should clearly win.
func TestBalancedPlacementHelpsHotspots(t *testing.T) {
	for _, name := range []string{"VGGNet-16", "AlexNet", "FCN-5"} {
		spec, _ := models.ByName(name)
		rr := NewClusterSim(8, distributed.RDMA, false)
		bal := NewClusterSim(8, distributed.RDMA, false)
		bal.Placement = Balanced
		rrT := rr.IterationUS(spec, 32)
		balT := bal.IterationUS(spec, 32)
		// Balanced cannot split tensors, so it only roughly matches
		// round-robin when one tensor dominates.
		if balT > rrT*1.08 {
			t.Errorf("%s: balanced (%.1fms) much slower than round-robin (%.1fms)",
				name, balT/1000, rrT/1000)
		}
		part := NewClusterSim(8, distributed.RDMA, false)
		part.Placement = Partitioned
		partT := part.IterationUS(spec, 32)
		if partT >= rrT {
			t.Errorf("%s: partitioned (%.1fms) not faster than round-robin (%.1fms)",
				name, partT/1000, rrT/1000)
		}
	}
	// Balanced placement spreads bytes near-evenly.
	spec, _ := models.ByName("VGGNet-16")
	c := NewClusterSim(8, distributed.RDMA, false)
	c.Placement = Balanced
	shards := c.shardOf(spec.TensorSizes())
	load := make([]int64, 8)
	for vi, s := range spec.TensorSizes() {
		load[shards[vi]] += s
	}
	var min, max int64 = 1 << 62, 0
	for _, l := range load {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	// fc6 alone is ~75% of VGG, so perfect balance is impossible; the
	// point is that no shard holds more than that single largest tensor
	// plus change.
	if max > 450<<20 {
		t.Errorf("balanced placement left a %d MB shard", max>>20)
	}
}
