package netsim

import (
	"fmt"

	"repro/internal/distributed"
)

// Params is the calibrated cost model of one communication mechanism for a
// single tensor transfer. Times are microseconds, sizes bytes, bandwidths
// GB/s (10⁹ bytes per second to keep arithmetic simple).
type Params struct {
	Name string
	// FixedUS is the per-message software cost (op dispatch, rendezvous,
	// rpc framing).
	FixedUS float64
	// WireGBps is the link payload bandwidth and WireLatUS the one-way
	// latency (propagation + NIC processing).
	WireGBps  float64
	WireLatUS float64
	// SendStagesGBps / RecvStagesGBps are size-proportional software
	// stages (serialization, memcpy) on each side.
	SendStagesGBps []float64
	RecvStagesGBps []float64
	// Pipelined marks mechanisms whose stages overlap the wire at fragment
	// granularity (TensorFlow's RDMA channel streams 64 KB ring slots), so
	// throughput is governed by the slowest stage instead of the sum.
	Pipelined bool
	// FragBytes/PerFragUS model fragmentation overhead (ring slots, TCP
	// segmentation bursts).
	FragBytes int
	PerFragUS float64
	// HostStageGBps, when > 0, adds a host-memory staging copy on both
	// ends (GPU-resident tensors without GPUDirect, §3.5); 0 disables it.
	HostStageGBps float64
	// StoreAndForward marks mechanisms whose sender stage must complete
	// before the wire transfer begins (RDMA.cp posts the write only after
	// the bounce-buffer copy finishes, §5.1).
	StoreAndForward bool
	// DegradeBytes, when > 0, scales size-proportional costs by
	// (1 + size/DegradeBytes): the RPC paths degrade superlinearly on very
	// large messages (buffer regrowth, ring-buffer thrashing, flow-control
	// stalls — TensorFlow's gRPC.RDMA path outright crashes past 1 GB, §5.1).
	DegradeBytes int64
}

// factor returns the large-message degradation multiplier for size.
func (p Params) factor(size int64) float64 {
	if p.DegradeBytes <= 0 {
		return 1
	}
	return 1 + float64(size)/float64(p.DegradeBytes)
}

func us(size int64, gbps float64) float64 {
	if gbps <= 0 {
		return 0
	}
	return float64(size) / gbps / 1e3 // bytes / (GB/s) = ns*... -> µs
}

// SendOverheadUS returns the sender-side time before the payload is on the
// wire (fixed cost plus non-pipelined sender stages).
func (p Params) SendOverheadUS(size int64) float64 {
	t := p.FixedUS
	if !p.Pipelined {
		f := p.factor(size)
		for _, bw := range p.SendStagesGBps {
			t += us(size, bw) * f
		}
		if p.HostStageGBps > 0 {
			t += us(size, p.HostStageGBps)
		}
	}
	return t
}

// RecvOverheadUS returns the receiver-side time after the payload left the
// wire.
func (p Params) RecvOverheadUS(size int64) float64 {
	if p.Pipelined {
		return 0
	}
	t := 0.0
	f := p.factor(size)
	for _, bw := range p.RecvStagesGBps {
		t += us(size, bw) * f
	}
	if p.HostStageGBps > 0 {
		t += us(size, p.HostStageGBps)
	}
	return t
}

// WireUS returns the time the payload occupies the wire, including
// fragmentation overhead; for pipelined mechanisms the slowest stage
// becomes the effective bandwidth (the other stages hide under it).
func (p Params) WireUS(size int64) float64 {
	bw := p.WireGBps
	if p.Pipelined {
		for _, s := range p.SendStagesGBps {
			if s < bw {
				bw = s
			}
		}
		for _, s := range p.RecvStagesGBps {
			if s < bw {
				bw = s
			}
		}
		if p.HostStageGBps > 0 && p.HostStageGBps < bw {
			bw = p.HostStageGBps
		}
		bw /= p.factor(size)
	}
	t := us(size, bw)
	if p.FragBytes > 0 {
		frags := (size + int64(p.FragBytes) - 1) / int64(p.FragBytes)
		if frags < 1 {
			frags = 1
		}
		t += float64(frags) * p.PerFragUS
	}
	return t
}

// TransferUS is the uncontended end-to-end time of one tensor transfer.
func (p Params) TransferUS(size int64) float64 {
	return p.SendOverheadUS(size) + p.WireLatUS + p.WireUS(size) + p.RecvOverheadUS(size)
}

// The calibrated mechanism table. Reference hardware: 100 Gbps IB
// (12.5 GB/s line rate, ~2 µs latency), DDR4 streaming memcpy ~16 GB/s,
// protobuf-style serialization ~1.6 GB/s, IPoIB TCP ~1.4 GB/s effective
// for gRPC's large-message pattern.
const (
	ibGBps   = 12.0
	ibLatUS  = 2.0
	copyGBps = 16.0
	serGBps  = 1.6
	tcpGBps  = 1.0
	// Unpinned GPU<->host staging runs well below PCIe line rate.
	pcieGBps = 3.5
)

// ParamsFor returns the calibrated model of a mechanism. gpuDirect applies
// to the device mechanisms only: false stages GPU tensors through host
// memory (the default in §5, as on the paper's testbed GPUDirect was
// restricted), true removes the staging copies (Table 3).
func ParamsFor(kind distributed.Kind, gpuDirect bool) Params {
	hostStage := pcieGBps
	if gpuDirect {
		hostStage = 0
	}
	switch kind {
	case distributed.GRPCTCP:
		return Params{
			Name:    kind.String(),
			FixedUS: 55, WireGBps: tcpGBps, WireLatUS: 15,
			SendStagesGBps: []float64{serGBps, copyGBps},
			RecvStagesGBps: []float64{serGBps, copyGBps},
			FragBytes:      64 << 10, PerFragUS: 1.0,
			HostStageGBps: hostStage,
			DegradeBytes:  384 << 20,
		}
	case distributed.GRPCRDMA:
		return Params{
			Name:    kind.String(),
			FixedUS: 28, WireGBps: ibGBps, WireLatUS: ibLatUS,
			// Ring-slot streaming pipelines the four copies with the wire;
			// the bounce-buffer copies bound effective bandwidth.
			SendStagesGBps: []float64{2.0},
			RecvStagesGBps: []float64{2.0},
			Pipelined:      true,
			FragBytes:      64 << 10, PerFragUS: 0.6,
			HostStageGBps: hostStage,
			DegradeBytes:  1 << 30,
		}
	case distributed.RDMA:
		return Params{
			Name:    kind.String(),
			FixedUS: 2, WireGBps: ibGBps, WireLatUS: ibLatUS,
			HostStageGBps: hostStage,
		}
	case distributed.RDMACopy:
		return Params{
			Name:     kind.String(),
			FixedUS:  22, // bounce-buffer allocation and registration lookup
			WireGBps: ibGBps, WireLatUS: ibLatUS,
			SendStagesGBps:  []float64{copyGBps},
			HostStageGBps:   hostStage,
			StoreAndForward: true,
		}
	default:
		panic(fmt.Sprintf("netsim: unknown mechanism %v", kind))
	}
}

// RuntimeOverheadUS is the per-iteration graph-execution overhead (session
// dispatch, scheduling) shared by every mechanism; the micro-benchmark's
// small-message ratios are governed by it.
const RuntimeOverheadUS = 90.0
