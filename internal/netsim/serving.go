package netsim

import (
	"fmt"
	"math"

	"repro/internal/distributed"
)

// This file prices the serving plane at population scale: a trainer
// publishing weight versions to N inference replicas over one-sided RDMA
// (internal/serve) while a large user population offers queries against the
// fleet. The model answers the question the serving gate cannot — what a
// million users do to the staleness/throughput tradeoff — in the same
// closed-form style as QPCost: deterministic arithmetic over calibrated
// constants, cheap enough to sweep.
//
// Two opposing forces set the shape of the curve:
//
//   - Publishing more often keeps replicas fresher (staleness is bounded by
//     the publish interval plus the fan-out time), but every publication
//     costs each replica a swap-drain window in which it answers no
//     queries, so serving capacity falls as the interval shrinks.
//   - Publishing less often returns that capacity but widens the window in
//     which a served answer reflects old weights.
//
// The protocol's version-staleness bound (no replica more than one version
// behind) holds only while a full fan-out completes inside the publish
// interval; the model reports when a configuration breaks that invariant.

// ServeLoad describes the offered query load: a user population with an
// average think time between queries (the classic closed-loop load model).
type ServeLoad struct {
	// Users is the concurrent user population.
	Users int
	// ThinkTimeS is the mean seconds a user waits between queries.
	ThinkTimeS float64
}

// OfferedQPS is the aggregate query arrival rate of the population.
func (l ServeLoad) OfferedQPS() float64 {
	if l.Users <= 0 || l.ThinkTimeS <= 0 {
		return 0
	}
	return float64(l.Users) / l.ThinkTimeS
}

// ServeCost calibrates the per-replica serving cost model and the
// publication fan-out path.
type ServeCost struct {
	// Replicas is the inference fleet size.
	Replicas int
	// Lanes stripes each bank publication across QP lanes.
	Lanes int
	// PayloadBytes is one weight version (the layout's payload size).
	PayloadBytes int64
	// RowComputeUS is the forward-pass compute per query row inside a
	// batch (the marginal row cost; matmul batching amortizes the rest).
	RowComputeUS float64
	// BatchOverheadUS is the fixed per-batch cost: dispatch, feed
	// assembly, padding, demux.
	BatchOverheadUS float64
	// BatchSize is the frontend's static batch dimension.
	BatchSize int
	// SwapDrainUS is how long a replica is out of service per version
	// swap: draining pinned readers of the old bank plus the ack
	// write-back. The bank payload itself lands one-sided and costs the
	// replica nothing — this is the only serving-side publication tax.
	SwapDrainUS float64
	// Net prices the publish path (trainer NIC → replica banks).
	Net Params
}

// DefaultServeCost returns the calibration used by the serving benchmarks:
// a GPUDirect RDMA publish path and per-query costs representative of a
// small MLP served from host-pinned banks.
func DefaultServeCost(replicas int, payloadBytes int64) ServeCost {
	return ServeCost{
		Replicas:        replicas,
		Lanes:           4,
		PayloadBytes:    payloadBytes,
		RowComputeUS:    40,
		BatchOverheadUS: 150,
		BatchSize:       32,
		SwapDrainUS:     50,
		Net:             ParamsFor(distributed.RDMA, true),
	}
}

// ServeReport is the serving bill for one load point at one publish
// interval.
type ServeReport struct {
	Replicas int
	Users    int
	// OfferedQPS is the population's arrival rate.
	OfferedQPS float64
	// CapacityQPS is the fleet's sustainable rate at this publish
	// interval (per-replica batch throughput, discounted by the
	// swap-drain duty cycle).
	CapacityQPS float64
	// ServedQPS is min(offered, capacity): the admission controller sheds
	// the rest rather than queueing unboundedly.
	ServedQPS float64
	// ShedFraction is the fraction of offered queries shed.
	ShedFraction float64
	// UtilizationPct is served/capacity.
	UtilizationPct float64
	// PublishUS is one full fan-out: the striped payload to every
	// replica, serialized at the trainer NIC, version word last.
	PublishUS float64
	// PublishIntervalMS is the trainer's snapshot cadence.
	PublishIntervalMS float64
	// StalenessMaxVersions is the worst-case version gap a served answer
	// can carry. 1 while a fan-out completes within the interval — the
	// protocol's bound — and ceil(PublishUS/interval) once publication
	// falls behind the cadence.
	StalenessMaxVersions int
	// StalenessMaxMS is the oldest weights (in wall time) a served answer
	// can reflect: one full interval plus the fan-out in flight.
	StalenessMaxMS float64
}

// Report prices one load point: offered load against fleet capacity at the
// given publish cadence.
func (c ServeCost) Report(load ServeLoad, publishIntervalMS float64) ServeReport {
	r := ServeReport{
		Replicas:          c.Replicas,
		Users:             load.Users,
		OfferedQPS:        load.OfferedQPS(),
		PublishIntervalMS: publishIntervalMS,
	}
	if c.Replicas < 1 || c.BatchSize < 1 || publishIntervalMS <= 0 {
		return r
	}

	// One batch: fixed dispatch cost plus the marginal rows.
	batchUS := c.BatchOverheadUS + float64(c.BatchSize)*c.RowComputeUS
	perReplicaQPS := float64(c.BatchSize) / batchUS * 1e6

	// Publication: each replica's bank is striped over Lanes QPs, but the
	// stripes and the N replica fan-outs all share the one trainer NIC, so
	// wire occupancy serializes across the fleet; the per-stripe post
	// overhead and the propagation latency are paid once (the stripes of
	// the next replica are posted while the previous ones drain).
	lanes := c.Lanes
	if lanes < 1 {
		lanes = 1
	}
	stripe := (c.PayloadBytes + int64(lanes) - 1) / int64(lanes)
	r.PublishUS = c.Net.SendOverheadUS(stripe) + c.Net.WireLatUS +
		float64(c.Replicas)*c.Net.WireUS(c.PayloadBytes)

	// Swap-drain duty cycle: each interval costs every replica one drain.
	intervalUS := publishIntervalMS * 1e3
	avail := 1 - c.SwapDrainUS/intervalUS
	if avail < 0 {
		avail = 0
	}
	r.CapacityQPS = float64(c.Replicas) * perReplicaQPS * avail

	r.ServedQPS = r.OfferedQPS
	if r.ServedQPS > r.CapacityQPS {
		r.ServedQPS = r.CapacityQPS
	}
	if r.OfferedQPS > 0 {
		r.ShedFraction = (r.OfferedQPS - r.ServedQPS) / r.OfferedQPS
	}
	if r.CapacityQPS > 0 {
		r.UtilizationPct = r.ServedQPS / r.CapacityQPS * 100
	}

	// Version staleness: the flag-after-payload protocol keeps every
	// replica within one version while a fan-out fits the cadence. When
	// PublishUS exceeds the interval the trainer is still writing v while
	// staging v+1: answers can lag by however many intervals one fan-out
	// spans.
	r.StalenessMaxVersions = 1
	if r.PublishUS > intervalUS {
		r.StalenessMaxVersions = int(math.Ceil(r.PublishUS / intervalUS))
	}
	r.StalenessMaxMS = publishIntervalMS + r.PublishUS/1e3
	return r
}

// StalenessSweep prices the same load across publish cadences — the
// staleness-vs-throughput curve BENCH_serve.json records. Intervals are in
// milliseconds, typically descending (fresher weights to the right).
func (c ServeCost) StalenessSweep(load ServeLoad, intervalsMS []float64) []ServeReport {
	out := make([]ServeReport, 0, len(intervalsMS))
	for _, ms := range intervalsMS {
		out = append(out, c.Report(load, ms))
	}
	return out
}

func (r ServeReport) String() string {
	return fmt.Sprintf(
		"replicas=%d users=%d offered=%.0fqps capacity=%.0fqps served=%.0fqps shed=%.1f%% publish=%.2fms interval=%.0fms staleness<=%dv/%.1fms",
		r.Replicas, r.Users, r.OfferedQPS, r.CapacityQPS, r.ServedQPS,
		r.ShedFraction*100, r.PublishUS/1e3, r.PublishIntervalMS,
		r.StalenessMaxVersions, r.StalenessMaxMS)
}
