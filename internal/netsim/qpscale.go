package netsim

import "fmt"

// This file prices the fabric's per-connection state at scale: what a
// reliable-connection QP costs a NIC in context memory and setup time, and
// how the two wiring strategies of internal/rdma compare as the task count
// grows.
//
//   - Direct wiring opens QPsPerPeer queue pairs to every other task, so
//     each task holds (N-1)·K QP contexts and the fabric holds N·(N-1)·K —
//     the O(N²) state that blows the NIC's context cache (QP context lives
//     in NIC SRAM; once the working set spills to host memory every verb
//     pays a PCIe context fetch) and serializes N-1 connection handshakes
//     per task at startup.
//   - Muxed wiring (rdma.QPMux) leases at most Slots peer bindings of
//     Lanes QPs each, so a task's live context is min(Slots, N-1)·Lanes
//     regardless of N — the O(N·K) budget the mux exists to enforce.
//
// The constants are calibrated to commodity RNICs (ConnectX-class): a QP
// context (QPC + companion CQ/WQE cache lines) is on the order of 16 KB of
// on-NIC state, a reliable-connection handshake costs tens of microseconds
// of driver/firmware work, and the context cache holds a few hundred QPs
// before thrashing.
type QPCost struct {
	// StateBytes is the per-QP context footprint (QPC, CQ slice, WQE
	// cache lines) counted against the NIC context cache.
	StateBytes int64
	// SetupUS is the per-QP connection setup cost (create, modify
	// INIT→RTR→RTS, exchange). Setup is serialized per task: the driver
	// path is a lock-held firmware command queue.
	SetupUS float64
	// CacheQPs is how many QP contexts fit in NIC SRAM before the
	// working set spills and verbs start paying context fetches.
	CacheQPs int
	// ThrashFactor multiplies effective per-op overhead once the live QP
	// count exceeds CacheQPs (PCIe round trip per context miss).
	ThrashFactor float64
}

// DefaultQPCost returns the ConnectX-class calibration described above.
func DefaultQPCost() QPCost {
	return QPCost{
		StateBytes:   16 << 10,
		SetupUS:      50,
		CacheQPs:     256,
		ThrashFactor: 4,
	}
}

// ScaleReport is the per-task and fabric-wide QP bill for one wiring
// strategy at one cluster size.
type ScaleReport struct {
	Tasks int
	// QPsPerTask is the live QP context count one task holds.
	QPsPerTask int
	// TotalQPs is the fabric-wide context count (Tasks · QPsPerTask).
	TotalQPs int
	// StateBytesPerTask charges QPsPerTask contexts against the NIC.
	StateBytesPerTask int64
	// SetupUSPerTask is the serialized connection-setup time one task
	// spends bringing its QPs to RTS.
	SetupUSPerTask float64
	// Thrashing reports whether QPsPerTask exceeds the context cache, so
	// steady-state verbs pay the ThrashFactor context-fetch penalty.
	Thrashing bool
	// OpOverheadFactor is 1 when the working set fits the cache and
	// ThrashFactor once it spills.
	OpOverheadFactor float64
}

func (c QPCost) report(tasks, qpsPerTask int) ScaleReport {
	r := ScaleReport{
		Tasks:             tasks,
		QPsPerTask:        qpsPerTask,
		TotalQPs:          tasks * qpsPerTask,
		StateBytesPerTask: int64(qpsPerTask) * c.StateBytes,
		SetupUSPerTask:    float64(qpsPerTask) * c.SetupUS,
		OpOverheadFactor:  1,
	}
	if c.CacheQPs > 0 && qpsPerTask > c.CacheQPs {
		r.Thrashing = true
		r.OpOverheadFactor = c.ThrashFactor
	}
	return r
}

// Direct prices all-pairs wiring: every task keeps qpsPerPeer QPs to each
// of the tasks-1 peers.
func (c QPCost) Direct(tasks, qpsPerPeer int) ScaleReport {
	if tasks < 1 || qpsPerPeer < 1 {
		return ScaleReport{Tasks: tasks, OpOverheadFactor: 1}
	}
	return c.report(tasks, (tasks-1)*qpsPerPeer)
}

// Muxed prices QPMux wiring: at most slots peer bindings of lanes QPs
// each, independent of the peer count once tasks-1 exceeds slots.
func (c QPCost) Muxed(tasks, slots, lanes int) ScaleReport {
	if tasks < 1 || slots < 1 || lanes < 1 {
		return ScaleReport{Tasks: tasks, OpOverheadFactor: 1}
	}
	bindings := slots
	if peers := tasks - 1; peers < bindings {
		bindings = peers
	}
	return c.report(tasks, bindings*lanes)
}

func (r ScaleReport) String() string {
	return fmt.Sprintf("tasks=%d qps/task=%d total=%d state=%.1fKB/task setup=%.2fms/task thrash=%v",
		r.Tasks, r.QPsPerTask, r.TotalQPs,
		float64(r.StateBytesPerTask)/1024, r.SetupUSPerTask/1000, r.Thrashing)
}
