package netsim

import (
	"fmt"
	"testing"

	"repro/internal/distributed"
)

func TestAllReduceRingBeatsPSAtScale(t *testing.T) {
	const grad = 64 << 20 // a bandwidth-bound exchange
	for _, tasks := range []int{4, 8} {
		m := NewAllReduceModel(tasks, distributed.RDMA)
		ps := m.StepUS(ARPS, grad)
		ring := m.StepUS(ARRing, grad)
		if ring >= ps {
			t.Errorf("tasks=%d: ring %.0fµs not faster than ps %.0fµs", tasks, ring, ps)
		}
	}
	// Ring per-task goodput is nearly flat in N (every link carries 2G
	// regardless); the PS NIC serializes 2·N·G so its goodput collapses.
	m2 := NewAllReduceModel(2, distributed.RDMA)
	m8 := NewAllReduceModel(8, distributed.RDMA)
	ringDrop := m2.GoodputMBPerTaskSec(ARRing, grad) / m8.GoodputMBPerTaskSec(ARRing, grad)
	psDrop := m2.GoodputMBPerTaskSec(ARPS, grad) / m8.GoodputMBPerTaskSec(ARPS, grad)
	if ringDrop > 2 || psDrop < 3 {
		t.Errorf("scaling: ring 2->8 drop %.2fx, ps drop %.2fx", ringDrop, psDrop)
	}
}

func TestAllReduceTreeWinsSmallTensors(t *testing.T) {
	m := NewAllReduceModel(8, distributed.RDMA)
	small := int64(4 << 10)
	if tree, ring := m.StepUS(ARTree, small), m.StepUS(ARRing, small); tree >= ring {
		t.Errorf("small tensors: tree %.1fµs not faster than ring %.1fµs", tree, ring)
	}
	large := int64(64 << 20)
	if tree, ring := m.StepUS(ARTree, large), m.StepUS(ARRing, large); ring >= tree {
		t.Errorf("large tensors: ring %.0fµs not faster than tree %.0fµs (root incast must bite)", ring, tree)
	}
}

func TestAllReduceNetReduceIndependentOfN(t *testing.T) {
	const grad = 16 << 20
	base := NewAllReduceModel(2, distributed.RDMA).StepUS(ARNetReduce, grad)
	for _, tasks := range []int{4, 8, 32} {
		got := NewAllReduceModel(tasks, distributed.RDMA).StepUS(ARNetReduce, grad)
		if got != base {
			t.Errorf("tasks=%d: netreduce %.1fµs, want N-independent %.1fµs", tasks, got, base)
		}
	}
	// And it beats even the ring: no 2(N-1)-hop pipeline to drain.
	m := NewAllReduceModel(8, distributed.RDMA)
	if nr, ring := m.StepUS(ARNetReduce, grad), m.StepUS(ARRing, grad); nr >= ring {
		t.Errorf("netreduce %.0fµs not faster than ring %.0fµs", nr, ring)
	}
}

func TestAllReduceModelDeterministicAndDegenerate(t *testing.T) {
	m := NewAllReduceModel(8, distributed.RDMA)
	for _, kind := range []AllReduceKind{ARPS, ARRing, ARTree, ARNetReduce} {
		a, b := m.StepUS(kind, 1<<20), m.StepUS(kind, 1<<20)
		if a != b || a <= 0 {
			t.Errorf("%v: non-deterministic or non-positive step (%v, %v)", kind, a, b)
		}
	}
	single := NewAllReduceModel(1, distributed.RDMA)
	if got := single.StepUS(ARRing, 1<<20); got != 0 {
		t.Errorf("single task must be free, got %.1fµs", got)
	}
	// Sharding the PS across all tasks recovers most of the incast.
	m.PSShards = 8
	if sharded, lone := m.StepUS(ARPS, 64<<20), NewAllReduceModel(8, distributed.RDMA).StepUS(ARPS, 64<<20); sharded >= lone {
		t.Errorf("sharded ps %.0fµs not faster than single-shard %.0fµs", sharded, lone)
	}
}

func TestAllReduceShardedPS(t *testing.T) {
	const grad = 64 << 20
	// Flat sharded-ps with one shard is exactly the single PS.
	m := NewAllReduceModel(8, distributed.RDMA)
	if sp, ps := m.StepUS(ARShardedPS, grad), m.StepUS(ARPS, grad); sp != ps {
		t.Errorf("flat 1-shard sharded-ps %.0fµs != ps %.0fµs", sp, ps)
	}
	// K=2 shards must beat the single PS at 8 tasks — the incast halves.
	// This is the BENCH_scale claim the emulated plane has to reproduce.
	lone := m.StepUS(ARPS, grad)
	m.PSShards = 2
	sharded := m.StepUS(ARShardedPS, grad)
	if sharded >= lone {
		t.Errorf("tasks=8: sharded-ps K=2 %.0fµs not faster than ps %.0fµs", sharded, lone)
	}
	// More shards keep helping monotonically (the chunks shrink).
	m.PSShards = 4
	if quad := m.StepUS(ARShardedPS, grad); quad >= sharded {
		t.Errorf("K=4 %.0fµs not faster than K=2 %.0fµs", quad, sharded)
	}
	// Hierarchical aggregation trades a group-ingest stage for a smaller
	// push incast; with groups of 4 at 8 tasks the trade wins for a
	// bandwidth-bound gradient.
	m.PSShards = 2
	flat := m.StepUS(ARShardedPS, grad)
	m.AggGroup = 4
	hier := m.StepUS(ARShardedPS, grad)
	if hier >= flat {
		t.Errorf("hierarchical %.0fµs not faster than flat %.0fµs at 8 tasks", hier, flat)
	}
	if a, b := m.StepUS(ARShardedPS, grad), m.StepUS(ARShardedPS, grad); a != b || a <= 0 {
		t.Errorf("hierarchical sharded-ps non-deterministic or non-positive (%v, %v)", a, b)
	}
}

// BenchmarkAllReduceModel reports the modeled per-task goodput for the
// ablation table (scripts/bench.sh scrapes the model_MB/s/task metric);
// NetReduce is the third column no emulated topology can reach.
func BenchmarkAllReduceModel(b *testing.B) {
	const grad = 32 << 20
	for _, kind := range []AllReduceKind{ARPS, ARShardedPS, ARRing, ARTree, ARNetReduce} {
		for _, tasks := range []int{2, 4, 8} {
			b.Run(fmt.Sprintf("topo=%s/tasks=%d", kind, tasks), func(b *testing.B) {
				m := NewAllReduceModel(tasks, distributed.RDMA)
				if kind == ARShardedPS {
					m.PSShards = 2
				}
				var sink float64
				for i := 0; i < b.N; i++ {
					sink += m.StepUS(kind, grad)
				}
				_ = sink
				b.ReportMetric(m.GoodputMBPerTaskSec(kind, grad), "model_MB/s/task")
				b.ReportMetric(m.StepUS(kind, grad), "model_step_us")
			})
		}
	}
}
