package netsim

import (
	"fmt"
	"math"

	"repro/internal/distributed"
)

// This file prices one step of gradient exchange under the collective
// topologies of internal/comm, plus a NetReduce-style in-network reduction
// the emulated fabric cannot execute (it needs a programmable switch). The
// models share the per-mechanism Params so the ablation compares
// topologies, not calibrations:
//
//   - PS: every worker pushes its full gradient to the PS shard(s) and
//     pulls the reduced copy back. With one shard the PS NIC serializes
//     2·N·G bytes — the incast the collectives exist to avoid.
//   - Ring (the comm package's prefix chain): S segments pipeline along
//     the rank chain for 2(N-1) hops; every link carries 2·G bytes
//     regardless of N, so per-task goodput is nearly flat in N.
//   - Tree: raw packs gather to the root (its NIC ingests (N-1)·G) and
//     totals broadcast down 2·ceil(log2 N) levels; wins at small sizes
//     where per-hop fixed cost dominates.
//   - NetReduce: each worker sends G once to the switch, which folds at
//     line rate and multicasts the totals back — one up + one down
//     transfer plus switch latency, independent of N.
//   - Sharded PS: the gradient is chunked across PSShards shard tasks so
//     the incast divides by K; optional two-level aggregation (AggGroup)
//     folds packs at group heads first, shrinking the shard-side push
//     incast from N pushers to ceil(N/AggGroup).
type AllReduceModel struct {
	// Tasks is the worker count.
	Tasks int
	// Params is the underlying transfer mechanism's cost model.
	Params Params
	// Segments is the ring's pipeline depth (<=0 selects Tasks).
	Segments int
	// PSShards spreads the PS gradient across shards (<=0 selects 1).
	PSShards int
	// AggGroup enables two-level hierarchical aggregation for the sharded
	// PS: workers in groups of AggGroup fold locally at a group head before
	// the heads push partials to the shards (<=1 selects flat).
	AggGroup int
	// SwitchUS is the in-network reduction's switch traversal latency and
	// SwitchGBps its fold rate (<=0 selects the wire rate).
	SwitchUS   float64
	SwitchGBps float64
}

// AllReduceKind selects a topology model.
type AllReduceKind int

const (
	ARPS AllReduceKind = iota
	ARRing
	ARTree
	ARNetReduce
	ARShardedPS
)

func (k AllReduceKind) String() string {
	switch k {
	case ARPS:
		return "ps"
	case ARRing:
		return "ring"
	case ARTree:
		return "tree"
	case ARNetReduce:
		return "netreduce"
	case ARShardedPS:
		return "sharded-ps"
	}
	return fmt.Sprintf("allreduce(%d)", int(k))
}

// NewAllReduceModel builds the model over a device mechanism's params with
// the paper-calibrated switch constants (a programmable switch adds a few
// microseconds of pipeline traversal and folds at line rate).
func NewAllReduceModel(tasks int, kind distributed.Kind) *AllReduceModel {
	return &AllReduceModel{
		Tasks:    tasks,
		Params:   ParamsFor(kind, true /* collectives move host-packed buckets */),
		SwitchUS: 3.0,
	}
}

// hopUS is one fixed per-message cost on a path: software dispatch plus
// one-way wire latency.
func (m *AllReduceModel) hopUS() float64 {
	return m.Params.FixedUS + m.Params.WireLatUS
}

// StepUS returns the modeled wall time (µs) of all-reducing gradBytes of
// gradient state across Tasks workers under the topology.
func (m *AllReduceModel) StepUS(kind AllReduceKind, gradBytes int64) float64 {
	if m.Tasks < 1 || gradBytes < 0 {
		return 0
	}
	if m.Tasks == 1 {
		return 0 // degenerate: local apply, no exchange
	}
	switch kind {
	case ARPS:
		return m.psStepUS(gradBytes)
	case ARRing:
		return m.ringStepUS(gradBytes)
	case ARTree:
		return m.treeStepUS(gradBytes)
	case ARNetReduce:
		return m.netReduceStepUS(gradBytes)
	case ARShardedPS:
		return m.shardedStepUS(gradBytes)
	}
	return math.NaN()
}

// psStepUS prices the push and pull phases over per-NIC busy-until
// timelines: each worker's NIC serializes its own messages, and the
// shard's rx (push) and tx (pull) directions serialize the incast — the
// contention TransferDelay-style per-message models miss.
func (m *AllReduceModel) psStepUS(g int64) float64 {
	// Push and pull are symmetric transfer sets over opposite NIC
	// directions, separated by the synchronous reduce barrier.
	return m.psPhaseUS(g, m.Tasks) + m.psPhaseUS(g, m.Tasks)
}

// psPhaseUS prices one PS transfer phase (push or pull) with `endpoints`
// worker-side NICs each exchanging its full gradient, split per shard, with
// the shard NICs. The shard side serializes the incast; the worker side
// serializes its own per-shard chunks.
func (m *AllReduceModel) psPhaseUS(g int64, endpoints int) float64 {
	shards := m.PSShards
	if shards < 1 {
		shards = 1
	}
	chunk := func(s int) int64 {
		per := g / int64(shards)
		if s == shards-1 {
			per = g - per*int64(shards-1)
		}
		return per
	}
	occupy := func(size int64) float64 { return m.Params.FixedUS + us(size, m.Params.WireGBps) }
	workerNIC := make([]Resource, endpoints)
	shardNIC := make([]Resource, shards)
	var done Time
	for w := 0; w < endpoints; w++ {
		for s := 0; s < shards; s++ {
			dur := occupy(chunk(s))
			start, _ := workerNIC[w].Use(0, dur)
			_, end := shardNIC[s].Use(start, dur)
			if end += m.Params.WireLatUS; end > done {
				done = end
			}
		}
	}
	return float64(done)
}

// shardedStepUS prices the sharded-PS plane: the gradient is chunked across
// PSShards shard tasks so no single NIC serializes the full 2·N·G incast.
// Flat mode is exactly the PS phases with the shard split. Hierarchical mode
// (AggGroup > 1) adds a group-ingest stage — members push their full pack to
// the group head, whose NIC rx serializes them — and in exchange only the
// group heads push partials to the shards, shrinking the push incast from N
// pushers to ceil(N/AggGroup). The pull is unchanged: every worker still
// fetches the reduced chunks from the shards.
func (m *AllReduceModel) shardedStepUS(g int64) float64 {
	if m.AggGroup <= 1 {
		return m.psStepUS(g)
	}
	n := m.Tasks
	agg := m.AggGroup
	if agg > n {
		agg = n
	}
	groups := (n + agg - 1) / agg
	occupy := func(size int64) float64 { return m.Params.FixedUS + us(size, m.Params.WireGBps) }
	// The step waits for the largest group's head to finish ingesting its
	// agg-1 member packs (groups ingest in parallel on distinct head NICs).
	ingest := float64(agg-1)*occupy(g) + m.Params.WireLatUS
	return ingest + m.psPhaseUS(g, groups) + m.psPhaseUS(g, n)
}

// ringStepUS prices the comm package's pipelined prefix chain: a segment
// crosses 2(N-1) links (reduce up the chain, broadcast back around), and
// with S in-flight segments the pipeline drains in (2(N-1)+S-1) hop
// times. Every link carries exactly 2·G bytes however large N grows —
// the bandwidth-optimality argument of ring all-reduce.
func (m *AllReduceModel) ringStepUS(g int64) float64 {
	n := m.Tasks
	segs := m.Segments
	if segs < 1 {
		segs = n
	}
	if int64(segs) > g && g > 0 {
		segs = int(g)
	}
	segBytes := (g + int64(segs) - 1) / int64(segs)
	hop := m.hopUS() + us(segBytes, m.Params.WireGBps)
	stages := 2*(n-1) + segs - 1
	return float64(stages) * hop
}

// treeStepUS prices the bit-parity binary tree: raw packs gather to the
// root — whose NIC rx serializes all (N-1) ingressing packs — then totals
// broadcast down, each parent forwarding to at most two children per
// level. Depth hops of fixed cost bound the small-message latency at
// O(log N) versus the chain's O(N).
func (m *AllReduceModel) treeStepUS(g int64) float64 {
	n := m.Tasks
	depth := int(math.Ceil(math.Log2(float64(n))))
	wire := us(g, m.Params.WireGBps)
	rootRx := float64(n-1) * wire
	gather := float64(depth)*m.hopUS() + rootRx
	bcast := float64(depth) * (2*m.hopUS() + 2*wire)
	return gather + bcast
}

// netReduceStepUS prices in-network reduction: gradients stream up to the
// switch, which folds cut-through at its pipeline rate and multicasts the
// totals back down — the down stream overlaps the up stream at packet
// granularity, so the payload crosses the wire-rate bottleneck once, plus
// two fixed hops and the switch traversal. No term depends on N — the
// signature property of the approach.
func (m *AllReduceModel) netReduceStepUS(g int64) float64 {
	bw := m.Params.WireGBps
	if m.SwitchGBps > 0 && m.SwitchGBps < bw {
		bw = m.SwitchGBps
	}
	return 2*m.hopUS() + m.SwitchUS + us(g, bw)
}

// GoodputMBPerTaskSec converts a step time into per-task all-reduce
// goodput (each task contributes and receives gradBytes per step).
func (m *AllReduceModel) GoodputMBPerTaskSec(kind AllReduceKind, gradBytes int64) float64 {
	step := m.StepUS(kind, gradBytes)
	if step <= 0 {
		return 0
	}
	return float64(gradBytes) / step // bytes/µs == MB/s
}
