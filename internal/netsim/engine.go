// Package netsim prices the paper's experiments on a virtual cluster: a
// deterministic discrete-event/timeline simulation of tensor transfers over
// the four communication mechanisms, combined with the GPU compute-time
// model. The emulated RDMA fabric executes the real protocols; this package
// supplies the *time* dimension the paper's 100 Gbps InfiniBand testbed
// provided, calibrated (params.go) so the relative shapes of Figures 8, 9,
// 11, 12 and Tables 2, 3 hold.
package netsim

import "container/heap"

// Time is simulation time in microseconds.
type Time = float64

// Engine is a minimal discrete-event simulator: schedule closures at
// absolute times, run until drained. The PS-step model mostly uses resource
// timelines (Resource), which are sufficient for static workloads; the
// engine exists for event-driven compositions (e.g. convergence replay).
type Engine struct {
	now  Time
	pq   eventHeap
	seq  int
	halt bool
}

type event struct {
	at  Time
	seq int // FIFO tie-break for determinism
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run after delay (clamped to now for negative delays).
func (e *Engine) At(delay Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	heap.Push(&e.pq, event{at: e.now + delay, seq: e.seq, fn: fn})
}

// Run processes events until none remain (or Halt is called).
func (e *Engine) Run() {
	for e.pq.Len() > 0 && !e.halt {
		ev := heap.Pop(&e.pq).(event)
		e.now = ev.at
		ev.fn()
	}
}

// Halt stops Run after the current event.
func (e *Engine) Halt() { e.halt = true }

// Resource is a FIFO-serialized facility (a NIC direction, a QP lane, a
// copy engine) modeled as a busy-until timeline.
type Resource struct {
	free Time
}

// Use occupies the resource for dur starting no earlier than ready,
// returning the interval.
func (r *Resource) Use(ready Time, dur Time) (start, end Time) {
	start = ready
	if r.free > start {
		start = r.free
	}
	end = start + dur
	r.free = end
	return start, end
}

// Free returns when the resource next becomes idle.
func (r *Resource) Free() Time { return r.free }

// Pool is a set of identical resources; Use picks the earliest-free one
// (e.g. the QP lanes between a server pair).
type Pool struct {
	rs []Resource
}

// NewPool creates a pool of n resources.
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	return &Pool{rs: make([]Resource, n)}
}

// Use occupies the earliest-available resource in the pool.
func (p *Pool) Use(ready Time, dur Time) (start, end Time) {
	best := 0
	for i := 1; i < len(p.rs); i++ {
		if p.rs[i].free < p.rs[best].free {
			best = i
		}
	}
	return p.rs[best].Use(ready, dur)
}
