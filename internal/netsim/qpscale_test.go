package netsim

import (
	"fmt"
	"testing"
)

// TestScale256TaskQPBudgets is the 256-task netsim scale gate: muxed wiring
// must hold every task inside explicit QP state and connection-setup
// budgets that all-pairs wiring demonstrably blows.
func TestScale256TaskQPBudgets(t *testing.T) {
	const (
		tasks      = 256
		qpsPerPeer = 4 // the fabric's default QPsPerPeer
		slots      = 16
		lanes      = 2
		// Budgets the muxed fabric must meet at 256 tasks.
		stateBudgetBytes = 1 << 20 // 1 MB of NIC context per task
		setupBudgetUS    = 5000    // 5 ms to bring a task's QPs to RTS
	)
	c := DefaultQPCost()

	muxed := c.Muxed(tasks, slots, lanes)
	t.Logf("muxed:  %s", muxed)
	if muxed.QPsPerTask != slots*lanes {
		t.Errorf("muxed QPs/task = %d, want slots·lanes = %d", muxed.QPsPerTask, slots*lanes)
	}
	if muxed.StateBytesPerTask > stateBudgetBytes {
		t.Errorf("muxed state %d B/task exceeds %d B budget", muxed.StateBytesPerTask, stateBudgetBytes)
	}
	if muxed.SetupUSPerTask > setupBudgetUS {
		t.Errorf("muxed setup %.0fµs/task exceeds %dµs budget", muxed.SetupUSPerTask, setupBudgetUS)
	}
	if muxed.Thrashing {
		t.Errorf("muxed working set (%d QPs) must fit the %d-QP context cache", muxed.QPsPerTask, c.CacheQPs)
	}

	direct := c.Direct(tasks, qpsPerPeer)
	t.Logf("direct: %s", direct)
	if want := (tasks - 1) * qpsPerPeer; direct.QPsPerTask != want {
		t.Errorf("direct QPs/task = %d, want (N-1)·K = %d", direct.QPsPerTask, want)
	}
	if direct.StateBytesPerTask <= stateBudgetBytes {
		t.Errorf("direct state %d B/task unexpectedly within budget; model lost its point", direct.StateBytesPerTask)
	}
	if direct.SetupUSPerTask <= setupBudgetUS {
		t.Errorf("direct setup %.0fµs/task unexpectedly within budget", direct.SetupUSPerTask)
	}
	if !direct.Thrashing || direct.OpOverheadFactor <= 1 {
		t.Errorf("direct %d QPs/task must thrash the %d-QP context cache", direct.QPsPerTask, c.CacheQPs)
	}

	// The mux's defining property: per-task state is O(K), flat in N.
	for _, n := range []int{64, 256, 1024} {
		if got := c.Muxed(n, slots, lanes).QPsPerTask; got != muxed.QPsPerTask {
			t.Errorf("muxed QPs/task at N=%d is %d, want N-independent %d", n, got, muxed.QPsPerTask)
		}
	}
	// While direct grows linearly per task (quadratically fabric-wide).
	if d64 := c.Direct(64, qpsPerPeer); direct.TotalQPs <= d64.TotalQPs*4 {
		t.Errorf("direct total QPs must grow superlinearly: 256 tasks %d vs 64 tasks %d", direct.TotalQPs, d64.TotalQPs)
	}
}

func TestQPCostDegenerate(t *testing.T) {
	c := DefaultQPCost()
	for _, r := range []ScaleReport{
		c.Direct(1, 4), c.Muxed(1, 16, 2), c.Direct(0, 4), c.Muxed(8, 0, 2),
	} {
		if r.QPsPerTask != 0 || r.StateBytesPerTask != 0 || r.Thrashing {
			t.Errorf("degenerate config must cost nothing: %+v", r)
		}
	}
	// A small cluster never leases more bindings than it has peers.
	if got := c.Muxed(4, 16, 2).QPsPerTask; got != 3*2 {
		t.Errorf("4-task muxed QPs/task = %d, want peers·lanes = 6", got)
	}
	// Determinism.
	if a, b := c.Direct(256, 4), c.Direct(256, 4); a != b {
		t.Errorf("model must be deterministic: %+v vs %+v", a, b)
	}
}

// BenchmarkQPScale emits the QP state and setup bill per wiring strategy
// for scripts/bench.sh to fold into BENCH_scale.json.
func BenchmarkQPScale(b *testing.B) {
	c := DefaultQPCost()
	for _, mode := range []string{"direct", "muxed"} {
		for _, tasks := range []int{8, 64, 256} {
			b.Run(fmt.Sprintf("mode=%s/tasks=%d", mode, tasks), func(b *testing.B) {
				var r ScaleReport
				for i := 0; i < b.N; i++ {
					if mode == "direct" {
						r = c.Direct(tasks, 4)
					} else {
						r = c.Muxed(tasks, 16, 2)
					}
				}
				b.ReportMetric(float64(r.StateBytesPerTask), "qp_state_bytes/task")
				b.ReportMetric(r.SetupUSPerTask, "setup_us/task")
				b.ReportMetric(float64(r.QPsPerTask), "qps/task")
			})
		}
	}
}
