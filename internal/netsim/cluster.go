package netsim

import (
	"sort"

	"repro/internal/distributed"
	"repro/internal/models"
)

// ClusterSim prices synchronous data-parallel parameter-server iterations
// (the paper's default deployment: every machine runs one worker process
// and one parameter-server process, variables spread round-robin).
//
// Each tensor transfer passes three facilities:
//
//   - the source machine's communication CPU pool (serialization, bounce
//     and staging copies; the device mechanisms have nearly nothing here —
//     that is the point of the paper);
//   - the NICs' tx/rx directions at line rate;
//   - the destination machine's CPU pool (deserialization, copies out).
//
// Pull (weights) and push (gradients) travel opposite NIC directions and
// partially overlap with compute the way the data-flow scheduler overlaps
// them in TensorFlow; SerialFrac captures the non-overlappable remainder
// (first-layer weights, last-layer gradients).
type ClusterSim struct {
	// Servers is the machine count; worker i and PS shard i are colocated.
	Servers int
	// CPUThreads is the per-machine communication thread count (QP/CQ
	// pollers for the device mechanisms, gRPC completion threads).
	CPUThreads int
	// Params is the mechanism cost model.
	Params Params
	// LoopbackGBps is the wire bandwidth for same-machine transfers.
	LoopbackGBps float64
	// ApplyGBps models the PS-side gradient apply bandwidth.
	ApplyGBps float64
	// SerialFrac is the fraction of communication that cannot hide under
	// compute (0 = perfect overlap, 1 = fully sequential phases).
	SerialFrac float64
	// Placement selects how variables map to PS shards.
	Placement Placement
}

// Placement is the variable-to-shard assignment policy.
type Placement int

const (
	// RoundRobin is the paper's policy: tensor v lives on shard v mod N.
	// Large tensors (VGG's 392 MB fc6) make their shard's NIC a hotspot.
	RoundRobin Placement = iota
	// Balanced assigns tensors largest-first to the least-loaded shard,
	// the classic mitigation for the hotspot. It cannot help when a single
	// tensor dominates (VGG's fc6): the broadcast still leaves one NIC.
	Balanced
	// Partitioned splits every tensor larger than its fair share into one
	// chunk per shard (TensorFlow's variable partitioner), removing the
	// single-NIC broadcast bottleneck entirely.
	Partitioned
)

// placedTensor is one transferable unit after placement: a tensor or chunk
// and the PS shard holding it.
type placedTensor struct {
	size  int64
	shard int
}

// placeTensors maps the model's tensors onto shards under the configured
// policy, possibly splitting them (Partitioned).
func (c *ClusterSim) placeTensors(sizes []int64) []placedTensor {
	n := c.Servers
	if c.Placement == Partitioned {
		var out []placedTensor
		next := 0
		for _, size := range sizes {
			chunk := size / int64(n)
			if chunk < 256<<10 { // below ~256 KB splitting only adds overhead
				out = append(out, placedTensor{size: size, shard: next % n})
				next++
				continue
			}
			rem := size
			for s := 0; s < n; s++ {
				part := chunk
				if s == n-1 {
					part = rem
				}
				out = append(out, placedTensor{size: part, shard: (next + s) % n})
				rem -= chunk
			}
			next++
		}
		return out
	}
	shards := c.shardOf(sizes)
	out := make([]placedTensor, len(sizes))
	for i, size := range sizes {
		out[i] = placedTensor{size: size, shard: shards[i]}
	}
	return out
}

// shardOf computes each tensor's shard under the configured policy.
func (c *ClusterSim) shardOf(sizes []int64) []int {
	n := c.Servers
	out := make([]int, len(sizes))
	switch c.Placement {
	case Balanced:
		type item struct {
			idx  int
			size int64
		}
		items := make([]item, len(sizes))
		for i, s := range sizes {
			items[i] = item{i, s}
		}
		sort.Slice(items, func(a, b int) bool {
			if items[a].size != items[b].size {
				return items[a].size > items[b].size
			}
			return items[a].idx < items[b].idx
		})
		load := make([]int64, n)
		for _, it := range items {
			best := 0
			for s := 1; s < n; s++ {
				if load[s] < load[best] {
					best = s
				}
			}
			out[it.idx] = best
			load[best] += it.size
		}
	default:
		for i := range sizes {
			out[i] = i % n
		}
	}
	return out
}

// NewClusterSim builds a simulator with the paper's defaults (4 QPs and 4
// CQ pollers for the device mechanisms; gRPC's limited completion-queue
// concurrency for the RPC ones).
func NewClusterSim(servers int, kind distributed.Kind, gpuDirect bool) *ClusterSim {
	threads := 4
	if kind.UsesRPC() {
		threads = 3
	}
	return &ClusterSim{
		Servers:      servers,
		CPUThreads:   threads,
		Params:       ParamsFor(kind, gpuDirect),
		LoopbackGBps: 38,
		ApplyGBps:    60,
		SerialFrac:   0.6,
	}
}

type transfer struct {
	src, dst int
	size     int64
}

// sendStageUS/recvStageUS are the cluster-model software stage times; unlike
// the micro path they always charge the size-proportional stages (fragment
// pipelining inside one transfer is represented by the stages running on
// CPU threads concurrently with other transfers' wire time).
func (c *ClusterSim) sendStageUS(size int64) float64 {
	p := c.Params
	t := p.FixedUS
	f := p.factor(size)
	for _, bw := range p.SendStagesGBps {
		t += us(size, bw) * f
	}
	if p.HostStageGBps > 0 {
		t += us(size, p.HostStageGBps)
	}
	return t
}

func (c *ClusterSim) recvStageUS(size int64) float64 {
	p := c.Params
	t := 0.0
	f := p.factor(size)
	for _, bw := range p.RecvStagesGBps {
		t += us(size, bw) * f
	}
	if p.HostStageGBps > 0 {
		t += us(size, p.HostStageGBps)
	}
	return t
}

func (c *ClusterSim) wireUS(size int64, loopback bool) float64 {
	p := c.Params
	bw := p.WireGBps
	if loopback && c.LoopbackGBps > 0 {
		bw = c.LoopbackGBps
	}
	t := us(size, bw)
	if p.FragBytes > 0 {
		frags := (size + int64(p.FragBytes) - 1) / int64(p.FragBytes)
		if frags < 1 {
			frags = 1
		}
		t += float64(frags) * p.PerFragUS
	}
	return t
}

// phaseTime runs one communication phase (all transfers released at t=0)
// through fresh resource state and returns the completion time of the last
// delivery at each machine. Within one transfer the software stages and the
// wire pipeline at fragment granularity (cut-through): each facility is
// occupied for its own duration over overlapping windows, and the transfer
// completes when the slowest facility finishes.
func (c *ClusterSim) phaseTime(transfers []transfer) []Time {
	n := c.Servers
	cpus := make([]*Pool, n)
	for i := range cpus {
		cpus[i] = NewPool(c.CPUThreads)
	}
	nicTx := make([]Resource, n)
	nicRx := make([]Resource, n)
	done := make([]Time, n)
	for _, tr := range transfers {
		sendDur := c.sendStageUS(tr.size)
		recvDur := c.recvStageUS(tr.size)
		wire := c.wireUS(tr.size, tr.src == tr.dst)

		sStart, sEnd := cpus[tr.src].Use(0, sendDur)
		wireReady := sStart // cut-through: the wire streams as staging runs
		if c.Params.StoreAndForward {
			// The bounce-buffer copy must finish before the write posts;
			// only the GPU staging part still streams.
			wireReady = sEnd
			if c.Params.HostStageGBps > 0 {
				wireReady -= us(tr.size, c.Params.HostStageGBps)
			}
		}
		var wireStart, wireEnd Time
		if tr.src == tr.dst {
			wireStart, wireEnd = wireReady, wireReady+wire
		} else {
			ready := wireReady
			if nicRx[tr.dst].Free() > ready {
				ready = nicRx[tr.dst].Free()
			}
			wireStart, wireEnd = nicTx[tr.src].Use(ready, wire)
			nicRx[tr.dst].Use(wireStart, wire)
		}
		arrived := wireEnd
		if sEnd > arrived {
			arrived = sEnd // staging slower than the wire: it governs
		}
		arrived += c.Params.WireLatUS
		// Receive-side staging also streams while data lands.
		_, rEnd := cpus[tr.dst].Use(wireStart+c.Params.WireLatUS, recvDur)
		end := arrived
		if rEnd > end {
			end = rEnd
		}
		if end > done[tr.dst] {
			done[tr.dst] = end
		}
	}
	return done
}

func maxOf(ts []Time) Time {
	m := Time(0)
	for _, t := range ts {
		if t > m {
			m = t
		}
	}
	return m
}

// IterationUS returns the simulated wall time of one synchronous training
// iteration of the given benchmark at the given per-worker batch size.
func (c *ClusterSim) IterationUS(spec models.Spec, batch int) float64 {
	n := c.Servers
	sizes := spec.TensorSizes()

	// Pull: each placed tensor's shard sends it to every worker.
	placed := c.placeTensors(sizes)
	var pulls, pushes []transfer
	for _, pt := range placed {
		for w := 0; w < n; w++ {
			pulls = append(pulls, transfer{src: pt.shard, dst: w, size: pt.size})
			pushes = append(pushes, transfer{src: w, dst: pt.shard, size: pt.size})
		}
	}
	pull := maxOf(c.phaseTime(pulls))
	push := maxOf(c.phaseTime(pushes))
	comp := spec.Compute.MinibatchMS(batch) * 1000

	// Apply: each shard folds n gradients into its variables.
	var apply Time
	for s := 0; s < n; s++ {
		var shardBytes int64
		for _, pt := range placed {
			if pt.shard == s {
				shardBytes += pt.size
			}
		}
		if t := us(shardBytes*int64(n), c.ApplyGBps); t > apply {
			apply = t
		}
	}

	// A SerialFrac share of communication cannot hide under compute (head
	// weights, tail gradients); the rest overlaps the way TensorFlow's
	// scheduler interleaves transfers with layer execution.
	comm := pull + push
	serial := c.SerialFrac * comm
	hidden := comm - serial
	if comp > hidden {
		hidden = comp
	}
	return RuntimeOverheadUS + serial + hidden + apply
}

// ThroughputSamplesPerSec converts an iteration time into aggregate
// samples/second across all workers.
func (c *ClusterSim) ThroughputSamplesPerSec(spec models.Spec, batch int) float64 {
	it := c.IterationUS(spec, batch)
	return float64(c.Servers*batch) / (it / 1e6)
}

// LocalThroughputSamplesPerSec is the communication-free single-device
// baseline (the "Local" line of Figure 11).
func LocalThroughputSamplesPerSec(spec models.Spec, batch int) float64 {
	return float64(batch) / (spec.Compute.MinibatchMS(batch) / 1e3)
}

// MicroIterUS prices one iteration of the §5.1 micro-benchmark: a single
// tensor transfer between two servers plus the receiver's reduce_max, under
// the per-iteration runtime overhead. Tensors are host-resident, so no GPU
// staging applies.
func MicroIterUS(kind distributed.Kind, size int64) float64 {
	p := ParamsFor(kind, true /* host tensors: no GPU staging */)
	reduce := us(size, 100) // device-side reduction streams the payload once
	return RuntimeOverheadUS + p.TransferUS(size) + reduce
}

// Phases exposes the phase breakdown for diagnostics and the harness.
func (c *ClusterSim) Phases(spec models.Spec, batch int) (pull, push, comp, apply Time) {
	n := c.Servers
	sizes := spec.TensorSizes()
	placed := c.placeTensors(sizes)
	var pulls, pushes []transfer
	for _, pt := range placed {
		for w := 0; w < n; w++ {
			pulls = append(pulls, transfer{src: pt.shard, dst: w, size: pt.size})
			pushes = append(pushes, transfer{src: w, dst: pt.shard, size: pt.size})
		}
	}
	pull = maxOf(c.phaseTime(pulls))
	push = maxOf(c.phaseTime(pushes))
	comp = spec.Compute.MinibatchMS(batch) * 1000
	for s := 0; s < n; s++ {
		var shardBytes int64
		for _, pt := range placed {
			if pt.shard == s {
				shardBytes += pt.size
			}
		}
		if t := us(shardBytes*int64(n), c.ApplyGBps); t > apply {
			apply = t
		}
	}
	return
}
