package netsim

import (
	"fmt"
	"testing"
)

// millionUsers is the headline load point: 10^6 users with a 10 s think
// time offer 100k QPS against the fleet.
func millionUsers() ServeLoad {
	return ServeLoad{Users: 1_000_000, ThinkTimeS: 10}
}

// TestServeModelMillionUsers is the population-scale serving gate: a
// provisioned fleet absorbs a million users without shedding while holding
// the one-version staleness bound, and an under-provisioned fleet sheds
// the excess instead of queueing it.
func TestServeModelMillionUsers(t *testing.T) {
	const payload = 256 << 20 // a 256 MB model version
	load := millionUsers()
	if got := load.OfferedQPS(); got != 100_000 {
		t.Fatalf("offered QPS = %v, want 100000", got)
	}

	// Provisioned: 8 replicas, 1 s publish cadence.
	r := DefaultServeCost(8, payload).Report(load, 1000)
	t.Logf("provisioned: %s", r)
	if r.CapacityQPS <= r.OfferedQPS {
		t.Fatalf("8 replicas must cover 100k QPS: capacity %.0f", r.CapacityQPS)
	}
	if r.ShedFraction != 0 || r.ServedQPS != r.OfferedQPS {
		t.Fatalf("provisioned fleet must serve everything: %+v", r)
	}
	if r.StalenessMaxVersions != 1 {
		t.Fatalf("fan-out inside the cadence must keep the 1-version bound, got %d", r.StalenessMaxVersions)
	}
	if r.StalenessMaxMS <= r.PublishIntervalMS {
		t.Fatalf("wall staleness must include the fan-out: %.1fms", r.StalenessMaxMS)
	}

	// Under-provisioned: 2 replicas cannot carry the same load; the
	// admission controller sheds, it does not queue.
	u := DefaultServeCost(2, payload).Report(load, 1000)
	t.Logf("under-provisioned: %s", u)
	if u.ShedFraction <= 0.3 {
		t.Fatalf("2 replicas under 100k QPS must shed heavily, shed=%.2f", u.ShedFraction)
	}
	if u.ServedQPS != u.CapacityQPS {
		t.Fatalf("a saturated fleet serves exactly its capacity: served %.0f capacity %.0f",
			u.ServedQPS, u.CapacityQPS)
	}
	if u.ServedQPS+u.ShedFraction*u.OfferedQPS-u.OfferedQPS > 1e-6 {
		t.Fatalf("served + shed must account for all offered load: %+v", u)
	}
}

// TestServeStalenessThroughputTradeoff pins the curve's shape: shrinking
// the publish interval monotonically tightens wall-clock staleness and
// monotonically costs capacity (swap-drain duty cycle), and once the
// fan-out no longer fits the cadence the one-version protocol bound breaks
// — which the model must report, not hide.
func TestServeStalenessThroughputTradeoff(t *testing.T) {
	c := DefaultServeCost(8, 256<<20)
	load := millionUsers()
	intervals := []float64{5000, 2000, 1000, 500, 200, 100, 50, 20, 10, 5}
	curve := c.StalenessSweep(load, intervals)
	if len(curve) != len(intervals) {
		t.Fatalf("sweep returned %d points, want %d", len(curve), len(intervals))
	}
	for i, r := range curve {
		t.Logf("%s", r)
		if i == 0 {
			continue
		}
		prev := curve[i-1]
		if r.StalenessMaxMS >= prev.StalenessMaxMS {
			t.Errorf("interval %v→%v: staleness must tighten (%.1f → %.1f ms)",
				prev.PublishIntervalMS, r.PublishIntervalMS, prev.StalenessMaxMS, r.StalenessMaxMS)
		}
		if r.CapacityQPS > prev.CapacityQPS {
			t.Errorf("interval %v→%v: capacity must not grow as publishes get denser (%.0f → %.0f)",
				prev.PublishIntervalMS, r.PublishIntervalMS, prev.CapacityQPS, r.CapacityQPS)
		}
		if r.StalenessMaxVersions < prev.StalenessMaxVersions {
			t.Errorf("version gap must not shrink as the cadence outruns the fan-out")
		}
	}
	// The fan-out of 8×256 MB takes ~180 ms: second-scale cadences keep
	// the protocol bound, 10 ms cadences must be reported as breaking it.
	if first := curve[0]; first.StalenessMaxVersions != 1 {
		t.Errorf("5 s cadence must hold the 1-version bound, got %d", first.StalenessMaxVersions)
	}
	if last := curve[len(curve)-1]; last.StalenessMaxVersions <= 1 {
		t.Errorf("5 ms cadence against a %.0f ms fan-out must break the bound", last.PublishUS/1e3)
	}
}

func TestServeCostDegenerate(t *testing.T) {
	load := millionUsers()
	for _, r := range []ServeReport{
		DefaultServeCost(0, 1<<20).Report(load, 1000),
		DefaultServeCost(4, 1<<20).Report(load, 0),
		DefaultServeCost(4, 1<<20).Report(ServeLoad{}, 1000),
	} {
		if r.ServedQPS != 0 || r.ShedFraction != 0 {
			if r.OfferedQPS != 0 { // zero-load point legitimately serves 0
				t.Errorf("degenerate config must serve nothing: %+v", r)
			}
		}
	}
	// Determinism: the model is pure arithmetic.
	c := DefaultServeCost(8, 64<<20)
	if a, b := c.Report(load, 500), c.Report(load, 500); a != b {
		t.Errorf("model must be deterministic: %+v vs %+v", a, b)
	}
	// Zero lanes is clamped, not divided by.
	c.Lanes = 0
	if r := c.Report(load, 500); r.PublishUS <= 0 {
		t.Errorf("lane clamp failed: %+v", r)
	}
}

// BenchmarkServeModel emits the staleness-vs-throughput curve for
// scripts/bench.sh to fold into BENCH_serve.json: one sub-benchmark per
// publish cadence at the million-user load point.
func BenchmarkServeModel(b *testing.B) {
	c := DefaultServeCost(8, 256<<20)
	load := millionUsers()
	for _, intervalMS := range []float64{5000, 1000, 500, 200, 100, 50} {
		b.Run(fmt.Sprintf("interval_ms=%v", intervalMS), func(b *testing.B) {
			var r ServeReport
			for i := 0; i < b.N; i++ {
				r = c.Report(load, intervalMS)
			}
			b.ReportMetric(r.ServedQPS, "model_served_qps")
			b.ReportMetric(r.ShedFraction*100, "model_shed_pct")
			b.ReportMetric(r.StalenessMaxMS, "model_staleness_ms")
			b.ReportMetric(float64(r.StalenessMaxVersions), "model_staleness_versions")
			b.ReportMetric(r.PublishUS, "model_publish_us")
		})
	}
}
