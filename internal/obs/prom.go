// Package obs is the live observability surface: a Prometheus-text metrics
// endpoint over the cluster's counters and histograms, an on-demand trace
// dump, pprof, and a periodic step-summary report with straggler detection.
// It depends only on the metrics and trace packages — data arrives through
// function-valued providers, so any layer (a Cluster, a bare Executor, a
// test harness) can feed it without an import cycle.
package obs

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/metrics"
)

// promPrefix namespaces every exported series.
const promPrefix = "rdmadl_"

// commCounters lists CommSnapshot's scalar fields in export order. One
// table keeps the encoder and the golden test in lockstep.
func commCounters(s metrics.CommSnapshot) []struct {
	Name  string
	Value int64
} {
	return []struct {
		Name  string
		Value int64
	}{
		{"bytes_sent_total", s.BytesSent},
		{"bytes_recv_total", s.BytesRecv},
		{"messages_total", s.Messages},
		{"mem_copies_total", s.MemCopies},
		{"copied_bytes_total", s.CopiedBytes},
		{"serialized_bytes_total", s.SerializedBytes},
		{"zero_copy_ops_total", s.ZeroCopyOps},
		{"dyn_transfers_total", s.DynTransfers},
		{"retries_total", s.Retries},
		{"timeouts_total", s.Timeouts},
		{"faults_injected_total", s.FaultsInjected},
		{"stripe_segments_total", s.StripeSegments},
		{"striped_transfers_total", s.StripedTransfers},
		{"coalesce_flushes_total", s.CoalesceFlushes},
		{"coalesced_messages_total", s.CoalescedMessages},
		{"doorbell_flushes_total", s.DoorbellFlushes},
		{"retransmit_chunks_total", s.RetransmitChunks},
		{"nacks_sent_total", s.NacksSent},
		{"qp_slots_active", s.QPSlotsActive},
		{"qp_leases_active", s.QPLeases},
		{"qp_evictions_total", s.QPEvictions},
		{"qp_busy_total", s.QPBusy},
	}
}

// familyLabel maps a histogram family name to its Prometheus label key.
func familyLabel(fam string) string {
	switch fam {
	case metrics.HistExecOpNs:
		return "op"
	case metrics.HistEdgeSentBytes, metrics.HistEdgeRecvBytes, metrics.HistEdgeXferNs:
		return "edge"
	default:
		return "label"
	}
}

// WriteProm encodes per-task communication counters and histogram sets in
// the Prometheus text exposition format. Output is fully deterministic
// (tasks, metric names, and labels are sorted), so a golden file can pin it.
func WriteProm(w io.Writer, comm map[string]metrics.CommSnapshot,
	hists map[string]metrics.SetSnapshot) error {
	tasks := sortedKeys(comm)

	// Counters: one TYPE header per metric, one sample per task.
	if len(tasks) > 0 {
		counters := commCounters(metrics.CommSnapshot{})
		for _, c := range counters {
			if _, err := fmt.Fprintf(w, "# TYPE %s%s counter\n", promPrefix, c.Name); err != nil {
				return err
			}
			for _, task := range tasks {
				for _, tc := range commCounters(comm[task]) {
					if tc.Name == c.Name {
						if _, err := fmt.Fprintf(w, "%s%s{task=%q} %d\n",
							promPrefix, c.Name, task, tc.Value); err != nil {
							return err
						}
					}
				}
			}
		}
		// Per-lane bytes, only for lanes that moved anything.
		if _, err := fmt.Fprintf(w, "# TYPE %slane_bytes_total counter\n", promPrefix); err != nil {
			return err
		}
		for _, task := range tasks {
			for lane, b := range comm[task].LaneBytes {
				if b > 0 {
					if _, err := fmt.Fprintf(w, "%slane_bytes_total{task=%q,lane=\"%d\"} %d\n",
						promPrefix, task, lane, b); err != nil {
						return err
					}
				}
			}
		}
	}

	// Histograms: plain hists first, then families, each sorted by name.
	histNames := map[string]bool{}
	famNames := map[string]bool{}
	for _, set := range hists {
		for name := range set.Hists {
			histNames[name] = true
		}
		for name := range set.Families {
			famNames[name] = true
		}
	}
	htasks := sortedKeys(hists)
	for _, name := range sortedKeys(histNames) {
		if _, err := fmt.Fprintf(w, "# TYPE %s%s histogram\n", promPrefix, name); err != nil {
			return err
		}
		for _, task := range htasks {
			hs, ok := hists[task].Hists[name]
			if !ok {
				continue
			}
			if err := writeHist(w, name, fmt.Sprintf("task=%q", task), hs); err != nil {
				return err
			}
		}
	}
	for _, name := range sortedKeys(famNames) {
		if _, err := fmt.Fprintf(w, "# TYPE %s%s histogram\n", promPrefix, name); err != nil {
			return err
		}
		lk := familyLabel(name)
		for _, task := range htasks {
			fam, ok := hists[task].Families[name]
			if !ok {
				continue
			}
			for _, label := range sortedKeys(fam) {
				labels := fmt.Sprintf("task=%q,%s=%q", task, lk, label)
				if err := writeHist(w, name, labels, fam[label]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// writeHist emits one histogram's cumulative buckets, sum, and count.
// Empty buckets are skipped (the cumulative count does not change there),
// which keeps 64-bucket series readable; +Inf is always present. The +Inf
// and _count samples derive from the bucket values, not the snapshot's
// Count: under a live scrape the snapshot loads Count before the buckets,
// so a lagging Count could fall below the last cumulative bucket and
// produce a non-monotone histogram strict Prometheus consumers reject.
// Deriving everything from the same bucket loads keeps the exposition
// internally consistent; quiescent snapshots are identical either way.
func writeHist(w io.Writer, name, labels string, hs metrics.HistogramSnapshot) error {
	var cum int64
	for i, n := range hs.Buckets[:metrics.NumBuckets-1] {
		if n == 0 {
			continue
		}
		cum += n
		if _, err := fmt.Fprintf(w, "%s%s_bucket{%s,le=\"%d\"} %d\n",
			promPrefix, name, labels, metrics.BucketUpper(i), cum); err != nil {
			return err
		}
	}
	total := cum + hs.Buckets[metrics.NumBuckets-1]
	if _, err := fmt.Fprintf(w, "%s%s_bucket{%s,le=\"+Inf\"} %d\n",
		promPrefix, name, labels, total); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s%s_sum{%s} %d\n", promPrefix, name, labels, hs.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s%s_count{%s} %d\n", promPrefix, name, labels, total)
	return err
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
