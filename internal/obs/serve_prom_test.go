package obs

import (
	"bufio"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/metrics"
)

func sampleServe() map[string]metrics.ServeSnapshot {
	var s metrics.Serve
	s.AddPublish(1 << 20)
	s.AddPublish(1 << 20)
	s.AddRepublish(1 << 20)
	s.AddBankSwap()
	s.AddServed(7)
	s.AddShed()
	s.AddShed()
	s.AddRoutingReject()
	s.ObserveStaleness(1)
	s.SetActiveReplicas(3)
	return map[string]metrics.ServeSnapshot{"serving": s.Snapshot()}
}

// TestWriteServeProm pins the serving encoder: every ServeSnapshot field
// exported, deterministic ordering, gauges typed as gauges.
func TestWriteServeProm(t *testing.T) {
	var buf strings.Builder
	if err := WriteServeProm(&buf, sampleServe()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	wantSamples := map[string]int64{
		"serve_weight_publishes_total": 2,
		"serve_published_bytes_total":  3 << 20,
		"serve_republishes_total":      1,
		"serve_bank_swaps_total":       1,
		"serve_queries_served_total":   7,
		"serve_queries_shed_total":     2,
		"serve_batches_total":          1,
		"serve_routing_rejects_total":  1,
		"serve_staleness_versions_max": 1,
		"serve_active_replicas":        3,
	}
	for name, val := range wantSamples {
		want := fmt.Sprintf("%s%s{task=\"serving\"} %d\n", promPrefix, name, val)
		if !strings.Contains(out, want) {
			t.Errorf("missing sample %q in:\n%s", strings.TrimSpace(want), out)
		}
	}
	// Gauges must not be declared counters.
	for _, g := range []string{"serve_staleness_versions_max", "serve_active_replicas"} {
		if !strings.Contains(out, fmt.Sprintf("# TYPE %s%s gauge\n", promPrefix, g)) {
			t.Errorf("%s must be typed gauge", g)
		}
		if strings.Contains(out, fmt.Sprintf("# TYPE %s%s counter\n", promPrefix, g)) {
			t.Errorf("%s must not be typed counter", g)
		}
	}
	// The table covers every exported counter name exactly once.
	if got, want := strings.Count(out, "# TYPE"), len(wantSamples); got != want {
		t.Errorf("TYPE headers = %d, want %d", got, want)
	}
	// Determinism.
	var buf2 strings.Builder
	if err := WriteServeProm(&buf2, sampleServe()); err != nil {
		t.Fatal(err)
	}
	if out != buf2.String() {
		t.Error("encoder output is not deterministic")
	}
	// Empty input emits nothing (the shared /metrics stream stays clean).
	var empty strings.Builder
	if err := WriteServeProm(&empty, nil); err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Errorf("nil map produced output: %q", empty.String())
	}
}

// TestMetricsEndpointIncludesServe scrapes /metrics with a Serve provider
// attached and checks the serving series ride the same exposition, each
// sample well-formed.
func TestMetricsEndpointIncludesServe(t *testing.T) {
	srv := NewServer(Options{
		Metrics: func() map[string]metrics.CommSnapshot {
			return map[string]metrics.CommSnapshot{"worker0": {BytesSent: 42}}
		},
		Serve: sampleServe,
	})
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if !strings.Contains(body, promPrefix+"bytes_sent_total{task=\"worker0\"} 42") {
		t.Fatalf("comm series missing:\n%s", body)
	}
	if !strings.Contains(body, promPrefix+"serve_queries_served_total{task=\"serving\"} 7") {
		t.Fatalf("serve series missing:\n%s", body)
	}
	// Every non-comment line parses as name{labels} value.
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var name string
		var val int64
		if _, err := fmt.Sscanf(strings.NewReplacer("{", " ", "}", " ").Replace(line), "%s", &name); err != nil {
			t.Fatalf("unparseable line %q: %v", line, err)
		}
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &val); err != nil {
			t.Fatalf("sample %q has non-integer value: %v", line, err)
		}
	}
}
