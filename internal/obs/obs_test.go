package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureData builds a deterministic pair of provider maps: two tasks with
// hand-set counters and histograms recorded from fixed values.
func fixtureData() (map[string]metrics.CommSnapshot, map[string]metrics.SetSnapshot) {
	comm := map[string]metrics.CommSnapshot{
		"ps0": {
			BytesSent: 4096, BytesRecv: 1024, Messages: 8,
			MemCopies: 2, CopiedBytes: 512, SerializedBytes: 256,
			ZeroCopyOps: 6, DynTransfers: 3, Retries: 1,
		},
		"worker0": {
			BytesSent: 1024, BytesRecv: 4096, Messages: 8,
			StripeSegments: 4, StripedTransfers: 2,
			CoalesceFlushes: 1, CoalescedMessages: 5,
		},
	}
	w := comm["worker0"]
	w.LaneBytes[0] = 3000
	w.LaneBytes[2] = 1096
	comm["worker0"] = w

	mkSet := func(seed int64) metrics.SetSnapshot {
		var s metrics.Set
		step := s.Hist(metrics.HistStepNs)
		for i := int64(0); i < 5; i++ {
			step.Record(seed * (i + 1))
		}
		lat := s.Family(metrics.HistExecOpNs)
		lat.With("MatMul").Record(seed)
		lat.With("MatMul").Record(seed * 2)
		lat.With("Add").Record(7)
		sent := s.Family(metrics.HistEdgeSentBytes)
		sent.With("grad:w0->ps0").Record(1024)
		sent.With("grad:w0->ps0").Record(3072)
		return s.Snapshot()
	}
	hists := map[string]metrics.SetSnapshot{
		"ps0":     mkSet(1000),
		"worker0": mkSet(2500),
	}
	return comm, hists
}

func TestWritePromGolden(t *testing.T) {
	comm, hists := fixtureData()
	var buf bytes.Buffer
	if err := WriteProm(&buf, comm, hists); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("output differs from %s (run with -update to regenerate)\ngot:\n%s", golden, buf.String())
	}

	// Determinism: a second encode of the same snapshots is byte-identical.
	var again bytes.Buffer
	if err := WriteProm(&again, comm, hists); err != nil {
		t.Fatalf("WriteProm again: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("WriteProm is not deterministic across calls")
	}
}

// promLine matches one Prometheus text sample: name{labels} value.
var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (-?\d+)$`)

// parseProm validates the exposition format line by line and returns the
// samples as name{labels} -> value.
func parseProm(t *testing.T, text string) map[string]int64 {
	t.Helper()
	out := map[string]int64{}
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := promLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d is not valid Prometheus text: %q", i+1, line)
		}
		v, err := strconv.ParseInt(m[3], 10, 64)
		if err != nil {
			t.Fatalf("line %d value: %v", i+1, err)
		}
		out[m[1]+m[2]] = v
	}
	return out
}

func TestPromScrapeParsesAndIsConsistent(t *testing.T) {
	comm, hists := fixtureData()
	var buf bytes.Buffer
	if err := WriteProm(&buf, comm, hists); err != nil {
		t.Fatal(err)
	}
	samples := parseProm(t, buf.String())
	if len(samples) == 0 {
		t.Fatal("no samples parsed")
	}
	// Counter spot checks.
	if got := samples[`rdmadl_bytes_sent_total{task="ps0"}`]; got != 4096 {
		t.Errorf("ps0 bytes_sent_total = %d, want 4096", got)
	}
	if got := samples[`rdmadl_lane_bytes_total{task="worker0",lane="2"}`]; got != 1096 {
		t.Errorf("worker0 lane 2 bytes = %d, want 1096", got)
	}
	// Histogram invariants: every series' +Inf bucket equals its _count, and
	// cumulative buckets never exceed it.
	for key, v := range samples {
		if i := strings.Index(key, `le="+Inf"`); i >= 0 {
			countKey := strings.Replace(key, "_bucket{", "_count{", 1)
			countKey = strings.Replace(countKey, `,le="+Inf"`, "", 1)
			if c, ok := samples[countKey]; !ok || c != v {
				t.Errorf("+Inf bucket %s = %d but %s = %d", key, v, countKey, c)
			}
		}
	}
	// Family totals: MatMul + Add exec counts sum to the family total of 3.
	mm := samples[`rdmadl_exec_op_ns_count{task="ps0",op="MatMul"}`]
	add := samples[`rdmadl_exec_op_ns_count{task="ps0",op="Add"}`]
	if mm != 2 || add != 1 {
		t.Errorf("exec_op_ns counts: MatMul=%d Add=%d, want 2 and 1", mm, add)
	}
	// Edge sent-bytes sum matches the bytes recorded (1024+3072).
	if got := samples[`rdmadl_edge_sent_bytes_sum{task="ps0",edge="grad:w0->ps0"}`]; got != 4096 {
		t.Errorf("edge sent sum = %d, want 4096", got)
	}
}

// Under a live scrape the histogram snapshot's Count is loaded before its
// buckets, so Count can lag records that already landed in the buckets. The
// exposition must stay internally monotone regardless — +Inf and _count
// derive from the bucket values, never from the torn Count.
func TestWriteHistTornSnapshotStaysMonotone(t *testing.T) {
	var hs metrics.HistogramSnapshot
	hs.Buckets[3] = 5
	hs.Buckets[10] = 4
	hs.Buckets[metrics.NumBuckets-1] = 2
	hs.Count = 7 // torn read: three records landed after Count was loaded
	hs.Sum = 999
	var buf bytes.Buffer
	if err := writeHist(&buf, "torn_ns", `task="ps0"`, hs); err != nil {
		t.Fatal(err)
	}
	samples := parseProm(t, buf.String())
	inf := samples[`rdmadl_torn_ns_bucket{task="ps0",le="+Inf"}`]
	count := samples[`rdmadl_torn_ns_count{task="ps0"}`]
	if inf != 11 || count != 11 {
		t.Errorf("+Inf = %d, _count = %d, want both 11 (the bucket total)", inf, count)
	}
	var prev int64
	for key, v := range samples {
		if strings.Contains(key, "_bucket{") && !strings.Contains(key, "+Inf") {
			if v > inf {
				t.Errorf("bucket %s = %d exceeds +Inf %d: non-monotone exposition", key, v, inf)
			}
			if v > prev {
				prev = v
			}
		}
	}
	if prev > inf {
		t.Errorf("last cumulative bucket %d exceeds +Inf %d", prev, inf)
	}
}

func stepFixture() map[string]metrics.StepSummary {
	mk := func(wall time.Duration, n int) metrics.StepSummary {
		var st metrics.StepStat
		for i := 0; i < n; i++ {
			st.Observe(metrics.StepBreakdown{
				Wall: wall, Workers: 2,
				Compute: wall, Comm: wall / 2, PollWait: wall / 4, Idle: wall / 4,
				Ops: 10,
			})
		}
		return st.Summary()
	}
	return map[string]metrics.StepSummary{
		"ps0":     mk(10*time.Millisecond, 5),
		"worker0": mk(11*time.Millisecond, 5),
		"worker1": mk(40*time.Millisecond, 5), // straggler: ~4x the median
	}
}

func TestWriteStepReport(t *testing.T) {
	var buf bytes.Buffer
	WriteStepReport(&buf, stepFixture(), 0)
	out := buf.String()
	for _, want := range []string{"task", "worker1", "stragglers: worker1"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "stragglers: ps0") {
		t.Errorf("ps0 wrongly flagged as straggler:\n%s", out)
	}
}

func TestReporterPeriodic(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	r := NewReporter(w, 5*time.Millisecond, func() map[string]metrics.StepSummary {
		return stepFixture()
	}, 0)
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := strings.Count(buf.String(), "stragglers:")
		mu.Unlock()
		if n >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("reporter did not tick twice within deadline")
		}
		time.Sleep(time.Millisecond)
	}
	r.Stop()
	r.Stop() // idempotent
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestServerEndpoints(t *testing.T) {
	comm, hists := fixtureData()
	rec := trace.NewRecorder(16)
	rec.Instant("t0", "w0", "test", "boot", nil)
	done := rec.Span("t0", "w0", "exec", "step", nil)
	done()

	srv := NewServer(Options{
		Metrics: func() map[string]metrics.CommSnapshot { return comm },
		Hists:   func() map[string]metrics.SetSnapshot { return hists },
		Steps:   func() map[string]metrics.StepSummary { return stepFixture() },
		Trace:   rec,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, string, http.Header) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s read: %v", path, err)
		}
		return resp.StatusCode, string(body), resp.Header
	}

	// /metrics parses as Prometheus text and carries the fixture counters.
	code, body, hdr := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.HasPrefix(hdr.Get("Content-Type"), "text/plain") {
		t.Errorf("/metrics content type %q", hdr.Get("Content-Type"))
	}
	samples := parseProm(t, body)
	if samples[`rdmadl_bytes_sent_total{task="ps0"}`] != 4096 {
		t.Error("/metrics missing fixture counter")
	}

	// /trace is valid JSON with the recorded events.
	code, body, hdr = get("/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace status %d", code)
	}
	if hdr.Get("Content-Type") != "application/json" {
		t.Errorf("/trace content type %q", hdr.Get("Content-Type"))
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("/trace not valid JSON: %v\n%s", err, body)
	}
	if len(events) != 2 { // one instant + one complete span event
		t.Errorf("/trace has %d events, want 2", len(events))
	}
	if hdr.Get("X-Trace-Dropped") != "0" {
		t.Errorf("X-Trace-Dropped = %q, want 0", hdr.Get("X-Trace-Dropped"))
	}

	// /steps renders the report.
	code, body, _ = get("/steps")
	if code != http.StatusOK || !strings.Contains(body, "stragglers: worker1") {
		t.Errorf("/steps status %d body:\n%s", code, body)
	}

	// pprof index responds on the private mux.
	code, body, _ = get("/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ status %d", code)
	}
}

func TestServerStartClose(t *testing.T) {
	srv := NewServer(Options{})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatalf("GET live server: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d", resp.StatusCode)
	}
	// No trace recorder attached -> /trace is 404.
	resp, err = http.Get(fmt.Sprintf("http://%s/trace", addr))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/trace without recorder: status %d, want 404", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
