package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
)

// WriteStepReport renders each task's step-time profile — steps, mean/p50/
// p99 wall time, and the compute/comm/poll-wait/idle share of worker time —
// plus a straggler line when some task's mean step time stands out from the
// cluster median (factor <= 1 selects the default 1.5x).
func WriteStepReport(w io.Writer, steps map[string]metrics.StepSummary, factor float64) {
	fmt.Fprintf(w, "%-12s %6s %10s %10s %10s %8s %8s %8s %8s\n",
		"task", "steps", "mean", "p50", "p99", "compute", "comm", "poll", "idle")
	for _, task := range sortedKeys(steps) {
		s := steps[task]
		if s.Steps == 0 {
			fmt.Fprintf(w, "%-12s %6d\n", task, 0)
			continue
		}
		worker := float64(s.Totals.Wall.Nanoseconds()) * float64(s.Totals.Workers)
		share := func(d time.Duration) string {
			if worker <= 0 {
				return "-"
			}
			return fmt.Sprintf("%.0f%%", 100*float64(d.Nanoseconds())/worker)
		}
		fmt.Fprintf(w, "%-12s %6d %10v %10v %10v %8s %8s %8s %8s\n",
			task, s.Steps,
			s.MeanWall().Round(time.Microsecond),
			time.Duration(s.WallNs.Quantile(0.5)).Round(time.Microsecond),
			time.Duration(s.WallNs.Quantile(0.99)).Round(time.Microsecond),
			share(s.Totals.Compute), share(s.Totals.Comm),
			share(s.Totals.PollWait), share(s.Totals.Idle))
	}
	if lag := metrics.Stragglers(steps, factor); len(lag) > 0 {
		fmt.Fprintf(w, "stragglers: %s\n", strings.Join(lag, ", "))
	}
}

// Reporter periodically writes the step report to a sink (typically stderr
// or a log file) until stopped.
type Reporter struct {
	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// NewReporter starts a reporter that writes every interval. steps is called
// at each tick; factor is the straggler threshold (<= 1 for the default).
func NewReporter(w io.Writer, interval time.Duration,
	steps func() map[string]metrics.StepSummary, factor float64) *Reporter {
	r := &Reporter{stop: make(chan struct{})}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-t.C:
				WriteStepReport(w, steps(), factor)
			}
		}
	}()
	return r
}

// Stop halts the reporter and waits for its goroutine to exit.
func (r *Reporter) Stop() {
	r.once.Do(func() { close(r.stop) })
	r.wg.Wait()
}
