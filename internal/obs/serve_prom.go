package obs

import (
	"fmt"
	"io"

	"repro/internal/metrics"
)

// serveCounters lists ServeSnapshot's scalar fields in export order, the
// same table-driven shape as commCounters so the encoder and its test stay
// in lockstep. Gauges carry no _total suffix.
func serveCounters(s metrics.ServeSnapshot) []struct {
	Name  string
	Value int64
} {
	return []struct {
		Name  string
		Value int64
	}{
		{"serve_weight_publishes_total", s.WeightPublishes},
		{"serve_published_bytes_total", s.PublishedBytes},
		{"serve_republishes_total", s.Republishes},
		{"serve_bank_swaps_total", s.BankSwaps},
		{"serve_queries_served_total", s.QueriesServed},
		{"serve_queries_shed_total", s.QueriesShed},
		{"serve_batches_total", s.ServeBatches},
		{"serve_routing_rejects_total", s.RoutingRejects},
		{"serve_staleness_versions_max", s.StalenessVersionsMax},
		{"serve_active_replicas", s.ActiveReplicas},
	}
}

// WriteServeProm encodes per-deployment serving counters in the Prometheus
// text exposition format, deterministically (deployments and names sorted).
// It composes with WriteProm on the same stream: the serving series are
// namespaced apart from the communication series.
func WriteServeProm(w io.Writer, serve map[string]metrics.ServeSnapshot) error {
	names := sortedKeys(serve)
	if len(names) == 0 {
		return nil
	}
	for _, c := range serveCounters(metrics.ServeSnapshot{}) {
		kind := "counter"
		if c.Name == "serve_staleness_versions_max" || c.Name == "serve_active_replicas" {
			kind = "gauge"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s%s %s\n", promPrefix, c.Name, kind); err != nil {
			return err
		}
		for _, task := range names {
			for _, tc := range serveCounters(serve[task]) {
				if tc.Name == c.Name {
					if _, err := fmt.Fprintf(w, "%s%s{task=%q} %d\n",
						promPrefix, c.Name, task, tc.Value); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}
