package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// Options feeds the observability server. Every provider is optional: a nil
// provider just leaves its endpoint empty. Providers are called per request,
// so scrapes always see live values.
type Options struct {
	// Metrics supplies per-task communication counters (/metrics).
	Metrics func() map[string]metrics.CommSnapshot
	// Hists supplies per-task histogram registries (/metrics).
	Hists func() map[string]metrics.SetSnapshot
	// Serve supplies per-deployment serving-plane counters (/metrics).
	Serve func() map[string]metrics.ServeSnapshot
	// Steps supplies per-task step summaries (/steps).
	Steps func() map[string]metrics.StepSummary
	// Trace, when non-nil, serves the recorded timeline at /trace.
	Trace *trace.Recorder
	// StragglerFactor tunes the /steps straggler threshold (<= 1: 1.5x).
	StragglerFactor float64
}

// Server is the live observability HTTP endpoint: Prometheus-text metrics,
// an on-demand Chrome-trace JSON dump, a step-summary report, and pprof.
type Server struct {
	opts Options
	mux  *http.ServeMux
	ln   net.Listener
	srv  *http.Server
}

// NewServer builds the server without binding a socket; use Handler for
// in-process serving (tests) or Start to listen.
func NewServer(opts Options) *Server {
	s := &Server{opts: opts, mux: http.NewServeMux()}
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/trace", s.handleTrace)
	s.mux.HandleFunc("/steps", s.handleSteps)
	// pprof on our own mux: the package's init only touches
	// http.DefaultServeMux, which we deliberately do not serve.
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler exposes the route table (for httptest and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (e.g. ":9090", "127.0.0.1:0") and serves in the
// background, returning the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops the listener; in-flight requests are cut off.
func (s *Server) Close() error {
	if s.srv != nil {
		return s.srv.Close()
	}
	return nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var comm map[string]metrics.CommSnapshot
	var hists map[string]metrics.SetSnapshot
	if s.opts.Metrics != nil {
		comm = s.opts.Metrics()
	}
	if s.opts.Hists != nil {
		hists = s.opts.Hists()
	}
	_ = WriteProm(w, comm, hists)
	if s.opts.Serve != nil {
		_ = WriteServeProm(w, s.opts.Serve())
	}
}

func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	if s.opts.Trace == nil {
		http.Error(w, "obs: no trace recorder attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Trace-Dropped", fmt.Sprint(s.opts.Trace.Dropped()))
	_ = s.opts.Trace.WriteJSON(w)
}

func (s *Server) handleSteps(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.opts.Steps == nil {
		fmt.Fprintln(w, "no step provider attached")
		return
	}
	WriteStepReport(w, s.opts.Steps(), s.opts.StragglerFactor)
}
