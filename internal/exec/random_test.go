package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// Scheduler property test: random DAGs of scalar arithmetic must evaluate
// to the same values the executor computes regardless of worker count or
// schedule, matching a sequential reference evaluation.

// buildRandomDAG creates a random scalar-arithmetic graph and returns the
// expected value of every node under sequential evaluation.
func buildRandomDAG(t testing.TB, rng *rand.Rand, nodes int) (*graph.Graph, map[string]float32) {
	t.Helper()
	b := graph.NewBuilder()
	expected := make(map[string]float32)
	var all []*graph.Node

	// A few constant roots.
	roots := rng.Intn(3) + 2
	for i := 0; i < roots; i++ {
		v := float32(rng.Intn(10) + 1)
		c, err := tensor.FromFloat32(tensor.Shape{1}, []float32{v})
		if err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("c%d", i)
		all = append(all, b.Const(name, c))
		expected[name] = v
	}
	for i := 0; i < nodes; i++ {
		name := fmt.Sprintf("n%d", i)
		a := all[rng.Intn(len(all))]
		c := all[rng.Intn(len(all))]
		var n *graph.Node
		switch rng.Intn(4) {
		case 0:
			n = b.Add(name, a, c)
			expected[name] = expected[a.Name()] + expected[c.Name()]
		case 1:
			n = b.Sub(name, a, c)
			expected[name] = expected[a.Name()] - expected[c.Name()]
		case 2:
			n = b.Scale(name, a, 0.5)
			expected[name] = expected[a.Name()] * 0.5
		default:
			n = b.Identity(name, a)
			expected[name] = expected[a.Name()]
		}
		// Sprinkle control dependencies (always to earlier nodes: acyclic).
		if rng.Intn(4) == 0 {
			b.ControlDep(n, all[rng.Intn(len(all))])
		}
		all = append(all, n)
	}
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return g, expected
}

func TestSchedulerMatchesSequentialOnRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 25; trial++ {
		g, expected := buildRandomDAG(t, rng, 30)
		for _, workers := range []int{1, 4, 8} {
			e, err := New(g, Config{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			// Fetch every node and compare.
			var fetches []string
			for name := range expected {
				fetches = append(fetches, name)
			}
			out, err := e.Run(0, nil, fetches...)
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			for name, want := range expected {
				got := out[name].Float32s()[0]
				if d := got - want; d > 1e-4 || d < -1e-4 {
					t.Fatalf("trial %d workers %d: %s = %v, want %v",
						trial, workers, name, got, want)
				}
			}
		}
	}
}

// TestSchedulerRepeatedIterationsStable: re-running the same random graph
// many times yields identical results (no cross-iteration state leaks for
// stateless graphs).
func TestSchedulerRepeatedIterationsStable(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g, expected := buildRandomDAG(t, rng, 40)
	e, err := New(g, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var probe string
	for name := range expected {
		probe = name
		break
	}
	for iter := 0; iter < 20; iter++ {
		out, err := e.Run(iter, nil, probe)
		if err != nil {
			t.Fatal(err)
		}
		if got := out[probe].Float32s()[0]; got != expected[probe] {
			t.Fatalf("iteration %d: %s = %v, want %v", iter, probe, got, expected[probe])
		}
	}
}
