package exec

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/tensor"
)

func TestCheckpointRoundtrip(t *testing.T) {
	s := NewVarStore()
	w, _ := tensor.FromFloat32(tensor.Shape{2, 3}, []float32{1, 2, 3, 4, 5, 6})
	bias, _ := tensor.FromFloat32(tensor.Shape{3}, []float32{7, 8, 9})
	labels := tensor.New(tensor.Int32, 2)
	labels.Int32s()[1] = -4
	for name, tt := range map[string]*tensor.Tensor{"w": w, "bias": bias, "labels": labels} {
		if err := s.Create(name, tt); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}

	// Corrupt the live values, restore, verify in-place recovery.
	wPtr := &w.Bytes()[0]
	w.Fill(0)
	bias.Fill(0)
	labels.Zero()
	if err := s.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if w.Float32s()[5] != 6 || bias.Float32s()[0] != 7 || labels.Int32s()[1] != -4 {
		t.Error("restore did not recover values")
	}
	if &w.Bytes()[0] != wPtr {
		t.Error("restore must be in place (address stability for RDMA placement)")
	}
}

func TestCheckpointDeterministic(t *testing.T) {
	s := NewVarStore()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		tt := tensor.New(tensor.Float32, 4)
		tt.Fill(1)
		if err := s.Create(name, tt); err != nil {
			t.Fatal(err)
		}
	}
	var b1, b2 bytes.Buffer
	if err := s.Save(&b1); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("checkpoints are not byte-identical")
	}
}

func TestCheckpointErrors(t *testing.T) {
	s := NewVarStore()
	v := tensor.New(tensor.Float32, 2)
	if err := s.Create("v", v); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}

	// Bad magic.
	bad := append([]byte{1, 2, 3, 4}, buf.Bytes()[4:]...)
	if err := s.Load(bytes.NewReader(bad)); !errors.Is(err, ErrVar) {
		t.Errorf("bad magic: %v", err)
	}
	// Truncated stream.
	if err := s.Load(bytes.NewReader(buf.Bytes()[:6])); !errors.Is(err, ErrVar) {
		t.Errorf("truncated: %v", err)
	}
	// Checkpoint references a variable the store lacks.
	s2 := NewVarStore()
	if err := s2.Load(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrVar) {
		t.Errorf("missing var: %v", err)
	}
	// Shape mismatch.
	s3 := NewVarStore()
	if err := s3.Create("v", tensor.New(tensor.Float32, 5)); err != nil {
		t.Fatal(err)
	}
	if err := s3.Load(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrVar) {
		t.Errorf("shape mismatch: %v", err)
	}
	// DType mismatch.
	s4 := NewVarStore()
	if err := s4.Create("v", tensor.New(tensor.Int32, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s4.Load(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrVar) {
		t.Errorf("dtype mismatch: %v", err)
	}
}

func TestCheckpointExtraLiveVarsSurvive(t *testing.T) {
	// Optimizer slots created after the checkpoint must survive a restore.
	s := NewVarStore()
	v := tensor.New(tensor.Float32, 2)
	v.Fill(3)
	if err := s.Create("v", v); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	slot := tensor.New(tensor.Float32, 2)
	slot.Fill(9)
	if err := s.Create("v/velocity", slot); err != nil {
		t.Fatal(err)
	}
	v.Fill(0)
	if err := s.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if v.Float32s()[0] != 3 {
		t.Error("v not restored")
	}
	if slot.Float32s()[0] != 9 {
		t.Error("velocity slot clobbered by restore")
	}
}
