package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// benchTrainGraph builds the benchmark model — a small conv classifier with
// forward+backward+SGD — shared by the train-step and observability-overhead
// benchmarks.
func benchTrainGraph() (*graph.Graph, *VarStore, error) {
	const batch, h, w, ch, classes = 16, 16, 16, 3, 10
	rng := rand.New(rand.NewSource(1))
	gb := graph.NewBuilder()
	x := gb.Placeholder("x", graph.Static(tensor.Float32, batch, h, w, ch))
	labels := gb.Placeholder("labels", graph.Static(tensor.Int32, batch))
	c1w := gb.Variable("conv1_w", graph.Static(tensor.Float32, 8, 3, 3, ch))
	conv1 := gb.ReLU("relu1", gb.Conv2D("conv1", x, c1w, 1, 1))
	pool1 := gb.MaxPool("pool1", conv1)
	flat := gb.Reshape("flat", pool1, batch, 8*8*8)
	fcw := gb.Variable("fc_w", graph.Static(tensor.Float32, 8*8*8, classes))
	logits := gb.MatMul("fc", flat, fcw)
	loss := gb.SoftmaxXent("loss", logits, labels)
	vars := []*graph.Node{c1w, fcw}
	grads, err := graph.Gradients(gb, loss, vars)
	if err != nil {
		return nil, nil, err
	}
	var updates []*graph.Node
	for i, v := range vars {
		updates = append(updates, gb.ApplySGD(fmt.Sprintf("upd%d", i), v, grads[v], 0.05))
	}
	step := gb.Group("step", updates...)
	gb.Prune(append([]*graph.Node{loss, step}, updates...)...)
	g, err := gb.Finish()
	if err != nil {
		return nil, nil, err
	}
	store := NewVarStore()
	for _, v := range vars {
		t := tensor.New(tensor.Float32, v.Sig().Shape...)
		tensor.GlorotInit(t, rng)
		if err := store.Create(v.Name(), t); err != nil {
			return nil, nil, err
		}
	}
	return g, store, nil
}

// benchStep runs the executor over the benchmark model for b.N steps after
// one warm-up iteration.
func benchStep(b *testing.B, e *Executor) {
	b.Helper()
	rng := rand.New(rand.NewSource(2))
	xs := tensor.New(tensor.Float32, 16, 16, 16, 3)
	ls := tensor.New(tensor.Int32, 16)
	tensor.RandomNormal(xs, rng, 1)
	tensor.RandomLabels(ls, rng, 10)
	feeds := map[string]*tensor.Tensor{"x": xs, "labels": ls}
	// Warm the recycler cache (and histogram pointers) before measuring.
	if _, err := e.Run(0, feeds, "loss", "step"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(i+1, feeds, "loss", "step"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainStep measures a full forward+backward+SGD iteration of a
// small conv classifier, with and without output-tensor recycling. Run with
// -benchmem: the recycle=on steady state should allocate materially fewer
// tensors per iteration (scripts/bench.sh records both).
func BenchmarkTrainStep(b *testing.B) {
	for _, recycle := range []bool{false, true} {
		b.Run(fmt.Sprintf("recycle=%v", recycle), func(b *testing.B) {
			g, store, err := benchTrainGraph()
			if err != nil {
				b.Fatal(err)
			}
			e, err := New(g, Config{Vars: store, DisableRecycle: !recycle})
			if err != nil {
				b.Fatal(err)
			}
			benchStep(b, e)
		})
	}
}

// BenchmarkTrainStepObs measures what the observability layer costs on the
// same train step: obs=off (no histograms, no trace), obs=hists (latency
// histograms recording on every operator execution), and obs=hists+trace
// (plus a trace span per execution). scripts/bench.sh records all three
// into BENCH_obs.json; the histogram-only overhead is the one that matters,
// since histograms are meant to stay on in production.
func BenchmarkTrainStepObs(b *testing.B) {
	for _, mode := range []string{"off", "hists", "hists+trace"} {
		b.Run("obs="+mode, func(b *testing.B) {
			g, store, err := benchTrainGraph()
			if err != nil {
				b.Fatal(err)
			}
			cfg := Config{Vars: store}
			switch mode {
			case "hists":
				cfg.Hists = &metrics.Set{}
			case "hists+trace":
				cfg.Hists = &metrics.Set{}
				cfg.Trace = trace.NewRecorder(0)
			}
			e, err := New(g, cfg)
			if err != nil {
				b.Fatal(err)
			}
			benchStep(b, e)
		})
	}
}
