package exec

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/tensor"
)

func mustRun(t *testing.T, e *Executor, iter int, feeds map[string]*tensor.Tensor, fetches ...string) map[string]*tensor.Tensor {
	t.Helper()
	out, err := e.Run(iter, feeds, fetches...)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRunSimpleChain(t *testing.T) {
	b := graph.NewBuilder()
	x := b.Placeholder("x", graph.Static(tensor.Float32, 2, 2))
	y := b.Scale("y", x, 3)
	z := b.ReduceMax("z", y)
	_ = z
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	in, _ := tensor.FromFloat32(tensor.Shape{2, 2}, []float32{1, -2, 5, 0})
	out := mustRun(t, e, 0, map[string]*tensor.Tensor{"x": in}, "y", "z")
	if out["z"].Float32s()[0] != 15 {
		t.Errorf("z = %v", out["z"].Float32s()[0])
	}
	if out["y"].Float32s()[1] != -6 {
		t.Errorf("y = %v", out["y"].Float32s())
	}
}

func TestVariablesAndSGD(t *testing.T) {
	b := graph.NewBuilder()
	v := b.Variable("v", graph.Static(tensor.Float32, 3))
	gph := b.Placeholder("g", graph.Static(tensor.Float32, 3))
	upd := b.ApplySGD("upd", v, gph, 0.5)
	_ = upd
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	vars := NewVarStore()
	init, _ := tensor.FromFloat32(tensor.Shape{3}, []float32{1, 2, 3})
	if err := vars.Create("v", init); err != nil {
		t.Fatal(err)
	}
	if err := vars.Create("v", init); !errors.Is(err, ErrVar) {
		t.Errorf("duplicate create: %v", err)
	}
	e, err := New(g, Config{Vars: vars})
	if err != nil {
		t.Fatal(err)
	}
	grad, _ := tensor.FromFloat32(tensor.Shape{3}, []float32{2, 2, 2})
	out := mustRun(t, e, 0, map[string]*tensor.Tensor{"g": grad}, "upd")
	want := []float32{0, 1, 2}
	for i, w := range want {
		if out["upd"].Float32s()[i] != w {
			t.Errorf("v[%d] = %v, want %v", i, out["upd"].Float32s()[i], w)
		}
	}
	// The update is in place: the store's tensor changed.
	vt, _ := vars.VarTensor("v")
	if vt.Float32s()[0] != 0 {
		t.Error("variable store not updated in place")
	}
	// Second iteration applies again.
	mustRun(t, e, 1, map[string]*tensor.Tensor{"g": grad}, "upd")
	if vt.Float32s()[0] != -1 {
		t.Errorf("second update: %v", vt.Float32s()[0])
	}
}

func TestFeedValidation(t *testing.T) {
	b := graph.NewBuilder()
	b.Placeholder("x", graph.Static(tensor.Float32, 2, 3))
	g, _ := b.Finish()
	e, _ := New(g, Config{})
	if _, err := e.Run(0, map[string]*tensor.Tensor{"nope": tensor.New(tensor.Float32, 1)}); !errors.Is(err, ErrFeed) {
		t.Errorf("unknown feed: %v", err)
	}
	if _, err := e.Run(0, map[string]*tensor.Tensor{"x": tensor.New(tensor.Int32, 2, 3)}); !errors.Is(err, ErrFeed) {
		t.Errorf("dtype mismatch: %v", err)
	}
	if _, err := e.Run(0, map[string]*tensor.Tensor{"x": tensor.New(tensor.Float32, 2, 4)}); !errors.Is(err, ErrFeed) {
		t.Errorf("dim mismatch: %v", err)
	}
	if _, err := e.Run(0, map[string]*tensor.Tensor{"x": tensor.New(tensor.Float32, 6)}); !errors.Is(err, ErrFeed) {
		t.Errorf("rank mismatch: %v", err)
	}
	// Missing feed surfaces as a node error at run time.
	if _, err := e.Run(0, nil, "x"); err == nil {
		t.Error("missing feed accepted")
	}
}

func TestDynamicFeedAllowed(t *testing.T) {
	b := graph.NewBuilder()
	x := b.Placeholder("x", graph.Dyn(tensor.Float32, -1, 4))
	b.Identity("y", x)
	g, _ := b.Finish()
	e, _ := New(g, Config{})
	for _, batch := range []int{1, 3, 7} {
		in := tensor.New(tensor.Float32, batch, 4)
		out := mustRun(t, e, 0, map[string]*tensor.Tensor{"x": in}, "y")
		if out["y"].Shape()[0] != batch {
			t.Errorf("batch %d: got %v", batch, out["y"].Shape())
		}
	}
}

func TestFetchValidation(t *testing.T) {
	b := graph.NewBuilder()
	b.Placeholder("x", graph.Static(tensor.Float32, 1))
	g, _ := b.Finish()
	e, _ := New(g, Config{})
	if _, err := e.Run(0, nil, "nothere"); !errors.Is(err, ErrFetch) {
		t.Errorf("unknown fetch: %v", err)
	}
}

func TestPartitionValidation(t *testing.T) {
	b := graph.NewBuilder()
	b.OnTask("a")
	x := b.Placeholder("x", graph.Static(tensor.Float32, 1))
	b.OnTask("b")
	b.Identity("y", x) // crosses a->b without send/recv
	g, _ := b.Finish()
	if _, err := New(g, Config{Task: "b"}); !errors.Is(err, graph.ErrBadGraph) {
		t.Errorf("cross-partition edge: %v", err)
	}
	// Partition "a" alone is fine.
	if _, err := New(g, Config{Task: "a"}); err != nil {
		t.Errorf("partition a: %v", err)
	}
}

// pollOp becomes ready after N polls; counts poll attempts.
type pollOp struct {
	needed int32
	polls  atomic.Int32
}

func (p *pollOp) Name() string { return "TestPoll" }
func (p *pollOp) InferSig(in []graph.Sig) (graph.Sig, error) {
	return graph.Static(tensor.Float32), nil
}
func (p *pollOp) Poll(ctx *graph.Context) (bool, error) {
	return p.polls.Add(1) >= p.needed, nil
}
func (p *pollOp) Compute(ctx *graph.Context) error {
	out, err := ctx.Alloc(tensor.Float32, nil)
	if err != nil {
		return err
	}
	out.Float32s()[0] = 42
	ctx.Output = out
	return nil
}

func TestPollingAsyncRequeues(t *testing.T) {
	b := graph.NewBuilder()
	op := &pollOp{needed: 10}
	n := b.AddNode("poller", op)
	b.ReduceMax("consume", n)
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	e, _ := New(g, Config{Workers: 2})
	out := mustRun(t, e, 0, nil, "consume")
	if out["consume"].Float32s()[0] != 42 {
		t.Errorf("consume = %v", out["consume"].Float32s()[0])
	}
	if op.polls.Load() < 10 {
		t.Errorf("polled %d times, want >= 10", op.polls.Load())
	}
}

// failOp always errors.
type failOp struct{}

func (failOp) Name() string { return "Fail" }
func (failOp) InferSig(in []graph.Sig) (graph.Sig, error) {
	return graph.Static(tensor.Float32), nil
}
func (failOp) Compute(ctx *graph.Context) error { return fmt.Errorf("deliberate") }

func TestErrorPropagates(t *testing.T) {
	b := graph.NewBuilder()
	n := b.AddNode("bad", failOp{})
	b.ReduceMax("sink", n)
	g, _ := b.Finish()
	e, _ := New(g, Config{})
	_, err := e.Run(0, nil, "sink")
	if err == nil || !errors.Is(err, errors.Unwrap(err)) && err.Error() == "" {
		t.Fatalf("expected error, got %v", err)
	}
}

// asyncOp completes on a separate goroutine.
type asyncOp struct{}

func (asyncOp) Name() string { return "TestAsync" }
func (asyncOp) InferSig(in []graph.Sig) (graph.Sig, error) {
	return graph.Static(tensor.Float32), nil
}
func (asyncOp) ComputeAsync(ctx *graph.Context, done func(error)) {
	go func() {
		out, err := ctx.Alloc(tensor.Float32, nil)
		if err != nil {
			done(err)
			return
		}
		out.Float32s()[0] = 7
		ctx.Output = out
		done(nil)
	}()
}

func TestAsyncKernel(t *testing.T) {
	b := graph.NewBuilder()
	n := b.AddNode("async", asyncOp{})
	b.Scale("x2", n, 2)
	g, _ := b.Finish()
	e, _ := New(g, Config{})
	out := mustRun(t, e, 0, nil, "x2")
	if out["x2"].Float32s()[0] != 14 {
		t.Errorf("x2 = %v", out["x2"].Float32s()[0])
	}
}

// parkedAsyncOp dispatches and then parks until the test releases it,
// recording whether the iteration's cancel flag was raised by then.
type parkedAsyncOp struct {
	started   chan struct{}
	release   chan struct{}
	sawCancel atomic.Bool
}

func (op *parkedAsyncOp) Name() string { return "Parked" }
func (op *parkedAsyncOp) InferSig(in []graph.Sig) (graph.Sig, error) {
	return graph.Static(tensor.Float32), nil
}
func (op *parkedAsyncOp) ComputeAsync(ctx *graph.Context, done func(error)) {
	go func() {
		close(op.started)
		<-op.release
		if ctx.Canceled != nil && ctx.Canceled() {
			op.sawCancel.Store(true)
		}
		done(fmt.Errorf("parked"))
	}()
}

// An aborted Run must not return while an asynchronous operation is still
// in flight: the caller reuses feeds, slots, and arena memory for the next
// iteration, and a completion landing after Run returned would race it.
// The run's cancel flag must also be visible to the op (that is what bounds
// the drain for retried transfers).
func TestRunDrainsInflightAsyncOnAbort(t *testing.T) {
	op := &parkedAsyncOp{started: make(chan struct{}), release: make(chan struct{})}
	b := graph.NewBuilder()
	n := b.AddNode("parked", op)
	b.Scale("sink", n, 1)
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() {
		_, err := e.Run(0, nil, "sink")
		runDone <- err
	}()
	<-op.started
	e.Abort(fmt.Errorf("test abort"))
	select {
	case err := <-runDone:
		t.Fatalf("Run returned with an async op still in flight: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(op.release)
	select {
	case err := <-runDone:
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("Run err = %v, want ErrAborted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run never returned after the async op completed")
	}
	if !op.sawCancel.Load() {
		t.Error("async op never observed Context.Canceled after the abort")
	}
}

// parkingEnv mimics an environment that parks async completion callbacks
// waiting for sibling work (a partially staged coalesced batch): the op
// hands its done callback to the env instead of completing, and only
// FailPending releases it.
type parkingEnv struct {
	mu     sync.Mutex
	parked []func(error)
	failed atomic.Int32
}

func (p *parkingEnv) park(done func(error)) {
	p.mu.Lock()
	p.parked = append(p.parked, done)
	p.mu.Unlock()
}

func (p *parkingEnv) FailPending(cause error) {
	p.mu.Lock()
	parked := p.parked
	p.parked = nil
	p.mu.Unlock()
	for _, done := range parked {
		p.failed.Add(1)
		done(fmt.Errorf("parked completion failed: %w", cause))
	}
}

// parkOp parks its completion in the env and signals it did so.
type parkOp struct{ staged chan struct{} }

func (op *parkOp) Name() string { return "Park" }
func (op *parkOp) InferSig(in []graph.Sig) (graph.Sig, error) {
	return graph.Static(tensor.Float32), nil
}
func (op *parkOp) ComputeAsync(ctx *graph.Context, done func(error)) {
	ctx.Env.(*parkingEnv).park(done)
	close(op.staged)
}

// gatedFailOp errors only after the park op has staged, forcing the
// worst-case ordering: the completion is parked first, the run dies after.
type gatedFailOp struct{ gate chan struct{} }

func (op *gatedFailOp) Name() string { return "GatedFail" }
func (op *gatedFailOp) InferSig(in []graph.Sig) (graph.Sig, error) {
	return graph.Static(tensor.Float32), nil
}
func (op *gatedFailOp) Compute(ctx *graph.Context) error {
	<-op.gate
	return fmt.Errorf("deliberate")
}

// A completion parked in the environment has no retry loop polling the
// cancel flag on its behalf, so an aborted Run must actively fail it (via
// the environment's FailPending) — otherwise the quiesce drain waits on it
// forever. Regression test for a deadlock where coalesced-batch members
// staged by a dying iteration hung Run, Step, and recovery with it.
func TestRunFailsEnvParkedCompletionsOnFailure(t *testing.T) {
	env := &parkingEnv{}
	staged := make(chan struct{})
	b := graph.NewBuilder()
	p := b.AddNode("parked", &parkOp{staged: staged})
	f := b.AddNode("bad", &gatedFailOp{gate: staged})
	b.ReduceMax("sinkP", p)
	b.ReduceMax("sinkF", f)
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, Config{Workers: 2, Env: env})
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() {
		_, err := e.Run(0, nil, "sinkP", "sinkF")
		runDone <- err
	}()
	select {
	case err := <-runDone:
		if err == nil {
			t.Fatal("Run succeeded with a parked completion and a failing node")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run deadlocked on a completion parked in the environment")
	}
	if got := env.failed.Load(); got != 1 {
		t.Errorf("FailPending released %d completions, want 1", got)
	}
}

// TestMLPForwardMatchesDirectMath runs a 2-layer MLP through the executor
// and compares with straight tensor-kernel computation.
func TestMLPForwardMatchesDirectMath(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const batch, in, hid, out = 4, 6, 5, 3

	b := graph.NewBuilder()
	x := b.Placeholder("x", graph.Static(tensor.Float32, batch, in))
	w1 := b.Variable("w1", graph.Static(tensor.Float32, in, hid))
	b1 := b.Variable("b1", graph.Static(tensor.Float32, hid))
	h := b.Sigmoid("h", b.BiasAdd("z1", b.MatMul("mm1", x, w1), b1))
	w2 := b.Variable("w2", graph.Static(tensor.Float32, hid, out))
	logits := b.MatMul("logits", h, w2)
	_ = logits
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	vars := NewVarStore()
	w1t := tensor.New(tensor.Float32, in, hid)
	b1t := tensor.New(tensor.Float32, hid)
	w2t := tensor.New(tensor.Float32, hid, out)
	tensor.RandomUniform(w1t, rng, 1)
	tensor.RandomUniform(b1t, rng, 1)
	tensor.RandomUniform(w2t, rng, 1)
	for name, tt := range map[string]*tensor.Tensor{"w1": w1t, "b1": b1t, "w2": w2t} {
		if err := vars.Create(name, tt); err != nil {
			t.Fatal(err)
		}
	}
	e, _ := New(g, Config{Vars: vars, Workers: 3})
	xt := tensor.New(tensor.Float32, batch, in)
	tensor.RandomUniform(xt, rng, 1)
	got := mustRun(t, e, 0, map[string]*tensor.Tensor{"x": xt}, "logits")["logits"]

	// Direct math.
	z1 := tensor.New(tensor.Float32, batch, hid)
	if err := tensor.MatMul(z1, xt, w1t); err != nil {
		t.Fatal(err)
	}
	if err := tensor.AddBias(z1, b1t); err != nil {
		t.Fatal(err)
	}
	ht := tensor.New(tensor.Float32, batch, hid)
	if err := tensor.Sigmoid(ht, z1); err != nil {
		t.Fatal(err)
	}
	want := tensor.New(tensor.Float32, batch, out)
	if err := tensor.MatMul(want, ht, w2t); err != nil {
		t.Fatal(err)
	}
	if !got.AllClose(want, 1e-5) {
		t.Error("executor output differs from direct math")
	}
}

// TestAutodiffNumeric checks executor-evaluated gradients against numeric
// differentiation through the whole graph.
func TestAutodiffNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const batch, in, hid, classes = 3, 4, 5, 3

	b := graph.NewBuilder()
	x := b.Placeholder("x", graph.Static(tensor.Float32, batch, in))
	labels := b.Placeholder("labels", graph.Static(tensor.Int32, batch))
	w1 := b.Variable("w1", graph.Static(tensor.Float32, in, hid))
	b1 := b.Variable("b1", graph.Static(tensor.Float32, hid))
	w2 := b.Variable("w2", graph.Static(tensor.Float32, hid, classes))
	h := b.Tanh("h", b.BiasAdd("z1", b.MatMul("mm1", x, w1), b1))
	logits := b.MatMul("logits", h, w2)
	loss := b.SoftmaxXent("loss", logits, labels)
	grads, err := graph.Gradients(b, loss, []*graph.Node{w1, b1, w2})
	if err != nil {
		t.Fatal(err)
	}
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}

	vars := NewVarStore()
	params := map[string]*tensor.Tensor{
		"w1": tensor.New(tensor.Float32, in, hid),
		"b1": tensor.New(tensor.Float32, hid),
		"w2": tensor.New(tensor.Float32, hid, classes),
	}
	for name, p := range params {
		tensor.RandomUniform(p, rng, 1)
		if err := vars.Create(name, p); err != nil {
			t.Fatal(err)
		}
	}
	e, _ := New(g, Config{Vars: vars})
	xt := tensor.New(tensor.Float32, batch, in)
	tensor.RandomUniform(xt, rng, 1)
	lt := tensor.New(tensor.Int32, batch)
	tensor.RandomLabels(lt, rng, classes)
	feeds := map[string]*tensor.Tensor{"x": xt, "labels": lt}

	lossAt := func() float32 {
		out := mustRun(t, e, 0, feeds, "loss")
		return out["loss"].Float32s()[0]
	}

	for _, varName := range []string{"w1", "b1", "w2"} {
		vnode, _ := g.Node(varName)
		gradNode := grads[vnode]
		analytic := mustRun(t, e, 0, feeds, gradNode.Name())[gradNode.Name()]
		p := params[varName]
		// Spot-check a few elements per parameter.
		for _, i := range []int{0, p.NumElements() / 2, p.NumElements() - 1} {
			const eps = 1e-2
			orig := p.Float32s()[i]
			p.Float32s()[i] = orig + eps
			fp := lossAt()
			p.Float32s()[i] = orig - eps
			fm := lossAt()
			p.Float32s()[i] = orig
			numeric := (fp - fm) / (2 * eps)
			if math.Abs(float64(numeric-analytic.Float32s()[i])) > 5e-2 {
				t.Errorf("%s[%d]: analytic %v numeric %v", varName, i, analytic.Float32s()[i], numeric)
			}
		}
	}
}

// TestTrainingConverges trains a tiny classifier to fit random data; loss
// must drop substantially, proving the full build-grads-apply loop works.
func TestTrainingConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const batch, in, classes = 16, 8, 4

	b := graph.NewBuilder()
	x := b.Placeholder("x", graph.Static(tensor.Float32, batch, in))
	labels := b.Placeholder("labels", graph.Static(tensor.Int32, batch))
	w := b.Variable("w", graph.Static(tensor.Float32, in, classes))
	bias := b.Variable("bias", graph.Static(tensor.Float32, classes))
	logits := b.BiasAdd("logits", b.MatMul("mm", x, w), bias)
	loss := b.SoftmaxXent("loss", logits, labels)
	grads, err := graph.Gradients(b, loss, []*graph.Node{w, bias})
	if err != nil {
		t.Fatal(err)
	}
	updW := b.ApplySGD("updW", w, grads[w], 0.5)
	updB := b.ApplySGD("updB", bias, grads[bias], 0.5)
	step := b.Group("step", updW, updB)
	_ = step
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	vars := NewVarStore()
	wt := tensor.New(tensor.Float32, in, classes)
	bt := tensor.New(tensor.Float32, classes)
	tensor.GlorotInit(wt, rng)
	if err := vars.Create("w", wt); err != nil {
		t.Fatal(err)
	}
	if err := vars.Create("bias", bt); err != nil {
		t.Fatal(err)
	}
	e, _ := New(g, Config{Vars: vars})

	xt := tensor.New(tensor.Float32, batch, in)
	tensor.RandomUniform(xt, rng, 1)
	lt := tensor.New(tensor.Int32, batch)
	tensor.RandomLabels(lt, rng, classes)
	feeds := map[string]*tensor.Tensor{"x": xt, "labels": lt}

	var first, last float32
	for iter := 0; iter < 80; iter++ {
		out := mustRun(t, e, iter, feeds, "loss", "step")
		l := out["loss"].Float32s()[0]
		if iter == 0 {
			first = l
		}
		last = l
	}
	if last > first*0.5 {
		t.Errorf("loss did not converge: first %v, last %v", first, last)
	}
}

func BenchmarkExecutorMLPStep(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const batch, in, hid, classes = 32, 64, 64, 10
	bb := graph.NewBuilder()
	x := bb.Placeholder("x", graph.Static(tensor.Float32, batch, in))
	labels := bb.Placeholder("labels", graph.Static(tensor.Int32, batch))
	w1 := bb.Variable("w1", graph.Static(tensor.Float32, in, hid))
	w2 := bb.Variable("w2", graph.Static(tensor.Float32, hid, classes))
	h := bb.ReLU("h", bb.MatMul("mm1", x, w1))
	loss := bb.SoftmaxXent("loss", bb.MatMul("logits", h, w2), labels)
	grads, err := graph.Gradients(bb, loss, []*graph.Node{w1, w2})
	if err != nil {
		b.Fatal(err)
	}
	bb.Group("step",
		bb.ApplySGD("u1", w1, grads[w1], 0.01),
		bb.ApplySGD("u2", w2, grads[w2], 0.01))
	g, err := bb.Finish()
	if err != nil {
		b.Fatal(err)
	}
	vars := NewVarStore()
	w1t := tensor.New(tensor.Float32, in, hid)
	w2t := tensor.New(tensor.Float32, hid, classes)
	tensor.GlorotInit(w1t, rng)
	tensor.GlorotInit(w2t, rng)
	_ = vars.Create("w1", w1t)
	_ = vars.Create("w2", w2t)
	e, _ := New(g, Config{Vars: vars})
	xt := tensor.New(tensor.Float32, batch, in)
	tensor.RandomUniform(xt, rng, 1)
	lt := tensor.New(tensor.Int32, batch)
	tensor.RandomLabels(lt, rng, classes)
	feeds := map[string]*tensor.Tensor{"x": xt, "labels": lt}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(i, feeds, "step"); err != nil {
			b.Fatal(err)
		}
	}
}
