package exec

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// buildChain constructs x -> scale -> add(scale, scale) -> reducemax, whose
// middle nodes allocate one output tensor each via ctx.Alloc.
func buildChain(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	x := b.Placeholder("x", graph.Static(tensor.Float32, 4, 4))
	y := b.Scale("y", x, 2)
	z := b.Add("z", y, y)
	b.ReduceMax("m", z)
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func feed(t *testing.T, v float32) map[string]*tensor.Tensor {
	t.Helper()
	in := tensor.New(tensor.Float32, 4, 4)
	in.Fill(v)
	return map[string]*tensor.Tensor{"x": in}
}

func TestRecycleReusesAcrossIterations(t *testing.T) {
	e, err := New(buildChain(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if e.recycle == nil {
		t.Fatal("HeapPolicy executor should recycle")
	}
	out1 := mustRun(t, e, 0, feed(t, 1), "m")
	if got := out1["m"].Float32s()[0]; got != 4 {
		t.Fatalf("iter0 m = %v, want 4", got)
	}
	if e.recycle.cacheSize() == 0 {
		t.Fatal("no tensors cached after first iteration")
	}
	// Second iteration must be served from the cache and still be correct.
	out2 := mustRun(t, e, 1, feed(t, 3), "m")
	if got := out2["m"].Float32s()[0]; got != 12 {
		t.Fatalf("iter1 m = %v, want 12", got)
	}
}

func TestRecycleExcludesFetchedOutputs(t *testing.T) {
	e, err := New(buildChain(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Fetch the allocated intermediates: their buffers escape to us and must
	// not be overwritten by the next iteration.
	out1 := mustRun(t, e, 0, feed(t, 1), "y", "z")
	y1, z1 := out1["y"].Clone(), out1["z"].Clone()
	mustRun(t, e, 1, feed(t, 100), "m")
	if !out1["y"].Equal(y1) {
		t.Fatalf("fetched y mutated by next iteration: %v", out1["y"].Float32s()[:4])
	}
	if !out1["z"].Equal(z1) {
		t.Fatalf("fetched z mutated by next iteration: %v", out1["z"].Float32s()[:4])
	}
}

func TestRecycleExcludesFetchedReshapeView(t *testing.T) {
	// A fetched Reshape output aliases the storage of the tensor its input
	// node allocated; backing-buffer identity must keep that tensor out of
	// the cache even though the Reshape node itself allocates nothing.
	b := graph.NewBuilder()
	x := b.Placeholder("x", graph.Static(tensor.Float32, 4, 4))
	y := b.Scale("y", x, 2)
	r := b.Reshape("r", y, 16)
	b.ReduceMax("m", r)
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	out1 := mustRun(t, e, 0, feed(t, 1), "r")
	r1 := out1["r"].Clone()
	mustRun(t, e, 1, feed(t, 50), "m")
	if !out1["r"].Equal(r1) {
		t.Fatalf("fetched reshape view mutated by next iteration: %v", out1["r"].Float32s()[:4])
	}
}

func TestRecycledTensorsAreZeroed(t *testing.T) {
	// The recycler's tensors held old values; Alloc's contract is a
	// zero-filled tensor. Scale overwrites fully, so observe zeroing
	// indirectly: outputs must match a fresh executor exactly.
	e, err := New(buildChain(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	mustRun(t, e, 0, feed(t, -7), "m")
	out := mustRun(t, e, 1, feed(t, 5), "z")
	fresh, err := New(buildChain(t), Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := mustRun(t, fresh, 0, feed(t, 5), "z")
	if !out["z"].Equal(want["z"]) {
		t.Fatalf("recycled run differs from fresh run: %v vs %v",
			out["z"].Float32s(), want["z"].Float32s())
	}
}

// nonRecyclingPolicy mimics the analyzer's tracing policy: it must observe
// every allocation, so it forbids recycling and counts calls.
type nonRecyclingPolicy struct{ calls *int }

func (p nonRecyclingPolicy) Alloc(_ *graph.Node, _, _ int, dt tensor.DType, shape tensor.Shape) (*tensor.Tensor, error) {
	*p.calls++
	return tensor.New(dt, shape...), nil
}

func (nonRecyclingPolicy) AllowRecycle() bool { return false }

func TestRecycleRespectsPolicyOptOut(t *testing.T) {
	calls := 0
	e, err := New(buildChain(t), Config{Policy: nonRecyclingPolicy{calls: &calls}, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if e.recycle != nil {
		t.Fatal("opt-out policy must disable the recycler")
	}
	mustRun(t, e, 0, feed(t, 1), "m")
	after1 := calls
	mustRun(t, e, 1, feed(t, 1), "m")
	if calls != 2*after1 {
		t.Fatalf("policy saw %d allocations after two iters, want %d", calls, 2*after1)
	}
}

func TestRecycleDisableFlag(t *testing.T) {
	e, err := New(buildChain(t), Config{DisableRecycle: true})
	if err != nil {
		t.Fatal(err)
	}
	if e.recycle != nil {
		t.Fatal("DisableRecycle must disable the recycler")
	}
}

func TestRecycleSteadyStateAllocFree(t *testing.T) {
	// After warm-up, iterations with unfetched intermediates should serve
	// every intermediate from the cache: the policy sees no new allocations.
	calls := 0
	countingHeap := countingPolicy{calls: &calls}
	e, err := New(buildChain(t), Config{Policy: countingHeap, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if e.recycle == nil {
		t.Fatal("counting heap policy should recycle")
	}
	mustRun(t, e, 0, feed(t, 1), "m")
	warm := calls
	if warm == 0 {
		t.Fatal("first iteration allocated nothing")
	}
	for i := 1; i < 5; i++ {
		mustRun(t, e, i, feed(t, float32(i)), "m")
	}
	// "m" is a fetched scalar, so its tensor is excluded and re-allocated
	// every iteration; the intermediates must all be recycled.
	perIter := (calls - warm) / 4
	if perIter > 1 {
		t.Fatalf("steady state allocates %d tensors/iter, want <= 1 (fetched scalar only)", perIter)
	}
}

type countingPolicy struct{ calls *int }

func (p countingPolicy) Alloc(_ *graph.Node, _, _ int, dt tensor.DType, shape tensor.Shape) (*tensor.Tensor, error) {
	*p.calls++
	return tensor.New(dt, shape...), nil
}

func (countingPolicy) AllowRecycle() bool { return true }
