package exec

import (
	"sync"

	"repro/internal/metrics"
	"repro/internal/tensor"
)

// Iteration-scoped output recycling. Training runs the same partition every
// mini-batch, so the k-th allocation of node n has the same dtype and shape
// iteration after iteration; once iteration i finishes, iteration i-1's
// tensors are garbage. The recycler keys each allocation by (node id, alloc
// index) and hands last iteration's tensor back instead of allocating,
// zeroed so kernels observe exactly the tensor.New contract.
//
// Safety rules:
//   - Recycling is opt-in per AllocPolicy (the Recycler marker): the
//     analyzer's tracing policy must see every allocation to promote hot
//     sites into the registered arena, so it never recycles.
//   - Only tensors obtained through ctx.Alloc participate. Pass-through
//     outputs (Identity, Variable, Const, Reshape) and VarStore tensors
//     never enter the cache.
//   - Tensors whose storage escapes the iteration through a fetch are
//     excluded by backing-buffer identity, which also covers a fetched
//     Reshape view of an allocated tensor.
//   - A failed iteration retires its tensors: kernels may still hold them.
type recycler struct {
	mu    sync.Mutex
	cache map[allocKey]*tensor.Tensor // survivors of the previous iteration
	cur   map[allocKey]*tensor.Tensor // allocations of the running iteration
}

type allocKey struct {
	node int
	idx  int
}

func newRecycler() *recycler {
	return &recycler{
		cache: make(map[allocKey]*tensor.Tensor),
		cur:   make(map[allocKey]*tensor.Tensor),
	}
}

// take serves an allocation from the previous iteration's cache, or nil on
// miss. Hits are zeroed before reuse; shape or dtype mismatches (a resized
// graph input) drop the stale tensor.
func (r *recycler) take(node, idx int, dt tensor.DType, shape tensor.Shape) *tensor.Tensor {
	key := allocKey{node: node, idx: idx}
	r.mu.Lock()
	t, ok := r.cache[key]
	if ok {
		delete(r.cache, key)
	}
	if t != nil && (t.DType() != dt || !t.Shape().Equal(shape)) {
		t = nil
	}
	if t != nil {
		r.cur[key] = t
	}
	r.mu.Unlock()
	if t != nil {
		t.Zero()
		metrics.AddRecycleHit()
	}
	return t
}

// track records a freshly policy-allocated tensor as this iteration's
// occupant of (node, idx), making it a candidate for reuse next iteration.
func (r *recycler) track(node, idx int, t *tensor.Tensor) {
	key := allocKey{node: node, idx: idx}
	r.mu.Lock()
	r.cur[key] = t
	r.mu.Unlock()
	metrics.AddRecycleMiss()
}

// finish ends an iteration. On success the iteration's tensors become the
// next cache, minus any whose storage a fetched tensor aliases. On failure
// everything from the iteration is retired — a failed kernel may still
// reference its buffers.
func (r *recycler) finish(ok bool, fetched []*tensor.Tensor) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if ok {
		for key, t := range r.cur {
			escaped := false
			for _, f := range fetched {
				if f != nil && t.SharesStorage(f) {
					escaped = true
					break
				}
			}
			if !escaped {
				r.cache[key] = t
			}
		}
	}
	clear(r.cur)
}

// CacheSize reports how many tensors are parked for reuse (tests).
func (r *recycler) cacheSize() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.cache)
}
