package exec

import (
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/tensor"
)

// TestLastRunBooksBalance: the lap-based worker accounting attributes every
// moment of every worker's loop to a category, so the categories sum to
// about Workers x Wall, op counts are exact, and the per-op latency
// histograms see exactly one record per execution.
func TestLastRunBooksBalance(t *testing.T) {
	b := graph.NewBuilder()
	x := b.Placeholder("x", graph.Static(tensor.Float32, 64, 64))
	y := b.MatMul("y", x, x)
	z := b.MatMul("z", y, y)
	_ = b.ReduceMax("s", z)
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	hists := &metrics.Set{}
	e, err := New(g, Config{Workers: 2, Hists: hists})
	if err != nil {
		t.Fatal(err)
	}
	if (e.LastRun() != metrics.StepBreakdown{}) {
		t.Fatal("LastRun non-zero before first run")
	}
	in := tensor.New(tensor.Float32, 64, 64)
	const steps = 5
	var ops int64
	for i := 0; i < steps; i++ {
		mustRun(t, e, i, map[string]*tensor.Tensor{"x": in}, "s")
		br := e.LastRun()
		if br.Workers != 2 || br.Wall <= 0 {
			t.Fatalf("step %d: breakdown %+v", i, br)
		}
		if br.Ops != 4 { // x, y, z, s
			t.Fatalf("step %d: ops = %d, want 4", i, br.Ops)
		}
		ops += br.Ops
		// No polling/comm ops in this graph: comm and poll-wait are zero and
		// compute+idle accounts for all worker time.
		if br.Comm != 0 || br.PollWait != 0 || br.CommInflight != 0 {
			t.Fatalf("step %d: unexpected comm/poll time: %+v", i, br)
		}
		budget := time.Duration(br.Workers) * br.Wall
		if got := br.Accounted(); got > budget+budget/4+time.Millisecond {
			t.Fatalf("step %d: accounted %v exceeds workers x wall %v", i, got, budget)
		}
		if br.Compute <= 0 {
			t.Fatalf("step %d: no compute time: %+v", i, br)
		}
	}
	snap := hists.Snapshot()
	fam := snap.Families[metrics.HistExecOpNs]
	if got := metrics.FamilyTotal(fam).Count; got != ops {
		t.Fatalf("exec histogram count %d, want %d executions", got, ops)
	}
	// Families are keyed by op name; each op type ran the same per-step
	// count every step.
	for op, hs := range fam {
		if hs.Count%steps != 0 || hs.Count == 0 {
			t.Errorf("op %s: %d records, want a positive multiple of %d", op, hs.Count, steps)
		}
	}
}
