// Package exec executes data-flow graph partitions: a worker pool drains a
// ready queue of nodes, supporting the three operator execution modes of §4
// — synchronous, asynchronous, and the paper's new polling-async mode,
// where a receive operator that polls a flag byte is re-enqueued at the
// tail of the ready queue until the flag is set, so polling never blocks
// other ready work.
package exec

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// Execution errors.
var (
	ErrExec        = errors.New("exec: execution failed")
	ErrFeed        = errors.New("exec: bad feed")
	ErrFetch       = errors.New("exec: unknown fetch")
	ErrAborted     = errors.New("exec: aborted")
	ErrPollTimeout = errors.New("exec: polling made no progress")
)

// Config parameterizes an Executor.
type Config struct {
	// Task selects the partition: only nodes assigned to this task run.
	// Empty runs the whole graph (single-server mode).
	Task string
	// Workers is the worker-goroutine count (default 4).
	Workers int
	// Vars is the variable store; required if the partition has variables.
	Vars *VarStore
	// Policy routes tensor allocations (default HeapPolicy).
	Policy AllocPolicy
	// Env is passed through to kernels via Context.Env.
	Env any
	// PollTimeout aborts an iteration when no node completes for this long
	// while polling operators spin — the failure-detection backstop for a
	// peer that died or a partitioned fabric. Zero disables the timeout.
	PollTimeout time.Duration
	// KernelWorkers, when positive, resizes the process-wide compute-kernel
	// pool (internal/parallel) the tensor kernels chunk their work onto.
	// Zero leaves the pool at its GOMAXPROCS default. The pool is shared by
	// every executor in the process; results are bit-identical at any size.
	KernelWorkers int
	// DisableRecycle turns off iteration-scoped output-tensor reuse even
	// when the alloc policy permits it (the Recycler marker).
	DisableRecycle bool
	// Trace, when non-nil, records one duration event per operator
	// execution (chrome trace-event format).
	Trace *trace.Recorder
	// Hists, when non-nil, receives latency histograms: per-op execution
	// latency (metrics.HistExecOpNs, keyed by op name) and poll-wait time
	// (metrics.HistPollWaitNs). Histogram pointers are resolved once per op
	// at first execution, so the per-record cost is a few atomic adds.
	Hists *metrics.Set
	// Frozen rejects graphs that mutate variables (optimizer updates) at
	// construction time. Serving executors run against variable stores
	// aliasing publisher-owned bank memory, where an in-place update would
	// corrupt a shared weight snapshot; Frozen makes that a build error
	// instead of a data race.
	Frozen bool
}

// Executor runs one graph partition iteration by iteration.
type Executor struct {
	g       *graph.Graph
	cfg     Config
	nodes   []*graph.Node // partition nodes
	inPart  []bool        // by node id
	consume [][]*graph.Node
	indeg   []int
	stats   *statsTable
	recycle *recycler // nil unless the policy opted in

	pollWaitHist  *metrics.Histogram // nil unless cfg.Hists is set
	pollBatchHist *metrics.Histogram // nil unless cfg.Hists is set

	runMu   sync.Mutex
	current *runState // in-flight iteration, abortable from outside
	lastRun metrics.StepBreakdown
}

// New validates the partition and builds an executor. Every input of a
// partition node must itself be in the partition (cross-server edges must
// already have been replaced by send/recv pairs).
func New(g *graph.Graph, cfg Config) (*Executor, error) {
	if cfg.Frozen {
		if err := graph.ForwardOnly(g); err != nil {
			return nil, err
		}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Policy == nil {
		cfg.Policy = HeapPolicy{}
	}
	if cfg.Vars == nil {
		cfg.Vars = NewVarStore()
	}
	if cfg.KernelWorkers > 0 {
		parallel.SetWorkers(cfg.KernelWorkers)
	}
	all := g.Nodes()
	e := &Executor{
		g:       g,
		cfg:     cfg,
		inPart:  make([]bool, len(all)),
		consume: make([][]*graph.Node, len(all)),
		indeg:   make([]int, len(all)),
		stats:   newStatsTable(cfg.Hists),
	}
	if cfg.Hists != nil {
		e.pollWaitHist = cfg.Hists.Hist(metrics.HistPollWaitNs)
		e.pollBatchHist = cfg.Hists.Hist(metrics.HistPolledBatch)
	}
	for _, n := range all {
		if cfg.Task == "" || n.Task() == cfg.Task {
			e.inPart[n.ID()] = true
			e.nodes = append(e.nodes, n)
		}
	}
	for _, n := range e.nodes {
		deps := 0
		for _, in := range n.Inputs() {
			if !e.inPart[in.ID()] {
				return nil, fmt.Errorf("exec: %s input %s is outside partition %q: %w",
					n.Name(), in.Name(), cfg.Task, graph.ErrBadGraph)
			}
			e.consume[in.ID()] = append(e.consume[in.ID()], n)
			deps++
		}
		for _, c := range n.Controls() {
			if !e.inPart[c.ID()] {
				return nil, fmt.Errorf("exec: %s control dep %s is outside partition %q: %w",
					n.Name(), c.Name(), cfg.Task, graph.ErrBadGraph)
			}
			e.consume[c.ID()] = append(e.consume[c.ID()], n)
			deps++
		}
		e.indeg[n.ID()] = deps
	}
	if r, ok := cfg.Policy.(Recycler); ok && r.AllowRecycle() && !cfg.DisableRecycle {
		e.recycle = newRecycler()
	}
	return e, nil
}

// Nodes returns the partition's nodes.
func (e *Executor) Nodes() []*graph.Node { return e.nodes }

// traceLane names this executor's trace process lane.
func (e *Executor) traceLane() string {
	if e.cfg.Task != "" {
		return e.cfg.Task
	}
	return "local"
}

// Vars returns the executor's variable store.
func (e *Executor) Vars() *VarStore { return e.cfg.Vars }

// LastRun returns the step-time breakdown of the most recently completed
// Run call (zero value before the first run). Worker time is attributed by
// lap timestamps, so Accounted() sums to about Workers x Wall.
func (e *Executor) LastRun() metrics.StepBreakdown {
	e.runMu.Lock()
	defer e.runMu.Unlock()
	return e.lastRun
}

// Abort fails the in-flight iteration, if any, with ErrAborted wrapping
// cause. Workers drain promptly (polling operators stop re-enqueueing,
// next() returns false), in-flight communication is canceled through
// Context.Canceled, and Run returns only after every asynchronous
// operation's completion callback has landed — so when Run comes back, no
// transfer of the dead iteration can still touch memory. Recovery drivers
// call it to cut short a step whose peer has crashed. Safe to call
// concurrently with Run and when no iteration is running (then it is a
// no-op).
func (e *Executor) Abort(cause error) {
	e.runMu.Lock()
	st := e.current
	e.runMu.Unlock()
	if st == nil {
		return
	}
	if cause == nil {
		st.fail(ErrAborted)
	} else {
		st.fail(fmt.Errorf("%w: %w", ErrAborted, cause))
	}
}

// run-state shared by the workers of one iteration.
type runState struct {
	e     *Executor
	iter  int
	feeds map[string]*tensor.Tensor

	mu         sync.Mutex
	cond       *sync.Cond
	queue      []*graph.Node
	remaining  []int
	values     []*tensor.Tensor
	pending    int // nodes not yet completed
	inflight   int // nodes currently being executed (incl. async)
	nonPolling int // queued nodes that are not polling operators
	progress   time.Time
	err        error

	// Step accounting: workers fold their lap totals here at exit; async
	// completion callbacks add dispatch-to-done latency concurrently.
	acct         metrics.StepBreakdown
	inflightNsAt atomic.Int64
	// lifeNs sums the workers' measured loop lifetimes (wall start to loop
	// exit); Run labels the drain tail — wall minus lifetime, the stretch a
	// worker already exited while a sibling finished its last backoff sleep
	// or in-flight transfer — as Idle.
	lifeNs int64
}

// foldAcct accumulates one worker's lap totals and loop lifetime into the
// run's breakdown.
func (st *runState) foldAcct(a metrics.StepBreakdown, life time.Duration) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.acct.Compute += a.Compute
	st.acct.Comm += a.Comm
	st.acct.PollWait += a.PollWait
	st.acct.Idle += a.Idle
	st.acct.Ops += a.Ops
	st.lifeNs += life.Nanoseconds()
}

func isEdgeNode(n *graph.Node) bool {
	_, ok := n.Op().(graph.EdgeKernel)
	return ok
}

func isPollingNode(n *graph.Node) bool {
	_, ok := n.Op().(graph.PollingKernel)
	return ok
}

// Pure-polling backoff: when the ready queue holds only not-ready polling
// operators, a worker first spins through a short miss budget (data usually
// arrives within microseconds), then sleeps with the duration doubling up to
// a cap. The polled flags are written remotely by one-sided RDMA, so the
// sleep delays only this worker's next poll — it cannot delay the data —
// and the FIFO requeue keeps multiple starved pollers taking turns at the
// queue head instead of one monopolizing the misses.
//
// pollBatchMax caps the batched completion scan: when a worker pops a
// polling operator it drains every other queued polling operator (up to the
// cap) in the same lock acquisition and polls the whole set in one pass, so
// N starved receives cost one queue round-trip instead of N.
const (
	pollSpinBudget  = 16
	pollBackoffMin  = 5 * time.Microsecond
	pollBackoffMax  = time.Millisecond
	pollBackoffExpo = 8 // doublings until the cap is pinned
	pollBatchMax    = 64
)

func pollBackoff(misses int) time.Duration {
	exp := misses - pollSpinBudget - 1
	if exp < 0 {
		return 0
	}
	if exp > pollBackoffExpo {
		exp = pollBackoffExpo
	}
	d := pollBackoffMin << uint(exp)
	if d > pollBackoffMax {
		d = pollBackoffMax
	}
	return d
}

func (st *runState) fail(err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.err == nil {
		st.err = err
	}
	st.cond.Broadcast()
}

// canceled reports whether the run has failed; communication kernels poll
// it (via Context.Canceled) between retry attempts so in-flight transfers
// give up promptly once the iteration is dead instead of re-sending into
// memory the next iteration will own.
func (st *runState) canceled() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.err != nil
}

// complete records a node's output and readies its consumers. It is safe to
// call from async completion callbacks (CQ poller goroutines).
func (st *runState) complete(n *graph.Node, out *tensor.Tensor, err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.inflight--
	if err != nil {
		if st.err == nil {
			st.err = fmt.Errorf("exec: node %s: %w", n.Name(), err)
		}
		st.cond.Broadcast()
		return
	}
	st.values[n.ID()] = out
	st.pending--
	st.progress = time.Now()
	for _, c := range st.e.consume[n.ID()] {
		st.remaining[c.ID()]--
		if st.remaining[c.ID()] == 0 {
			st.queue = append(st.queue, c)
			if !isPollingNode(c) {
				st.nonPolling++
			}
		}
	}
	st.cond.Broadcast()
}

// next pops the next ready node, blocking until one is available, the run
// finishes, or an error occurs. ok=false means the worker should exit.
func (st *runState) next() (*graph.Node, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		if st.err != nil || st.pending == 0 {
			return nil, false
		}
		if len(st.queue) > 0 {
			n := st.queue[0]
			st.queue = st.queue[1:]
			st.inflight++
			if !isPollingNode(n) {
				st.nonPolling--
			}
			return n, true
		}
		if st.inflight == 0 {
			// Nothing queued and nothing running: the graph is stuck
			// (should be impossible for a validated acyclic partition).
			st.err = fmt.Errorf("exec: scheduler stalled with %d nodes pending: %w", st.pending, ErrExec)
			return nil, false
		}
		st.cond.Wait()
	}
}

// grabPollBatch extracts up to max additional polling operators from the
// ready queue in one lock acquisition, marking each in flight. Non-polling
// nodes keep their relative order (and nonPolling count); only polling
// operators are pulled, so the batch poll below scans the whole starved set
// in one pass instead of cycling them through the queue one at a time.
func (st *runState) grabPollBatch(max int) []*graph.Node {
	st.mu.Lock()
	defer st.mu.Unlock()
	if max <= 0 || len(st.queue) == 0 {
		return nil
	}
	var batch []*graph.Node
	kept := st.queue[:0]
	for _, n := range st.queue {
		if len(batch) < max && isPollingNode(n) {
			batch = append(batch, n)
			st.inflight++
		} else {
			kept = append(kept, n)
		}
	}
	tail := st.queue[len(kept):]
	for i := range tail {
		tail[i] = nil
	}
	st.queue = kept
	return batch
}

// requeueBatch puts not-ready polling nodes back at the tail (§4: "it simply
// re-enqueues this operator into the tail of the ready queue") under one
// lock. It reports whether non-polling work is queued: when only polling
// operators remain, callers back off instead of busy-spinning (polling "has
// a lower priority than other ready tasks ... to minimize its impact").
func (st *runState) requeueBatch(nodes []*graph.Node) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.inflight -= len(nodes)
	hadOther := st.nonPolling > 0
	st.queue = append(st.queue, nodes...)
	st.cond.Broadcast()
	return hadOther
}

// Run executes one iteration of the partition: feeds bind placeholders,
// fetches name the node outputs to return.
func (e *Executor) Run(iter int, feeds map[string]*tensor.Tensor, fetches ...string) (map[string]*tensor.Tensor, error) {
	if err := e.checkFeeds(feeds); err != nil {
		return nil, err
	}
	for _, f := range fetches {
		n, err := e.g.Node(f)
		if err != nil || !e.inPart[n.ID()] {
			return nil, fmt.Errorf("exec: fetch %q: %w", f, ErrFetch)
		}
	}
	st := &runState{
		e:         e,
		iter:      iter,
		feeds:     feeds,
		remaining: append([]int(nil), e.indeg...),
		values:    make([]*tensor.Tensor, len(e.inPart)),
		pending:   len(e.nodes),
		progress:  time.Now(),
	}
	st.cond = sync.NewCond(&st.mu)
	for _, n := range e.nodes {
		if e.indeg[n.ID()] == 0 {
			st.queue = append(st.queue, n)
			if !isPollingNode(n) {
				st.nonPolling++
			}
		}
	}

	e.runMu.Lock()
	e.current = st
	e.runMu.Unlock()
	wallStart := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < e.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.worker(st, wallStart)
		}()
	}
	wg.Wait()
	// Quiesce: on a clean run every node completed, but on a failed one the
	// workers exit while asynchronous operations may still be in flight.
	// Wait for their completion callbacks before returning — the caller will
	// reuse feeds, slots, and arena memory for the next iteration, and an
	// async transfer still running against this one would race it. The wait
	// is bounded: Context.Canceled reports the failure, so retried transfers
	// give up within one backoff period, and FailPending (below) releases
	// completions that are parked rather than running.
	st.mu.Lock()
	failed := st.err
	st.mu.Unlock()
	if failed != nil {
		// A completion can also be *parked* in the environment waiting for
		// sibling work the dead iteration will never dispatch — e.g. a
		// member staged into a coalesced batch that can no longer fill.
		// No retry loop ever polls the cancel flag on its behalf, so ask
		// the environment to fail those now; otherwise the drain below
		// would wait on them forever.
		if f, ok := e.cfg.Env.(interface{ FailPending(error) }); ok {
			f.FailPending(failed)
		}
	}
	st.mu.Lock()
	for st.inflight > 0 {
		st.cond.Wait()
	}
	st.mu.Unlock()
	wall := time.Since(wallStart)
	st.mu.Lock()
	breakdown := st.acct
	st.mu.Unlock()
	breakdown.Wall = wall
	breakdown.Workers = e.cfg.Workers
	breakdown.CommInflight = time.Duration(st.inflightNsAt.Load())
	// Workers that exited before the slowest sibling spent the difference
	// waiting for the run to drain; that tail is idle time of the step.
	if tail := time.Duration(e.cfg.Workers)*wall - time.Duration(st.lifeNs); tail > 0 {
		breakdown.Idle += tail
	}
	e.runMu.Lock()
	e.current = nil
	e.lastRun = breakdown
	e.runMu.Unlock()

	st.mu.Lock()
	err := st.err
	st.mu.Unlock()
	if err != nil {
		if e.recycle != nil {
			e.recycle.finish(false, nil)
		}
		return nil, err
	}
	out := make(map[string]*tensor.Tensor, len(fetches))
	for _, f := range fetches {
		n, _ := e.g.Node(f)
		out[f] = st.values[n.ID()]
	}
	if e.recycle != nil {
		fetched := make([]*tensor.Tensor, 0, len(out))
		for _, t := range out {
			fetched = append(fetched, t)
		}
		e.recycle.finish(true, fetched)
	}
	return out, nil
}

// worker drains the ready queue. Every moment from the run's wall start is
// attributed to exactly one step-breakdown category via lap timestamps —
// goroutine start latency, scheduler waits, and bookkeeping to Idle, Poll
// calls and backoff sleeps to PollWait, kernel execution to Compute or (for
// EdgeKernel operators) Comm — so the per-worker totals sum back to this
// worker's share of the run wall and the consistency suite can check that
// the books balance. The lap opens at startAt (the wall start), not at the
// goroutine's first instruction: on a loaded box workers are queued runnable
// for a while before they first run, and that wait is idle time the step
// really spent.
func (e *Executor) worker(st *runState, startAt time.Time) {
	var acct metrics.StepBreakdown
	defer func() { st.foldAcct(acct, time.Since(startAt)) }()
	lap := startAt
	tick := func() time.Duration {
		now := time.Now()
		d := now.Sub(lap)
		lap = now
		return d
	}
	pollMisses := 0
	for {
		n, ok := st.next()
		acct.Idle += tick() // scheduler wait + queue bookkeeping
		if !ok {
			return
		}
		ctx := e.newContext(st, n)
		acct.Idle += tick() // context assembly

		// Polling-async phase 1, batched: when the head is a polling
		// operator, drain every other queued polling operator (one lock)
		// and poll the whole set in one pass. Misses go back to the tail
		// together (one lock); hits execute right here. N starved receives
		// cost one queue round-trip and one backoff decision per pass
		// instead of N.
		if _, isPolling := n.Op().(graph.PollingKernel); isPolling {
			batch := append([]*graph.Node{n}, st.grabPollBatch(pollBatchMax-1)...)
			e.pollBatchHist.Record(int64(len(batch)))
			ctxs := make([]*graph.Context, len(batch))
			ctxs[0] = ctx
			var ready []int
			var waiting []*graph.Node
			var pollErr error
			var errNode *graph.Node
			for i, pn := range batch {
				if ctxs[i] == nil {
					ctxs[i] = e.newContext(st, pn)
				}
				hit, err := pn.Op().(graph.PollingKernel).Poll(ctxs[i])
				if err != nil {
					errNode, pollErr = pn, err
					waiting = append(waiting, batch[i+1:]...) // unpolled rest
					break
				}
				if hit {
					ready = append(ready, i)
				} else {
					waiting = append(waiting, pn)
				}
			}
			acct.PollWait += tick()
			if pollErr != nil {
				// The failed node carries the error; everything else —
				// including ready-but-unexecuted hits, which will poll
				// ready again — goes back so its completion stays owned
				// by the queue.
				for _, i := range ready {
					waiting = append(waiting, batch[i])
				}
				if len(waiting) > 0 {
					st.requeueBatch(waiting)
				}
				st.complete(errNode, nil, pollErr)
				return
			}
			if len(ready) == 0 {
				e.stats.recordPollMiss(n.Op().Name())
				if d := e.cfg.PollTimeout; d > 0 {
					st.mu.Lock()
					stalled := time.Since(st.progress) > d
					pending := st.pending
					// Queued + batched polling nodes minus this one = how
					// many other polling operators are also spinning on
					// unarrived data — distinguishes one dead edge from a
					// task-wide partition.
					polling := len(st.queue) - st.nonPolling + len(waiting) - 1
					st.mu.Unlock()
					if stalled {
						e.stats.recordPollTimeout(n.Op().Name())
						acct.PollWait += tick()
						if len(waiting) > 1 {
							st.requeueBatch(waiting[1:]) // waiting[0] == n
						}
						st.complete(n, nil, fmt.Errorf("%w: %s made no progress for %v at iter %d with %d nodes pending, %d other polling operators starved (peer dead or network partitioned?)",
							ErrPollTimeout, n.Name(), d, st.iter, pending, polling))
						return
					}
				}
				hadOther := st.requeueBatch(waiting)
				if hadOther {
					pollMisses = 0
				} else {
					// Pure-polling queue: back off instead of spinning
					// ("polling has a lower priority ... to minimize its
					// impact").
					pollMisses++
					if d := pollBackoff(pollMisses); d > 0 {
						e.stats.recordPollBackoff(n.Op().Name())
						time.Sleep(d)
						e.pollWaitHist.Record(d.Nanoseconds())
					}
				}
				acct.PollWait += tick() // requeue + backoff sleep
				continue
			}
			if len(waiting) > 0 {
				st.requeueBatch(waiting)
			}
			pollMisses = 0
			acct.PollWait += tick() // requeue bookkeeping
			for _, i := range ready {
				e.execNode(st, batch[i], ctxs[i], &acct, tick)
			}
			continue
		}
		pollMisses = 0
		e.execNode(st, n, ctx, &acct, tick)
	}
}

// execNode is phase 2: execute one ready node asynchronously if supported,
// else synchronously. tick attributes the elapsed lap to the worker's
// breakdown (Comm for EdgeKernel operators, Compute otherwise).
func (e *Executor) execNode(st *runState, n *graph.Node, ctx *graph.Context, acct *metrics.StepBreakdown, tick func() time.Duration) {
	isEdge := isEdgeNode(n)
	start := time.Now()
	var endSpan func()
	if e.cfg.Trace != nil {
		endSpan = e.cfg.Trace.Span(e.traceLane(), "exec", n.Op().Name(), n.Name(),
			map[string]any{"iter": st.iter})
	}
	switch k := n.Op().(type) {
	case graph.AsyncKernel:
		k.ComputeAsync(ctx, func(err error) {
			d := time.Since(start)
			e.stats.recordExec(n.Op().Name(), d)
			metrics.AddKernelTime(n.Op().Name(), d)
			if isEdge {
				st.inflightNsAt.Add(d.Nanoseconds())
			}
			if endSpan != nil {
				endSpan()
			}
			st.complete(n, ctx.Output, err)
		})
		// The dispatch portion occupied this worker; the rest of the
		// operation's latency flies concurrently and lands in
		// CommInflight via the callback above.
		if isEdge {
			acct.Comm += tick()
		} else {
			acct.Compute += tick()
		}
		acct.Ops++
	case graph.Kernel:
		err := k.Compute(ctx)
		d := time.Since(start)
		e.stats.recordExec(n.Op().Name(), d)
		metrics.AddKernelTime(n.Op().Name(), d)
		if endSpan != nil {
			endSpan()
		}
		if isEdge {
			acct.Comm += tick()
		} else {
			acct.Compute += tick()
		}
		acct.Ops++
		st.complete(n, ctx.Output, err)
		acct.Idle += tick() // completion bookkeeping
	default:
		st.complete(n, nil, fmt.Errorf("exec: op %s has no kernel: %w", n.Op().Name(), ErrExec))
	}
}

func (e *Executor) newContext(st *runState, n *graph.Node) *graph.Context {
	inputs := make([]*tensor.Tensor, len(n.Inputs()))
	st.mu.Lock()
	for i, in := range n.Inputs() {
		inputs[i] = st.values[in.ID()]
	}
	st.mu.Unlock()
	allocIdx := 0
	ctx := &graph.Context{
		Node:     n,
		Iter:     st.iter,
		Inputs:   inputs,
		Vars:     e.cfg.Vars,
		Feeds:    st.feeds,
		Env:      e.cfg.Env,
		Canceled: st.canceled,
	}
	ctx.Alloc = func(dt tensor.DType, shape tensor.Shape) (*tensor.Tensor, error) {
		idx := allocIdx
		allocIdx++
		if e.recycle != nil {
			if t := e.recycle.take(n.ID(), idx, dt, shape); t != nil {
				return t, nil
			}
		}
		t, err := e.cfg.Policy.Alloc(n, st.iter, idx, dt, shape)
		if err == nil && e.recycle != nil {
			e.recycle.track(n.ID(), idx, t)
		}
		return t, err
	}
	return ctx
}

func (e *Executor) checkFeeds(feeds map[string]*tensor.Tensor) error {
	for name, t := range feeds {
		n, err := e.g.Node(name)
		if err != nil {
			return fmt.Errorf("exec: feed %q: %w", name, ErrFeed)
		}
		sig := n.Sig()
		if t.DType() != sig.DType {
			return fmt.Errorf("exec: feed %q dtype %v, want %v: %w", name, t.DType(), sig.DType, ErrFeed)
		}
		if t.Shape().Rank() != sig.Shape.Rank() {
			return fmt.Errorf("exec: feed %q rank %v, want %v: %w", name, t.Shape(), sig.Shape, ErrFeed)
		}
		for i, d := range sig.Shape {
			if d >= 0 && t.Shape()[i] != d {
				return fmt.Errorf("exec: feed %q dim %d is %d, want %d: %w",
					name, i, t.Shape()[i], d, ErrFeed)
			}
		}
	}
	return nil
}
