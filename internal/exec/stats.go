package exec

import (
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Per-operator execution statistics: how often each op ran, how long it
// took, and how many times polling operators were re-enqueued not-ready
// (the §4 polling-async overhead the scheduler is designed to keep cheap).

// OpStats summarizes one operator type's activity on an executor.
type OpStats struct {
	Op         string
	Executions int64
	PollMisses int64
	// PollBackoffs counts the scheduler sleeps taken while this operator
	// headed a queue of only not-ready pollers — evidence the pure-polling
	// path yields the core instead of busy-spinning.
	PollBackoffs int64
	// PollTimeouts counts iterations this operator aborted via the
	// progress-based stall detector (ErrPollTimeout).
	PollTimeouts int64
	Total        time.Duration

	lat *metrics.Histogram // cached latency histogram; nil when hists off
}

// Mean returns the average execution duration.
func (s OpStats) Mean() time.Duration {
	if s.Executions == 0 {
		return 0
	}
	return s.Total / time.Duration(s.Executions)
}

type statsTable struct {
	mu    sync.Mutex
	m     map[string]*OpStats
	hists *metrics.Set // nil when histograms are off
}

func newStatsTable(hists *metrics.Set) *statsTable {
	return &statsTable{m: make(map[string]*OpStats), hists: hists}
}

func (t *statsTable) entry(op string) *OpStats {
	s, ok := t.m[op]
	if !ok {
		s = &OpStats{Op: op}
		if t.hists != nil {
			s.lat = t.hists.Family(metrics.HistExecOpNs).With(op)
		}
		t.m[op] = s
	}
	return s
}

func (t *statsTable) recordExec(op string, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.entry(op)
	s.Executions++
	s.Total += d
	s.lat.Record(d.Nanoseconds())
}

func (t *statsTable) recordPollMiss(op string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entry(op).PollMisses++
}

func (t *statsTable) recordPollBackoff(op string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entry(op).PollBackoffs++
}

func (t *statsTable) recordPollTimeout(op string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entry(op).PollTimeouts++
}

// Stats returns a snapshot of per-op statistics, sorted by total time
// descending.
func (e *Executor) Stats() []OpStats {
	e.stats.mu.Lock()
	defer e.stats.mu.Unlock()
	out := make([]OpStats, 0, len(e.stats.m))
	for _, s := range e.stats.m {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Op < out[j].Op
	})
	return out
}
