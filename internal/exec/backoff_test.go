package exec

import (
	"sync/atomic"
	"testing"
	"time"
)

// Regression tests for the pure-polling busy-spin bug: a worker whose queue
// holds only not-ready polling operators used to requeue-and-repoll in a
// hot loop, burning a core for the whole wait (the exact behaviour §4
// rejects blocking receives for). The scheduler now backs off
// exponentially after a short spin budget — but only when there is nothing
// else to run, so mixed queues keep their fairness.

// TestPollBackoffCurve pins the backoff shape: free within the spin
// budget, then exponential from pollBackoffMin, capped at pollBackoffMax.
func TestPollBackoffCurve(t *testing.T) {
	for m := 1; m <= pollSpinBudget; m++ {
		if d := pollBackoff(m); d != 0 {
			t.Fatalf("pollBackoff(%d) = %v inside spin budget, want 0", m, d)
		}
	}
	if d := pollBackoff(pollSpinBudget + 1); d != pollBackoffMin {
		t.Errorf("first backoff = %v, want %v", d, pollBackoffMin)
	}
	prev := time.Duration(0)
	for m := pollSpinBudget + 1; m < pollSpinBudget+64; m++ {
		d := pollBackoff(m)
		if d < prev {
			t.Fatalf("pollBackoff(%d) = %v < previous %v: not monotone", m, d, prev)
		}
		if d > pollBackoffMax {
			t.Fatalf("pollBackoff(%d) = %v exceeds cap %v", m, d, pollBackoffMax)
		}
		prev = d
	}
	if prev != pollBackoffMax {
		t.Errorf("backoff never reached cap: %v", prev)
	}
}

// TestPurePollingBoundedSpin: one worker, one polling node, data arriving
// late. Without backoff the worker would repoll millions of times in the
// window; with it the miss count stays within a few dozen (spin budget +
// the exponential ramp + one capped sleep per millisecond of wait).
func TestPurePollingBoundedSpin(t *testing.T) {
	var flag atomic.Bool
	var executed atomic.Int64
	const wait = 50 * time.Millisecond
	g := buildSchedGraph(t, "polling", 1, 0, &flag, &executed)
	e, err := New(g, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	time.AfterFunc(wait, func() { flag.Store(true) })
	start := time.Now()
	if _, err := e.Run(0, nil, "sink"); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	var misses, backoffs int64
	for _, s := range e.Stats() {
		if s.Op == "FlagRecv_polling" {
			misses, backoffs = s.PollMisses, s.PollBackoffs
		}
	}
	if backoffs == 0 {
		t.Error("pure-polling wait recorded no backoffs: worker busy-spun")
	}
	// Generous ceiling: the ramp reaches the 1ms cap within ~25 misses, so
	// a 50ms wait costs on the order of 75 polls. Thousands would mean the
	// backoff is not actually sleeping.
	if misses > 2000 {
		t.Errorf("%d poll misses over a %v wait: backoff not bounding the spin", misses, wait)
	}
	// And the backoff must not oversleep either: the cap is 1ms, so the
	// post-arrival latency is small relative to the wait.
	if elapsed > wait+500*time.Millisecond {
		t.Errorf("run took %v for a %v wait: backoff overslept", elapsed, wait)
	}
}

// TestPollBackoffPreservesFairness: with one worker and a queue mixing one
// not-ready polling node with real compute, the compute must all run first
// (requeue-at-tail fairness) and the backoff must never fire while other
// work exists — it only kicks in once the queue is pure polling.
func TestPollBackoffPreservesFairness(t *testing.T) {
	var flag atomic.Bool
	var executed atomic.Int64
	const nWork = 8
	g := buildSchedGraph(t, "polling", 1, nWork, &flag, &executed)
	e, err := New(g, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The flag fires only after every compute op ran: a polling node that
	// hogged the single worker (or slept while work was queued) would
	// deadlock or stall this.
	go func() {
		for executed.Load() < nWork {
			time.Sleep(100 * time.Microsecond)
		}
		flag.Store(true)
	}()
	if _, err := e.Run(0, nil, "sink"); err != nil {
		t.Fatal(err)
	}
	if got := executed.Load(); got != nWork {
		t.Errorf("executed = %d, want %d", got, nWork)
	}
	// After the compute drains the queue is pure polling until the flag
	// fires, so some backoff is expected; misses while work was queued were
	// free requeues. The run completing at all is the fairness assertion.
	var misses int64
	for _, s := range e.Stats() {
		if s.Op == "FlagRecv_polling" {
			misses = s.PollMisses
		}
	}
	if misses == 0 {
		t.Error("no poll misses despite delayed flag")
	}
}
