package exec

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// Scheduling tests and the §4 ablation: the polling-async mode against the
// two alternatives the paper rejects — blocking a worker thread on the flag
// ("busy loop wasting processor resources") and sleeping between polls
// ("long latency due to periodic sleep").

// flagOp is a recv-like operator whose readiness is an external atomic flag
// (set by the "remote sender").
type flagOp struct {
	flag *atomic.Bool
	mode string // "polling", "blocking", "sleeping"
}

func (f *flagOp) Name() string { return "FlagRecv_" + f.mode }
func (f *flagOp) InferSig(in []graph.Sig) (graph.Sig, error) {
	return graph.Static(tensor.Float32), nil
}

// Poll is only used in "polling" mode.
func (f *flagOp) Poll(ctx *graph.Context) (bool, error) {
	if f.mode != "polling" {
		return true, nil
	}
	return f.flag.Load(), nil
}

func (f *flagOp) Compute(ctx *graph.Context) error {
	switch f.mode {
	case "blocking":
		for !f.flag.Load() {
		} // burn the worker
	case "sleeping":
		for !f.flag.Load() {
			time.Sleep(500 * time.Microsecond)
		}
	}
	out, err := ctx.Alloc(tensor.Float32, nil)
	if err != nil {
		return err
	}
	out.Float32s()[0] = 1
	ctx.Output = out
	return nil
}

// workOp burns a little CPU, standing in for compute operators that should
// not be starved by polling.
type workOp struct{ executed *atomic.Int64 }

func (w *workOp) Name() string { return "Work" }
func (w *workOp) InferSig(in []graph.Sig) (graph.Sig, error) {
	return graph.Static(tensor.Float32), nil
}
func (w *workOp) Compute(ctx *graph.Context) error {
	s := 0.0
	for i := 0; i < 20000; i++ {
		s += float64(i)
	}
	w.executed.Add(1)
	out, err := ctx.Alloc(tensor.Float32, nil)
	if err != nil {
		return err
	}
	out.Float32s()[0] = float32(s)
	ctx.Output = out
	return nil
}

// buildSchedGraph: nRecv flag operators plus nWork compute operators, all
// independent, plus a sink grouping them.
func buildSchedGraph(t testing.TB, mode string, nRecv, nWork int, flag *atomic.Bool,
	executed *atomic.Int64) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder()
	var all []*graph.Node
	for i := 0; i < nRecv; i++ {
		all = append(all, b.AddNode(fmt.Sprintf("recv%d", i), &flagOp{flag: flag, mode: mode}))
	}
	for i := 0; i < nWork; i++ {
		all = append(all, b.AddNode(fmt.Sprintf("work%d", i), &workOp{executed: executed}))
	}
	b.Group("sink", all...)
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestPollingDoesNotStarveCompute: with as many polling receives as worker
// threads, the compute operators must still finish promptly (under blocking
// receives they could only start after the flag fires).
func TestPollingDoesNotStarveCompute(t *testing.T) {
	var flag atomic.Bool
	var executed atomic.Int64
	const workers = 2
	g := buildSchedGraph(t, "polling", workers, 8, &flag, &executed)
	e, err := New(g, Config{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	// Fire the flag only after all compute work finished — if polling
	// blocked the workers, this would deadlock; re-enqueueing lets the
	// compute ops run first.
	go func() {
		for executed.Load() < 8 {
			time.Sleep(100 * time.Microsecond)
		}
		flag.Store(true)
	}()
	if _, err := e.Run(0, nil, "sink"); err != nil {
		t.Fatal(err)
	}
	if executed.Load() != 8 {
		t.Errorf("executed = %d", executed.Load())
	}
	// Polling misses must have been recorded.
	var misses int64
	for _, s := range e.Stats() {
		if s.Op == "FlagRecv_polling" {
			misses = s.PollMisses
		}
	}
	if misses == 0 {
		t.Error("no poll misses recorded despite delayed flag")
	}
}

func TestStatsAccounting(t *testing.T) {
	var flag atomic.Bool
	flag.Store(true)
	var executed atomic.Int64
	g := buildSchedGraph(t, "polling", 1, 3, &flag, &executed)
	e, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := e.Run(i, nil, "sink"); err != nil {
			t.Fatal(err)
		}
	}
	byOp := map[string]OpStats{}
	for _, s := range e.Stats() {
		byOp[s.Op] = s
	}
	if byOp["Work"].Executions != 12 {
		t.Errorf("Work executions = %d, want 12", byOp["Work"].Executions)
	}
	if byOp["NoOp"].Executions != 4 {
		t.Errorf("NoOp executions = %d, want 4", byOp["NoOp"].Executions)
	}
	if byOp["Work"].Mean() <= 0 {
		t.Error("Work mean duration not recorded")
	}
}

// benchmarkSched measures time-to-completion of a mixed recv+compute graph
// where the flag fires 2ms into the iteration.
func benchmarkSched(b *testing.B, mode string, workers int) {
	var executed atomic.Int64
	for i := 0; i < b.N; i++ {
		var flag atomic.Bool
		g := buildSchedGraph(b, mode, workers, 16, &flag, &executed)
		e, err := New(g, Config{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		timer := time.AfterFunc(2*time.Millisecond, func() { flag.Store(true) })
		if _, err := e.Run(0, nil, "sink"); err != nil {
			b.Fatal(err)
		}
		timer.Stop()
	}
}

// BenchmarkSchedulingModes is the §4 ablation: polling-async (the paper's
// new mode) versus blocking workers on the flag versus sleep-polling.
func BenchmarkSchedulingModes(b *testing.B) {
	for _, mode := range []string{"polling", "blocking", "sleeping"} {
		b.Run(mode, func(b *testing.B) { benchmarkSched(b, mode, 2) })
	}
}
