package exec

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/tensor"
	"repro/internal/wire"
)

// Checkpointing: variables serialize as length-prefixed wire.TensorMessage
// frames. Restore happens *in place* into the existing tensors, so the
// RDMA-aware placement (variables living inside sender staging slots)
// survives a restore — the address-stability property §3.2 depends on.

const checkpointMagic = uint32(0x52444d41) // "RDMA"

// Save writes every variable (sorted by name, for determinism).
func (s *VarStore) Save(w io.Writer) error {
	s.mu.RLock()
	names := make([]string, 0, len(s.vars))
	for n := range s.vars {
		names = append(names, n)
	}
	sort.Strings(names)
	type entry struct {
		name string
		t    *tensor.Tensor
	}
	entries := make([]entry, len(names))
	for i, n := range names {
		entries[i] = entry{name: n, t: s.vars[n]}
	}
	s.mu.RUnlock()

	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], checkpointMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(entries)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("%w: writing header: %v", ErrVar, err)
	}
	for _, e := range entries {
		shape := make([]int64, e.t.Shape().Rank())
		for i, d := range e.t.Shape() {
			shape[i] = int64(d)
		}
		msg := wire.TensorMessage{
			Name:    e.name,
			DType:   uint32(e.t.DType()),
			Shape:   shape,
			Payload: e.t.Bytes(),
		}
		frame := msg.Marshal()
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(frame)))
		if _, err := w.Write(lenBuf[:]); err != nil {
			return fmt.Errorf("%w: writing %q: %v", ErrVar, e.name, err)
		}
		if _, err := w.Write(frame); err != nil {
			return fmt.Errorf("%w: writing %q: %v", ErrVar, e.name, err)
		}
	}
	return nil
}

// Load restores variables in place. Every checkpointed variable must
// already exist with a matching dtype and shape; extra live variables are
// left untouched (so optimizer slots created after the checkpoint survive).
func (s *VarStore) Load(r io.Reader) error {
	return s.load(r, nil, false)
}

// CreateVarFunc builds the backing tensor for a variable the checkpoint
// names but the store lacks. Callers decide placement: recovery puts graph
// variables back into their registered staging slots and everything else on
// the heap.
type CreateVarFunc func(name string, dt tensor.DType, shape tensor.Shape) (*tensor.Tensor, error)

// LoadInto is Load with the two extensions crash recovery needs. Missing
// variables are created through create (placement-aware) before their values
// are restored — a restarted task begins with an empty store. And live
// variables the checkpoint does NOT name are zeroed: they were created after
// the snapshot with zero initial state (optimizer slots), so zeroing them —
// rather than leaving post-snapshot values behind — makes the store's full
// state match the snapshot instant, which is what keeps replay from the
// checkpoint bit-identical.
func (s *VarStore) LoadInto(r io.Reader, create CreateVarFunc) error {
	return s.load(r, create, true)
}

func (s *VarStore) load(r io.Reader, create CreateVarFunc, rollback bool) error {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("%w: reading header: %v", ErrVar, err)
	}
	if binary.LittleEndian.Uint32(hdr[:4]) != checkpointMagic {
		return fmt.Errorf("%w: not a checkpoint (bad magic)", ErrVar)
	}
	count := binary.LittleEndian.Uint32(hdr[4:])
	restored := make(map[string]bool, count)
	for i := uint32(0); i < count; i++ {
		var lenBuf [4]byte
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return fmt.Errorf("%w: reading frame %d: %v", ErrVar, i, err)
		}
		frame := make([]byte, binary.LittleEndian.Uint32(lenBuf[:]))
		if _, err := io.ReadFull(r, frame); err != nil {
			return fmt.Errorf("%w: reading frame %d: %v", ErrVar, i, err)
		}
		var msg wire.TensorMessage
		if err := msg.Unmarshal(frame); err != nil {
			return fmt.Errorf("%w: decoding frame %d: %v", ErrVar, i, err)
		}
		shape := make(tensor.Shape, len(msg.Shape))
		for d, v := range msg.Shape {
			shape[d] = int(v)
		}
		t, err := s.VarTensor(msg.Name)
		if err != nil {
			if create == nil {
				return fmt.Errorf("%w: checkpoint has %q but the store does not", ErrVar, msg.Name)
			}
			t, err = create(msg.Name, tensor.DType(msg.DType), shape)
			if err != nil {
				return fmt.Errorf("%w: creating %q: %v", ErrVar, msg.Name, err)
			}
			if err := s.Create(msg.Name, t); err != nil {
				return err
			}
		}
		if uint32(t.DType()) != msg.DType {
			return fmt.Errorf("%w: %q dtype mismatch (%v vs %d)", ErrVar, msg.Name, t.DType(), msg.DType)
		}
		if !t.Shape().Equal(shape) {
			return fmt.Errorf("%w: %q shape mismatch (%v vs %v)", ErrVar, msg.Name, t.Shape(), shape)
		}
		if len(msg.Payload) != t.ByteSize() {
			return fmt.Errorf("%w: %q payload %d bytes, variable holds %d",
				ErrVar, msg.Name, len(msg.Payload), t.ByteSize())
		}
		copy(t.Bytes(), msg.Payload)
		restored[msg.Name] = true
	}
	if rollback {
		for _, name := range s.Names() {
			if restored[name] {
				continue
			}
			t, err := s.VarTensor(name)
			if err != nil {
				return err
			}
			b := t.Bytes()
			for j := range b {
				b[j] = 0
			}
		}
	}
	return nil
}
