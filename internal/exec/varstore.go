package exec

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/tensor"
)

// VarStore holds the persistent tensors backing Variable nodes on one
// server. Variables are created once before execution; the RDMA-aware
// analyzer places their storage inside registered memory regions so weight
// tensors are remotely writable without copies (§3.2).
type VarStore struct {
	mu   sync.RWMutex
	vars map[string]*tensor.Tensor
}

// ErrVar wraps variable-store failures.
var ErrVar = errors.New("exec: variable error")

// NewVarStore returns an empty store.
func NewVarStore() *VarStore {
	return &VarStore{vars: make(map[string]*tensor.Tensor)}
}

// Create registers a variable's backing tensor. Creating the same name
// twice fails.
func (s *VarStore) Create(name string, t *tensor.Tensor) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.vars[name]; ok {
		return fmt.Errorf("%w: %q already exists", ErrVar, name)
	}
	s.vars[name] = t
	return nil
}

// VarTensor implements graph.VarAccess.
func (s *VarStore) VarTensor(name string) (*tensor.Tensor, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.vars[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q not created", ErrVar, name)
	}
	return t, nil
}

// Names returns the registered variable names.
func (s *VarStore) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.vars))
	for n := range s.vars {
		names = append(names, n)
	}
	return names
}
