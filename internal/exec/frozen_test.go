package exec

import (
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// TestFrozenRejectsStatefulGraph pins the serving-executor guard: a graph
// with an optimizer update cannot be built Frozen — its store may alias
// publisher-owned weight-bank memory that must never be written locally.
func TestFrozenRejectsStatefulGraph(t *testing.T) {
	b := graph.NewBuilder()
	x := b.Placeholder("x", graph.Static(tensor.Float32, 2, 2))
	w := b.Variable("w", graph.Static(tensor.Float32, 2, 2))
	y := b.MatMul("y", x, w)
	b.ApplySGD("apply_w", w, y, 0.1)
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	vars := NewVarStore()
	if err := vars.Create("w", tensor.New(tensor.Float32, 2, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := New(g, Config{Vars: vars, Frozen: true}); !errors.Is(err, graph.ErrBadGraph) {
		t.Fatalf("Frozen accepted a stateful graph: err=%v", err)
	}
	// The same graph builds fine unfrozen.
	if _, err := New(g, Config{Vars: vars}); err != nil {
		t.Fatalf("unfrozen build failed: %v", err)
	}
}

// TestFrozenAllowsForwardGraph: pure inference builds and runs Frozen, and
// never mutates the variable bytes it reads.
func TestFrozenAllowsForwardGraph(t *testing.T) {
	b := graph.NewBuilder()
	x := b.Placeholder("x", graph.Static(tensor.Float32, 1, 2))
	w := b.Variable("w", graph.Static(tensor.Float32, 2, 2))
	b.MatMul("y", x, w)
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	vars := NewVarStore()
	wt, _ := tensor.FromFloat32(tensor.Shape{2, 2}, []float32{1, 2, 3, 4})
	if err := vars.Create("w", wt); err != nil {
		t.Fatal(err)
	}
	before := append([]byte(nil), wt.Bytes()...)
	e, err := New(g, Config{Vars: vars, Frozen: true})
	if err != nil {
		t.Fatal(err)
	}
	in, _ := tensor.FromFloat32(tensor.Shape{1, 2}, []float32{1, 1})
	out := mustRun(t, e, 0, map[string]*tensor.Tensor{"x": in}, "y")
	if got := out["y"].Float32s(); got[0] != 4 || got[1] != 6 {
		t.Fatalf("y = %v, want [4 6]", got)
	}
	for i := range before {
		if wt.Bytes()[i] != before[i] {
			t.Fatal("frozen run mutated variable bytes")
		}
	}
}
