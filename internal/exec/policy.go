package exec

import (
	"repro/internal/graph"
	"repro/internal/tensor"
)

// AllocPolicy decides where a node's k-th output allocation of an iteration
// lives. The default policy uses the Go heap; the RDMA-aware analyzer
// installs a policy that (a) records allocation sites during the first
// mini-batch and (b) redirects the sites feeding cross-server transfers
// into the registered-memory arena from the second mini-batch on (§3.4's
// dynamic tracing).
type AllocPolicy interface {
	Alloc(node *graph.Node, iter, allocIdx int, dt tensor.DType, shape tensor.Shape) (*tensor.Tensor, error)
}

// Recycler is an opt-in marker for AllocPolicy implementations that permit
// the executor to serve an allocation by reusing the tensor it handed out
// for the same (node, alloc index) last iteration, bypassing the policy.
// Policies that must observe every allocation — the analyzer's tracing
// policy records allocation sites during the first mini-batch and redirects
// hot ones into the registered arena — must not implement this (or must
// return false), otherwise recycling would hide exactly the steady-state
// allocations the analysis needs to see.
type Recycler interface {
	AllowRecycle() bool
}

// HeapPolicy allocates every tensor on the Go heap.
type HeapPolicy struct{}

// Alloc implements AllocPolicy.
func (HeapPolicy) Alloc(_ *graph.Node, _, _ int, dt tensor.DType, shape tensor.Shape) (*tensor.Tensor, error) {
	return tensor.New(dt, shape...), nil
}

// AllowRecycle implements Recycler: heap tensors carry no placement
// decision, so reusing one is always equivalent to allocating afresh.
func (HeapPolicy) AllowRecycle() bool { return true }
