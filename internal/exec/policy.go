package exec

import (
	"repro/internal/graph"
	"repro/internal/tensor"
)

// AllocPolicy decides where a node's k-th output allocation of an iteration
// lives. The default policy uses the Go heap; the RDMA-aware analyzer
// installs a policy that (a) records allocation sites during the first
// mini-batch and (b) redirects the sites feeding cross-server transfers
// into the registered-memory arena from the second mini-batch on (§3.4's
// dynamic tracing).
type AllocPolicy interface {
	Alloc(node *graph.Node, iter, allocIdx int, dt tensor.DType, shape tensor.Shape) (*tensor.Tensor, error)
}

// HeapPolicy allocates every tensor on the Go heap.
type HeapPolicy struct{}

// Alloc implements AllocPolicy.
func (HeapPolicy) Alloc(_ *graph.Node, _, _ int, dt tensor.DType, shape tensor.Shape) (*tensor.Tensor, error) {
	return tensor.New(dt, shape...), nil
}
