package exec

import (
	"errors"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// neverReadyOp polls forever — a receive whose sender died.
type neverReadyOp struct{}

func (neverReadyOp) Name() string { return "NeverReady" }
func (neverReadyOp) InferSig(in []graph.Sig) (graph.Sig, error) {
	return graph.Static(tensor.Float32), nil
}
func (neverReadyOp) Poll(ctx *graph.Context) (bool, error) { return false, nil }
func (neverReadyOp) Compute(ctx *graph.Context) error      { return nil }

func TestPollTimeoutAbortsStuckIteration(t *testing.T) {
	b := graph.NewBuilder()
	n := b.AddNode("stuck", neverReadyOp{})
	b.ReduceMax("sink", n)
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, Config{Workers: 2, PollTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = e.Run(0, nil, "sink")
	if !errors.Is(err, ErrPollTimeout) {
		t.Fatalf("err = %v, want ErrPollTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("timeout took %v, configured 50ms", elapsed)
	}
}

func TestPollTimeoutNotTriggeredByProgress(t *testing.T) {
	// A polling op that becomes ready after several other nodes complete
	// keeps the progress clock moving, so a short timeout must not fire.
	b := graph.NewBuilder()
	op := &pollOp{needed: 30}
	n := b.AddNode("slowpoll", op)
	var deps []*graph.Node
	for i := 0; i < 6; i++ {
		c, err := tensor.FromFloat32(tensor.Shape{1}, []float32{1})
		if err != nil {
			t.Fatal(err)
		}
		deps = append(deps, b.Const(names(i), c))
	}
	deps = append(deps, n)
	b.Group("sink", deps...)
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(g, Config{Workers: 2, PollTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(0, nil, "sink"); err != nil {
		t.Fatal(err)
	}
}

func names(i int) string { return string(rune('a' + i)) }
