package exec

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
)

func TestApplyMomentumMath(t *testing.T) {
	b := graph.NewBuilder()
	v := b.Variable("v", graph.Static(tensor.Float32, 2))
	g := b.Placeholder("g", graph.Static(tensor.Float32, 2))
	b.ApplyMomentum("upd", v, g, 0.1, 0.9)
	gr, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	vars := NewVarStore()
	vt, _ := tensor.FromFloat32(tensor.Shape{2}, []float32{1, 1})
	if err := vars.Create("v", vt); err != nil {
		t.Fatal(err)
	}
	e, _ := New(gr, Config{Vars: vars})
	grad, _ := tensor.FromFloat32(tensor.Shape{2}, []float32{1, 2})
	feeds := map[string]*tensor.Tensor{"g": grad}

	// Step 1: velocity = grad; v -= 0.1*grad.
	if _, err := e.Run(0, feeds, "upd"); err != nil {
		t.Fatal(err)
	}
	if vt.Float32s()[0] != 0.9 || vt.Float32s()[1] != 0.8 {
		t.Errorf("after step 1: %v", vt.Float32s())
	}
	vel, err := vars.VarTensor("v/velocity")
	if err != nil {
		t.Fatalf("velocity slot not created: %v", err)
	}
	if vel.Float32s()[1] != 2 {
		t.Errorf("velocity = %v", vel.Float32s())
	}
	// Step 2: velocity = 0.9*grad + grad = 1.9*grad; v -= 0.1*velocity.
	if _, err := e.Run(1, feeds, "upd"); err != nil {
		t.Fatal(err)
	}
	want0 := float32(0.9 - 0.1*1.9)
	if diff := vt.Float32s()[0] - want0; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("after step 2: %v, want first %v", vt.Float32s(), want0)
	}
}

func TestApplyMomentumValidation(t *testing.T) {
	b := graph.NewBuilder()
	x := b.Placeholder("x", graph.Static(tensor.Float32, 2))
	b.ApplyMomentum("bad", x, x, 0.1, 0.9)
	if _, err := b.Finish(); !errors.Is(err, graph.ErrBadGraph) {
		t.Errorf("momentum on non-variable: %v", err)
	}
	b2 := graph.NewBuilder()
	b2.ApplyMomentum("bad", nil, nil, 0.1, 0.9)
	if _, err := b2.Finish(); !errors.Is(err, graph.ErrBadGraph) {
		t.Errorf("nil variable: %v", err)
	}
}

// TestMomentumConvergesFasterThanSGDOnIllConditioned runs both optimizers
// on the same ill-conditioned quadratic-ish problem; momentum should reach
// a lower loss in the same number of steps (the reason the op exists).
func TestMomentumConvergesFasterThanSGDOnIllConditioned(t *testing.T) {
	run := func(momentum bool) float32 {
		rng := rand.New(rand.NewSource(5))
		const batch, in, classes = 16, 10, 4
		b := graph.NewBuilder()
		x := b.Placeholder("x", graph.Static(tensor.Float32, batch, in))
		labels := b.Placeholder("labels", graph.Static(tensor.Int32, batch))
		w := b.Variable("w", graph.Static(tensor.Float32, in, classes))
		loss := b.SoftmaxXent("loss", b.MatMul("mm", x, w), labels)
		grads, err := graph.Gradients(b, loss, []*graph.Node{w})
		if err != nil {
			t.Fatal(err)
		}
		if momentum {
			b.ApplyMomentum("upd", w, grads[w], 0.05, 0.9)
		} else {
			b.ApplySGD("upd", w, grads[w], 0.05)
		}
		g, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		vars := NewVarStore()
		wt := tensor.New(tensor.Float32, in, classes)
		tensor.GlorotInit(wt, rng)
		if err := vars.Create("w", wt); err != nil {
			t.Fatal(err)
		}
		e, _ := New(g, Config{Vars: vars})
		xt := tensor.New(tensor.Float32, batch, in)
		tensor.RandomUniform(xt, rng, 1)
		// Make the features ill-conditioned: scale half the columns down.
		xv := xt.Float32s()
		for r := 0; r < batch; r++ {
			for c := in / 2; c < in; c++ {
				xv[r*in+c] *= 0.05
			}
		}
		lt := tensor.New(tensor.Int32, batch)
		tensor.RandomLabels(lt, rng, classes)
		feeds := map[string]*tensor.Tensor{"x": xt, "labels": lt}
		var last float32
		for i := 0; i < 60; i++ {
			out, err := e.Run(i, feeds, "loss", "upd")
			if err != nil {
				t.Fatal(err)
			}
			last = out["loss"].Float32s()[0]
		}
		return last
	}
	sgd := run(false)
	mom := run(true)
	if mom >= sgd {
		t.Errorf("momentum (%v) should beat plain SGD (%v) here", mom, sgd)
	}
}

func TestApplyAdamTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const batch, in, classes = 16, 8, 4
	b := graph.NewBuilder()
	x := b.Placeholder("x", graph.Static(tensor.Float32, batch, in))
	labels := b.Placeholder("labels", graph.Static(tensor.Int32, batch))
	w := b.Variable("w", graph.Static(tensor.Float32, in, classes))
	loss := b.SoftmaxXent("loss", b.MatMul("mm", x, w), labels)
	grads, err := graph.Gradients(b, loss, []*graph.Node{w})
	if err != nil {
		t.Fatal(err)
	}
	b.ApplyAdam("upd", w, grads[w], 0.05)
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	vars := NewVarStore()
	wt := tensor.New(tensor.Float32, in, classes)
	tensor.GlorotInit(wt, rng)
	if err := vars.Create("w", wt); err != nil {
		t.Fatal(err)
	}
	e, _ := New(g, Config{Vars: vars})
	xt := tensor.New(tensor.Float32, batch, in)
	tensor.RandomUniform(xt, rng, 1)
	lt := tensor.New(tensor.Int32, batch)
	tensor.RandomLabels(lt, rng, classes)
	feeds := map[string]*tensor.Tensor{"x": xt, "labels": lt}
	var first, last float32
	for i := 0; i < 60; i++ {
		out, err := e.Run(i, feeds, "loss", "upd")
		if err != nil {
			t.Fatal(err)
		}
		l := out["loss"].Float32s()[0]
		if i == 0 {
			first = l
		}
		last = l
	}
	if last > first*0.4 {
		t.Errorf("adam did not converge: %v -> %v", first, last)
	}
	// All three slots must exist.
	for _, slot := range []string{"w/adam_m", "w/adam_v", "w/adam_t"} {
		if _, err := vars.VarTensor(slot); err != nil {
			t.Errorf("missing slot %s: %v", slot, err)
		}
	}
	st, _ := vars.VarTensor("w/adam_t")
	if st.Float32s()[0] != 60 {
		t.Errorf("step counter = %v, want 60", st.Float32s()[0])
	}
}

func TestApplyAdamValidation(t *testing.T) {
	b := graph.NewBuilder()
	x := b.Placeholder("x", graph.Static(tensor.Float32, 2))
	b.ApplyAdam("bad", x, x, 0.1)
	if _, err := b.Finish(); !errors.Is(err, graph.ErrBadGraph) {
		t.Errorf("adam on non-variable: %v", err)
	}
	b2 := graph.NewBuilder()
	b2.ApplyAdam("bad", nil, nil, 0.1)
	if _, err := b2.Finish(); !errors.Is(err, graph.ErrBadGraph) {
		t.Errorf("nil variable: %v", err)
	}
}
