package bench

import (
	"fmt"
	"time"

	"repro/internal/distributed"
	"repro/internal/graph"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// Functional micro-benchmark: unlike Figure8 (which prices transfers with
// the calibrated simulator), this drives the *real* protocol stacks of the
// in-process cluster — the flag-byte RDMA writes, the ring-buffer
// fragmentation, the RPC serialization — and measures host wall time. The
// absolute numbers reflect this machine's memcpy bandwidth, but the
// structural ordering (zerocp <= cp <= gRPC paths) comes from the real code
// paths executing their real copies.

// FunctionalMicroResult is one measured configuration.
type FunctionalMicroResult struct {
	Kind    distributed.Kind
	Size    int
	Iters   int
	PerIter time.Duration
}

// FunctionalMicro transfers a [size/4]-element float32 tensor from worker0
// to ps0 (which reduces it) iters times under the given mechanism and
// returns the per-iteration wall time.
func FunctionalMicro(kind distributed.Kind, size, iters int) (*FunctionalMicroResult, error) {
	if size%4 != 0 || size <= 0 {
		return nil, fmt.Errorf("bench: size %d must be a positive multiple of 4", size)
	}
	b := graph.NewBuilder()
	b.OnTask("worker0")
	x := b.Placeholder("x", graph.Static(tensor.Float32, size/4))
	b.OnTask("ps0")
	b.ReduceMax("sink", x)
	cl, err := distributed.Launch(b, distributed.Config{
		Kind:       kind,
		ArenaBytes: size*4 + (1 << 20),
		RingCfg:    transport.RingConfig{Slots: 32, SlotSize: 64 << 10},
	})
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	payload := tensor.New(tensor.Float32, size/4)
	payload.Fill(1)
	feeds := map[string]map[string]*tensor.Tensor{"worker0": {"x": payload}}
	fetches := map[string][]string{"ps0": {"sink"}}

	// Warm-up iteration (also the tracing iteration for the zero-copy
	// mechanism).
	if _, err := cl.Step(0, feeds, fetches); err != nil {
		return nil, err
	}
	start := time.Now()
	for iter := 1; iter <= iters; iter++ {
		if _, err := cl.Step(iter, feeds, fetches); err != nil {
			return nil, err
		}
	}
	return &FunctionalMicroResult{
		Kind: kind, Size: size, Iters: iters,
		PerIter: time.Since(start) / time.Duration(iters),
	}, nil
}

// FunctionalMicroTable measures all four mechanisms over the given sizes.
func FunctionalMicroTable(sizes []int, iters int) (*Table, error) {
	t := &Table{
		Title:  "Functional micro-benchmark (real in-process protocol stacks, host wall time)",
		Note:   "absolute times reflect this machine; the ordering is the structural result",
		Header: []string{"Size", "gRPC.TCP", "gRPC.RDMA", "RDMA.cp", "RDMA.zerocp"},
	}
	kinds := []distributed.Kind{
		distributed.GRPCTCP, distributed.GRPCRDMA,
		distributed.RDMACopy, distributed.RDMA,
	}
	for _, size := range sizes {
		row := []string{humanBytes(int64(size))}
		for _, kind := range kinds {
			res, err := FunctionalMicro(kind, size, iters)
			if err != nil {
				return nil, fmt.Errorf("bench: %v at %d bytes: %w", kind, size, err)
			}
			row = append(row, res.PerIter.String())
		}
		t.AddRow(row...)
	}
	return t, nil
}
