// Package bench regenerates every table and figure of the paper's
// evaluation (§5): the same rows and series, produced by the calibrated
// simulator for performance numbers and by real training runs for the
// convergence curves. Each generator returns a Table that renders as
// aligned text or CSV.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output: a title, column headers, and rows.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "   %s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// CSV renders the table as comma-separated values (cells containing commas
// are quoted).
func (t *Table) CSV(w io.Writer) {
	writeCSVRow(w, t.Header)
	for _, row := range t.Rows {
		writeCSVRow(w, row)
	}
}

func writeCSVRow(w io.Writer, cells []string) {
	out := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		out[i] = c
	}
	fmt.Fprintln(w, strings.Join(out, ","))
}
