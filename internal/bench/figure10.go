package bench

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/distributed"
	"repro/internal/exec"
	"repro/internal/models"
	"repro/internal/netsim"
)

// Figure 10 (convergence of real applications) composes two ingredients:
//
//  1. a real SGD training run of the scaled-down application, which yields
//     the metric-vs-iteration curve (identical across communication
//     mechanisms, because synchronous data parallelism performs the same
//     update sequence regardless of transport), and
//  2. the simulator's per-iteration wall time for the application's
//     full-size communication profile on 8 servers, one per mechanism,
//
// giving metric-vs-time curves whose horizontal stretching reproduces the
// paper's figure: the same curve reached ~3x sooner with the device
// mechanism than with gRPC over TCP.

// ConvergencePoint is one sample of a metric-vs-time curve.
type ConvergencePoint struct {
	Iteration int
	Metric    float64
	// SecondsBy maps mechanism name to elapsed wall time at this point.
	SecondsBy map[string]float64
}

// ConvergenceResult is one application's Figure 10 panel.
type ConvergenceResult struct {
	App        string
	MetricName string
	Points     []ConvergencePoint
	// IterUS maps mechanism name to simulated per-iteration time.
	IterUS map[string]float64
}

// SpeedupOver returns how much faster the RDMA mechanism reaches any given
// metric level than the baseline (the ratio of per-iteration times).
func (r *ConvergenceResult) SpeedupOver(base distributed.Kind) float64 {
	return r.IterUS[base.String()] / r.IterUS[distributed.RDMA.String()]
}

// appBuilder constructs a trainable application.
type appBuilder func(seed int64) (*models.TrainableApp, error)

// RunConvergence trains one application for iters iterations and prices its
// iterations under every mechanism.
func RunConvergence(build appBuilder, iters, sampleEvery int, seed int64) (*ConvergenceResult, error) {
	app, err := build(seed)
	if err != nil {
		return nil, err
	}
	e, err := exec.New(app.Graph, exec.Config{Vars: app.Vars})
	if err != nil {
		return nil, err
	}
	res := &ConvergenceResult{
		App:        app.Name,
		MetricName: app.Metric,
		IterUS:     make(map[string]float64),
	}
	// Per-iteration times of the full-size distributed app (batch 32).
	for _, kind := range mechanisms {
		sim := netsim.NewClusterSim(8, kind, false)
		res.IterUS[kind.String()] = sim.IterationUS(app.CommSpec, 32)
	}
	// Batches are generated ahead of the training loop on a background
	// goroutine, the way the paper's workers "load the sample data from
	// local disk in parallel with the training process".
	pipeline := data.NewPrefetcher(app.NextFeeds, 2)
	defer pipeline.Close()
	for iter := 0; iter < iters; iter++ {
		feeds, err := pipeline.Next()
		if err != nil {
			return nil, err
		}
		out, err := e.Run(iter, feeds, app.LossName, app.StepName)
		if err != nil {
			return nil, fmt.Errorf("bench: %s iteration %d: %w", app.Name, iter, err)
		}
		if iter%sampleEvery != 0 && iter != iters-1 {
			continue
		}
		metric := app.MetricValue(out[app.LossName].Float32s()[0])
		pt := ConvergencePoint{Iteration: iter, Metric: metric, SecondsBy: map[string]float64{}}
		for name, us := range res.IterUS {
			pt.SecondsBy[name] = float64(iter+1) * us / 1e6
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Figure10 regenerates the three convergence panels. iters scales run
// length (the default 0 selects per-app defaults suitable for the repro
// binary).
func Figure10(seed int64, iters int) ([]*Table, []*ConvergenceResult, error) {
	apps := []struct {
		build appBuilder
		iters int
	}{
		{models.NewSeq2SeqApp, 240},
		{models.NewCIFARApp, 160},
		{models.NewSEApp, 160},
	}
	var tables []*Table
	var results []*ConvergenceResult
	for _, a := range apps {
		n := a.iters
		if iters > 0 {
			n = iters
		}
		sample := n / 12
		if sample < 1 {
			sample = 1
		}
		res, err := RunConvergence(a.build, n, sample, seed)
		if err != nil {
			return nil, nil, err
		}
		t := &Table{
			Title: fmt.Sprintf("Figure 10: convergence of %s (%s vs wall time, 8 workers)",
				res.App, res.MetricName),
			Note: fmt.Sprintf("RDMA reaches any target %.1fx sooner than gRPC.TCP, %.0f%% sooner than gRPC.RDMA",
				res.SpeedupOver(distributed.GRPCTCP),
				(res.SpeedupOver(distributed.GRPCRDMA)-1)*100),
			Header: []string{"Iteration", res.MetricName,
				"t(gRPC.TCP) s", "t(gRPC.RDMA) s", "t(RDMA) s"},
		}
		for _, p := range res.Points {
			t.AddRow(fmt.Sprintf("%d", p.Iteration),
				fmt.Sprintf("%.4f", p.Metric),
				fmt.Sprintf("%.2f", p.SecondsBy[distributed.GRPCTCP.String()]),
				fmt.Sprintf("%.2f", p.SecondsBy[distributed.GRPCRDMA.String()]),
				fmt.Sprintf("%.2f", p.SecondsBy[distributed.RDMA.String()]))
		}
		tables = append(tables, t)
		results = append(results, res)
	}
	return tables, results, nil
}
