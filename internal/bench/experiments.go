package bench

import (
	"fmt"
	"sort"

	"repro/internal/distributed"
	"repro/internal/models"
	"repro/internal/netsim"
)

// mechanisms in the order the paper's figures plot them.
var mechanisms = []distributed.Kind{
	distributed.GRPCTCP, distributed.GRPCRDMA, distributed.RDMA,
}

// Table2 regenerates the benchmark characteristics table: model size,
// variable tensor count, and single-sample computation time.
func Table2() *Table {
	t := &Table{
		Title:  "Table 2: deep learning benchmarks",
		Header: []string{"Type", "Benchmark", "Model size (MB)", "Variable Tensor#", "Computation time (ms)"},
	}
	for _, s := range models.All() {
		t.AddRow(s.Family, s.Name,
			fmt.Sprintf("%.2f", s.ModelMB()),
			fmt.Sprintf("%d", s.VarCount()),
			fmt.Sprintf("%.2f", s.Compute.BaseMS))
	}
	return t
}

// Figure7 regenerates the complementary cumulative distribution of variable
// tensor sizes across all six benchmarks.
func Figure7() *Table {
	var sizes []int64
	var total int64
	for _, s := range models.All() {
		for _, b := range s.TensorSizes() {
			sizes = append(sizes, b)
			total += b
		}
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	t := &Table{
		Title:  "Figure 7: CCDF of variable tensor sizes",
		Note:   fmt.Sprintf("%d tensors, %.1f MB total", len(sizes), float64(total)/(1<<20)),
		Header: []string{"Size >=", "Fraction of tensors", "Fraction of capacity"},
	}
	thresholds := []int64{1, 100, 1 << 10, 10 << 10, 100 << 10, 1 << 20, 10 << 20, 100 << 20}
	for _, th := range thresholds {
		var count, capacity int64
		for _, s := range sizes {
			if s >= th {
				count++
				capacity += s
			}
		}
		t.AddRow(humanBytes(th),
			fmt.Sprintf("%.3f", float64(count)/float64(len(sizes))),
			fmt.Sprintf("%.3f", float64(capacity)/float64(total)))
	}
	return t
}

func humanBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%dGB", b>>30)
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	case b >= 1<<10:
		return fmt.Sprintf("%dKB", b>>10)
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// Figure8 regenerates the two-server micro-benchmark: iteration time per
// transferred tensor size for each mechanism, plus RDMA.zerocp's speedups.
func Figure8() *Table {
	t := &Table{
		Title: "Figure 8: send/receive micro-benchmark (two servers, reduce_max consumer)",
		Note:  "times are per-iteration; speedup columns are relative to RDMA.zerocp",
		Header: []string{"Size", "gRPC.TCP (us)", "gRPC.RDMA (us)", "RDMA.cp (us)",
			"RDMA.zerocp (us)", "vs TCP", "vs gRPC.RDMA", "vs cp"},
	}
	for size := int64(1 << 10); size <= 1<<30; size <<= 2 {
		tcp := netsim.MicroIterUS(distributed.GRPCTCP, size)
		gr := netsim.MicroIterUS(distributed.GRPCRDMA, size)
		cp := netsim.MicroIterUS(distributed.RDMACopy, size)
		z := netsim.MicroIterUS(distributed.RDMA, size)
		grCell := fmt.Sprintf("%.1f", gr)
		grRatio := fmt.Sprintf("%.2fx", gr/z)
		if size > 1<<30-1 {
			grCell, grRatio = "crash", "-" // the paper's missing 1GB point
		}
		t.AddRow(humanBytes(size),
			fmt.Sprintf("%.1f", tcp), grCell,
			fmt.Sprintf("%.1f", cp), fmt.Sprintf("%.1f", z),
			fmt.Sprintf("%.2fx", tcp/z), grRatio, fmt.Sprintf("%.2fx", cp/z))
	}
	return t
}

// Figure9 regenerates the throughput-vs-batch-size comparison for all six
// benchmarks on 8 servers.
func Figure9() *Table {
	t := &Table{
		Title: "Figure 9: throughput vs mini-batch size (8 servers, mini-batches/s per worker)",
		Header: []string{"Benchmark", "Batch", "gRPC.TCP", "gRPC.RDMA", "RDMA",
			"RDMA vs gRPC.RDMA", "RDMA vs gRPC.TCP"},
	}
	for _, spec := range models.All() {
		batches := []int{1, 2, 4, 8, 16, 32, 64}
		if spec.Family != "RNN" {
			batches = append(batches, 128)
		}
		for _, batch := range batches {
			rate := func(kind distributed.Kind) float64 {
				it := netsim.NewClusterSim(8, kind, false).IterationUS(spec, batch)
				return 1e6 / it
			}
			tcp, gr, r := rate(distributed.GRPCTCP), rate(distributed.GRPCRDMA), rate(distributed.RDMA)
			t.AddRow(spec.Name, fmt.Sprintf("%d", batch),
				fmt.Sprintf("%.2f", tcp), fmt.Sprintf("%.2f", gr), fmt.Sprintf("%.2f", r),
				fmt.Sprintf("+%.0f%%", (r/gr-1)*100),
				fmt.Sprintf("+%.0f%%", (r/tcp-1)*100))
		}
	}
	return t
}

// Figure11 regenerates the scalability experiment: aggregate samples/second
// at batch 32 on 1..8 servers, including the Local baseline.
func Figure11() *Table {
	t := &Table{
		Title: "Figure 11: scalability (batch 32, aggregate samples/s)",
		Header: []string{"Benchmark", "Servers", "gRPC.TCP", "gRPC.RDMA", "RDMA",
			"RDMA vs Local", "RDMA speedup vs 1 server"},
	}
	for _, name := range []string{"LSTM", "Inception-v3", "VGGNet-16"} {
		spec, err := models.ByName(name)
		if err != nil {
			continue
		}
		local := netsim.LocalThroughputSamplesPerSec(spec, 32)
		base := netsim.NewClusterSim(1, distributed.RDMA, false).ThroughputSamplesPerSec(spec, 32)
		t.AddRow(spec.Name, "Local", "-", "-", fmt.Sprintf("%.0f", local), "1.00x", "-")
		for _, n := range []int{1, 2, 4, 8} {
			rate := func(kind distributed.Kind) float64 {
				return netsim.NewClusterSim(n, kind, false).ThroughputSamplesPerSec(spec, 32)
			}
			r := rate(distributed.RDMA)
			t.AddRow(spec.Name, fmt.Sprintf("%d", n),
				fmt.Sprintf("%.0f", rate(distributed.GRPCTCP)),
				fmt.Sprintf("%.0f", rate(distributed.GRPCRDMA)),
				fmt.Sprintf("%.0f", r),
				fmt.Sprintf("%.2fx", r/local),
				fmt.Sprintf("%.2fx", r/base))
		}
	}
	return t
}

// Figure12 regenerates the memory-copy ablation: average minibatch time at
// batch 8 with the zero-copy graph analysis on (RDMA) and off (RDMA.cp).
func Figure12() *Table {
	t := &Table{
		Title: "Figure 12: sender memory-copy overhead (batch 8, 8 servers)",
		Header: []string{"Benchmark", "RDMA zerocopy (ms)", "RDMA w/ copy (ms)",
			"Zero-copy improvement"},
	}
	for _, spec := range models.All() {
		z := netsim.NewClusterSim(8, distributed.RDMA, false).IterationUS(spec, 8) / 1000
		cp := netsim.NewClusterSim(8, distributed.RDMACopy, false).IterationUS(spec, 8) / 1000
		t.AddRow(spec.Name, fmt.Sprintf("%.2f", z), fmt.Sprintf("%.2f", cp),
			fmt.Sprintf("+%.1f%%", (cp/z-1)*100))
	}
	return t
}

// Table3 regenerates the GPUDirect RDMA comparison: average minibatch time
// with and without GDR at batch 32 on 8 workers.
func Table3() *Table {
	t := &Table{
		Title:  "Table 3: GPUDirect RDMA (batch 32, 8 workers, avg minibatch ms)",
		Header: []string{"Benchmark", "RDMA", "RDMA+GDR", "Improv."},
	}
	for _, spec := range models.All() {
		no := netsim.NewClusterSim(8, distributed.RDMA, false).IterationUS(spec, 32) / 1000
		yes := netsim.NewClusterSim(8, distributed.RDMA, true).IterationUS(spec, 32) / 1000
		t.AddRow(spec.Name, fmt.Sprintf("%.1f", no), fmt.Sprintf("%.1f", yes),
			fmt.Sprintf("%.0f%%", (no/yes-1)*100))
	}
	return t
}

// Section51Claims summarizes the micro-benchmark speedup ranges quoted in
// the §5.1 prose.
func Section51Claims() *Table {
	t := &Table{
		Title:  "Section 5.1 prose claims: RDMA.zerocp speedup ranges over the size sweep",
		Header: []string{"Baseline", "Min speedup", "Max speedup", "Paper reports"},
	}
	ranges := func(kind distributed.Kind) (lo, hi float64) {
		lo, hi = 1e18, 0
		for size := int64(1 << 10); size <= 1<<30; size <<= 1 {
			r := netsim.MicroIterUS(kind, size) / netsim.MicroIterUS(distributed.RDMA, size)
			if r < lo {
				lo = r
			}
			if r > hi {
				hi = r
			}
		}
		return
	}
	type claim struct {
		kind  distributed.Kind
		paper string
	}
	for _, c := range []claim{
		{distributed.GRPCTCP, "1.7x to 61x"},
		{distributed.GRPCRDMA, "1.3x to 14x"},
		{distributed.RDMACopy, "1.2x to 1.8x"},
	} {
		lo, hi := ranges(c.kind)
		t.AddRow(c.kind.String(), fmt.Sprintf("%.2fx", lo), fmt.Sprintf("%.2fx", hi), c.paper)
	}
	return t
}

// BandwidthSweep is the ablation behind the paper's premise (§2.3): "the
// high-bandwidth of RDMA and its kernel-bypassing nature make any
// communication related computation overhead significant". As the wire gets
// faster, the RPC stack's copies and serialization stop hiding behind it,
// so the zero-copy mechanism's advantage grows.
func BandwidthSweep() *Table {
	t := &Table{
		Title:  "Ablation: zero-copy advantage vs link speed (AlexNet, batch 32, 8 servers)",
		Header: []string{"Link", "gRPC.RDMA iter (ms)", "RDMA iter (ms)", "RDMA improvement"},
	}
	spec, err := models.ByName("AlexNet")
	if err != nil {
		return t
	}
	links := []struct {
		name string
		gbps float64
	}{
		{"10 Gbps", 1.2}, {"25 Gbps", 3.0}, {"40 Gbps", 4.8},
		{"100 Gbps", 12.0}, {"200 Gbps", 24.0},
	}
	for _, l := range links {
		g := netsim.NewClusterSim(8, distributed.GRPCRDMA, false)
		g.Params.WireGBps = l.gbps
		r := netsim.NewClusterSim(8, distributed.RDMA, false)
		r.Params.WireGBps = l.gbps
		gi := g.IterationUS(spec, 32) / 1000
		ri := r.IterationUS(spec, 32) / 1000
		t.AddRow(l.name, fmt.Sprintf("%.1f", gi), fmt.Sprintf("%.1f", ri),
			fmt.Sprintf("+%.0f%%", (gi/ri-1)*100))
	}
	return t
}

// QPSweep is the ablation for the §3.1 design point: throughput of a
// staging-heavy benchmark versus the per-peer QP/CQ-poller count.
func QPSweep() *Table {
	t := &Table{
		Title:  "Ablation: QPs/CQ pollers per peer (AlexNet, batch 32, 8 servers, RDMA)",
		Header: []string{"QPs", "Iteration (ms)", "Aggregate samples/s"},
	}
	spec, err := models.ByName("AlexNet")
	if err != nil {
		return t
	}
	for _, qps := range []int{1, 2, 4, 8} {
		c := netsim.NewClusterSim(8, distributed.RDMA, false)
		c.CPUThreads = qps
		t.AddRow(fmt.Sprintf("%d", qps),
			fmt.Sprintf("%.1f", c.IterationUS(spec, 32)/1000),
			fmt.Sprintf("%.0f", c.ThroughputSamplesPerSec(spec, 32)))
	}
	return t
}

// PlacementSweep compares the paper's round-robin variable placement with
// largest-first balanced placement — the natural mitigation for the
// single-shard NIC hotspot that bounds VGG's scalability in Figure 11.
func PlacementSweep() *Table {
	t := &Table{
		Title: "Ablation: PS variable placement (batch 32, 8 servers, RDMA)",
		Note:  "balancing whole tensors cannot split a dominant one; partitioning can",
		Header: []string{"Benchmark", "Round-robin (ms)", "Balanced (ms)",
			"Partitioned (ms)", "Partitioned speedup"},
	}
	for _, spec := range models.All() {
		sim := func(p netsim.Placement) float64 {
			c := netsim.NewClusterSim(8, distributed.RDMA, false)
			c.Placement = p
			return c.IterationUS(spec, 32) / 1000
		}
		a, b, p := sim(netsim.RoundRobin), sim(netsim.Balanced), sim(netsim.Partitioned)
		t.AddRow(spec.Name, fmt.Sprintf("%.1f", a), fmt.Sprintf("%.1f", b),
			fmt.Sprintf("%.1f", p), fmt.Sprintf("%.2fx", a/p))
	}
	return t
}
