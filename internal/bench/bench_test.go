package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/distributed"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Note:   "a note",
		Header: []string{"a", "b"},
	}
	tab.AddRow("1", "hello, world")
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== demo ==", "a note", "hello, world"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	buf.Reset()
	tab.CSV(&buf)
	if !strings.Contains(buf.String(), `"hello, world"`) {
		t.Errorf("CSV quoting failed: %s", buf.String())
	}
}

func TestTable2Rows(t *testing.T) {
	tab := Table2()
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tab.Rows))
	}
	// LSTM row must carry the exact paper size.
	for _, row := range tab.Rows {
		if row[1] == "LSTM" && row[2] != "35.93" {
			t.Errorf("LSTM size cell = %q", row[2])
		}
	}
}

func TestFigure7Monotone(t *testing.T) {
	tab := Figure7()
	prev := 2.0
	for _, row := range tab.Rows {
		f, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if f > prev {
			t.Errorf("CCDF not non-increasing: %v after %v", f, prev)
		}
		prev = f
	}
	if len(tab.Rows) < 5 {
		t.Error("too few CCDF thresholds")
	}
}

func TestFigure8HasCrashPoint(t *testing.T) {
	tab := Figure8()
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "1GB" || last[2] != "crash" {
		t.Errorf("1GB gRPC.RDMA cell = %q (want the paper's crash marker)", last[2])
	}
	// RDMA column is always the fastest.
	for _, row := range tab.Rows {
		z, _ := strconv.ParseFloat(row[4], 64)
		tcp, _ := strconv.ParseFloat(row[1], 64)
		if z >= tcp {
			t.Errorf("row %v: zerocp not faster than TCP", row[0])
		}
	}
}

func TestFigure9Complete(t *testing.T) {
	tab := Figure9()
	// 6 benchmarks x (7 or 8) batch sizes.
	if len(tab.Rows) != 4*8+2*7 {
		t.Errorf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if !strings.HasPrefix(row[5], "+") {
			t.Errorf("%s batch %s: improvement %q not positive", row[0], row[1], row[5])
		}
	}
}

func TestFigure11IncludesLocal(t *testing.T) {
	tab := Figure11()
	locals := 0
	for _, row := range tab.Rows {
		if row[1] == "Local" {
			locals++
		}
	}
	if locals != 3 {
		t.Errorf("local baselines = %d, want 3", locals)
	}
}

func TestFigure12AndTable3(t *testing.T) {
	for _, tab := range []*Table{Figure12(), Table3()} {
		if len(tab.Rows) != 6 {
			t.Errorf("%s: rows = %d", tab.Title, len(tab.Rows))
		}
	}
	for _, row := range Table3().Rows {
		no, _ := strconv.ParseFloat(row[1], 64)
		yes, _ := strconv.ParseFloat(row[2], 64)
		if yes > no {
			t.Errorf("%s: GDR slower (%v > %v)", row[0], yes, no)
		}
	}
}

func TestSection51Claims(t *testing.T) {
	tab := Section51Claims()
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestQPSweepImproves(t *testing.T) {
	tab := QPSweep()
	first, _ := strconv.ParseFloat(strings.TrimSuffix(tab.Rows[0][1], "ms"), 64)
	last, _ := strconv.ParseFloat(strings.TrimSuffix(tab.Rows[len(tab.Rows)-1][1], "ms"), 64)
	if last >= first {
		t.Errorf("more QPs did not help: %v -> %v", first, last)
	}
}

func TestConvergenceShortRun(t *testing.T) {
	tables, results, err := Figure10(7, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 || len(results) != 3 {
		t.Fatalf("panels = %d/%d", len(tables), len(results))
	}
	for _, res := range results {
		if res.SpeedupOver(distributed.GRPCTCP) <= 1.2 {
			t.Errorf("%s: speedup over TCP %.2f, want > 1.2", res.App, res.SpeedupOver(distributed.GRPCTCP))
		}
		if res.SpeedupOver(distributed.GRPCRDMA) <= 1.0 {
			t.Errorf("%s: no speedup over gRPC.RDMA", res.App)
		}
		first := res.Points[0].Metric
		last := res.Points[len(res.Points)-1].Metric
		if last >= first {
			t.Errorf("%s: metric did not improve (%.3f -> %.3f)", res.App, first, last)
		}
		// Time axes are consistent: RDMA always reaches a given iteration
		// sooner.
		for _, p := range res.Points {
			if p.SecondsBy["RDMA.zerocp"] >= p.SecondsBy["gRPC.TCP"] {
				t.Errorf("%s: RDMA not faster at iteration %d", res.App, p.Iteration)
			}
		}
	}
}

func TestFunctionalMicroOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("functional micro is slow under -short")
	}
	const size = 1 << 20
	z, err := FunctionalMicro(distributed.RDMA, size, 5)
	if err != nil {
		t.Fatal(err)
	}
	tcp, err := FunctionalMicro(distributed.GRPCTCP, size, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The real zero-copy path must beat the real serialize+copy+TCP path.
	if z.PerIter >= tcp.PerIter {
		t.Errorf("functional: zerocp %v not faster than tcp %v", z.PerIter, tcp.PerIter)
	}
}

func TestFunctionalMicroValidation(t *testing.T) {
	if _, err := FunctionalMicro(distributed.RDMA, 3, 1); err == nil {
		t.Error("non-multiple-of-4 size accepted")
	}
}

func TestBandwidthSweepMonotone(t *testing.T) {
	tab := BandwidthSweep()
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	prev := -1.0
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimPrefix(row[3], "+"), "%"), 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev {
			t.Errorf("improvement not monotone: %v after %v", v, prev)
		}
		prev = v
	}
}

func TestPlacementSweep(t *testing.T) {
	tab := PlacementSweep()
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		sp, err := strconv.ParseFloat(strings.TrimSuffix(row[4], "x"), 64)
		if err != nil {
			t.Fatal(err)
		}
		if sp < 1.0 {
			t.Errorf("%s: partitioning slowed things down (%.2fx)", row[0], sp)
		}
	}
}
