package comm

import (
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
)

func f32(dims ...int) graph.Sig { return graph.Static(tensor.Float32, dims...) }

func TestBuildBucketsPacksInBackwardOrder(t *testing.T) {
	specs := []GradSpec{
		{Name: "b2", Sig: f32(8)},
		{Name: "w2", Sig: f32(16, 8)},
		{Name: "b1", Sig: f32(16)},
		{Name: "w1", Sig: f32(4, 16)},
	}
	// Capacity fits b2+w2 (136 elems = 544B) but not b1 on top.
	buckets, err := BuildBuckets(specs, 560)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 2 {
		t.Fatalf("got %d buckets, want 2: %+v", len(buckets), buckets)
	}
	b0 := buckets[0]
	if len(b0.Members) != 2 || b0.Members[0].Name != "b2" || b0.Members[1].Name != "w2" {
		t.Fatalf("bucket 0 members %+v", b0.Members)
	}
	if b0.Members[0].Offset != 0 || b0.Members[1].Offset != 8 || b0.Elems != 136 {
		t.Fatalf("bucket 0 layout %+v", b0)
	}
	b1 := buckets[1]
	if len(b1.Members) != 2 || b1.Members[0].Name != "b1" || b1.Members[1].Name != "w1" {
		t.Fatalf("bucket 1 members %+v", b1.Members)
	}
	if b1.Elems != 16+64 {
		t.Fatalf("bucket 1 elems %d", b1.Elems)
	}
}

// The straggler rule: a trailing partial bucket is emitted, and a single
// oversized gradient still gets a bucket of its own.
func TestBuildBucketsStragglerAndOversize(t *testing.T) {
	buckets, err := BuildBuckets([]GradSpec{
		{Name: "huge", Sig: f32(1024)}, // 4 KiB > capacity
		{Name: "tail", Sig: f32(3)},    // partial fill, must still flush
	}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 2 {
		t.Fatalf("got %d buckets, want 2", len(buckets))
	}
	if buckets[0].Members[0].Name != "huge" || buckets[0].Elems != 1024 {
		t.Fatalf("oversize bucket %+v", buckets[0])
	}
	if buckets[1].Members[0].Name != "tail" || buckets[1].Elems != 3 {
		t.Fatalf("straggler bucket %+v", buckets[1])
	}
}

func TestBuildBucketsSplitsDTypes(t *testing.T) {
	buckets, err := BuildBuckets([]GradSpec{
		{Name: "a", Sig: f32(4)},
		{Name: "i", Sig: graph.Static(tensor.Int32, 4)},
		{Name: "b", Sig: f32(4)},
	}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(buckets) != 2 {
		t.Fatalf("got %d buckets, want 2 (one per dtype)", len(buckets))
	}
	if buckets[0].DType != tensor.Float32 || len(buckets[0].Members) != 2 {
		t.Fatalf("float bucket %+v", buckets[0])
	}
	if buckets[1].DType != tensor.Int32 || buckets[1].Members[0].Name != "i" {
		t.Fatalf("int bucket %+v", buckets[1])
	}
}

func TestBuildBucketsRejectsBadSpecs(t *testing.T) {
	cases := [][]GradSpec{
		{},
		{{Name: "", Sig: f32(4)}},
		{{Name: "a", Sig: f32(4)}, {Name: "a", Sig: f32(4)}},
		{{Name: "dyn", Sig: graph.Dyn(tensor.Float32, -1, 4)}},
	}
	for i, specs := range cases {
		if _, err := BuildBuckets(specs, 1024); !errors.Is(err, ErrPlane) {
			t.Fatalf("case %d: err = %v, want ErrPlane", i, err)
		}
	}
}

func TestSegmentRanges(t *testing.T) {
	cases := []struct {
		elems, segs int
		want        []SegRange
	}{
		{10, 4, []SegRange{{0, 3}, {3, 3}, {6, 2}, {8, 2}}},
		{3, 8, []SegRange{{0, 1}, {1, 1}, {2, 1}}}, // clamp to elems
		{7, 0, []SegRange{{0, 7}}},                 // clamp to 1
		{6, 3, []SegRange{{0, 2}, {2, 2}, {4, 2}}},
	}
	for _, c := range cases {
		got := SegmentRanges(c.elems, c.segs)
		if len(got) != len(c.want) {
			t.Fatalf("SegmentRanges(%d,%d) = %v, want %v", c.elems, c.segs, got, c.want)
		}
		total := 0
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("SegmentRanges(%d,%d) = %v, want %v", c.elems, c.segs, got, c.want)
			}
			total += got[i].Elems
		}
		if total != c.elems {
			t.Fatalf("segments cover %d of %d elems", total, c.elems)
		}
	}
}

func TestCoalescePhase(t *testing.T) {
	cases := map[string]string{
		"ar.r/b0/s1/p2": "ar.r",
		"ar.b/b3/s0/f1": "ar.b",
		"ar.p/b0/w7":    "ar.p",
		"gsum_w1_2":     "",
		"grad/w1":       "",
		"ar.":           "ar.",
	}
	for in, want := range cases {
		if got := CoalescePhase(in); got != want {
			t.Fatalf("CoalescePhase(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseTopology(t *testing.T) {
	for s, want := range map[string]Topology{"": TopologyPS, "ps": TopologyPS,
		"ring": TopologyRing, "Tree": TopologyTree} {
		got, err := ParseTopology(s)
		if err != nil || got != want {
			t.Fatalf("ParseTopology(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseTopology("mesh"); !errors.Is(err, ErrPlane) {
		t.Fatalf("ParseTopology(mesh) err = %v, want ErrPlane", err)
	}
}
