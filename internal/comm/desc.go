package comm

import (
	"encoding/binary"
	"fmt"

	"repro/internal/tensor"
)

// BucketDesc is the wire descriptor for one bucket's layout: every worker
// builds its pack/segment/unpack operators from the *unmarshaled* bytes,
// so a corrupted or adversarial descriptor is rejected at construction
// time instead of corrupting a reduction. The format is little-endian:
//
//	u32 magic "ARBD"  u16 version
//	u32 index  u8 dtype  u32 elems  u16 segments  u16 members
//	per member: u16 nameLen + name bytes, u32 offset, u32 elems,
//	            u8 rank, rank * u32 dims
//
// Members must tile [0, elems) contiguously in order, and each member's
// shape must multiply out to its element count.
type BucketDesc struct {
	Index    int
	DType    tensor.DType
	Elems    int
	Segments int
	Members  []Member
}

const (
	descMagic   = uint32(0x41524244) // "ARBD"
	descVersion = uint16(1)

	maxDescMembers  = 1 << 12
	maxDescNameLen  = 256
	maxDescRank     = 8
	maxDescElems    = 1 << 30
	maxDescSegments = 1 << 16
)

// Desc builds the wire descriptor for a bucket with the given segment
// count (clamped the same way SegmentRanges clamps it).
func (b *Bucket) Desc(segments int) BucketDesc {
	return BucketDesc{
		Index:    b.Index,
		DType:    b.DType,
		Elems:    b.Elems,
		Segments: len(SegmentRanges(b.Elems, segments)),
		Members:  b.Members,
	}
}

// Marshal encodes the descriptor.
func (d *BucketDesc) Marshal() []byte {
	buf := make([]byte, 0, 17+len(d.Members)*16)
	buf = binary.LittleEndian.AppendUint32(buf, descMagic)
	buf = binary.LittleEndian.AppendUint16(buf, descVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(d.Index))
	buf = append(buf, byte(d.DType))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(d.Elems))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(d.Segments))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(d.Members)))
	for _, m := range d.Members {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(m.Name)))
		buf = append(buf, m.Name...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Offset))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Elems))
		buf = append(buf, byte(len(m.Shape)))
		for _, dim := range m.Shape {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(dim))
		}
	}
	return buf
}

type descReader struct {
	buf []byte
	off int
	err error
}

func (r *descReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.err = fmt.Errorf("%w: bucket descriptor truncated at byte %d", ErrPlane, r.off)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *descReader) u8() uint8 {
	b := r.take(1)
	if r.err != nil {
		return 0
	}
	return b[0]
}

func (r *descReader) u16() uint16 {
	b := r.take(2)
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *descReader) u32() uint32 {
	b := r.take(4)
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// UnmarshalBucketDesc decodes and validates a bucket descriptor. Every
// structural invariant the collective operators rely on is checked here:
// valid dtype, contiguous member tiling, shape/element agreement, and
// bounded counts — so the operators never index out of a bucket.
func UnmarshalBucketDesc(buf []byte) (*BucketDesc, error) {
	r := &descReader{buf: buf}
	if magic := r.u32(); r.err == nil && magic != descMagic {
		return nil, fmt.Errorf("%w: bad bucket descriptor magic %#x", ErrPlane, magic)
	}
	if v := r.u16(); r.err == nil && v != descVersion {
		return nil, fmt.Errorf("%w: bucket descriptor version %d (want %d)", ErrPlane, v, descVersion)
	}
	d := &BucketDesc{}
	d.Index = int(r.u32())
	d.DType = tensor.DType(r.u8())
	d.Elems = int(r.u32())
	d.Segments = int(r.u16())
	members := int(r.u16())
	if r.err != nil {
		return nil, r.err
	}
	if !d.DType.Valid() {
		return nil, fmt.Errorf("%w: bucket descriptor dtype %d invalid", ErrPlane, d.DType)
	}
	if d.Elems < 1 || d.Elems > maxDescElems {
		return nil, fmt.Errorf("%w: bucket descriptor elems %d out of range", ErrPlane, d.Elems)
	}
	if d.Segments < 1 || d.Segments > d.Elems || d.Segments > maxDescSegments {
		return nil, fmt.Errorf("%w: bucket descriptor segments %d out of range for %d elems", ErrPlane, d.Segments, d.Elems)
	}
	if members < 1 || members > maxDescMembers {
		return nil, fmt.Errorf("%w: bucket descriptor member count %d out of range", ErrPlane, members)
	}
	names := make(map[string]bool, members)
	next := 0
	for i := 0; i < members; i++ {
		nameLen := int(r.u16())
		if r.err == nil && (nameLen < 1 || nameLen > maxDescNameLen) {
			return nil, fmt.Errorf("%w: member %d name length %d out of range", ErrPlane, i, nameLen)
		}
		name := string(r.take(nameLen))
		m := Member{Name: name, Offset: int(r.u32()), Elems: int(r.u32())}
		rank := int(r.u8())
		if r.err == nil && rank > maxDescRank {
			return nil, fmt.Errorf("%w: member %q rank %d out of range", ErrPlane, name, rank)
		}
		if r.err != nil {
			return nil, r.err
		}
		m.Shape = make(tensor.Shape, rank)
		prod := 1
		for j := 0; j < rank; j++ {
			dim := int(r.u32())
			if r.err != nil {
				return nil, r.err
			}
			if dim < 0 || dim > maxDescElems {
				return nil, fmt.Errorf("%w: member %q dim %d out of range", ErrPlane, name, dim)
			}
			m.Shape[j] = dim
			if prod <= maxDescElems {
				prod *= dim
			}
		}
		if names[name] {
			return nil, fmt.Errorf("%w: duplicate member %q", ErrPlane, name)
		}
		names[name] = true
		if m.Offset != next {
			return nil, fmt.Errorf("%w: member %q offset %d, want contiguous %d", ErrPlane, name, m.Offset, next)
		}
		if m.Elems < 1 || m.Elems > d.Elems-next {
			return nil, fmt.Errorf("%w: member %q elems %d overflows bucket", ErrPlane, name, m.Elems)
		}
		if prod != m.Elems {
			return nil, fmt.Errorf("%w: member %q shape %v has %d elems, want %d", ErrPlane, name, m.Shape, prod, m.Elems)
		}
		next += m.Elems
		d.Members = append(d.Members, m)
	}
	if next != d.Elems {
		return nil, fmt.Errorf("%w: members tile %d of %d bucket elems", ErrPlane, next, d.Elems)
	}
	if r.off != len(buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes after bucket descriptor", ErrPlane, len(buf)-r.off)
	}
	return d, nil
}
