package comm

import (
	"encoding/binary"
	"fmt"
)

// ShardMap assigns every gradient bucket to one of K PS shard tasks. Like
// BucketDesc it is a versioned wire descriptor: every task derives its
// collective wiring from the *unmarshaled* bytes, so all tasks provably
// agree on the same placement and a corrupted or adversarial map is
// rejected at construction time. The format is little-endian:
//
//	u32 magic "ARSM"  u16 version
//	u16 shards  u16 buckets
//	per bucket: u16 shard, u32 payload bytes
//
// The recorded payload bytes let consumers cross-check the map against
// their local bucket layout (a map built for a different layout fails
// loudly instead of scattering gradients to the wrong tasks).
type ShardMap struct {
	Shards int
	Assign []int // bucket index -> shard index
	Bytes  []int // bucket index -> payload bytes at build time
}

const (
	shardMapMagic   = uint32(0x4152534D) // "ARSM"
	shardMapVersion = uint16(1)

	maxShardMapShards  = 1 << 10
	maxShardMapBuckets = 1 << 16
	maxShardMapBytes   = 1 << 31
)

// BuildShardMap assigns buckets to shards with a deterministic greedy
// least-loaded-by-bytes policy: buckets are processed in index order and
// each goes to the shard with the fewest assigned payload bytes so far
// (ties break toward the lowest shard index). Every task runs the same
// deterministic function over the same bucket layout, so the placement
// needs no coordination.
func BuildShardMap(buckets []Bucket, shards int) (*ShardMap, error) {
	if shards < 1 {
		return nil, fmt.Errorf("%w: shard map needs at least one shard, got %d", ErrPlane, shards)
	}
	if shards > maxShardMapShards {
		return nil, fmt.Errorf("%w: shard count %d out of range", ErrPlane, shards)
	}
	if len(buckets) == 0 {
		return nil, fmt.Errorf("%w: shard map needs at least one bucket", ErrPlane)
	}
	if len(buckets) > maxShardMapBuckets {
		return nil, fmt.Errorf("%w: bucket count %d out of range", ErrPlane, len(buckets))
	}
	sm := &ShardMap{
		Shards: shards,
		Assign: make([]int, len(buckets)),
		Bytes:  make([]int, len(buckets)),
	}
	load := make([]int64, shards)
	for i := range buckets {
		size := buckets[i].ByteSize()
		if size < 1 || size >= maxShardMapBytes {
			return nil, fmt.Errorf("%w: bucket %d payload %d bytes out of range", ErrPlane, i, size)
		}
		best := 0
		for s := 1; s < shards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		sm.Assign[i] = best
		sm.Bytes[i] = size
		load[best] += int64(size)
	}
	return sm, nil
}

// Marshal encodes the map.
func (sm *ShardMap) Marshal() []byte {
	buf := make([]byte, 0, 10+len(sm.Assign)*6)
	buf = binary.LittleEndian.AppendUint32(buf, shardMapMagic)
	buf = binary.LittleEndian.AppendUint16(buf, shardMapVersion)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(sm.Shards))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(sm.Assign)))
	for i, s := range sm.Assign {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(s))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(sm.Bytes[i]))
	}
	return buf
}

// UnmarshalShardMap decodes and validates a shard map. The structural
// invariants the sharded plane relies on are checked here: bounded shard
// and bucket counts, every assignment inside [0, shards), and a non-empty
// recorded payload per bucket — so the plane never indexes a shard that
// does not exist.
func UnmarshalShardMap(buf []byte) (*ShardMap, error) {
	r := &descReader{buf: buf}
	if magic := r.u32(); r.err == nil && magic != shardMapMagic {
		return nil, fmt.Errorf("%w: bad shard map magic %#x", ErrPlane, magic)
	}
	if v := r.u16(); r.err == nil && v != shardMapVersion {
		return nil, fmt.Errorf("%w: shard map version %d (want %d)", ErrPlane, v, shardMapVersion)
	}
	sm := &ShardMap{}
	sm.Shards = int(r.u16())
	buckets := int(r.u16())
	if r.err != nil {
		return nil, r.err
	}
	if sm.Shards < 1 || sm.Shards > maxShardMapShards {
		return nil, fmt.Errorf("%w: shard map shard count %d out of range", ErrPlane, sm.Shards)
	}
	if buckets < 1 || buckets > maxShardMapBuckets {
		return nil, fmt.Errorf("%w: shard map bucket count %d out of range", ErrPlane, buckets)
	}
	sm.Assign = make([]int, buckets)
	sm.Bytes = make([]int, buckets)
	for i := 0; i < buckets; i++ {
		shard := int(r.u16())
		size := int(r.u32())
		if r.err != nil {
			return nil, r.err
		}
		if shard >= sm.Shards {
			return nil, fmt.Errorf("%w: bucket %d assigned to shard %d of %d", ErrPlane, i, shard, sm.Shards)
		}
		if size < 1 {
			return nil, fmt.Errorf("%w: bucket %d records %d payload bytes", ErrPlane, i, size)
		}
		sm.Assign[i] = shard
		sm.Bytes[i] = size
	}
	if r.off != len(buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes after shard map", ErrPlane, len(buf)-r.off)
	}
	return sm, nil
}

// Validate cross-checks the map against a bucket layout: same bucket
// count, and each bucket's payload matching the recorded size.
func (sm *ShardMap) Validate(buckets []Bucket) error {
	if len(sm.Assign) != len(buckets) {
		return fmt.Errorf("%w: shard map covers %d buckets, layout has %d",
			ErrPlane, len(sm.Assign), len(buckets))
	}
	for i := range buckets {
		if got := buckets[i].ByteSize(); got != sm.Bytes[i] {
			return fmt.Errorf("%w: shard map bucket %d records %d bytes, layout has %d",
				ErrPlane, i, sm.Bytes[i], got)
		}
	}
	return nil
}
