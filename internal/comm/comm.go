// Package comm is the pluggable communication plane for data-parallel
// training. Its primitive is the Table-1 device interface the rest of the
// repository already implements — striped one-sided writes, flag-word
// signaling, and small-message coalescing — reached *through the graph*: a
// plane expresses a collective as ordinary data-flow nodes (pack, segment,
// add, identity, unpack) placed on worker tasks, and the analyzer's
// partitioning inserts the RdmaSend/RdmaRecv pairs on every cross-task
// edge exactly as it does for model edges. Chaos injection, retry budgets,
// striping, coalescing, crash recovery, and the step profiler therefore
// all apply to collectives with no new transport code.
//
// Four planes exist:
//
//   - PS: the parameter-server push/pull the repo trained with since PR 1,
//     refactored behind the Plane interface (gradient left-fold on the
//     variable's task, optimizer applied there, weights pulled back).
//   - Sharded PS: the PS plane with gradient buckets partitioned across K
//     PS shard tasks via a serialized bucket->shard map, optionally with
//     two-level hierarchical aggregation (workers reduce to a local
//     aggregator, aggregators chain to the shard), so no single task's
//     ingress carries N*G bytes.
//   - Ring: a bucketed, segmented all-reduce for bandwidth-bound tensors.
//     Each link carries ~2x the gradient bytes per step regardless of the
//     worker count, so per-task throughput does not degrade with scale the
//     way the PS incast does.
//   - Tree: a binary-tree gather/broadcast for latency-bound small
//     tensors: 2*ceil(log2 N) hops instead of the ring's 2(N-1).
//
// Every plane reduces in the *same* deterministic order — a left fold over
// workers in rank order, per element — so PS, ring, and tree produce
// bit-identical results for the same inputs (see DESIGN.md §13).
package comm

import (
	"errors"
	"fmt"
	"strings"
)

// ErrPlane wraps communication-plane configuration and wiring errors.
var ErrPlane = errors.New("comm: invalid plane configuration")

// Topology selects a communication plane.
type Topology int

const (
	// TopologyPS is the parameter-server push/pull plane.
	TopologyPS Topology = iota
	// TopologyRing is the segmented ring all-reduce plane.
	TopologyRing
	// TopologyTree is the binary-tree all-reduce plane for small tensors.
	TopologyTree
	// TopologyShardedPS is the parameter-server plane with gradient
	// buckets partitioned across K PS shard tasks, optionally with
	// two-level hierarchical aggregation.
	TopologyShardedPS
)

// ParseTopology maps a flag string to a Topology. The empty string means
// PS (the historical default).
func ParseTopology(s string) (Topology, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "ps":
		return TopologyPS, nil
	case "ring":
		return TopologyRing, nil
	case "tree":
		return TopologyTree, nil
	case "sharded-ps":
		return TopologyShardedPS, nil
	default:
		return TopologyPS, fmt.Errorf("%w: unknown topology %q (want ps|sharded-ps|ring|tree)", ErrPlane, s)
	}
}

func (t Topology) String() string {
	switch t {
	case TopologyPS:
		return "ps"
	case TopologyRing:
		return "ring"
	case TopologyTree:
		return "tree"
	case TopologyShardedPS:
		return "sharded-ps"
	default:
		return fmt.Sprintf("topology(%d)", int(t))
	}
}

// Collective node names are namespaced "ar.<phase>/..." so the distributed
// runtime can key coalesce batch groups by dependency phase. The phases:
//
//	ar.p  pack      (bucket assembly; tree gather edge sources)
//	ar.l  local     (segment views feeding a local add; never cross tasks)
//	ar.r  reduce    (ring prefix-sum partials traveling rank k -> k+1)
//	ar.g  gather    (tree up-forwarding and the root-side fold)
//	ar.b  broadcast (totals traveling back out)
//	ar.m  merge     (segment re-concatenation; local)
//	ar.u  unpack    (bucket slicing back into per-variable grads; local)
const arPrefix = "ar."

// CoalescePhase reports the coalesce-group phase tag for a cross-task
// edge's source node, or "" for non-collective nodes. Small collective
// edges must not share a coalesce batch with edges of a *different* phase
// between the same task pair: the batch flushes only when every member
// staged, and a ring's reduce hop k->k+1 transitively depends on the
// broadcast hop k->k+1 of the same pair completing its reduce chain —
// one shared batch would deadlock. Keying the batch group by phase keeps
// the group dependency graph acyclic (DESIGN.md §13).
func CoalescePhase(srcNode string) string {
	if !strings.HasPrefix(srcNode, arPrefix) {
		return ""
	}
	if i := strings.IndexByte(srcNode, '/'); i > 0 {
		return srcNode[:i]
	}
	return srcNode
}
