package comm

import (
	"fmt"

	"repro/internal/graph"
)

// psPlane is the parameter-server push/pull plane: each variable lives on
// one PS task; the workers' gradients flow to it (the partitioner inserts
// the send/recv pairs), are summed there as a left fold in worker rank
// order, and the optimizer applies in place. Downstream reads of the
// variable on worker tasks become the weight pull. This reproduces the
// pre-plane PS wiring node-for-node, including the historical
// "gsum_<var>_<i>" fold names.
type psPlane struct{}

func (psPlane) Topology() Topology { return TopologyPS }

func (psPlane) WireUpdates(b *graph.Builder, job *Job, opts Options) error {
	if job == nil || job.Apply == nil || len(job.Workers) < 1 {
		return fmt.Errorf("%w: job needs workers and an apply function", ErrPlane)
	}
	if len(job.Vars) == 0 {
		return fmt.Errorf("%w: job has no variables", ErrPlane)
	}
	for _, vs := range job.Vars {
		if len(vs.Replicas) != 1 {
			return fmt.Errorf("%w: PS var %q wants exactly one shared replica, has %d",
				ErrPlane, vs.Name, len(vs.Replicas))
		}
		if len(vs.Grads) != len(job.Workers) {
			return fmt.Errorf("%w: var %q has %d gradients for %d workers",
				ErrPlane, vs.Name, len(vs.Grads), len(job.Workers))
		}
		v := vs.Replicas[0]
		b.OnTask(v.Task())
		// The PR-2 accumulation-order contract: sum = ((g0 + g1) + g2) ...,
		// strictly in worker rank order. Ring and tree replicate exactly
		// this fold so all planes agree bit-for-bit.
		sum := vs.Grads[0]
		for i := 1; i < len(vs.Grads); i++ {
			sum = b.Add(fmt.Sprintf("gsum_%s_%d", vs.Name, i), sum, vs.Grads[i])
		}
		job.Apply(b, -1, v, sum)
	}
	return b.Err()
}
