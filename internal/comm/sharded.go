package comm

import (
	"fmt"

	"repro/internal/graph"
)

// shardedPlane is the parameter-server plane with gradient buckets
// partitioned across K PS shard tasks. Workers pack each bucket exactly as
// the ring/tree planes do; the packed buckets flow to their shard (the
// partitioner inserts the send/recv pairs), are left-folded there in
// worker rank order, and the optimizer applies to the shared replicas in
// place. Downstream reads of the variables on worker tasks become the
// weight pull, exactly as with plain PS — but each shard's ingress is only
// its buckets' share of the gradient bytes, so no single task eats the
// N*G incast.
//
// With Options.AggGroup > 1 the fold runs hierarchically: workers are
// grouped into contiguous rank blocks, each block left-folds its packs on
// its first member (the local aggregator), and the running prefix chains
// aggregator to aggregator before the bucket total lands on the shard.
// The chained prefix performs the *identical* binary-add sequence as the
// flat fold — aggregator j receives ((g0+..)+g_{lo-1}) and continues
// Add(prefix, g_lo), Add(.., g_lo+1), ... — so the hierarchy changes only
// where the adds execute, never their operand order, and bit-parity with
// ps/ring/tree holds (DESIGN.md §14).
//
// Bit-parity with the per-variable PS fold follows from pack linearity:
// a pack is a concatenation, elementwise add distributes over
// concatenation, so unpacking the folded bucket yields each member's
// ((g0+g1)+g2)+... exactly.
type shardedPlane struct{}

func (shardedPlane) Topology() Topology { return TopologyShardedPS }

func (shardedPlane) WireUpdates(b *graph.Builder, job *Job, opts Options) error {
	if job == nil || job.Apply == nil || len(job.Workers) < 1 {
		return fmt.Errorf("%w: job needs workers and an apply function", ErrPlane)
	}
	if len(job.Vars) == 0 {
		return fmt.Errorf("%w: job has no variables", ErrPlane)
	}
	byName := make(map[string]*VarSet, len(job.Vars))
	for _, vs := range job.Vars {
		if len(vs.Replicas) != 1 {
			return fmt.Errorf("%w: sharded-PS var %q wants exactly one shared replica, has %d",
				ErrPlane, vs.Name, len(vs.Replicas))
		}
		if len(vs.Grads) != len(job.Workers) {
			return fmt.Errorf("%w: var %q has %d gradients for %d workers",
				ErrPlane, vs.Name, len(vs.Grads), len(job.Workers))
		}
		byName[vs.Name] = vs
	}
	buckets, err := BucketsForJob(job, opts)
	if err != nil {
		return err
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = 1
	}
	built, err := BuildShardMap(buckets, shards)
	if err != nil {
		return err
	}
	// Round-trip the map through its wire form: the serialized descriptor
	// is the production artifact (what FuzzUnmarshalShardMap hammers), so
	// the wiring below consumes only validated, decoded bytes.
	sm, err := UnmarshalShardMap(built.Marshal())
	if err != nil {
		return err
	}
	if err := sm.Validate(buckets); err != nil {
		return err
	}
	// Resolve each shard's task from the replica placements and insist
	// they are consistent: every variable of a bucket must live on the
	// bucket's shard task, and two shards must not collapse onto one task.
	shardTask := make([]string, sm.Shards)
	taskShard := make(map[string]int, sm.Shards)
	for bi := range buckets {
		s := sm.Assign[bi]
		for _, m := range buckets[bi].Members {
			vs := byName[m.Name]
			task := vs.Replicas[0].Task()
			switch {
			case shardTask[s] == "":
				if owner, ok := taskShard[task]; ok && owner != s {
					return fmt.Errorf("%w: task %q hosts shards %d and %d", ErrPlane, task, owner, s)
				}
				shardTask[s] = task
				taskShard[task] = s
			case shardTask[s] != task:
				return fmt.Errorf("%w: var %q placed on %q, but its bucket %d maps to shard %d on %q",
					ErrPlane, m.Name, task, bi, s, shardTask[s])
			}
		}
	}
	n := len(job.Workers)
	for bi := range buckets {
		bk := &buckets[bi]
		desc := bk.Desc(1)
		descBytes := desc.Marshal()
		packs := make([]*graph.Node, n)
		for w := 0; w < n; w++ {
			grads, err := memberGrads(job, bk, w)
			if err != nil {
				return err
			}
			op, err := PackFromDesc(descBytes)
			if err != nil {
				return err
			}
			b.OnTask(job.Workers[w])
			packs[w] = b.AddNode(fmt.Sprintf("ar.p/b%d/w%d", bk.Index, w), op, grads...)
		}
		total := foldPacks(b, job, bk, packs, shardTask[sm.Assign[bi]], opts.AggGroup)
		if err := unpackAndApplyShared(b, job, bk, descBytes, shardTask[sm.Assign[bi]], total); err != nil {
			return err
		}
	}
	return b.Err()
}

// foldPacks realizes the left fold ((p0+p1)+p2)+... over the workers'
// packed buckets. With aggGroup <= 1 every add is placed on the shard
// task (flat incast of K-th of the gradient bytes per shard). With
// aggGroup > 1 the adds run on per-group aggregators — the first worker
// of each contiguous rank block — and the running prefix chains from
// aggregator to aggregator. Both placements execute the identical add
// sequence, so the results are bit-identical; only the edge pattern (and
// therefore each task's ingress) differs.
func foldPacks(b *graph.Builder, job *Job, bk *Bucket, packs []*graph.Node, shardTask string, aggGroup int) *graph.Node {
	n := len(packs)
	if aggGroup <= 1 {
		b.OnTask(shardTask)
		prefix := packs[0]
		for i := 1; i < n; i++ {
			prefix = b.Add(fmt.Sprintf("ar.r/b%d/a%d", bk.Index, i), prefix, packs[i])
		}
		return prefix
	}
	var prefix *graph.Node
	for lo := 0; lo < n; lo += aggGroup {
		hi := lo + aggGroup
		if hi > n {
			hi = n
		}
		b.OnTask(job.Workers[lo])
		i := lo
		if prefix == nil {
			prefix = packs[lo]
			i = lo + 1
		}
		for ; i < hi; i++ {
			prefix = b.Add(fmt.Sprintf("ar.r/b%d/a%d", bk.Index, i), prefix, packs[i])
		}
	}
	return prefix
}

// unpackAndApplyShared is unpackAndApply's shared-replica twin: the
// reduced bucket is sliced on the shard task and the optimizer applies to
// the single shared replica there (worker -1, like the PS plane).
func unpackAndApplyShared(b *graph.Builder, job *Job, bk *Bucket, descBytes []byte, shardTask string, whole *graph.Node) error {
	byName := make(map[string]*VarSet, len(job.Vars))
	for _, vs := range job.Vars {
		byName[vs.Name] = vs
	}
	b.OnTask(shardTask)
	for i, m := range bk.Members {
		vs, ok := byName[m.Name]
		if !ok {
			return fmt.Errorf("%w: bucket member %q has no variable set", ErrPlane, m.Name)
		}
		op, err := UnpackFromDesc(descBytes, i)
		if err != nil {
			return err
		}
		g := b.AddNode(fmt.Sprintf("ar.u/b%d/m%d", bk.Index, i), op, whole)
		job.Apply(b, -1, vs.Replicas[0], g)
	}
	return b.Err()
}
