package comm

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
)

func demoDesc(t *testing.T) BucketDesc {
	t.Helper()
	buckets, err := BuildBuckets([]GradSpec{
		{Name: "b2", Sig: f32(8)},
		{Name: "w2", Sig: f32(16, 8)},
	}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return buckets[0].Desc(4)
}

func TestBucketDescRoundTrip(t *testing.T) {
	d := demoDesc(t)
	got, err := UnmarshalBucketDesc(d.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*got, d) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", *got, d)
	}
	// Marshal is deterministic: both workers derive identical bytes.
	if !bytes.Equal(d.Marshal(), got.Marshal()) {
		t.Fatal("re-marshal differs")
	}
}

func TestUnmarshalBucketDescRejectsCorruption(t *testing.T) {
	d := demoDesc(t)
	good := d.Marshal()
	reject := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		b := mutate(append([]byte(nil), good...))
		if _, err := UnmarshalBucketDesc(b); err == nil {
			t.Fatalf("%s: corrupted descriptor accepted", name)
		}
	}
	reject("truncated", func(b []byte) []byte { return b[:len(b)-3] })
	reject("trailing", func(b []byte) []byte { return append(b, 0) })
	reject("magic", func(b []byte) []byte { b[0] ^= 0xff; return b })
	reject("version", func(b []byte) []byte { b[4] = 99; return b })
	reject("dtype", func(b []byte) []byte { b[10] = 0xee; return b })
	reject("elems-zero", func(b []byte) []byte { b[11], b[12], b[13], b[14] = 0, 0, 0, 0; return b })
	reject("empty", func([]byte) []byte { return nil })
}

func TestUnmarshalBucketDescRejectsBadLayouts(t *testing.T) {
	base := demoDesc(t)
	cases := map[string]func(d BucketDesc) BucketDesc{
		"gap": func(d BucketDesc) BucketDesc {
			d.Members = append([]Member(nil), d.Members...)
			d.Members[1].Offset++
			return d
		},
		"short-tile": func(d BucketDesc) BucketDesc {
			d.Elems++
			return d
		},
		"shape-mismatch": func(d BucketDesc) BucketDesc {
			d.Members = append([]Member(nil), d.Members...)
			d.Members[0].Shape = tensor.Shape{7}
			return d
		},
		"dup-name": func(d BucketDesc) BucketDesc {
			d.Members = append([]Member(nil), d.Members...)
			d.Members[1].Name = d.Members[0].Name
			return d
		},
		"segments-over-elems": func(d BucketDesc) BucketDesc {
			d.Segments = d.Elems + 1
			return d
		},
		"segments-zero": func(d BucketDesc) BucketDesc {
			d.Segments = 0
			return d
		},
	}
	for name, mutate := range cases {
		d := mutate(base)
		if _, err := UnmarshalBucketDesc(d.Marshal()); !errors.Is(err, ErrPlane) {
			t.Fatalf("%s: err = %v, want ErrPlane", name, err)
		}
	}
}

// Operators are only constructible from valid descriptor bytes, and their
// kernels realize the documented pack/segment/merge/unpack semantics.
func TestBucketOpsRoundTrip(t *testing.T) {
	d := demoDesc(t)
	descBytes := d.Marshal()

	b := graph.NewBuilder().OnTask("w0")
	gb2 := b.Placeholder("gb2", f32(8))
	gw2 := b.Placeholder("gw2", f32(16, 8))
	op, err := PackFromDesc(descBytes)
	if err != nil {
		t.Fatal(err)
	}
	pack := b.AddNode("pack", op, gb2, gw2)
	var segs []*graph.Node
	for s := 0; s < d.Segments; s++ {
		sop, err := SegmentFromDesc(descBytes, s)
		if err != nil {
			t.Fatal(err)
		}
		segs = append(segs, b.AddNode(nodeName("seg", s), sop, pack))
	}
	mop, err := MergeFromDesc(descBytes)
	if err != nil {
		t.Fatal(err)
	}
	merge := b.AddNode("merge", mop, segs...)
	var unpacks []*graph.Node
	for i := range d.Members {
		uop, err := UnpackFromDesc(descBytes, i)
		if err != nil {
			t.Fatal(err)
		}
		unpacks = append(unpacks, b.AddNode(nodeName("un", i), uop, merge))
	}
	if err := b.Err(); err != nil {
		t.Fatal(err)
	}
	if got := pack.Sig(); got.NumElements() != d.Elems {
		t.Fatalf("pack sig %v", got)
	}
	if got := unpacks[1].Sig(); !got.Shape.Equal(tensor.Shape{16, 8}) {
		t.Fatalf("unpack sig %v", got)
	}

	// Execute the kernels by hand: pack -> segments -> merge -> unpack must
	// reproduce the inputs byte-for-byte.
	in0 := tensor.New(tensor.Float32, 8)
	in1 := tensor.New(tensor.Float32, 16, 8)
	for i, f := range in0.Float32s() {
		_ = f
		in0.Float32s()[i] = float32(i) + 0.5
	}
	for i := range in1.Float32s() {
		in1.Float32s()[i] = -float32(i)
	}
	run := func(n *graph.Node, inputs ...*tensor.Tensor) *tensor.Tensor {
		t.Helper()
		ctx := &graph.Context{Node: n, Inputs: inputs,
			Alloc: func(dt tensor.DType, shape tensor.Shape) (*tensor.Tensor, error) {
				return tensor.New(dt, shape...), nil
			}}
		if err := n.Op().(graph.Kernel).Compute(ctx); err != nil {
			t.Fatal(err)
		}
		return ctx.Output
	}
	packed := run(pack, in0, in1)
	ranges := SegmentRanges(d.Elems, d.Segments)
	segOut := make([]*tensor.Tensor, len(segs))
	for s, sn := range segs {
		segOut[s] = run(sn, packed)
		if &segOut[s].Bytes()[0] != &packed.Bytes()[ranges[s].Lo*4] {
			t.Fatal("segment view must alias the bucket storage")
		}
	}
	merged := run(merge, segOut...)
	if !bytes.Equal(merged.Bytes(), packed.Bytes()) {
		t.Fatal("merge(segments(pack)) != pack")
	}
	out0 := run(unpacks[0], merged)
	out1 := run(unpacks[1], merged)
	if !bytes.Equal(out0.Bytes(), in0.Bytes()) || !bytes.Equal(out1.Bytes(), in1.Bytes()) {
		t.Fatal("unpack does not reproduce member payloads")
	}
	if !out1.Shape().Equal(in1.Shape()) {
		t.Fatalf("unpack shape %v, want %v", out1.Shape(), in1.Shape())
	}
}

func nodeName(prefix string, i int) string {
	return prefix + string(rune('a'+i))
}

// FuzzUnmarshalBucketDesc: arbitrary bytes must either be rejected or
// produce a descriptor whose re-marshal round-trips — and operator
// construction from accepted bytes must never panic.
func FuzzUnmarshalBucketDesc(f *testing.F) {
	d := BucketDesc{Index: 2, DType: tensor.Float32, Elems: 12, Segments: 3,
		Members: []Member{
			{Name: "a", Offset: 0, Elems: 4, Shape: tensor.Shape{4}},
			{Name: "b", Offset: 4, Elems: 8, Shape: tensor.Shape{2, 4}},
		}}
	f.Add(d.Marshal())
	f.Add([]byte{})
	f.Add([]byte{0x44, 0x42, 0x52, 0x41})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalBucketDesc(data)
		if err != nil {
			return
		}
		re, err := UnmarshalBucketDesc(got.Marshal())
		if err != nil {
			t.Fatalf("accepted descriptor does not round-trip: %v", err)
		}
		if !reflect.DeepEqual(got, re) {
			t.Fatalf("round trip changed descriptor: %+v vs %+v", got, re)
		}
		if _, err := PackFromDesc(data); err != nil {
			t.Fatalf("pack construction failed on accepted bytes: %v", err)
		}
		// Construction re-parses per operator; sample a few indices so a
		// descriptor with thousands of members stays within fuzz budget.
		for s := 0; s < re.Segments && s < 4; s++ {
			if _, err := SegmentFromDesc(data, s); err != nil {
				t.Fatalf("segment %d construction failed: %v", s, err)
			}
		}
		if _, err := MergeFromDesc(data); err != nil {
			t.Fatalf("merge construction failed: %v", err)
		}
		for i := 0; i < len(re.Members) && i < 4; i++ {
			if _, err := UnpackFromDesc(data, i); err != nil {
				t.Fatalf("unpack %d construction failed: %v", i, err)
			}
		}
	})
}
