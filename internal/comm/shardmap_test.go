package comm

import (
	"encoding/binary"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// TestBuildShardMapLeastLoaded pins the deterministic placement policy:
// buckets in index order, each to the byte-least-loaded shard, ties to the
// lowest index.
func TestBuildShardMapLeastLoaded(t *testing.T) {
	buckets := []Bucket{
		{Index: 0, DType: tensor.Float32, Elems: 100}, // 400 B -> shard 0
		{Index: 1, DType: tensor.Float32, Elems: 10},  // 40 B  -> shard 1
		{Index: 2, DType: tensor.Float32, Elems: 10},  // 40 B  -> shard 1 (80 < 400)
		{Index: 3, DType: tensor.Float32, Elems: 50},  // 200 B -> shard 1 (280 < 400)
		{Index: 4, DType: tensor.Float32, Elems: 1},   // 4 B   -> shard 1 (280 < 400)
	}
	sm, err := BuildShardMap(buckets, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 1, 1, 1}
	if !reflect.DeepEqual(sm.Assign, want) {
		t.Fatalf("assign = %v, want %v", sm.Assign, want)
	}
	// More shards than buckets: each bucket gets its own shard, the rest
	// stay empty, and nothing explodes.
	sm, err = BuildShardMap(buckets[:2], 8)
	if err != nil {
		t.Fatal(err)
	}
	if sm.Assign[0] != 0 || sm.Assign[1] != 1 {
		t.Fatalf("sparse assign = %v", sm.Assign)
	}
	if _, err := BuildShardMap(buckets, 0); err == nil {
		t.Fatal("accepted zero shards")
	}
	if _, err := BuildShardMap(nil, 2); err == nil {
		t.Fatal("accepted empty bucket layout")
	}
}

func TestShardMapRoundTrip(t *testing.T) {
	buckets := []Bucket{
		{Index: 0, DType: tensor.Float32, Elems: 7},
		{Index: 1, DType: tensor.Float32, Elems: 31},
		{Index: 2, DType: tensor.Float32, Elems: 5},
	}
	sm, err := BuildShardMap(buckets, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalShardMap(sm.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sm, got) {
		t.Fatalf("round trip changed map: %+v vs %+v", sm, got)
	}
	if err := got.Validate(buckets); err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(buckets[:2]); err == nil {
		t.Fatal("validated against a shorter layout")
	}
	buckets[1].Elems++
	if err := got.Validate(buckets); err == nil {
		t.Fatal("validated against changed bucket bytes")
	}
}

func TestUnmarshalShardMapRejectsCorruption(t *testing.T) {
	sm := &ShardMap{Shards: 2, Assign: []int{0, 1}, Bytes: []int{16, 32}}
	good := sm.Marshal()
	if _, err := UnmarshalShardMap(good); err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"truncated": good[:len(good)-3],
		"trailing":  append(append([]byte{}, good...), 0),
	}
	badMagic := append([]byte{}, good...)
	badMagic[0] ^= 0xff
	cases["magic"] = badMagic
	badVer := append([]byte{}, good...)
	binary.LittleEndian.PutUint16(badVer[4:], 9)
	cases["version"] = badVer
	zeroShards := append([]byte{}, good...)
	binary.LittleEndian.PutUint16(zeroShards[6:], 0)
	cases["zero shards"] = zeroShards
	assignOOR := append([]byte{}, good...)
	binary.LittleEndian.PutUint16(assignOOR[10:], 7) // bucket 0 -> shard 7 of 2
	cases["assignment out of range"] = assignOOR
	zeroBytes := append([]byte{}, good...)
	binary.LittleEndian.PutUint32(zeroBytes[12:], 0) // bucket 0 records 0 bytes
	cases["zero payload"] = zeroBytes
	for name, buf := range cases {
		if _, err := UnmarshalShardMap(buf); err == nil {
			t.Errorf("%s: corruption accepted", name)
		}
	}
}

// buildSharedJob wires a synthetic sharded-PS job: one shared replica per
// logical var, placed on the ps task its bucket maps to (computed with the
// same deterministic layout the plane derives).
func buildSharedJob(t *testing.T, workers int, opts Options, dims ...int) (*graph.Builder, *Job) {
	t.Helper()
	specs := make([]GradSpec, len(dims))
	for i, d := range dims {
		specs[i] = GradSpec{Name: fmt.Sprintf("v%d", i), Sig: f32(d)}
	}
	buckets, err := BuildBuckets(specs, opts.BucketBytes)
	if err != nil {
		t.Fatal(err)
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = 1
	}
	sm, err := BuildShardMap(buckets, shards)
	if err != nil {
		t.Fatal(err)
	}
	shardOf := map[string]int{}
	for bi := range buckets {
		for _, m := range buckets[bi].Members {
			shardOf[m.Name] = sm.Assign[bi]
		}
	}
	b := graph.NewBuilder()
	job := &Job{
		Apply: func(b *graph.Builder, worker int, v, g *graph.Node) *graph.Node {
			return b.ApplySGD("apply_"+v.Name(), v, g, 0.1)
		},
	}
	for w := 0; w < workers; w++ {
		job.Workers = append(job.Workers, fmt.Sprintf("worker%d", w))
	}
	for vi, d := range dims {
		name := fmt.Sprintf("v%d", vi)
		vs := &VarSet{Name: name}
		b.OnTask(fmt.Sprintf("ps%d", shardOf[name]))
		vs.Replicas = []*graph.Node{b.Variable(name, f32(d))}
		for w := 0; w < workers; w++ {
			b.OnTask(job.Workers[w])
			vs.Grads = append(vs.Grads, b.Placeholder(fmt.Sprintf("g%d/w%d", vi, w), f32(d)))
		}
		job.Vars = append(job.Vars, vs)
	}
	return b, job
}

func TestShardedPlaneWiresValidGraph(t *testing.T) {
	// Two single-var buckets (capacity 64 B, vars 40 B and 28 B) across
	// two shards: flat fold adds on the shard tasks.
	opts := Options{BucketBytes: 64, Shards: 2}
	b, job := buildSharedJob(t, 3, opts, 10, 7)
	plane, err := NewPlane(TopologyShardedPS)
	if err != nil {
		t.Fatal(err)
	}
	if err := plane.WireUpdates(b, job, opts); err != nil {
		t.Fatal(err)
	}
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, n := range g.Nodes() {
		if ph := CoalescePhase(n.Name()); ph != "" {
			counts[ph]++
		}
		// Flat mode: every fold add and every unpack sits on a ps task.
		if strings.HasPrefix(n.Name(), "ar.r/") || strings.HasPrefix(n.Name(), "ar.u/") {
			if !strings.HasPrefix(n.Task(), "ps") {
				t.Fatalf("%s placed on %s, want a shard task", n.Name(), n.Task())
			}
		}
	}
	// 2 buckets x 3 workers packs; 2 adds per bucket; 1 unpack per bucket
	// (single-member buckets).
	if counts["ar.p"] != 6 || counts["ar.r"] != 4 || counts["ar.u"] != 2 {
		t.Fatalf("phase counts %v", counts)
	}
	for _, vs := range job.Vars {
		n, err := g.Node("apply_" + vs.Name)
		if err != nil {
			t.Fatalf("missing apply for %s: %v", vs.Name, err)
		}
		if n.Task() != vs.Replicas[0].Task() {
			t.Fatalf("apply_%s on %s, variable on %s", vs.Name, n.Task(), vs.Replicas[0].Task())
		}
	}
}

func TestShardedPlaneHierarchicalPlacesAggregators(t *testing.T) {
	// 4 workers, aggregator groups of 2: the fold adds must sit on the
	// group heads (worker0, worker2), never on the shard.
	opts := Options{BucketBytes: 1 << 20, Shards: 1, AggGroup: 2}
	b, job := buildSharedJob(t, 4, opts, 10, 7)
	plane, err := NewPlane(TopologyShardedPS)
	if err != nil {
		t.Fatal(err)
	}
	if err := plane.WireUpdates(b, job, opts); err != nil {
		t.Fatal(err)
	}
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	addTasks := map[string]int{}
	for _, n := range g.Nodes() {
		if strings.HasPrefix(n.Name(), "ar.r/") {
			addTasks[n.Task()]++
		}
	}
	// One bucket, fold ((p0+p1)+p2)+p3: adds a1 on worker0, a2 and a3 on
	// worker2.
	if addTasks["worker0"] != 1 || addTasks["worker2"] != 2 || len(addTasks) != 2 {
		t.Fatalf("aggregator add placement %v", addTasks)
	}
}

func TestShardedPlaneValidation(t *testing.T) {
	// A replicated (per-worker) var set must be rejected: sharded-PS wants
	// exactly one shared replica.
	b, job := buildFakeJob(t, 2, 8)
	plane, err := NewPlane(TopologyShardedPS)
	if err != nil {
		t.Fatal(err)
	}
	if err := plane.WireUpdates(b, job, Options{Shards: 2}); err == nil {
		t.Fatal("accepted per-worker replicas")
	}

	// Variables of one bucket split across two tasks must be rejected:
	// the job was placed for two single-var buckets, but wiring with a
	// capacity that merges them puts one bucket's members on ps0 AND ps1.
	placed := Options{BucketBytes: 64, Shards: 2}
	b2, job2 := buildSharedJob(t, 2, placed, 10, 7)
	if err := plane.WireUpdates(b2, job2, Options{BucketBytes: 1 << 20, Shards: 2}); err == nil {
		t.Fatal("accepted one bucket's variables on two tasks")
	}

	// Two shards collapsing onto one task must be rejected: the job was
	// placed for a single shard (everything on ps0), but wiring asks for
	// two.
	single := Options{BucketBytes: 64, Shards: 1}
	b3, job3 := buildSharedJob(t, 2, single, 10, 7)
	if err := plane.WireUpdates(b3, job3, Options{BucketBytes: 64, Shards: 2}); err == nil {
		t.Fatal("accepted two shards hosted by one task")
	}
}

// FuzzUnmarshalShardMap: arbitrary bytes must either be rejected or
// produce a map whose re-marshal round-trips bit-for-bit.
func FuzzUnmarshalShardMap(f *testing.F) {
	sm := &ShardMap{Shards: 3, Assign: []int{0, 2, 1, 0}, Bytes: []int{4, 400, 44, 4000}}
	f.Add(sm.Marshal())
	f.Add([]byte{})
	f.Add([]byte{0x4D, 0x53, 0x52, 0x41})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalShardMap(data)
		if err != nil {
			return
		}
		re, err := UnmarshalShardMap(got.Marshal())
		if err != nil {
			t.Fatalf("accepted shard map does not round-trip: %v", err)
		}
		if !reflect.DeepEqual(got, re) {
			t.Fatalf("round trip changed map: %+v vs %+v", got, re)
		}
	})
}
