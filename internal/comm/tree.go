package comm

import (
	"fmt"

	"repro/internal/graph"
)

// treePlane is the binary-tree all-reduce for latency-bound small
// tensors: packed buckets are gathered to rank 0 along the binary tree
// (parent(k) = (k-1)/2), folded there in worker rank order — the same
// left fold as PS and ring, so partial in-tree reduction is deliberately
// NOT performed; float addition is non-associative and ((g0+g1)+(g2+g3))
// would break bit-parity — and the totals are broadcast back down the
// tree. A transfer crosses 2*ceil(log2 N) hops instead of the ring's
// 2(N-1), at the price of rank 0 ingesting (N-1) bucket payloads; that
// trade is exactly why this plane is for small tensors (the CUDA-aware
// MPI message-size split).
type treePlane struct{}

func (treePlane) Topology() Topology { return TopologyTree }

func treeParent(k int) int { return (k - 1) / 2 }

func (treePlane) WireUpdates(b *graph.Builder, job *Job, opts Options) error {
	if err := validateDP(job); err != nil {
		return err
	}
	n := len(job.Workers)
	if n == 1 {
		return applyLocal(b, job)
	}
	buckets, err := BucketsForJob(job, opts)
	if err != nil {
		return err
	}
	for bi := range buckets {
		bk := &buckets[bi]
		desc := bk.Desc(1)
		descBytes := desc.Marshal()
		packs := make([]*graph.Node, n)
		for w := 0; w < n; w++ {
			grads, err := memberGrads(job, bk, w)
			if err != nil {
				return err
			}
			op, err := PackFromDesc(descBytes)
			if err != nil {
				return err
			}
			b.OnTask(job.Workers[w])
			packs[w] = b.AddNode(fmt.Sprintf("ar.p/b%d/w%d", bk.Index, w), op, grads...)
		}
		// Gather: every rank's raw pack rides identity relays up its tree
		// path to rank 0. No in-flight reduction (see the type comment).
		contrib := make([]*graph.Node, n)
		contrib[0] = packs[0]
		for r := 1; r < n; r++ {
			cur := packs[r]
			for w := treeParent(r); ; w = treeParent(w) {
				b.OnTask(job.Workers[w])
				cur = b.Identity(fmt.Sprintf("ar.g/b%d/r%d/h%d", bk.Index, r, w), cur)
				if w == 0 {
					break
				}
			}
			contrib[r] = cur
		}
		// Root-side left fold in rank order — bit-identical to the PS fold.
		b.OnTask(job.Workers[0])
		sum := contrib[0]
		for r := 1; r < n; r++ {
			sum = b.Add(fmt.Sprintf("ar.g/b%d/sum%d", bk.Index, r), sum, contrib[r])
		}
		// Broadcast down the tree; ascending rank order guarantees the
		// parent's total exists before its children reference it.
		totals := make([]*graph.Node, n)
		totals[0] = sum
		for w := 1; w < n; w++ {
			b.OnTask(job.Workers[w])
			totals[w] = b.Identity(fmt.Sprintf("ar.b/b%d/d%d", bk.Index, w), totals[treeParent(w)])
		}
		for w := 0; w < n; w++ {
			if err := unpackAndApply(b, job, bk, descBytes, w, totals[w]); err != nil {
				return err
			}
		}
	}
	return b.Err()
}
