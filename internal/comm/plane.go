package comm

import (
	"fmt"

	"repro/internal/graph"
)

// Options configures a plane's wiring.
type Options struct {
	// BucketBytes caps a gradient bucket's payload (<=0 selects
	// DefaultBucketBytes). Only the data-parallel planes bucket.
	BucketBytes int
	// Segments is the ring's per-bucket segment count (<=0 selects one
	// segment per worker, clamped to the bucket's element count).
	Segments int
	// Shards is the sharded-PS plane's shard count (<=0 selects one
	// shard, i.e. plain PS placement of every bucket on one task).
	Shards int
	// AggGroup enables the sharded-PS plane's two-level hierarchical
	// aggregation: workers are grouped into contiguous rank blocks of
	// this size, each block left-folds on its first member (the local
	// aggregator), and the running prefix chains aggregator to
	// aggregator — the identical binary-add sequence to the flat fold.
	// <=1 disables the hierarchy (all adds placed on the shard task).
	AggGroup int
}

// VarSet is one logical trainable variable as a plane sees it: its
// replicas and the per-worker gradients, both in worker rank order. The
// PS plane holds a single shared replica (on its PS task); the
// data-parallel planes hold one replica per worker.
type VarSet struct {
	Name     string
	Replicas []*graph.Node
	Grads    []*graph.Node
}

// ApplyFn builds the optimizer-update node for one (replica, reduced
// gradient) pair. worker is the rank owning the replica, or -1 for the PS
// plane's shared variable; the builder's task is already set to the
// replica's task. Keeping the optimizer in the caller keeps planes
// optimizer-agnostic.
type ApplyFn func(b *graph.Builder, worker int, variable, grad *graph.Node) *graph.Node

// Job is everything a plane needs to wire gradient reduction and
// optimizer updates into a built forward/backward graph. Vars is listed
// in backward-flush order (see GradSpec).
type Job struct {
	Workers []string
	Vars    []*VarSet
	Apply   ApplyFn
}

// Plane wires a job's gradient exchange over one topology. All planes
// reduce with the same deterministic left fold over workers in rank
// order, so their results are bit-identical (DESIGN.md §13).
type Plane interface {
	Topology() Topology
	WireUpdates(b *graph.Builder, job *Job, opts Options) error
}

// NewPlane returns the plane for a topology.
func NewPlane(t Topology) (Plane, error) {
	switch t {
	case TopologyPS:
		return psPlane{}, nil
	case TopologyRing:
		return ringPlane{}, nil
	case TopologyTree:
		return treePlane{}, nil
	case TopologyShardedPS:
		return shardedPlane{}, nil
	default:
		return nil, fmt.Errorf("%w: no plane for topology %d", ErrPlane, int(t))
	}
}

// BucketsForJob derives the job's bucket layout: one GradSpec per VarSet
// in the job's (backward) order, validated against every worker's
// gradient signature.
func BucketsForJob(job *Job, opts Options) ([]Bucket, error) {
	specs := make([]GradSpec, 0, len(job.Vars))
	for _, vs := range job.Vars {
		if len(vs.Grads) != len(job.Workers) {
			return nil, fmt.Errorf("%w: var %q has %d gradients for %d workers",
				ErrPlane, vs.Name, len(vs.Grads), len(job.Workers))
		}
		sig := vs.Grads[0].Sig()
		for w, g := range vs.Grads {
			if g == nil {
				return nil, fmt.Errorf("%w: var %q missing worker %d gradient", ErrPlane, vs.Name, w)
			}
			gs := g.Sig()
			if !gs.Static || gs.DType != sig.DType || gs.NumElements() != sig.NumElements() {
				return nil, fmt.Errorf("%w: var %q gradient signatures diverge across workers (%v vs %v)",
					ErrPlane, vs.Name, sig, gs)
			}
		}
		specs = append(specs, GradSpec{Name: vs.Name, Sig: sig})
	}
	return BuildBuckets(specs, opts.BucketBytes)
}

// validateDP checks the data-parallel invariants shared by ring and tree.
func validateDP(job *Job) error {
	if job == nil || job.Apply == nil || len(job.Workers) < 1 {
		return fmt.Errorf("%w: job needs workers and an apply function", ErrPlane)
	}
	if len(job.Vars) == 0 {
		return fmt.Errorf("%w: job has no variables", ErrPlane)
	}
	for _, vs := range job.Vars {
		if len(vs.Replicas) != len(job.Workers) {
			return fmt.Errorf("%w: var %q has %d replicas for %d workers",
				ErrPlane, vs.Name, len(vs.Replicas), len(job.Workers))
		}
		if len(vs.Grads) != len(job.Workers) {
			return fmt.Errorf("%w: var %q has %d gradients for %d workers",
				ErrPlane, vs.Name, len(vs.Grads), len(job.Workers))
		}
	}
	return nil
}

// applyLocal handles the degenerate single-worker case: the "reduced"
// gradient is the worker's own, applied in place. Shared by ring and
// tree.
func applyLocal(b *graph.Builder, job *Job) error {
	for _, vs := range job.Vars {
		b.OnTask(job.Workers[0])
		job.Apply(b, 0, vs.Replicas[0], vs.Grads[0])
	}
	return b.Err()
}

// memberGrads resolves a bucket's member gradients for one worker, in
// member order.
func memberGrads(job *Job, bk *Bucket, worker int) ([]*graph.Node, error) {
	byName := make(map[string]*VarSet, len(job.Vars))
	for _, vs := range job.Vars {
		byName[vs.Name] = vs
	}
	out := make([]*graph.Node, len(bk.Members))
	for i, m := range bk.Members {
		vs, ok := byName[m.Name]
		if !ok {
			return nil, fmt.Errorf("%w: bucket member %q has no variable set", ErrPlane, m.Name)
		}
		out[i] = vs.Grads[worker]
	}
	return out, nil
}

// unpackAndApply slices each member gradient out of the reduced bucket on
// one worker and applies the optimizer to that worker's replica.
func unpackAndApply(b *graph.Builder, job *Job, bk *Bucket, descBytes []byte, worker int, whole *graph.Node) error {
	byName := make(map[string]*VarSet, len(job.Vars))
	for _, vs := range job.Vars {
		byName[vs.Name] = vs
	}
	b.OnTask(job.Workers[worker])
	for i, m := range bk.Members {
		vs, ok := byName[m.Name]
		if !ok {
			return fmt.Errorf("%w: bucket member %q has no variable set", ErrPlane, m.Name)
		}
		op, err := UnpackFromDesc(descBytes, i)
		if err != nil {
			return err
		}
		g := b.AddNode(fmt.Sprintf("ar.u/b%d/w%d/m%d", bk.Index, worker, i), op, whole)
		job.Apply(b, worker, vs.Replicas[worker], g)
	}
	return b.Err()
}
