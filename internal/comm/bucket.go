package comm

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// DefaultBucketBytes is the gradient bucket capacity when the caller does
// not configure one (DDP-style bucketing; small because the repo's models
// are small — real deployments would use tens of megabytes).
const DefaultBucketBytes = 64 << 10

// GradSpec names one gradient and its static signature, in flush order:
// callers list gradients in the order backward produces them (outputs
// first), so earlier buckets fill — and their all-reduce launches — while
// the remaining backward compute is still running.
type GradSpec struct {
	Name string
	Sig  graph.Sig
}

// Member is one gradient's placement inside a bucket: a contiguous
// [Offset, Offset+Elems) element range plus the shape it unpacks to.
type Member struct {
	Name   string
	Offset int
	Elems  int
	Shape  tensor.Shape
}

// Bucket is a fixed-capacity, same-dtype gradient bucket. Index is the
// bucket's creation order, which follows the first member's backward
// position.
type Bucket struct {
	Index   int
	DType   tensor.DType
	Elems   int
	Members []Member
}

// ByteSize returns the bucket payload size.
func (b *Bucket) ByteSize() int { return b.Elems * b.DType.Size() }

// BuildBuckets packs gradients into same-dtype buckets of at most
// bucketBytes (<=0 selects DefaultBucketBytes), preserving the given
// backward order within each dtype. Rules:
//
//   - a bucket never mixes dtypes (one open bucket per dtype at a time);
//   - a gradient larger than the capacity gets a bucket of its own (the
//     first member is always admitted);
//   - the final bucket of each dtype is emitted even when partially
//     filled — a straggler gradient must flush on backward completion,
//     never wait for a fill that cannot happen (the 1-gradient model
//     regression in internal/distributed covers this).
func BuildBuckets(specs []GradSpec, bucketBytes int) ([]Bucket, error) {
	if bucketBytes <= 0 {
		bucketBytes = DefaultBucketBytes
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("%w: no gradients to bucket", ErrPlane)
	}
	var out []Bucket
	open := make(map[tensor.DType]int) // dtype -> index into out
	seen := make(map[string]bool, len(specs))
	for _, s := range specs {
		if s.Name == "" {
			return nil, fmt.Errorf("%w: unnamed gradient", ErrPlane)
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("%w: duplicate gradient %q", ErrPlane, s.Name)
		}
		seen[s.Name] = true
		if !s.Sig.Static {
			return nil, fmt.Errorf("%w: gradient %q has a dynamic shape; bucketing needs static layouts", ErrPlane, s.Name)
		}
		elems := s.Sig.NumElements()
		if elems <= 0 {
			return nil, fmt.Errorf("%w: gradient %q has no elements", ErrPlane, s.Name)
		}
		size := elems * s.Sig.DType.Size()
		idx, ok := open[s.Sig.DType]
		if ok && out[idx].ByteSize()+size > bucketBytes {
			ok = false // close the full bucket; it keeps its place in out
		}
		if !ok {
			out = append(out, Bucket{Index: len(out), DType: s.Sig.DType})
			idx = len(out) - 1
			open[s.Sig.DType] = idx
		}
		b := &out[idx]
		b.Members = append(b.Members, Member{
			Name:   s.Name,
			Offset: b.Elems,
			Elems:  elems,
			Shape:  s.Sig.Shape.Clone(),
		})
		b.Elems += elems
	}
	return out, nil
}

// SegRange is one segment's element range within a bucket.
type SegRange struct {
	Lo, Elems int
}

// SegmentRanges splits elems into at most segments contiguous near-equal
// ranges (the first elems%n ranges get one extra element). The count is
// clamped to [1, elems], so tiny buckets degrade to fewer, never empty,
// segments.
func SegmentRanges(elems, segments int) []SegRange {
	if segments < 1 {
		segments = 1
	}
	if segments > elems {
		segments = elems
	}
	base, rem := elems/segments, elems%segments
	out := make([]SegRange, segments)
	lo := 0
	for i := range out {
		n := base
		if i < rem {
			n++
		}
		out[i] = SegRange{Lo: lo, Elems: n}
		lo += n
	}
	return out
}
