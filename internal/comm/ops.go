package comm

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// Collective graph operators. They are ordinary graph.Op/graph.Kernel
// implementations, so the executor, the allocation-site tracing, and the
// profiler treat them like any compute node; all are built from a
// *validated* BucketDesc (the operators trust its invariants — unmarshal
// is the only gate, which is what FuzzUnmarshalBucketDesc hammers).
//
// None of the operators is differentiable: planes wire them strictly
// downstream of the gradient nodes.

// --- BucketPack: concatenate member gradients into one flat bucket ---

type packOp struct{ desc *BucketDesc }

// PackFromDesc builds the bucket-assembly operator from descriptor bytes.
// Inputs are the member gradients in descriptor order; the output is the
// flat [elems] bucket tensor.
func PackFromDesc(descBytes []byte) (graph.Op, error) {
	d, err := UnmarshalBucketDesc(descBytes)
	if err != nil {
		return nil, err
	}
	return &packOp{desc: d}, nil
}

func (op *packOp) Name() string { return "BucketPack" }

func (op *packOp) InferSig(in []graph.Sig) (graph.Sig, error) {
	if len(in) != len(op.desc.Members) {
		return graph.Sig{}, fmt.Errorf("%w: BucketPack: %d inputs, descriptor has %d members",
			ErrPlane, len(in), len(op.desc.Members))
	}
	for i, m := range op.desc.Members {
		if !in[i].Static || in[i].DType != op.desc.DType || in[i].NumElements() != m.Elems {
			return graph.Sig{}, fmt.Errorf("%w: BucketPack member %q wants static %v[%d], got %v",
				ErrPlane, m.Name, op.desc.DType, m.Elems, in[i])
		}
	}
	return graph.Static(op.desc.DType, op.desc.Elems), nil
}

func (op *packOp) Compute(ctx *graph.Context) error {
	out, err := ctx.AllocOutput()
	if err != nil {
		return err
	}
	es := op.desc.DType.Size()
	for i, m := range op.desc.Members {
		copy(out.Bytes()[m.Offset*es:(m.Offset+m.Elems)*es], ctx.Inputs[i].Bytes())
	}
	ctx.Output = out
	return nil
}

// --- BucketSegment: a zero-copy view of one segment range ---

type segmentOp struct {
	desc *BucketDesc
	rg   SegRange
}

// SegmentFromDesc builds the operator extracting segment seg (of the
// descriptor's segment count) from a bucket tensor. The output aliases
// the input's storage — no copy.
func SegmentFromDesc(descBytes []byte, seg int) (graph.Op, error) {
	d, err := UnmarshalBucketDesc(descBytes)
	if err != nil {
		return nil, err
	}
	ranges := SegmentRanges(d.Elems, d.Segments)
	if seg < 0 || seg >= len(ranges) {
		return nil, fmt.Errorf("%w: segment %d of %d", ErrPlane, seg, len(ranges))
	}
	return &segmentOp{desc: d, rg: ranges[seg]}, nil
}

func (op *segmentOp) Name() string { return "BucketSegment" }

func (op *segmentOp) InferSig(in []graph.Sig) (graph.Sig, error) {
	if err := wantBucketInput("BucketSegment", in, op.desc); err != nil {
		return graph.Sig{}, err
	}
	return graph.Static(op.desc.DType, op.rg.Elems), nil
}

func (op *segmentOp) Compute(ctx *graph.Context) error {
	es := op.desc.DType.Size()
	view := ctx.Inputs[0].Bytes()[op.rg.Lo*es : (op.rg.Lo+op.rg.Elems)*es]
	t, err := tensor.FromBytes(op.desc.DType, tensor.Shape{op.rg.Elems}, view)
	if err != nil {
		return err
	}
	ctx.Output = t
	return nil
}

// --- BucketMerge: re-concatenate reduced segments into a full bucket ---

type mergeOp struct{ desc *BucketDesc }

// MergeFromDesc builds the operator concatenating the descriptor's
// segments (inputs in segment order) back into the flat bucket.
func MergeFromDesc(descBytes []byte) (graph.Op, error) {
	d, err := UnmarshalBucketDesc(descBytes)
	if err != nil {
		return nil, err
	}
	return &mergeOp{desc: d}, nil
}

func (op *mergeOp) Name() string { return "BucketMerge" }

func (op *mergeOp) InferSig(in []graph.Sig) (graph.Sig, error) {
	ranges := SegmentRanges(op.desc.Elems, op.desc.Segments)
	if len(in) != len(ranges) {
		return graph.Sig{}, fmt.Errorf("%w: BucketMerge: %d inputs, descriptor has %d segments",
			ErrPlane, len(in), len(ranges))
	}
	for i, rg := range ranges {
		if !in[i].Static || in[i].DType != op.desc.DType || in[i].NumElements() != rg.Elems {
			return graph.Sig{}, fmt.Errorf("%w: BucketMerge segment %d wants static %v[%d], got %v",
				ErrPlane, i, op.desc.DType, rg.Elems, in[i])
		}
	}
	return graph.Static(op.desc.DType, op.desc.Elems), nil
}

func (op *mergeOp) Compute(ctx *graph.Context) error {
	out, err := ctx.AllocOutput()
	if err != nil {
		return err
	}
	es := op.desc.DType.Size()
	for i, rg := range SegmentRanges(op.desc.Elems, op.desc.Segments) {
		copy(out.Bytes()[rg.Lo*es:(rg.Lo+rg.Elems)*es], ctx.Inputs[i].Bytes())
	}
	ctx.Output = out
	return nil
}

// --- BucketUnpack: a zero-copy member view shaped back to its variable ---

type unpackOp struct {
	desc *BucketDesc
	idx  int
}

// UnpackFromDesc builds the operator slicing member idx out of a reduced
// bucket, reshaped to the member's variable shape. The output aliases the
// bucket storage.
func UnpackFromDesc(descBytes []byte, idx int) (graph.Op, error) {
	d, err := UnmarshalBucketDesc(descBytes)
	if err != nil {
		return nil, err
	}
	if idx < 0 || idx >= len(d.Members) {
		return nil, fmt.Errorf("%w: unpack member %d of %d", ErrPlane, idx, len(d.Members))
	}
	return &unpackOp{desc: d, idx: idx}, nil
}

func (op *unpackOp) Name() string { return "BucketUnpack" }

func (op *unpackOp) InferSig(in []graph.Sig) (graph.Sig, error) {
	if err := wantBucketInput("BucketUnpack", in, op.desc); err != nil {
		return graph.Sig{}, err
	}
	m := op.desc.Members[op.idx]
	return graph.Sig{DType: op.desc.DType, Shape: m.Shape.Clone(), Static: true}, nil
}

func (op *unpackOp) Compute(ctx *graph.Context) error {
	m := op.desc.Members[op.idx]
	es := op.desc.DType.Size()
	view := ctx.Inputs[0].Bytes()[m.Offset*es : (m.Offset+m.Elems)*es]
	t, err := tensor.FromBytes(op.desc.DType, m.Shape, view)
	if err != nil {
		return err
	}
	ctx.Output = t
	return nil
}

func wantBucketInput(name string, in []graph.Sig, d *BucketDesc) error {
	if len(in) != 1 {
		return fmt.Errorf("%w: %s: %d inputs, want 1", ErrPlane, name, len(in))
	}
	if !in[0].Static || in[0].DType != d.DType || in[0].NumElements() != d.Elems {
		return fmt.Errorf("%w: %s wants the static %v[%d] bucket, got %v",
			ErrPlane, name, d.DType, d.Elems, in[0])
	}
	return nil
}
