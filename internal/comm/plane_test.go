package comm

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// buildFakeJob wires a synthetic data-parallel job: per worker, one
// replica variable and one "gradient" placeholder per logical var.
func buildFakeJob(t *testing.T, workers int, dims ...int) (*graph.Builder, *Job) {
	t.Helper()
	b := graph.NewBuilder()
	job := &Job{
		Apply: func(b *graph.Builder, worker int, v, g *graph.Node) *graph.Node {
			return b.ApplySGD("apply_"+v.Name(), v, g, 0.1)
		},
	}
	for w := 0; w < workers; w++ {
		job.Workers = append(job.Workers, fmt.Sprintf("worker%d", w))
	}
	for vi, d := range dims {
		vs := &VarSet{Name: fmt.Sprintf("v%d", vi)}
		for w := 0; w < workers; w++ {
			b.OnTask(job.Workers[w])
			vs.Replicas = append(vs.Replicas,
				b.Variable(fmt.Sprintf("v%d/w%d", vi, w), f32(d)))
			vs.Grads = append(vs.Grads,
				b.Placeholder(fmt.Sprintf("g%d/w%d", vi, w), f32(d)))
		}
		job.Vars = append(job.Vars, vs)
	}
	return b, job
}

func TestRingPlaneWiresValidGraph(t *testing.T) {
	b, job := buildFakeJob(t, 3, 10, 7)
	plane, err := NewPlane(TopologyRing)
	if err != nil {
		t.Fatal(err)
	}
	if err := plane.WireUpdates(b, job, Options{BucketBytes: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// The reduce chain's partial at rank r must sit on worker r, and the
	// broadcast forward for rank w on worker w.
	counts := map[string]int{}
	for _, n := range g.Nodes() {
		if ph := CoalescePhase(n.Name()); ph != "" {
			counts[ph]++
		}
		if strings.HasPrefix(n.Name(), "ar.r/") && strings.Contains(n.Name(), "/p") {
			rank := n.Name()[len(n.Name())-1:]
			if n.Task() != "worker"+rank {
				t.Fatalf("partial %s placed on %s", n.Name(), n.Task())
			}
		}
	}
	// One bucket, 3 segments (default = worker count): 3 packs, 3 rank-0
	// head segments, 6 locals, 6 adds, 6 forwards, 3 merges, 6 unpacks.
	if counts["ar.p"] != 3 || counts["ar.b"] != 6 {
		t.Fatalf("phase counts %v", counts)
	}
	for _, vs := range job.Vars {
		for w := range job.Workers {
			if _, err := g.Node(fmt.Sprintf("apply_%s/w%d", vs.Name, w)); err != nil {
				t.Fatalf("missing apply for %s worker %d: %v", vs.Name, w, err)
			}
		}
	}
}

func TestTreePlaneWiresValidGraph(t *testing.T) {
	b, job := buildFakeJob(t, 5, 9)
	plane, err := NewPlane(TopologyTree)
	if err != nil {
		t.Fatal(err)
	}
	if err := plane.WireUpdates(b, job, Options{}); err != nil {
		t.Fatal(err)
	}
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// Rank 4's pack relays through its tree path 4 -> 1 -> 0.
	h1, err := g.Node("ar.g/b0/r4/h1")
	if err != nil {
		t.Fatal(err)
	}
	if h1.Task() != "worker1" {
		t.Fatalf("relay hop on %s, want worker1", h1.Task())
	}
	h0, err := g.Node("ar.g/b0/r4/h0")
	if err != nil {
		t.Fatal(err)
	}
	if h0.Inputs()[0] != h1 {
		t.Fatal("root hop must chain off the intermediate relay")
	}
	// The root fold is a strict left fold in rank order.
	sum4, err := g.Node("ar.g/b0/sum4")
	if err != nil {
		t.Fatal(err)
	}
	if sum4.Inputs()[1] != h0 {
		t.Fatal("fold operand order broken: rank 4 contribution must be the second operand of the last add")
	}
}

func TestPSPlaneReproducesHistoricalNames(t *testing.T) {
	b := graph.NewBuilder()
	b.OnTask("ps0")
	v := b.Variable("w1", f32(6))
	var grads []*graph.Node
	for w := 0; w < 3; w++ {
		b.OnTask(fmt.Sprintf("worker%d", w))
		grads = append(grads, b.Placeholder(fmt.Sprintf("g%d", w), f32(6)))
	}
	job := &Job{
		Workers: []string{"worker0", "worker1", "worker2"},
		Vars:    []*VarSet{{Name: "w1", Replicas: []*graph.Node{v}, Grads: grads}},
		Apply: func(b *graph.Builder, worker int, v, g *graph.Node) *graph.Node {
			if worker != -1 {
				t.Fatalf("PS apply got worker %d, want -1", worker)
			}
			return b.ApplySGD("apply_"+v.Name(), v, g, 0.1)
		},
	}
	plane, _ := NewPlane(TopologyPS)
	if err := plane.WireUpdates(b, job, Options{}); err != nil {
		t.Fatal(err)
	}
	g, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"gsum_w1_1", "gsum_w1_2", "apply_w1"} {
		n, err := g.Node(name)
		if err != nil {
			t.Fatal(err)
		}
		if name != "apply_w1" && n.Task() != "ps0" {
			t.Fatalf("%s on %s, want ps0", name, n.Task())
		}
	}
}

func TestSingleWorkerDegeneratesToLocalApply(t *testing.T) {
	for _, topo := range []Topology{TopologyRing, TopologyTree} {
		b, job := buildFakeJob(t, 1, 5)
		plane, _ := NewPlane(topo)
		if err := plane.WireUpdates(b, job, Options{}); err != nil {
			t.Fatal(err)
		}
		g, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range g.Nodes() {
			if strings.HasPrefix(n.Name(), arPrefix) {
				t.Fatalf("%s: single worker must not build collective nodes (%s)", topo, n.Name())
			}
		}
		if _, err := g.Node("apply_v0/w0"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPlaneValidation(t *testing.T) {
	b, job := buildFakeJob(t, 2, 4)
	job.Vars[0].Grads = job.Vars[0].Grads[:1] // drop a worker's gradient
	for _, topo := range []Topology{TopologyRing, TopologyTree} {
		plane, _ := NewPlane(topo)
		if err := plane.WireUpdates(b, job, Options{}); err == nil {
			t.Fatalf("%s: missing gradient accepted", topo)
		}
	}
	_ = tensor.Float32
}
