package comm

import (
	"fmt"

	"repro/internal/graph"
)

// ringPlane is the bucketed, segmented ring all-reduce.
//
// Classic ring reduce-scatter starts each segment's accumulation at a
// different rank, which changes float summation order per segment and
// breaks bit-parity with the PS fold. This plane instead pipelines the
// *same* left fold around the ring:
//
//	reduce   rank 0 ──seg──▶ rank 1 ──▶ ... ──▶ rank N-1
//	         each rank adds its local segment to the incoming prefix
//	         (Add(prefix, local) — identical operand order to the PS
//	         fold), so the totals materializing on rank N-1 are
//	         bit-identical to ((g0+g1)+g2)+...
//	bcast    rank N-1 ──▶ rank 0 ──▶ rank 1 ──▶ ... ──▶ rank N-2
//	         identity forwards continuing around the ring.
//
// Every link carries each segment exactly once per phase, so per-step
// link traffic is ~2x the bucket bytes regardless of N (the bandwidth
// property that beats the PS incast), and the segments pipeline through
// the dataflow scheduler: while segment s is being added at rank k,
// segment s+1 is in flight on the k-1 link. Buckets pipeline the same way
// against the remaining backward compute.
type ringPlane struct{}

func (ringPlane) Topology() Topology { return TopologyRing }

func (ringPlane) WireUpdates(b *graph.Builder, job *Job, opts Options) error {
	if err := validateDP(job); err != nil {
		return err
	}
	n := len(job.Workers)
	if n == 1 {
		return applyLocal(b, job)
	}
	buckets, err := BucketsForJob(job, opts)
	if err != nil {
		return err
	}
	segments := opts.Segments
	if segments <= 0 {
		segments = n
	}
	for bi := range buckets {
		bk := &buckets[bi]
		desc := bk.Desc(segments)
		descBytes := desc.Marshal()
		packs := make([]*graph.Node, n)
		for w := 0; w < n; w++ {
			grads, err := memberGrads(job, bk, w)
			if err != nil {
				return err
			}
			op, err := PackFromDesc(descBytes)
			if err != nil {
				return err
			}
			b.OnTask(job.Workers[w])
			packs[w] = b.AddNode(fmt.Sprintf("ar.p/b%d/w%d", bk.Index, w), op, grads...)
		}
		// segTotals[w] collects worker w's reduced segments in segment order.
		segTotals := make([][]*graph.Node, n)
		for s := 0; s < desc.Segments; s++ {
			segOf := func(w int, phase string) (*graph.Node, error) {
				op, err := SegmentFromDesc(descBytes, s)
				if err != nil {
					return nil, err
				}
				b.OnTask(job.Workers[w])
				return b.AddNode(fmt.Sprintf("%s/b%d/s%d/g%d", phase, bk.Index, s, w), op, packs[w]), nil
			}
			// Reduce: the prefix sum travels rank 0 -> 1 -> ... -> N-1.
			// Rank 0's own segment is the chain head and crosses to rank 1,
			// so it carries the reduce phase tag.
			part, err := segOf(0, "ar.r")
			if err != nil {
				return err
			}
			for r := 1; r < n; r++ {
				local, err := segOf(r, "ar.l")
				if err != nil {
					return err
				}
				b.OnTask(job.Workers[r])
				part = b.Add(fmt.Sprintf("ar.r/b%d/s%d/p%d", bk.Index, s, r), part, local)
			}
			segTotals[n-1] = append(segTotals[n-1], part)
			// Broadcast: continue around the ring, N-1 -> 0 -> ... -> N-2.
			cur := part
			for i := 1; i < n; i++ {
				w := (n - 1 + i) % n
				b.OnTask(job.Workers[w])
				cur = b.Identity(fmt.Sprintf("ar.b/b%d/s%d/f%d", bk.Index, s, w), cur)
				segTotals[w] = append(segTotals[w], cur)
			}
		}
		for w := 0; w < n; w++ {
			b.OnTask(job.Workers[w])
			whole := segTotals[w][0]
			if desc.Segments > 1 {
				op, err := MergeFromDesc(descBytes)
				if err != nil {
					return err
				}
				whole = b.AddNode(fmt.Sprintf("ar.m/b%d/w%d", bk.Index, w), op, segTotals[w]...)
			}
			if err := unpackAndApply(b, job, bk, descBytes, w, whole); err != nil {
				return err
			}
		}
	}
	return b.Err()
}
