package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/rdma"
)

// Ring transport: RDMA streaming through a fixed ring buffer of receive
// slots, the architecture TensorFlow r1.x uses to wrap RDMA under gRPC and
// the one FaRM's messaging primitive popularized. The paper's §2.2 spells
// out its structural costs, all present here:
//
//   - the receiver owns a fixed-size in-library ring, so arbitrary-size
//     messages must be fragmented by the sender and reassembled by the
//     receiver;
//   - every inbound fragment is copied out of the ring into a message
//     buffer before delivery (the in-library copy RPC cannot avoid);
//   - flow control needs credit writes from receiver back to sender.
//
// Wire layout per slot: [fragLen u32 | last u32 | payload ... | flag u64].
// Fragments of one connection travel over a single QP, so they arrive in
// order and a "last" bit suffices to delimit messages. After consuming a
// slot the receiver clears its flag and one-sided-writes its consumed count
// into the sender's credit word; the sender stalls when the ring is full.

const (
	ringSlotHeader = 8
	// DefaultRingSlots and DefaultRingSlotSize match the 4 MB total ring
	// TensorFlow's RDMA channel defaults to.
	DefaultRingSlots    = 64
	DefaultRingSlotSize = 64 << 10
)

// DefaultSendTimeout bounds how long a Send waits for ring credit plus how
// long its fragment writes may retry transient fabric faults.
const DefaultSendTimeout = 10 * time.Second

// RingConfig parameterizes a ring connection's two directions.
type RingConfig struct {
	Slots    int // slots per direction
	SlotSize int // bytes per slot, including header and flag word
	// SendTimeout is the per-fragment deadline: credit wait plus write
	// retries. Zero selects DefaultSendTimeout.
	SendTimeout time.Duration
	// OnSend, if non-nil, observes each completed Send as (message bytes,
	// wall duration including fragmentation, credit waits, and retries) —
	// the observability hook for RPC-transport latency histograms.
	OnSend func(bytes int, d time.Duration)
}

func (c *RingConfig) setDefaults() {
	if c.Slots == 0 {
		c.Slots = DefaultRingSlots
	}
	if c.SlotSize == 0 {
		c.SlotSize = DefaultRingSlotSize
	}
	if c.SendTimeout <= 0 {
		c.SendTimeout = DefaultSendTimeout
	}
}

// slotCap is the payload capacity of one slot.
func (c RingConfig) slotCap() int { return c.SlotSize - ringSlotHeader - rdma.FlagWordSize }

// ringHalf is the receive state of one direction: the local ring the peer
// writes into, plus the credit word we bump on the peer after consuming.
type ringHalf struct {
	cfg     RingConfig
	ring    *rdma.MemRegion
	ch      *rdma.Channel // channel back to the peer, for credit writes
	credit  rdma.RemoteRegion
	stage   *rdma.MemRegion // staging word for credit writes
	nextIdx uint64          // next slot to consume
}

// ringPeer is the send state of one direction: the remote ring we write
// into plus the local credit word the peer bumps.
type ringPeer struct {
	cfg      RingConfig
	ring     rdma.RemoteRegion
	ch       *rdma.Channel
	creditMR *rdma.MemRegion // peer writes consumed count here
	stage    *rdma.MemRegion // staging area for slot writes
	sent     uint64
}

// ringConn is a duplex Conn over two rings.
type ringConn struct {
	half  *ringHalf
	peer  *ringPeer
	recvQ *msgQueue

	sendMu sync.Mutex

	closeOnce sync.Once
	done      chan struct{}
}

// handshake payload: cfg + recv-ring descriptor + credit descriptor.
type ringHello struct {
	Slots    uint32
	SlotSize uint32
	Ring     rdma.RemoteRegion
	Credit   rdma.RemoteRegion
}

func (h ringHello) marshal() []byte {
	buf := make([]byte, 0, 8+64)
	buf = binary.LittleEndian.AppendUint32(buf, h.Slots)
	buf = binary.LittleEndian.AppendUint32(buf, h.SlotSize)
	ring := h.Ring.Marshal()
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ring)))
	buf = append(buf, ring...)
	return append(buf, h.Credit.Marshal()...)
}

func unmarshalRingHello(buf []byte) (ringHello, error) {
	var h ringHello
	if len(buf) < 12 {
		return h, fmt.Errorf("transport: short ring hello (%d bytes)", len(buf))
	}
	h.Slots = binary.LittleEndian.Uint32(buf)
	h.SlotSize = binary.LittleEndian.Uint32(buf[4:])
	n := int(binary.LittleEndian.Uint32(buf[8:]))
	if len(buf) < 12+n {
		return h, fmt.Errorf("transport: truncated ring hello")
	}
	ring, err := rdma.UnmarshalRemoteRegion(buf[12 : 12+n])
	if err != nil {
		return h, err
	}
	credit, err := rdma.UnmarshalRemoteRegion(buf[12+n:])
	if err != nil {
		return h, err
	}
	h.Ring, h.Credit = ring, credit
	return h, nil
}

// newRingHalf allocates the local receive ring and credit staging.
func newRingHalf(dev *rdma.Device, cfg RingConfig) (*ringHalf, *rdma.MemRegion, error) {
	ring, err := dev.AllocateMemRegion(cfg.Slots * cfg.SlotSize)
	if err != nil {
		return nil, nil, err
	}
	stage, err := dev.AllocateMemRegion(rdma.FlagWordSize)
	if err != nil {
		return nil, nil, err
	}
	// creditMR is owned by the *sending* half of the peer; we allocate the
	// word the peer will bump for the messages we send, so it is returned
	// separately for the hello.
	creditMR, err := dev.AllocateMemRegion(rdma.FlagWordSize)
	if err != nil {
		return nil, nil, err
	}
	return &ringHalf{cfg: cfg, ring: ring, stage: stage}, creditMR, nil
}

// RingListenerService is the RPC method name the ring transport registers
// on its device.
const RingListenerService = "transport.ring.connect"

// RingNetwork returns the substrate descriptor for ring connections made
// from the given local device. Addresses are fabric endpoints.
func RingNetwork(dev *rdma.Device, cfg RingConfig) Network {
	cfg.setDefaults()
	return Network{
		Name: "rdma-ring",
		Listen: func(addr string) (Listener, error) {
			return listenRing(dev, cfg)
		},
		Dial: func(addr string) (Conn, error) {
			return dialRing(dev, addr, cfg)
		},
	}
}

type ringListener struct {
	dev    *rdma.Device
	accept chan Conn
	once   sync.Once
	done   chan struct{}
}

func listenRing(dev *rdma.Device, cfg RingConfig) (Listener, error) {
	l := &ringListener{dev: dev, accept: make(chan Conn, 16), done: make(chan struct{})}
	dev.RegisterRPC(RingListenerService, func(from string, req []byte) ([]byte, error) {
		clientHello, err := unmarshalRingHello(req)
		if err != nil {
			return nil, err
		}
		ch, err := dev.GetChannel(from, 0)
		if err != nil {
			return nil, err
		}
		conn, hello, err := buildRingConn(dev, ch, cfg, clientHello)
		if err != nil {
			return nil, err
		}
		select {
		case l.accept <- conn:
			return hello.marshal(), nil
		case <-l.done:
			conn.Close()
			return nil, ErrClosed
		}
	})
	return l, nil
}

func (l *ringListener) Accept() (Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *ringListener) Addr() string { return l.dev.Endpoint() }

func (l *ringListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func dialRing(dev *rdma.Device, addr string, cfg RingConfig) (Conn, error) {
	ch, err := dev.GetChannel(addr, 0)
	if err != nil {
		return nil, err
	}
	half, creditMR, err := newRingHalf(dev, cfg)
	if err != nil {
		return nil, err
	}
	hello := ringHello{
		Slots:    uint32(cfg.Slots),
		SlotSize: uint32(cfg.SlotSize),
		Ring:     half.ring.Descriptor(),
		Credit:   creditMR.Descriptor(),
	}
	// The connect RPC is idempotent on transient failure only until the
	// server builds its half, but a dropped request never reached it, and a
	// dropped response surfaces as ErrRPCTimeout after the server side
	// already queued the conn — acceptable for an accept loop. Retry within
	// the send deadline so connection setup survives a lossy fabric.
	resp, err := ch.CallRetry(RingListenerService, hello.marshal(),
		rdma.TransferOpts{Deadline: cfg.SendTimeout})
	if err != nil {
		return nil, fmt.Errorf("transport: ring connect to %s: %w", addr, err)
	}
	serverHello, err := unmarshalRingHello(resp)
	if err != nil {
		return nil, err
	}
	return assembleRingConn(dev, ch, cfg, half, creditMR, serverHello)
}

// buildRingConn is the accept-side constructor: allocate our half, wire the
// peer state from the client's hello, and return our hello.
func buildRingConn(dev *rdma.Device, ch *rdma.Channel, cfg RingConfig, peerHello ringHello) (*ringConn, ringHello, error) {
	half, creditMR, err := newRingHalf(dev, cfg)
	if err != nil {
		return nil, ringHello{}, err
	}
	hello := ringHello{
		Slots:    uint32(cfg.Slots),
		SlotSize: uint32(cfg.SlotSize),
		Ring:     half.ring.Descriptor(),
		Credit:   creditMR.Descriptor(),
	}
	conn, err := assembleRingConn(dev, ch, cfg, half, creditMR, peerHello)
	if err != nil {
		return nil, ringHello{}, err
	}
	return conn, hello, nil
}

func assembleRingConn(dev *rdma.Device, ch *rdma.Channel, cfg RingConfig,
	half *ringHalf, creditMR *rdma.MemRegion, peerHello ringHello) (*ringConn, error) {
	if int(peerHello.Slots) != cfg.Slots || int(peerHello.SlotSize) != cfg.SlotSize {
		return nil, fmt.Errorf("transport: ring config mismatch: local %d×%d, peer %d×%d",
			cfg.Slots, cfg.SlotSize, peerHello.Slots, peerHello.SlotSize)
	}
	stage, err := dev.AllocateMemRegion(cfg.SlotSize)
	if err != nil {
		return nil, err
	}
	half.ch = ch
	half.credit = peerHello.Credit
	peer := &ringPeer{
		cfg:      cfg,
		ring:     peerHello.Ring,
		ch:       ch,
		creditMR: creditMR,
		stage:    stage,
	}
	conn := &ringConn{
		half:  half,
		peer:  peer,
		recvQ: newMsgQueue(64),
		done:  make(chan struct{}),
	}
	go conn.pollLoop()
	return conn, nil
}

// Send fragments msg into ring slots on the peer, copying each fragment
// through the registered staging buffer (the sender-side copy the paper's
// zero-copy path eliminates).
func (c *ringConn) Send(msg []byte) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	start := time.Now()
	cap := c.peer.cfg.slotCap()
	rem := msg
	for first := true; first || len(rem) > 0; first = false {
		frag := rem
		if len(frag) > cap {
			frag = frag[:cap]
		}
		rem = rem[len(frag):]
		if err := c.sendFragment(frag, len(rem) == 0); err != nil {
			return err
		}
	}
	if hook := c.peer.cfg.OnSend; hook != nil {
		hook(len(msg), time.Since(start))
	}
	return nil
}

func (c *ringConn) sendFragment(frag []byte, last bool) error {
	p := c.peer
	deadline := time.Now().Add(p.cfg.SendTimeout)
	// Flow control: wait for a free slot, bounded by the send deadline so a
	// stalled or partitioned peer yields a typed error, not a hung sender.
	for spins := 0; p.sent-p.creditMR.LoadWord(0) >= uint64(p.cfg.Slots); spins++ {
		select {
		case <-c.done:
			return ErrClosed
		default:
		}
		if spins > 1024 {
			if time.Now().After(deadline) {
				return fmt.Errorf("transport: ring send: no credit after %v (peer stalled or partitioned): %w",
					p.cfg.SendTimeout, ErrTimeout)
			}
			time.Sleep(10 * time.Microsecond)
		} else {
			runtime.Gosched()
		}
	}
	slot := int(p.sent % uint64(p.cfg.Slots))
	base := slot * p.cfg.SlotSize

	// Stage header+payload, then write them and the flag with two in-order
	// work requests on the same QP.
	stage := p.stage.Bytes()
	lastBit := uint32(0)
	if last {
		lastBit = 1
	}
	binary.LittleEndian.PutUint32(stage, uint32(len(frag)))
	binary.LittleEndian.PutUint32(stage[4:], lastBit)
	copy(stage[ringSlotHeader:], frag)
	p.stage.SetFlagLocal(p.cfg.SlotSize - rdma.FlagWordSize)

	// Both writes are idempotent (same bytes to the same unconsumed slot; the
	// receiver only looks past the header once the flag lands), so transient
	// fabric faults are retried within the remaining deadline. The payload
	// write is awaited before the flag write is posted, preserving the
	// payload-before-flag order across retries.
	// remainingOpts clamps to a tiny positive budget when the deadline has
	// already passed, so MemcpyRetry fails fast instead of silently picking
	// up the 10s default a non-positive Deadline would select.
	remainingOpts := func() rdma.TransferOpts {
		rem := time.Until(deadline)
		if rem <= 0 {
			rem = time.Millisecond
		}
		return rdma.TransferOpts{Deadline: rem}
	}
	payloadBytes := ringSlotHeader + len(frag)
	flagOff := p.cfg.SlotSize - rdma.FlagWordSize
	if err := p.ch.MemcpyRetry(0, p.stage, base, p.ring, payloadBytes, rdma.OpWrite, remainingOpts()); err != nil {
		return wrapSendErr("fragment write", err)
	}
	if err := p.ch.MemcpyRetry(flagOff, p.stage, base+flagOff, p.ring,
		rdma.FlagWordSize, rdma.OpWrite, remainingOpts()); err != nil {
		return wrapSendErr("flag write", err)
	}
	p.sent++
	return nil
}

// wrapSendErr folds an exhausted rdma retry budget into the transport's own
// timeout type (both remain visible to errors.Is); other errors pass through.
func wrapSendErr(what string, err error) error {
	if errors.Is(err, rdma.ErrTimeout) {
		return fmt.Errorf("transport: ring %s: %w (%w)", what, ErrTimeout, err)
	}
	return fmt.Errorf("transport: ring %s: %w", what, err)
}

// pollLoop is the receiver: it polls ring slots in order, reassembles
// messages (copying fragments out of the ring), bumps the peer's credit
// word, and delivers completed messages.
func (c *ringConn) pollLoop() {
	h := c.half
	var assembly []byte
	var consumed uint64
	spins := 0
	for {
		select {
		case <-c.done:
			return
		default:
		}
		slot := int(h.nextIdx % uint64(h.cfg.Slots))
		base := slot * h.cfg.SlotSize
		flagOff := base + h.cfg.SlotSize - rdma.FlagWordSize
		if !h.ring.PollFlag(flagOff) {
			spins++
			if spins > 1024 {
				time.Sleep(10 * time.Microsecond)
			} else {
				runtime.Gosched()
			}
			continue
		}
		spins = 0
		data := h.ring.Bytes()[base:]
		fragLen := int(binary.LittleEndian.Uint32(data))
		last := binary.LittleEndian.Uint32(data[4:]) == 1
		if fragLen > h.cfg.slotCap() {
			fragLen = h.cfg.slotCap() // corrupt header: clamp, drop at reassembly
		}
		// The in-library copy out of the ring.
		assembly = append(assembly, data[ringSlotHeader:ringSlotHeader+fragLen]...)
		h.ring.ClearFlag(flagOff)
		h.nextIdx++
		consumed++

		// Bump the sender's credit word (one-sided write of our count).
		c.postCredit(consumed)

		if last {
			msg := assembly
			assembly = nil
			if !c.recvQ.put(msg) {
				return
			}
		}
	}
}

// postCredit one-sided-writes the absolute consumed count into the sender's
// credit word. The write is fire-and-forget on the fast path — a later credit
// write supersedes a dropped one because the count is absolute and monotone —
// but a transiently dropped write is re-driven in the background so the very
// last credit of a burst cannot be lost and stall the sender until its
// deadline. The staging word is stored atomically (StoreWord) and the
// single-word transfer reads it atomically, so a newer count racing the
// retry only makes the credit fresher.
func (c *ringConn) postCredit(consumed uint64) {
	h := c.half
	h.stage.StoreWord(0, consumed)
	_ = h.ch.Memcpy(0, h.stage, 0, h.credit, rdma.FlagWordSize, rdma.OpWrite, func(err error) {
		if err == nil || !Retryable(err) {
			return
		}
		select {
		case <-c.done:
			return
		default:
		}
		go func() {
			_ = h.ch.MemcpyRetry(0, h.stage, 0, h.credit, rdma.FlagWordSize, rdma.OpWrite,
				rdma.TransferOpts{Deadline: h.cfg.SendTimeout})
		}()
	})
}

func (c *ringConn) Recv() ([]byte, error) {
	msg, ok := c.recvQ.take()
	if !ok {
		return nil, ErrClosed
	}
	return msg, nil
}

func (c *ringConn) Close() error {
	c.closeOnce.Do(func() {
		close(c.done)
		c.recvQ.close()
	})
	return nil
}
