package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCP transport: real sockets with 4-byte length-prefixed framing. This is
// the wire under the gRPC.TCP baseline; its costs (syscalls, kernel copies,
// per-segment processing) are genuine.

// maxFrame bounds a single framed message (2 GiB keeps the u32 prefix safe).
const maxFrame = 1 << 31

// TCPNetwork returns the substrate descriptor for loopback TCP.
func TCPNetwork() Network {
	return Network{Name: "tcp", Listen: tcpListen, Dial: tcpDial}
}

func tcpListen(addr string) (Listener, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	nl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: tcp listen %s: %w", addr, err)
	}
	return &tcpListener{nl: nl}, nil
}

func tcpDial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: tcp dial %s: %w", addr, err)
	}
	return newTCPConn(c), nil
}

type tcpListener struct {
	nl net.Listener
}

func (l *tcpListener) Accept() (Conn, error) {
	c, err := l.nl.Accept()
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, err
	}
	return newTCPConn(c), nil
}

func (l *tcpListener) Addr() string { return l.nl.Addr().String() }

func (l *tcpListener) Close() error { return l.nl.Close() }

type tcpConn struct {
	c  net.Conn
	br *bufio.Reader

	sendMu sync.Mutex
	recvMu sync.Mutex
}

func newTCPConn(c net.Conn) *tcpConn {
	return &tcpConn{c: c, br: bufio.NewReaderSize(c, 64<<10)}
}

func (t *tcpConn) Send(msg []byte) error {
	if len(msg) >= maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(msg))
	}
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(msg)))
	if _, err := t.c.Write(hdr[:]); err != nil {
		return mapNetErr(err)
	}
	if _, err := t.c.Write(msg); err != nil {
		return mapNetErr(err)
	}
	return nil
}

func (t *tcpConn) Recv() ([]byte, error) {
	t.recvMu.Lock()
	defer t.recvMu.Unlock()
	var hdr [4]byte
	if _, err := io.ReadFull(t.br, hdr[:]); err != nil {
		return nil, mapNetErr(err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n >= maxFrame {
		return nil, fmt.Errorf("transport: inbound frame of %d bytes exceeds limit", n)
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(t.br, msg); err != nil {
		return nil, mapNetErr(err)
	}
	return msg, nil
}

func (t *tcpConn) Close() error { return t.c.Close() }

func mapNetErr(err error) error {
	if errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return ErrClosed
	}
	return err
}
