package transport_test

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/rdma"
	"repro/internal/transport"
)

// ringPair builds a connected ring transport over a fresh two-device fabric.
func ringPair(t *testing.T, cfg transport.RingConfig) (*rdma.Fabric, transport.Conn, transport.Conn) {
	t.Helper()
	f := rdma.NewFabric()
	server, err := rdma.CreateDevice(f, rdma.Config{Endpoint: "srv:1"})
	if err != nil {
		t.Fatal(err)
	}
	client, err := rdma.CreateDevice(f, rdma.Config{Endpoint: "cli:1"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { server.Close(); client.Close() })

	srvNet := transport.RingNetwork(server, cfg)
	cliNet := transport.RingNetwork(client, cfg)
	l, err := srvNet.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan transport.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	cliConn, err := cliNet.Dial("srv:1")
	if err != nil {
		t.Fatal(err)
	}
	srvConn := <-accepted
	t.Cleanup(func() { cliConn.Close(); srvConn.Close() })
	return f, cliConn, srvConn
}

// A lossy fabric (20% transfer drops, 10% message drops, occasional dup and
// delayed completions) must not corrupt or lose ring messages: the fragment
// writes and credit writes retry transparently.
func TestRingSurvivesTransferDrops(t *testing.T) {
	cfg := transport.RingConfig{Slots: 8, SlotSize: 1024, SendTimeout: 5 * time.Second}
	f, cli, srv := ringPair(t, cfg)

	inj := chaos.New(chaos.Plan{
		Seed:                11,
		DropRate:            0.20,
		MsgDropRate:         0.10,
		DupCompletionRate:   0.05,
		DelayCompletionRate: 0.05,
		MaxDelay:            200 * time.Microsecond,
	})
	inj.Install(f)
	defer inj.Stop()

	// Messages larger than one slot force fragmentation across retries.
	const msgs = 40
	payload := make([]byte, 3000)
	for i := range payload {
		payload[i] = byte(i)
	}
	errc := make(chan error, 1)
	go func() {
		for k := 0; k < msgs; k++ {
			msg := append([]byte{byte(k)}, payload...)
			if err := cli.Send(msg); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	for k := 0; k < msgs; k++ {
		got, err := srv.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", k, err)
		}
		if got[0] != byte(k) || !bytes.Equal(got[1:], payload) {
			t.Fatalf("message %d corrupted (len %d, tag %d)", k, len(got), got[0])
		}
	}
	if err := <-errc; err != nil {
		t.Fatalf("send: %v", err)
	}
	if inj.Counters().Total() == 0 {
		t.Error("fault injector fired nothing; test exercised no faults")
	}
}

// A partition that never heals must fail Send with the transport's typed
// timeout within the configured deadline instead of hanging.
func TestRingSendTimesOutUnderPartition(t *testing.T) {
	cfg := transport.RingConfig{Slots: 4, SlotSize: 512, SendTimeout: 300 * time.Millisecond}
	f, cli, _ := ringPair(t, cfg)

	f.Partition("cli:1", "srv:1")
	start := time.Now()
	err := cli.Send(make([]byte, 64))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Send succeeded across a partition")
	}
	if !errors.Is(err, transport.ErrTimeout) {
		t.Fatalf("err = %v, want transport.ErrTimeout", err)
	}
	if errors.Is(err, transport.ErrClosed) {
		t.Fatalf("err = %v should not be ErrClosed", err)
	}
	if transport.Retryable(err) {
		t.Fatalf("exhausted send %v must not classify retryable", err)
	}
	if elapsed > 10*cfg.SendTimeout {
		t.Fatalf("Send took %v, deadline was %v", elapsed, cfg.SendTimeout)
	}
	// The underlying unreachability stays visible through the wrap.
	if !errors.Is(err, rdma.ErrUnreachable) {
		t.Logf("note: cause chain = %v", err)
	}
}

// Credit starvation (receiver never consumes because the reverse path is
// partitioned after delivery stops) also resolves to ErrTimeout: fill the
// ring with an unread backlog, then keep sending.
func TestRingCreditStarvationTimesOut(t *testing.T) {
	cfg := transport.RingConfig{Slots: 2, SlotSize: 512, SendTimeout: 200 * time.Millisecond}
	_, cli, srv := ringPair(t, cfg)
	_ = srv // never Recv: the receive queue drains the ring, so block it below.

	// The poll loop keeps consuming slots into the queue until the queue is
	// full (depth 64); overwhelm both ring and queue without reading.
	payload := make([]byte, 400)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("never hit credit starvation")
		}
		if err := cli.Send(payload); err != nil {
			if !errors.Is(err, transport.ErrTimeout) {
				t.Fatalf("err = %v, want transport.ErrTimeout", err)
			}
			return
		}
	}
}
