// Package transport provides the reliable, ordered message transports the
// RPC baseline runs over. Three are implemented:
//
//   - Pipe: an in-process transport used by tests and the in-process
//     cluster, with bounded queues and the same copy discipline as a socket.
//   - TCP: real loopback TCP with length-prefixed framing — the gRPC.TCP
//     baseline's wire.
//   - Ring: RDMA-backed streaming in the style TensorFlow r1.x wraps RDMA
//     under gRPC (§2.2, §5): a fixed ring buffer of receive slots per
//     direction, sender-side fragmentation of large messages, receiver-side
//     reassembly, and the mandatory copies in and out of the ring. This is
//     the gRPC.RDMA baseline's wire.
//
// All three present the same Conn interface so the RPC layer is oblivious
// to the substrate, mirroring how gRPC treats its channels.
package transport

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/rdma"
)

// ErrClosed is returned by operations on closed connections or listeners.
var ErrClosed = errors.New("transport: closed")

// ErrTimeout is returned when a Send exhausts its deadline — either waiting
// for ring credit (peer stalled or partitioned) or retrying fragment writes.
// It always wraps the underlying cause where one exists.
var ErrTimeout = errors.New("transport: send deadline exceeded")

// Retryable classifies a transport error as transient (the fault may heal;
// the operation may be retried at the message level) versus fatal. Timeouts
// are fatal: a retry budget was already spent. ErrClosed is fatal.
func Retryable(err error) bool {
	if err == nil || errors.Is(err, ErrTimeout) || errors.Is(err, ErrClosed) {
		return false
	}
	return rdma.Retryable(err)
}

// Conn is a reliable, ordered, message-oriented duplex connection. Send
// blocks until the message is accepted by the transport; Recv blocks until
// a message arrives. Message boundaries are preserved.
type Conn interface {
	// Send transmits one message. The transport copies msg before Send
	// returns; the caller may reuse the buffer.
	Send(msg []byte) error
	// Recv returns the next message. The returned buffer is owned by the
	// caller.
	Recv() ([]byte, error)
	// Close tears the connection down; pending and future Recv calls fail
	// with ErrClosed.
	Close() error
}

// Listener accepts inbound connections on an address.
type Listener interface {
	// Accept blocks for the next inbound connection.
	Accept() (Conn, error)
	// Addr returns the listener's dialable address.
	Addr() string
	// Close stops accepting; blocked Accept calls fail with ErrClosed.
	Close() error
}

// Dialer opens a connection to a listener address.
type Dialer func(addr string) (Conn, error)

// Network bundles a Dialer with a Listen function, so higher layers can be
// parameterized by substrate.
type Network struct {
	// Name identifies the substrate ("pipe", "tcp", "rdma-ring").
	Name string
	// Listen opens a listener. For TCP, addr may be "127.0.0.1:0".
	Listen func(addr string) (Listener, error)
	// Dial connects to a listener's Addr.
	Dial Dialer
}

// chanConn is the shared bounded-queue duplex connection used by the pipe
// transport and as the delivery queue of the ring transport.
type chanConn struct {
	sendQ *msgQueue
	recvQ *msgQueue
}

func (c *chanConn) Send(msg []byte) error {
	cp := make([]byte, len(msg))
	copy(cp, msg)
	if !c.sendQ.put(cp) {
		return ErrClosed
	}
	return nil
}

func (c *chanConn) Recv() ([]byte, error) {
	msg, ok := c.recvQ.take()
	if !ok {
		return nil, ErrClosed
	}
	return msg, nil
}

func (c *chanConn) Close() error {
	c.sendQ.close()
	c.recvQ.close()
	return nil
}

// msgQueue is a closable bounded queue of messages.
type msgQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	buf    [][]byte
	max    int
	closed bool
}

func newMsgQueue(max int) *msgQueue {
	q := &msgQueue{max: max}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *msgQueue) put(msg []byte) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.buf) >= q.max && !q.closed {
		q.cond.Wait()
	}
	if q.closed {
		return false
	}
	q.buf = append(q.buf, msg)
	q.cond.Broadcast()
	return true
}

func (q *msgQueue) take() ([]byte, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.buf) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.buf) == 0 {
		return nil, false
	}
	msg := q.buf[0]
	q.buf = q.buf[1:]
	q.cond.Broadcast()
	return msg, true
}

func (q *msgQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// PipeNetwork is an in-process network of named listeners.
type PipeNetwork struct {
	mu        sync.Mutex
	listeners map[string]*pipeListener
	next      int
}

// NewPipeNetwork creates an empty in-process network.
func NewPipeNetwork() *PipeNetwork {
	return &PipeNetwork{listeners: make(map[string]*pipeListener)}
}

// Network returns the substrate descriptor for this pipe network.
func (n *PipeNetwork) Network() Network {
	return Network{Name: "pipe", Listen: n.Listen, Dial: n.Dial}
}

type pipeListener struct {
	net    *PipeNetwork
	addr   string
	accept chan Conn
	once   sync.Once
	done   chan struct{}
}

// Listen registers a listener; addr "" picks a fresh address.
func (n *PipeNetwork) Listen(addr string) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if addr == "" {
		n.next++
		addr = fmt.Sprintf("pipe-%d", n.next)
	}
	if _, ok := n.listeners[addr]; ok {
		return nil, fmt.Errorf("transport: address %q in use", addr)
	}
	l := &pipeListener{net: n, addr: addr, accept: make(chan Conn, 16), done: make(chan struct{})}
	n.listeners[addr] = l
	return l, nil
}

// Dial connects to a listener registered with Listen.
func (n *PipeNetwork) Dial(addr string) (Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: dial %q: no listener", addr)
	}
	const depth = 64
	aToB, bToA := newMsgQueue(depth), newMsgQueue(depth)
	client := &chanConn{sendQ: aToB, recvQ: bToA}
	server := &chanConn{sendQ: bToA, recvQ: aToB}
	select {
	case l.accept <- server:
		return client, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *pipeListener) Accept() (Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *pipeListener) Addr() string { return l.addr }

func (l *pipeListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		delete(l.net.listeners, l.addr)
		l.net.mu.Unlock()
	})
	return nil
}
