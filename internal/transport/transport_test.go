package transport

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/rdma"
)

// connPair builds a connected client/server pair on the given network.
func connPair(t *testing.T, net Network) (client, server Conn) {
	t.Helper()
	l, err := net.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	type res struct {
		c   Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := l.Accept()
		ch <- res{c, err}
	}()
	client, err = net.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { client.Close(); r.c.Close() })
	return client, r.c
}

func ringNet(t *testing.T) Network {
	t.Helper()
	f := rdma.NewFabric()
	a, err := rdma.CreateDevice(f, rdma.Config{Endpoint: "client:1"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := rdma.CreateDevice(f, rdma.Config{Endpoint: "server:1"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	cfg := RingConfig{Slots: 8, SlotSize: 4096}
	serverNet := RingNetwork(b, cfg)
	clientNet := RingNetwork(a, cfg)
	return Network{
		Name:   "rdma-ring",
		Listen: serverNet.Listen,
		Dial:   clientNet.Dial,
	}
}

func testNetworks(t *testing.T) map[string]Network {
	return map[string]Network{
		"pipe": NewPipeNetwork().Network(),
		"tcp":  TCPNetwork(),
		"ring": ringNet(t),
	}
}

func TestSendRecvAllTransports(t *testing.T) {
	for name, net := range testNetworks(t) {
		t.Run(name, func(t *testing.T) {
			client, server := connPair(t, net)
			msgs := [][]byte{
				[]byte("hello"),
				{},
				bytes.Repeat([]byte{0xAB}, 100),
			}
			for _, m := range msgs {
				if err := client.Send(m); err != nil {
					t.Fatal(err)
				}
			}
			for _, want := range msgs {
				got, err := server.Recv()
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("got %d bytes, want %d", len(got), len(want))
				}
			}
			// Duplex: server to client too.
			if err := server.Send([]byte("pong")); err != nil {
				t.Fatal(err)
			}
			got, err := client.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "pong" {
				t.Errorf("got %q", got)
			}
		})
	}
}

func TestLargeMessagesFragmented(t *testing.T) {
	// Messages far larger than one ring slot must be fragmented and
	// reassembled intact; also exercises TCP framing of large frames.
	for name, net := range testNetworks(t) {
		t.Run(name, func(t *testing.T) {
			client, server := connPair(t, net)
			rng := rand.New(rand.NewSource(9))
			sizes := []int{1, 4095, 4096, 4097, 100_000, 1 << 20}
			go func() {
				for _, size := range sizes {
					msg := make([]byte, size)
					rng.Read(msg)
					sum := byte(0)
					for _, b := range msg[:size-1] {
						sum ^= b
					}
					msg[size-1] = sum // checksum in final byte
					if err := client.Send(msg); err != nil {
						t.Error(err)
						return
					}
				}
			}()
			for _, size := range sizes {
				got, err := server.Recv()
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != size {
					t.Fatalf("got %d bytes, want %d", len(got), size)
				}
				sum := byte(0)
				for _, b := range got[:size-1] {
					sum ^= b
				}
				if got[size-1] != sum {
					t.Fatalf("checksum mismatch at size %d", size)
				}
			}
		})
	}
}

func TestSenderMayReuseBuffer(t *testing.T) {
	for name, net := range testNetworks(t) {
		t.Run(name, func(t *testing.T) {
			client, server := connPair(t, net)
			buf := []byte("first")
			if err := client.Send(buf); err != nil {
				t.Fatal(err)
			}
			copy(buf, "XXXXX") // mutate immediately after Send returns
			got, err := server.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "first" {
				t.Errorf("got %q: transport did not copy on send", got)
			}
		})
	}
}

func TestManyMessagesOrdered(t *testing.T) {
	for name, net := range testNetworks(t) {
		t.Run(name, func(t *testing.T) {
			client, server := connPair(t, net)
			const n = 500
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < n; i++ {
					msg := []byte(fmt.Sprintf("msg-%06d", i))
					if err := client.Send(msg); err != nil {
						t.Error(err)
						return
					}
				}
			}()
			for i := 0; i < n; i++ {
				got, err := server.Recv()
				if err != nil {
					t.Fatal(err)
				}
				want := fmt.Sprintf("msg-%06d", i)
				if string(got) != want {
					t.Fatalf("position %d: got %q, want %q", i, got, want)
				}
			}
			wg.Wait()
		})
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	for name, net := range testNetworks(t) {
		t.Run(name, func(t *testing.T) {
			client, server := connPair(t, net)
			done := make(chan error, 1)
			go func() {
				_, err := server.Recv()
				done <- err
			}()
			// Closing either end must unblock the pending Recv. For TCP the
			// peer close surfaces as EOF (mapped to ErrClosed); for pipe and
			// ring, the local close does.
			client.Close()
			server.Close()
			if err := <-done; !errors.Is(err, ErrClosed) {
				t.Errorf("recv after close: %v", err)
			}
		})
	}
}

func TestDialNoListener(t *testing.T) {
	pn := NewPipeNetwork()
	if _, err := pn.Dial("nowhere"); err == nil {
		t.Error("pipe dial to nowhere succeeded")
	}
	if _, err := TCPNetwork().Dial("127.0.0.1:1"); err == nil {
		t.Error("tcp dial to closed port succeeded")
	}
}

func TestListenerAddrUniqueness(t *testing.T) {
	pn := NewPipeNetwork()
	l1, err := pn.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	l2, err := pn.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	if l1.Addr() == l2.Addr() {
		t.Error("auto-assigned addresses collide")
	}
	if _, err := pn.Listen(l1.Addr()); err == nil {
		t.Error("duplicate explicit address accepted")
	}
	l1.Close()
	if _, err := pn.Listen(l1.Addr()); err != nil {
		t.Errorf("address not released on close: %v", err)
	}
	l2.Close()
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	for name, net := range testNetworks(t) {
		t.Run(name, func(t *testing.T) {
			l, err := net.Listen("")
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan error, 1)
			go func() {
				_, err := l.Accept()
				done <- err
			}()
			l.Close()
			if err := <-done; !errors.Is(err, ErrClosed) {
				t.Errorf("accept after close: %v", err)
			}
		})
	}
}

func TestRingBackpressure(t *testing.T) {
	// More in-flight fragments than ring slots: flow control must stall
	// rather than corrupt.
	net := ringNet(t)
	client, server := connPair(t, net)
	const n = 100
	errc := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			msg := bytes.Repeat([]byte{byte(i)}, 3000)
			if err := client.Send(msg); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	for i := 0; i < n; i++ {
		got, err := server.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 3000 || got[0] != byte(i) {
			t.Fatalf("message %d corrupted: len %d first %d", i, len(got), got[0])
		}
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTransportThroughput(b *testing.B) {
	nets := map[string]Network{
		"pipe": NewPipeNetwork().Network(),
		"tcp":  TCPNetwork(),
	}
	for name, net := range nets {
		for _, size := range []int{4 << 10, 1 << 20} {
			b.Run(fmt.Sprintf("%s/%dKB", name, size/1024), func(b *testing.B) {
				l, err := net.Listen("")
				if err != nil {
					b.Fatal(err)
				}
				defer l.Close()
				go func() {
					c, err := l.Accept()
					if err != nil {
						return
					}
					for {
						if _, err := c.Recv(); err != nil {
							return
						}
					}
				}()
				c, err := net.Dial(l.Addr())
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				msg := make([]byte, size)
				b.SetBytes(int64(size))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := c.Send(msg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func TestRingConfigMismatch(t *testing.T) {
	f := rdma.NewFabric()
	a, err := rdma.CreateDevice(f, rdma.Config{Endpoint: "mma:1"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := rdma.CreateDevice(f, rdma.Config{Endpoint: "mmb:1"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	defer b.Close()
	serverNet := RingNetwork(b, RingConfig{Slots: 8, SlotSize: 4096})
	clientNet := RingNetwork(a, RingConfig{Slots: 16, SlotSize: 4096})
	l, err := serverNet.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := clientNet.Dial(l.Addr()); err == nil {
		t.Error("mismatched ring configs accepted")
	}
}

func TestRingHelloDecodeRobust(t *testing.T) {
	for _, buf := range [][]byte{nil, {1}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, {0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0x7F}} {
		if _, err := unmarshalRingHello(buf); err == nil && len(buf) < 12 {
			t.Errorf("short hello %v accepted", buf)
		}
	}
}
