package analyzer

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/alloc"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// ErrTrace wraps tracing-policy failures.
var ErrTrace = errors.New("analyzer: tracing error")

// site identifies one allocation site: the i-th allocation performed by a
// node's kernel within one iteration (§3.4: "the identification of the
// graph node and the id of the allocation of this node").
type site struct {
	nodeID   int
	allocIdx int
}

// TracingPolicy is the exec.AllocPolicy realizing §3.4's dynamic analysis:
//
//	iteration 0: every tensor is heap-allocated and its (node, alloc-index)
//	site recorded; send kernels call NoteTransfer for the tensors that
//	crossed servers, promoting their sites into the hot set S.
//
//	iteration ≥1: allocations at hot sites are redirected — to the bound
//	per-edge staging slot for statically placed edges (so the producing
//	kernel writes directly into the to-be-transferred buffer), or into the
//	RDMA-registered arena for dynamic edges (so the one-sided read needs no
//	sender copy). Everything else stays on the heap.
//
// Setting Enabled to false disables the promotion entirely, producing the
// RDMA.cp ablation of §5.1/Figure 12 (every transfer needs a sender copy).
type TracingPolicy struct {
	mu sync.Mutex

	arena   *alloc.Arena
	enabled bool

	curIter int
	sites   map[*tensor.Tensor]site
	hot     map[site]string // site -> source key (source node name)
	staging map[string]*tensor.Tensor
	bufOf   map[*tensor.Tensor]*alloc.Buffer
	byIter  map[int][]arenaEntry // arena allocations per iteration, freed after 2 iters
}

type arenaEntry struct {
	buf *alloc.Buffer
	t   *tensor.Tensor
}

// NewTracingPolicy builds a policy allocating promoted dynamic tensors from
// the given registered-memory arena. enabled=false yields the copy ablation.
func NewTracingPolicy(arena *alloc.Arena, enabled bool) *TracingPolicy {
	return &TracingPolicy{
		arena:   arena,
		enabled: enabled,
		sites:   make(map[*tensor.Tensor]site),
		hot:     make(map[site]string),
		staging: make(map[string]*tensor.Tensor),
		bufOf:   make(map[*tensor.Tensor]*alloc.Buffer),
		byIter:  make(map[int][]arenaEntry),
	}
}

// Enabled reports whether promotion is active.
func (p *TracingPolicy) Enabled() bool { return p.enabled }

// Alloc implements exec.AllocPolicy.
func (p *TracingPolicy) Alloc(node *graph.Node, iter, allocIdx int, dt tensor.DType, shape tensor.Shape) (*tensor.Tensor, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if iter != p.curIter {
		p.advanceLocked(iter)
	}
	if !p.enabled || iter == 0 {
		t := tensor.New(dt, shape...)
		if p.enabled {
			p.sites[t] = site{nodeID: node.ID(), allocIdx: allocIdx}
		}
		return t, nil
	}
	srcKey, isHot := p.hot[site{nodeID: node.ID(), allocIdx: allocIdx}]
	if !isHot {
		return tensor.New(dt, shape...), nil
	}
	if st, ok := p.staging[srcKey]; ok {
		if st.DType() != dt || !st.Shape().Equal(shape) {
			return nil, fmt.Errorf("%w: staging for %q is %v%v, allocation wants %v%v",
				ErrTrace, srcKey, st.DType(), st.Shape(), dt, shape)
		}
		return st, nil
	}
	// Dynamic edge: registered arena, falling back to the heap when full
	// (the transfer then pays a copy, it does not fail).
	buf, err := p.arena.Allocate(shape.NumElements() * dt.Size())
	if err != nil {
		return tensor.New(dt, shape...), nil
	}
	t, err := tensor.FromBytes(dt, shape, buf.Data)
	if err != nil {
		_ = p.arena.Free(buf)
		return nil, err
	}
	p.bufOf[t] = buf
	p.byIter[iter] = append(p.byIter[iter], arenaEntry{buf: buf, t: t})
	return t, nil
}

// advanceLocked moves the iteration cursor, releasing arena buffers that
// are at least two iterations old (by then the synchronous training step
// guarantees their remote reads completed) and dropping iteration-0
// bookkeeping once tracing concluded.
func (p *TracingPolicy) advanceLocked(iter int) {
	p.curIter = iter
	if iter >= 1 && len(p.sites) > 0 {
		p.sites = make(map[*tensor.Tensor]site)
	}
	for it, entries := range p.byIter {
		if it <= iter-2 {
			for _, e := range entries {
				_ = p.arena.Free(e.buf)
				delete(p.bufOf, e.t)
			}
			delete(p.byIter, it)
		}
	}
}

// NoteTransfer marks a transferred tensor's allocation site as hot; send
// kernels call it during the first iteration. srcKey is the producing
// node's name, shared by all edges fanning out of it.
func (p *TracingPolicy) NoteTransfer(t *tensor.Tensor, srcKey string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if s, ok := p.sites[t]; ok {
		p.hot[s] = srcKey
	}
}

// BindStaging routes future hot allocations for srcKey to the given tensor
// (a view over a per-edge registered staging slot). Called by the
// communication backend during setup or after tracing resolves.
func (p *TracingPolicy) BindStaging(srcKey string, t *tensor.Tensor) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.staging[srcKey] = t
}

// LookupRegistered reports the arena buffer backing t, if any; dynamic-edge
// send kernels use it to transfer straight out of the tensor's storage.
func (p *TracingPolicy) LookupRegistered(t *tensor.Tensor) (*alloc.Buffer, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	b, ok := p.bufOf[t]
	return b, ok
}

// HotSites reports how many allocation sites tracing promoted (tests and
// the harness assert on it).
func (p *TracingPolicy) HotSites() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.hot)
}
