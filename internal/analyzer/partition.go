// Package analyzer implements the paper's RDMA-aware graph analysis (§3.4):
//
//   - Partition splits a task-annotated data-flow graph across servers,
//     replacing every cross-server edge with a Send/Recv operator pair
//     supplied by the communication mechanism. Static shape inference has
//     already run during graph construction (signatures carry staticness),
//     so the partitioner can report per edge whether the static-placement
//     (§3.2) or dynamic-allocation (§3.3) transfer applies.
//   - TracingPolicy implements allocation-site dynamic tracing: during the
//     first mini-batch it records which (node, allocation-index) sites
//     produced the tensors that crossed servers; from the second mini-batch
//     on, those sites allocate directly in RDMA-registered memory — a
//     pre-bound per-edge staging slot for static edges, the registered
//     arena for dynamic ones — so transfers need no sender-side copy.
package analyzer

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
)

// ErrPartition wraps partitioning failures.
var ErrPartition = errors.New("analyzer: partition error")

// EdgeSpec describes one cross-server tensor edge.
type EdgeSpec struct {
	// Key uniquely identifies the edge: "<srcNode>-><dstTask>".
	Key string
	// SrcNode is the producing node's name.
	SrcNode string
	// SrcTask and DstTask are the server assignments of the two ends.
	SrcTask, DstTask string
	// Sig is the transferred tensor's signature; Sig.Static selects the
	// static-placement protocol, otherwise the dynamic one.
	Sig graph.Sig
}

// CommFactory builds the Send and Recv operators for one edge. The send op
// receives the source tensor as its single input; the recv op has no inputs
// and must produce the transferred tensor.
type CommFactory func(spec EdgeSpec) (send graph.Op, recv graph.Op, err error)

// Result is a partitioned graph plus its cross-server edge inventory.
type Result struct {
	Graph *graph.Graph
	Edges []EdgeSpec
	Tasks []string
}

// StaticEdges returns the edges using the static-placement protocol.
func (r *Result) StaticEdges() []EdgeSpec {
	var out []EdgeSpec
	for _, e := range r.Edges {
		if e.Sig.Static {
			out = append(out, e)
		}
	}
	return out
}

// DynamicEdges returns the edges using the dynamic-allocation protocol.
func (r *Result) DynamicEdges() []EdgeSpec {
	var out []EdgeSpec
	for _, e := range r.Edges {
		if !e.Sig.Static {
			out = append(out, e)
		}
	}
	return out
}

// Option customizes Partition.
type Option func(*options)

type options struct {
	postHook func(b *graph.Builder, edges []EdgeSpec, sends map[string]*graph.Node) error
}

// WithPostHook runs fn after Send/Recv insertion but before the graph is
// finalized; sends maps edge keys to the inserted send nodes. The
// distributed runtime uses it to add control dependencies (e.g. weight
// sends before in-place SGD updates).
func WithPostHook(fn func(b *graph.Builder, edges []EdgeSpec, sends map[string]*graph.Node) error) Option {
	return func(o *options) { o.postHook = fn }
}

// Summary renders a human-readable partition overview: per-task node
// counts and per-edge byte volumes (the analyzer's output a user audits).
func (r *Result) Summary() string {
	var sb strings.Builder
	perTask := make(map[string]int)
	for _, n := range r.Graph.Nodes() {
		perTask[n.Task()]++
	}
	fmt.Fprintf(&sb, "partition: %d tasks, %d nodes, %d cross-server edges (%d static, %d dynamic)\n",
		len(r.Tasks), len(r.Graph.Nodes()), len(r.Edges),
		len(r.StaticEdges()), len(r.DynamicEdges()))
	for _, task := range r.Tasks {
		fmt.Fprintf(&sb, "  %-12s %4d nodes\n", task, perTask[task])
	}
	var staticBytes int64
	for _, e := range r.StaticEdges() {
		staticBytes += int64(e.Sig.ByteSize())
	}
	fmt.Fprintf(&sb, "  static edge payload per iteration: %d bytes\n", staticBytes)
	return sb.String()
}

// Partition rewrites the builder's graph so every cross-server data edge
// flows through a Send/Recv pair, then finishes and returns the graph.
// Control dependencies may not cross servers.
func Partition(b *graph.Builder, factory CommFactory, opts ...Option) (*Result, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	return partition(b, factory, o)
}

func partition(b *graph.Builder, factory CommFactory, o options) (*Result, error) {
	if b.Err() != nil {
		return nil, b.Err()
	}
	type pend struct {
		node *graph.Node
		idx  int
	}
	nodes := snapshotNodes(b)
	tasks := map[string]bool{}
	edgeRecv := map[string]*graph.Node{}
	edgeSend := map[string]*graph.Node{}
	var edges []EdgeSpec
	rewires := map[string][]pend{}

	for _, n := range nodes {
		tasks[n.Task()] = true
		for _, c := range n.Controls() {
			if c.Task() != n.Task() {
				return nil, fmt.Errorf("analyzer: control edge %s -> %s crosses servers: %w",
					c.Name(), n.Name(), ErrPartition)
			}
		}
		for i, in := range n.Inputs() {
			if in.Task() == n.Task() {
				continue
			}
			key := edgeKey(in.Name(), n.Task())
			if _, ok := edgeRecv[key]; !ok {
				spec := EdgeSpec{
					Key:     key,
					SrcNode: in.Name(),
					SrcTask: in.Task(),
					DstTask: n.Task(),
					Sig:     in.Sig(),
				}
				sendOp, recvOp, err := factory(spec)
				if err != nil {
					return nil, fmt.Errorf("analyzer: edge %s: %w", key, err)
				}
				prevTask := b.Task()
				b.OnTask(spec.SrcTask)
				send := b.AddNode("send/"+key, sendOp, in)
				b.OnTask(spec.DstTask)
				recv := b.AddNode("recv/"+key, recvOp)
				b.OnTask(prevTask)
				if send == nil || recv == nil {
					return nil, b.Err()
				}
				edgeRecv[key] = recv
				edgeSend[key] = send
				edges = append(edges, spec)
			}
			rewires[key] = append(rewires[key], pend{node: n, idx: i})
		}
	}
	for key, list := range rewires {
		recv := edgeRecv[key]
		for _, p := range list {
			if err := b.RewireInput(p.node, p.idx, recv); err != nil {
				return nil, err
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].Key < edges[j].Key })
	if o.postHook != nil {
		if err := o.postHook(b, edges, edgeSend); err != nil {
			return nil, err
		}
	}
	g, err := b.Finish()
	if err != nil {
		return nil, err
	}
	taskList := make([]string, 0, len(tasks))
	for t := range tasks {
		taskList = append(taskList, t)
	}
	sort.Strings(taskList)
	return &Result{Graph: g, Edges: edges, Tasks: taskList}, nil
}

func edgeKey(srcNode, dstTask string) string { return srcNode + "->" + dstTask }

// snapshotNodes copies the current node list; Partition appends nodes while
// iterating, so it must work over a stable snapshot.
func snapshotNodes(b *graph.Builder) []*graph.Node {
	return b.Nodes()
}
