package analyzer

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/alloc"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// fakeSend/fakeRecv are no-op comm operators for partition tests.
type fakeSend struct{ spec EdgeSpec }

func (f *fakeSend) Name() string { return "FakeSend" }
func (f *fakeSend) InferSig(in []graph.Sig) (graph.Sig, error) {
	if len(in) != 1 {
		return graph.Sig{}, errors.New("FakeSend wants one input")
	}
	return graph.Static(tensor.Float32), nil
}
func (f *fakeSend) Compute(ctx *graph.Context) error { return nil }

type fakeRecv struct{ spec EdgeSpec }

func (f *fakeRecv) Name() string { return "FakeRecv" }
func (f *fakeRecv) InferSig(in []graph.Sig) (graph.Sig, error) {
	if len(in) != 0 {
		return graph.Sig{}, errors.New("FakeRecv wants no inputs")
	}
	return f.spec.Sig, nil
}
func (f *fakeRecv) Compute(ctx *graph.Context) error { return nil }

func fakeFactory(spec EdgeSpec) (graph.Op, graph.Op, error) {
	return &fakeSend{spec: spec}, &fakeRecv{spec: spec}, nil
}

func TestPartitionInsertsSendRecv(t *testing.T) {
	b := graph.NewBuilder()
	b.OnTask("ps0")
	w := b.Variable("w", graph.Static(tensor.Float32, 8, 4))
	b.OnTask("worker0")
	x := b.Placeholder("x", graph.Static(tensor.Float32, 2, 8))
	y := b.MatMul("y", x, w) // w crosses ps0 -> worker0

	res, err := Partition(b, fakeFactory)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Edges) != 1 {
		t.Fatalf("edges = %d, want 1", len(res.Edges))
	}
	e := res.Edges[0]
	if e.SrcNode != "w" || e.SrcTask != "ps0" || e.DstTask != "worker0" || !e.Sig.Static {
		t.Errorf("edge = %+v", e)
	}
	// y's second input must now be the recv node, on worker0.
	recv := y.Inputs()[1]
	if !strings.HasPrefix(recv.Name(), "recv/") || recv.Task() != "worker0" {
		t.Errorf("rewired input = %s@%s", recv.Name(), recv.Task())
	}
	send, err := res.Graph.Node("send/w->worker0")
	if err != nil {
		t.Fatal(err)
	}
	if send.Task() != "ps0" || send.Inputs()[0].Name() != "w" {
		t.Errorf("send node = %v", send)
	}
	if len(res.Tasks) != 2 {
		t.Errorf("tasks = %v", res.Tasks)
	}
}

func TestPartitionSharesEdgeAcrossConsumers(t *testing.T) {
	// Two consumers of the same remote tensor on the same task share one
	// Send/Recv pair.
	b := graph.NewBuilder()
	b.OnTask("ps0")
	w := b.Variable("w", graph.Static(tensor.Float32, 4, 4))
	b.OnTask("worker0")
	c1 := b.Identity("c1", w)
	c2 := b.Identity("c2", w)
	res, err := Partition(b, fakeFactory)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Edges) != 1 {
		t.Fatalf("edges = %d, want 1 (shared)", len(res.Edges))
	}
	if c1.Inputs()[0] != c2.Inputs()[0] {
		t.Error("consumers should share the recv node")
	}
}

func TestPartitionSeparateEdgesPerTask(t *testing.T) {
	// The same source fanning out to two tasks gets one edge per task.
	b := graph.NewBuilder()
	b.OnTask("ps0")
	w := b.Variable("w", graph.Static(tensor.Float32, 4))
	b.OnTask("worker0")
	b.Identity("u0", w)
	b.OnTask("worker1")
	b.Identity("u1", w)
	res, err := Partition(b, fakeFactory)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Edges) != 2 {
		t.Fatalf("edges = %d, want 2", len(res.Edges))
	}
}

func TestPartitionStaticDynamicSplit(t *testing.T) {
	b := graph.NewBuilder()
	b.OnTask("worker0")
	s := b.Placeholder("s", graph.Static(tensor.Float32, 8))
	d := b.Placeholder("d", graph.Dyn(tensor.Float32, -1, 8))
	b.OnTask("ps0")
	b.Identity("cs", s)
	b.Identity("cd", d)
	res, err := Partition(b, fakeFactory)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.StaticEdges()) != 1 || len(res.DynamicEdges()) != 1 {
		t.Errorf("static %d dynamic %d", len(res.StaticEdges()), len(res.DynamicEdges()))
	}
}

func TestPartitionRejectsCrossControl(t *testing.T) {
	b := graph.NewBuilder()
	b.OnTask("a")
	x := b.Placeholder("x", graph.Static(tensor.Float32, 1))
	b.OnTask("b")
	y := b.Placeholder("y", graph.Static(tensor.Float32, 1))
	b.ControlDep(y, x)
	if _, err := Partition(b, fakeFactory); !errors.Is(err, ErrPartition) {
		t.Errorf("cross control: %v", err)
	}
}

func TestPartitionFactoryError(t *testing.T) {
	b := graph.NewBuilder()
	b.OnTask("a")
	x := b.Placeholder("x", graph.Static(tensor.Float32, 1))
	b.OnTask("b")
	b.Identity("c", x)
	bad := func(spec EdgeSpec) (graph.Op, graph.Op, error) {
		return nil, nil, errors.New("nope")
	}
	if _, err := Partition(b, bad); err == nil {
		t.Error("factory error swallowed")
	}
}

// --- TracingPolicy ---

func mkNode(t *testing.T, name string) *graph.Node {
	t.Helper()
	b := graph.NewBuilder()
	n := b.Placeholder(name, graph.Dyn(tensor.Float32, -1))
	if b.Err() != nil {
		t.Fatal(b.Err())
	}
	return n
}

func TestTracingPromotesHotSites(t *testing.T) {
	arena := alloc.NewArena(make([]byte, 1<<16))
	p := NewTracingPolicy(arena, true)
	n := mkNode(t, "producer")

	// Iteration 0: heap, traced.
	t0, err := p.Alloc(n, 0, 0, tensor.Float32, tensor.Shape{16})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.LookupRegistered(t0); ok {
		t.Error("iteration-0 tensor should be heap-allocated")
	}
	p.NoteTransfer(t0, "producer")
	if p.HotSites() != 1 {
		t.Fatalf("hot sites = %d", p.HotSites())
	}

	// Iteration 1: same site allocates from the arena.
	t1, err := p.Alloc(n, 1, 0, tensor.Float32, tensor.Shape{16})
	if err != nil {
		t.Fatal(err)
	}
	buf, ok := p.LookupRegistered(t1)
	if !ok {
		t.Fatal("hot-site tensor not in arena")
	}
	if &buf.Data[0] != &t1.Bytes()[0] {
		t.Error("tensor does not alias arena buffer")
	}
	// A different site stays on the heap.
	tOther, _ := p.Alloc(n, 1, 1, tensor.Float32, tensor.Shape{16})
	if _, ok := p.LookupRegistered(tOther); ok {
		t.Error("cold site promoted")
	}
}

func TestTracingStagingBinding(t *testing.T) {
	arena := alloc.NewArena(make([]byte, 1<<12))
	p := NewTracingPolicy(arena, true)
	n := mkNode(t, "w-producer")
	t0, _ := p.Alloc(n, 0, 0, tensor.Float32, tensor.Shape{4})
	p.NoteTransfer(t0, "w-producer")
	staging := tensor.New(tensor.Float32, 4)
	p.BindStaging("w-producer", staging)
	t1, err := p.Alloc(n, 1, 0, tensor.Float32, tensor.Shape{4})
	if err != nil {
		t.Fatal(err)
	}
	if t1 != staging {
		t.Error("hot allocation should return the bound staging tensor")
	}
	// Shape mismatch against staging is an error.
	if _, err := p.Alloc(n, 1, 0, tensor.Float32, tensor.Shape{5}); !errors.Is(err, ErrTrace) {
		t.Errorf("staging shape mismatch: %v", err)
	}
}

func TestTracingArenaExhaustionFallsBack(t *testing.T) {
	arena := alloc.NewArena(make([]byte, 64))
	p := NewTracingPolicy(arena, true)
	n := mkNode(t, "big")
	t0, _ := p.Alloc(n, 0, 0, tensor.Float32, tensor.Shape{1024})
	p.NoteTransfer(t0, "big")
	t1, err := p.Alloc(n, 1, 0, tensor.Float32, tensor.Shape{1024})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.LookupRegistered(t1); ok {
		t.Error("oversized allocation should fall back to heap")
	}
}

func TestTracingFreesOldIterations(t *testing.T) {
	arena := alloc.NewArena(make([]byte, 1<<12))
	p := NewTracingPolicy(arena, true)
	n := mkNode(t, "seq")
	t0, _ := p.Alloc(n, 0, 0, tensor.Float32, tensor.Shape{64})
	p.NoteTransfer(t0, "seq")
	for iter := 1; iter <= 10; iter++ {
		if _, err := p.Alloc(n, iter, 0, tensor.Float32, tensor.Shape{64}); err != nil {
			t.Fatal(err)
		}
	}
	st := arena.Stats()
	// At most two iterations' worth of buffers (64 float32 = 256 bytes
	// each) may be live.
	if st.InUse > 2*256 {
		t.Errorf("arena holds %d bytes, want <= %d", st.InUse, 2*256)
	}
	if st.Frees == 0 {
		t.Error("no buffers were freed")
	}
}

func TestTracingDisabledNeverPromotes(t *testing.T) {
	arena := alloc.NewArena(make([]byte, 1<<12))
	p := NewTracingPolicy(arena, false)
	if p.Enabled() {
		t.Error("Enabled() = true")
	}
	n := mkNode(t, "off")
	t0, _ := p.Alloc(n, 0, 0, tensor.Float32, tensor.Shape{8})
	p.NoteTransfer(t0, "off")
	if p.HotSites() != 0 {
		t.Error("disabled policy recorded hot sites")
	}
	t1, _ := p.Alloc(n, 1, 0, tensor.Float32, tensor.Shape{8})
	if _, ok := p.LookupRegistered(t1); ok {
		t.Error("disabled policy promoted an allocation")
	}
}
