package analyzer

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/tensor"
)

// Partitioner property test: for random graphs with random task
// assignments, Partition must produce a graph in which every task forms a
// valid executor partition (all cross-task data edges cut by Send/Recv),
// with exactly one edge per (source node, destination task) pair.

func TestPartitionRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	for trial := 0; trial < 30; trial++ {
		tasks := []string{"a", "b", "c"}[:rng.Intn(2)+2]
		b := graph.NewBuilder()
		var all []*graph.Node
		for i := 0; i < 3; i++ {
			b.OnTask(tasks[rng.Intn(len(tasks))])
			c, err := tensor.FromFloat32(tensor.Shape{1}, []float32{float32(i)})
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, b.Const(fmt.Sprintf("c%d", i), c))
		}
		for i := 0; i < 20; i++ {
			b.OnTask(tasks[rng.Intn(len(tasks))])
			a := all[rng.Intn(len(all))]
			c := all[rng.Intn(len(all))]
			var n *graph.Node
			if rng.Intn(2) == 0 {
				n = b.Add(fmt.Sprintf("n%d", i), a, c)
			} else {
				n = b.Identity(fmt.Sprintf("n%d", i), a)
			}
			all = append(all, n)
		}
		res, err := Partition(b, fakeFactory)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Edge keys are unique per (src node, dst task).
		seen := map[string]bool{}
		for _, e := range res.Edges {
			if seen[e.Key] {
				t.Fatalf("trial %d: duplicate edge %s", trial, e.Key)
			}
			seen[e.Key] = true
			if e.SrcTask == e.DstTask {
				t.Fatalf("trial %d: self edge %s", trial, e.Key)
			}
		}
		// Every task partition validates under the executor (no
		// cross-partition inputs remain).
		for _, task := range res.Tasks {
			if _, err := exec.New(res.Graph, exec.Config{Task: task}); err != nil {
				t.Fatalf("trial %d task %s: %v", trial, task, err)
			}
		}
		// No node kept a cross-task data input.
		for _, n := range res.Graph.Nodes() {
			for _, in := range n.Inputs() {
				if in.Task() != n.Task() {
					t.Fatalf("trial %d: %s@%s still reads %s@%s",
						trial, n.Name(), n.Task(), in.Name(), in.Task())
				}
			}
		}
		// Summary renders without panicking and mentions every task.
		s := res.Summary()
		for _, task := range res.Tasks {
			if !contains(s, task) {
				t.Fatalf("summary missing task %s:\n%s", task, s)
			}
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
