package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// TestFacadeEndToEnd exercises the whole stack through the core surface
// only: build a tiny PS graph, launch under the zero-copy mechanism, train
// a few steps through a TrainingSession.
func TestFacadeEndToEnd(t *testing.T) {
	b := NewGraphBuilder()
	b.OnTask("ps0")
	w := b.Variable("w", graph.Static(tensor.Float32, 4, 2))
	b.OnTask("worker0")
	x := b.Placeholder("x", graph.Static(tensor.Float32, 3, 4))
	labels := b.Placeholder("labels", graph.Static(tensor.Int32, 3))
	logits := b.MatMul("logits", x, w)
	loss := b.SoftmaxXent("loss", logits, labels)
	grads, err := Gradients(b, loss, []*Node{w})
	if err != nil {
		t.Fatal(err)
	}
	b.OnTask("ps0")
	b.ApplySGD("apply_w", w, grads[w], 0.5)

	sess, err := NewTrainingSession(b, ClusterConfig{Kind: RDMA, ArenaBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Cluster().InitVariable("w", func(tt *Tensor) { tt.Fill(0.1) }); err != nil {
		t.Fatal(err)
	}

	xs := tensor.New(tensor.Float32, 3, 4)
	xs.Fill(1)
	ls := tensor.New(tensor.Int32, 3)
	feeds := map[string]map[string]*Tensor{"worker0": {"x": xs, "labels": ls}}
	fetches := map[string][]string{"worker0": {"loss"}}

	var first, last float32
	for i := 0; i < 10; i++ {
		if sess.Iteration() != i {
			t.Fatalf("iteration counter = %d, want %d", sess.Iteration(), i)
		}
		out, err := sess.Step(feeds, fetches)
		if err != nil {
			t.Fatal(err)
		}
		l := out["worker0"]["loss"].Float32s()[0]
		if i == 0 {
			first = l
		}
		last = l
	}
	if last >= first {
		t.Errorf("loss did not drop: %v -> %v", first, last)
	}
}

// TestDeviceFacade smoke-tests the Table-1 surface through core.
func TestDeviceFacade(t *testing.T) {
	f := NewFabric()
	a, err := CreateDevice(f, DeviceConfig{Endpoint: "x:1"})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	bdev, err := CreateDevice(f, DeviceConfig{Endpoint: "y:1"})
	if err != nil {
		t.Fatal(err)
	}
	defer bdev.Close()
	src, err := a.AllocateMemRegion(64)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := bdev.AllocateMemRegion(64)
	if err != nil {
		t.Fatal(err)
	}
	src.Bytes()[0] = 42
	ch, err := a.GetChannel("y:1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.MemcpySync(0, src, 0, dst.Descriptor(), 64, 0 /* write */); err != nil {
		t.Fatal(err)
	}
	if dst.Bytes()[0] != 42 {
		t.Error("write through facade failed")
	}
}
