// Package core is the front door to the paper's primary contribution: the
// RDMA "device" communication library (§3.1–§3.3), the RDMA-aware graph
// analysis (§3.4), and the distributed data-flow runtime that ties them
// together (§4). It re-exports the public surface of the underlying
// packages so a user can work against one import, and provides the
// high-level TrainingSession convenience wrapper.
//
// Layering (bottom up):
//
//	rdma        device/fabric emulation: memory regions, QPs/CQs, one-sided
//	            verbs, static- and dynamic-placement tensor transfer
//	alloc       registered-memory arena allocation
//	graph       data-flow graphs, operators, autodiff
//	analyzer    partitioning + allocation-site tracing
//	exec        polling-async graph execution
//	distributed the parameter-server cluster with all four mechanisms
package core

import (
	"repro/internal/analyzer"
	"repro/internal/distributed"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/rdma"
	"repro/internal/tensor"
)

// Device-library surface (Table 1 of the paper).
type (
	// Fabric is the emulated RDMA network.
	Fabric = rdma.Fabric
	// Device is one emulated RDMA NIC.
	Device = rdma.Device
	// DeviceConfig parameterizes CreateDevice.
	DeviceConfig = rdma.Config
	// MemRegion is a registered memory region.
	MemRegion = rdma.MemRegion
	// Channel is a QP-backed connection to one peer.
	Channel = rdma.Channel
)

// NewFabric creates an emulated RDMA network.
func NewFabric() *Fabric { return rdma.NewFabric() }

// CreateDevice creates a device on the fabric (CreateRdmaDevice, Table 1).
func CreateDevice(f *Fabric, cfg DeviceConfig) (*Device, error) {
	return rdma.CreateDevice(f, cfg)
}

// Graph-building surface.
type (
	// GraphBuilder constructs data-flow graphs.
	GraphBuilder = graph.Builder
	// Node is one data-flow graph vertex.
	Node = graph.Node
	// Tensor is the dense tensor type.
	Tensor = tensor.Tensor
)

// NewGraphBuilder returns an empty graph builder.
func NewGraphBuilder() *GraphBuilder { return graph.NewBuilder() }

// Gradients extends a graph with reverse-mode gradient nodes.
func Gradients(b *GraphBuilder, loss *Node, targets []*Node) (map[*Node]*Node, error) {
	return graph.Gradients(b, loss, targets)
}

// Distributed-runtime surface.
type (
	// Mechanism selects the communication mechanism.
	Mechanism = distributed.Kind
	// Cluster is an in-process multi-server deployment.
	Cluster = distributed.Cluster
	// ClusterConfig parameterizes Launch.
	ClusterConfig = distributed.Config
	// EdgeSpec describes one cross-server tensor edge.
	EdgeSpec = analyzer.EdgeSpec
	// VarStore holds variables for single-server execution.
	VarStore = exec.VarStore
)

// The four evaluated mechanisms.
const (
	GRPCTCP  = distributed.GRPCTCP
	GRPCRDMA = distributed.GRPCRDMA
	RDMA     = distributed.RDMA
	RDMACopy = distributed.RDMACopy
)

// Launch partitions the graph and brings up one server per task.
func Launch(b *GraphBuilder, cfg ClusterConfig) (*Cluster, error) {
	return distributed.Launch(b, cfg)
}

// TrainingSession wraps a launched cluster with the bookkeeping a training
// loop needs (iteration counter, loss aggregation).
type TrainingSession struct {
	cluster *Cluster
	iter    int
}

// NewTrainingSession launches the graph and returns a session. Initialize
// variables with Cluster (via Session.Cluster) before stepping.
func NewTrainingSession(b *GraphBuilder, cfg ClusterConfig) (*TrainingSession, error) {
	cl, err := distributed.Launch(b, cfg)
	if err != nil {
		return nil, err
	}
	return &TrainingSession{cluster: cl}, nil
}

// Cluster exposes the underlying cluster (variable init, metrics, topology).
func (s *TrainingSession) Cluster() *Cluster { return s.cluster }

// Iteration returns the next iteration number Step will run.
func (s *TrainingSession) Iteration() int { return s.iter }

// Step runs one synchronous iteration and advances the counter.
func (s *TrainingSession) Step(feeds map[string]map[string]*Tensor,
	fetches map[string][]string) (map[string]map[string]*Tensor, error) {
	out, err := s.cluster.Step(s.iter, feeds, fetches)
	if err != nil {
		return nil, err
	}
	s.iter++
	return out, nil
}

// Close tears the cluster down.
func (s *TrainingSession) Close() { s.cluster.Close() }
