package data

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/tensor"
)

func TestPrefetcherOrder(t *testing.T) {
	gen := func(iter int) Batch {
		x := tensor.New(tensor.Int32, 1)
		x.Int32s()[0] = int32(iter)
		return Batch{"x": x}
	}
	p := NewPrefetcher(gen, 4)
	defer p.Close()
	for i := 0; i < 50; i++ {
		b, err := p.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got := b["x"].Int32s()[0]; got != int32(i) {
			t.Fatalf("batch %d delivered out of order: %d", i, got)
		}
	}
}

func TestPrefetcherOverlapsGeneration(t *testing.T) {
	const genDelay = 2 * time.Millisecond
	gen := func(iter int) Batch {
		time.Sleep(genDelay)
		return Batch{}
	}
	p := NewPrefetcher(gen, 8)
	defer p.Close()
	// Let the pipeline fill.
	time.Sleep(10 * genDelay)
	// Consuming buffered batches must be much faster than generating them.
	start := time.Now()
	for i := 0; i < 5; i++ {
		if _, err := p.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed := time.Since(start); elapsed > 4*genDelay {
		t.Errorf("consuming 5 prefetched batches took %v; pipeline not overlapping", elapsed)
	}
}

func TestPrefetcherClose(t *testing.T) {
	var produced atomic.Int64
	gen := func(iter int) Batch {
		produced.Add(1)
		return Batch{}
	}
	p := NewPrefetcher(gen, 2)
	if _, err := p.Next(); err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close() // idempotent
	if _, err := p.Next(); !errors.Is(err, ErrClosed) {
		t.Errorf("next after close: %v", err)
	}
	// The generator must have stopped (bounded production).
	n := produced.Load()
	time.Sleep(5 * time.Millisecond)
	if produced.Load() != n {
		t.Error("generator kept producing after Close")
	}
}

func TestPrefetcherDepthClamp(t *testing.T) {
	p := NewPrefetcher(func(int) Batch { return Batch{} }, 0)
	defer p.Close()
	if _, err := p.Next(); err != nil {
		t.Fatal(err)
	}
}
