// Package data provides the input pipeline for training runs: batch
// generators and a prefetcher that produces batches ahead of consumption on
// a background goroutine — the paper's convergence applications "load the
// sample data from local disk in parallel with the training process" (§5.2),
// and this is that overlap.
package data

import (
	"errors"
	"sync"

	"repro/internal/tensor"
)

// ErrClosed is returned by Next after Close.
var ErrClosed = errors.New("data: prefetcher closed")

// Batch is one iteration's placeholder bindings.
type Batch = map[string]*tensor.Tensor

// Generator produces the iter-th batch. It runs on the prefetcher's
// goroutine and must be self-contained (own its RNG).
type Generator func(iter int) Batch

// Prefetcher runs a Generator ahead of the consumer, keeping up to depth
// batches buffered.
type Prefetcher struct {
	ch   chan Batch
	stop chan struct{}
	wg   sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// NewPrefetcher starts prefetching with the given pipeline depth (≥1).
func NewPrefetcher(gen Generator, depth int) *Prefetcher {
	if depth < 1 {
		depth = 1
	}
	p := &Prefetcher{
		ch:   make(chan Batch, depth),
		stop: make(chan struct{}),
	}
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer close(p.ch)
		for iter := 0; ; iter++ {
			batch := gen(iter)
			select {
			case p.ch <- batch:
			case <-p.stop:
				return
			}
		}
	}()
	return p
}

// Next returns the next batch in order, blocking until one is ready.
func (p *Prefetcher) Next() (Batch, error) {
	b, ok := <-p.ch
	if !ok {
		return nil, ErrClosed
	}
	return b, nil
}

// Close stops the generator goroutine and drains the pipeline.
func (p *Prefetcher) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.stop)
	p.mu.Unlock()
	// Drain so the generator's pending send unblocks, then wait.
	for range p.ch {
	}
	p.wg.Wait()
}
