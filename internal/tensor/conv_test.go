package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestConv2DShape(t *testing.T) {
	s, err := Conv2DShape(Shape{2, 8, 8, 3}, Shape{16, 3, 3, 3}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(Shape{2, 8, 8, 16}) {
		t.Errorf("same-pad shape = %v", s)
	}
	s, err = Conv2DShape(Shape{1, 8, 8, 3}, Shape{4, 3, 3, 3}, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(Shape{1, 3, 3, 4}) {
		t.Errorf("strided shape = %v", s)
	}
	if _, err := Conv2DShape(Shape{1, 8, 8, 3}, Shape{4, 3, 3, 5}, 1, 0); err == nil {
		t.Error("channel mismatch accepted")
	}
	if _, err := Conv2DShape(Shape{1, 2, 2, 1}, Shape{1, 5, 5, 1}, 1, 0); err == nil {
		t.Error("empty output accepted")
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	// A 1x1 kernel with weight 1 copies the input channel.
	in := New(Float32, 1, 3, 3, 1)
	for i := range in.Float32s() {
		in.Float32s()[i] = float32(i)
	}
	filter := New(Float32, 1, 1, 1, 1)
	filter.Float32s()[0] = 1
	out := New(Float32, 1, 3, 3, 1)
	if err := Conv2D(out, in, filter, 1, 0); err != nil {
		t.Fatal(err)
	}
	if !out.AllClose(in, 0) {
		t.Error("1x1 identity conv should copy input")
	}
}

func TestConv2DKnownValues(t *testing.T) {
	// 2x2 all-ones kernel over a 3x3 ramp, stride 1, no padding.
	in := New(Float32, 1, 3, 3, 1)
	for i := range in.Float32s() {
		in.Float32s()[i] = float32(i + 1) // 1..9
	}
	filter := New(Float32, 1, 2, 2, 1)
	filter.Fill(1)
	out := New(Float32, 1, 2, 2, 1)
	if err := Conv2D(out, in, filter, 1, 0); err != nil {
		t.Fatal(err)
	}
	want := []float32{1 + 2 + 4 + 5, 2 + 3 + 5 + 6, 4 + 5 + 7 + 8, 5 + 6 + 8 + 9}
	for i, w := range want {
		if out.Float32s()[i] != w {
			t.Errorf("out[%d] = %v, want %v", i, out.Float32s()[i], w)
		}
	}
}

func TestConv2DGradNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := New(Float32, 1, 4, 4, 2)
	RandomUniform(in, rng, 1)
	filter := New(Float32, 3, 3, 3, 2)
	RandomUniform(filter, rng, 1)
	outShape, err := Conv2DShape(in.Shape(), filter.Shape(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := New(Float32, outShape...)
	dout := New(Float32, outShape...)
	dout.Fill(1)

	din := New(Float32, in.Shape()...)
	dfilter := New(Float32, filter.Shape()...)
	if err := Conv2DGrad(din, dfilter, dout, in, filter, 1, 1); err != nil {
		t.Fatal(err)
	}
	lossOf := func() float32 {
		if err := Conv2D(out, in, filter, 1, 1); err != nil {
			t.Fatal(err)
		}
		return Sum(out)
	}
	// Spot-check a few coordinates of both gradients.
	for _, i := range []int{0, 5, 17, 31} {
		ng := numericGrad(lossOf, in.Float32s(), i)
		if math.Abs(float64(ng-din.Float32s()[i])) > 5e-2 {
			t.Errorf("din[%d]: analytic %v numeric %v", i, din.Float32s()[i], ng)
		}
	}
	for _, i := range []int{0, 7, 23, 53} {
		ng := numericGrad(lossOf, filter.Float32s(), i)
		if math.Abs(float64(ng-dfilter.Float32s()[i])) > 5e-2 {
			t.Errorf("dfilter[%d]: analytic %v numeric %v", i, dfilter.Float32s()[i], ng)
		}
	}
}

func TestMaxPoolRoundTrip(t *testing.T) {
	in := New(Float32, 1, 4, 4, 1)
	for i := range in.Float32s() {
		in.Float32s()[i] = float32(i)
	}
	out := New(Float32, 1, 2, 2, 1)
	idx := New(Int32, 1, 2, 2, 1)
	if err := MaxPool2D(out, idx, in); err != nil {
		t.Fatal(err)
	}
	want := []float32{5, 7, 13, 15}
	for i, w := range want {
		if out.Float32s()[i] != w {
			t.Errorf("pool[%d] = %v, want %v", i, out.Float32s()[i], w)
		}
	}
	dout := New(Float32, 1, 2, 2, 1)
	dout.Fill(1)
	din := New(Float32, 1, 4, 4, 1)
	if err := MaxPool2DGrad(din, dout, idx); err != nil {
		t.Fatal(err)
	}
	var nz int
	for i, v := range din.Float32s() {
		if v != 0 {
			nz++
			if in.Float32s()[i] != out.Float32s()[nz-1] {
				t.Errorf("gradient scattered to non-max position %d", i)
			}
		}
	}
	if nz != 4 {
		t.Errorf("expected 4 gradient positions, got %d", nz)
	}
}

func TestConvShapeErrors(t *testing.T) {
	in := New(Float32, 1, 4, 4, 1)
	filter := New(Float32, 2, 3, 3, 1)
	bad := New(Float32, 1, 4, 4, 7)
	if err := Conv2D(bad, in, filter, 1, 1); err == nil {
		t.Error("wrong out shape accepted")
	}
	if err := Conv2DGrad(New(Float32, 2, 2, 2, 2), nil, New(Float32, 1, 4, 4, 2), in, filter, 1, 1); err == nil {
		t.Error("wrong din shape accepted")
	}
	if err := MaxPool2D(New(Float32, 1, 2, 2, 1), New(Int32, 1, 2, 2, 2), in); err == nil {
		t.Error("wrong idx shape accepted")
	}
}

func BenchmarkConv2DSmall(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := New(Float32, 4, 16, 16, 8)
	RandomUniform(in, rng, 1)
	filter := New(Float32, 16, 3, 3, 8)
	RandomUniform(filter, rng, 1)
	shape, _ := Conv2DShape(in.Shape(), filter.Shape(), 1, 1)
	out := New(Float32, shape...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Conv2D(out, in, filter, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}
