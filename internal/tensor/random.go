package tensor

import (
	"math"
	"math/rand"
)

// RandomUniform fills a float32 tensor with values drawn uniformly from
// [-scale, scale) using the provided source (deterministic given a seed).
func RandomUniform(t *Tensor, rng *rand.Rand, scale float32) {
	v := t.Float32s()
	for i := range v {
		v[i] = (rng.Float32()*2 - 1) * scale
	}
}

// GlorotInit fills a weight tensor with the Glorot/Xavier uniform
// initialization based on the tensor's fan-in and fan-out.
func GlorotInit(t *Tensor, rng *rand.Rand) {
	fanIn := t.shape.Outer()
	fanOut := t.shape.Inner()
	if t.shape.Rank() == 2 {
		fanIn = t.shape[0]
	}
	limit := float32(math.Sqrt(6 / float64(fanIn+fanOut)))
	RandomUniform(t, rng, limit)
}

// RandomNormal fills a float32 tensor with N(0, stddev²) samples.
func RandomNormal(t *Tensor, rng *rand.Rand, stddev float32) {
	v := t.Float32s()
	for i := range v {
		v[i] = float32(rng.NormFloat64()) * stddev
	}
}

// RandomLabels fills an int32 tensor with labels drawn from [0, classes).
func RandomLabels(t *Tensor, rng *rand.Rand, classes int) {
	v := t.Int32s()
	for i := range v {
		v[i] = int32(rng.Intn(classes))
	}
}
