package tensor

import (
	"fmt"
	"math"
)

// Neural-network activation and loss kernels, with the backward forms needed
// for end-to-end SGD training in the convergence experiments (Figure 10).

// Sigmoid computes dst = σ(src) element-wise; dst may alias src.
func Sigmoid(dst, src *Tensor) error {
	return mapUnary(dst, src, func(x float32) float32 {
		return float32(1 / (1 + math.Exp(-float64(x))))
	})
}

// SigmoidGrad computes dx = dy * y * (1-y), where y is the sigmoid output.
func SigmoidGrad(dx, dy, y *Tensor) error {
	return zip3(dx, dy, y, func(g, v float32) float32 { return g * v * (1 - v) })
}

// ReLU computes dst = max(src, 0) element-wise.
func ReLU(dst, src *Tensor) error {
	return mapUnary(dst, src, func(x float32) float32 {
		if x > 0 {
			return x
		}
		return 0
	})
}

// ReLUGrad computes dx = dy where y>0 else 0, with y the ReLU output.
func ReLUGrad(dx, dy, y *Tensor) error {
	return zip3(dx, dy, y, func(g, v float32) float32 {
		if v > 0 {
			return g
		}
		return 0
	})
}

// Tanh computes dst = tanh(src) element-wise.
func Tanh(dst, src *Tensor) error {
	return mapUnary(dst, src, func(x float32) float32 {
		return float32(math.Tanh(float64(x)))
	})
}

// TanhGrad computes dx = dy * (1 - y²), with y the tanh output.
func TanhGrad(dx, dy, y *Tensor) error {
	return zip3(dx, dy, y, func(g, v float32) float32 { return g * (1 - v*v) })
}

func mapUnary(dst, src *Tensor, f func(float32) float32) error {
	if !dst.shape.Equal(src.shape) {
		return fmt.Errorf("tensor: unary map %v -> %v: %w", src.shape, dst.shape, ErrShape)
	}
	sv, dv := src.Float32s(), dst.Float32s()
	if len(dv) >= minParElems {
		pfor(len(dv), elemGrain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				dv[i] = f(sv[i])
			}
		})
		return nil
	}
	for i := range dv {
		dv[i] = f(sv[i])
	}
	return nil
}

func zip3(dst, a, b *Tensor, f func(x, y float32) float32) error {
	if !a.shape.Equal(b.shape) || !dst.shape.Equal(a.shape) {
		return fmt.Errorf("tensor: zip3 %v, %v -> %v: %w", a.shape, b.shape, dst.shape, ErrShape)
	}
	av, bv, dv := a.Float32s(), b.Float32s(), dst.Float32s()
	if len(dv) >= minParElems {
		pfor(len(dv), elemGrain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				dv[i] = f(av[i], bv[i])
			}
		})
		return nil
	}
	for i := range dv {
		dv[i] = f(av[i], bv[i])
	}
	return nil
}

// Softmax computes a row-wise softmax of logits:[m,n] into dst:[m,n],
// numerically stabilized by subtracting the row maximum.
func Softmax(dst, logits *Tensor) error {
	if !dst.shape.Equal(logits.shape) {
		return fmt.Errorf("tensor: softmax %v -> %v: %w", logits.shape, dst.shape, ErrShape)
	}
	n := logits.shape.Inner()
	lv, dv := logits.Float32s(), dst.Float32s()
	rows := len(lv) / n
	softmaxRows := func(lo, hi int) {
		for r := lo; r < hi; r++ {
			row, out := lv[r*n:(r+1)*n], dv[r*n:(r+1)*n]
			maxv := row[0]
			for _, x := range row[1:] {
				if x > maxv {
					maxv = x
				}
			}
			var sum float64
			for j, x := range row {
				e := math.Exp(float64(x - maxv))
				out[j] = float32(e)
				sum += e
			}
			inv := float32(1 / sum)
			for j := range out {
				out[j] *= inv
			}
		}
	}
	if len(lv) >= minParElems && rows > 1 {
		pfor(rows, rowGrain(rows), softmaxRows)
	} else {
		softmaxRows(0, rows)
	}
	return nil
}

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits:[m,n]
// against integer labels:[m] (Int32) and writes softmax probabilities into
// probs (which the backward pass consumes). It returns the scalar loss.
func SoftmaxCrossEntropy(probs, logits, labels *Tensor) (float32, error) {
	if err := Softmax(probs, logits); err != nil {
		return 0, err
	}
	if labels.dtype != Int32 {
		return 0, fmt.Errorf("tensor: labels must be int32, got %v", labels.dtype)
	}
	m, n := logits.shape.Outer(), logits.shape.Inner()
	if labels.NumElements() != m {
		return 0, fmt.Errorf("tensor: %d labels for %d rows: %w", labels.NumElements(), m, ErrShape)
	}
	pv, lab := probs.Float32s(), labels.Int32s()
	var loss float64
	for i := 0; i < m; i++ {
		y := int(lab[i])
		if y < 0 || y >= n {
			return 0, fmt.Errorf("tensor: label %d out of range [0,%d)", y, n)
		}
		p := float64(pv[i*n+y])
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
	}
	return float32(loss / float64(m)), nil
}

// SoftmaxCrossEntropyGrad computes dlogits = (probs - onehot(labels)) / m,
// the gradient of the mean cross-entropy loss.
func SoftmaxCrossEntropyGrad(dlogits, probs, labels *Tensor) error {
	if !dlogits.shape.Equal(probs.shape) {
		return fmt.Errorf("tensor: xent grad %v -> %v: %w", probs.shape, dlogits.shape, ErrShape)
	}
	m, n := probs.shape.Outer(), probs.shape.Inner()
	pv, dv, lab := probs.Float32s(), dlogits.Float32s(), labels.Int32s()
	inv := float32(1) / float32(m)
	gradRows := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row, out := pv[i*n:(i+1)*n], dv[i*n:(i+1)*n]
			for j := range out {
				out[j] = row[j] * inv
			}
			out[lab[i]] -= inv
		}
	}
	if m*n >= minParElems && m > 1 {
		pfor(m, rowGrain(m), gradRows)
	} else {
		gradRows(0, m)
	}
	return nil
}

// MSE returns the mean squared error between pred and target, and if dpred
// is non-nil writes the gradient 2*(pred-target)/n into it.
func MSE(dpred, pred, target *Tensor) (float32, error) {
	if !pred.shape.Equal(target.shape) {
		return 0, fmt.Errorf("tensor: mse %v vs %v: %w", pred.shape, target.shape, ErrShape)
	}
	pv, tv := pred.Float32s(), target.Float32s()
	n := float64(len(pv))
	var sum float64
	for i := range pv {
		d := float64(pv[i] - tv[i])
		sum += d * d
	}
	if dpred != nil {
		dv := dpred.Float32s()
		scale := float32(2 / n)
		for i := range dv {
			dv[i] = scale * (pv[i] - tv[i])
		}
	}
	return float32(sum / n), nil
}
