package tensor

import (
	"fmt"
	"unsafe"
)

// Element views reinterpret the tensor's byte storage as typed slices
// without copying. This is deliberate: zero-copy transfer (§3.2) requires
// that a tensor's numeric storage and its wire bytes be the same memory, so
// conversion at the transfer boundary is exactly the copy the paper
// eliminates. unsafe is confined to this file; every view checks alignment
// and length before converting. The host is assumed little-endian (the
// fabric emulator never crosses endianness domains).

// Float32s returns the payload viewed as []float32. It panics if the dtype
// is not Float32 or the storage is misaligned.
func (t *Tensor) Float32s() []float32 {
	t.check(Float32, 4)
	if len(t.data) == 0 {
		return nil
	}
	return unsafe.Slice((*float32)(unsafe.Pointer(&t.data[0])), len(t.data)/4)
}

// Float64s returns the payload viewed as []float64.
func (t *Tensor) Float64s() []float64 {
	t.check(Float64, 8)
	if len(t.data) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&t.data[0])), len(t.data)/8)
}

// Int32s returns the payload viewed as []int32.
func (t *Tensor) Int32s() []int32 {
	t.check(Int32, 4)
	if len(t.data) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&t.data[0])), len(t.data)/4)
}

// Int64s returns the payload viewed as []int64.
func (t *Tensor) Int64s() []int64 {
	t.check(Int64, 8)
	if len(t.data) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&t.data[0])), len(t.data)/8)
}

// Uint8s returns the payload viewed as []uint8.
func (t *Tensor) Uint8s() []uint8 {
	t.check(Uint8, 1)
	return t.data
}

func (t *Tensor) check(want DType, align uintptr) {
	if t.dtype != want {
		panic(fmt.Sprintf("tensor: %v view of %v tensor", want, t.dtype))
	}
	if len(t.data) == 0 {
		return
	}
	if uintptr(unsafe.Pointer(&t.data[0]))%align != 0 {
		panic(fmt.Sprintf("tensor: storage misaligned for %v view", want))
	}
}
