// Package tensor provides the dense multi-dimensional tensor type used
// throughout the runtime, together with the math kernels needed for
// deep-learning training.
//
// A Tensor is a shape plus a flat byte buffer. The byte buffer may be owned
// by the Go heap or may alias an RDMA-registered memory region; in the
// latter case the tensor's storage is simultaneously the wire representation,
// which is what makes zero-copy cross-machine transfer possible (§3.2 of the
// paper). Element views over the byte buffer are provided for the numeric
// kernels.
package tensor

import "fmt"

// DType identifies the element type of a tensor.
type DType uint8

// Supported element types. Float32 is the primary training type, matching
// the paper's benchmarks; the integer types carry labels and token ids.
const (
	Invalid DType = iota
	Float32
	Float64
	Int32
	Int64
	Uint8
)

// Size returns the width of one element in bytes.
func (d DType) Size() int {
	switch d {
	case Float32, Int32:
		return 4
	case Float64, Int64:
		return 8
	case Uint8:
		return 1
	default:
		return 0
	}
}

// Valid reports whether d is one of the supported element types.
func (d DType) Valid() bool { return d > Invalid && d <= Uint8 }

func (d DType) String() string {
	switch d {
	case Float32:
		return "float32"
	case Float64:
		return "float64"
	case Int32:
		return "int32"
	case Int64:
		return "int64"
	case Uint8:
		return "uint8"
	default:
		return fmt.Sprintf("invalid(%d)", uint8(d))
	}
}
