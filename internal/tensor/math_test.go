package tensor

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// naiveMatMul is the reference implementation used to validate the blocked
// kernels.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Shape()[0], a.Shape()[1], b.Shape()[1]
	c := New(Float32, m, n)
	av, bv, cv := a.Float32s(), b.Float32s(), c.Float32s()
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += av[i*k+p] * bv[p*n+j]
			}
			cv[i*n+j] = s
		}
	}
	return c
}

func randMat(rng *rand.Rand, m, n int) *Tensor {
	t := New(Float32, m, n)
	RandomUniform(t, rng, 1)
	return t
}

func TestMatMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		m, k, n := rng.Intn(12)+1, rng.Intn(12)+1, rng.Intn(12)+1
		a, b := randMat(rng, m, k), randMat(rng, k, n)
		c := New(Float32, m, n)
		if err := MatMul(c, a, b); err != nil {
			t.Fatal(err)
		}
		if !c.AllClose(naiveMatMul(a, b), 1e-4) {
			t.Fatalf("MatMul mismatch at m=%d k=%d n=%d", m, k, n)
		}
	}
}

func TestMatMulTransposes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m, k, n := 5, 7, 3
	a, b := randMat(rng, m, k), randMat(rng, k, n)
	want := naiveMatMul(a, b)

	// aT:[k,m]: MatMulTransA(c, aT, b) == a@b.
	aT := New(Float32, k, m)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			aT.Float32s()[p*m+i] = a.Float32s()[i*k+p]
		}
	}
	c1 := New(Float32, m, n)
	if err := MatMulTransA(c1, aT, b); err != nil {
		t.Fatal(err)
	}
	if !c1.AllClose(want, 1e-4) {
		t.Error("MatMulTransA mismatch")
	}

	// bT:[n,k]: MatMulTransB(c, a, bT) == a@b.
	bT := New(Float32, n, k)
	for p := 0; p < k; p++ {
		for j := 0; j < n; j++ {
			bT.Float32s()[j*k+p] = b.Float32s()[p*n+j]
		}
	}
	c2 := New(Float32, m, n)
	if err := MatMulTransB(c2, a, bT); err != nil {
		t.Fatal(err)
	}
	if !c2.AllClose(want, 1e-4) {
		t.Error("MatMulTransB mismatch")
	}
}

func TestMatMulShapeErrors(t *testing.T) {
	a, b := New(Float32, 2, 3), New(Float32, 4, 5)
	c := New(Float32, 2, 5)
	if err := MatMul(c, a, b); !errors.Is(err, ErrShape) {
		t.Errorf("inner mismatch: %v", err)
	}
	if err := MatMul(New(Float32, 3, 5), New(Float32, 2, 4), New(Float32, 4, 5)); !errors.Is(err, ErrShape) {
		t.Errorf("out mismatch: %v", err)
	}
	if err := MatMul(c, New(Int32, 2, 3), b); err == nil {
		t.Error("int32 matmul accepted")
	}
	if err := MatMulTransA(c, New(Float32, 3, 3), b); !errors.Is(err, ErrShape) {
		t.Error("TransA shape mismatch accepted")
	}
	if err := MatMulTransB(c, a, New(Float32, 5, 9)); !errors.Is(err, ErrShape) {
		t.Error("TransB shape mismatch accepted")
	}
}

func TestElementwise(t *testing.T) {
	a, _ := FromFloat32(Shape{4}, []float32{1, 2, 3, 4})
	b, _ := FromFloat32(Shape{4}, []float32{10, 20, 30, 40})
	d := New(Float32, 4)
	if err := Add(d, a, b); err != nil {
		t.Fatal(err)
	}
	if d.Float32s()[2] != 33 {
		t.Error("Add wrong")
	}
	if err := Sub(d, b, a); err != nil {
		t.Fatal(err)
	}
	if d.Float32s()[0] != 9 {
		t.Error("Sub wrong")
	}
	if err := Mul(d, a, b); err != nil {
		t.Fatal(err)
	}
	if d.Float32s()[3] != 160 {
		t.Error("Mul wrong")
	}
	// Aliasing: dst == a.
	if err := Add(a, a, b); err != nil {
		t.Fatal(err)
	}
	if a.Float32s()[0] != 11 {
		t.Error("aliased Add wrong")
	}
	if err := Add(d, a, New(Float32, 3)); !errors.Is(err, ErrShape) {
		t.Error("shape mismatch accepted")
	}
}

func TestAxpyScale(t *testing.T) {
	x, _ := FromFloat32(Shape{3}, []float32{1, 2, 3})
	y, _ := FromFloat32(Shape{3}, []float32{10, 10, 10})
	if err := Axpy(-2, x, y); err != nil {
		t.Fatal(err)
	}
	want := []float32{8, 6, 4}
	for i, w := range want {
		if y.Float32s()[i] != w {
			t.Errorf("axpy[%d] = %v, want %v", i, y.Float32s()[i], w)
		}
	}
	Scale(0.5, y)
	if y.Float32s()[0] != 4 {
		t.Error("Scale wrong")
	}
	if err := Axpy(1, New(Float32, 2), y); !errors.Is(err, ErrShape) {
		t.Error("axpy shape mismatch accepted")
	}
}

func TestBias(t *testing.T) {
	a, _ := FromFloat32(Shape{2, 3}, []float32{0, 0, 0, 1, 1, 1})
	b, _ := FromFloat32(Shape{3}, []float32{5, 6, 7})
	if err := AddBias(a, b); err != nil {
		t.Fatal(err)
	}
	if a.Float32s()[0] != 5 || a.Float32s()[5] != 8 {
		t.Errorf("AddBias wrong: %v", a.Float32s())
	}
	db := New(Float32, 3)
	grad, _ := FromFloat32(Shape{2, 3}, []float32{1, 2, 3, 4, 5, 6})
	if err := BiasGrad(db, grad); err != nil {
		t.Fatal(err)
	}
	if db.Float32s()[0] != 5 || db.Float32s()[2] != 9 {
		t.Errorf("BiasGrad wrong: %v", db.Float32s())
	}
	if err := AddBias(a, New(Float32, 4)); !errors.Is(err, ErrShape) {
		t.Error("bias width mismatch accepted")
	}
}

func TestReductions(t *testing.T) {
	x, _ := FromFloat32(Shape{5}, []float32{-3, 7, 2, -8, 7})
	if ReduceMax(x) != 7 {
		t.Error("ReduceMax wrong")
	}
	if Sum(x) != 5 {
		t.Error("Sum wrong")
	}
	empty := New(Float32, 0)
	if !math.IsInf(float64(ReduceMax(empty)), -1) {
		t.Error("ReduceMax of empty should be -Inf")
	}
	d, err := Dot(x, x)
	if err != nil {
		t.Fatal(err)
	}
	if d != 9+49+4+64+49 {
		t.Errorf("Dot = %v", d)
	}
	if _, err := Dot(x, empty); !errors.Is(err, ErrShape) {
		t.Error("Dot shape mismatch accepted")
	}
	n := L2Norm(x)
	if math.Abs(float64(n)-math.Sqrt(175)) > 1e-5 {
		t.Errorf("L2Norm = %v", n)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a, bb := randMat(rng, 128, 128), randMat(rng, 128, 128)
	c := New(Float32, 128, 128)
	b.SetBytes(128 * 128 * 128 * 2 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := MatMul(c, a, bb); err != nil {
			b.Fatal(err)
		}
	}
}
