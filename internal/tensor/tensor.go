package tensor

import (
	"errors"
	"fmt"
)

// Tensor is a dense multi-dimensional array. Its storage is a flat byte
// slice in little-endian element order; the slice may be heap memory or may
// alias an RDMA-registered memory region supplied by the caller.
type Tensor struct {
	dtype DType
	shape Shape
	data  []byte
}

// ErrShape is wrapped by errors reporting shape mismatches.
var ErrShape = errors.New("tensor: shape mismatch")

// New allocates a zero-filled tensor on the Go heap.
func New(dt DType, shape ...int) *Tensor {
	s := Shape(shape).Clone()
	if !s.Valid() || !dt.Valid() {
		panic(fmt.Sprintf("tensor.New: invalid dtype %v or shape %v", dt, s))
	}
	return &Tensor{dtype: dt, shape: s, data: make([]byte, s.NumElements()*dt.Size())}
}

// FromBytes wraps an existing byte buffer as a tensor without copying. The
// buffer must be exactly NumElements*dtype.Size() bytes and, for numeric
// dtypes, aligned to the element size (RDMA region allocations guarantee
// 8-byte alignment). The caller retains ownership of the buffer's lifetime.
func FromBytes(dt DType, shape Shape, buf []byte) (*Tensor, error) {
	if !dt.Valid() || !shape.Valid() {
		return nil, fmt.Errorf("tensor: invalid dtype %v or shape %v", dt, shape)
	}
	want := shape.NumElements() * dt.Size()
	if len(buf) != want {
		return nil, fmt.Errorf("tensor: buffer is %d bytes, shape %v dtype %v needs %d: %w",
			len(buf), shape, dt, want, ErrShape)
	}
	return &Tensor{dtype: dt, shape: shape.Clone(), data: buf}, nil
}

// FromFloat32 builds a float32 tensor with the given contents (copied).
func FromFloat32(shape Shape, vals []float32) (*Tensor, error) {
	if shape.NumElements() != len(vals) {
		return nil, fmt.Errorf("tensor: %d values for shape %v: %w", len(vals), shape, ErrShape)
	}
	t := New(Float32, shape...)
	copy(t.Float32s(), vals)
	return t, nil
}

// DType returns the element type.
func (t *Tensor) DType() DType { return t.dtype }

// Shape returns the tensor's shape. Callers must not mutate it.
func (t *Tensor) Shape() Shape { return t.shape }

// NumElements returns the total element count.
func (t *Tensor) NumElements() int { return t.shape.NumElements() }

// ByteSize returns the size of the payload in bytes.
func (t *Tensor) ByteSize() int { return len(t.data) }

// Bytes returns the tensor's backing storage. The returned slice aliases the
// tensor: writes through it are visible to element views and vice versa.
// This is the zero-copy seam — when storage lives in a registered memory
// region, Bytes is what the RDMA device transfers directly.
func (t *Tensor) Bytes() []byte { return t.data }

// Clone returns a deep copy with heap-owned storage.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{dtype: t.dtype, shape: t.shape.Clone(), data: make([]byte, len(t.data))}
	copy(c.data, t.data)
	return c
}

// CopyFrom copies src's payload into t. Shapes and dtypes must match.
func (t *Tensor) CopyFrom(src *Tensor) error {
	if t.dtype != src.dtype || !t.shape.Equal(src.shape) {
		return fmt.Errorf("tensor: copy %v%v into %v%v: %w",
			src.dtype, src.shape, t.dtype, t.shape, ErrShape)
	}
	copy(t.data, src.data)
	return nil
}

// Reshape returns a tensor sharing t's storage with a new shape of equal
// element count.
func (t *Tensor) Reshape(shape ...int) (*Tensor, error) {
	s := Shape(shape)
	if s.NumElements() != t.NumElements() || !s.Valid() {
		return nil, fmt.Errorf("tensor: reshape %v to %v: %w", t.shape, s, ErrShape)
	}
	return &Tensor{dtype: t.dtype, shape: s.Clone(), data: t.data}, nil
}

// SharesStorage reports whether t and o are views of the same backing
// buffer (e.g. one is a Reshape of the other). Views in this codebase always
// cover the full buffer, so comparing the first byte's address suffices.
func (t *Tensor) SharesStorage(o *Tensor) bool {
	return len(t.data) > 0 && len(o.data) > 0 && &t.data[0] == &o.data[0]
}

// Zero clears the payload.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element of a float32 tensor to v.
func (t *Tensor) Fill(v float32) {
	f := t.Float32s()
	for i := range f {
		f[i] = v
	}
}

func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor<%v%v, %dB>", t.dtype, t.shape, len(t.data))
}

// Equal reports exact element-wise equality (dtype, shape and payload).
func (t *Tensor) Equal(o *Tensor) bool {
	if t.dtype != o.dtype || !t.shape.Equal(o.shape) || len(t.data) != len(o.data) {
		return false
	}
	for i := range t.data {
		if t.data[i] != o.data[i] {
			return false
		}
	}
	return true
}

// AllClose reports element-wise closeness of two float32 tensors within tol.
func (t *Tensor) AllClose(o *Tensor, tol float32) bool {
	if t.dtype != Float32 || o.dtype != Float32 || !t.shape.Equal(o.shape) {
		return false
	}
	a, b := t.Float32s(), o.Float32s()
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > tol {
			return false
		}
	}
	return true
}
