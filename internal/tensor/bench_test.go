package tensor

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/parallel"
)

// Kernel microbenchmarks (scripts/bench.sh → BENCH_kernels.json). Three
// variants per kernel:
//
//	seed     — the pre-optimisation kernel this PR replaced, for an honest
//	           like-for-like speedup figure;
//	serial   — the new kernel pinned to 1 worker;
//	parallel — the new kernel on a 4-worker pool.
//
// On a single-core machine serial ≈ parallel and the speedup over seed comes
// from cache blocking and im2col alone; bench.sh records runtime.NumCPU so
// the numbers are interpretable.

// seedMatMul is the kernel MatMul shipped with before this PR: i-k-j axpy
// with a zero-skip, no register blocking, no parallelism.
func seedMatMul(c, a, b *Tensor) {
	m, k := a.Shape()[0], a.Shape()[1]
	n := b.Shape()[1]
	av, bv, cv := a.Float32s(), b.Float32s(), c.Float32s()
	for i := range cv {
		cv[i] = 0
	}
	for i := 0; i < m; i++ {
		arow := av[i*k : (i+1)*k]
		crow := cv[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			aip := arow[p]
			if aip == 0 {
				continue
			}
			brow := bv[p*n : (p+1)*n]
			for j := range crow {
				crow[j] += aip * brow[j]
			}
		}
	}
}

// seedConv2D is the direct 7-loop convolution shipped with before this PR.
func seedConv2D(out, in, filter *Tensor, stride, pad int) {
	n, h, w, ci := in.Shape()[0], in.Shape()[1], in.Shape()[2], in.Shape()[3]
	co, kh, kw := filter.Shape()[0], filter.Shape()[1], filter.Shape()[2]
	oh, ow := out.Shape()[1], out.Shape()[2]
	iv, fv, ov := in.Float32s(), filter.Float32s(), out.Float32s()
	for i := range ov {
		ov[i] = 0
	}
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				outBase := ((b*oh+oy)*ow + ox) * co
				for ky := 0; ky < kh; ky++ {
					iy := oy*stride + ky - pad
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < kw; kx++ {
						ix := ox*stride + kx - pad
						if ix < 0 || ix >= w {
							continue
						}
						inBase := ((b*h+iy)*w + ix) * ci
						for f := 0; f < co; f++ {
							fBase := ((f*kh+ky)*kw + kx) * ci
							var sum float32
							for c := 0; c < ci; c++ {
								sum += iv[inBase+c] * fv[fBase+c]
							}
							ov[outBase+f] += sum
						}
					}
				}
			}
		}
	}
}

func withWorkers(b *testing.B, n int, fn func()) {
	b.Helper()
	orig := parallel.Workers()
	parallel.SetWorkers(n)
	defer parallel.SetWorkers(orig)
	b.ResetTimer()
	fn()
}

func BenchmarkMatMul(b *testing.B) {
	for _, size := range []int{128, 512} {
		rng := rand.New(rand.NewSource(9))
		x, y := randMat(rng, size, size), randMat(rng, size, size)
		c := New(Float32, size, size)
		flops := 2 * int64(size) * int64(size) * int64(size)
		b.Run(fmt.Sprintf("%dx%dx%d/seed", size, size, size), func(b *testing.B) {
			b.SetBytes(flops)
			for i := 0; i < b.N; i++ {
				seedMatMul(c, x, y)
			}
		})
		b.Run(fmt.Sprintf("%dx%dx%d/serial", size, size, size), func(b *testing.B) {
			b.SetBytes(flops)
			withWorkers(b, 1, func() {
				for i := 0; i < b.N; i++ {
					if err := MatMul(c, x, y); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
		b.Run(fmt.Sprintf("%dx%dx%d/parallel", size, size, size), func(b *testing.B) {
			b.SetBytes(flops)
			withWorkers(b, 4, func() {
				for i := 0; i < b.N; i++ {
					if err := MatMul(c, x, y); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

func BenchmarkConv2D(b *testing.B) {
	// The two LeNet convolution shapes from the convergence experiment.
	cases := []struct {
		name                                 string
		n, h, w, ci, co, kh, kw, stride, pad int
	}{
		{"lenet-c1", 32, 28, 28, 1, 6, 5, 5, 1, 2},
		{"lenet-c3", 32, 14, 14, 6, 16, 5, 5, 1, 0},
	}
	for _, cc := range cases {
		rng := rand.New(rand.NewSource(10))
		in := New(Float32, cc.n, cc.h, cc.w, cc.ci)
		filter := New(Float32, cc.co, cc.kh, cc.kw, cc.ci)
		RandomUniform(in, rng, 1)
		RandomUniform(filter, rng, 1)
		shape, err := Conv2DShape(in.Shape(), filter.Shape(), cc.stride, cc.pad)
		if err != nil {
			b.Fatal(err)
		}
		out := New(Float32, shape...)
		b.Run(cc.name+"/seed", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				seedConv2D(out, in, filter, cc.stride, cc.pad)
			}
		})
		b.Run(cc.name+"/serial", func(b *testing.B) {
			withWorkers(b, 1, func() {
				for i := 0; i < b.N; i++ {
					if err := Conv2D(out, in, filter, cc.stride, cc.pad); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
		b.Run(cc.name+"/parallel", func(b *testing.B) {
			withWorkers(b, 4, func() {
				for i := 0; i < b.N; i++ {
					if err := Conv2D(out, in, filter, cc.stride, cc.pad); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

func BenchmarkConv2DGrad(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	in := New(Float32, 32, 14, 14, 6)
	filter := New(Float32, 16, 5, 5, 6)
	RandomUniform(in, rng, 1)
	RandomUniform(filter, rng, 1)
	shape, err := Conv2DShape(in.Shape(), filter.Shape(), 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	dout := New(Float32, shape...)
	RandomUniform(dout, rng, 1)
	din := New(Float32, in.Shape()...)
	dfilter := New(Float32, filter.Shape()...)
	b.Run("lenet-c3/serial", func(b *testing.B) {
		withWorkers(b, 1, func() {
			for i := 0; i < b.N; i++ {
				if err := Conv2DGrad(din, dfilter, dout, in, filter, 1, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	b.Run("lenet-c3/parallel", func(b *testing.B) {
		withWorkers(b, 4, func() {
			for i := 0; i < b.N; i++ {
				if err := Conv2DGrad(din, dfilter, dout, in, filter, 1, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

func BenchmarkSoftmax(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	logits := New(Float32, 256, 512)
	RandomUniform(logits, rng, 4)
	probs := New(Float32, 256, 512)
	b.Run("256x512/serial", func(b *testing.B) {
		withWorkers(b, 1, func() {
			for i := 0; i < b.N; i++ {
				if err := Softmax(probs, logits); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	b.Run("256x512/parallel", func(b *testing.B) {
		withWorkers(b, 4, func() {
			for i := 0; i < b.N; i++ {
				if err := Softmax(probs, logits); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}
