package tensor

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDTypeSizes(t *testing.T) {
	cases := []struct {
		dt   DType
		size int
	}{
		{Float32, 4}, {Float64, 8}, {Int32, 4}, {Int64, 8}, {Uint8, 1}, {Invalid, 0},
	}
	for _, c := range cases {
		if got := c.dt.Size(); got != c.size {
			t.Errorf("%v.Size() = %d, want %d", c.dt, got, c.size)
		}
	}
	if Invalid.Valid() {
		t.Error("Invalid.Valid() = true")
	}
	if !Float32.Valid() {
		t.Error("Float32.Valid() = false")
	}
}

func TestShapeBasics(t *testing.T) {
	s := Shape{2, 3, 4}
	if s.NumElements() != 24 {
		t.Errorf("NumElements = %d, want 24", s.NumElements())
	}
	if s.Rank() != 3 {
		t.Errorf("Rank = %d, want 3", s.Rank())
	}
	if s.Outer() != 6 || s.Inner() != 4 {
		t.Errorf("Outer/Inner = %d/%d, want 6/4", s.Outer(), s.Inner())
	}
	if !s.Equal(Shape{2, 3, 4}) || s.Equal(Shape{2, 3}) || s.Equal(Shape{2, 3, 5}) {
		t.Error("Equal misbehaves")
	}
	c := s.Clone()
	c[0] = 9
	if s[0] != 2 {
		t.Error("Clone aliases original")
	}
	var scalar Shape
	if scalar.NumElements() != 1 || scalar.Inner() != 1 || scalar.Outer() != 1 {
		t.Error("scalar shape should have one element")
	}
	bad := Shape{2, -1}
	if bad.Valid() || bad.NumElements() != 0 {
		t.Error("negative dims must be invalid")
	}
	if s.String() != "[2,3,4]" {
		t.Errorf("String = %q", s.String())
	}
}

func TestNewAndViews(t *testing.T) {
	x := New(Float32, 3, 5)
	if x.ByteSize() != 60 || x.NumElements() != 15 {
		t.Fatalf("size mismatch: %d bytes, %d elems", x.ByteSize(), x.NumElements())
	}
	f := x.Float32s()
	f[7] = 42
	if x.Bytes()[28] == 0 && x.Bytes()[29] == 0 && x.Bytes()[30] == 0 && x.Bytes()[31] == 0 {
		t.Error("view write not visible through Bytes")
	}
	y := New(Int32, 4)
	y.Int32s()[2] = -5
	if y.Int32s()[2] != -5 {
		t.Error("int32 view roundtrip failed")
	}
	u := New(Uint8, 3)
	u.Uint8s()[0] = 255
	if u.Bytes()[0] != 255 {
		t.Error("uint8 view should alias bytes")
	}
	i64 := New(Int64, 2)
	i64.Int64s()[1] = 1 << 40
	if i64.Int64s()[1] != 1<<40 {
		t.Error("int64 view roundtrip failed")
	}
	f64 := New(Float64, 2)
	f64.Float64s()[0] = 3.25
	if f64.Float64s()[0] != 3.25 {
		t.Error("float64 view roundtrip failed")
	}
}

func TestViewPanicsOnWrongDType(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong-dtype view")
		}
	}()
	New(Float32, 2).Int32s()
}

func TestFromBytes(t *testing.T) {
	buf := make([]byte, 24)
	x, err := FromBytes(Float32, Shape{2, 3}, buf)
	if err != nil {
		t.Fatal(err)
	}
	x.Float32s()[0] = 1.5
	if buf[0] == 0 && buf[1] == 0 && buf[2] == 0 && buf[3] == 0 {
		t.Error("FromBytes must alias the provided buffer")
	}
	if _, err := FromBytes(Float32, Shape{2, 3}, make([]byte, 10)); !errors.Is(err, ErrShape) {
		t.Errorf("short buffer: err = %v, want ErrShape", err)
	}
	if _, err := FromBytes(Invalid, Shape{2}, buf); err == nil {
		t.Error("invalid dtype accepted")
	}
}

func TestFromFloat32(t *testing.T) {
	x, err := FromFloat32(Shape{2, 2}, []float32{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if x.Float32s()[3] != 4 {
		t.Error("contents wrong")
	}
	if _, err := FromFloat32(Shape{3}, []float32{1}); !errors.Is(err, ErrShape) {
		t.Error("length mismatch should fail")
	}
}

func TestCloneCopyEqual(t *testing.T) {
	x, _ := FromFloat32(Shape{4}, []float32{1, 2, 3, 4})
	y := x.Clone()
	if !x.Equal(y) {
		t.Error("clone not equal")
	}
	y.Float32s()[0] = 99
	if x.Equal(y) || x.Float32s()[0] != 1 {
		t.Error("clone aliases source")
	}
	z := New(Float32, 4)
	if err := z.CopyFrom(x); err != nil {
		t.Fatal(err)
	}
	if !z.Equal(x) {
		t.Error("CopyFrom mismatch")
	}
	if err := z.CopyFrom(New(Float32, 5)); !errors.Is(err, ErrShape) {
		t.Error("shape mismatch copy should fail")
	}
	if err := z.CopyFrom(New(Int32, 4)); !errors.Is(err, ErrShape) {
		t.Error("dtype mismatch copy should fail")
	}
}

func TestReshape(t *testing.T) {
	x, _ := FromFloat32(Shape{2, 6}, make([]float32, 12))
	y, err := x.Reshape(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	y.Float32s()[11] = 7
	if x.Float32s()[11] != 7 {
		t.Error("reshape must share storage")
	}
	if _, err := x.Reshape(5); !errors.Is(err, ErrShape) {
		t.Error("bad reshape accepted")
	}
}

func TestZeroFillAllClose(t *testing.T) {
	x := New(Float32, 8)
	x.Fill(3)
	if Sum(x) != 24 {
		t.Errorf("Fill+Sum = %v, want 24", Sum(x))
	}
	x.Zero()
	if Sum(x) != 0 {
		t.Error("Zero failed")
	}
	a, _ := FromFloat32(Shape{2}, []float32{1, 2})
	b, _ := FromFloat32(Shape{2}, []float32{1.0005, 2})
	if !a.AllClose(b, 1e-3) || a.AllClose(b, 1e-5) {
		t.Error("AllClose tolerance misbehaves")
	}
}

// Property: Clone followed by Equal always holds, and mutating the clone
// never affects the source.
func TestCloneProperty(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			return true
		}
		x, err := FromFloat32(Shape{len(vals)}, vals)
		if err != nil {
			return false
		}
		y := x.Clone()
		if !x.Equal(y) {
			return false
		}
		y.Float32s()[0] += 1
		return x.Float32s()[0] == vals[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Reshape preserves element count and content bytes.
func TestReshapeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		m, n := rng.Intn(8)+1, rng.Intn(8)+1
		x := New(Float32, m, n)
		RandomUniform(x, rng, 1)
		y, err := x.Reshape(n, m)
		if err != nil {
			t.Fatal(err)
		}
		if y.NumElements() != x.NumElements() {
			t.Fatal("element count changed")
		}
		for j := range x.Bytes() {
			if x.Bytes()[j] != y.Bytes()[j] {
				t.Fatal("bytes differ after reshape")
			}
		}
	}
}
