package tensor

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/parallel"
)

// Parity properties for the parallel kernels (DESIGN.md §9): results must be
// bit-identical — not merely close — across worker counts and across the
// direct vs im2col convolution paths, including shapes straddling the
// im2colMinWork threshold.

func bitsEqual(t *testing.T, name string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s: element %d differs: %x vs %x (%g vs %g)",
				name, i, math.Float32bits(got[i]), math.Float32bits(want[i]), got[i], want[i])
		}
	}
}

// forEachWorkerCount runs fn at 1..4 workers on the shared pool, collecting
// the produced float32 slices, and asserts they are all bit-identical.
func forEachWorkerCount(t *testing.T, name string, fn func() []float32) {
	t.Helper()
	orig := parallel.Workers()
	defer parallel.SetWorkers(orig)
	var ref []float32
	for w := 1; w <= 4; w++ {
		parallel.SetWorkers(w)
		out := fn()
		if w == 1 {
			ref = append([]float32(nil), out...)
			continue
		}
		bitsEqual(t, name+"@workers="+string(rune('0'+w)), out, ref)
	}
}

func TestMatMulParityAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := [][3]int{
		{37, 53, 29},  // below minParFMA: serial on every pool
		{70, 67, 31},  // above: row-parallel
		{128, 96, 64}, // above, even dims
		{5, 1, 9},     // degenerate inner dim
	}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		a, b := randMat(rng, m, k), randMat(rng, k, n)
		aT := New(Float32, k, m)
		bT := New(Float32, n, k)
		for i := 0; i < m; i++ {
			for p := 0; p < k; p++ {
				aT.Float32s()[p*m+i] = a.Float32s()[i*k+p]
			}
		}
		for j := 0; j < n; j++ {
			for p := 0; p < k; p++ {
				bT.Float32s()[j*k+p] = b.Float32s()[p*n+j]
			}
		}
		c := New(Float32, m, n)
		forEachWorkerCount(t, "matmul", func() []float32 {
			if err := MatMul(c, a, b); err != nil {
				t.Fatal(err)
			}
			return c.Float32s()
		})
		forEachWorkerCount(t, "matmulTA", func() []float32 {
			if err := MatMulTransA(c, aT, b); err != nil {
				t.Fatal(err)
			}
			return c.Float32s()
		})
		forEachWorkerCount(t, "matmulTB", func() []float32 {
			if err := MatMulTransB(c, a, bT); err != nil {
				t.Fatal(err)
			}
			return c.Float32s()
		})
		want := naiveMatMul(a, b)
		if !c.AllClose(want, 1e-3) {
			t.Fatalf("matmulTB far from naive reference at %v", s)
		}
	}
}

// TestMatMulTransShapeValidation is the regression test for the transpose
// kernels skipping checkMat: rank or dtype mismatches must surface as
// ErrShape/type errors, never index panics.
func TestMatMulTransShapeValidation(t *testing.T) {
	vec := New(Float32, 6)        // rank 1
	mat := New(Float32, 2, 3)     // [2,3]
	out := New(Float32, 3, 3)     // [3,3]
	ints := New(Int32, 2, 3)      // wrong dtype
	bad3 := New(Float32, 2, 3, 1) // rank 3
	for name, err := range map[string]error{
		"TA vec a": MatMulTransA(out, vec, mat),
		"TA vec b": MatMulTransA(out, mat, vec),
		"TA vec c": MatMulTransA(vec, mat, mat),
		"TA rank3": MatMulTransA(out, bad3, mat),
		"TB vec a": MatMulTransB(out, vec, mat),
		"TB vec b": MatMulTransB(out, mat, vec),
		"TB vec c": MatMulTransB(vec, mat, mat),
		"TB rank3": MatMulTransB(out, bad3, mat),
	} {
		if err == nil {
			t.Fatalf("%s: want error, got nil", name)
		}
	}
	if err := MatMulTransA(New(Float32, 4, 4), mat, mat); !errors.Is(err, ErrShape) {
		t.Fatalf("TA dim mismatch: want ErrShape, got %v", err)
	}
	if err := MatMulTransB(New(Float32, 4, 4), mat, New(Float32, 5, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("TB dim mismatch: want ErrShape, got %v", err)
	}
	if err := MatMulTransA(out, ints, mat); err == nil {
		t.Fatal("TA int32 input: want error, got nil")
	}
	if err := MatMulTransB(out, ints, mat); err == nil {
		t.Fatal("TB int32 input: want error, got nil")
	}
}

type convCase struct {
	n, h, w, ci, co, kh, kw, stride, pad int
}

func (cc convCase) String() string {
	return Shape{cc.n, cc.h, cc.w, cc.ci}.String() + "⊛" + Shape{cc.co, cc.kh, cc.kw, cc.ci}.String()
}

var convCases = []convCase{
	{3, 7, 5, 3, 4, 3, 2, 2, 1},   // odd everything, below im2col threshold
	{5, 9, 9, 2, 3, 5, 5, 1, 2},   // above threshold, big kernel, same-pad
	{8, 14, 14, 4, 8, 3, 3, 1, 1}, // above threshold AND parallel batch
	{80, 5, 5, 2, 4, 3, 3, 1, 1},  // direct path AND parallel batch
	{2, 8, 6, 1, 2, 2, 2, 2, 0},   // no padding, stride 2
	{1, 11, 11, 3, 5, 4, 4, 3, 2}, // single sample, stride 3
}

func convOperands(t *testing.T, rng *rand.Rand, cc convCase) (in, filter, out, dout *Tensor) {
	t.Helper()
	in = New(Float32, cc.n, cc.h, cc.w, cc.ci)
	filter = New(Float32, cc.co, cc.kh, cc.kw, cc.ci)
	RandomUniform(in, rng, 1)
	RandomUniform(filter, rng, 1)
	shape, err := Conv2DShape(in.Shape(), filter.Shape(), cc.stride, cc.pad)
	if err != nil {
		t.Fatal(err)
	}
	out = New(Float32, shape...)
	dout = New(Float32, shape...)
	RandomUniform(dout, rng, 1)
	return in, filter, out, dout
}

func TestConv2DParityAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, cc := range convCases {
		in, filter, out, _ := convOperands(t, rng, cc)
		forEachWorkerCount(t, "conv2d "+cc.String(), func() []float32 {
			if err := Conv2D(out, in, filter, cc.stride, cc.pad); err != nil {
				t.Fatal(err)
			}
			return out.Float32s()
		})
	}
}

func TestConv2DGradParityAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, cc := range convCases {
		in, filter, _, dout := convOperands(t, rng, cc)
		din := New(Float32, in.Shape()...)
		dfilter := New(Float32, filter.Shape()...)
		forEachWorkerCount(t, "conv2dgrad din "+cc.String(), func() []float32 {
			if err := Conv2DGrad(din, dfilter, dout, in, filter, cc.stride, cc.pad); err != nil {
				t.Fatal(err)
			}
			return din.Float32s()
		})
		forEachWorkerCount(t, "conv2dgrad dfilter "+cc.String(), func() []float32 {
			if err := Conv2DGrad(din, dfilter, dout, in, filter, cc.stride, cc.pad); err != nil {
				t.Fatal(err)
			}
			return dfilter.Float32s()
		})
	}
}

// conv2DForced computes the forward convolution serially through exactly one
// of the two implementations, ignoring the im2colMinWork threshold.
func conv2DForced(out, in, filter *Tensor, stride, pad int, im2col bool) {
	g := convGeometry(in.Shape(), filter.Shape(), out.Shape()[1], out.Shape()[2], stride, pad)
	iv, fv, ov := in.Float32s(), filter.Float32s(), out.Float32s()
	for b := 0; b < g.n; b++ {
		ovb := ov[b*g.patches*g.co : (b+1)*g.patches*g.co]
		if im2col {
			patches := make([]float32, g.patches*g.patchLen)
			fillPatches(patches, iv, g, b)
			matMulTBRows(ovb, patches, fv, 0, g.patches, g.patchLen, g.co)
		} else {
			conv2DDirectSample(ovb, iv, fv, g, b)
		}
	}
}

// conv2DGradForced computes both gradients serially through one path.
func conv2DGradForced(din, dfilter, dout, in, filter *Tensor, stride, pad int, im2col bool) {
	g := convGeometry(in.Shape(), filter.Shape(), dout.Shape()[1], dout.Shape()[2], stride, pad)
	iv, fv, gv := in.Float32s(), filter.Float32s(), dout.Float32s()
	dinv, dfv := din.Float32s(), dfilter.Float32s()
	for i := range dinv {
		dinv[i] = 0
	}
	for b := 0; b < g.n; b++ {
		gvb := gv[b*g.patches*g.co : (b+1)*g.patches*g.co]
		if im2col {
			dpatches := make([]float32, g.patches*g.patchLen)
			matMulRows(dpatches, gvb, fv, 0, g.patches, g.co, g.patchLen)
			col2imAdd(dinv, dpatches, g, b)
		} else {
			convGradDinDirectSample(dinv, gvb, fv, g, b)
		}
	}
	for i := range dfv {
		dfv[i] = 0
	}
	chunks := (g.n + convChunkSamples - 1) / convChunkSamples
	for ci := 0; ci < chunks; ci++ {
		partial := make([]float32, g.co*g.patchLen)
		lo, hi := ci*convChunkSamples, (ci+1)*convChunkSamples
		if hi > g.n {
			hi = g.n
		}
		for b := lo; b < hi; b++ {
			gvb := gv[b*g.patches*g.co : (b+1)*g.patches*g.co]
			if im2col {
				patches := make([]float32, g.patches*g.patchLen)
				fillPatches(patches, iv, g, b)
				matMulTAAcc(partial, gvb, patches, 0, g.co, g.patches, g.co, g.patchLen)
			} else {
				convGradDfilterDirectSample(partial, gvb, iv, g, b)
			}
		}
		for i := range dfv {
			dfv[i] += partial[i]
		}
	}
}

// TestConvPathsBitIdentical pins the im2colMinWork threshold boundary: for
// every geometry — whichever side of the threshold it falls on — the direct
// and im2col implementations must agree bit for bit, so crossing the
// threshold can never change a result.
func TestConvPathsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for _, cc := range convCases {
		in, filter, out, dout := convOperands(t, rng, cc)
		direct := New(Float32, out.Shape()...)
		conv2DForced(out, in, filter, cc.stride, cc.pad, true)
		conv2DForced(direct, in, filter, cc.stride, cc.pad, false)
		bitsEqual(t, "conv2d paths "+cc.String(), out.Float32s(), direct.Float32s())

		dinA, dfA := New(Float32, in.Shape()...), New(Float32, filter.Shape()...)
		dinB, dfB := New(Float32, in.Shape()...), New(Float32, filter.Shape()...)
		conv2DGradForced(dinA, dfA, dout, in, filter, cc.stride, cc.pad, true)
		conv2DGradForced(dinB, dfB, dout, in, filter, cc.stride, cc.pad, false)
		bitsEqual(t, "conv2dgrad din paths "+cc.String(), dinA.Float32s(), dinB.Float32s())
		bitsEqual(t, "conv2dgrad dfilter paths "+cc.String(), dfA.Float32s(), dfB.Float32s())

		// And the public entry points must match the forced references.
		if err := Conv2D(out, in, filter, cc.stride, cc.pad); err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, "conv2d public "+cc.String(), out.Float32s(), direct.Float32s())
		din, df := New(Float32, in.Shape()...), New(Float32, filter.Shape()...)
		if err := Conv2DGrad(din, df, dout, in, filter, cc.stride, cc.pad); err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, "conv2dgrad public din "+cc.String(), din.Float32s(), dinA.Float32s())
		bitsEqual(t, "conv2dgrad public dfilter "+cc.String(), df.Float32s(), dfA.Float32s())
	}
}

func TestElementwiseParityAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	const big = 40000 // above minParElems
	a, b := New(Float32, big), New(Float32, big)
	RandomUniform(a, rng, 1)
	RandomUniform(b, rng, 1)
	dst := New(Float32, big)
	forEachWorkerCount(t, "add", func() []float32 {
		if err := Add(dst, a, b); err != nil {
			t.Fatal(err)
		}
		return dst.Float32s()
	})
	y := New(Float32, big)
	forEachWorkerCount(t, "axpy", func() []float32 {
		copy(y.Float32s(), b.Float32s())
		if err := Axpy(0.25, a, y); err != nil {
			t.Fatal(err)
		}
		return y.Float32s()
	})
	forEachWorkerCount(t, "relu", func() []float32 {
		if err := ReLU(dst, a); err != nil {
			t.Fatal(err)
		}
		return dst.Float32s()
	})
}

func TestSoftmaxAndBiasParityAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	m, n := 150, 220 // m*n above minParElems
	logits := New(Float32, m, n)
	RandomUniform(logits, rng, 4)
	probs := New(Float32, m, n)
	forEachWorkerCount(t, "softmax", func() []float32 {
		if err := Softmax(probs, logits); err != nil {
			t.Fatal(err)
		}
		return probs.Float32s()
	})
	labels := New(Int32, m)
	RandomLabels(labels, rng, n)
	dlogits := New(Float32, m, n)
	forEachWorkerCount(t, "xentgrad", func() []float32 {
		if err := SoftmaxCrossEntropyGrad(dlogits, probs, labels); err != nil {
			t.Fatal(err)
		}
		return dlogits.Float32s()
	})
	grad := New(Float32, m, n)
	RandomUniform(grad, rng, 1)
	db := New(Float32, n)
	forEachWorkerCount(t, "biasgrad", func() []float32 {
		if err := BiasGrad(db, grad); err != nil {
			t.Fatal(err)
		}
		return db.Float32s()
	})
	act := New(Float32, m, n)
	bias := New(Float32, n)
	RandomUniform(bias, rng, 1)
	forEachWorkerCount(t, "addbias", func() []float32 {
		copy(act.Float32s(), grad.Float32s())
		if err := AddBias(act, bias); err != nil {
			t.Fatal(err)
		}
		return act.Float32s()
	})
}

func TestMaxPoolParityAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	in := New(Float32, 16, 32, 32, 4) // 64Ki elements: above minParElems
	RandomUniform(in, rng, 1)
	out := New(Float32, 16, 16, 16, 4)
	idx := New(Int32, 16, 16, 16, 4)
	forEachWorkerCount(t, "maxpool", func() []float32 {
		if err := MaxPool2D(out, idx, in); err != nil {
			t.Fatal(err)
		}
		return out.Float32s()
	})
	dout := New(Float32, 16, 16, 16, 4)
	RandomUniform(dout, rng, 1)
	din := New(Float32, 16, 32, 32, 4)
	forEachWorkerCount(t, "maxpoolgrad", func() []float32 {
		if err := MaxPool2DGrad(din, dout, idx); err != nil {
			t.Fatal(err)
		}
		return din.Float32s()
	})
}
