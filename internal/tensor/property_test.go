package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Algebraic property tests over the math kernels.

func randTensor(rng *rand.Rand, dims ...int) *Tensor {
	t := New(Float32, dims...)
	RandomUniform(t, rng, 1)
	return t
}

// MatMul distributes over addition: A(B+C) == AB + AC.
func TestMatMulDistributivity(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 25; trial++ {
		m, k, n := rng.Intn(6)+1, rng.Intn(6)+1, rng.Intn(6)+1
		a := randTensor(rng, m, k)
		b := randTensor(rng, k, n)
		c := randTensor(rng, k, n)

		bc := New(Float32, k, n)
		if err := Add(bc, b, c); err != nil {
			t.Fatal(err)
		}
		lhs := New(Float32, m, n)
		if err := MatMul(lhs, a, bc); err != nil {
			t.Fatal(err)
		}
		ab := New(Float32, m, n)
		ac := New(Float32, m, n)
		if err := MatMul(ab, a, b); err != nil {
			t.Fatal(err)
		}
		if err := MatMul(ac, a, c); err != nil {
			t.Fatal(err)
		}
		rhs := New(Float32, m, n)
		if err := Add(rhs, ab, ac); err != nil {
			t.Fatal(err)
		}
		if !lhs.AllClose(rhs, 1e-4) {
			t.Fatalf("distributivity violated at m=%d k=%d n=%d", m, k, n)
		}
	}
}

// MatMul associates with transposition: (A·B)ᵀ computed via MatMulTransA /
// MatMulTransB agrees with explicit transposes.
func TestMatMulTransposeConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 25; trial++ {
		m, k, n := rng.Intn(5)+1, rng.Intn(5)+1, rng.Intn(5)+1
		a := randTensor(rng, k, m) // aᵀ is [m,k]
		b := randTensor(rng, k, n)
		// lhs = aᵀ·b via MatMulTransA.
		lhs := New(Float32, m, n)
		if err := MatMulTransA(lhs, a, b); err != nil {
			t.Fatal(err)
		}
		// rhs via explicit transpose of a then plain MatMul.
		at := New(Float32, m, k)
		for i := 0; i < k; i++ {
			for j := 0; j < m; j++ {
				at.Float32s()[j*k+i] = a.Float32s()[i*m+j]
			}
		}
		rhs := New(Float32, m, n)
		if err := MatMul(rhs, at, b); err != nil {
			t.Fatal(err)
		}
		if !lhs.AllClose(rhs, 1e-4) {
			t.Fatalf("TransA inconsistent at m=%d k=%d n=%d", m, k, n)
		}
	}
}

// Softmax is invariant to adding a constant to every logit in a row.
func TestSoftmaxShiftInvariance(t *testing.T) {
	f := func(vals []float32, shift float32) bool {
		if len(vals) == 0 || len(vals) > 64 {
			return true
		}
		for _, v := range vals {
			if v != v || v > 1e30 || v < -1e30 { // NaN/overflow inputs excluded
				return true
			}
		}
		if shift != shift || shift > 1e3 || shift < -1e3 {
			return true
		}
		logits, err := FromFloat32(Shape{1, len(vals)}, vals)
		if err != nil {
			return false
		}
		shifted := logits.Clone()
		for i := range shifted.Float32s() {
			shifted.Float32s()[i] += shift
		}
		p1 := New(Float32, 1, len(vals))
		p2 := New(Float32, 1, len(vals))
		if Softmax(p1, logits) != nil || Softmax(p2, shifted) != nil {
			return false
		}
		return p1.AllClose(p2, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Axpy is linear: axpy(a, x, y) then axpy(b, x, y) equals axpy(a+b, x, y).
func TestAxpyLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 25; trial++ {
		n := rng.Intn(32) + 1
		x := randTensor(rng, n)
		y0 := randTensor(rng, n)
		a := rng.Float32()
		b := rng.Float32()

		y1 := y0.Clone()
		if err := Axpy(a, x, y1); err != nil {
			t.Fatal(err)
		}
		if err := Axpy(b, x, y1); err != nil {
			t.Fatal(err)
		}
		y2 := y0.Clone()
		if err := Axpy(a+b, x, y2); err != nil {
			t.Fatal(err)
		}
		if !y1.AllClose(y2, 1e-4) {
			t.Fatalf("axpy linearity violated at n=%d a=%v b=%v", n, a, b)
		}
	}
}

// Conv2D with stride 1 and a delta-function kernel shifts the input.
func TestConvDeltaKernelIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	in := randTensor(rng, 1, 5, 5, 1)
	// 3x3 kernel with a single 1 at the center == identity with pad 1.
	k := New(Float32, 1, 3, 3, 1)
	k.Float32s()[4] = 1
	out := New(Float32, 1, 5, 5, 1)
	if err := Conv2D(out, in, k, 1, 1); err != nil {
		t.Fatal(err)
	}
	if !out.AllClose(in, 1e-6) {
		t.Error("delta-kernel convolution should be the identity")
	}
}

// BiasGrad is the adjoint of AddBias: <AddBias(0, b) over rows, g> equals
// <b, BiasGrad(g)>.
func TestBiasAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	for trial := 0; trial < 25; trial++ {
		m, n := rng.Intn(6)+1, rng.Intn(6)+1
		b := randTensor(rng, n)
		g := randTensor(rng, m, n)

		// lhs: apply bias broadcast to a zero matrix, dot with g.
		broadcast := New(Float32, m, n)
		if err := AddBias(broadcast, b); err != nil {
			t.Fatal(err)
		}
		lhs, err := Dot(broadcast, g)
		if err != nil {
			t.Fatal(err)
		}
		// rhs: reduce g over rows, dot with b.
		db := New(Float32, n)
		if err := BiasGrad(db, g); err != nil {
			t.Fatal(err)
		}
		rhs, err := Dot(b, db)
		if err != nil {
			t.Fatal(err)
		}
		if d := lhs - rhs; d > 1e-3 || d < -1e-3 {
			t.Fatalf("adjoint mismatch: %v vs %v", lhs, rhs)
		}
	}
}
