package tensor

import (
	"fmt"
	"math"
)

// Matrix kernels. Each exported entry point validates shapes, then runs a
// row-partitioned micro-kernel either serially or chunked across the shared
// worker pool (internal/parallel). The serial path and every parallel chunk
// execute the same per-row code with per-output accumulation in ascending
// inner-dimension order, so results are bit-identical for any worker count.

// MatMul computes c = a @ b for float32 matrices a:[m,k], b:[k,n], c:[m,n].
// The destination is fully overwritten. Rows of c are computed by a 4-row
// register-blocked axpy kernel (the inner loop is a contiguous multiply-add
// over a row of b feeding four output rows).
func MatMul(c, a, b *Tensor) error {
	if err := checkMat(a, 2); err != nil {
		return err
	}
	if err := checkMat(b, 2); err != nil {
		return err
	}
	if err := checkMat(c, 2); err != nil {
		return err
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || c.shape[0] != m || c.shape[1] != n {
		return fmt.Errorf("tensor: matmul %v @ %v -> %v: %w", a.shape, b.shape, c.shape, ErrShape)
	}
	av, bv, cv := a.Float32s(), b.Float32s(), c.Float32s()
	if m*k*n >= minParFMA {
		pfor(m, rowGrain(m), func(lo, hi int) { matMulRows(cv, av, bv, lo, hi, k, n) })
	} else {
		matMulRows(cv, av, bv, 0, m, k, n)
	}
	return nil
}

// matMulRows computes rows [lo,hi) of c = a @ b. Per output element the
// accumulation order is p = 0..k-1, identical for every (lo,hi) split.
func matMulRows(cv, av, bv []float32, lo, hi, k, n int) {
	// One memclr for the whole row range: interleaving small zeroing loops
	// with the blocked kernel measurably degrades the generated inner loop.
	clear(cv[lo*n : hi*n])
	i := lo
	for ; i+4 <= hi; i += 4 {
		a0 := av[i*k : (i+1)*k]
		a1 := av[(i+1)*k : (i+2)*k]
		a2 := av[(i+2)*k : (i+3)*k]
		a3 := av[(i+3)*k : (i+4)*k]
		c0 := cv[i*n : (i+1)*n]
		c1 := cv[(i+1)*n : (i+2)*n]
		c2 := cv[(i+2)*n : (i+3)*n]
		c3 := cv[(i+3)*n : (i+4)*n]
		for p := 0; p < k; p++ {
			brow := bv[p*n : (p+1)*n]
			brow = brow[:n:n]
			u0, u1, u2, u3 := c0[:n:n], c1[:n:n], c2[:n:n], c3[:n:n]
			x0, x1, x2, x3 := a0[p], a1[p], a2[p], a3[p]
			for j := range brow {
				bj := brow[j]
				u0[j] += x0 * bj
				u1[j] += x1 * bj
				u2[j] += x2 * bj
				u3[j] += x3 * bj
			}
		}
	}
	for ; i < hi; i++ {
		arow := av[i*k : (i+1)*k]
		crow := cv[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			aip := arow[p]
			brow := bv[p*n : (p+1)*n]
			brow = brow[:n:n]
			u := crow[:n:n]
			for j := range brow {
				u[j] += aip * brow[j]
			}
		}
	}
}

// matMulRowsAcc is matMulRows without the initial zeroing: c += a @ b.
// The im2col convolution gradients accumulate across batch chunks with it.
func matMulRowsAcc(cv, av, bv []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		arow := av[i*k : (i+1)*k]
		crow := cv[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			aip := arow[p]
			brow := bv[p*n : (p+1)*n]
			brow = brow[:n:n]
			u := crow[:n:n]
			for j := range brow {
				u[j] += aip * brow[j]
			}
		}
	}
}

// MatMulTransA computes c = aᵀ @ b for a:[k,m], b:[k,n], c:[m,n].
func MatMulTransA(c, a, b *Tensor) error {
	if err := checkMat(a, 2); err != nil {
		return err
	}
	if err := checkMat(b, 2); err != nil {
		return err
	}
	if err := checkMat(c, 2); err != nil {
		return err
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || c.shape[0] != m || c.shape[1] != n {
		return fmt.Errorf("tensor: matmulTA %v @ %v -> %v: %w", a.shape, b.shape, c.shape, ErrShape)
	}
	av, bv, cv := a.Float32s(), b.Float32s(), c.Float32s()
	if m*k*n >= minParFMA {
		pfor(m, rowGrain(m), func(lo, hi int) { matMulTARows(cv, av, bv, lo, hi, k, m, n) })
	} else {
		matMulTARows(cv, av, bv, 0, m, k, m, n)
	}
	return nil
}

// matMulTARows computes rows [lo,hi) of c = aᵀ @ b for a:[k,am], b:[k,n].
// Column i of a feeds row i of c; accumulation per output is p = 0..k-1.
func matMulTARows(cv, av, bv []float32, lo, hi, k, am, n int) {
	clear(cv[lo*n : hi*n])
	i := lo
	for ; i+4 <= hi; i += 4 {
		c0 := cv[i*n : (i+1)*n]
		c1 := cv[(i+1)*n : (i+2)*n]
		c2 := cv[(i+2)*n : (i+3)*n]
		c3 := cv[(i+3)*n : (i+4)*n]
		for p := 0; p < k; p++ {
			ap := av[p*am+i : p*am+i+4]
			brow := bv[p*n : (p+1)*n]
			brow = brow[:n:n]
			u0, u1, u2, u3 := c0[:n:n], c1[:n:n], c2[:n:n], c3[:n:n]
			x0, x1, x2, x3 := ap[0], ap[1], ap[2], ap[3]
			for j := range brow {
				bj := brow[j]
				u0[j] += x0 * bj
				u1[j] += x1 * bj
				u2[j] += x2 * bj
				u3[j] += x3 * bj
			}
		}
	}
	for ; i < hi; i++ {
		crow := cv[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			x := av[p*am+i]
			brow := bv[p*n : (p+1)*n]
			brow = brow[:n:n]
			u := crow[:n:n]
			for j := range brow {
				u[j] += x * brow[j]
			}
		}
	}
}

// matMulTAAcc accumulates c += aᵀ @ b over rows [lo,hi) of c (no zeroing);
// a:[k,am] with k the reduction dimension. Used by the im2col filter
// gradient, which sums per-chunk partials.
func matMulTAAcc(cv, av, bv []float32, lo, hi, k, am, n int) {
	for p := 0; p < k; p++ {
		arow := av[p*am : (p+1)*am]
		brow := bv[p*n : (p+1)*n]
		brow = brow[:n:n]
		for i := lo; i < hi; i++ {
			x := arow[i]
			u := cv[i*n : (i+1)*n]
			u = u[:n:n]
			for j := range brow {
				u[j] += x * brow[j]
			}
		}
	}
}

// MatMulTransB computes c = a @ bᵀ for a:[m,k], b:[n,k], c:[m,n].
func MatMulTransB(c, a, b *Tensor) error {
	if err := checkMat(a, 2); err != nil {
		return err
	}
	if err := checkMat(b, 2); err != nil {
		return err
	}
	if err := checkMat(c, 2); err != nil {
		return err
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 || c.shape[0] != m || c.shape[1] != n {
		return fmt.Errorf("tensor: matmulTB %v @ %v -> %v: %w", a.shape, b.shape, c.shape, ErrShape)
	}
	av, bv, cv := a.Float32s(), b.Float32s(), c.Float32s()
	if m*k*n >= minParFMA {
		pfor(m, rowGrain(m), func(lo, hi int) { matMulTBRows(cv, av, bv, lo, hi, k, n) })
	} else {
		matMulTBRows(cv, av, bv, 0, m, k, n)
	}
	return nil
}

// matMulTBRows computes rows [lo,hi) of c = a @ bᵀ: each output is a dot
// product of contiguous rows with a single accumulator over p = 0..k-1.
func matMulTBRows(cv, av, bv []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		arow := av[i*k : (i+1)*k]
		arow = arow[:k:k]
		crow := cv[i*n : (i+1)*n]
		j := 0
		for ; j+2 <= n; j += 2 {
			b0 := bv[j*k : (j+1)*k]
			b1 := bv[(j+1)*k : (j+2)*k]
			b0 = b0[:k:k]
			b1 = b1[:k:k]
			var s0, s1 float32
			for p := range arow {
				x := arow[p]
				s0 += x * b0[p]
				s1 += x * b1[p]
			}
			crow[j] = s0
			crow[j+1] = s1
		}
		for ; j < n; j++ {
			brow := bv[j*k : (j+1)*k]
			brow = brow[:k:k]
			var sum float32
			for p := range arow {
				sum += arow[p] * brow[p]
			}
			crow[j] = sum
		}
	}
}

func checkMat(t *Tensor, rank int) error {
	if t.dtype != Float32 {
		return fmt.Errorf("tensor: want float32, got %v", t.dtype)
	}
	if t.shape.Rank() != rank {
		return fmt.Errorf("tensor: want rank %d, got %v: %w", rank, t.shape, ErrShape)
	}
	return nil
}

// Add computes dst = a + b element-wise; dst may alias a or b.
func Add(dst, a, b *Tensor) error {
	return zipWith(dst, a, b, func(x, y float32) float32 { return x + y })
}

// Sub computes dst = a - b element-wise.
func Sub(dst, a, b *Tensor) error {
	return zipWith(dst, a, b, func(x, y float32) float32 { return x - y })
}

// Mul computes dst = a * b element-wise (Hadamard product).
func Mul(dst, a, b *Tensor) error {
	return zipWith(dst, a, b, func(x, y float32) float32 { return x * y })
}

func zipWith(dst, a, b *Tensor, f func(x, y float32) float32) error {
	if !a.shape.Equal(b.shape) || !dst.shape.Equal(a.shape) {
		return fmt.Errorf("tensor: elementwise %v, %v -> %v: %w", a.shape, b.shape, dst.shape, ErrShape)
	}
	av, bv, dv := a.Float32s(), b.Float32s(), dst.Float32s()
	if len(dv) >= minParElems {
		pfor(len(dv), elemGrain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				dv[i] = f(av[i], bv[i])
			}
		})
		return nil
	}
	for i := range dv {
		dv[i] = f(av[i], bv[i])
	}
	return nil
}

// Axpy computes y += alpha*x, the SGD update kernel.
func Axpy(alpha float32, x, y *Tensor) error {
	if !x.shape.Equal(y.shape) {
		return fmt.Errorf("tensor: axpy %v into %v: %w", x.shape, y.shape, ErrShape)
	}
	xv, yv := x.Float32s(), y.Float32s()
	if len(yv) >= minParElems {
		pfor(len(yv), elemGrain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				yv[i] += alpha * xv[i]
			}
		})
		return nil
	}
	for i := range yv {
		yv[i] += alpha * xv[i]
	}
	return nil
}

// Scale computes t *= alpha in place.
func Scale(alpha float32, t *Tensor) {
	v := t.Float32s()
	if len(v) >= minParElems {
		pfor(len(v), elemGrain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				v[i] *= alpha
			}
		})
		return
	}
	for i := range v {
		v[i] *= alpha
	}
}

// AddBias adds a bias vector b:[n] to each row of a:[m,n] in place.
func AddBias(a, b *Tensor) error {
	n := b.NumElements()
	if a.shape.Inner() != n {
		return fmt.Errorf("tensor: bias %v onto %v: %w", b.shape, a.shape, ErrShape)
	}
	av, bv := a.Float32s(), b.Float32s()
	rows := len(av) / n
	addRows := func(lo, hi int) {
		for r := lo; r < hi; r++ {
			row := av[r*n : (r+1)*n]
			for j := range row {
				row[j] += bv[j]
			}
		}
	}
	if len(av) >= minParElems && rows > 1 {
		pfor(rows, rowGrain(rows), addRows)
	} else {
		addRows(0, rows)
	}
	return nil
}

// BiasGrad sums gradient rows grad:[m,n] into db:[n], overwriting db. The
// kernel is column-parallel: each column's sum accumulates over rows in
// ascending order regardless of how columns are chunked, so results are
// bit-identical for any worker count.
func BiasGrad(db, grad *Tensor) error {
	n := db.NumElements()
	if grad.shape.Inner() != n {
		return fmt.Errorf("tensor: biasgrad %v from %v: %w", db.shape, grad.shape, ErrShape)
	}
	gv, dv := grad.Float32s(), db.Float32s()
	sumCols := func(lo, hi int) {
		for j := lo; j < hi; j++ {
			dv[j] = 0
		}
		for off := 0; off < len(gv); off += n {
			row := gv[off+lo : off+hi]
			out := dv[lo:hi]
			for j := range row {
				out[j] += row[j]
			}
		}
	}
	if len(gv) >= minParElems && n >= 64 {
		pfor(n, (n+3)/4, sumCols)
	} else {
		sumCols(0, n)
	}
	return nil
}

// ReduceMax returns the maximum element of a float32 tensor. It is the
// lightweight consumer op used by the paper's §5.1 micro-benchmark.
func ReduceMax(t *Tensor) float32 {
	v := t.Float32s()
	if len(v) == 0 {
		return float32(math.Inf(-1))
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of all elements of a float32 tensor. Kept serial: the
// reduction order is part of the deterministic reference semantics.
func Sum(t *Tensor) float32 {
	var s float32
	for _, x := range t.Float32s() {
		s += x
	}
	return s
}

// Dot returns the inner product of two equally shaped float32 tensors.
func Dot(a, b *Tensor) (float32, error) {
	if !a.shape.Equal(b.shape) {
		return 0, fmt.Errorf("tensor: dot %v · %v: %w", a.shape, b.shape, ErrShape)
	}
	av, bv := a.Float32s(), b.Float32s()
	var s float32
	for i := range av {
		s += av[i] * bv[i]
	}
	return s, nil
}

// L2Norm returns the Euclidean norm of a float32 tensor.
func L2Norm(t *Tensor) float32 {
	var s float64
	for _, x := range t.Float32s() {
		s += float64(x) * float64(x)
	}
	return float32(math.Sqrt(s))
}
