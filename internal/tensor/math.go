package tensor

import (
	"fmt"
	"math"
)

// MatMul computes c = a @ b for float32 matrices a:[m,k], b:[k,n], c:[m,n].
// The destination is fully overwritten. A cache-blocked i-k-j loop order is
// used so the inner loop is a contiguous axpy.
func MatMul(c, a, b *Tensor) error {
	if err := checkMat(a, 2); err != nil {
		return err
	}
	if err := checkMat(b, 2); err != nil {
		return err
	}
	if err := checkMat(c, 2); err != nil {
		return err
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || c.shape[0] != m || c.shape[1] != n {
		return fmt.Errorf("tensor: matmul %v @ %v -> %v: %w", a.shape, b.shape, c.shape, ErrShape)
	}
	av, bv, cv := a.Float32s(), b.Float32s(), c.Float32s()
	for i := range cv {
		cv[i] = 0
	}
	for i := 0; i < m; i++ {
		arow := av[i*k : (i+1)*k]
		crow := cv[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			aip := arow[p]
			if aip == 0 {
				continue
			}
			brow := bv[p*n : (p+1)*n]
			for j := range crow {
				crow[j] += aip * brow[j]
			}
		}
	}
	return nil
}

// MatMulTransA computes c = aᵀ @ b for a:[k,m], b:[k,n], c:[m,n].
func MatMulTransA(c, a, b *Tensor) error {
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || c.shape[0] != m || c.shape[1] != n {
		return fmt.Errorf("tensor: matmulTA %v @ %v -> %v: %w", a.shape, b.shape, c.shape, ErrShape)
	}
	av, bv, cv := a.Float32s(), b.Float32s(), c.Float32s()
	for i := range cv {
		cv[i] = 0
	}
	for p := 0; p < k; p++ {
		arow := av[p*m : (p+1)*m]
		brow := bv[p*n : (p+1)*n]
		for i := 0; i < m; i++ {
			api := arow[i]
			if api == 0 {
				continue
			}
			crow := cv[i*n : (i+1)*n]
			for j := range crow {
				crow[j] += api * brow[j]
			}
		}
	}
	return nil
}

// MatMulTransB computes c = a @ bᵀ for a:[m,k], b:[n,k], c:[m,n].
func MatMulTransB(c, a, b *Tensor) error {
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 || c.shape[0] != m || c.shape[1] != n {
		return fmt.Errorf("tensor: matmulTB %v @ %v -> %v: %w", a.shape, b.shape, c.shape, ErrShape)
	}
	av, bv, cv := a.Float32s(), b.Float32s(), c.Float32s()
	for i := 0; i < m; i++ {
		arow := av[i*k : (i+1)*k]
		for j := 0; j < n; j++ {
			brow := bv[j*k : (j+1)*k]
			var sum float32
			for p := range arow {
				sum += arow[p] * brow[p]
			}
			cv[i*n+j] = sum
		}
	}
	return nil
}

func checkMat(t *Tensor, rank int) error {
	if t.dtype != Float32 {
		return fmt.Errorf("tensor: want float32, got %v", t.dtype)
	}
	if t.shape.Rank() != rank {
		return fmt.Errorf("tensor: want rank %d, got %v: %w", rank, t.shape, ErrShape)
	}
	return nil
}

// Add computes dst = a + b element-wise; dst may alias a or b.
func Add(dst, a, b *Tensor) error {
	return zipWith(dst, a, b, func(x, y float32) float32 { return x + y })
}

// Sub computes dst = a - b element-wise.
func Sub(dst, a, b *Tensor) error {
	return zipWith(dst, a, b, func(x, y float32) float32 { return x - y })
}

// Mul computes dst = a * b element-wise (Hadamard product).
func Mul(dst, a, b *Tensor) error {
	return zipWith(dst, a, b, func(x, y float32) float32 { return x * y })
}

func zipWith(dst, a, b *Tensor, f func(x, y float32) float32) error {
	if !a.shape.Equal(b.shape) || !dst.shape.Equal(a.shape) {
		return fmt.Errorf("tensor: elementwise %v, %v -> %v: %w", a.shape, b.shape, dst.shape, ErrShape)
	}
	av, bv, dv := a.Float32s(), b.Float32s(), dst.Float32s()
	for i := range dv {
		dv[i] = f(av[i], bv[i])
	}
	return nil
}

// Axpy computes y += alpha*x, the SGD update kernel.
func Axpy(alpha float32, x, y *Tensor) error {
	if !x.shape.Equal(y.shape) {
		return fmt.Errorf("tensor: axpy %v into %v: %w", x.shape, y.shape, ErrShape)
	}
	xv, yv := x.Float32s(), y.Float32s()
	for i := range yv {
		yv[i] += alpha * xv[i]
	}
	return nil
}

// Scale computes t *= alpha in place.
func Scale(alpha float32, t *Tensor) {
	v := t.Float32s()
	for i := range v {
		v[i] *= alpha
	}
}

// AddBias adds a bias vector b:[n] to each row of a:[m,n] in place.
func AddBias(a, b *Tensor) error {
	n := b.NumElements()
	if a.shape.Inner() != n {
		return fmt.Errorf("tensor: bias %v onto %v: %w", b.shape, a.shape, ErrShape)
	}
	av, bv := a.Float32s(), b.Float32s()
	for off := 0; off < len(av); off += n {
		row := av[off : off+n]
		for j := range row {
			row[j] += bv[j]
		}
	}
	return nil
}

// BiasGrad sums gradient rows grad:[m,n] into db:[n], overwriting db.
func BiasGrad(db, grad *Tensor) error {
	n := db.NumElements()
	if grad.shape.Inner() != n {
		return fmt.Errorf("tensor: biasgrad %v from %v: %w", db.shape, grad.shape, ErrShape)
	}
	gv, dv := grad.Float32s(), db.Float32s()
	for i := range dv {
		dv[i] = 0
	}
	for off := 0; off < len(gv); off += n {
		row := gv[off : off+n]
		for j := range row {
			dv[j] += row[j]
		}
	}
	return nil
}

// ReduceMax returns the maximum element of a float32 tensor. It is the
// lightweight consumer op used by the paper's §5.1 micro-benchmark.
func ReduceMax(t *Tensor) float32 {
	v := t.Float32s()
	if len(v) == 0 {
		return float32(math.Inf(-1))
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of all elements of a float32 tensor.
func Sum(t *Tensor) float32 {
	var s float32
	for _, x := range t.Float32s() {
		s += x
	}
	return s
}

// Dot returns the inner product of two equally shaped float32 tensors.
func Dot(a, b *Tensor) (float32, error) {
	if !a.shape.Equal(b.shape) {
		return 0, fmt.Errorf("tensor: dot %v · %v: %w", a.shape, b.shape, ErrShape)
	}
	av, bv := a.Float32s(), b.Float32s()
	var s float32
	for i := range av {
		s += av[i] * bv[i]
	}
	return s, nil
}

// L2Norm returns the Euclidean norm of a float32 tensor.
func L2Norm(t *Tensor) float32 {
	var s float64
	for _, x := range t.Float32s() {
		s += float64(x) * float64(x)
	}
	return float32(math.Sqrt(s))
}
