package tensor

import (
	"fmt"
	"strings"
)

// Shape describes the extent of a tensor along each dimension. A nil or
// empty Shape denotes a scalar. Shapes are value-like: methods never mutate
// the receiver.
type Shape []int

// NumElements returns the total element count, or 0 for an invalid shape.
// A scalar has one element.
func (s Shape) NumElements() int {
	n := 1
	for _, d := range s {
		if d < 0 {
			return 0
		}
		n *= d
	}
	return n
}

// Rank returns the number of dimensions.
func (s Shape) Rank() int { return len(s) }

// Valid reports whether every dimension is non-negative.
func (s Shape) Valid() bool {
	for _, d := range s {
		if d < 0 {
			return false
		}
	}
	return true
}

// Equal reports whether two shapes have identical rank and dimensions.
func (s Shape) Equal(t Shape) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the shape.
func (s Shape) Clone() Shape {
	if s == nil {
		return nil
	}
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// Dim returns the extent along dimension i, panicking if out of range.
func (s Shape) Dim(i int) int { return s[i] }

func (s Shape) String() string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = fmt.Sprint(d)
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// Outer returns the product of all dimensions before the last one; for a
// matrix this is the row count. Scalars and vectors report 1.
func (s Shape) Outer() int {
	if len(s) < 2 {
		return 1
	}
	n := 1
	for _, d := range s[:len(s)-1] {
		n *= d
	}
	return n
}

// Inner returns the extent of the last dimension, or 1 for a scalar.
func (s Shape) Inner() int {
	if len(s) == 0 {
		return 1
	}
	return s[len(s)-1]
}
