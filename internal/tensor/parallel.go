package tensor

import "repro/internal/parallel"

// Parallel dispatch thresholds. Kernels stay serial below these so small
// tensors never pay chunk-dispatch overhead; above them they run on the
// shared internal/parallel pool.
//
// Determinism contract (DESIGN.md §9): parallelism never changes results.
// Elementwise and row-partitioned kernels write disjoint ranges with the
// same per-element code as the serial path; reduction kernels (Conv2DGrad's
// filter gradient) accumulate into chunk-local partials whose boundaries
// depend only on the shape, then reduce in fixed chunk order. Outputs are
// bit-identical for every worker count.
const (
	// minParElems gates elementwise kernels (zipWith, mapUnary, Axpy, ...).
	minParElems = 1 << 15
	// elemGrain is the elementwise chunk size in elements.
	elemGrain = 1 << 14
	// minParFMA gates the matmul family by fused-multiply count (m*k*n).
	minParFMA = 1 << 17
	// im2colMinWork switches Conv2D to the im2col + blocked-matmul fast
	// path when per-sample fused-multiply count (oh*ow*co*kh*kw*ci)
	// reaches it; tiny shapes keep the direct loop.
	im2colMinWork = 1 << 12
	// convChunkSamples is the fixed batch-chunk size for the filter
	// gradient's chunk-local accumulators. It must never depend on the
	// worker count: chunk boundaries define the reduction order.
	convChunkSamples = 4
)

// pfor runs fn over [0,n) in chunks of grain on the shared pool.
func pfor(n, grain int, fn func(lo, hi int)) {
	parallel.Default().For(n, grain, fn)
}

// rowGrain picks a row-chunk size that spreads m rows over the pool with a
// few chunks per worker for load balance. Row-partitioned kernels write
// disjoint rows, so (unlike reduction chunks) this may depend on the
// worker count without affecting results.
func rowGrain(m int) int {
	w := parallel.Workers()
	g := m / (4 * w)
	if g < 1 {
		g = 1
	}
	return g
}
