package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestSigmoid(t *testing.T) {
	x, _ := FromFloat32(Shape{3}, []float32{0, 100, -100})
	y := New(Float32, 3)
	if err := Sigmoid(y, x); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(y.Float32s()[0])-0.5) > 1e-6 {
		t.Errorf("sigmoid(0) = %v", y.Float32s()[0])
	}
	if y.Float32s()[1] < 0.999 || y.Float32s()[2] > 0.001 {
		t.Error("sigmoid saturation wrong")
	}
}

func TestReLUAndTanh(t *testing.T) {
	x, _ := FromFloat32(Shape{4}, []float32{-2, -0.5, 0.5, 2})
	y := New(Float32, 4)
	if err := ReLU(y, x); err != nil {
		t.Fatal(err)
	}
	want := []float32{0, 0, 0.5, 2}
	for i, w := range want {
		if y.Float32s()[i] != w {
			t.Errorf("relu[%d] = %v, want %v", i, y.Float32s()[i], w)
		}
	}
	if err := Tanh(y, x); err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(y.Float32s()[3])-math.Tanh(2)) > 1e-6 {
		t.Error("tanh wrong")
	}
}

// numericGrad estimates d f / d x[i] by central differences.
func numericGrad(f func() float32, x []float32, i int) float32 {
	const eps = 1e-3
	orig := x[i]
	x[i] = orig + eps
	fp := f()
	x[i] = orig - eps
	fm := f()
	x[i] = orig
	return (fp - fm) / (2 * eps)
}

func TestActivationGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := New(Float32, 6)
	RandomUniform(x, rng, 2)
	y, dy, dx := New(Float32, 6), New(Float32, 6), New(Float32, 6)
	dy.Fill(1)

	cases := []struct {
		name string
		fwd  func(dst, src *Tensor) error
		bwd  func(dx, dy, y *Tensor) error
	}{
		{"sigmoid", Sigmoid, SigmoidGrad},
		{"tanh", Tanh, TanhGrad},
	}
	for _, c := range cases {
		if err := c.fwd(y, x); err != nil {
			t.Fatal(err)
		}
		if err := c.bwd(dx, dy, y); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			ng := numericGrad(func() float32 {
				tmp := New(Float32, 6)
				if err := c.fwd(tmp, x); err != nil {
					t.Fatal(err)
				}
				return Sum(tmp)
			}, x.Float32s(), i)
			if math.Abs(float64(ng-dx.Float32s()[i])) > 5e-2 {
				t.Errorf("%s grad[%d]: analytic %v numeric %v", c.name, i, dx.Float32s()[i], ng)
			}
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	logits := New(Float32, 5, 7)
	RandomUniform(logits, rng, 10)
	p := New(Float32, 5, 7)
	if err := Softmax(p, logits); err != nil {
		t.Fatal(err)
	}
	pv := p.Float32s()
	for r := 0; r < 5; r++ {
		var s float64
		for j := 0; j < 7; j++ {
			v := pv[r*7+j]
			if v < 0 || v > 1 {
				t.Fatalf("prob out of range: %v", v)
			}
			s += float64(v)
		}
		if math.Abs(s-1) > 1e-5 {
			t.Errorf("row %d sums to %v", r, s)
		}
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	logits, _ := FromFloat32(Shape{1, 3}, []float32{1000, 1000, 1000})
	p := New(Float32, 1, 3)
	if err := Softmax(p, logits); err != nil {
		t.Fatal(err)
	}
	for _, v := range p.Float32s() {
		if math.Abs(float64(v)-1.0/3) > 1e-5 {
			t.Errorf("unstable softmax: %v", p.Float32s())
		}
	}
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	// Perfectly confident correct prediction → loss near 0; uniform → ln(n).
	logits, _ := FromFloat32(Shape{2, 3}, []float32{50, 0, 0, 0, 0, 0})
	labels := New(Int32, 2)
	labels.Int32s()[0] = 0
	labels.Int32s()[1] = 2
	probs := New(Float32, 2, 3)
	loss, err := SoftmaxCrossEntropy(probs, logits, labels)
	if err != nil {
		t.Fatal(err)
	}
	want := float32(math.Log(3) / 2) // (0 + ln 3)/2
	if math.Abs(float64(loss-want)) > 1e-4 {
		t.Errorf("loss = %v, want %v", loss, want)
	}
	// Invalid labels rejected.
	labels.Int32s()[0] = 9
	if _, err := SoftmaxCrossEntropy(probs, logits, labels); err == nil {
		t.Error("out-of-range label accepted")
	}
}

func TestSoftmaxCrossEntropyGradNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, n := 3, 4
	logits := New(Float32, m, n)
	RandomUniform(logits, rng, 2)
	labels := New(Int32, m)
	RandomLabels(labels, rng, n)
	probs, dl := New(Float32, m, n), New(Float32, m, n)
	if _, err := SoftmaxCrossEntropy(probs, logits, labels); err != nil {
		t.Fatal(err)
	}
	if err := SoftmaxCrossEntropyGrad(dl, probs, labels); err != nil {
		t.Fatal(err)
	}
	lossOf := func() float32 {
		p := New(Float32, m, n)
		l, err := SoftmaxCrossEntropy(p, logits, labels)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	for i := 0; i < m*n; i++ {
		ng := numericGrad(lossOf, logits.Float32s(), i)
		if math.Abs(float64(ng-dl.Float32s()[i])) > 5e-2 {
			t.Errorf("xent grad[%d]: analytic %v numeric %v", i, dl.Float32s()[i], ng)
		}
	}
}

func TestMSE(t *testing.T) {
	pred, _ := FromFloat32(Shape{2}, []float32{1, 3})
	tgt, _ := FromFloat32(Shape{2}, []float32{0, 0})
	d := New(Float32, 2)
	loss, err := MSE(d, pred, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if loss != 5 { // (1+9)/2
		t.Errorf("mse = %v, want 5", loss)
	}
	if d.Float32s()[1] != 3 { // 2*(3-0)/2
		t.Errorf("dmse = %v", d.Float32s())
	}
	if _, err := MSE(nil, pred, New(Float32, 3)); err == nil {
		t.Error("mse shape mismatch accepted")
	}
}

func TestGlorotInitBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	w := New(Float32, 64, 32)
	GlorotInit(w, rng)
	limit := float32(math.Sqrt(6.0 / 96.0))
	for _, v := range w.Float32s() {
		if v < -limit || v > limit {
			t.Fatalf("weight %v outside glorot bound %v", v, limit)
		}
	}
	if L2Norm(w) == 0 {
		t.Error("weights all zero")
	}
}
